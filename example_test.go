package adaptmirror_test

import (
	"fmt"
	"log"
	"time"

	"adaptmirror"
)

// lightModel keeps example output deterministic and fast.
var lightModel = adaptmirror.CostModel{
	EventBase:      2 * time.Microsecond,
	SerializeBase:  500 * time.Nanosecond,
	SubmitBase:     200 * time.Nanosecond,
	RequestBase:    5 * time.Microsecond,
	CheckpointBase: time.Microsecond,
}

// Example shows the minimal lifecycle: build a cluster, configure
// selective mirroring, stream events, and serve a thin client from a
// mirror.
func Example() {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 1, Model: lightModel})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	cl.Central().InstallSelective(10)
	for i := uint64(1); i <= 100; i++ {
		cl.Central().Ingest(adaptmirror.NewPosition(1, i, 33.6, -84.4, 11000, 256))
	}
	cl.Drain()

	st := cl.Central().Stats()
	fmt.Printf("mirrored %d of %d events\n", st.Mirrored, st.Received)
	// Output: mirrored 10 of 100 events
}

// ExampleCentral_SetComplexTuple demonstrates the paper's complex-tuple
// rule: the arrival sequence collapses into one 'flight arrived' event.
func ExampleCentral_SetComplexTuple() {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 1, Model: lightModel})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	cl.Central().SetComplexTuple(
		[]adaptmirror.Status{adaptmirror.StatusLanded, adaptmirror.StatusAtRunway, adaptmirror.StatusAtGate},
		adaptmirror.TypeFlightArrived)

	cl.Central().Ingest(adaptmirror.NewStatus(7, 1, adaptmirror.StatusLanded, 64))
	cl.Central().Ingest(adaptmirror.NewStatus(7, 2, adaptmirror.StatusAtRunway, 64))
	cl.Central().Ingest(adaptmirror.NewStatus(7, 3, adaptmirror.StatusAtGate, 64))
	cl.Drain()

	st := cl.Central().Stats()
	fmt.Printf("3 status events in, %d complex event mirrored\n", st.Mirrored)
	// Output: 3 status events in, 1 complex event mirrored
}

// ExampleCluster_NewAdaptation wires the runtime adaptation mechanism:
// crossing the pending-request threshold installs the degraded regime.
func ExampleCluster_NewAdaptation() {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 1, Model: lightModel})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fn1 := adaptmirror.Regime{ID: 1, Name: "normal", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adaptmirror.Regime{ID: 2, Name: "degraded", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	ctl := cl.NewAdaptation(fn1, fn2, 100, 40)

	fmt.Printf("engaged: %v, regime: %s\n", ctl.Engaged(), ctl.Current().Name)
	// Output: engaged: false, regime: normal
}
