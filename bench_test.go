package adaptmirror

// Benchmarks regenerating every figure of the paper's evaluation
// (Section 4), plus ablations of the design choices DESIGN.md calls
// out. Each figure benchmark runs the full experiment sweep once per
// iteration and logs the regenerated data table; the headline numbers
// land in EXPERIMENTS.md. Run with:
//
//	go test -bench=Fig -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
//
// (Figure sweeps take seconds per iteration; -benchtime=1x avoids
// needless repetition. A bare -bench=. works too — Go settles on one
// iteration for slow benchmarks.)

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/cbcast"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/figures"
	"adaptmirror/internal/loadbal"
	"adaptmirror/internal/vclock"
	"adaptmirror/internal/workload"
)

// benchScale trims repetition during benchmarking: each point is a
// single run (the figure tables in EXPERIMENTS.md use the full
// median-of-5 scale via cmd/benchrunner).
var benchScale = func() figures.Scale {
	s := figures.Full
	s.Repeats = 1
	return s
}()

func runFigure(b *testing.B, f func() (figures.Figure, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", figures.Table(fig))
		}
	}
}

// BenchmarkFig4MirrorOverheadBySize regenerates Figure 4: overhead of
// mirroring to a single site vs event size, for no mirroring, simple,
// and selective mirroring.
func BenchmarkFig4MirrorOverheadBySize(b *testing.B) {
	runFigure(b, func() (figures.Figure, error) { return figures.Fig4(benchScale) })
}

// BenchmarkFig5MirrorCountOverhead regenerates Figure 5: execution
// time as mirror sites are added.
func BenchmarkFig5MirrorCountOverhead(b *testing.B) {
	runFigure(b, func() (figures.Figure, error) { return figures.Fig5(benchScale) })
}

// BenchmarkFig6MirrorsUnderLoad regenerates Figure 6: total time
// under constant 100 req/s for 1/2/4 mirrors across event sizes (the
// crossover figure).
func BenchmarkFig6MirrorsUnderLoad(b *testing.B) {
	runFigure(b, func() (figures.Figure, error) { return figures.Fig6(benchScale) })
}

// BenchmarkFig7MirrorFunctions regenerates Figure 7: total time vs
// request load for simple, selective, and selective with halved
// checkpoint frequency.
func BenchmarkFig7MirrorFunctions(b *testing.B) {
	runFigure(b, func() (figures.Figure, error) { return figures.Fig7(benchScale) })
}

// BenchmarkFig8UpdateDelay regenerates Figure 8: mean update delay vs
// request load, simple vs selective mirroring.
func BenchmarkFig8UpdateDelay(b *testing.B) {
	runFigure(b, func() (figures.Figure, error) { return figures.Fig8(benchScale) })
}

// BenchmarkFig9Adaptation regenerates Figure 9: the update-delay time
// series under bursty requests with and without runtime adaptation.
func BenchmarkFig9Adaptation(b *testing.B) {
	p := figures.DefaultFig9
	p.Repeats = 1
	runFigure(b, func() (figures.Figure, error) { return figures.Fig9(benchScale, p) })
}

// ablationOpts is the shared baseline workload for ablation benches.
func ablationOpts() cluster.Options {
	return cluster.Options{
		Mirrors:          1,
		Flights:          25,
		UpdatesPerFlight: 40,
		EventSize:        1000,
		StatePadding:     64,
		Seed:             1,
	}
}

func runAblation(b *testing.B, opts cluster.Options) {
	b.Helper()
	b.ReportAllocs()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunExperiment(opts)
		if err != nil {
			b.Fatal(err)
		}
		total += res.TotalTime
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "s/run")
}

// BenchmarkAblationOverwriteLen sweeps the overwrite run length L:
// the knob behind "selective mirroring". Longer runs shed more mirror
// traffic at the cost of coarser mirror fidelity.
func BenchmarkAblationOverwriteLen(b *testing.B) {
	for _, l := range []int{0, 2, 5, 10, 20, 40} {
		b.Run(nameInt("L", l), func(b *testing.B) {
			opts := ablationOpts()
			opts.Selective = l
			runAblation(b, opts)
		})
	}
}

// BenchmarkAblationCheckpointFreq sweeps the checkpoint frequency
// (events per round).
func BenchmarkAblationCheckpointFreq(b *testing.B) {
	for _, f := range []int{10, 25, 50, 100, 200, 400} {
		b.Run(nameInt("every", f), func(b *testing.B) {
			opts := ablationOpts()
			opts.Selective = 10
			opts.ChkptFreq = f
			runAblation(b, opts)
		})
	}
}

// BenchmarkAblationCoalesceVsOverwrite compares the two
// traffic-reduction mechanisms at matched reduction factors.
func BenchmarkAblationCoalesceVsOverwrite(b *testing.B) {
	b.Run("overwrite-10", func(b *testing.B) {
		opts := ablationOpts()
		opts.Selective = 10
		runAblation(b, opts)
	})
	b.Run("coalesce-10", func(b *testing.B) {
		opts := ablationOpts()
		opts.Coalesce = true
		opts.MaxCoalesce = 10
		runAblation(b, opts)
	})
	b.Run("both", func(b *testing.B) {
		opts := ablationOpts()
		opts.Selective = 10
		opts.Coalesce = true
		opts.MaxCoalesce = 10
		runAblation(b, opts)
	})
}

// BenchmarkAblationTransport compares the three site interconnects.
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []cluster.Transport{
		cluster.TransportDirect, cluster.TransportChannels, cluster.TransportTCP,
	} {
		b.Run(tr.String(), func(b *testing.B) {
			opts := ablationOpts()
			opts.Selective = 10
			opts.Transport = tr
			runAblation(b, opts)
		})
	}
}

// BenchmarkAblationLoadBalance compares request load-balancing
// policies under a spike against two mirrors.
func BenchmarkAblationLoadBalance(b *testing.B) {
	run := func(b *testing.B, mkBal func(targets []*MainUnit) loadbal.Balancer) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := NewCluster(ClusterConfig{Mirrors: 2})
			if err != nil {
				b.Fatal(err)
			}
			events := cluster.BuildEvents(cluster.Options{
				Flights: 25, UpdatesPerFlight: 20, EventSize: 512, Seed: 1,
			})
			cl.Feed(events)
			targets := cl.Targets()
			start := time.Now()
			served, _ := workload.Burst(targets, mkBal(targets), 300, nil)
			if served != 300 {
				b.Fatalf("served %d of 300", served)
			}
			cl.Drain()
			b.ReportMetric(time.Since(start).Seconds(), "s/run")
			cl.Close()
		}
	}
	b.Run("round-robin", func(b *testing.B) {
		run(b, func(t []*MainUnit) loadbal.Balancer {
			bal, _ := loadbal.NewRoundRobin(len(t))
			return bal
		})
	})
	b.Run("least-loaded", func(b *testing.B) {
		run(b, func(t []*MainUnit) loadbal.Balancer {
			bal, _ := loadbal.NewLeastLoaded(len(t), func(i int) int { return t[i].PendingRequests() })
			return bal
		})
	})
	b.Run("random", func(b *testing.B) {
		run(b, func(t []*MainUnit) loadbal.Balancer {
			bal, _ := loadbal.NewRandom(len(t), 1)
			return bal
		})
	})
}

// BenchmarkAblationAdaptationThresholds sweeps the primary threshold
// of the pending-request monitor under the Figure 9 burst pattern.
func BenchmarkAblationAdaptationThresholds(b *testing.B) {
	fn1 := adapt.Regime{ID: 1, Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	for _, primary := range []int{10, 30, 100} {
		b.Run(nameInt("primary", primary), func(b *testing.B) {
			opts := ablationOpts()
			opts.UpdatesPerFlight = 160
			opts.EventRate = 4000
			opts.Adaptive = true
			opts.Baseline = fn1
			opts.Degraded = fn2
			opts.PendingPrimary = primary
			opts.PendingSecondary = primary / 2
			opts.RequestPattern = workload.Bursty{
				Base: 20 * 60, Burst: 520 * 60,
				Period: time.Second, BurstLen: 300 * time.Millisecond,
			}
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			runAblation(b, opts)
		})
	}
}

// BenchmarkAblationNICOffload measures the paper's planned
// network-co-processor split (IXP1200 future work): hosting the
// auxiliary unit's mirroring/checkpointing work on a separate
// processor removes its overhead from the central node.
func BenchmarkAblationNICOffload(b *testing.B) {
	for _, offload := range []bool{false, true} {
		name := "host-only"
		if offload {
			name = "nic-offload"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				cl, err := cluster.New(cluster.Config{
					Mirrors:    2,
					Model:      costmodel.Default,
					NICOffload: offload,
				})
				if err != nil {
					b.Fatal(err)
				}
				events := cluster.BuildEvents(cluster.Options{
					Flights: 25, UpdatesPerFlight: 40, EventSize: 2000, Seed: 1,
				})
				start := time.Now()
				if err := cl.Feed(events); err != nil {
					b.Fatal(err)
				}
				cl.DrainAll()
				costmodel.WaitIdle(cl.CPUs...)
				total += time.Since(start)
				cl.Close()
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "s/run")
		})
	}
}

// BenchmarkAblationCBCASTBaseline compares the paper's
// application-level mirroring against the classical CBCAST-style
// baseline it cites (Birman et al.): causal broadcast replicates every
// event to every member with no semantic filtering, so each replica
// pays full processing cost for the full stream. Selective mirroring
// replicates the same state at a fraction of the traffic.
func BenchmarkAblationCBCASTBaseline(b *testing.B) {
	const (
		flights, perFlight = 25, 40
		size               = 1000
		members            = 3 // one source replica + two others
	)
	events := cluster.BuildEvents(cluster.Options{
		Flights: flights, UpdatesPerFlight: perFlight, EventSize: size, Seed: 1,
	})
	model := costmodel.Default

	b.Run("cbcast-full-replication", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cpus := make([]*costmodel.CPU, members)
			engines := make([]*ede.Engine, members)
			for m := range cpus {
				cpus[m] = &costmodel.CPU{}
				engines[m] = ede.New(ede.Config{Model: model, CPU: cpus[m]})
			}
			group, err := cbcast.NewGroup(members, func(member int, msg cbcast.Message) {
				engines[member].Process(msg.Event)
			})
			if err != nil {
				b.Fatal(err)
			}
			src, _ := group.Member(0)
			start := time.Now()
			for _, e := range events {
				// The sender also pays the per-member send cost the
				// mirroring path would pay.
				cpus[0].Charge(model.SerializeCost(len(e.Payload)))
				for m := 1; m < members; m++ {
					cpus[0].Charge(model.SubmitCost(len(e.Payload)))
				}
				if err := src.Broadcast(e); err != nil {
					b.Fatal(err)
				}
			}
			costmodel.WaitIdle(cpus...)
			b.ReportMetric(time.Since(start).Seconds(), "s/run")
			b.ReportMetric(float64(group.Broadcasts()*uint64(members-1)), "msgs")
			group.Close()
			// Replicas converged: every member processed everything.
			for m := 1; m < members; m++ {
				if engines[m].State().Processed() != uint64(len(events)) {
					b.Fatalf("member %d processed %d of %d", m, engines[m].State().Processed(), len(events))
				}
			}
		}
	})

	b.Run("selective-mirroring", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := cluster.Options{
				Mirrors: members - 1,
				Flights: flights, UpdatesPerFlight: perFlight, EventSize: size,
				Selective: 10, Seed: 1,
			}
			res, err := cluster.RunExperiment(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TotalTime.Seconds(), "s/run")
			b.ReportMetric(float64(res.Central.Mirrored*uint64(members-1)), "msgs")
		}
	})
}

// BenchmarkFanoutBatch isolates the central fan-out pipeline: a
// zero-cost model and instant sinks leave only the pipeline's own
// queueing, cloning, and per-link handoff. Events/op costs drop and
// allocs/op amortize as the send batch grows; added mirrors cost a
// per-link enqueue rather than a serial submission.
func BenchmarkFanoutBatch(b *testing.B) {
	discard := batchDiscard{}
	for _, mirrors := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 16, 64} {
			b.Run(nameInt("m", mirrors)+"/"+nameInt("batch", batch), func(b *testing.B) {
				b.ReportAllocs()
				links := make([]core.MirrorLink, mirrors)
				for i := range links {
					links[i] = core.MirrorLink{Data: discard, Ctrl: discard}
				}
				c := core.NewCentral(core.CentralConfig{
					Streams:     1,
					Params:      core.Params{CheckpointFreq: 1 << 30},
					Mirrors:     links,
					SendBatch:   batch,
					OutboxDepth: 1 << 16,
				})
				c.InstallSimple()
				events := make([]*event.Event, b.N)
				for i := range events {
					events[i] = &event.Event{
						Type: event.TypeFAAPosition, Seq: uint64(i + 1),
						Coalesced: 1, Payload: benchPayload,
					}
				}
				b.ResetTimer()
				for _, e := range events {
					if err := c.Ingest(e); err != nil {
						b.Fatal(err)
					}
				}
				c.Drain()
				b.StopTimer()
				c.Close()
			})
		}
	}
}

var benchPayload = make([]byte, 128)

// batchDiscard is an instant native BatchSender sink.
type batchDiscard struct{}

func (batchDiscard) Submit(*event.Event) error        { return nil }
func (batchDiscard) SubmitBatch([]*event.Event) error { return nil }

// BenchmarkCodecBatchWrite compares per-event framing (WriteEvent +
// Flush per event, the old wire path) against whole-batch framing
// (one WriteBatch + one Flush).
func BenchmarkCodecBatchWrite(b *testing.B) {
	for _, n := range []int{1, 16, 64} {
		batch := make([]*event.Event, n)
		var bytes int64
		for i := range batch {
			e := event.NewPosition(event.FlightID(i+1), uint64(i+1), 1, 2, 3, 1024)
			e.VT = vclock.VC{uint64(i + 1), 0}
			batch[i] = e
			bytes += int64(4 + e.EncodedSize())
		}
		b.Run(nameInt("per-event", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			w := event.NewWriter(io.Discard)
			for i := 0; i < b.N; i++ {
				for _, e := range batch {
					if err := w.WriteEvent(e); err != nil {
						b.Fatal(err)
					}
					if err := w.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(nameInt("batch", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(bytes)
			w := event.NewWriter(io.Discard)
			for i := 0; i < b.N; i++ {
				if err := w.WriteBatch(batch); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// repeatFrames feeds the same encoded frame bytes forever, so a
// decoder can be driven for b.N events from one encoding.
type repeatFrames struct {
	data []byte
	off  int
}

func (r *repeatFrames) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkWireFrame round-trips batches through the wire codec —
// encode into a frame, decode back into events — comparing the legacy
// per-event codec against the columnar batch frame. One benchmark op
// is one event, so ns/op and allocs/op read per event; the columnar
// decode path borrows pooled slabs and must hold 0 allocs/op in
// steady state (make bench-gate asserts exactly that, and that
// columnar is not statistically slower than legacy).
func BenchmarkWireFrame(b *testing.B) {
	for _, codec := range []string{"legacy", "columnar"} {
		for _, n := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", codec, n), func(b *testing.B) {
				batch := make([]*event.Event, n)
				for i := range batch {
					e := event.NewPosition(event.FlightID(i+1), uint64(i+1), 1, 2, 3, 1024)
					e.VT = vclock.VC{uint64(i + 1), 0}
					e.Payload = benchPayload
					batch[i] = e
				}
				// Encode one frame up front to feed the decoder in a loop.
				var sink frameBuffer
				w := event.NewWriter(&sink)
				var err error
				if codec == "legacy" {
					err = w.WriteBatch(batch)
				} else {
					err = w.WriteBatchFrame(batch)
				}
				if err == nil {
					err = w.Flush()
				}
				if err != nil {
					b.Fatal(err)
				}
				r := event.NewReader(&repeatFrames{data: sink.buf})
				enc := event.NewWriter(io.Discard)
				b.ReportAllocs()
				b.SetBytes(int64(len(sink.buf)) / int64(n))
				b.ResetTimer()
				for done := 0; done < b.N; done += n {
					if codec == "legacy" {
						if err := enc.WriteBatch(batch); err != nil {
							b.Fatal(err)
						}
						if err := enc.Flush(); err != nil {
							b.Fatal(err)
						}
						for i := 0; i < n; i++ {
							if _, err := r.ReadEvent(); err != nil {
								b.Fatal(err)
							}
						}
						continue
					}
					if err := enc.WriteBatchFrame(batch); err != nil {
						b.Fatal(err)
					}
					if err := enc.Flush(); err != nil {
						b.Fatal(err)
					}
					_, bb, err := r.ReadFrame()
					if err != nil {
						b.Fatal(err)
					}
					if bb == nil || len(bb.Events) != n {
						b.Fatalf("decoded %v events, want batch of %d", bb, n)
					}
					bb.Release()
				}
			})
		}
	}
}

// frameBuffer is a minimal append-only sink (bytes.Buffer grows in
// ways that would show up as setup noise).
type frameBuffer struct{ buf []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// BenchmarkServeInitStorm measures the init-state serving path under
// concurrent thin-client storms (the paper's airport power-failure
// scenario): one main unit holding 1000 flights, hammered by 1/8/64
// synchronous clients. Zero cost model and no virtual CPU, so the
// numbers isolate the real serve path — snapshot construction, request
// queueing, and response delivery.
func BenchmarkServeInitStorm(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(nameInt("clients", clients), func(b *testing.B) {
			m := core.NewMainUnit(core.MainConfig{
				EDE:           ede.Config{StatePadding: 64},
				RequestBuffer: 1 << 16,
			})
			defer m.Close()
			const flights = 1000
			for f := 0; f < flights; f++ {
				if err := m.Deliver(event.NewPosition(event.FlightID(f), 1, 1, 2, 3, 64)); err != nil {
					b.Fatal(err)
				}
			}
			for m.Processed() < flights {
				time.Sleep(time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						state, err := m.RequestInitState()
						if err != nil {
							errs <- err
							return
						}
						if len(state) == 0 {
							errs <- errEmptyState
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		})
	}
}

var errEmptyState = fmt.Errorf("empty init state")

// BenchmarkSnapshotRebuild measures one snapshot serve at 1000 flights
// in the two regimes the epoch cache distinguishes: "warm" (no state
// mutation since the last serve) and "one-dirty-flight" (a single
// position update applied between serves).
func BenchmarkSnapshotRebuild(b *testing.B) {
	for _, mode := range []string{"warm", "one-dirty-flight"} {
		b.Run(mode, func(b *testing.B) {
			en := ede.New(ede.Config{StatePadding: 64})
			const flights = 1000
			for f := 0; f < flights; f++ {
				en.Process(event.NewPosition(event.FlightID(f), 1, 1, 2, 3, 64))
			}
			en.ServeInitState() // prime
			dirty := mode == "one-dirty-flight"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dirty {
					b.StopTimer()
					en.Process(event.NewPosition(event.FlightID(i%flights), uint64(i), 4, 5, 6, 64))
					b.StartTimer()
				}
				if len(en.ServeInitState()) == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}

func nameInt(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "-" + string(buf)
}

// rejoinSink adapts a function to the core.Sender interface for the
// rejoin-transfer benchmark below.
type rejoinSink func(*event.Event) error

func (f rejoinSink) Submit(e *event.Event) error { return f(e) }

// benchRejoinCluster builds the rejoin-transfer fixture: a mirrored
// cluster carrying many flights of padded state, a committed
// checkpoint cut, and a short tail of traffic past the cut touching
// only a few flights — the workload where cut-anchored deltas pay off.
func benchRejoinCluster(b *testing.B) (*cluster.Cluster, vclock.VC) {
	b.Helper()
	cl, err := cluster.New(cluster.Config{
		Mirrors:      1,
		StatePadding: 256,
		Params:       core.Params{CheckpointFreq: 1 << 30}, // manual checkpoints only
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)

	base := cluster.BuildEvents(cluster.Options{
		Flights: 400, UpdatesPerFlight: 4, EventSize: 128, Seed: 7,
	})
	if err := cl.Feed(base); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.Mirrors[0].Received() < uint64(len(base)) {
		if time.Now().After(deadline) {
			b.Fatalf("mirror received %d/%d base events", cl.Mirrors[0].Received(), len(base))
		}
		time.Sleep(100 * time.Microsecond)
	}
	cl.Central.Checkpoint()
	for cl.Mirrors[0].Backup().Committed() == nil {
		if time.Now().After(deadline) {
			b.Fatal("no committed cut at the mirror")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cut := cl.Mirrors[0].Backup().Committed()

	// Past the cut only 8 of the 400 flights mutate.
	tail := cluster.BuildEvents(cluster.Options{
		Flights: 8, UpdatesPerFlight: 2, EventSize: 128, Seed: 9,
	})
	if err := cl.Feed(tail); err != nil {
		b.Fatal(err)
	}
	cl.DrainAll()
	return cl, cut
}

// BenchmarkRejoinTransfer measures one mirror rejoin transfer end to
// end — build under the barrier, ship, apply at the receiver — for
// the full-snapshot path against the cut-anchored delta path, and
// reports the wire bytes each mode ships. `make bench-rejoin` runs
// both sides repeatedly and gates them with cmd/benchgate: the delta
// side must converge faster (Mann-Whitney on ns/op) and ship at least
// 5x fewer bytes (bytes_shipped/op ratio).
func BenchmarkRejoinTransfer(b *testing.B) {
	for _, mode := range []string{"snapshot", "delta"} {
		b.Run(mode, func(b *testing.B) {
			cl, cut := benchRejoinCluster(b)
			if mode == "snapshot" {
				cut = nil // a rejoiner with no usable cut: full transfer
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := core.NewMirrorSite(core.MirrorSiteConfig{})
				if _, err := cl.Central.RecoverMirrorSince(rejoinSink(func(e *event.Event) error {
					fresh.HandleData(e)
					return nil
				}), cut); err != nil {
					b.Fatal(err)
				}
				fresh.Drain()
				fresh.Close()
			}
			b.StopTimer()
			stats := cl.Central.RejoinStats()
			switch mode {
			case "snapshot":
				if stats.Snapshots != uint64(b.N) {
					b.Fatalf("RejoinStats = %+v, want %d snapshot transfers", stats, b.N)
				}
				b.ReportMetric(float64(stats.SnapshotBytes)/float64(b.N), "bytes_shipped/op")
			case "delta":
				if stats.Deltas != uint64(b.N) {
					b.Fatalf("RejoinStats = %+v, want %d delta transfers", stats, b.N)
				}
				b.ReportMetric(float64(stats.DeltaBytes)/float64(b.N), "bytes_shipped/op")
			}
		})
	}
}
