#!/bin/sh
# bench_compare.sh — run the benchmarks the fan-out pipeline affects,
# repeated -count=5, into benchstat-compatible output.
#
# Usage:
#   scripts/bench_compare.sh [output-file]
#
# Typical comparison workflow:
#   git checkout main   && scripts/bench_compare.sh bench_old.txt
#   git checkout branch && scripts/bench_compare.sh bench_new.txt
#   benchstat bench_old.txt bench_new.txt   # if benchstat is installed
#
# The output is plain `go test -bench` text, which benchstat consumes
# directly; without benchstat the raw per-run lines are still usable.
set -eu

cd "$(dirname "$0")/.."

out="${1:-bench_compare_$(git rev-parse --short HEAD 2>/dev/null || echo wip).txt}"
count="${COUNT:-5}"

# Fig5/Fig6 sweep the mirror fan-out directly; FanoutBatch and
# CodecBatchWrite isolate the batch pipeline and the wire framing;
# ServeInitStorm and SnapshotRebuild isolate the sharded/epoch-cached
# init-state serving path.
pattern='BenchmarkFig5MirrorCountOverhead|BenchmarkFig6MirrorsUnderLoad|BenchmarkFanoutBatch|BenchmarkCodecBatchWrite|BenchmarkServeInitStorm|BenchmarkSnapshotRebuild'

echo "running: -bench '$pattern' -count=$count -> $out" >&2
go test -run xxx -bench "$pattern" -benchmem -count="$count" -timeout 60m . | tee "$out"

echo "wrote $out (feed two such files to benchstat to compare)" >&2
