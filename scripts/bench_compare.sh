#!/bin/sh
# bench_compare.sh — run the benchmarks the fan-out pipeline affects,
# repeated -count=5, into benchstat-compatible output.
#
# Usage:
#   scripts/bench_compare.sh [output-file]
#   scripts/bench_compare.sh gate
#
# Typical comparison workflow:
#   git checkout main   && scripts/bench_compare.sh bench_old.txt
#   git checkout branch && scripts/bench_compare.sh bench_new.txt
#   benchstat bench_old.txt bench_new.txt   # if benchstat is installed
#   go run ./cmd/benchgate -compare bench_old.txt bench_new.txt  # no install needed
#
# The output is plain `go test -bench` text, which benchstat consumes
# directly; without benchstat the raw per-run lines are still usable.
#
# The `gate` mode is the CI wire-format check (make bench-gate): it
# runs the BenchmarkWireFrame legacy/columnar pair COUNT (>=5) times
# and feeds the result to cmd/benchgate, which (a) checks with a
# Mann-Whitney U test that the columnar frame is not statistically
# slower than the legacy per-event codec, and (b) asserts the columnar
# round trip reports 0 allocs/op — the steady-state zero-copy claim.
set -eu

cd "$(dirname "$0")/.."

count="${COUNT:-5}"

if [ "${1:-}" = "gate" ]; then
    mkdir -p results
    out=results/bench_gate.txt
    echo "running: -bench BenchmarkWireFrame -count=$count -> $out" >&2
    go test -run xxx -bench 'BenchmarkWireFrame' -benchmem \
        -benchtime=300000x -count="$count" -timeout 30m . | tee "$out"
    go run ./cmd/benchgate \
        -compare -old-sub legacy -new-sub columnar \
        -assert-zero-allocs 'WireFrame/columnar' \
        "$out" "$out"
    exit $?
fi

# The `rejoin` mode is the incremental-rejoin check (make
# bench-rejoin): it runs the BenchmarkRejoinTransfer snapshot/delta
# pair COUNT (>=5) times and feeds the result to cmd/benchgate, which
# (a) checks with a Mann-Whitney U test that the delta transfer is not
# statistically slower than the full snapshot, and (b) asserts the
# delta ships at least 5x fewer wire bytes (bytes_shipped/op medians).
if [ "${1:-}" = "rejoin" ]; then
    mkdir -p results
    out=results/bench_rejoin.txt
    echo "running: -bench BenchmarkRejoinTransfer -count=$count -> $out" >&2
    go test -run xxx -bench 'BenchmarkRejoinTransfer' -benchmem \
        -benchtime=50x -count="$count" -timeout 30m . | tee "$out"
    go run ./cmd/benchgate \
        -compare -old-sub snapshot -new-sub delta \
        -ratio-metric bytes_shipped/op -min-ratio 5 \
        "$out" "$out"
    exit $?
fi

out="${1:-bench_compare_$(git rev-parse --short HEAD 2>/dev/null || echo wip).txt}"

# Fig5/Fig6 sweep the mirror fan-out directly; FanoutBatch and
# CodecBatchWrite isolate the batch pipeline and the wire framing;
# ServeInitStorm and SnapshotRebuild isolate the sharded/epoch-cached
# init-state serving path.
pattern='BenchmarkFig5MirrorCountOverhead|BenchmarkFig6MirrorsUnderLoad|BenchmarkFanoutBatch|BenchmarkCodecBatchWrite|BenchmarkServeInitStorm|BenchmarkSnapshotRebuild'

echo "running: -bench '$pattern' -count=$count -> $out" >&2
go test -run xxx -bench "$pattern" -benchmem -count="$count" -timeout 60m . | tee "$out"

echo "wrote $out (feed two such files to benchstat to compare)" >&2
