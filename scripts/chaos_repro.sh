#!/bin/sh
# Replay one chaos seed exactly: same workload, same fault schedule,
# same per-link fault decision streams, same verdict.
#
#   scripts/chaos_repro.sh 1337
#   scripts/chaos_repro.sh 1337 -mirrors 5
set -eu

if [ $# -lt 1 ]; then
    echo "usage: $0 <seed> [extra chaosrunner flags]" >&2
    exit 2
fi
seed=$1
shift

cd "$(dirname "$0")/.."
exec go run -race ./cmd/chaosrunner -seed "$seed" "$@"
