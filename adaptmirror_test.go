package adaptmirror

import (
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/thinclient"
)

// The façade tests use a light cost model so they run in milliseconds.
var testModel = CostModel{
	EventBase:      2 * time.Microsecond,
	SerializeBase:  500 * time.Nanosecond,
	SubmitBase:     200 * time.Nanosecond,
	RequestBase:    5 * time.Microsecond,
	CheckpointBase: time.Microsecond,
}

func TestQuickstartFlow(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Mirrors: 2, Model: testModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cl.Central().InstallSelective(10)
	for i := uint64(1); i <= 100; i++ {
		if err := cl.Central().Ingest(NewPosition(FlightID(1+i%5), i, 33.6, -84.4, 11000, 256)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Drain()

	if got := cl.Central().Main().Processed(); got != 100 {
		t.Fatalf("central processed %d, want 100", got)
	}
	state, err := cl.Targets()[0].RequestInitState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 {
		t.Fatal("empty init state")
	}
}

func TestClusterAccessors(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Mirrors: 3, Model: testModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Mirrors()) != 3 {
		t.Fatalf("Mirrors = %d", len(cl.Mirrors()))
	}
	if len(cl.Targets()) != 3 {
		t.Fatalf("Targets = %d", len(cl.Targets()))
	}
	if len(cl.AllTargets()) != 4 {
		t.Fatalf("AllTargets = %d", len(cl.AllTargets()))
	}
}

func TestNoMirrorBaseline(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{NoMirror: true, Model: testModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Targets()) != 1 {
		t.Fatal("baseline must serve requests from the central site")
	}
	cl.Feed([]*Event{NewStatus(1, 1, StatusLanded, 64)})
	cl.Drain()
	if cl.Central().Stats().Mirrored != 0 {
		t.Fatal("baseline mirrored events")
	}
}

func TestComplexRulesViaFacade(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Mirrors: 1, Model: testModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Central().SetComplexSeq(TypeDeltaStatus, StatusLanded, TypeFAAPosition)
	cl.Central().SetComplexTuple([]Status{StatusLanded, StatusAtRunway, StatusAtGate}, TypeFlightArrived)

	var seq uint64
	next := func() uint64 { seq++; return seq }
	cl.Central().Ingest(NewStatus(7, next(), StatusLanded, 32))
	cl.Central().Ingest(NewPosition(7, next(), 0, 0, 0, 64)) // discarded by seq rule
	cl.Central().Ingest(NewStatus(7, next(), StatusAtRunway, 32))
	cl.Central().Ingest(NewStatus(7, next(), StatusAtGate, 32))
	cl.Drain()

	st := cl.Central().Stats()
	// Only the collapsed flight-arrived event survives mirroring.
	if st.Mirrored != 1 {
		t.Fatalf("Mirrored = %d, want 1 (the complex event)", st.Mirrored)
	}
}

func TestNewAdaptationInstallsBaseline(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Mirrors: 1, Model: testModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	base := Regime{ID: 1, Coalesce: true, MaxCoalesce: 10, OverwriteLen: 10, CheckpointFreq: 25}
	degr := Regime{ID: 2, Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 50}
	ctl := cl.NewAdaptation(base, degr, 100, 50)
	if ctl.Engaged() {
		t.Fatal("controller must start in the baseline regime")
	}
	p := cl.Central().GetParams()
	if !p.Coalesce || p.MaxCoalesce != 10 || p.CheckpointFreq != 25 {
		t.Fatalf("baseline regime not installed: %+v", p)
	}
}

func TestTCPTransportViaFacade(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Mirrors:   1,
		Transport: TransportTCP,
		Bandwidth: 100e6,
		Latency:   20 * time.Microsecond,
		Model:     testModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(1); i <= 20; i++ {
		cl.Central().Ingest(NewPosition(1, i, 1, 2, 3, 128))
	}
	cl.Drain()
	if got := cl.Mirrors()[0].Processed(); got != 20 {
		t.Fatalf("mirror processed %d over TCP, want 20", got)
	}
}

func TestOnUpdateStreamDrivesThinClient(t *testing.T) {
	v := thinclient.New(0)
	var mu sync.Mutex
	var buffered []*Event
	cl, err := NewCluster(ClusterConfig{
		Mirrors: 1,
		Model:   testModel,
		OnUpdate: func(e *Event) {
			mu.Lock()
			buffered = append(buffered, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := uint64(1); i <= 40; i++ {
		cl.Central().Ingest(NewPosition(FlightID(1+i%3), i, float64(i), -float64(i), 9000, 64))
	}
	cl.Central().Ingest(NewStatus(1, 41, StatusAtGate, 32))
	cl.Drain()

	// Initialize the client from a mirror snapshot, then apply the
	// buffered update stream (stale prefixes are skipped by VT).
	snap, err := cl.Targets()[0].RequestInitState()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Initialize(snap); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for _, e := range buffered {
		v.Apply(e)
	}
	mu.Unlock()

	server, _ := cl.Central().Main().Engine().State().Get(1)
	client, ok := v.Flight(1)
	if !ok {
		t.Fatal("client missing flight 1")
	}
	if client.Status != server.Status || client.Lat != server.Lat {
		t.Fatalf("client view diverged: %+v vs %+v", client, server)
	}
	if !client.Arrived {
		t.Fatal("client missed the derived arrival")
	}
}
