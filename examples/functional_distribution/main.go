// Functional distribution: the paper notes that "update events must
// be mirrored both to sites that replicate local state and to sites
// that need such events for functionally different tasks". This demo
// runs a full replica mirror next to a weather-analytics site whose
// link filters everything but weather reports, while the extended
// business rules (crew, baggage, weather) run at every EDE.
//
//	go run ./examples/functional_distribution
package main

import (
	"fmt"
	"log"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
)

type senderFunc func(*event.Event) error

func (f senderFunc) Submit(e *event.Event) error { return f(e) }

func main() {
	// Two mirrors: a state replica and a weather-analytics site.
	replica := core.NewMirrorSite(core.MirrorSiteConfig{
		SiteID: 0,
		Main:   core.MainConfig{EDE: ede.Config{Rules: ede.ExtendedRules()}},
	})
	defer replica.Close()
	analytics := core.NewMirrorSite(core.MirrorSiteConfig{
		SiteID: 1,
		Main:   core.MainConfig{EDE: ede.Config{Rules: ede.ExtendedRules()}},
	})
	defer analytics.Close()

	central := core.NewCentral(core.CentralConfig{
		Streams: 2,
		Main:    core.MainConfig{EDE: ede.Config{Rules: ede.ExtendedRules()}},
		Mirrors: []core.MirrorLink{
			{
				Data: senderFunc(func(e *event.Event) error { replica.HandleData(e); return nil }),
				Ctrl: senderFunc(func(e *event.Event) error { replica.HandleControl(e); return nil }),
			},
			{
				Data:   senderFunc(func(e *event.Event) error { analytics.HandleData(e); return nil }),
				Ctrl:   senderFunc(func(e *event.Event) error { analytics.HandleControl(e); return nil }),
				Filter: func(e *event.Event) bool { return e.Type == event.TypeWeather },
			},
		},
	})
	defer central.Close()
	for _, m := range []*core.MirrorSite{replica, analytics} {
		_ = m // control uplinks omitted: the demo focuses on data flow
	}

	// A stormy operational hour: positions, crew and baggage updates,
	// and weather reports of rising severity.
	var seq uint64
	next := func() uint64 { seq++; return seq }
	for round := 0; round < 50; round++ {
		for f := event.FlightID(1); f <= 8; f++ {
			if err := central.Ingest(event.NewPosition(f, next(), 33+float64(round)/10, -84, 31000, 512)); err != nil {
				log.Fatal(err)
			}
		}
		f := event.FlightID(1 + round%8)
		central.Ingest(ede.NewCrewUpdate(f, next(), 6, 1, 64))
		central.Ingest(ede.NewBaggage(f, next(), 128))
		severity := uint8(100 + round*3) // worsening storm
		central.Ingest(ede.NewWeather(f, next(), severity, 256))
	}
	central.Drain()
	// Let the mirrors' pipelines finish.
	for replica.Received() < central.Stats().Mirrored {
		time.Sleep(time.Millisecond)
	}
	replica.Drain()
	analytics.Drain()

	st := central.Stats()
	fmt.Printf("central received %d events\n", st.Received)
	fmt.Printf("replica received:   %4d events (everything)\n", replica.Received())
	fmt.Printf("analytics received: %4d events (weather only — %.0f%% less traffic)\n",
		analytics.Received(), 100*(1-float64(analytics.Received())/float64(replica.Received())))

	// The analytics site's extended state has the storm picture.
	var severe int
	for f := event.FlightID(1); f <= 8; f++ {
		if ws, ok := analytics.Main().Engine().State().Weather(f); ok && ws.Severity >= ede.WeatherSevere {
			severe++
		}
	}
	fmt.Printf("analytics site: %d/8 routes at severe weather (≥%d)\n", severe, ede.WeatherSevere)

	// The replica has the operational state (crew readiness).
	ready := 0
	for f := event.FlightID(1); f <= 8; f++ {
		if cs, ok := replica.Main().Engine().State().Crew(f); ok && cs.Complete {
			ready++
		}
	}
	fmt.Printf("replica site: %d/8 flights with complete crews\n", ready)
}
