// Adaptive burst: runtime adaptation under bursty client requests
// (the paper's Section 4.3 experiment as a demo). The cluster runs a
// paced event stream while the request load alternates between calm
// and bursts; the adaptation controller switches between the paper's
// two mirroring functions and the demo prints when and why.
//
//	go run ./examples/adaptive_burst
package main

import (
	"fmt"
	"log"
	"time"

	"adaptmirror"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/workload"
)

func main() {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Function 1: coalesce up to 10 events, checkpoint every 50.
	// Function 2: overwrite up to 20 position events, checkpoint
	// every 100 (cheaper, less consistent).
	fn1 := adaptmirror.Regime{ID: 1, Name: "coalesce-10/chkpt-50", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adaptmirror.Regime{ID: 2, Name: "overwrite-20/chkpt-100", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}

	// Engage function 2 when any site's pending-request buffer
	// reaches 30; reinstall function 1 below 15.
	ctl := cl.NewAdaptation(fn1, fn2, 30, 15)
	fmt.Printf("baseline regime: %s\n", fn1.Name)

	// Paced event stream: 4000 events/s for ~3 seconds.
	events := cluster.BuildEvents(cluster.Options{
		Flights: 50, UpdatesPerFlight: 240, EventSize: 1000, Seed: 3,
	})

	// Bursty request pattern: calm at 1.2k req/s with 300ms bursts of
	// 30k req/s each second, against both sites.
	stop := make(chan struct{})
	done := make(chan workload.Result, 1)
	go func() {
		done <- workload.Run(workload.Config{
			Pattern: workload.Bursty{
				Base: 1200, Burst: 30000,
				Period: time.Second, BurstLen: 300 * time.Millisecond,
			},
			Targets: cl.AllTargets(),
			Stop:    stop,
		})
	}()

	// Watch regime transitions while the stream plays.
	watch := make(chan struct{})
	go func() {
		defer close(watch)
		engaged := false
		start := time.Now()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if e := ctl.Engaged(); e != engaged {
				engaged = e
				name := fn1.Name
				if engaged {
					name = fn2.Name
				}
				fmt.Printf("t=%6s  adaptation switched to %s\n",
					time.Since(start).Round(10*time.Millisecond), name)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	feedStart := time.Now()
	if err := feedPaced(cl, events, 4000); err != nil {
		log.Fatal(err)
	}
	cl.Drain()
	close(stop)
	res := <-done
	<-watch

	engages, reverts := ctl.Transitions()
	fmt.Printf("\nrun complete in %v\n", time.Since(feedStart).Round(time.Millisecond))
	fmt.Printf("requests served: %d (rejected %d)\n", res.Completed, res.Rejected)
	fmt.Printf("adaptation transitions: %d engage(s), %d revert(s)\n", engages, reverts)
	st := cl.Central().Stats()
	fmt.Printf("events mirrored: %d of %d (regime switching varied the reduction)\n",
		st.Mirrored, st.Received)
}

// feedPaced streams events at the given rate.
func feedPaced(cl *adaptmirror.Cluster, events []*adaptmirror.Event, rate float64) error {
	start := time.Now()
	sent := 0
	for sent < len(events) {
		due := int(time.Since(start).Seconds() * rate)
		if due > len(events) {
			due = len(events)
		}
		for ; sent < due; sent++ {
			if err := cl.Central().Ingest(events[sent]); err != nil {
				return err
			}
		}
		if sent < len(events) {
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}
