// Airline OIS: the paper's motivating scenario end to end. A central
// site ingests interleaved FAA radar and Delta lifecycle streams,
// applies the full set of semantic mirroring rules, replicates to two
// mirror sites, and then an airport terminal "comes back from a power
// failure": hundreds of thin clients simultaneously re-request their
// initialization state, served entirely by the mirrors while the
// central site keeps processing the event streams.
//
//	go run ./examples/airline_ois
package main

import (
	"fmt"
	"log"
	"time"

	"adaptmirror"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/loadbal"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/workload"
)

func main() {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{
		Mirrors:      2,
		StatePadding: 128, // richer per-flight operational state
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// The paper's semantic rules:
	// - overwrite: mirror 1 of every 10 FAA positions per flight;
	// - complex sequence: discard FAA positions after 'flight landed';
	// - complex tuple: collapse landed + at-runway + at-gate into one
	//   'flight arrived' event.
	central := cl.Central()
	central.InstallSelective(10)
	central.SetComplexSeq(adaptmirror.TypeDeltaStatus, adaptmirror.StatusLanded, adaptmirror.TypeFAAPosition)
	central.SetComplexTuple(
		[]adaptmirror.Status{adaptmirror.StatusLanded, adaptmirror.StatusAtRunway, adaptmirror.StatusAtGate},
		adaptmirror.TypeFlightArrived)

	// Build an operational day: 40 flights, positions plus lifecycle
	// (boarding, gate readers, departure, arrival).
	events := cluster.BuildEvents(cluster.Options{
		Flights:          40,
		UpdatesPerFlight: 60,
		EventSize:        1024,
		WithDelta:        true,
		Passengers:       25,
		Seed:             7,
	})
	fmt.Printf("streaming %d operational events (FAA + Delta)...\n", len(events))
	if err := cl.Feed(events); err != nil {
		log.Fatal(err)
	}

	// While events stream, the power failure hits: 400 airport
	// displays re-request initialization state simultaneously,
	// balanced across the mirror sites only.
	bal, _ := loadbal.NewRoundRobin(len(cl.Targets()))
	lat := metrics.NewHistogram(0)
	start := time.Now()
	served, burstTime := workload.Burst(cl.Targets(), bal, 400, lat)
	fmt.Printf("power-failure recovery: %d/%d thin clients re-initialized in %v\n",
		served, 400, burstTime.Round(time.Millisecond))
	fmt.Printf("init-state latency: %s\n", lat.Summary())

	cl.Drain()
	fmt.Printf("event stream fully processed %v after the burst began\n",
		time.Since(start).Round(time.Millisecond))

	// Inspect the replicated operational state.
	st := central.Stats()
	discarded, combined := central.Semantics().Stats()
	fmt.Printf("\nmirroring summary:\n")
	fmt.Printf("  received %d, mirrored %d (%.0f%% traffic reduction)\n",
		st.Received, st.Mirrored, 100*(1-float64(st.Mirrored)/float64(st.Received)))
	fmt.Printf("  discarded by rules: %d, combined into complex events: %d\n", discarded, combined)
	fmt.Printf("  checkpoint rounds: %d, commits: %d\n", st.ChkptRounds, st.ChkptCommits)

	// Every mirror tracked every flight's arrival.
	arrived := 0
	for f := adaptmirror.FlightID(1); f <= 40; f++ {
		if fs, ok := cl.Mirrors()[0].Main().Engine().State().Get(f); ok && fs.Status == adaptmirror.StatusArrived {
			arrived++
		}
	}
	fmt.Printf("  mirror 0 sees %d/40 flights arrived\n", arrived)
}
