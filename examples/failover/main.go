// Failover: mirror-site failure detection and recovery — the paper's
// future-work extension. A mirror goes silent mid-stream; the
// membership detector excludes it so checkpoint commits keep trimming
// backup queues; the site later rejoins through a state-snapshot +
// backup-replay transfer and resumes serving clients.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
)

// cuttableLink drops traffic when severed.
type cuttableLink struct {
	dead atomic.Bool
	fn   func(*event.Event) error
}

func (l *cuttableLink) Submit(e *event.Event) error {
	if l.dead.Load() {
		return core.ErrUnitClosed
	}
	return l.fn(e)
}

func main() {
	// Assemble one central + two mirrors by hand so the links can be
	// severed.
	var mirrors [2]*core.MirrorSite
	var links [4]*cuttableLink // data,ctrl per mirror
	var coreLinks []core.MirrorLink
	var central *core.Central
	for i := 0; i < 2; i++ {
		i := i
		links[2*i] = &cuttableLink{fn: func(e *event.Event) error { mirrors[i].HandleData(e); return nil }}
		links[2*i+1] = &cuttableLink{fn: func(e *event.Event) error { mirrors[i].HandleControl(e); return nil }}
		coreLinks = append(coreLinks, core.MirrorLink{Data: links[2*i], Ctrl: links[2*i+1]})
	}
	central = core.NewCentral(core.CentralConfig{
		Streams: 1,
		Params:  core.Params{CheckpointFreq: 25},
		Mirrors: coreLinks,
	})
	defer central.Close()
	for i := 0; i < 2; i++ {
		mirrors[i] = core.NewMirrorSite(core.MirrorSiteConfig{
			SiteID: uint8(i),
			CtrlUp: senderFunc(func(e *event.Event) error { central.HandleControl(e); return nil }),
		})
	}
	defer mirrors[0].Close()

	member := core.NewMembership(central, core.MembershipConfig{
		MissedRounds: 3,
		OnFailure:    func(site int) { fmt.Printf("!! mirror %d excluded after missing 3 checkpoint rounds\n", site) },
		OnRejoin:     func(site int) { fmt.Printf("** mirror %d re-admitted to the quorum\n", site) },
	})

	feed := func(from, n uint64) {
		for i := from; i < from+n; i++ {
			if err := central.Ingest(event.NewPosition(event.FlightID(1+i%5), i, float64(i), 0, 9000, 256)); err != nil {
				log.Fatal(err)
			}
		}
		// Let the pipeline settle.
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("streaming with both mirrors healthy...")
	feed(1, 500)
	fmt.Printf("   live mirrors: %d, central backup: %d events retained\n",
		member.Live(), central.Backup().Len())

	fmt.Println("\nsevering mirror 1's links (site crash)...")
	links[2].dead.Store(true)
	links[3].dead.Store(true)
	feed(1000, 500)
	for i := 0; i < 4; i++ {
		central.Checkpoint()
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("   live mirrors: %d (failed: %v), commits still trim: backup = %d\n",
		member.Live(), member.Failed(), central.Backup().Len())

	fmt.Println("\nmirror 1 restarts empty and rejoins...")
	mirrors[1].Close()
	mirrors[1] = core.NewMirrorSite(core.MirrorSiteConfig{
		SiteID: 1,
		CtrlUp: senderFunc(func(e *event.Event) error { central.HandleControl(e); return nil }),
	})
	defer mirrors[1].Close()
	links[2].dead.Store(false)
	links[3].dead.Store(false)
	replayed, err := member.Rejoin(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   recovery transfer: state snapshot + %d replayed backup events\n", replayed)

	feed(2000, 300)
	deadline := time.Now().Add(5 * time.Second)
	for mirrors[1].Processed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("   rejoined mirror caught up: processed %d events (weighted)\n", mirrors[1].Processed())

	state, err := mirrors[1].Main().RequestInitState()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   and serves clients again: init state = %d bytes\n", len(state))
}

type senderFunc func(*event.Event) error

func (f senderFunc) Submit(e *event.Event) error { return f(e) }
