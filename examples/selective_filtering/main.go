// Selective filtering: a tour of the semantic mirroring rules (paper
// Section 3.2.1), showing how each rule reduces mirror traffic for
// the same flight's event sequence.
//
//	go run ./examples/selective_filtering
package main

import (
	"fmt"
	"log"

	"adaptmirror"
)

// scenario feeds one flight's day — 60 position updates interleaved
// with its arrival sequence — and reports how many events reached the
// mirror.
func scenario(name string, configure func(*adaptmirror.Central)) {
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	configure(cl.Central())

	var seq uint64
	next := func() uint64 { seq++; return seq }
	ingest := func(e *adaptmirror.Event) {
		if err := cl.Central().Ingest(e); err != nil {
			log.Fatal(err)
		}
	}

	// In-flight: 50 position updates.
	for i := 0; i < 50; i++ {
		ingest(adaptmirror.NewPosition(7, next(), 33+float64(i)/10, -84, 35000, 512))
	}
	// Arrival sequence with straggling radar reports in between.
	ingest(adaptmirror.NewStatus(7, next(), adaptmirror.StatusLanded, 128))
	for i := 0; i < 10; i++ {
		ingest(adaptmirror.NewPosition(7, next(), 33.64, -84.42, 0, 512))
	}
	ingest(adaptmirror.NewStatus(7, next(), adaptmirror.StatusAtRunway, 128))
	ingest(adaptmirror.NewStatus(7, next(), adaptmirror.StatusAtGate, 128))

	cl.Drain()
	st := cl.Central().Stats()
	discarded, combined := cl.Central().Semantics().Stats()
	fmt.Printf("%-28s mirrored %3d of %3d events (discarded %d, combined %d)\n",
		name+":", st.Mirrored, st.Received, discarded, combined)
}

func main() {
	fmt.Println("one flight's day: 60 radar positions + landed/at-runway/at-gate")
	fmt.Println()

	scenario("simple mirroring", func(c *adaptmirror.Central) {
		c.InstallSimple()
	})

	scenario("overwrite L=10", func(c *adaptmirror.Central) {
		// set_overwrite(FAA, 10): 1 of every 10 positions mirrored.
		c.InstallSelective(10)
	})

	scenario("+ complex sequence", func(c *adaptmirror.Central) {
		c.InstallSelective(10)
		// set_complex_seq: discard radar reports after 'landed'.
		c.SetComplexSeq(adaptmirror.TypeDeltaStatus, adaptmirror.StatusLanded, adaptmirror.TypeFAAPosition)
	})

	scenario("+ complex tuple", func(c *adaptmirror.Central) {
		c.InstallSelective(10)
		c.SetComplexSeq(adaptmirror.TypeDeltaStatus, adaptmirror.StatusLanded, adaptmirror.TypeFAAPosition)
		// set_complex_tuple: landed + at-runway + at-gate → arrived.
		c.SetComplexTuple(
			[]adaptmirror.Status{adaptmirror.StatusLanded, adaptmirror.StatusAtRunway, adaptmirror.StatusAtGate},
			adaptmirror.TypeFlightArrived)
	})

	fmt.Println()
	fmt.Println("every variant leaves the central site's own state exact: the")
	fmt.Println("forwarding path to regular clients is never filtered.")
}
