// Quickstart: a central site mirroring a flight-position stream to
// one mirror site, a thin client initializing from the mirror and
// following the update stream.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"adaptmirror"
	"adaptmirror/internal/thinclient"
)

func main() {
	// A thin client (think: airport flight display) buffers the
	// server's update stream until it has initialized.
	display := thinclient.New(0)
	var mu sync.Mutex
	var backlog []*adaptmirror.Event

	// One central site plus one mirror, wired in-process.
	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{
		Mirrors: 1,
		OnUpdate: func(e *adaptmirror.Event) {
			mu.Lock()
			backlog = append(backlog, e)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Selective mirroring: of every run of 10 position updates per
	// flight, only one is mirrored (Table-1 set_overwrite).
	cl.Central().InstallSelective(10)

	// Stream 500 position updates for 5 flights.
	seq := uint64(0)
	for i := 0; i < 100; i++ {
		for f := adaptmirror.FlightID(1); f <= 5; f++ {
			seq++
			e := adaptmirror.NewPosition(f, seq, 33.6+float64(i)/100, -84.4, 11000, 512)
			if err := cl.Central().Ingest(e); err != nil {
				log.Fatal(err)
			}
		}
	}
	cl.Drain()

	st := cl.Central().Stats()
	fmt.Printf("events received:  %d\n", st.Received)
	fmt.Printf("events mirrored:  %d (selective mirroring kept 1 in 10)\n", st.Mirrored)
	fmt.Printf("central processed: %d, mirror processed (weighted): %d\n",
		cl.Central().Main().Processed(), cl.Mirrors()[0].Processed())

	// The thin client initializes from the mirror — the central site
	// is never touched — then catches up from the update stream.
	state, err := cl.Targets()[0].RequestInitState()
	if err != nil {
		log.Fatal(err)
	}
	if err := display.Initialize(state); err != nil {
		log.Fatal(err)
	}
	mu.Lock()
	for _, e := range backlog {
		display.Apply(e)
	}
	mu.Unlock()

	fmt.Printf("client initialization state: %d bytes\n", len(state))
	fs, _ := display.Flight(1)
	fmt.Printf("display now tracks %d flights; flight 1 at %.2f,%.2f\n",
		display.Flights(), fs.Lat, fs.Lon)
}
