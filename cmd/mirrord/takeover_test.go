package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/event"
	"adaptmirror/internal/status"
	"adaptmirror/internal/vclock"
)

// takeoverMirror starts one wire-takeover-armed mirror. The peers
// manifest is patched in later (patchManifest) once every site's bound
// address is known — a deployment writes real addresses into -peers up
// front, a test binds :0.
func takeoverMirror(t *testing.T, siteID int, standby bool, budget int) *mirrorSite {
	t.Helper()
	m, err := startMirror(mirrorOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "pending",
		SiteID:           siteID,
		Standby:          standby,
		Peers:            []string{"pending", "pending"},
		TakeoverBudget:   budget,
		TakeoverInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func patchManifest(m *mirrorSite, peers []string) {
	tr := m.takeover
	tr.mu.Lock()
	copy(tr.peers, peers)
	tr.advertise = peers[tr.self]
	tr.mu.Unlock()
}

// feed streams count position events into addr's ingress channel,
// starting at seq.
func feed(t *testing.T, addr string, seq, count uint64) {
	t.Helper()
	src, err := echo.DialSend(addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := seq; i < seq+count; i++ {
		e := event.NewPosition(event.FlightID(1+i%4), i, float64(i), -float64(i), 9000, 128)
		if err := src.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func clusterStatus(t *testing.T, httpAddr string) status.Document {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc status.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// runWireTakeover is the shared scenario: central + two armed mirrors
// over real loopback TCP, kill the central, wait for m0 to take over
// and m1 to rejoin, then verify the survivor converges byte-exact with
// the promoted central in epoch 1.
func runWireTakeover(t *testing.T, m0, m1 *mirrorSite) {
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m0.Addr, m1.Addr},
		ChkptFreq: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	patchManifest(m0, []string{m0.Addr, m1.Addr})
	patchManifest(m1, []string{m0.Addr, m1.Addr})
	m0.uplink.Repoint(central.Addr)
	m1.uplink.Repoint(central.Addr)

	// Normal operation: events replicate, checkpoint rounds commit a
	// non-zero cut (the very first round can still commit <0>).
	// CHKPT frames ride a different TCP connection than data, so a
	// burst's final round can poll the mirrors before their data lands
	// and commit a stale (even zero) cut — and with checkpointing
	// traffic-driven, no later round fixes it up. Re-trigger rounds
	// while waiting, exactly like a continuous stream would.
	feed(t, central.Addr, 1, 100)
	waitUntil(t, 10*time.Second, "pre-kill replication and commits", func() bool {
		central.Central.Checkpoint()
		return vclock.VC(central.Central.CommittedCut()).Sum() > 0 &&
			m0.Mirror.LastRound() > 0 && m1.Mirror.LastRound() > 0 &&
			m0.Mirror.Received() == 100 && m1.Mirror.Received() == 100
	})
	oldCut := vclock.VC(central.Central.CommittedCut())

	// Kill the central process-equivalently: listener and links die.
	central.Close()

	// Detection, promotion (direct or by election), and survivor
	// rejoin all happen over the wire.
	waitUntil(t, 10*time.Second, "takeover promotion", func() bool {
		return m0.promoted.Load() != nil
	})
	pc := m0.promoted.Load()
	if got := pc.Central.Epoch(); got != 1 {
		t.Fatalf("promoted epoch = %d, want 1", got)
	}
	waitUntil(t, 10*time.Second, "survivor rejoin", func() bool {
		return !pc.excluded(1)
	})
	if m1.uplink.Addr() != m0.Addr {
		t.Fatalf("survivor uplink = %s, want the promoted address %s", m1.uplink.Addr(), m0.Addr)
	}

	// Every pre-kill committed event is present on the new central.
	if lp := pc.Central.Main().LastProcessed(); !oldCut.LessEq(lp) {
		t.Fatalf("committed cut %s not covered by promoted state %s", oldCut, lp)
	}

	// The cluster keeps serving: a full source burst ingested at the
	// promoted central reaches the survivor, and epoch-1 rounds commit
	// on it. The burst size matters — it drives many checkpoint rounds
	// while the survivor's replies lag a TCP round trip, which used to
	// trip the promoted central's failure detector into falsely
	// excluding (and silently unmirroring) the healthy survivor.
	feed(t, m0.Addr, 101, 5000)
	waitUntil(t, 10*time.Second, "post-takeover round on the survivor", func() bool {
		pc.Central.Checkpoint()
		return m1.Mirror.LastRound()>>checkpoint.EpochShift == 1
	})

	// Byte-exact convergence of the survivor's state with the promoted
	// central's, with the survivor admitted (not burst-excluded).
	var want, got []byte
	waitUntil(t, 10*time.Second, "byte-exact survivor state", func() bool {
		want = pc.Central.Main().Engine().State().Snapshot()
		got = m1.Mirror.Main().Engine().State().Snapshot()
		return !pc.excluded(1) && bytes.Equal(want, got)
	})

	// Operations plane: both sites report the takeover with
	// central_epoch >= 1.
	d0 := clusterStatus(t, m0.HTTPAddr)
	if d0.Role != "central" || d0.CentralEpoch != 1 {
		t.Fatalf("promoted status = role %q epoch %d, want central/1", d0.Role, d0.CentralEpoch)
	}
	if d0.Takeover == nil || !d0.Takeover.Armed || d0.Takeover.Role != rolePromoted || !d0.Takeover.Fired {
		t.Fatalf("promoted takeover status = %+v", d0.Takeover)
	}
	d1 := clusterStatus(t, m1.HTTPAddr)
	if d1.CentralEpoch < 1 {
		t.Fatalf("survivor central_epoch = %d, want >= 1", d1.CentralEpoch)
	}
	if d1.Takeover == nil || d1.Takeover.Role != roleFollower && d1.Takeover.Role != roleStandby ||
		d1.Takeover.Epoch != 1 || d1.Takeover.Repoints != 1 {
		t.Fatalf("survivor takeover status = %+v", d1.Takeover)
	}

	// Metrics: the firing site counted it, the survivor counted the
	// repoint.
	if text := scrapeMetrics(t, m0.HTTPAddr); !strings.Contains(text, `takeover_fired_total{site="mirror0"} 1`) {
		t.Error("promoted site's takeover_fired_total not exported")
	}
	if text := scrapeMetrics(t, m1.HTTPAddr); !strings.Contains(text, `uplink_repoint_total{site="mirror1"} 1`) {
		t.Error("survivor's uplink_repoint_total not exported")
	}
}

// TestWireTakeoverStandby: the designated warm standby detects the
// dead central over the wire and promotes directly; the survivor
// redials and rejoins. The survivor runs a larger budget so the
// standby always fires first (the documented deployment shape).
func TestWireTakeoverStandby(t *testing.T) {
	m0 := takeoverMirror(t, 0, true, 2)
	defer m0.Close()
	m1 := takeoverMirror(t, 1, false, 8)
	defer m1.Close()
	runWireTakeover(t, m0, m1)
}

// TestWireTakeoverElection: no standby designated — the mirrors elect
// over TCP. Site 0 fires first and, holding the same committed cut,
// wins the tie-break (lowest site ID).
func TestWireTakeoverElection(t *testing.T) {
	m0 := takeoverMirror(t, 0, false, 2)
	defer m0.Close()
	m1 := takeoverMirror(t, 1, false, 5)
	defer m1.Close()
	runWireTakeover(t, m0, m1)

	// The election itself left a wire trace.
	if text := scrapeMetrics(t, m0.HTTPAddr); !strings.Contains(text, `election_claims_total{site="mirror0"}`) {
		t.Error("election_claims_total not exported on the winner")
	}
}

// TestTakeoverIgnoresIdleCluster: a live but idle central advances no
// rounds; the liveness probe must keep the standby from firing.
func TestTakeoverIgnoresIdleCluster(t *testing.T) {
	m0 := takeoverMirror(t, 0, true, 2)
	defer m0.Close()
	m1 := takeoverMirror(t, 1, false, 8)
	defer m1.Close()
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m0.Addr, m1.Addr},
		ChkptFreq: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	patchManifest(m0, []string{m0.Addr, m1.Addr})
	patchManifest(m1, []string{m0.Addr, m1.Addr})
	m0.uplink.Repoint(central.Addr)
	m1.uplink.Repoint(central.Addr)

	// One commit, then silence: the budget (2 x 50ms) expires many
	// times over while the central idles.
	feed(t, central.Addr, 1, 30)
	waitUntil(t, 10*time.Second, "a committed round", func() bool {
		central.Central.Checkpoint() // re-trigger: a burst's last round can wedge on in-flight data
		_, commits := centralCommits(central)
		return commits > 0 && m0.Mirror.LastRound() > 0
	})
	time.Sleep(500 * time.Millisecond)
	if m0.promoted.Load() != nil {
		t.Fatal("standby usurped a live idle central")
	}
	if info := m0.takeover.Info(); info.Fired {
		t.Fatalf("takeover fired against a live central: %+v", info)
	}
}

// TestLazyUplinkBoundedWrite pins the stalled-peer fix: a peer that
// accepts the connection but never drains it must fail a submission in
// bounded time instead of holding the uplink mutex forever.
func TestLazyUplinkBoundedWrite(t *testing.T) {
	// A raw listener that completes no reads: the dial handshake (if
	// any) and every write eventually fill the kernel buffers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never read
		}
	}()

	l := &lazyUplink{
		addr: ln.Addr().String(), name: chanCtrlUp,
		dialTimeout: time.Second, writeTimeout: 200 * time.Millisecond,
	}
	defer l.Close()

	// 64KiB payloads fill the socket buffers within a few MB of
	// writes; the write deadline must then surface an error.
	e := event.NewPosition(1, 1, 0, 0, 0, 64<<10)
	e.VT = vclock.VC{1}
	start := time.Now()
	var submitErr error
	for i := 0; i < 4096; i++ {
		if submitErr = l.Submit(e); submitErr != nil {
			break
		}
		if time.Since(start) > 20*time.Second {
			break
		}
	}
	if submitErr == nil {
		t.Fatal("submissions to a never-reading peer never failed")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("bounded-write failure took %s", elapsed)
	}
	// The uplink self-heals: after the failure the link is dropped and
	// the next submission redials rather than reusing the wedged
	// connection.
	if l.link != nil {
		t.Fatal("failed link not cleared for redial")
	}
}
