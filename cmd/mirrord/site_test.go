package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/oislog"
	"adaptmirror/internal/thinclient"
)

// TestFullDeployment brings up a 1-central + 2-mirror deployment over
// real loopback TCP (the exact wiring mirrord uses), streams events
// through the ingress channel like oisgen would, serves client
// requests over HTTP like loadgen would, and verifies replication.
func TestFullDeployment(t *testing.T) {
	// Mirrors first (the documented startup order).
	m1, err := startMirror(mirrorOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "unused-until-dialed",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := startMirror(mirrorOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "unused-until-dialed",
		SiteID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m1.Addr, m2.Addr},
		Selective: 10,
		ChkptFreq: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()

	// Point the mirrors' lazy uplinks at the now-known central address.
	m1.uplink.addr = central.Addr
	m2.uplink.addr = central.Addr

	// Stream events like oisgen.
	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const total = 200
	for i := uint64(1); i <= total; i++ {
		e := event.NewPosition(event.FlightID(1+i%4), i, float64(i), -float64(i), 9000, 256)
		if err := src.Submit(e); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for the pipeline to replicate (selective: 1 in 10 events
	// per flight is mirrored).
	deadline := time.Now().Add(10 * time.Second)
	for central.Central.Main().Processed() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := central.Central.Main().Processed(); got != total {
		t.Fatalf("central processed %d, want %d", got, total)
	}
	wantMirrored := central.Central.Stats().Mirrored
	if wantMirrored == 0 || wantMirrored >= total {
		t.Fatalf("Mirrored = %d, want selective reduction", wantMirrored)
	}
	for _, m := range []*mirrorSite{m1, m2} {
		for m.Mirror.Received() < wantMirrored && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := m.Mirror.Received(); got != wantMirrored {
			t.Fatalf("mirror received %d, want %d", got, wantMirrored)
		}
	}

	// Serve a client from a mirror's HTTP front, like loadgen.
	resp, err := http.Get("http://" + m1.HTTPAddr + "/init")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("init request failed: %d %v", resp.StatusCode, err)
	}
	if len(body) == 0 {
		t.Fatal("empty init state from mirror")
	}

	// Checkpoint control flow ran over the real links.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, commits := centralCommits(central); commits > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no checkpoint commits over the deployed control channels")
}

func centralCommits(c *centralSite) (rounds, commits uint64) {
	st := c.Central.Stats()
	return st.ChkptRounds, st.ChkptCommits
}

func TestStartMirrorBadListen(t *testing.T) {
	if _, err := startMirror(mirrorOptions{Listen: "256.0.0.1:bad", HTTP: "127.0.0.1:0", Central: "x"}); err == nil {
		t.Fatal("bad listen address must fail")
	}
}

func TestStartCentralBadMirror(t *testing.T) {
	_, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors: []string{"127.0.0.1:1"},
	})
	if err == nil {
		t.Fatal("unreachable mirror must fail central startup")
	}
}

func TestLazyUplinkRedials(t *testing.T) {
	up := &lazyUplink{addr: "127.0.0.1:1", name: chanCtrlUp}
	if err := up.Submit(event.NewControl(event.TypeChkptReply, nil)); err == nil {
		t.Fatal("submit to unreachable central must fail")
	}
	// Bring a central up and retry.
	central, err := startCentral(centralOptions{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	up.addr = central.Addr
	if err := up.Submit(event.NewControl(event.TypeChkptReply, nil)); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
	up.Close()
}

func TestCentralWithAdaptation(t *testing.T) {
	m, err := startMirror(mirrorOptions{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "pending"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m.Addr},
		ChkptFreq: 10,
		Adapt:     true, AdaptPrimary: 1, AdaptSecondary: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	m.uplink.addr = central.Addr

	if central.Controller == nil {
		t.Fatal("adaptation controller not installed")
	}
	if got := central.Central.GetParams().CheckpointFreq; got != 50 {
		t.Fatalf("baseline regime not applied: chkpt freq = %d, want 50", got)
	}

	// Saturate the mirror's request buffer while events flow so a
	// checkpoint round observes pending > primary and engages. The
	// buffer must stay deep for tens of milliseconds (the virtual CPU
	// drains ~30 requests/ms), so pile up thousands.
	for i := 0; i < 3000; i++ {
		m.Mirror.Main().Request(&core.InitRequest{})
	}
	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := uint64(1); i <= 200; i++ {
		src.Submit(event.NewPosition(1, i, 0, 0, 0, 64))
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e, _ := central.Controller.Transitions(); e > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("adaptation never engaged in deployed central")
}

func TestCentralWithOperationsLog(t *testing.T) {
	dir := t.TempDir()
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", LogDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := uint64(1); i <= n; i++ {
		src.Submit(event.NewPosition(1, i, float64(i), 0, 9000, 64))
	}
	deadline := time.Now().Add(10 * time.Second)
	for central.Central.Main().Processed() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	src.Close()
	central.Close()

	count, err := oislog.Replay(dir, func(*event.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("operations log replayed %d records, want %d", count, n)
	}
}

// TestRemoteThinClientFollowsUpdates exercises the full distributed
// client story oisclient implements: HTTP init from a mirror +
// update-stream subscription from the central site's updates channel.
func TestRemoteThinClientFollowsUpdates(t *testing.T) {
	m, err := startMirror(mirrorOptions{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "pending", StatePad: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors: []string{m.Addr}, Selective: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	m.uplink.addr = central.Addr

	view := thinclient.New(64)
	updatesLink, err := echo.DialRecv(central.Addr, chanUpdates)
	if err != nil {
		t.Fatal(err)
	}
	defer updatesLink.Close()
	updatesLink.Subscribe(func(e *event.Event) { view.Apply(e) })
	// Wait for the server-side subscription to attach before feeding
	// (a real client instead fetches /init after subscribing and
	// relies on stale-update filtering for the overlap). The updates
	// channel already has one subscriber when -log is configured;
	// here it starts with none, so wait for ours.
	updatesCh, err := central.bus.Lookup(chanUpdates)
	if err != nil {
		t.Fatal(err)
	}
	attachDeadline := time.Now().Add(5 * time.Second)
	for updatesCh.Subscribers() < 1 && time.Now().Before(attachDeadline) {
		time.Sleep(time.Millisecond)
	}

	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := uint64(1); i <= 60; i++ {
		src.Submit(event.NewPosition(event.FlightID(1+i%3), i, float64(i), 0, 9000, 128))
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if applied, _ := view.Stats(); applied >= 60 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if applied, _ := view.Stats(); applied < 60 {
		t.Fatalf("client applied %d updates, want 60", applied)
	}
	if view.Flights() != 3 {
		t.Fatalf("client tracks %d flights, want 3", view.Flights())
	}

	// And an /init fetch from the mirror produces a loadable snapshot.
	resp, err := http.Get("http://" + m.HTTPAddr + "/init")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fresh := thinclient.New(64)
	if err := fresh.Initialize(body); err != nil {
		t.Fatalf("snapshot from mirror not loadable: %v", err)
	}
}

// scrapeMetrics fetches one site's /metrics and checks conformance.
func scrapeMetrics(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics failed: %d %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want Prometheus text exposition", ct)
	}
	if err := obs.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics on %s not conformant: %v\n%s", httpAddr, err, body)
	}
	return string(body)
}

// TestDeployedMetricsEndpoints brings up a real 1+1 deployment, runs
// traffic, and scrapes /metrics on both sites: the central exposition
// must cover ingest, fan-out, checkpointing, and the lifecycle stages;
// the mirror's must cover its receive path and serving counters. With
// -adapt on and an -auditlog path, the transition trail lands on disk.
func TestDeployedMetricsEndpoints(t *testing.T) {
	auditPath := t.TempDir() + "/audit.jsonl"
	m, err := startMirror(mirrorOptions{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "pending"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m.Addr},
		ChkptFreq: 10,
		Adapt:     true, AdaptPrimary: 1, AdaptSecondary: 1,
		AuditPath: auditPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	m.uplink.addr = central.Addr

	// Pending requests above the primary threshold while events flow,
	// so a checkpoint round engages adaptation (as in
	// TestCentralWithAdaptation).
	for i := 0; i < 3000; i++ {
		m.Mirror.Main().Request(&core.InitRequest{})
	}
	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const total = 200
	for i := uint64(1); i <= total; i++ {
		src.Submit(event.NewPosition(event.FlightID(1+i%4), i, float64(i), 0, 9000, 128))
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		e, _ := central.Controller.Transitions()
		if central.Central.Main().Processed() >= total && e > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := http.Get("http://" + m.HTTPAddr + "/init"); err != nil {
		t.Fatal(err)
	}

	centralText := scrapeMetrics(t, central.HTTPAddr)
	for _, want := range []string{
		`central_received_total{site="central"} 200`,
		`link_sent_total{mirror="0"}`,
		`checkpoint_rounds_total{site="central"}`,
		`pipeline_stage_seconds_count{stage="ready_wait"}`,
		`pipeline_stage_seconds_count{stage="link_send"}`,
		`adapt_engages_total`,
		`adapt_engaged 1`,
		`http_requests_total`,
	} {
		if !strings.Contains(centralText, want) {
			t.Errorf("central /metrics missing %q", want)
		}
	}
	mirrorText := scrapeMetrics(t, m.HTTPAddr)
	for _, want := range []string{
		`mirror_received_total{site="mirror0"}`,
		`queue_ready_depth{site="mirror0"}`,
		`requests_served_total{site="mirror0"}`,
		`snapshot_cache_hits_total{site="mirror0"}`,
		`pipeline_stage_seconds_count{stage="mirror_apply"}`,
		`http_requests_total 1`,
	} {
		if !strings.Contains(mirrorText, want) {
			t.Errorf("mirror /metrics missing %q", want)
		}
	}

	// The durable audit trail recorded the engage with the sample that
	// triggered it.
	central.Close()
	entries, err := obs.ReadAuditLog(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no audit entries on disk after an engaged run")
	}
	if entries[0].Action != "engage" {
		t.Fatalf("first audit action = %q, want engage", entries[0].Action)
	}
	if entries[0].Value < entries[0].Primary {
		t.Fatalf("engage value %d below primary %d", entries[0].Value, entries[0].Primary)
	}
}

// TestMirrorRestartConvergesRegime is the deployed-site version of the
// chaos suite's regime-convergence invariant: engage adaptation, crash
// the mirror process, let the failure detector exclude it, restart it
// on the same address, re-admit it through recovery, and assert the
// fresh incarnation — whose applier watermark restarted from zero —
// reports the central's current adapt_regime_id, both through the
// applier API and on its /metrics endpoint.
func TestMirrorRestartConvergesRegime(t *testing.T) {
	m, err := startMirror(mirrorOptions{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Central: "pending"})
	if err != nil {
		t.Fatal(err)
	}
	central, err := startCentral(centralOptions{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Mirrors:   []string{m.Addr},
		ChkptFreq: 10,
		Adapt:     true, AdaptPrimary: 1, AdaptSecondary: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	m.uplink.addr = central.Addr
	// Pin the degraded regime once engaged so the crash/restart below
	// races against a stable target, not a reverting controller.
	central.Controller.SetRevertAfter(1 << 30)

	// Engage exactly as TestCentralWithAdaptation does: deep pending
	// buffer on the mirror while events drive checkpoint rounds.
	for i := 0; i < 3000; i++ {
		m.Mirror.Main().Request(&core.InitRequest{})
	}
	src, err := echo.DialSend(central.Addr, chanIngress)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	seq := uint64(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			src.Submit(event.NewPosition(event.FlightID(1+seq%4), seq, float64(seq), 0, 9000, 64))
		}
	}
	feed(200)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e, _ := central.Controller.Transitions(); e > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	want := central.Controller.Current()
	if e, _ := central.Controller.Transitions(); e == 0 {
		t.Fatal("adaptation never engaged; cannot exercise regime convergence")
	}

	// Crash the mirror and let the failure detector exclude it: keep the
	// backup queue non-empty and initiate rounds the dead site cannot
	// answer.
	member := core.NewMembership(central.Central, core.MembershipConfig{MissedRounds: 2})
	addr := m.Addr
	m.Close()
	feed(100)
	deadline = time.Now().Add(10 * time.Second)
	for len(member.Failed()) == 0 && time.Now().Before(deadline) {
		central.Central.Checkpoint()
		time.Sleep(5 * time.Millisecond)
	}
	if len(member.Failed()) == 0 {
		t.Fatal("failure detector never excluded the crashed mirror")
	}

	// Restart on the same listen address (the OS may hold the port
	// briefly) — a brand-new process image: empty state, applier
	// watermark back at zero.
	var m2 *mirrorSite
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m2, err = startMirror(mirrorOptions{Listen: addr, HTTP: "127.0.0.1:0", Central: central.Addr}); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m2 == nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer m2.Close()

	// Re-admit through recovery. The central's data link still holds the
	// connection the crash killed; the reconnecting dialer replaces it
	// on the next attempt, so retry until the transfer lands.
	var rerr error
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, rerr = member.Rejoin(0); rerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rerr != nil {
		t.Fatalf("rejoin after restart: %v", rerr)
	}

	// The recovery block carried the current directive; the standalone
	// broadcast covers a regime decided after the snapshot was built.
	deadline = time.Now().Add(10 * time.Second)
	converged := false
	for time.Now().Before(deadline) {
		if reg, _, have := m2.Applier.Current(); have && reg.ID == want.ID {
			converged = true
			break
		}
		central.Central.PublishDirective()
		time.Sleep(5 * time.Millisecond)
	}
	if !converged {
		reg, round, have := m2.Applier.Current()
		t.Fatalf("restarted mirror regime = %d (round %d, have %v), want central's %d",
			reg.ID, round, have, want.ID)
	}

	// The satellite's literal claim: the restarted site exports the
	// central's regime as its adapt_regime_id gauge.
	text := scrapeMetrics(t, m2.HTTPAddr)
	wantSeries := fmt.Sprintf(`adapt_regime_id{site="mirror0"} %d`, want.ID)
	if !strings.Contains(text, wantSeries) {
		t.Fatalf("restarted mirror /metrics missing %q", wantSeries)
	}
}
