package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/adapt"

	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/oislog"
	"adaptmirror/internal/status"
)

// Channel names of the deployed wire protocol. Sources send to the
// central site's "ingress"; the central dials each mirror's "data" and
// "ctrl.down"; mirrors dial the central's "ctrl.up".
const (
	chanIngress  = "ingress"
	chanData     = "data"
	chanCtrlDown = "ctrl.down"
	chanCtrlUp   = "ctrl.up"
	// chanUpdates carries the central EDE's output stream; thin
	// clients (cmd/oisclient) subscribe to it with recv links.
	chanUpdates = "updates"
)

type centralOptions struct {
	Listen    string
	HTTP      string
	Mirrors   []string
	Selective int
	Coalesce  int
	ChkptFreq int
	StatePad  int
	// Shards/ReqWorkers tune the init-state serving path (0 = the
	// ede/core defaults).
	Shards     int
	ReqWorkers int
	// LogDir, when non-empty, durably records every client state
	// update in a segmented operations log (the paper's logging
	// database consumer).
	LogDir string
	// Adapt enables runtime adaptation between the paper's two
	// mirroring functions, engaging when any site's pending-request
	// buffer reaches AdaptPrimary and reverting below
	// AdaptPrimary-AdaptSecondary.
	Adapt          bool
	AdaptPrimary   int
	AdaptSecondary int
	// AuditPath, when non-empty (and Adapt is on), durably records
	// every adaptation transition as JSONL at this path.
	AuditPath string
}

// centralSite bundles everything a running central site owns.
type centralSite struct {
	Central *core.Central
	Front   *httpfront.Front
	// Obs is the site-wide metrics registry, served at /metrics and
	// dumped by -metricsdump; Tracer feeds its lifecycle histograms.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	// Controller is non-nil when runtime adaptation is enabled; Audit
	// is its transition log (durable when -auditlog was configured).
	Controller *adapt.Controller
	Audit      *obs.AuditLog
	// Log is non-nil when -log was configured.
	Log *oislog.Log
	// Addr and HTTPAddr are the bound listen addresses.
	Addr     string
	HTTPAddr string
	srv      *echo.Server
	bus      *echo.Bus
	links    []interface{ Close() error }
}

// startCentral assembles a central site: an event-channel server for
// ingress and control-up traffic, send links to every mirror, and an
// HTTP front for client requests.
// registerSlabMetrics exports the process-wide batch-frame slab-pool
// counters on a site registry (they are global to the event package,
// so every site of one process reports the same values).
func registerSlabMetrics(r *obs.Registry) {
	r.Describe("slab_pool_hit_total", "Batch-frame slabs served from the pool.")
	r.Describe("slab_pool_miss_total", "Batch-frame slabs freshly allocated on pool miss.")
	r.Describe("slab_pool_retained_total", "Batch-frame slabs returned to the pool for reuse.")
	r.CounterFunc("slab_pool_hit_total", func() float64 { h, _, _ := event.SlabPoolStats(); return float64(h) })
	r.CounterFunc("slab_pool_miss_total", func() float64 { _, m, _ := event.SlabPoolStats(); return float64(m) })
	r.CounterFunc("slab_pool_retained_total", func() float64 { _, _, r := event.SlabPoolStats(); return float64(r) })
}

func startCentral(opts centralOptions) (*centralSite, error) {
	s := &centralSite{bus: echo.NewBus(), Obs: obs.NewRegistry()}
	s.Tracer = obs.NewTracer(s.Obs)
	registerSlabMetrics(s.Obs)

	// Dial every mirror before constructing the central so its
	// sending task has live links from the first event (and a bad
	// mirror address fails site startup immediately). The links redial
	// on the next submit after a failure, so a mirror that crashes and
	// restarts on the same address can be recovered over the same
	// MirrorLink by Membership.Rejoin.
	var mirrorLinks []core.MirrorLink
	for _, addr := range opts.Mirrors {
		data, err := dialReconnecting(addr, chanData)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dialing mirror %s data channel: %w", addr, err)
		}
		s.links = append(s.links, data)
		ctrl, err := dialReconnecting(addr, chanCtrlDown)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dialing mirror %s control channel: %w", addr, err)
		}
		s.links = append(s.links, ctrl)
		mirrorLinks = append(mirrorLinks, core.MirrorLink{Data: data, Ctrl: ctrl})
	}

	// The central EDE's output stream is exported on the updates
	// channel for remote thin clients, and optionally tee'd into the
	// durable operations log.
	updatesCh, err := s.bus.Open(chanUpdates)
	if err != nil {
		s.Close()
		return nil, err
	}
	mainCfg := core.MainConfig{
		EDE:            ede.Config{Model: costmodel.Default, StatePadding: opts.StatePad, Shards: opts.Shards},
		RequestWorkers: opts.ReqWorkers,
		Out:            updatesCh,
	}
	if opts.LogDir != "" {
		logOut, err := oislog.Open(opts.LogDir, oislog.Options{})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.Log = logOut
		updatesCh.Subscribe(func(e *event.Event) { _ = logOut.Append(e) })
	}
	s.Central = core.NewCentral(core.CentralConfig{
		Streams: 2,
		Params: core.Params{
			Coalesce:       opts.Coalesce > 0,
			MaxCoalesce:    opts.Coalesce,
			CheckpointFreq: opts.ChkptFreq,
		},
		Model:    costmodel.Default,
		CPU:      &costmodel.CPU{},
		Main:     mainCfg,
		Mirrors:  mirrorLinks,
		NoMirror: len(mirrorLinks) == 0,
		Obs:      s.Obs,
		Tracer:   s.Tracer,
		OnMirrorSample: func(site int, sample core.Sample) {
			s.observeSample(site, sample)
		},
	})
	if opts.Selective > 0 {
		s.Central.InstallSelective(opts.Selective)
	}
	if opts.Adapt {
		fn1 := adapt.Regime{ID: 1, Name: "coalesce-10/chkpt-50", Coalesce: true, MaxCoalesce: 10, OverwriteLen: opts.Selective, CheckpointFreq: 50}
		fn2 := adapt.Regime{ID: 2, Name: "overwrite-20/chkpt-100", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
		s.Controller = adapt.NewController(fn1, fn2, adapt.InstallRegime(s.Central))
		primary, secondary := opts.AdaptPrimary, opts.AdaptSecondary
		if primary <= 0 {
			primary = 100
		}
		if secondary <= 0 {
			secondary = primary / 2
		}
		s.Controller.SetMonitorValues(adapt.VarPending, primary, secondary)
		s.Controller.RegisterMetrics(s.Obs)
		s.Audit = obs.NewAuditLog(0)
		if opts.AuditPath != "" {
			if err := s.Audit.OpenDurable(opts.AuditPath); err != nil {
				s.Close()
				return nil, fmt.Errorf("opening audit log: %w", err)
			}
		}
		s.Controller.SetAudit(s.Audit)
		s.Central.SetPiggyback(func() []byte {
			s.Controller.Observe(s.Central.Sample())
			return adapt.EncodeRegime(s.Controller.Current())
		})
	}

	// Export ingress and control-up channels.
	ingress, err := s.bus.Open(chanIngress)
	if err != nil {
		s.Close()
		return nil, err
	}
	ingress.Subscribe(func(e *event.Event) { _ = s.Central.Ingest(e) })
	ctrlUp, err := s.bus.Open(chanCtrlUp)
	if err != nil {
		s.Close()
		return nil, err
	}
	ctrlUp.Subscribe(s.Central.HandleControl)

	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("listening on %s: %w", opts.Listen, err)
	}
	s.Addr = ln.Addr().String()
	s.srv = echo.NewServer(s.bus)
	go s.srv.Serve(ln)

	s.Front = httpfront.NewWithRegistry(s.Central.Main(), s.Obs)
	// Gate agents and similar clients may generate state updates;
	// they enter through the central site's receiving task.
	s.Front.EnableUpdates(s.Central.Ingest)
	s.Front.SetStatus(s.Status)
	httpAddr, err := s.Front.Listen(opts.HTTP)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.HTTPAddr = httpAddr
	return s, nil
}

// Status builds the aggregated cluster-status document served at
// /cluster/status: the central regime and monitored variables, per-link
// wire telemetry, per-site rows from the controller's last piggybacked
// samples, rejoin accounting, and the adaptation audit tail.
func (s *centralSite) Status() status.Document {
	return status.Central(status.CentralSources{
		Site:       "central",
		Central:    s.Central,
		Controller: s.Controller,
		Audit:      s.Audit,
	})
}

// observeSample forwards piggybacked mirror monitor samples to the
// adaptation controller, when one is installed, keyed by the
// reporting site.
func (s *centralSite) observeSample(site int, sample core.Sample) {
	if s.Controller != nil {
		s.Controller.ObserveSite(site, sample)
	}
}

// Close tears the site down.
func (s *centralSite) Close() error {
	if s.Front != nil {
		s.Front.Close()
	}
	if s.srv != nil {
		s.srv.Close()
	}
	if s.Central != nil {
		s.Central.Close()
	}
	if s.Log != nil {
		s.Log.Close()
	}
	if s.Audit != nil {
		s.Audit.Close()
	}
	for _, l := range s.links {
		l.Close()
	}
	if s.bus != nil {
		s.bus.Close()
	}
	return nil
}

type mirrorOptions struct {
	Listen  string
	HTTP    string
	Central string
	// SiteID is this mirror's index in the central site's -mirrors
	// list. It is stamped on checkpoint replies so the coordinator's
	// per-site reply accounting and the failure detector can tell the
	// mirrors apart.
	SiteID   int
	StatePad int
	// Shards/ReqWorkers tune the init-state serving path (0 = the
	// ede/core defaults).
	Shards     int
	ReqWorkers int
	// Standby arms this site as the warm-standby central: its EDE
	// journals mutations per committed cut so a promoted replacement
	// central can keep serving incremental (delta) rejoins to the
	// surviving mirrors, and the takeover runtime (when armed via
	// Peers/TakeoverBudget) promotes it directly on central failure
	// instead of holding an election.
	Standby bool
	// StandbyHorizon bounds the standby journal in committed cuts
	// (0 = the core default).
	StandbyHorizon int
	// Peers is the shared cluster manifest: every mirror site's
	// event-channel address, indexed by site ID (entry SiteID is this
	// site's own). Together with TakeoverBudget > 0 it arms the
	// wire-takeover runtime; see takeover.go.
	Peers []string
	// TakeoverBudget is how many consecutive detection intervals
	// without a new checkpoint round the site tolerates before
	// declaring the central dead (0 disarms wire takeover).
	TakeoverBudget int
	// TakeoverInterval is the detection ticker period (0 = the
	// takeover.go default). Align it with the expected checkpoint
	// round cadence.
	TakeoverInterval time.Duration
	// Advertise overrides the address announced to survivors after a
	// promotion (default Peers[SiteID]).
	Advertise string
}

// Uplink dial/write bounds: one unreachable or wedged peer must fail a
// submission in bounded time instead of holding the uplink mutex (and
// every submitter behind it) forever.
const (
	defaultDialTimeout  = 3 * time.Second
	defaultWriteTimeout = 5 * time.Second
)

// lazyUplink is a self-healing send link to one channel of a peer
// site: it dials on first use and redials after failures. Mirrors use
// it for the control uplink so they can start before the central site
// exists (the documented startup order); the central uses it (via
// dialReconnecting, which dials eagerly) for its per-mirror data and
// control downlinks so a restarted mirror can be re-admitted over the
// same link. Every dial and write carries a deadline, and Repoint
// swings the link to a new peer address (wire takeover: survivors
// redial the promoted central).
type lazyUplink struct {
	name string

	mu   sync.Mutex
	addr string
	link *echo.SendLink
	// dialTimeout/writeTimeout bound the dial and each write (zero
	// values fall back to the package defaults; tests shrink them).
	dialTimeout  time.Duration
	writeTimeout time.Duration
}

// ensureLocked dials the link if needed. Callers hold l.mu.
func (l *lazyUplink) ensureLocked() error {
	if l.link != nil {
		return nil
	}
	dt := l.dialTimeout
	if dt <= 0 {
		dt = defaultDialTimeout
	}
	link, err := echo.DialSendTimeout(l.addr, l.name, dt)
	if err != nil {
		return err
	}
	wt := l.writeTimeout
	if wt <= 0 {
		wt = defaultWriteTimeout
	}
	link.SetWriteTimeout(wt)
	l.link = link
	return nil
}

// Repoint swings the uplink to a new peer address: the current
// connection (if any) is closed and the next submission dials addr.
func (l *lazyUplink) Repoint(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addr = addr
	if l.link != nil {
		l.link.Close()
		l.link = nil
	}
}

// Addr returns the peer address the uplink currently targets.
func (l *lazyUplink) Addr() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.addr
}

// Submit implements core.Sender.
func (l *lazyUplink) Submit(e *event.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ensureLocked(); err != nil {
		return err
	}
	if err := l.link.Submit(e); err != nil {
		l.link.Close()
		l.link = nil
		return err
	}
	return nil
}

// SubmitBatch implements core.BatchSender: the whole batch rides one
// framed write on the underlying link.
func (l *lazyUplink) SubmitBatch(events []*event.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ensureLocked(); err != nil {
		return err
	}
	if err := l.link.SubmitBatch(events); err != nil {
		l.link.Close()
		l.link = nil
		return err
	}
	return nil
}

// SubmitOwned implements core.OwnedBatchSender: the underlying
// echo.SendLink only encodes the views into its write buffer, so
// nothing outlives the call and the caller's slabs stay reusable.
func (l *lazyUplink) SubmitOwned(events []*event.Event, _ event.Ref) error {
	return l.SubmitBatch(events)
}

// dialReconnecting returns a lazyUplink whose first dial has already
// succeeded, so an unreachable address still fails fast at startup.
func dialReconnecting(addr, name string) (*lazyUplink, error) {
	l := &lazyUplink{addr: addr, name: name}
	l.mu.Lock()
	err := l.ensureLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Close shuts the current link down.
func (l *lazyUplink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.link != nil {
		err := l.link.Close()
		l.link = nil
		return err
	}
	return nil
}

// mirrorSite bundles everything a running mirror site owns.
type mirrorSite struct {
	Mirror *core.MirrorSite
	Front  *httpfront.Front
	// Obs is the site-wide metrics registry, served at /metrics and
	// dumped by -metricsdump; Tracer feeds its lifecycle histograms.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	// Applier consumes the adaptation directives the central
	// piggybacks on checkpoint traffic (and delivers via recovery
	// snapshots), installing them on Mirror with round-watermark
	// dedup; it backs the site's adapt_regime_id gauge.
	Applier *adapt.Applier
	// Addr and HTTPAddr are the bound listen addresses.
	Addr     string
	HTTPAddr string
	site     string
	srv      *echo.Server
	bus      *echo.Bus
	uplink   *lazyUplink
	// takeover is the wire-takeover runtime (nil when disarmed);
	// promoted holds the central this site became after a takeover.
	takeover *takeoverRuntime
	promoted atomic.Pointer[promotedCentral]
}

// startMirror assembles a mirror site: an event-channel server
// exporting its data and control channels, a (lazily dialed) uplink
// to the central site, and an HTTP front.
func startMirror(opts mirrorOptions) (*mirrorSite, error) {
	s := &mirrorSite{bus: echo.NewBus(), Obs: obs.NewRegistry(), site: fmt.Sprintf("mirror%d", opts.SiteID)}
	s.Tracer = obs.NewTracer(s.Obs)
	registerSlabMetrics(s.Obs)
	uplink := &lazyUplink{addr: opts.Central, name: chanCtrlUp}
	s.uplink = uplink
	s.Applier = adapt.NewApplier(nil)
	s.Applier.RegisterMetrics(s.Obs, fmt.Sprintf("mirror%d", opts.SiteID))

	s.Mirror = core.NewMirrorSite(core.MirrorSiteConfig{
		Main: core.MainConfig{
			EDE:            ede.Config{Model: costmodel.Default, StatePadding: opts.StatePad, Shards: opts.Shards},
			RequestWorkers: opts.ReqWorkers,
		},
		Model:          costmodel.Default,
		CPU:            &costmodel.CPU{},
		SiteID:         uint8(opts.SiteID),
		Standby:        opts.Standby,
		StandbyHorizon: opts.StandbyHorizon,
		Obs:            s.Obs,
		Tracer:         s.Tracer,
		OnPiggyback: func(round uint64, b []byte) {
			s.Applier.Apply(round, b)
		},
		CtrlUp: uplink,
	})
	s.Applier.SetInstall(adapt.InstallMirrorRegime(s.Mirror))

	data, err := s.bus.Open(chanData)
	if err != nil {
		s.Close()
		return nil, err
	}
	data.SubscribeBatch(s.Mirror.HandleData, func(es []*event.Event, ref event.Ref) {
		_ = s.Mirror.HandleOwnedBatch(es, ref)
	})
	ctrl, err := s.bus.Open(chanCtrlDown)
	if err != nil {
		s.Close()
		return nil, err
	}
	ctrl.Subscribe(s.handleCtrlDown)

	// Arm the takeover runtime before the event-channel server starts:
	// handleCtrlDown reads s.takeover from connection goroutines.
	if opts.TakeoverBudget > 0 && len(opts.Peers) > 0 {
		t, err := newTakeoverRuntime(s, opts)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.takeover = t
	}

	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("listening on %s: %w", opts.Listen, err)
	}
	s.Addr = ln.Addr().String()
	s.srv = echo.NewServer(s.bus)
	go s.srv.Serve(ln)

	s.Front = httpfront.NewWithRegistry(s.Mirror.Main(), s.Obs)
	s.Front.SetStatus(s.Status)
	httpAddr, err := s.Front.Listen(opts.HTTP)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.HTTPAddr = httpAddr

	if s.takeover != nil {
		s.takeover.start()
	}
	return s, nil
}

// handleCtrlDown dispatches control-downlink traffic: takeover frames
// (TAKEOVER announcements, ELECT claims) go to the takeover runtime,
// everything else to the mirror's checkpoint state machine.
func (s *mirrorSite) handleCtrlDown(e *event.Event) {
	if t := s.takeover; t != nil && t.handleControl(e) {
		return
	}
	s.Mirror.HandleControl(e)
}

// Status builds this site's status document: the mirror-local view
// (applier-held regime, monitored variables), or — after a wire
// takeover promoted this site — the full central document. Either way
// an armed takeover runtime reports its state.
func (s *mirrorSite) Status() status.Document {
	var doc status.Document
	if pc := s.promoted.Load(); pc != nil {
		doc = status.Central(status.CentralSources{Site: s.site, Central: pc.Central})
	} else {
		doc = status.Mirror(s.site, s.Mirror, s.Applier)
	}
	if s.takeover != nil {
		doc.Takeover = s.takeover.Info()
	}
	return doc
}

// Close tears the site down.
func (s *mirrorSite) Close() error {
	if s.takeover != nil {
		s.takeover.stopAndWait()
	}
	if s.Front != nil {
		s.Front.Close()
	}
	if s.srv != nil {
		s.srv.Close()
	}
	if pc := s.promoted.Load(); pc != nil {
		pc.Close()
	}
	if s.Mirror != nil {
		s.Mirror.Close()
	}
	if s.uplink != nil {
		s.uplink.Close()
	}
	if s.bus != nil {
		s.bus.Close()
	}
	return nil
}
