// Command mirrord runs one site of the mirrored OIS server over TCP.
//
// A deployment runs one central site and any number of mirror sites,
// mirrors first:
//
//	mirrord -role mirror  -listen :7001 -central host0:7000 -http :8001 -site 0
//	mirrord -role mirror  -listen :7002 -central host0:7000 -http :8002 -site 1
//	mirrord -role central -listen :7000 -mirrors host1:7001,host2:7002 -http :8000 \
//	        -selective 10 -chkpt 50
//
// Sources feed the central site with cmd/oisgen; clients fetch
// initialization state from any site's HTTP front (exercised with
// cmd/loadgen).
//
// Adding -peers (the cluster manifest) and -takeover-budget to the
// mirrors arms wire takeover: a killed central is detected by
// missed-round heartbeats, replaced by the -standby site (or by
// committed-cut election when none is designated), and the survivors
// redial the promoted address without restarting. See takeover.go and
// the README failover runbook.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/obs"
)

func main() {
	var (
		role       = flag.String("role", "", "site role: central or mirror")
		listen     = flag.String("listen", "127.0.0.1:7000", "event-channel listen address")
		httpAddr   = flag.String("http", "127.0.0.1:8000", "HTTP front listen address (client requests)")
		central    = flag.String("central", "", "mirror role: central site's event-channel address")
		siteID     = flag.Int("site", 0, "mirror role: this mirror's index in the central site's -mirrors list")
		standby    = flag.Bool("standby", false, "mirror role: arm this site as the warm-standby central (journals mutations per committed cut for post-promotion delta rejoins)")
		peers      = flag.String("peers", "", "mirror role: comma-separated event-channel addresses of every mirror site, indexed by -site (the cluster manifest; required to arm wire takeover)")
		tkBudget   = flag.Int("takeover-budget", 0, "mirror role: missed checkpoint-round intervals tolerated before declaring the central dead (0 = takeover disarmed)")
		tkInterval = flag.Duration("takeover-interval", defaultTakeoverInterval, "mirror role: central-liveness detection interval")
		advertise  = flag.String("advertise", "", "mirror role: event-channel address announced to survivors after this site promotes (default: this site's -peers entry)")
		mirrors    = flag.String("mirrors", "", "central role: comma-separated mirror event-channel addresses")
		selective  = flag.Int("selective", 0, "overwrite run length for FAA positions (0 = simple mirroring)")
		coalesce   = flag.Int("coalesce", 0, "coalesce up to N events before mirroring (0 = off)")
		chkpt      = flag.Int("chkpt", 50, "checkpoint once per N processed events")
		padding    = flag.Int("padding", 64, "per-flight init-state padding bytes")
		shards     = flag.Int("shards", 0, "EDE state shard count, rounded up to a power of two (0 = default)")
		workers    = flag.Int("reqworkers", 0, "init-state serving pool size (0 = default)")
		adaptOn    = flag.Bool("adapt", false, "central role: enable runtime adaptation between mirroring functions")
		adaptPri   = flag.Int("adapt-primary", 100, "pending-request primary threshold for adaptation")
		adaptSec   = flag.Int("adapt-secondary", 50, "hysteresis below primary for reverting")
		logDir     = flag.String("log", "", "central role: directory for the durable operations log (empty = disabled)")
		dumpEvery  = flag.Duration("metricsdump", 0, "dump the metrics registry to stdout this often, in the Prometheus text format (0 = off)")
		auditPath  = flag.String("auditlog", "", "central role with -adapt: durable JSONL file recording every adaptation transition")
		statusAddr = flag.String("statusaddr", "", "extra listen address serving the operations plane (/metrics and /cluster/status) on its own port")
	)
	flag.Parse()

	var (
		site  interface{ Close() error }
		reg   *obs.Registry
		front *httpfront.Front
		err   error
	)
	switch *role {
	case "central":
		var addrs []string
		if *mirrors != "" {
			addrs = strings.Split(*mirrors, ",")
		}
		var c *centralSite
		c, err = startCentral(centralOptions{
			Listen:         *listen,
			HTTP:           *httpAddr,
			Mirrors:        addrs,
			Selective:      *selective,
			Coalesce:       *coalesce,
			ChkptFreq:      *chkpt,
			StatePad:       *padding,
			Shards:         *shards,
			ReqWorkers:     *workers,
			Adapt:          *adaptOn,
			AdaptPrimary:   *adaptPri,
			AdaptSecondary: *adaptSec,
			LogDir:         *logDir,
			AuditPath:      *auditPath,
		})
		if err == nil {
			site, reg, front = c, c.Obs, c.Front
		}
	case "mirror":
		if *central == "" {
			fmt.Fprintln(os.Stderr, "mirrord: -central is required for the mirror role")
			os.Exit(2)
		}
		var peerAddrs []string
		if *peers != "" {
			peerAddrs = strings.Split(*peers, ",")
		}
		var m *mirrorSite
		m, err = startMirror(mirrorOptions{
			Listen:           *listen,
			HTTP:             *httpAddr,
			Central:          *central,
			SiteID:           *siteID,
			Standby:          *standby,
			StatePad:         *padding,
			Shards:           *shards,
			ReqWorkers:       *workers,
			Peers:            peerAddrs,
			TakeoverBudget:   *tkBudget,
			TakeoverInterval: *tkInterval,
			Advertise:        *advertise,
		})
		if err == nil {
			site, reg, front = m, m.Obs, m.Front
		}
	default:
		fmt.Fprintln(os.Stderr, "mirrord: -role must be central or mirror")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirrord: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mirrord: %s site up (events %s, http %s)\n", *role, *listen, *httpAddr)

	// The operations plane (/metrics, /cluster/status) is always part of
	// the client-facing front; -statusaddr additionally binds the same
	// mux on a dedicated listener so operators can firewall it apart
	// from client traffic.
	var statusSrv *http.Server
	if *statusAddr != "" {
		ln, lerr := net.Listen("tcp", *statusAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "mirrord: status listener: %v\n", lerr)
			os.Exit(1)
		}
		statusSrv = &http.Server{Handler: front.Handler()}
		go statusSrv.Serve(ln)
		fmt.Printf("mirrord: status plane on %s (/metrics, /cluster/status)\n", ln.Addr())
	}

	if *dumpEvery > 0 {
		go func() {
			t := time.NewTicker(*dumpEvery)
			defer t.Stop()
			for now := range t.C {
				fmt.Printf("# mirrord %s metrics %s\n", *role, now.Format(time.RFC3339))
				_ = reg.WritePrometheus(os.Stdout)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mirrord: shutting down")
	if statusSrv != nil {
		statusSrv.Close()
	}
	site.Close()
}
