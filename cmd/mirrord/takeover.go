package main

// Wire-level central takeover. PR 9 proved lossless central failover
// in-process (MirrorSite.Promote -> CentralConfig.Resume, epoch-fenced
// checkpoint rounds); this file makes a deployed mirrord cluster
// survive its central the same way, over TCP:
//
//   - Detection: a ticker drives core.StandbyMonitor against the
//     site's checkpoint-round watermark. After budget+1 intervals
//     without a new round the site probes the central's TCP address
//     (an idle but live central still accepts; a killed one refuses)
//     and, if the probe fails too, declares the central dead.
//   - Promotion: the designated -standby site promotes itself
//     directly. Without a standby, mirrors hold an election: each
//     candidate broadcasts an epoch-stamped ELECT claim on its peers'
//     ctrl.down channels; the highest committed cut wins, ties break
//     to the lowest site ID. Losers defer and wait for the winner's
//     announcement, re-opening the election if it never comes.
//   - Announcement: the promoted site broadcasts a TAKEOVER frame
//     (epoch, new ctrl.up address, adopted-state anchor) on every
//     survivor's ctrl.down until the survivor rejoins. Survivors
//     repoint their uplink, pick a rejoin cut by comparing their
//     arrival watermark against the anchor, and send a
//     RECOVERY_REQ on the new uplink; the promoted central re-admits
//     them through Membership.RejoinSince.
//
// Epoch fencing: a survivor records the first announcement it accepts
// per epoch and rejects same-or-older epochs from any other address,
// and the PR 9 coordinator floor rejects control traffic from older
// epochs, so two would-be centrals can never split the cluster.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/event"
	"adaptmirror/internal/status"
	"adaptmirror/internal/vclock"
)

const (
	// defaultTakeoverInterval is the detection ticker period; align it
	// with the expected checkpoint-round cadence.
	defaultTakeoverInterval = 500 * time.Millisecond
	// defaultPromotedChkptFreq is the checkpoint frequency a promoted
	// central starts with when no directive ever told the mirror the
	// central's parameters.
	defaultPromotedChkptFreq = 50
	// rejoinWriteTimeout bounds recovery-transfer writes on the
	// promoted central's data downlinks (snapshots are much larger
	// than control frames).
	rejoinWriteTimeout = 30 * time.Second
	// promotedMissBudget is the promoted central's failure-detector
	// budget in consecutive checkpoint rounds. Rounds are traffic-driven
	// — a source burst can start thousands per second — while survivor
	// replies lag a full TCP round trip, so the in-process default (8)
	// falsely excludes healthy survivors mid-burst and the fan-out's
	// liveness gate then silently discards their batches. The wire
	// detector only needs to unstick commits when a survivor really
	// dies; hundreds of outstanding rounds resolve in milliseconds at
	// burst rate, so a generous budget costs nothing.
	promotedMissBudget = 256
)

// Takeover roles (status.Takeover.Role).
const (
	roleFollower  = "follower"
	roleStandby   = "standby"
	roleCandidate = "candidate"
	rolePromoted  = "promoted"
)

var errSelfSlot = errors.New("mirrord: promoted site's own mirror slot")

// deadLink fills the promoted site's own slot in its Mirrors slice:
// the slot stays excluded forever (this site IS the central now), so
// the link only ever fails fast.
type deadLink struct{}

func (deadLink) Submit(*event.Event) error { return errSelfSlot }

// promotedCentral is everything a mirror site owns after winning a
// takeover: the resumed central, its membership, and the downlinks to
// the surviving mirrors.
type promotedCentral struct {
	Central *core.Central
	Member  *core.Membership
	Ann     core.TakeoverAnnouncement
	// ctrl holds the per-slot ctrl.down links for announcements (nil
	// at the promoted site's own slot); links holds every dialed link
	// for Close.
	ctrl     []*lazyUplink
	links    []*lazyUplink
	rejoinMu []sync.Mutex
}

// Close shuts the promoted central and its downlinks down.
func (pc *promotedCentral) Close() error {
	pc.Central.Close()
	for _, l := range pc.links {
		l.Close()
	}
	return nil
}

// excluded reports whether slot is still voted out of the quorum.
func (pc *promotedCentral) excluded(slot int) bool {
	for _, i := range pc.Member.Failed() {
		if i == slot {
			return true
		}
	}
	return false
}

// takeoverRuntime drives one mirror site's side of the wire-takeover
// protocol.
type takeoverRuntime struct {
	s         *mirrorSite
	peers     []string
	self      int
	standby   bool
	budget    int
	interval  time.Duration
	advertise string

	stats *core.TakeoverStats

	mu    sync.Mutex
	mon   *core.StandbyMonitor
	phase string
	// seenEpoch/seenAddr fence announcements: the first accepted
	// announcement per epoch wins, any other address is rejected.
	seenEpoch uint64
	seenAddr  string
	// claims records rival election claims per contested epoch;
	// lastReply throttles claim replies per epoch.
	claims    map[uint64]map[uint8]core.ElectionClaim
	lastReply map[uint64]time.Time
	myClaim   core.ElectionClaim
	// firedRound is the round watermark at failure declaration; rounds
	// advancing past it in the same epoch prove the central alive and
	// abort a candidacy.
	firedRound     uint64
	nextDecision   time.Time
	awaitingWinner bool

	stop     chan struct{}
	done     chan struct{}
	started  bool
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newTakeoverRuntime validates the manifest and builds the runtime
// (not yet ticking; call start).
func newTakeoverRuntime(s *mirrorSite, opts mirrorOptions) (*takeoverRuntime, error) {
	if opts.SiteID < 0 || opts.SiteID >= len(opts.Peers) {
		return nil, fmt.Errorf("takeover: site %d outside the peers manifest (%d entries)", opts.SiteID, len(opts.Peers))
	}
	interval := opts.TakeoverInterval
	if interval <= 0 {
		interval = defaultTakeoverInterval
	}
	advertise := opts.Advertise
	if advertise == "" {
		advertise = opts.Peers[opts.SiteID]
	}
	return &takeoverRuntime{
		s:         s,
		peers:     append([]string(nil), opts.Peers...),
		self:      opts.SiteID,
		standby:   opts.Standby,
		budget:    opts.TakeoverBudget,
		interval:  interval,
		advertise: advertise,
		stats:     core.RegisterTakeoverMetrics(s.Obs, s.site),
		mon:       core.NewStandbyMonitor(s.Mirror.LastRound, opts.TakeoverBudget),
		phase:     roleFollower,
		claims:    make(map[uint64]map[uint8]core.ElectionClaim),
		lastReply: make(map[uint64]time.Time),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

func (t *takeoverRuntime) start() {
	t.mu.Lock()
	t.started = true
	t.mu.Unlock()
	go t.run()
}

func (t *takeoverRuntime) stopAndWait() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.mu.Lock()
	started := t.started
	t.mu.Unlock()
	if started {
		<-t.done
	}
	t.wg.Wait()
}

func (t *takeoverRuntime) run() {
	defer close(t.done)
	tk := time.NewTicker(t.interval)
	defer tk.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tk.C:
			t.tick()
		}
	}
}

// curEpochLocked is the highest central epoch this site knows: from
// accepted announcements or from the epoch partition of its observed
// rounds. Callers hold t.mu.
func (t *takeoverRuntime) curEpochLocked() uint64 {
	e := t.s.Mirror.LastRound() >> checkpoint.EpochShift
	if t.seenEpoch > e {
		return t.seenEpoch
	}
	return e
}

func (t *takeoverRuntime) electWindow() time.Duration { return 2 * t.interval }

func (t *takeoverRuntime) deferWindow() time.Duration {
	return time.Duration(t.budget+3) * t.interval
}

// tick runs one detection interval.
func (t *takeoverRuntime) tick() {
	t.mu.Lock()
	switch t.phase {
	case rolePromoted:
		t.mu.Unlock()
		return
	case roleCandidate:
		t.candidateTickLocked() // unlocks t.mu
		return
	}
	// Before the first observed round there is no heartbeat to miss:
	// the documented startup order brings mirrors up before the
	// central exists.
	if t.s.Mirror.LastRound() == 0 && t.seenEpoch == 0 {
		t.mu.Unlock()
		return
	}
	if !t.mon.Tick() {
		t.mu.Unlock()
		return
	}
	// Missed-round budget exhausted. Rounds only advance with traffic,
	// so first distinguish "idle" from "dead": a live central still
	// accepts TCP on its event-channel address.
	if t.probeAlive(t.s.uplink.Addr()) {
		t.mon = core.NewStandbyMonitor(t.s.Mirror.LastRound, t.budget)
		t.mu.Unlock()
		return
	}
	t.stats.Fired.Add(1)
	epoch := t.curEpochLocked() + 1
	if t.standby {
		fmt.Printf("mirrord: %s: central dead (missed-round budget %d exhausted) — standby takeover, epoch %d\n",
			t.s.site, t.budget, epoch)
		t.promoteLocked(epoch)
		t.mu.Unlock()
		return
	}
	// No standby designated: open an election for the next epoch.
	t.phase = roleCandidate
	t.firedRound = t.s.Mirror.LastRound()
	t.myClaim = core.ElectionClaim{Epoch: epoch, Site: uint8(t.self), Cut: t.s.Mirror.Backup().Committed()}
	t.nextDecision = time.Now().Add(t.electWindow())
	t.awaitingWinner = false
	claim := t.myClaim
	t.mu.Unlock()
	fmt.Printf("mirrord: %s: central dead — electing for epoch %d (cut %s)\n", t.s.site, epoch, claim.Cut)
	t.broadcastClaim(claim)
}

// candidateTickLocked advances an open election. Called with t.mu held
// and responsible for releasing it.
func (t *takeoverRuntime) candidateTickLocked() {
	// Rounds resuming in the pre-election epoch prove the central was
	// alive after all: abort.
	lr := t.s.Mirror.LastRound()
	if lr > t.firedRound && lr>>checkpoint.EpochShift == t.myClaim.Epoch-1 {
		t.phase = roleFollower
		t.mon = core.NewStandbyMonitor(t.s.Mirror.LastRound, t.budget)
		t.mu.Unlock()
		return
	}
	if time.Now().Before(t.nextDecision) {
		t.mu.Unlock()
		return
	}
	epoch := t.myClaim.Epoch
	if t.awaitingWinner {
		// The better-placed rival never announced (it may have died
		// too). Drop recorded rivals — live ones re-assert on seeing
		// our claim — and re-open the election.
		delete(t.claims, epoch)
		t.awaitingWinner = false
		t.myClaim.Cut = t.s.Mirror.Backup().Committed()
		t.nextDecision = time.Now().Add(t.electWindow())
		claim := t.myClaim
		t.mu.Unlock()
		t.broadcastClaim(claim)
		return
	}
	for _, rival := range t.claims[epoch] {
		if rival.Site == uint8(t.self) {
			continue
		}
		if !t.myClaim.Beats(rival) {
			t.awaitingWinner = true
			t.nextDecision = time.Now().Add(t.deferWindow())
			t.mu.Unlock()
			return
		}
	}
	fmt.Printf("mirrord: %s: election won — promoting, epoch %d\n", t.s.site, epoch)
	t.promoteLocked(epoch)
	t.mu.Unlock()
}

// probeAlive reports whether addr still accepts TCP connections. The
// timeout is floored at a full second regardless of how aggressive the
// detection interval is: a killed central refuses instantly, so a
// generous timeout costs nothing there, while a short one risks a
// false death verdict (and a spurious election) against a live but
// momentarily slow peer.
func (t *takeoverRuntime) probeAlive(addr string) bool {
	if addr == "" {
		return false
	}
	d := t.interval
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// promoteLocked converts this mirror site into the epoch's central:
// Promote captures the site's state, a resumed Central adopts it, all
// survivor slots start excluded, and the announcement loop re-admits
// them as they redial. Callers hold t.mu.
func (t *takeoverRuntime) promoteLocked(epoch uint64) {
	s := t.s
	state := s.Mirror.Promote()
	state.Epoch = epoch
	if reg, round, ok := s.Applier.Current(); ok {
		state.Directive = adapt.EncodeRegime(reg)
		state.DirectiveRound = round
	}
	_, params, overwrite := s.Mirror.Regime()
	if params.CheckpointFreq <= 0 {
		params.CheckpointFreq = defaultPromotedChkptFreq
	}

	// Downlinks to every survivor, indexed by ORIGINAL site ID so the
	// SiteID survivors stamp on checkpoint replies keeps addressing
	// the right slot; our own slot gets a dead stub and stays excluded
	// forever.
	mirrors := make([]core.MirrorLink, len(t.peers))
	pc := &promotedCentral{
		ctrl:     make([]*lazyUplink, len(t.peers)),
		rejoinMu: make([]sync.Mutex, len(t.peers)),
	}
	for i, addr := range t.peers {
		if i == t.self {
			mirrors[i] = core.MirrorLink{Data: deadLink{}, Ctrl: deadLink{}}
			continue
		}
		data := &lazyUplink{addr: addr, name: chanData, writeTimeout: rejoinWriteTimeout}
		ctrl := &lazyUplink{addr: addr, name: chanCtrlDown}
		pc.links = append(pc.links, data, ctrl)
		pc.ctrl[i] = ctrl
		mirrors[i] = core.MirrorLink{Data: data, Ctrl: ctrl}
	}
	streams := len(state.Clock)
	if streams == 0 {
		streams = 1
	}
	central := core.NewCentral(core.CentralConfig{
		Streams: streams,
		Params:  params,
		Model:   costmodel.Default,
		CPU:     &costmodel.CPU{},
		Mirrors: mirrors,
		Obs:     s.Obs,
		Tracer:  s.Tracer,
		Resume:  &state,
	})
	if overwrite > 0 {
		central.InstallSelective(overwrite)
	}
	pc.Central = central
	pc.Member = core.NewMembership(central, core.MembershipConfig{MissedRounds: promotedMissBudget})
	for i := range mirrors {
		_ = pc.Member.Exclude(i)
	}
	pc.Ann = core.TakeoverAnnouncement{
		Epoch:  epoch,
		Addr:   t.advertise,
		Anchor: central.Main().LastProcessed(),
	}

	// The site's event-channel server now serves the central role too:
	// sources feed ingress, survivors reply on ctrl.up. The HTTP front
	// keeps serving /init from the adopted main unit untouched, and
	// additionally accepts client updates like any central.
	if ingress, err := s.bus.Open(chanIngress); err == nil {
		ingress.Subscribe(func(e *event.Event) { _ = central.Ingest(e) })
	}
	if ctrlUp, err := s.bus.Open(chanCtrlUp); err == nil {
		ctrlUp.Subscribe(func(e *event.Event) { t.handleCtrlUp(pc, e) })
	}
	s.Front.EnableUpdates(central.Ingest)

	t.phase = rolePromoted
	t.seenEpoch = epoch
	t.seenAddr = t.advertise
	s.promoted.Store(pc)
	t.wg.Add(1)
	go t.announceLoop(pc)
}

// announceLoop broadcasts the takeover on every still-excluded
// survivor's ctrl.down. It never exits while the site runs: after the
// initial convergence it keeps ticking as the re-admission heartbeat,
// so a survivor the failure detector excludes later — a stall, a
// crash-and-restart on the same address — hears the announcement
// again, re-sends its rejoin request, and is re-admitted through the
// same RejoinSince path. Converged ticks send nothing.
func (t *takeoverRuntime) announceLoop(pc *promotedCentral) {
	defer t.wg.Done()
	frame := &event.Event{Type: event.TypeTakeover, Seq: pc.Ann.Epoch, Payload: pc.Ann.Encode()}
	tk := time.NewTicker(t.interval)
	defer tk.Stop()
	converged := false
	for {
		pending := false
		for i, ctrl := range pc.ctrl {
			if ctrl == nil || !pc.excluded(i) {
				continue
			}
			pending = true
			_ = ctrl.Submit(frame)
		}
		if !pending && !converged {
			fmt.Printf("mirrord: %s: takeover epoch %d converged — every survivor rejoined\n", t.s.site, pc.Ann.Epoch)
		}
		converged = !pending
		select {
		case <-t.stop:
			return
		case <-tk.C:
		}
	}
}

// handleCtrlUp routes the promoted central's ctrl.up traffic:
// checkpoint replies to the coordinator, recovery requests to rejoin
// service (on their own goroutine — a state transfer must not block
// the control channel's read loop).
func (t *takeoverRuntime) handleCtrlUp(pc *promotedCentral, e *event.Event) {
	if e.Type == event.TypeRecoveryRequest {
		slot := int(e.Seq)
		cut := e.VT.Clone()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveRejoin(pc, slot, cut)
		}()
		return
	}
	pc.Central.HandleControl(e)
}

// serveRejoin re-admits one survivor from its advertised cut.
func (t *takeoverRuntime) serveRejoin(pc *promotedCentral, slot int, cut vclock.VC) {
	if slot < 0 || slot >= len(pc.rejoinMu) || slot == t.self {
		return
	}
	pc.rejoinMu[slot].Lock()
	defer pc.rejoinMu[slot].Unlock()
	if !pc.excluded(slot) {
		return // duplicate request; already rejoined
	}
	if _, err := pc.Member.RejoinSince(slot, cut); err != nil {
		fmt.Printf("mirrord: %s: rejoining survivor %d: %v\n", t.s.site, slot, err)
		return
	}
	fmt.Printf("mirrord: %s: survivor %d rejoined (cut %s)\n", t.s.site, slot, cut)
}

// handleControl intercepts takeover frames on the mirror's ctrl.down
// channel; it reports whether it consumed the event.
func (t *takeoverRuntime) handleControl(e *event.Event) bool {
	switch e.Type {
	case event.TypeTakeover:
		if ann, err := core.DecodeTakeoverAnnouncement(e.Payload); err == nil {
			t.onAnnouncement(ann)
		}
		return true
	case event.TypeElect:
		if c, err := core.DecodeElectionClaim(e.Payload); err == nil {
			t.onClaim(c)
		}
		return true
	}
	return false
}

// onAnnouncement is the survivor side of a takeover: fence the epoch,
// repoint the uplink, and request re-admission from the right cut.
func (t *takeoverRuntime) onAnnouncement(ann core.TakeoverAnnouncement) {
	t.mu.Lock()
	if t.phase == rolePromoted {
		t.mu.Unlock()
		return
	}
	roundsEpoch := t.s.Mirror.LastRound() >> checkpoint.EpochShift
	switch {
	case ann.Epoch <= roundsEpoch || ann.Epoch < t.seenEpoch:
		// Stale: this site already runs in a same-or-newer epoch.
		t.mu.Unlock()
		return
	case ann.Epoch == t.seenEpoch:
		if ann.Addr != t.seenAddr {
			// Split-brain fencing: a second would-be central claiming
			// an epoch we already accepted from someone else.
			fmt.Printf("mirrord: %s: rejecting conflicting takeover claim for epoch %d from %s (accepted %s)\n",
				t.s.site, ann.Epoch, ann.Addr, t.seenAddr)
			t.mu.Unlock()
			return
		}
		// Retry of the accepted takeover: re-send the rejoin request
		// below (the first one may have been lost).
	default:
		// Fresh takeover: accept, repoint, re-arm detection against
		// the new central.
		t.seenEpoch, t.seenAddr = ann.Epoch, ann.Addr
		t.phase = roleFollower
		t.mon = core.NewStandbyMonitor(t.s.Mirror.LastRound, t.budget)
		t.stats.Repoints.Add(1)
		t.s.uplink.Repoint(ann.Addr)
		fmt.Printf("mirrord: %s: takeover epoch %d — repointing uplink to %s\n", t.s.site, ann.Epoch, ann.Addr)
	}
	// Rejoin-cut negotiation (the PR 9 rule): only a site whose
	// arrival watermark is covered by the adopted state may rejoin
	// from its committed cut; anything newer takes the full transfer.
	var cut vclock.VC
	if t.s.Mirror.ArrivalHigh().LessEq(ann.Anchor) {
		cut = t.s.Mirror.Backup().Committed()
	}
	t.mu.Unlock()
	req := &event.Event{Type: event.TypeRecoveryRequest, Seq: uint64(t.self), VT: cut}
	_ = t.s.uplink.Submit(req)
}

// onClaim records a rival's election claim and answers with this
// site's own standing (throttled), so a candidate's decision sees
// every live peer even before that peer's own monitor fires.
func (t *takeoverRuntime) onClaim(c core.ElectionClaim) {
	t.stats.Claims.Add(1)
	t.mu.Lock()
	if int(c.Site) == t.self {
		t.mu.Unlock()
		return
	}
	if t.phase == rolePromoted {
		// A late candidate did not hear the takeover yet: answer its
		// claim with the announcement directly so it stands down
		// before its election window closes.
		pc := t.s.promoted.Load()
		t.mu.Unlock()
		if pc != nil && c.Epoch <= pc.Ann.Epoch && int(c.Site) < len(pc.ctrl) && pc.ctrl[c.Site] != nil {
			_ = pc.ctrl[c.Site].Submit(&event.Event{Type: event.TypeTakeover, Seq: pc.Ann.Epoch, Payload: pc.Ann.Encode()})
		}
		return
	}
	if c.Epoch <= t.curEpochLocked() {
		t.mu.Unlock()
		return
	}
	m := t.claims[c.Epoch]
	if m == nil {
		m = make(map[uint8]core.ElectionClaim)
		t.claims[c.Epoch] = m
	}
	m[c.Site] = c
	var reply *core.ElectionClaim
	var replyAddr string
	if now := time.Now(); int(c.Site) < len(t.peers) && now.Sub(t.lastReply[c.Epoch]) >= t.interval {
		t.lastReply[c.Epoch] = now
		rc := core.ElectionClaim{Epoch: c.Epoch, Site: uint8(t.self), Cut: t.s.Mirror.Backup().Committed()}
		reply, replyAddr = &rc, t.peers[c.Site]
	}
	t.mu.Unlock()
	if reply != nil {
		t.sendClaim(replyAddr, *reply)
	}
}

// broadcastClaim sends an election claim to every peer concurrently.
func (t *takeoverRuntime) broadcastClaim(c core.ElectionClaim) {
	for i, addr := range t.peers {
		if i == t.self {
			continue
		}
		addr := addr
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.sendClaim(addr, c)
		}()
	}
}

// sendClaim delivers one claim over a transient link (peers may be
// dead; failures are expected and ignored).
func (t *takeoverRuntime) sendClaim(addr string, c core.ElectionClaim) {
	d := t.interval
	if d < 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	link, err := echo.DialSendTimeout(addr, chanCtrlDown, d)
	if err != nil {
		return
	}
	defer link.Close()
	if link.Submit(&event.Event{Type: event.TypeElect, Seq: c.Epoch, Stream: c.Site, Payload: c.Encode()}) == nil {
		t.stats.Claims.Add(1)
	}
}

// Info snapshots the runtime for /cluster/status.
func (t *takeoverRuntime) Info() *status.Takeover {
	t.mu.Lock()
	defer t.mu.Unlock()
	role := t.phase
	if role == roleFollower && t.standby {
		role = roleStandby
	}
	return &status.Takeover{
		Armed:       true,
		Role:        role,
		Budget:      t.budget,
		Missed:      t.mon.Missed(),
		Fired:       t.stats.Fired.Load() > 0,
		Epoch:       t.seenEpoch,
		CentralAddr: t.s.uplink.Addr(),
		Claims:      t.stats.Claims.Load(),
		Repoints:    t.stats.Repoints.Load(),
	}
}
