// Command statussmoke is the /cluster/status conformance gate: it
// boots a 2-mirror cluster with a real adaptation controller, runs a
// small workload, serves the central front over real HTTP, fetches
// /cluster/status like an operations dashboard would, and asserts the
// document is well-formed — central role, one link row per mirror with
// moving counters, checkpoint progress, and per-site rows. It exits
// non-zero on any violation (`make status-smoke`, part of `make ci`).
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/status"
)

func run() error {
	model := costmodel.Model{
		EventBase:     2 * time.Microsecond,
		SerializeBase: 500 * time.Nanosecond,
		SubmitBase:    200 * time.Nanosecond,
		RequestBase:   5 * time.Microsecond,
	}
	fn1 := adapt.Regime{ID: 1, Name: "coalesce-10", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Name: "overwrite-20", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	controller := adapt.NewController(fn1, fn2, nil)
	controller.SetMonitorValues(adapt.VarWireBytes, 1<<30, 0)
	cl, err := cluster.New(cluster.Config{
		Mirrors: 2,
		Model:   model,
		Params:  core.Params{CheckpointFreq: 50},
		OnMirrorSample: func(site int, s core.Sample) {
			controller.ObserveSite(site, s)
		},
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	controller.SetApply(adapt.InstallRegime(cl.Central))
	controller.RegisterMetrics(cl.Obs)
	cl.Controller = controller
	cl.Central.SetPiggyback(func() []byte {
		controller.Observe(cl.Central.Sample())
		return adapt.EncodeRegime(controller.Current())
	})

	events := cluster.BuildEvents(cluster.Options{
		Flights: 10, UpdatesPerFlight: 30, EventSize: 128, Seed: 1,
	})
	if err := cl.Feed(events); err != nil {
		return err
	}
	cl.DrainAll()

	front := httpfront.NewWithRegistry(cl.Central.Main(), cl.Obs)
	defer front.Close()
	front.SetStatus(cl.CentralStatus)
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	resp, err := http.Get("http://" + addr + "/cluster/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/cluster/status returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		return fmt.Errorf("/cluster/status Content-Type = %q, want application/json", ct)
	}
	var doc status.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decoding status document: %w", err)
	}

	// Well-formedness assertions.
	if doc.Site != "central" || doc.Role != "central" {
		return fmt.Errorf("document identifies as site=%q role=%q, want central/central", doc.Site, doc.Role)
	}
	if len(doc.Links) != 2 {
		return fmt.Errorf("document has %d link rows, want 2", len(doc.Links))
	}
	for i, l := range doc.Links {
		if l.Mirror != i {
			return fmt.Errorf("link row %d labeled mirror %d", i, l.Mirror)
		}
		if l.Sent == 0 || l.SentBytes == 0 {
			return fmt.Errorf("link %d shows no traffic (sent=%d bytes=%d)", i, l.Sent, l.SentBytes)
		}
		if l.BytesPerRound <= 0 {
			return fmt.Errorf("link %d wire telemetry never ticked (bytes/round=%v)", i, l.BytesPerRound)
		}
	}
	if doc.Checkpoint == nil || doc.Checkpoint.Commits == 0 {
		return fmt.Errorf("document shows no checkpoint progress: %+v", doc.Checkpoint)
	}
	if len(doc.Checkpoint.Cut) == 0 {
		return fmt.Errorf("document carries no committed cut")
	}
	if doc.Regime.ID != fn1.ID {
		return fmt.Errorf("central regime ID = %d, want baseline %d", doc.Regime.ID, fn1.ID)
	}
	if len(doc.Sites) < 3 {
		return fmt.Errorf("document has %d site rows, want central + 2 mirrors", len(doc.Sites))
	}
	for _, s := range doc.Sites {
		if s.Site != "central" && s.RegimeID != fn1.ID {
			return fmt.Errorf("site %s reports regime %d, want %d", s.Site, s.RegimeID, fn1.ID)
		}
	}
	if doc.Rejoin == nil {
		return fmt.Errorf("document omits rejoin accounting")
	}
	if doc.CentralEpoch != 0 {
		return fmt.Errorf("original central reports promotion epoch %d, want 0", doc.CentralEpoch)
	}

	// Mirror documents must be well-formed too.
	for i := range cl.Mirrors {
		md := cl.MirrorStatus(i)
		if md.Role != "mirror" || md.Site != fmt.Sprintf("mirror%d", i) {
			return fmt.Errorf("mirror %d document identifies as site=%q role=%q", i, md.Site, md.Role)
		}
		if md.Regime.ID != fn1.ID || md.Regime.DirectiveRound == 0 {
			return fmt.Errorf("mirror %d never installed a directive: %+v", i, md.Regime)
		}
		if md.CentralEpoch != doc.CentralEpoch {
			return fmt.Errorf("mirror %d derives epoch %d from its round watermark, central reports %d",
				i, md.CentralEpoch, doc.CentralEpoch)
		}
	}
	fmt.Printf("statussmoke: ok (%d links, %d sites, %d commits, %d audit entries)\n",
		len(doc.Links), len(doc.Sites), doc.Checkpoint.Commits, len(doc.Audit))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "statussmoke: %v\n", err)
		os.Exit(1)
	}
}
