// Command oisgen feeds a central site with operational data streams:
// a synthetic FAA flight-position stream and (optionally) a Delta
// flight-lifecycle stream, or a previously captured trace. It plays
// the role of the paper's "wide area collection infrastructure".
//
// Generate and stream live:
//
//	oisgen -central host0:7000 -flights 50 -updates 200 -size 1024 -rate 2000 -delta
//
// Capture a trace for reproducible replay, then replay it:
//
//	oisgen -save faa.trace -flights 50 -updates 200 -size 1024
//	oisgen -central host0:7000 -trace faa.trace -rate 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptmirror/internal/cluster"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/event"
	"adaptmirror/internal/trace"
)

func main() {
	var (
		central   = flag.String("central", "", "central site's event-channel address")
		flights   = flag.Int("flights", 50, "number of flights")
		updates   = flag.Int("updates", 100, "position updates per flight")
		size      = flag.Int("size", 1024, "event payload size in bytes")
		withDelta = flag.Bool("delta", false, "interleave the Delta lifecycle stream")
		pax       = flag.Int("passengers", 20, "gate-reader events per flight (with -delta)")
		rate      = flag.Float64("rate", 0, "events per second (0 = as fast as accepted)")
		seed      = flag.Int64("seed", 1, "generator seed")
		tracePath = flag.String("trace", "", "replay this trace file instead of generating")
		savePath  = flag.String("save", "", "save the generated stream to this trace file and exit")
	)
	flag.Parse()

	var events []*event.Event
	if *tracePath != "" {
		var err error
		events, err = trace.Load(*tracePath)
		if err != nil {
			fatal(err)
		}
	} else {
		events = cluster.BuildEvents(cluster.Options{
			Flights:          *flights,
			UpdatesPerFlight: *updates,
			EventSize:        *size,
			WithDelta:        *withDelta,
			Passengers:       *pax,
			Seed:             *seed,
		})
	}

	if *savePath != "" {
		if err := trace.Save(*savePath, events); err != nil {
			fatal(err)
		}
		fmt.Printf("oisgen: saved %d events to %s\n", len(events), *savePath)
		return
	}
	if *central == "" {
		fmt.Fprintln(os.Stderr, "oisgen: -central (or -save) is required")
		os.Exit(2)
	}

	link, err := echo.DialSend(*central, "ingress")
	if err != nil {
		fatal(err)
	}
	defer link.Close()

	start := time.Now()
	sent, err := stream(events, *rate, link.Submit)
	if err != nil {
		fatal(fmt.Errorf("after %d events: %w", sent, err))
	}
	elapsed := time.Since(start)
	fmt.Printf("oisgen: streamed %d events in %v (%.0f ev/s)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oisgen: %v\n", err)
	os.Exit(1)
}
