package main

import (
	"errors"
	"testing"
	"time"

	"adaptmirror/internal/cluster"
	"adaptmirror/internal/event"
)

func TestStreamFullSpeed(t *testing.T) {
	events := cluster.BuildEvents(cluster.Options{Flights: 3, UpdatesPerFlight: 10, Seed: 1})
	var got []*event.Event
	n, err := stream(events, 0, func(e *event.Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil || n != 30 || len(got) != 30 {
		t.Fatalf("stream = (%d, %v), got %d", n, err, len(got))
	}
}

func TestStreamPaced(t *testing.T) {
	events := cluster.BuildEvents(cluster.Options{Flights: 1, UpdatesPerFlight: 50, Seed: 1})
	start := time.Now()
	n, err := stream(events, 1000, func(*event.Event) error { return nil })
	if err != nil || n != 50 {
		t.Fatalf("stream = (%d, %v)", n, err)
	}
	// 50 events at 1000/s ≈ 50ms.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("paced stream finished in %v, want ~50ms", elapsed)
	}
}

func TestStreamStopsOnError(t *testing.T) {
	events := cluster.BuildEvents(cluster.Options{Flights: 1, UpdatesPerFlight: 10, Seed: 1})
	boom := errors.New("boom")
	n, err := stream(events, 0, func(e *event.Event) error {
		if e.Seq == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 3 {
		t.Fatalf("stream = (%d, %v)", n, err)
	}
}

func TestStreamWithDeltaMix(t *testing.T) {
	events := cluster.BuildEvents(cluster.Options{
		Flights: 2, UpdatesPerFlight: 20, WithDelta: true, Passengers: 3, Seed: 2,
	})
	var types = map[event.Type]int{}
	stream(events, 0, func(e *event.Event) error {
		types[e.Type]++
		return nil
	})
	if types[event.TypeFAAPosition] != 40 {
		t.Fatalf("positions = %d, want 40", types[event.TypeFAAPosition])
	}
	if types[event.TypeGateReader] != 6 {
		t.Fatalf("gate readers = %d, want 6", types[event.TypeGateReader])
	}
}
