package main

import (
	"time"

	"adaptmirror/internal/event"
)

// submitFunc sends one event toward the central site.
type submitFunc func(*event.Event) error

// stream pushes events through submit, optionally paced at rate
// events/second (0 = as fast as accepted). It returns how many events
// were sent and the first error encountered.
func stream(events []*event.Event, rate float64, submit submitFunc) (int, error) {
	if rate <= 0 {
		for i, e := range events {
			if err := submit(e); err != nil {
				return i, err
			}
		}
		return len(events), nil
	}
	start := time.Now()
	sent := 0
	for sent < len(events) {
		due := int(time.Since(start).Seconds() * rate)
		if due > len(events) {
			due = len(events)
		}
		for ; sent < due; sent++ {
			if err := submit(events[sent]); err != nil {
				return sent, err
			}
		}
		if sent < len(events) {
			time.Sleep(time.Millisecond)
		}
	}
	return sent, nil
}
