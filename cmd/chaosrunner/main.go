// Command chaosrunner drives the deterministic chaos suite from the
// shell: each seed fully determines a fault schedule and a workload,
// runs them against an in-process cluster, and machine-checks the
// mirroring invariants. Two schedule classes exist: "mirror" (a mirror
// crash-restarts, links partition, control links misbehave, one mirror
// runs slow) and "central" (the central site itself dies mid-run and
// the warm-standby mirror is promoted). A failing seed prints its
// schedule and replays exactly with -seed (see scripts/chaos_repro.sh).
//
//	chaosrunner -seeds 32                 # seeds 1..32, mirror class
//	chaosrunner -seeds 32 -class central  # central-crash class
//	chaosrunner -seeds 32 -class all      # both classes per seed
//	chaosrunner -seed 1337                # one seed, verbose schedule
//	chaosrunner -seeds 8 -mirrors 5       # wider cluster
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptmirror/internal/cluster"
)

func main() {
	seeds := flag.Int("seeds", 32, "run seeds 1..N")
	seed := flag.Int64("seed", 0, "run exactly this seed (overrides -seeds)")
	mirrors := flag.Int("mirrors", 3, "mirror sites per run")
	flights := flag.Int("flights", 0, "workload flights (0 = default)")
	class := flag.String("class", "mirror", "schedule class: mirror, central, or all")
	verbose := flag.Bool("v", false, "print every run, not just failures")
	flag.Parse()

	var central []bool
	switch *class {
	case "mirror":
		central = []bool{false}
	case "central":
		central = []bool{true}
	case "all":
		central = []bool{false, true}
	default:
		fmt.Fprintf(os.Stderr, "chaosrunner: unknown -class %q (want mirror, central, or all)\n", *class)
		os.Exit(2)
	}

	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
		*verbose = true
	} else {
		for s := int64(1); s <= int64(*seeds); s++ {
			list = append(list, s)
		}
	}

	runs, failed := 0, 0
	for _, crashCentral := range central {
		for _, s := range list {
			runs++
			res := cluster.RunChaos(cluster.ChaosConfig{
				Seed:         s,
				Mirrors:      *mirrors,
				Flights:      *flights,
				CentralCrash: crashCentral,
			})
			if res.Failed() {
				failed++
				fmt.Println(res.Report())
				continue
			}
			if *verbose {
				fmt.Println(res.Report())
			}
		}
	}

	fmt.Printf("chaos: %d/%d runs passed\n", runs-failed, runs)
	if failed > 0 {
		os.Exit(1)
	}
}
