// Command chaosrunner drives the deterministic chaos suite from the
// shell: each seed fully determines a fault schedule (mirror
// crash-restart, link partitions, probabilistic control-link faults, a
// slow mirror) and a workload, runs them against an in-process
// cluster, and machine-checks the mirroring invariants. A failing seed
// prints its schedule and replays exactly with -seed (see
// scripts/chaos_repro.sh).
//
//	chaosrunner -seeds 32           # seeds 1..32
//	chaosrunner -seed 1337          # one seed, verbose schedule
//	chaosrunner -seeds 8 -mirrors 5 # wider cluster
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptmirror/internal/cluster"
)

func main() {
	seeds := flag.Int("seeds", 32, "run seeds 1..N")
	seed := flag.Int64("seed", 0, "run exactly this seed (overrides -seeds)")
	mirrors := flag.Int("mirrors", 3, "mirror sites per run")
	flights := flag.Int("flights", 0, "workload flights (0 = default)")
	verbose := flag.Bool("v", false, "print every run, not just failures")
	flag.Parse()

	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
		*verbose = true
	} else {
		for s := int64(1); s <= int64(*seeds); s++ {
			list = append(list, s)
		}
	}

	failed := 0
	for _, s := range list {
		res := cluster.RunChaos(cluster.ChaosConfig{
			Seed:    s,
			Mirrors: *mirrors,
			Flights: *flights,
		})
		if res.Failed() {
			failed++
			fmt.Println(res.Report())
			continue
		}
		if *verbose {
			fmt.Println(res.Report())
		}
	}

	fmt.Printf("chaos: %d/%d seeds passed\n", len(list)-failed, len(list))
	if failed > 0 {
		os.Exit(1)
	}
}
