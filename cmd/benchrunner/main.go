// Command benchrunner regenerates the data series behind every figure
// of the paper's evaluation and prints them as text tables.
//
// Usage:
//
//	benchrunner -fig all            # every figure, full scale
//	benchrunner -fig 4 -fig 7      # selected figures
//	benchrunner -fig all -quick    # reduced scale (smoke run)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adaptmirror/internal/figures"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure to regenerate: 4,5,6,7,8,9,serve,bandwidth,stages or all (repeatable)")
	quick := flag.Bool("quick", false, "use the reduced smoke-test scale")
	plot := flag.Bool("plot", false, "render ASCII charts in addition to tables")
	flag.Parse()
	if len(figs) == 0 {
		figs = figList{"all"}
	}

	scale := figures.Full
	if *quick {
		scale = figures.Quick
	}

	runners := map[string]func() (figures.Figure, error){
		"4":         func() (figures.Figure, error) { return figures.Fig4(scale) },
		"5":         func() (figures.Figure, error) { return figures.Fig5(scale) },
		"6":         func() (figures.Figure, error) { return figures.Fig6(scale) },
		"7":         func() (figures.Figure, error) { return figures.Fig7(scale) },
		"8":         func() (figures.Figure, error) { return figures.Fig8(scale) },
		"9":         func() (figures.Figure, error) { return figures.Fig9(scale, figures.DefaultFig9) },
		"serve":     func() (figures.Figure, error) { return figures.FigServe(scale) },
		"bandwidth": func() (figures.Figure, error) { return figures.FigBandwidth(scale) },
	}

	var selected []string
	for _, f := range figs {
		if f == "all" {
			selected = []string{"4", "5", "6", "7", "8", "9", "serve", "bandwidth", "stages"}
			break
		}
		selected = append(selected, f)
	}
	for _, id := range selected {
		// "stages" is a table, not an X/Y figure: the Fig5@8 run's
		// per-stage update-delay decomposition.
		if id == "stages" {
			res, err := figures.StageBreakdown(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: stages: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(figures.StageTable(res))
			continue
		}
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown figure %q\n", id)
			os.Exit(2)
		}
		fig, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(figures.Table(fig))
		if *plot {
			fmt.Println(figures.Plot(fig, 64, 16))
		}
	}
}
