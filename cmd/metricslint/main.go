// Command metricslint is the observability conformance gate: it boots
// an in-process mirrored cluster, runs a small workload, serves the
// cluster registry over a real HTTP front, scrapes /metrics like a
// Prometheus server would, and validates the exposition against the
// text-format rules (obs.LintPrometheus) plus a required-family
// checklist covering every subsystem the registry must report on. It
// exits non-zero on any violation, so `make metrics-lint` (part of
// `make ci`) fails the build when an instrument regresses.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/workload"
)

// requiredSeries is the coverage checklist: one representative series
// per subsystem. A missing entry means a registration was dropped or
// renamed — both break dashboards silently, which is exactly what this
// gate exists to catch.
var requiredSeries = []string{
	// Ingest and forward path.
	`central_received_total{site="central"}`,
	`central_forwarded_total{site="central"}`,
	`central_mirrored_total{site="central"}`,
	// Queues (adaptation-monitored variables).
	`queue_ready_depth{site="central"}`,
	`queue_backup_depth{site="central"}`,
	`pending_requests{site="central"}`,
	// Fan-out links, per mirror.
	`link_enqueued_total{mirror="0"}`,
	`link_sent_total{mirror="1"}`,
	`link_outbox_depth{mirror="0"}`,
	// Wire telemetry (bandwidth-adaptation monitored variables).
	`link_wire_bytes_total{mirror="0"}`,
	`link_wire_bytes_per_round{mirror="0"}`,
	`link_wire_events_per_round{mirror="1"}`,
	`link_est_bandwidth_bytes_per_second{mirror="0"}`,
	// Columnar wire batches and the slab pool behind them.
	`wire_batch_events_count{mirror="0"}`,
	`wire_batch_bytes_count{mirror="1"}`,
	`slab_pool_hit_total`,
	`slab_pool_miss_total`,
	`slab_pool_retained_total`,
	// Mirror sites.
	`mirror_received_total{site="mirror0"}`,
	`mirror_apply_lag_micros{site="mirror0"}`,
	`queue_ready_depth{site="mirror1"}`,
	// Serving path and snapshot cache.
	`requests_served_total{site="mirror0"}`,
	`snapshot_cache_hits_total{site="mirror0"}`,
	`snapshot_cache_misses_total{site="mirror0"}`,
	// Adaptation control plane: the mirror-side directive applier is
	// wired unconditionally, so even a non-adaptive cluster exports the
	// installed-regime gauge and the discard counters.
	`adapt_regime_id{site="mirror0"}`,
	`adapt_directive_stale_total{site="mirror0"}`,
	`adapt_directive_invalid_total{site="mirror1"}`,
	// Central controller engage counters, by triggering variable (the
	// lint cluster wires a real controller with unreachable thresholds,
	// so the series exist at zero).
	`adapt_engage_total{var="wire_bytes"}`,
	`adapt_engage_total{var="outbox_depth"}`,
	`adapt_engage_total{var="apply_lag"}`,
	// Incremental rejoin and the mutation journal behind it. Both
	// transfer modes are registered up front (labels render sorted by
	// key), so the series exist even before any rejoin happens.
	`rejoin_mode_total{mode="snapshot",site="central"}`,
	`rejoin_mode_total{mode="delta",site="central"}`,
	`rejoin_bytes_total{mode="snapshot",site="central"}`,
	`rejoin_bytes_total{mode="delta",site="central"}`,
	`statedelta_journal_flights{site="central"}`,
	// Warm-standby promotion: counters and the epoch gauge exist from
	// boot (zero for an original, never-promoted central).
	`promotion_total{site="central"}`,
	`promotion_replayed_events_total{site="central"}`,
	`central_epoch{site="central"}`,
	// Wire takeover (cmd/mirrord): detection firings, survivor uplink
	// repoints, and election-claim traffic, registered at zero on every
	// mirror site.
	`takeover_fired_total{site="mirror0"}`,
	`uplink_repoint_total{site="mirror0"}`,
	`election_claims_total{site="mirror1"}`,
	// Checkpointing.
	`checkpoint_rounds_total{site="central"}`,
	`checkpoint_commits_total{site="central"}`,
	`checkpoint_round_seconds_count{site="central"}`,
	`checkpoint_trimmed_events_total{site="central"}`,
	// Lifecycle tracer.
	`pipeline_stage_seconds_count{stage="ready_wait"}`,
	`pipeline_stage_seconds_count{stage="forward"}`,
	`pipeline_stage_seconds_count{stage="apply"}`,
	`pipeline_stage_seconds_count{stage="link_send"}`,
	`pipeline_stage_seconds_count{stage="mirror_apply"}`,
	`pipeline_stage_seconds_count{stage="chkpt_commit"}`,
	// Cluster-level histograms and counters.
	`update_delay_seconds_count`,
	`request_latency_seconds_count`,
	`client_updates_total`,
	// HTTP front.
	`http_requests_total`,
	`http_uptime_seconds`,
}

func run() error {
	model := costmodel.Model{
		EventBase:     2 * time.Microsecond,
		SerializeBase: 500 * time.Nanosecond,
		SubmitBase:    200 * time.Nanosecond,
		RequestBase:   5 * time.Microsecond,
	}
	// A real adaptation controller (thresholds set unreachably high so
	// the run stays in the baseline regime): its presence registers the
	// adapt_engage_total{var=...} family and feeds the status plane.
	fn1 := adapt.Regime{ID: 1, Name: "coalesce-10", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Name: "overwrite-20", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	controller := adapt.NewController(fn1, fn2, nil)
	controller.SetMonitorValues(adapt.VarWireBytes, 1<<30, 0)
	cl, err := cluster.New(cluster.Config{
		Mirrors: 2,
		Model:   model,
		OnMirrorSample: func(site int, s core.Sample) {
			controller.ObserveSite(site, s)
		},
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	controller.SetApply(adapt.InstallRegime(cl.Central))
	controller.RegisterMetrics(cl.Obs)
	cl.Controller = controller
	cl.Central.SetPiggyback(func() []byte {
		controller.Observe(cl.Central.Sample())
		return adapt.EncodeRegime(controller.Current())
	})

	// A small mirrored workload so every instrument has moved: events
	// through the full pipeline, plus init-state requests against the
	// serving pool.
	events := cluster.BuildEvents(cluster.Options{
		Flights: 10, UpdatesPerFlight: 30, EventSize: 128, Seed: 1,
	})
	if err := cl.Feed(events); err != nil {
		return err
	}
	cl.DrainAll()
	workload.Run(workload.Config{
		Pattern:       workload.Constant{RPS: 1e5},
		Targets:       cl.AllTargets(),
		TotalRequests: 50,
		Seed:          1,
	})

	// Serve the registry exactly as a deployed site does and scrape it
	// over the wire.
	front := httpfront.NewWithRegistry(cl.Central.Main(), cl.Obs)
	defer front.Close()
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("/metrics Content-Type = %q, want text/plain; version=0.0.4", ct)
	}

	text := string(body)
	if err := obs.LintPrometheus(strings.NewReader(text)); err != nil {
		return fmt.Errorf("exposition format: %w", err)
	}
	var missing []string
	for _, want := range requiredSeries {
		if !strings.Contains(text, want) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing %d required series:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
	fmt.Printf("metricslint: ok (%d lines, %d required series present)\n",
		strings.Count(text, "\n"), len(requiredSeries))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(1)
	}
}
