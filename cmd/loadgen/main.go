// Command loadgen generates open-loop HTTP client request load
// against mirror sites' HTTP fronts and reports httperf-style
// statistics. It reproduces the role httperf 0.8 played in the
// paper's experiments.
//
//	loadgen -targets http://h1:8001,http://h2:8002 -rate 100 -duration 10s
//	loadgen -targets http://h1:8001 -rate 20 -burst 400 -period 1s -burstlen 300ms -duration 15s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptmirror/internal/workload"
)

func main() {
	var (
		targets  = flag.String("targets", "", "comma-separated base URLs of site HTTP fronts")
		rate     = flag.Float64("rate", 100, "base request rate (req/s)")
		burst    = flag.Float64("burst", 0, "burst request rate (req/s, 0 = constant load)")
		period   = flag.Duration("period", time.Second, "burst period")
		burstLen = flag.Duration("burstlen", 300*time.Millisecond, "burst length within each period")
		duration = flag.Duration("duration", 10*time.Second, "run duration")
		total    = flag.Int("n", 0, "stop after this many requests (0 = duration-bound)")
	)
	flag.Parse()
	if *targets == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -targets is required")
		os.Exit(2)
	}
	urls := strings.Split(*targets, ",")
	for i, u := range urls {
		urls[i] = strings.TrimRight(u, "/") + "/init"
	}

	var pattern workload.Pattern = workload.Constant{RPS: *rate}
	if *burst > 0 {
		pattern = workload.Bursty{Base: *rate, Burst: *burst, Period: *period, BurstLen: *burstLen}
	}

	stats, err := run(runConfig{
		URLs:     urls,
		Pattern:  pattern,
		Duration: *duration,
		Total:    *total,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Printf("loadgen: %d issued, %d completed, %d failed in %v (%.1f req/s offered)\n",
		stats.Issued, stats.Completed, stats.Failed,
		stats.Elapsed.Round(time.Millisecond), float64(stats.Issued)/stats.Elapsed.Seconds())
	fmt.Printf("latency: %s\n", stats.Latency.Summary())
}
