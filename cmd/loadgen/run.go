package main

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/loadbal"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/workload"
)

// runConfig parameterizes one load run (the testable core of the
// command).
type runConfig struct {
	// URLs are the /init endpoints to hit.
	URLs []string
	// Pattern is the offered-rate schedule.
	Pattern workload.Pattern
	// Duration bounds the run.
	Duration time.Duration
	// Total, when positive, stops after this many requests.
	Total int
	// Client issues the requests (nil uses a default with timeout).
	Client *http.Client
}

// runStats summarizes a run.
type runStats struct {
	Issued    uint64
	Completed uint64
	Failed    uint64
	Elapsed   time.Duration
	Latency   *metrics.Histogram
}

// run executes the open-loop load: request debt accumulates as the
// integral of the offered rate and each wake-up dispatches the due
// batch, keeping offered load accurate far above sleep granularity.
func run(cfg runConfig) (runStats, error) {
	if len(cfg.URLs) == 0 {
		return runStats{}, fmt.Errorf("loadgen: no targets")
	}
	bal, err := loadbal.NewRoundRobin(len(cfg.URLs))
	if err != nil {
		return runStats{}, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	lat := metrics.NewHistogram(0)
	var issued, completed, failed atomic.Uint64
	var wg sync.WaitGroup

	dispatch := func() {
		url := cfg.URLs[bal.Pick()]
		issued.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				return
			}
			completed.Add(1)
			lat.Record(time.Since(start))
		}()
	}

	start := time.Now()
	last := start
	var due float64
	n := 0
	for {
		now := time.Now()
		elapsed := now.Sub(start)
		if cfg.Duration > 0 && elapsed >= cfg.Duration {
			break
		}
		if cfg.Total > 0 && n >= cfg.Total {
			break
		}
		due += cfg.Pattern.Rate(elapsed) * now.Sub(last).Seconds()
		last = now
		for due >= 1 {
			if cfg.Total > 0 && n >= cfg.Total {
				due = 0
				break
			}
			dispatch()
			n++
			due--
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	return runStats{
		Issued:    issued.Load(),
		Completed: completed.Load(),
		Failed:    failed.Load(),
		Elapsed:   time.Since(start),
		Latency:   lat,
	}, nil
}
