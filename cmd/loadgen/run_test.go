package main

import (
	"testing"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/workload"
)

func startFront(t *testing.T) string {
	t.Helper()
	m := core.NewMainUnit(core.MainConfig{})
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 64))
	f := httpfront.New(m)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close(); m.Close() })
	return "http://" + addr + "/init"
}

func TestRunFixedCount(t *testing.T) {
	url := startFront(t)
	stats, err := run(runConfig{
		URLs:    []string{url},
		Pattern: workload.Constant{RPS: 5000},
		Total:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != 40 || stats.Completed != 40 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Latency.Count() != 40 {
		t.Fatalf("latency samples = %d", stats.Latency.Count())
	}
}

func TestRunDurationBound(t *testing.T) {
	url := startFront(t)
	stats, err := run(runConfig{
		URLs:     []string{url},
		Pattern:  workload.Constant{RPS: 1000},
		Duration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if stats.Elapsed < 50*time.Millisecond {
		t.Fatalf("Elapsed = %v", stats.Elapsed)
	}
}

func TestRunBalancesAcrossTargets(t *testing.T) {
	a, b := startFront(t), startFront(t)
	stats, err := run(runConfig{
		URLs:    []string{a, b},
		Pattern: workload.Constant{RPS: 5000},
		Total:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 20 {
		t.Fatalf("completed = %d", stats.Completed)
	}
}

func TestRunCountsFailures(t *testing.T) {
	stats, err := run(runConfig{
		URLs:    []string{"http://127.0.0.1:1/init"},
		Pattern: workload.Constant{RPS: 10000},
		Total:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 5 || stats.Completed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunNoTargets(t *testing.T) {
	if _, err := run(runConfig{Pattern: workload.Constant{RPS: 1}}); err == nil {
		t.Fatal("no targets must fail")
	}
}
