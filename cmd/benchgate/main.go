// Command benchgate is a self-contained statistical gate over `go test
// -bench` output — a minimal stand-in for benchstat that needs no
// installation. It has two modes, composable in one invocation:
//
//	benchgate -compare old.txt new.txt
//	    Pair benchmarks by name and compare their ns/op samples with a
//	    two-sided Mann-Whitney U test (normal approximation with tie
//	    correction, as benchstat uses for n this small). The gate fails
//	    when a benchmark got significantly slower (p < alpha) by more
//	    than -max-regress percent of the old median. Sub-benchmark
//	    suffixes given via -old-sub/-new-sub remap names so the two
//	    sides of one file can be compared:
//
//	benchgate -compare f.txt f.txt -old-sub legacy -new-sub columnar
//	    Compares BenchmarkX/legacy/... in f.txt against
//	    BenchmarkX/columnar/... in the same file.
//
//	benchgate -assert-zero-allocs regexp file.txt
//	    Every benchmark matching the pattern must report 0 allocs/op in
//	    every sample.
//
// Exit status 0 = gate passed, 1 = gate failed, 2 = usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	// fields holds every unit-suffixed value on the line ("B/op",
	// custom b.ReportMetric units like "bytes_shipped/op", ...).
	fields map[string]float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`([\d.]+) allocs/op`)
var metricField = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) (\S+)`)

// parseFile reads `go test -bench` output into name → samples.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := sample{nsPerOp: ns}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			s.allocsPerOp, _ = strconv.ParseFloat(am[1], 64)
			s.hasAllocs = true
		}
		for _, fm := range metricField.FindAllStringSubmatch(m[3], -1) {
			if v, err := strconv.ParseFloat(fm[1], 64); err == nil {
				if s.fields == nil {
					s.fields = make(map[string]float64)
				}
				s.fields[fm[2]] = v
			}
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

// stripSub removes one path component from a benchmark name
// (Benchmark/X/sub/Y → Benchmark/X/Y) so paired variants can be
// matched; returns "" when the component is absent.
func stripSub(name, sub string) string {
	parts := strings.Split(name, "/")
	for i, p := range parts {
		if p == sub {
			return strings.Join(append(parts[:i:i], parts[i+1:]...), "/")
		}
	}
	return ""
}

// remap rewrites every benchmark name by stripping the sub component,
// dropping benchmarks that do not carry it.
func remap(in map[string][]sample, sub string) map[string][]sample {
	if sub == "" {
		return in
	}
	out := make(map[string][]sample)
	for name, ss := range in {
		if k := stripSub(name, sub); k != "" {
			out[k] = append(out[k], ss...)
		}
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U
// test for samples a and b, using the normal approximation with tie
// correction and continuity correction — adequate for the n≥5 runs
// the gate requires, where the exact tables and the approximation
// agree on the 0.05 decision boundary.
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie bookkeeping.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u := r1 - n1*(n1+1)/2
	mean := n1 * n2 / 2
	n := n1 + n2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		return 1
	}
	z := math.Abs(u-mean) - 0.5 // continuity correction
	if z < 0 {
		z = 0
	}
	z /= math.Sqrt(variance)
	return 2 * (1 - stdNormCDF(z))
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

func main() {
	var (
		compare    = flag.Bool("compare", false, "compare two bench files (args: old.txt new.txt)")
		oldSub     = flag.String("old-sub", "", "sub-benchmark component naming the old side")
		newSub     = flag.String("new-sub", "", "sub-benchmark component naming the new side")
		alpha      = flag.Float64("alpha", 0.05, "significance level for the U test")
		maxRegress = flag.Float64("max-regress", 0, "tolerated median slowdown in percent before a significant regression fails the gate")
		minRuns    = flag.Int("min-runs", 5, "minimum samples per side for a statistical verdict")
		zeroAllocs = flag.String("assert-zero-allocs", "", "regexp of benchmarks that must report 0 allocs/op (args: file.txt)")
		ratioMet   = flag.String("ratio-metric", "", "with -compare: a reported metric unit (e.g. bytes_shipped/op) whose old/new median ratio is gated")
		minRatio   = flag.Float64("min-ratio", 1, "with -ratio-metric: minimum required old/new median ratio")
	)
	flag.Parse()
	args := flag.Args()

	fail := false
	switch {
	case *compare:
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "benchgate: -compare needs old.txt new.txt")
			os.Exit(2)
		}
		oldSet, err := parseFile(args[0])
		if err == nil {
			var newSet map[string][]sample
			newSet, err = parseFile(args[1])
			if err == nil {
				oldR, newR := remap(oldSet, *oldSub), remap(newSet, *newSub)
				fail = runCompare(oldR, newR, *alpha, *maxRegress, *minRuns)
				if *ratioMet != "" {
					fail = runRatio(oldR, newR, *ratioMet, *minRatio) || fail
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if *zeroAllocs != "" {
			fail = runZeroAllocs(*zeroAllocs, args[1]) || fail
		}
	case *zeroAllocs != "":
		if len(args) < 1 {
			fmt.Fprintln(os.Stderr, "benchgate: -assert-zero-allocs needs a bench output file")
			os.Exit(2)
		}
		fail = runZeroAllocs(*zeroAllocs, args[0])
	default:
		flag.Usage()
		os.Exit(2)
	}
	if fail {
		os.Exit(1)
	}
}

func runCompare(oldSet, newSet map[string][]sample, alpha, maxRegress float64, minRuns int) (fail bool) {
	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		if _, ok := newSet[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in common")
		return true
	}
	sort.Strings(names)
	fmt.Printf("%-50s %12s %12s %8s %9s  verdict\n", "benchmark", "old ns/op", "new ns/op", "delta", "p")
	for _, name := range names {
		var o, n []float64
		for _, s := range oldSet[name] {
			o = append(o, s.nsPerOp)
		}
		for _, s := range newSet[name] {
			n = append(n, s.nsPerOp)
		}
		om, nm := median(o), median(n)
		delta := (nm - om) / om * 100
		p := mannWhitneyP(o, n)
		verdict := "~"
		switch {
		case len(o) < minRuns || len(n) < minRuns:
			verdict = fmt.Sprintf("too few runs (%d vs %d, need %d)", len(o), len(n), minRuns)
			fail = true
		case p < alpha && delta > maxRegress:
			verdict = "REGRESSION"
			fail = true
		case p < alpha && delta < 0:
			verdict = "improved"
		case p < alpha:
			verdict = "slower (within tolerance)"
		}
		fmt.Printf("%-50s %12.1f %12.1f %+7.1f%% %9.4f  %s\n", name, om, nm, delta, p, verdict)
	}
	return fail
}

// runRatio gates a reported metric (b.ReportMetric units) on its
// old/new median ratio: the gate fails when old < minRatio × new —
// e.g. -ratio-metric bytes_shipped/op -min-ratio 5 demands the new
// side ship at least 5x fewer bytes than the old.
func runRatio(oldSet, newSet map[string][]sample, metric string, minRatio float64) (fail bool) {
	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		if _, ok := newSet[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	collect := func(ss []sample) []float64 {
		var out []float64
		for _, s := range ss {
			if v, ok := s.fields[metric]; ok {
				out = append(out, v)
			}
		}
		return out
	}
	fmt.Printf("%-50s %14s %14s %8s  verdict (%s, min ratio %gx)\n",
		"benchmark", "old", "new", "ratio", metric, minRatio)
	for _, name := range names {
		o, n := collect(oldSet[name]), collect(newSet[name])
		if len(o) == 0 || len(n) == 0 {
			fmt.Printf("%-50s missing %s samples (%d old, %d new)\n", name, metric, len(o), len(n))
			fail = true
			continue
		}
		om, nm := median(o), median(n)
		ratio := om / nm
		verdict := "ok"
		if !(ratio >= minRatio) {
			verdict = "BELOW MINIMUM"
			fail = true
		}
		fmt.Printf("%-50s %14.1f %14.1f %7.1fx  %s\n", name, om, nm, ratio, verdict)
	}
	return fail
}

func runZeroAllocs(pattern, path string) (fail bool) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	set, err := parseFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	matched := false
	for name, ss := range set {
		if !re.MatchString(name) {
			continue
		}
		matched = true
		for _, s := range ss {
			if !s.hasAllocs {
				fmt.Printf("%s: no allocs/op field (run with -benchmem)\n", name)
				fail = true
				break
			}
			if s.allocsPerOp != 0 {
				fmt.Printf("%s: %g allocs/op, want 0\n", name, s.allocsPerOp)
				fail = true
				break
			}
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matches %q\n", pattern)
		return true
	}
	if !fail {
		fmt.Printf("zero-alloc assertion passed for %q\n", pattern)
	}
	return fail
}
