package main

import (
	"testing"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
	"adaptmirror/internal/httpfront"
)

func TestFetchInit(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	defer m.Close()
	m.Deliver(event.NewPosition(1, 1, 10, 20, 30000, 64))
	f := httpfront.New(m)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	state, anchor, err := fetchInit("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 {
		t.Fatal("empty init state")
	}
	// The anchor rides the X-Init-VT header; before any processed
	// traffic it is the zero clock.
	if anchor.Sum() != 0 {
		t.Fatalf("anchor = %s, want zero", anchor)
	}
}

func TestFetchInitErrors(t *testing.T) {
	if _, _, err := fetchInit("http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable front must fail")
	}
	// A front whose main unit is closed returns 503.
	m := core.NewMainUnit(core.MainConfig{})
	f := httpfront.New(m)
	addr, _ := f.Listen("127.0.0.1:0")
	defer f.Close()
	m.Close()
	if _, _, err := fetchInit("http://" + addr); err == nil {
		t.Fatal("503 must surface as an error")
	}
}
