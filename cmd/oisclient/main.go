// Command oisclient runs a thin client — the paper's airport flight
// display: it fetches its initialization state from a mirror site's
// HTTP front, subscribes to the central site's update stream, and
// maintains a live local view, printing a summary periodically.
//
//	oisclient -init http://host1:8001 -updates host0:7000 -interval 1s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptmirror/internal/echo"
	"adaptmirror/internal/event"
	"adaptmirror/internal/thinclient"
	"adaptmirror/internal/vclock"
)

func main() {
	var (
		initURL  = flag.String("init", "", "base URL of a mirror site's HTTP front")
		updates  = flag.String("updates", "", "central site's event-channel address (updates stream)")
		padding  = flag.Int("padding", 64, "per-flight init-state padding (must match the server)")
		interval = flag.Duration("interval", time.Second, "summary print interval")
	)
	flag.Parse()
	if *initURL == "" || *updates == "" {
		fmt.Fprintln(os.Stderr, "oisclient: -init and -updates are required")
		os.Exit(2)
	}

	view := thinclient.New(*padding)

	// Subscribe to updates FIRST so nothing is missed between the
	// snapshot and the stream (stale-update filtering discards any
	// overlap).
	link, err := echo.DialRecv(*updates, "updates")
	if err != nil {
		fatal(err)
	}
	defer link.Close()
	link.Subscribe(func(e *event.Event) { view.Apply(e) })

	state, anchor, err := fetchInit(*initURL)
	if err != nil {
		fatal(err)
	}
	if err := view.InitializeAt(state, anchor); err != nil {
		fatal(err)
	}
	fmt.Printf("oisclient: initialized with %d flights (%d-byte state, anchor %s)\n",
		view.Flights(), len(state), anchor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if view.NeedsReinit() {
				// Updates were lost (e.g. a dropped stream); do what
				// the paper's displays do and re-initialize.
				fmt.Println("oisclient: update gap detected — re-initializing")
				if state, anchor, err := fetchInit(*initURL); err == nil {
					if err := view.InitializeAt(state, anchor); err != nil {
						fmt.Fprintf(os.Stderr, "oisclient: re-init: %v\n", err)
					}
				} else {
					fmt.Fprintf(os.Stderr, "oisclient: re-init fetch: %v\n", err)
				}
			}
			applied, stale := view.Stats()
			fmt.Printf("oisclient: %d flights, %d updates applied (%d stale), progress %s\n",
				view.Flights(), applied, stale, view.Progress())
		case <-sig:
			fmt.Println("oisclient: bye")
			return
		}
	}
}

// fetchInit performs the thin client's initialization request,
// returning the snapshot and the server's X-Init-VT progress anchor
// (nil when the server predates the header — the view then anchors at
// zero exactly as before).
func fetchInit(baseURL string) ([]byte, vclock.VC, error) {
	resp, err := http.Get(baseURL + "/init")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("oisclient: init request: %s", resp.Status)
	}
	state, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	anchor, err := vclock.Parse(resp.Header.Get("X-Init-VT"))
	if err != nil {
		return nil, nil, fmt.Errorf("oisclient: init anchor: %w", err)
	}
	return state, anchor, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oisclient: %v\n", err)
	os.Exit(1)
}
