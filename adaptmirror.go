// Package adaptmirror is a Go implementation of the adaptable
// mirroring framework for cluster servers described in "Adaptable
// Mirroring in Cluster Servers" (Gavrilovska, Schwan, Oleson — HPDC
// 2001).
//
// The framework continuously mirrors streaming update events received
// by the central node of a cluster-based Operational Information
// System to other cluster nodes, so that bursty client requests (for
// example, thin-client state-initialization storms after an airport
// power failure) can be served by any mirror without perturbing the
// central site's continuous event processing. Mirroring happens at
// the middleware level, which lets application semantics reduce
// mirroring traffic: event overwriting, coalescing, complex-sequence
// discard, and complex-tuple collapse. A checkpoint protocol keeps a
// consistent cut across mirrors, and a runtime adaptation mechanism
// trades mirror consistency against client quality of service as load
// changes.
//
// # Quick start
//
//	cl, err := adaptmirror.NewCluster(adaptmirror.ClusterConfig{Mirrors: 2})
//	if err != nil { ... }
//	defer cl.Close()
//
//	// Configure selective mirroring (Table-1 API).
//	cl.Central().InstallSelective(10)
//
//	// Feed events and serve client requests from any mirror.
//	cl.Central().Ingest(adaptmirror.NewPosition(42, 1, 33.6, -84.4, 11000, 1024))
//	state, err := cl.Targets()[0].RequestInitState()
//
// The underlying building blocks live in internal packages and are
// re-exported here where downstream users need them: event types,
// cluster assembly, workload generation, and the adaptation
// controller.
package adaptmirror

import (
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/simnet"
)

// Re-exported core types. See the internal packages for full APIs.
type (
	// Event is one application-level update event.
	Event = event.Event
	// EventType identifies an event kind.
	EventType = event.Type
	// FlightID identifies a flight.
	FlightID = event.FlightID
	// Status is a flight lifecycle state.
	Status = event.Status

	// Central is the central site (the primary mirror) and carries
	// the paper's Table-1 mirroring API as methods.
	Central = core.Central
	// MirrorSite is a secondary mirror site.
	MirrorSite = core.MirrorSite
	// MainUnit hosts a site's Event Derivation Engine and serves
	// client initialization-state requests.
	MainUnit = core.MainUnit
	// Params are the runtime-tunable mirroring parameters.
	Params = core.Params

	// Regime is a complete mirroring configuration the adaptation
	// controller can install.
	Regime = adapt.Regime
	// Controller makes threshold-based adaptation decisions.
	Controller = adapt.Controller

	// CostModel charges virtual CPU time for OIS operations.
	CostModel = costmodel.Model
)

// Frequently used event constructors and constants.
var (
	// NewPosition builds an FAA flight-position event.
	NewPosition = event.NewPosition
	// NewStatus builds a Delta flight-status event.
	NewStatus = event.NewStatus
)

// Event type and status constants re-exported for rule configuration.
const (
	TypeFAAPosition   = event.TypeFAAPosition
	TypeDeltaStatus   = event.TypeDeltaStatus
	TypeGateReader    = event.TypeGateReader
	TypeFlightArrived = event.TypeFlightArrived

	StatusLanded   = event.StatusLanded
	StatusAtRunway = event.StatusAtRunway
	StatusAtGate   = event.StatusAtGate
	StatusArrived  = event.StatusArrived
)

// Transport selects how cluster sites communicate.
type Transport = cluster.Transport

// Available transports.
const (
	// TransportDirect wires sites with synchronous calls (fastest;
	// network cost comes from the cost model).
	TransportDirect = cluster.TransportDirect
	// TransportChannels wires sites with in-process event channels.
	TransportChannels = cluster.TransportChannels
	// TransportTCP wires sites over loopback TCP with optional
	// bandwidth/latency shaping.
	TransportTCP = cluster.TransportTCP
)

// ClusterConfig configures a mirrored server cluster.
type ClusterConfig struct {
	// Mirrors is the number of secondary mirror sites.
	Mirrors int
	// Transport wires the sites (default TransportDirect).
	Transport Transport
	// Bandwidth (bytes/s) and Latency shape TCP links; zero values
	// leave links unshaped.
	Bandwidth float64
	Latency   time.Duration
	// Model is the virtual-CPU cost model (zero value installs the
	// calibrated default).
	Model CostModel
	// Params are the initial mirroring parameters.
	Params Params
	// StatePadding inflates per-flight initialization-state size.
	StatePadding int
	// NoMirror disables mirroring entirely (baseline configuration).
	NoMirror bool
	// OnUpdate, when non-nil, receives every state update the central
	// site emits to regular clients (drive a thinclient.View or an
	// operations log with it).
	OnUpdate func(*Event)
}

// senderFunc adapts a function to the internal Sender interface.
type senderFunc func(*Event) error

func (f senderFunc) Submit(e *Event) error { return f(e) }

// Cluster is a running mirrored OIS server.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster assembles and starts a mirrored server.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	model := cfg.Model
	if model == (CostModel{}) {
		model = costmodel.Default
	}
	var clientOut core.Sender
	if cfg.OnUpdate != nil {
		clientOut = senderFunc(func(e *Event) error {
			cfg.OnUpdate(e)
			return nil
		})
	}
	inner, err := cluster.New(cluster.Config{
		Mirrors:      cfg.Mirrors,
		Transport:    cfg.Transport,
		Shaping:      simnet.Profile{Bandwidth: cfg.Bandwidth, Latency: cfg.Latency},
		Params:       cfg.Params,
		Model:        model,
		StatePadding: cfg.StatePadding,
		NoMirror:     cfg.NoMirror,
		ClientOut:    clientOut,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Central returns the central site, which carries the Table-1
// mirroring API (SetParams, SetOverwrite, SetComplexSeq,
// SetComplexTuple, SetMirror, SetFwd, AdjustParam, ...).
func (c *Cluster) Central() *Central { return c.inner.Central }

// Mirrors returns the secondary mirror sites.
func (c *Cluster) Mirrors() []*MirrorSite { return c.inner.Mirrors }

// Targets returns the main units that serve client requests (the
// mirror sites, or the central site when no mirrors exist).
func (c *Cluster) Targets() []*MainUnit { return c.inner.Targets() }

// AllTargets returns every site's main unit, central included.
func (c *Cluster) AllTargets() []*MainUnit { return c.inner.AllTargets() }

// Feed ingests a batch of events in order.
func (c *Cluster) Feed(events []*Event) error { return c.inner.Feed(events) }

// Drain stops ingestion and blocks until every site has processed
// every event; it returns when the cluster is quiescent.
func (c *Cluster) Drain() { c.inner.DrainAll() }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.inner.Close() }

// NewAdaptation attaches a threshold-based adaptation controller to
// the cluster's central site: when the pending-request buffer crosses
// primary, the degraded regime is installed; it reverts below
// primary−secondary. Directives piggyback on checkpoint traffic.
func (c *Cluster) NewAdaptation(baseline, degraded Regime, primary, secondary int) *Controller {
	ctl := adapt.NewController(baseline, degraded, adapt.InstallRegime(c.inner.Central))
	ctl.SetMonitorValues(adapt.VarPending, primary, secondary)
	c.inner.SetOnMirrorSample(func(site int, s core.Sample) { ctl.ObserveSite(site, s) })
	c.inner.Central.SetPiggyback(func() []byte {
		ctl.Observe(c.inner.Central.Sample())
		return adapt.EncodeRegime(ctl.Current())
	})
	return ctl
}
