module adaptmirror

go 1.22
