GO ?= go

.PHONY: all build vet test race ci bench bench-compare bench-serve figures clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full gate: what CI runs and what every change must keep green.
ci: build vet race

# One fast pass over every figure and ablation benchmark.
bench:
	$(GO) test -run xxx -bench 'Fig|Ablation' -benchtime=1x .

# Repeated runs of the fan-out-sensitive benchmarks, benchstat-ready.
bench-compare:
	./scripts/bench_compare.sh

# The init-state serving-path benchmarks (storm throughput and
# snapshot-cache rebuild cost).
bench-serve:
	$(GO) test -run xxx -bench 'ServeInitStorm|SnapshotRebuild' -benchmem .

figures:
	$(GO) run ./cmd/benchrunner -fig all

clean:
	rm -f adaptmirror.test bench_*.txt
