GO ?= go

.PHONY: all build vet test race ci metrics-lint status-smoke takeover-smoke chaos fuzz bench bench-compare bench-gate bench-rejoin bench-serve figures clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Boots a cluster, serves its registry over HTTP, scrapes /metrics,
# and validates Prometheus-text conformance plus required coverage.
metrics-lint:
	$(GO) run ./cmd/metricslint

# Boots a 2-mirror cluster with a live adaptation controller, fetches
# /cluster/status over real HTTP, and asserts the aggregated status
# document is well-formed (links, sites, checkpoint progress, regime).
status-smoke:
	$(GO) run ./cmd/statussmoke

# Wire-takeover end-to-end under the race detector: central + standby
# + survivor as TCP-connected mirrord sites, kill the central, assert
# the standby promotes (or the mirrors elect), the survivor redials,
# and the cluster converges byte-exact in epoch 1.
takeover-smoke:
	$(GO) test -race -count=1 -run 'TestWireTakeover' ./cmd/mirrord

# Full gate: what CI runs and what every change must keep green.
ci: build vet race metrics-lint status-smoke takeover-smoke

# Deterministic fault-injection sweep under the race detector: 32
# seeded runs of each schedule class — "mirror" crash-restarts a
# mirror, "central" kills the central site and promotes the
# warm-standby — while machine-checking the mirroring invariants
# (including invariant 7, lossless promotion). A failing seed replays
# with scripts/chaos_repro.sh <seed>.
chaos:
	$(GO) run -race ./cmd/chaosrunner -seeds 32 -class all

# Short fuzz pass over the wire codec and the checkpoint control
# plane (the checked-in corpora always run as regular tests).
fuzz:
	$(GO) test -run xxx -fuzz FuzzCodecCorrupt -fuzztime 20s ./internal/event
	$(GO) test -run xxx -fuzz FuzzBatchFrame -fuzztime 20s ./internal/event
	$(GO) test -run xxx -fuzz FuzzCheckpointControl -fuzztime 20s ./internal/checkpoint
	$(GO) test -run xxx -fuzz FuzzPromotionHandshake -fuzztime 20s ./internal/checkpoint
	$(GO) test -run xxx -fuzz FuzzRegimeDirective -fuzztime 20s ./internal/adapt
	$(GO) test -run xxx -fuzz FuzzStateDelta -fuzztime 20s ./internal/statedelta

# One fast pass over every figure and ablation benchmark.
bench:
	$(GO) test -run xxx -bench 'Fig|Ablation' -benchtime=1x .

# Repeated runs of the fan-out-sensitive benchmarks, benchstat-ready.
bench-compare:
	./scripts/bench_compare.sh

# Statistical wire-format gate: >=5 runs of the legacy vs columnar
# framing benchmarks, Mann-Whitney-checked by the self-contained
# cmd/benchgate (no benchstat install needed), plus a 0 allocs/op
# assertion on the columnar round trip.
bench-gate:
	./scripts/bench_compare.sh gate

# Incremental-rejoin gate: the snapshot vs cut-anchored delta rejoin
# transfer, Mann-Whitney-checked on convergence time plus a >=5x
# wire-byte ratio (cmd/benchgate -ratio-metric).
bench-rejoin:
	./scripts/bench_compare.sh rejoin

# The init-state serving-path benchmarks (storm throughput and
# snapshot-cache rebuild cost).
bench-serve:
	$(GO) test -run xxx -bench 'ServeInitStorm|SnapshotRebuild' -benchmem .

figures:
	$(GO) run ./cmd/benchrunner -fig all

clean:
	rm -f adaptmirror.test bench_*.txt
