package cluster

import (
	"strings"
	"testing"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/obs"
)

// TestStageSumMatchesMeanDelay checks the tracer's telescoping
// invariant on a Fig-5-style run: the sum of the central-path stage
// means (ready_wait + forward + apply) must reproduce the mean update
// delay within 5% — the decomposition accounts for the end-to-end
// metric, it does not invent or lose time.
func TestStageSumMatchesMeanDelay(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors: 2, Flights: 50, UpdatesPerFlight: 40, EventSize: 128,
		ChkptFreq: 50,
		Model:     lightModel, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDelay <= 0 {
		t.Fatalf("MeanDelay = %v, want > 0", res.MeanDelay)
	}
	diff := res.StageSum - res.MeanDelay
	if diff < 0 {
		diff = -diff
	}
	if tol := res.MeanDelay / 20; diff > tol {
		t.Fatalf("stage sum %v vs mean delay %v: differ by %v (> 5%% = %v)\nstages: %+v",
			res.StageSum, res.MeanDelay, diff, tol, res.Stages)
	}
}

// TestStagesCoverPipeline asserts a mirrored run populates every
// lifecycle stage: the central decomposition, the fan-out path, the
// mirrors' apply lag, and checkpoint commits.
func TestStagesCoverPipeline(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors: 2, Flights: 10, UpdatesPerFlight: 30, EventSize: 128,
		ChkptFreq: 50,
		Model:     lightModel, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]obs.StageStat{}
	for _, st := range res.Stages {
		got[st.Stage] = st
	}
	for _, want := range []string{
		"ready_wait", "forward", "apply",
		"fanout_enqueue", "link_send", "mirror_apply", "chkpt_commit",
	} {
		st, ok := got[want]
		if !ok {
			t.Errorf("stage %q missing from breakdown %+v", want, res.Stages)
			continue
		}
		if st.Count == 0 {
			t.Errorf("stage %q recorded no samples", want)
		}
	}
	// 300 events through the central EDE and through each of 2 mirrors.
	if got["apply"].Count != 300 {
		t.Errorf("apply count = %d, want 300", got["apply"].Count)
	}
	if got["mirror_apply"].Count != 600 {
		t.Errorf("mirror_apply count = %d, want 600", got["mirror_apply"].Count)
	}
}

// TestClusterRegistryExposition scrapes the cluster-wide registry after
// a run: one WritePrometheus dump must cover ingest counters, fan-out
// links, queue depths, the snapshot cache, checkpoint rounds, and the
// stage histograms — and conform to the exposition format.
func TestClusterRegistryExposition(t *testing.T) {
	cl, err := New(Config{Mirrors: 2, Model: lightModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	events := BuildEvents(Options{Flights: 4, UpdatesPerFlight: 25, EventSize: 128, Seed: 13})
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()
	if _, err := cl.Mirrors[0].Main().RequestInitState(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := cl.Obs.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition not conformant: %v\n%s", err, text)
	}
	for _, want := range []string{
		`central_received_total{site="central"}`,
		`central_mirrored_total{site="central"}`,
		`link_sent_total{mirror="0"}`,
		`link_sent_total{mirror="1"}`,
		`link_outbox_depth{mirror="0"}`,
		`queue_ready_depth{site="central"}`,
		`queue_ready_depth{site="mirror0"}`,
		`mirror_received_total{site="mirror1"}`,
		`snapshot_cache_misses_total{site="mirror0"}`,
		`checkpoint_rounds_total{site="central"}`,
		`checkpoint_round_seconds_count{site="central"}`,
		`pipeline_stage_seconds_count{stage="apply"}`,
		`pipeline_stage_seconds_count{stage="mirror_apply"}`,
		`update_delay_seconds_count`,
		`client_updates_total 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAdaptiveRunAuditsTransitions runs a Fig-8/9-style adaptive
// experiment and checks the audit trail: every logged engage fired at
// or above the primary threshold, every revert below the hysteresis
// band, and the trail's transition counts match the controller's.
func TestAdaptiveRunAuditsTransitions(t *testing.T) {
	model := lightModel
	model.RequestBase = 300 * time.Microsecond
	res, err := RunExperiment(Options{
		Mirrors: 1, Flights: 4, UpdatesPerFlight: 50, EventSize: 64,
		EventRate:      5000,
		Adaptive:       true,
		Baseline:       adapt.Regime{ID: 1, Coalesce: true, MaxCoalesce: 10, OverwriteLen: 10, CheckpointFreq: 10},
		Degraded:       adapt.Regime{ID: 2, Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 20},
		PendingPrimary: 1, PendingSecondary: 1,
		RequestRate: 1e6, TotalRequests: 100,
		Model: model, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engages == 0 {
		t.Fatal("adaptation never engaged despite saturating thresholds")
	}
	if len(res.Audit) == 0 {
		t.Fatal("adaptive run recorded no audit entries")
	}
	var engages, reverts uint64
	for i, e := range res.Audit {
		switch e.Action {
		case "engage":
			engages++
			if e.Value < e.Primary {
				t.Errorf("audit[%d]: engage at %s=%d below primary %d", i, e.Var, e.Value, e.Primary)
			}
		case "revert":
			reverts++
			if e.Value >= e.Primary-e.Secondary {
				t.Errorf("audit[%d]: revert at %s=%d inside hysteresis band (primary %d - secondary %d)",
					i, e.Var, e.Value, e.Primary, e.Secondary)
			}
		default:
			t.Errorf("audit[%d]: unknown action %q", i, e.Action)
		}
		if e.Seq == 0 || e.At.IsZero() {
			t.Errorf("audit[%d]: missing seq/timestamp: %+v", i, e)
		}
	}
	if engages != res.Engages || reverts != res.Reverts {
		t.Errorf("audit counts engage/revert = %d/%d, controller reports %d/%d",
			engages, reverts, res.Engages, res.Reverts)
	}
}
