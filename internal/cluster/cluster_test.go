package cluster

import (
	"testing"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/simnet"
)

// lightModel keeps harness tests fast while still exercising the
// virtual CPUs.
var lightModel = costmodel.Model{
	EventBase:      2 * time.Microsecond,
	SerializeBase:  500 * time.Nanosecond,
	SubmitBase:     200 * time.Nanosecond,
	RequestBase:    5 * time.Microsecond,
	CheckpointBase: time.Microsecond,
	ControlCost:    200 * time.Nanosecond,
}

func runOn(t *testing.T, tr Transport) {
	t.Helper()
	cl, err := New(Config{Mirrors: 2, Transport: tr, Model: lightModel})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	events := BuildEvents(Options{Flights: 4, UpdatesPerFlight: 25, EventSize: 128, Seed: 1})
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()

	st := cl.Central.Stats()
	if st.Received != 100 {
		t.Fatalf("Received = %d, want 100", st.Received)
	}
	if st.Mirrored != 100 {
		t.Fatalf("Mirrored = %d, want 100", st.Mirrored)
	}
	for i, m := range cl.Mirrors {
		if m.Processed() != 100 {
			t.Fatalf("mirror %d processed %d, want 100", i, m.Processed())
		}
	}
	if cl.Updates.Value() != 100 {
		t.Fatalf("Updates = %d, want 100", cl.Updates.Value())
	}
	if cl.DelayHist.Count() != 100 {
		t.Fatalf("delay samples = %d, want 100", cl.DelayHist.Count())
	}
}

func TestClusterDirect(t *testing.T)   { runOn(t, TransportDirect) }
func TestClusterChannels(t *testing.T) { runOn(t, TransportChannels) }
func TestClusterTCP(t *testing.T)      { runOn(t, TransportTCP) }

func TestClusterTCPShaped(t *testing.T) {
	cl, err := New(Config{
		Mirrors:   1,
		Transport: TransportTCP,
		Shaping:   simnet.Profile{Bandwidth: 50e6, Latency: 50 * time.Microsecond},
		Model:     lightModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	events := BuildEvents(Options{Flights: 2, UpdatesPerFlight: 10, EventSize: 512, Seed: 2})
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()
	if got := cl.Mirrors[0].Processed(); got != 20 {
		t.Fatalf("mirror processed %d, want 20", got)
	}
}

func TestTargetsFallBackToCentral(t *testing.T) {
	cl, err := New(Config{Mirrors: 0, Model: lightModel, NoMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	targets := cl.Targets()
	if len(targets) != 1 || targets[0] != cl.Central.Main() {
		t.Fatal("with no mirrors, the central main unit must serve requests")
	}
}

func TestTransportString(t *testing.T) {
	for tr, want := range map[Transport]string{
		TransportDirect:   "direct",
		TransportChannels: "channels",
		TransportTCP:      "tcp",
		Transport(9):      "transport(9)",
	} {
		if got := tr.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", tr, got, want)
		}
	}
}

func TestUnknownTransport(t *testing.T) {
	if _, err := New(Config{Transport: Transport(42)}); err == nil {
		t.Fatal("unknown transport must fail")
	}
}

func TestBuildEventsFAAOnly(t *testing.T) {
	events := BuildEvents(Options{Flights: 3, UpdatesPerFlight: 10, Seed: 1})
	if len(events) != 30 {
		t.Fatalf("events = %d, want 30", len(events))
	}
	for _, e := range events {
		if e.Type != event.TypeFAAPosition {
			t.Fatalf("unexpected type %s", e.Type)
		}
	}
}

func TestBuildEventsWithDelta(t *testing.T) {
	events := BuildEvents(Options{
		Flights: 3, UpdatesPerFlight: 30, WithDelta: true, Passengers: 2, Seed: 1,
	})
	wantFAA, wantDelta := 90, 3*(8+2)
	var faaN, deltaN int
	for _, e := range events {
		switch {
		case e.Type == event.TypeFAAPosition:
			faaN++
		default:
			deltaN++
		}
	}
	if faaN != wantFAA || deltaN != wantDelta {
		t.Fatalf("faa=%d delta=%d, want %d/%d", faaN, deltaN, wantFAA, wantDelta)
	}
	// Streams are distinct for vector timestamps.
	for _, e := range events {
		if e.Type == event.TypeFAAPosition && e.Stream != 0 {
			t.Fatal("FAA events must be stream 0")
		}
		if e.Type != event.TypeFAAPosition && e.Stream != 1 {
			t.Fatal("Delta events must be stream 1")
		}
	}
}

func TestRunExperimentBasic(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors: 1, Flights: 4, UpdatesPerFlight: 25, EventSize: 128,
		Model: lightModel, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("TotalTime must be positive")
	}
	if res.Central.Received != 100 {
		t.Fatalf("Received = %d, want 100", res.Central.Received)
	}
	if res.MeanDelay < 0 {
		t.Fatal("MeanDelay must not be negative")
	}
}

func TestRunExperimentWithRequests(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors: 2, Flights: 4, UpdatesPerFlight: 25, EventSize: 128,
		RequestRate: 2000, TotalRequests: 40,
		Model: lightModel, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests.Completed != 40 {
		t.Fatalf("Completed = %d, want 40", res.Requests.Completed)
	}
}

func TestRunExperimentSelectiveMirrorsLess(t *testing.T) {
	base := Options{
		Mirrors: 1, Flights: 2, UpdatesPerFlight: 50, EventSize: 128,
		Model: lightModel, Seed: 5,
	}
	simple, err := RunExperiment(base)
	if err != nil {
		t.Fatal(err)
	}
	sel := base
	sel.Selective = 10
	selective, err := RunExperiment(sel)
	if err != nil {
		t.Fatal(err)
	}
	if selective.Central.Mirrored >= simple.Central.Mirrored {
		t.Fatalf("selective mirrored %d >= simple %d", selective.Central.Mirrored, simple.Central.Mirrored)
	}
}

func TestRunExperimentNoMirrorBaseline(t *testing.T) {
	res, err := RunExperiment(Options{
		NoMirror: true, Flights: 2, UpdatesPerFlight: 10, EventSize: 64,
		Model: lightModel, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Central.Mirrored != 0 {
		t.Fatalf("Mirrored = %d, want 0", res.Central.Mirrored)
	}
}

func TestRunExperimentAdaptive(t *testing.T) {
	// Pace the event stream across the request run so checkpoint
	// rounds (the sampling instants) see the request backlog: requests
	// arrive far faster than the 300µs service time, so the pending
	// buffer is deep for most of the run.
	model := lightModel
	model.RequestBase = 300 * time.Microsecond
	res, err := RunExperiment(Options{
		Mirrors: 1, Flights: 4, UpdatesPerFlight: 50, EventSize: 64,
		EventRate: 5000,
		Adaptive:  true,
		Baseline:  adapt.Regime{ID: 1, Coalesce: true, MaxCoalesce: 10, OverwriteLen: 10, CheckpointFreq: 10},
		Degraded:  adapt.Regime{ID: 2, Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 20},
		// Threshold of 1 pending request: trivially engaged by load.
		PendingPrimary: 1, PendingSecondary: 1,
		RequestRate: 1e6, TotalRequests: 100,
		Model: model, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engages == 0 {
		t.Fatal("adaptation never engaged despite saturating thresholds")
	}
}

func TestRunExperimentSeries(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors: 1, Flights: 2, UpdatesPerFlight: 40, EventSize: 64,
		EventRate: 2000, SeriesBin: 10 * time.Millisecond,
		Model: lightModel, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DelayBins) == 0 {
		t.Fatal("no delay bins recorded")
	}
}

func TestFeedPacedHonorsStop(t *testing.T) {
	cl, err := New(Config{Mirrors: 0, Model: lightModel, NoMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	events := BuildEvents(Options{Flights: 1, UpdatesPerFlight: 10000, Seed: 9})
	stop := make(chan struct{})
	close(stop)
	if err := cl.FeedPaced(events, 100, stop); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()
	if got := cl.Central.Stats().Received; got >= 10000 {
		t.Fatalf("stop ignored: received %d", got)
	}
}

func TestFeedAfterDrainErrors(t *testing.T) {
	cl, err := New(Config{Mirrors: 0, Model: lightModel, NoMirror: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.DrainAll()
	if err := cl.Feed([]*event.Event{event.NewPosition(1, 1, 0, 0, 0, 32)}); err == nil {
		t.Fatal("feeding after drain must fail")
	}
}

func TestVirtualParallelismSpeedsUpRequests(t *testing.T) {
	// The core claim of mirroring: the same request volume completes
	// faster when spread over more mirror CPUs. 200 requests at 20µs
	// each = 4ms of work on one node vs 1ms spread over four.
	opts := Options{
		Flights: 1, UpdatesPerFlight: 1, EventSize: 0,
		RequestRate: 1e9, TotalRequests: 400,
		Model: costmodel.Model{
			EventBase:   time.Microsecond,
			RequestBase: 300 * time.Microsecond,
		},
		Seed: 10,
	}
	one := opts
	one.Mirrors = 1
	r1, err := RunExperiment(one)
	if err != nil {
		t.Fatal(err)
	}
	four := opts
	four.Mirrors = 4
	r4, err := RunExperiment(four)
	if err != nil {
		t.Fatal(err)
	}
	if r4.TotalTime >= r1.TotalTime {
		t.Fatalf("4 mirrors (%v) not faster than 1 (%v) under pure request load",
			r4.TotalTime, r1.TotalTime)
	}
}
