package cluster

import (
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/delta"
	"adaptmirror/internal/event"
	"adaptmirror/internal/faa"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/simnet"
	"adaptmirror/internal/workload"
)

// Options parameterizes one experiment run: a workload (event stream
// plus client request load), a mirroring configuration, and a cluster
// topology. Each figure of the paper's evaluation is a sweep over one
// or two of these fields.
type Options struct {
	// Topology.
	Mirrors   int
	NoMirror  bool
	Transport Transport
	Shaping   simnet.Profile

	// Event stream.
	Flights          int
	UpdatesPerFlight int
	EventSize        int
	WithDelta        bool
	Passengers       int
	EventRate        float64 // events/second; 0 = feed at full speed

	// Mirroring configuration.
	Selective    int  // FAA overwrite length; 0 = simple mirroring
	ComplexRules bool // install the paper's seq + tuple rules
	Coalesce     bool
	MaxCoalesce  int
	ChkptFreq    int

	// Client request load.
	RequestRate     float64
	TotalRequests   int
	RequestPattern  workload.Pattern // overrides RequestRate when set
	RequestDuration time.Duration
	// RequestsToAllSites balances requests over the central site (the
	// primary mirror) as well as the secondary mirrors, matching the
	// paper's "evenly distributed across mirror sites".
	RequestsToAllSites bool
	// RequestsUntilDrained keeps the request generator running at the
	// offered rate until the event stream has fully drained (the
	// "constant request load" of Figures 6-8), instead of stopping at
	// TotalRequests/RequestDuration.
	RequestsUntilDrained bool

	// Adaptation (Figure 9).
	Adaptive           bool
	Baseline, Degraded adapt.Regime
	PendingPrimary     int
	PendingSecondary   int
	ReadyPrimary       int
	ReadySecondary     int
	// Wire-telemetry thresholds (FigBandwidth): engage when the
	// busiest link's EWMA bytes/round or the deepest windowed outbox
	// high-water mark crosses primary.
	WirePrimary     int
	WireSecondary   int
	OutboxPrimary   int
	OutboxSecondary int
	// DeltaRegime, when non-zero, is installed instead of Degraded for
	// engagements triggered by the wire-telemetry variables (the
	// field-delta regime: saturated fan-out degrades to field deltas
	// before it degrades fidelity).
	DeltaRegime adapt.Regime

	// FieldDeltas statically forces the field-delta mirroring regime
	// for the whole run (non-adaptive sweeps of FigBandwidth).
	FieldDeltas bool

	// Misc.
	StatePadding int
	// StateShards/RequestWorkers tune the serving path (0 = defaults:
	// ede.DefaultShards stripes, core.DefaultRequestWorkers workers).
	StateShards    int
	RequestWorkers int
	SeriesBin      time.Duration
	Seed           int64
	Model          costmodel.Model // zero value → costmodel.Default
}

// Result reports one experiment run.
type Result struct {
	// TotalTime is the wall-clock span from workload start until the
	// last site finished all event processing and request service —
	// the paper's "total execution time".
	TotalTime time.Duration
	// MeanDelay/P95Delay/MaxDelay summarize central update delays
	// (ingress → EDE emission), the Figure 8/9 metric.
	MeanDelay time.Duration
	P95Delay  time.Duration
	MaxDelay  time.Duration
	// DelayBins is the per-bin mean update delay in microseconds when
	// Options.SeriesBin was set.
	DelayBins []float64
	// MeanReqLat/P95ReqLat summarize init-state request latencies
	// (enqueue → response ready) across every site's serving pool.
	MeanReqLat time.Duration
	P95ReqLat  time.Duration
	// SnapshotHits/SnapshotMisses aggregate the sites' init-state
	// snapshot-cache counters: hits served from cached segments, misses
	// rebuilt at least one shard.
	SnapshotHits   uint64
	SnapshotMisses uint64
	// Central are the central site's traffic counters.
	Central core.CentralStats
	// Requests summarizes the client load run.
	Requests workload.Result
	// Engages/Reverts count adaptation transitions.
	Engages uint64
	Reverts uint64
	// Stages is the lifecycle tracer's per-stage latency breakdown
	// (ingest → emission decomposed; empty stages omitted).
	Stages []obs.StageStat
	// StageSum is the sum of the central-path stage means — it should
	// telescope to MeanDelay (the tracer's consistency invariant).
	StageSum time.Duration
	// Audit holds the adaptation audit trail (Adaptive runs only): one
	// entry per engage/revert with the sample and thresholds behind it.
	Audit []obs.AuditEntry
	// LinkSentBytes sums payload bytes submitted across every mirror
	// link; BytesPerRound divides it by the checkpoint rounds that ran
	// (the FigBandwidth metric).
	LinkSentBytes uint64
	BytesPerRound float64
}

// zeroModel reports whether m is entirely unset.
func zeroModel(m costmodel.Model) bool { return m == costmodel.Model{} }

// BuildEvents generates the experiment's input stream: an FAA
// position stream (stream 0), optionally interleaved with a Delta
// lifecycle stream (stream 1) at a ~10:1 ratio.
func BuildEvents(opts Options) []*event.Event {
	faaGen := faa.New(faa.Config{
		Flights:          opts.Flights,
		UpdatesPerFlight: opts.UpdatesPerFlight,
		EventSize:        opts.EventSize,
		Stream:           0,
		Seed:             opts.Seed + 1,
	})
	if !opts.WithDelta {
		return faaGen.All()
	}
	deltaGen := delta.New(delta.Config{
		Flights:    opts.Flights,
		Passengers: opts.Passengers,
		EventSize:  minInt(opts.EventSize, 256),
		Stream:     1,
		Seed:       opts.Seed + 2,
	})
	var out []*event.Event
	for {
		for i := 0; i < 10; i++ {
			e, ok := faaGen.Next()
			if !ok {
				out = append(out, deltaGen.All()...)
				return out
			}
			out = append(out, e)
		}
		if e, ok := deltaGen.Next(); ok {
			out = append(out, e)
		}
		if faaGen.Remaining() == 0 && deltaGen.Remaining() == 0 {
			return out
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunExperiment executes one configuration and reports its result.
func RunExperiment(opts Options) (Result, error) {
	model := opts.Model
	if zeroModel(model) {
		model = costmodel.Default
	}
	// The controller must be fully constructed before New(cfg) starts
	// the transports: the OnMirrorSample closure runs on transport
	// goroutines, and having them read a variable the main goroutine
	// assigns later is a data race.
	var controller *adapt.Controller
	if opts.Adaptive {
		controller = adapt.NewController(opts.Baseline, opts.Degraded, nil)
	}
	cfg := Config{
		Mirrors:        opts.Mirrors,
		Transport:      opts.Transport,
		Shaping:        opts.Shaping,
		Model:          model,
		StatePadding:   opts.StatePadding,
		StateShards:    opts.StateShards,
		RequestWorkers: opts.RequestWorkers,
		NoMirror:       opts.NoMirror,
		SeriesBin:      opts.SeriesBin,
		Params: core.Params{
			Coalesce:       opts.Coalesce,
			MaxCoalesce:    opts.MaxCoalesce,
			CheckpointFreq: opts.ChkptFreq,
		},
		OnMirrorSample: func(site int, s core.Sample) {
			if controller != nil {
				controller.ObserveSite(site, s)
			}
		},
	}
	cl, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()

	// Mirroring configuration (Table-1 API calls).
	if opts.Selective > 0 {
		cl.Central.InstallSelective(opts.Selective)
	} else if !opts.Adaptive {
		cl.Central.InstallSimple()
	}
	if opts.ComplexRules {
		cl.Central.SetComplexSeq(event.TypeDeltaStatus, event.StatusLanded, event.TypeFAAPosition)
		cl.Central.SetComplexTuple(
			[]event.Status{event.StatusLanded, event.StatusAtRunway, event.StatusAtGate},
			event.TypeFlightArrived)
	}
	if opts.FieldDeltas {
		cl.Central.SetFieldDeltas(true)
	}
	var audit *obs.AuditLog
	if opts.Adaptive {
		controller.SetApply(adapt.InstallRegime(cl.Central))
		audit = obs.NewAuditLog(0)
		controller.SetAudit(audit)
		controller.RegisterMetrics(cl.Obs)
		cl.Controller = controller
		cl.Audit = audit
		if opts.PendingPrimary > 0 {
			controller.SetMonitorValues(adapt.VarPending, opts.PendingPrimary, opts.PendingSecondary)
		}
		if opts.ReadyPrimary > 0 {
			controller.SetMonitorValues(adapt.VarReady, opts.ReadyPrimary, opts.ReadySecondary)
		}
		if opts.WirePrimary > 0 {
			controller.SetMonitorValues(adapt.VarWireBytes, opts.WirePrimary, opts.WireSecondary)
		}
		if opts.OutboxPrimary > 0 {
			controller.SetMonitorValues(adapt.VarOutboxDepth, opts.OutboxPrimary, opts.OutboxSecondary)
		}
		if opts.DeltaRegime != (adapt.Regime{}) {
			controller.SetVarRegime(adapt.VarWireBytes, &opts.DeltaRegime)
			controller.SetVarRegime(adapt.VarOutboxDepth, &opts.DeltaRegime)
		}
		// Central observes its own sample and piggybacks the current
		// regime on every checkpoint round.
		cl.Central.SetPiggyback(func() []byte {
			controller.Observe(cl.Central.Sample())
			return adapt.EncodeRegime(controller.Current())
		})
	}

	events := BuildEvents(opts)

	start := time.Now()

	// Client request load runs concurrently with the event stream.
	var reqResult workload.Result
	reqDone := make(chan struct{})
	reqStop := make(chan struct{})
	if opts.RequestPattern != nil || opts.RequestRate > 0 {
		pattern := opts.RequestPattern
		if pattern == nil {
			pattern = workload.Constant{RPS: opts.RequestRate}
		}
		targets := cl.Targets()
		if opts.RequestsToAllSites {
			targets = cl.AllTargets()
		}
		var stop <-chan struct{}
		if opts.RequestsUntilDrained {
			stop = reqStop
		}
		go func() {
			defer close(reqDone)
			reqResult = workload.Run(workload.Config{
				Pattern:       pattern,
				Targets:       targets,
				TotalRequests: opts.TotalRequests,
				Duration:      opts.RequestDuration,
				Stop:          stop,
				Seed:          opts.Seed,
			})
		}()
	} else {
		close(reqDone)
	}

	if err := cl.FeedPaced(events, opts.EventRate, nil); err != nil {
		return Result{}, err
	}
	cl.DrainAll()
	close(reqStop)
	<-reqDone
	// Requests book CPU work too; wait for everything to complete.
	// WaitIdle sleeps past every node's booked deadline, so wall
	// clock here is the honest completion instant.
	costmodel.WaitIdle(cl.CPUs...)

	res := Result{
		TotalTime:  time.Since(start),
		MeanDelay:  cl.DelayHist.Mean(),
		P95Delay:   cl.DelayHist.Percentile(95),
		MaxDelay:   cl.DelayHist.Max(),
		MeanReqLat: cl.RequestHist.Mean(),
		P95ReqLat:  cl.RequestHist.Percentile(95),
		Central:    cl.Central.Stats(),
		Requests:   reqResult,
	}
	for _, m := range cl.AllTargets() {
		hits, misses := m.SnapshotCacheStats()
		res.SnapshotHits += hits
		res.SnapshotMisses += misses
	}
	if cl.DelaySeries != nil {
		res.DelayBins = cl.DelaySeries.Bins()
	}
	res.Stages = cl.Tracer.Breakdown()
	res.StageSum = cl.Tracer.CentralStageSum()
	if controller != nil {
		res.Engages, res.Reverts = controller.Transitions()
		res.Audit = audit.Entries()
	}
	for _, ls := range cl.Central.LinkStats() {
		res.LinkSentBytes += ls.SentBytes
	}
	if rounds := res.Central.ChkptRounds; rounds > 0 {
		res.BytesPerRound = float64(res.LinkSentBytes) / float64(rounds)
	} else {
		res.BytesPerRound = float64(res.LinkSentBytes)
	}
	return res, nil
}
