// Package cluster assembles a mirrored OIS server — one central site
// plus N mirror sites — over a choice of transports, and exposes the
// handles experiments need: feeding events, draining the pipeline,
// request targets, and the per-node virtual CPUs. It is the
// reproduction's stand-in for the paper's 8-node Pentium III cluster.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/echo"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/simnet"
	"adaptmirror/internal/status"
)

// Transport selects how sites are wired together.
type Transport int

// Available transports.
const (
	// TransportDirect wires sites with synchronous function calls —
	// the fastest harness, used by most experiments (network cost is
	// modeled by the cost model, matching the paper's observation
	// that intra-cluster bandwidth is not the bottleneck).
	TransportDirect Transport = iota
	// TransportChannels wires sites with in-process ECho event
	// channels (asynchronous per-subscriber dispatch).
	TransportChannels
	// TransportTCP wires sites with framed events over loopback TCP,
	// optionally shaped by a simnet profile — the deployment path.
	TransportTCP
)

// String names the transport.
func (t Transport) String() string {
	switch t {
	case TransportDirect:
		return "direct"
	case TransportChannels:
		return "channels"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Mirrors is the number of mirror sites.
	Mirrors int
	// Transport wires the sites (default TransportDirect).
	Transport Transport
	// Shaping applies to TCP links (TransportTCP only).
	Shaping simnet.Profile
	// LegacyFrames, when LegacyFrames[i] is true, forces mirror i's
	// data link onto the per-event legacy framing instead of columnar
	// batch frames (TransportTCP only) — the mixed-generation interop
	// configuration, where an upgraded central feeds a not-yet-upgraded
	// mirror.
	LegacyFrames []bool
	// Params are the initial mirroring parameters.
	Params core.Params
	// Model is the CPU cost model for every site.
	Model costmodel.Model
	// StatePadding inflates per-flight init-state size.
	StatePadding int
	// StateShards is each site's EDE flight-table stripe count
	// (0 = ede.DefaultShards).
	StateShards int
	// RequestWorkers bounds each site's init-state serving pool
	// (0 = core.DefaultRequestWorkers).
	RequestWorkers int
	// Streams is the input stream count (default 2: FAA + Delta).
	Streams int
	// NoMirror disables the mirroring path (baseline).
	NoMirror bool
	// NICOffload gives the central site a second processor hosting
	// its auxiliary-unit work (the paper's planned IXP1200
	// network-co-processor split).
	NICOffload bool
	// SeriesBin, when non-zero, records a delay time series with this
	// bin width (Figure 9).
	SeriesBin time.Duration
	// OnMirrorSample forwards piggybacked mirror monitor samples
	// (adaptation input) together with the reporting mirror's index.
	OnMirrorSample func(site int, s core.Sample)
	// ClientOut, when non-nil, additionally receives the central
	// site's client update stream (thin clients, operations logs).
	ClientOut core.Sender
	// DeltaHorizon is the central mutation journal's retention, in
	// committed checkpoint cuts, for incremental mirror rejoin
	// (0 = ede.DefaultJournalHorizon; negative disables journaling so
	// every rejoin ships the full snapshot).
	DeltaHorizon int
}

// Cluster is a running mirrored server.
type Cluster struct {
	Central *core.Central
	Mirrors []*core.MirrorSite

	// CPUs[0] is the central node; CPUs[1..] the mirrors.
	CPUs []*costmodel.CPU

	// DelayHist records central update delays (Figures 7-9 metrics).
	DelayHist *metrics.Histogram
	// RequestHist records init-state request latencies (enqueue →
	// response ready) across every site's serving pool.
	RequestHist *metrics.Histogram
	// DelaySeries is non-nil when Config.SeriesBin was set.
	DelaySeries *metrics.Series

	// Updates counts state updates emitted to regular clients.
	Updates *metrics.Counter

	// Obs is the cluster-wide metrics registry: every site registers
	// its instruments here under a site label, so one scrape (or one
	// WritePrometheus dump) covers the whole cluster.
	Obs *obs.Registry
	// Tracer decomposes the end-to-end update delay into lifecycle
	// stages (ready-wait, forward, apply, fan-out enqueue, link send,
	// mirror apply, checkpoint commit) shared by every site.
	Tracer *obs.Tracer

	// Appliers[i] is mirror i's adaptation applier: it consumes the
	// regime directives the central piggybacks on CHKPT traffic,
	// discards stale/duplicate deliveries by checkpoint round, and
	// installs the mirror-relevant parameters on Mirrors[i]. Always
	// wired (a non-adaptive cluster simply never sees a directive) so
	// every deployment exports the per-site adapt_regime_id gauge.
	Appliers []*adapt.Applier

	// Controller and Audit are set when an adaptation controller runs
	// against this cluster (RunExperiment wires them; manual assemblies
	// may too). Both may be nil; the status plane degrades gracefully.
	Controller *adapt.Controller
	Audit      *obs.AuditLog

	start     time.Time
	closers   []func()
	closeOnce sync.Once

	sampleMu sync.Mutex
	onSample func(site int, s core.Sample)
}

// SetOnMirrorSample installs (or replaces) the callback receiving the
// monitor samples mirror sites piggyback on checkpoint replies. It
// composes with Config.OnMirrorSample: both are invoked.
func (cl *Cluster) SetOnMirrorSample(f func(site int, s core.Sample)) {
	cl.sampleMu.Lock()
	cl.onSample = f
	cl.sampleMu.Unlock()
}

func (cl *Cluster) dispatchSample(site int, s core.Sample, configured func(int, core.Sample)) {
	if configured != nil {
		configured(site, s)
	}
	cl.sampleMu.Lock()
	f := cl.onSample
	cl.sampleMu.Unlock()
	if f != nil {
		f(site, s)
	}
}

// newApplier creates mirror i's directive applier and exports its
// metrics; the install hook is attached once the site exists.
func (cl *Cluster) newApplier(i int) *adapt.Applier {
	ap := adapt.NewApplier(nil)
	ap.RegisterMetrics(cl.Obs, fmt.Sprintf("mirror%d", i))
	// The wire-takeover counters are part of every mirror site's
	// metrics surface (cmd/mirrord arms them with -takeover-budget);
	// the in-process cluster registers them at zero so dashboards and
	// the metrics lint see the full shape.
	core.RegisterTakeoverMetrics(cl.Obs, fmt.Sprintf("mirror%d", i))
	cl.Appliers = append(cl.Appliers, ap)
	return ap
}

// counterSink counts submissions (the regular-clients channel) and
// forwards them to an optional downstream consumer.
type counterSink struct {
	c    *metrics.Counter
	next core.Sender
}

func (s counterSink) Submit(e *event.Event) error {
	s.c.Inc()
	if s.next != nil {
		return s.next.Submit(e)
	}
	return nil
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Streams <= 0 {
		cfg.Streams = 2
	}
	cl := &Cluster{
		DelayHist:   metrics.NewHistogram(0),
		RequestHist: metrics.NewHistogram(0),
		Updates:     &metrics.Counter{},
		Obs:         obs.NewRegistry(),
		start:       time.Now(),
	}
	cl.Tracer = obs.NewTracer(cl.Obs)
	cl.Obs.Describe("update_delay_seconds", "Central update delay, ingress to EDE emission.")
	cl.Obs.RegisterHistogram("update_delay_seconds", cl.DelayHist)
	cl.Obs.Describe("request_latency_seconds", "Init-state request latency, enqueue to response, all sites.")
	cl.Obs.RegisterHistogram("request_latency_seconds", cl.RequestHist)
	cl.Obs.Describe("client_updates_total", "State updates emitted to regular clients.")
	cl.Obs.RegisterCounter("client_updates_total", cl.Updates)
	cl.Obs.Describe("slab_pool_hit_total", "Batch-frame slabs served from the pool.")
	cl.Obs.Describe("slab_pool_miss_total", "Batch-frame slabs freshly allocated on pool miss.")
	cl.Obs.Describe("slab_pool_retained_total", "Batch-frame slabs returned to the pool for reuse.")
	cl.Obs.CounterFunc("slab_pool_hit_total", func() float64 { h, _, _ := event.SlabPoolStats(); return float64(h) })
	cl.Obs.CounterFunc("slab_pool_miss_total", func() float64 { _, m, _ := event.SlabPoolStats(); return float64(m) })
	cl.Obs.CounterFunc("slab_pool_retained_total", func() float64 { _, _, r := event.SlabPoolStats(); return float64(r) })
	if cfg.SeriesBin > 0 {
		cl.DelaySeries = metrics.NewSeries(cl.start, cfg.SeriesBin)
	}
	for i := 0; i <= cfg.Mirrors; i++ {
		cl.CPUs = append(cl.CPUs, &costmodel.CPU{})
	}

	mainCfg := cl.siteMainCfg(cfg)
	mainCfg.Out = counterSink{c: cl.Updates, next: cfg.ClientOut}
	mainCfg.DelayHist = cl.DelayHist
	mainCfg.DelaySeries = cl.DelaySeries

	var links []core.MirrorLink
	var err error
	switch cfg.Transport {
	case TransportDirect:
		links = cl.wireDirect(cfg)
	case TransportChannels:
		links = cl.wireChannels(cfg)
	case TransportTCP:
		links, err = cl.wireTCP(cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown transport %d", cfg.Transport)
	}

	var auxCPU *costmodel.CPU
	if cfg.NICOffload {
		auxCPU = &costmodel.CPU{}
		cl.CPUs = append(cl.CPUs, auxCPU)
	}
	configured := cfg.OnMirrorSample
	cl.Central = core.NewCentral(core.CentralConfig{
		Streams:      cfg.Streams,
		Params:       cfg.Params,
		Model:        cfg.Model,
		CPU:          cl.CPUs[0],
		AuxCPU:       auxCPU,
		Main:         mainCfg,
		Mirrors:      links,
		NoMirror:     cfg.NoMirror,
		DeltaHorizon: cfg.DeltaHorizon,
		Obs:          cl.Obs,
		Tracer:       cl.Tracer,
		OnMirrorSample: func(site int, s core.Sample) {
			cl.dispatchSample(site, s, configured)
		},
	})
	cl.finishWiring()
	return cl, nil
}

func edeConfig(cfg Config) ede.Config {
	return ede.Config{Model: cfg.Model, StatePadding: cfg.StatePadding, Shards: cfg.StateShards}
}

// siteMainCfg is the main-unit configuration shared by every site:
// the EDE, the bounded request-serving pool, and the cluster-wide
// request-latency histogram.
func (cl *Cluster) siteMainCfg(cfg Config) core.MainConfig {
	return core.MainConfig{
		EDE:            edeConfig(cfg),
		RequestWorkers: cfg.RequestWorkers,
		RequestHist:    cl.RequestHist,
	}
}

// Start returns the cluster construction instant (experiment t=0).
func (cl *Cluster) Start() time.Time { return cl.start }

// Targets returns the main units that serve client requests: the
// mirror sites, or the central site when no mirrors exist.
func (cl *Cluster) Targets() []*core.MainUnit {
	if len(cl.Mirrors) == 0 {
		return []*core.MainUnit{cl.Central.Main()}
	}
	out := make([]*core.MainUnit, len(cl.Mirrors))
	for i, m := range cl.Mirrors {
		out[i] = m.Main()
	}
	return out
}

// AllTargets returns every site's main unit — the central site acts
// as the primary mirror in the paper's architecture, so experiment
// request load is "evenly distributed across mirror sites" including
// it (Figures 6-9).
func (cl *Cluster) AllTargets() []*core.MainUnit {
	out := []*core.MainUnit{cl.Central.Main()}
	for _, m := range cl.Mirrors {
		out = append(out, m.Main())
	}
	return out
}

// Feed ingests events in order, as fast as the central site admits
// them.
func (cl *Cluster) Feed(events []*event.Event) error {
	for i, e := range events {
		if err := cl.Central.Ingest(e); err != nil {
			return fmt.Errorf("cluster: feeding event %d/%d: %w", i, len(events), err)
		}
	}
	return nil
}

// FeedPaced ingests events at the given rate in events/second (0
// behaves like Feed). Figure 9's time-series experiment paces its
// stream so adaptation has a timeline to react on.
func (cl *Cluster) FeedPaced(events []*event.Event, rate float64, stop <-chan struct{}) error {
	if rate <= 0 {
		return cl.Feed(events)
	}
	// Accumulate due events as the integral of the rate, dispatching
	// batches per wake-up: accurate pacing at rates far above the
	// host's sleep granularity.
	start := time.Now()
	sent := 0
	for sent < len(events) {
		select {
		case <-stopCh(stop):
			return nil
		default:
		}
		due := int(time.Since(start).Seconds() * rate)
		if due > len(events) {
			due = len(events)
		}
		for ; sent < due; sent++ {
			if err := cl.Central.Ingest(events[sent]); err != nil {
				return fmt.Errorf("cluster: feeding event %d/%d: %w", sent, len(events), err)
			}
		}
		if sent < len(events) {
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

func stopCh(stop <-chan struct{}) <-chan struct{} {
	if stop == nil {
		return make(chan struct{}) // never ready
	}
	return stop
}

// DrainAll stops ingestion, waits until every site has received and
// processed every event, runs a final checkpoint, and waits for all
// booked CPU work to complete. It returns the wall-clock instant the
// last site finished.
func (cl *Cluster) DrainAll() time.Time {
	cl.Central.Drain()
	// Drain() returning implies the per-link senders have flushed, so
	// LinkStats carries each link's final Sent count. Waiting per link
	// (rather than on the global Mirrored counter) stays correct when a
	// link filtered or shed events: a mirror only ever receives what
	// its own link actually sent.
	stats := cl.Central.LinkStats()
	for i, m := range cl.Mirrors {
		for m.Received() < stats[i].Sent {
			time.Sleep(200 * time.Microsecond)
		}
		m.Drain()
	}
	cl.Central.Checkpoint()
	return costmodel.WaitIdle(cl.CPUs...)
}

// Close tears the cluster down.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		if cl.Central != nil {
			cl.Central.Close()
		}
		for _, m := range cl.Mirrors {
			m.Close()
		}
		for i := len(cl.closers) - 1; i >= 0; i-- {
			cl.closers[i]()
		}
	})
}

// --- wiring -----------------------------------------------------------

type senderFunc func(*event.Event) error

func (f senderFunc) Submit(e *event.Event) error { return f(e) }

// batchSenderFunc adds native whole-batch submission so the central
// fan-out pipeline's batches survive the direct transport intact. The
// optional owned hook carries the zero-copy protocol (slab views
// guarded by a borrow-during-call reference); when nil, owned batches
// degrade to many with the reference leaked by the caller.
type batchSenderFunc struct {
	one   func(*event.Event) error
	many  func([]*event.Event) error
	owned func([]*event.Event, event.Ref) error
}

func (f batchSenderFunc) Submit(e *event.Event) error         { return f.one(e) }
func (f batchSenderFunc) SubmitBatch(es []*event.Event) error { return f.many(es) }

func (f batchSenderFunc) SubmitOwned(es []*event.Event, ref event.Ref) error {
	if f.owned == nil {
		if ref != nil {
			ref.Retain() // surrender the slab to the GC, never recycle it
		}
		return f.many(es)
	}
	return f.owned(es, ref)
}

// wireDirect connects sites with synchronous calls. Mirrors are
// created first; the central's links close over the slice.
func (cl *Cluster) wireDirect(cfg Config) []core.MirrorLink {
	links := make([]core.MirrorLink, cfg.Mirrors)
	for i := 0; i < cfg.Mirrors; i++ {
		i := i
		ap := cl.newApplier(i)
		m := core.NewMirrorSite(core.MirrorSiteConfig{
			Main:   cl.siteMainCfg(cfg),
			Model:  cfg.Model,
			CPU:    cl.CPUs[i+1],
			SiteID: uint8(i),
			Obs:    cl.Obs,
			Tracer: cl.Tracer,
			OnPiggyback: func(round uint64, b []byte) {
				ap.Apply(round, b)
			},
			CtrlUp: senderFunc(func(e *event.Event) error {
				cl.Central.HandleControl(e)
				return nil
			}),
		})
		ap.SetInstall(adapt.InstallMirrorRegime(m))
		cl.Mirrors = append(cl.Mirrors, m)
		links[i] = core.MirrorLink{
			Data: batchSenderFunc{
				one:   func(e *event.Event) error { m.HandleData(e); return nil },
				many:  func(es []*event.Event) error { m.HandleDataBatch(es); return nil },
				owned: m.HandleOwnedBatch,
			},
			Ctrl: senderFunc(func(e *event.Event) error { m.HandleControl(e); return nil }),
		}
	}
	return links
}

// wireChannels connects sites with in-process ECho channels.
func (cl *Cluster) wireChannels(cfg Config) []core.MirrorLink {
	links := make([]core.MirrorLink, cfg.Mirrors)
	ctrlUp := echo.NewLocal("ctrl.up")
	cl.closers = append(cl.closers, func() { ctrlUp.Close() })
	ctrlUp.Subscribe(func(e *event.Event) { cl.Central.HandleControl(e) })
	for i := 0; i < cfg.Mirrors; i++ {
		ap := cl.newApplier(i)
		m := core.NewMirrorSite(core.MirrorSiteConfig{
			Main:   cl.siteMainCfg(cfg),
			Model:  cfg.Model,
			CPU:    cl.CPUs[i+1],
			SiteID: uint8(i),
			Obs:    cl.Obs,
			Tracer: cl.Tracer,
			OnPiggyback: func(round uint64, b []byte) {
				ap.Apply(round, b)
			},
			CtrlUp: ctrlUp,
		})
		ap.SetInstall(adapt.InstallMirrorRegime(m))
		cl.Mirrors = append(cl.Mirrors, m)
		data := echo.NewLocal(fmt.Sprintf("data.%d", i))
		ctrl := echo.NewLocal(fmt.Sprintf("ctrl.down.%d", i))
		data.SubscribeBatch(m.HandleData, func(es []*event.Event, ref event.Ref) {
			_ = m.HandleOwnedBatch(es, ref)
		})
		ctrl.Subscribe(m.HandleControl)
		cl.closers = append(cl.closers, func() { data.Close(); ctrl.Close() })
		links[i] = core.MirrorLink{Data: data, Ctrl: ctrl}
	}
	return links
}

// wireTCP connects sites over loopback TCP with optional shaping:
// each mirror runs an ECho server exporting its data and control
// channels; the central site dials shaped send links to each and runs
// its own server for the shared control-up channel.
func (cl *Cluster) wireTCP(cfg Config) ([]core.MirrorLink, error) {
	// Central's control-up server.
	upBus := echo.NewBus()
	upCh, _ := upBus.Open("ctrl.up")
	upCh.Subscribe(func(e *event.Event) { cl.Central.HandleControl(e) })
	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: central listener: %w", err)
	}
	upSrv := echo.NewServer(upBus)
	go upSrv.Serve(upLn)
	cl.closers = append(cl.closers, func() { upSrv.Close(); upBus.Close() })

	links := make([]core.MirrorLink, cfg.Mirrors)
	for i := 0; i < cfg.Mirrors; i++ {
		bus := echo.NewBus()
		dataCh, _ := bus.Open("data")
		ctrlCh, _ := bus.Open("ctrl.down")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d listener: %w", i, err)
		}
		srv := echo.NewServer(bus)
		go srv.Serve(ln)
		cl.closers = append(cl.closers, func() { srv.Close(); bus.Close() })

		// Mirror's uplink to the central control channel.
		upConn, err := simnet.Dial(upLn.Addr().String(), cfg.Shaping)
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d uplink: %w", i, err)
		}
		upLink, err := echo.NewSendLink(upConn, "ctrl.up")
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d uplink handshake: %w", i, err)
		}
		cl.closers = append(cl.closers, func() { upLink.Close() })

		ap := cl.newApplier(i)
		m := core.NewMirrorSite(core.MirrorSiteConfig{
			Main:   cl.siteMainCfg(cfg),
			Model:  cfg.Model,
			CPU:    cl.CPUs[i+1],
			SiteID: uint8(i),
			Obs:    cl.Obs,
			Tracer: cl.Tracer,
			OnPiggyback: func(round uint64, b []byte) {
				ap.Apply(round, b)
			},
			CtrlUp: upLink,
		})
		ap.SetInstall(adapt.InstallMirrorRegime(m))
		cl.Mirrors = append(cl.Mirrors, m)
		dataCh.SubscribeBatch(m.HandleData, func(es []*event.Event, ref event.Ref) {
			_ = m.HandleOwnedBatch(es, ref)
		})
		ctrlCh.Subscribe(m.HandleControl)

		// Central's downlinks to this mirror.
		dataConn, err := simnet.Dial(ln.Addr().String(), cfg.Shaping)
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d data link: %w", i, err)
		}
		dataLink, err := echo.NewSendLink(dataConn, "data")
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d data handshake: %w", i, err)
		}
		if i < len(cfg.LegacyFrames) && cfg.LegacyFrames[i] {
			dataLink.SetLegacyFraming(true)
		}
		ctrlConn, err := simnet.Dial(ln.Addr().String(), cfg.Shaping)
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d ctrl link: %w", i, err)
		}
		ctrlLink, err := echo.NewSendLink(ctrlConn, "ctrl.down")
		if err != nil {
			return nil, fmt.Errorf("cluster: mirror %d ctrl handshake: %w", i, err)
		}
		cl.closers = append(cl.closers, func() { dataLink.Close(); ctrlLink.Close() })
		links[i] = core.MirrorLink{Data: dataLink, Ctrl: ctrlLink}
	}
	return links, nil
}

// finishWiring is a hook for post-central-construction steps (the
// direct transport's closures capture cl.Central lazily, so nothing is
// needed today).
func (cl *Cluster) finishWiring() {}

// --- status plane -----------------------------------------------------

// CentralStatus builds the aggregated /cluster/status document: the
// central site's regime, monitored variables, per-link wire telemetry,
// per-site rows (each mirror applier's installed regime + its latest
// piggybacked sample), rejoin accounting, checkpoint progress, and the
// adaptation audit tail.
func (cl *Cluster) CentralStatus() status.Document {
	siteRegimes := make(map[int]status.SiteRegime, len(cl.Appliers))
	for i, ap := range cl.Appliers {
		if reg, round, ok := ap.Current(); ok {
			siteRegimes[i] = status.SiteRegime{RegimeID: reg.ID, DirectiveRound: round}
		}
	}
	return status.Central(status.CentralSources{
		Site:        "central",
		Central:     cl.Central,
		Controller:  cl.Controller,
		Audit:       cl.Audit,
		SiteRegimes: siteRegimes,
	})
}

// MirrorStatus builds mirror i's local status document.
func (cl *Cluster) MirrorStatus(i int) status.Document {
	if i < 0 || i >= len(cl.Mirrors) {
		return status.Document{Role: "mirror"}
	}
	var ap *adapt.Applier
	if i < len(cl.Appliers) {
		ap = cl.Appliers[i]
	}
	return status.Mirror(fmt.Sprintf("mirror%d", i), cl.Mirrors[i], ap)
}
