package cluster

import (
	"bytes"
	"testing"
	"time"
)

// TestLegacyFramingInterop runs a mixed-generation TCP cluster: the
// central encodes columnar batch frames to mirror 1 while mirror 0's
// data link is pinned to the legacy per-event framing (the
// not-yet-upgraded site). Both mirrors must process the full stream
// and converge on the central EDE state byte-for-byte, proving the
// two codecs are interchangeable on the wire — same events, same
// order, same applied state — not merely "both decode".
func TestLegacyFramingInterop(t *testing.T) {
	cl, err := New(Config{
		Mirrors:      2,
		Transport:    TransportTCP,
		LegacyFrames: []bool{true, false},
		Model:        lightModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	events := BuildEvents(Options{
		Flights: 6, UpdatesPerFlight: 40, EventSize: 256,
		WithDelta: true, Seed: 7,
	})
	want := uint64(len(events))
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()

	// DrainAll waits for the pipeline, but the last TCP read on a slow
	// run can still be in flight; poll briefly before declaring a stall.
	deadline := time.Now().Add(10 * time.Second)
	for i, m := range cl.Mirrors {
		for m.Processed() < want {
			if time.Now().After(deadline) {
				t.Fatalf("mirror %d processed %d, want %d", i, m.Processed(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Byte-exact convergence across the mixed links.
	central := cl.Central.Main().Engine().State().Snapshot()
	for i, m := range cl.Mirrors {
		got := m.Main().Engine().State().Snapshot()
		if !bytes.Equal(got, central) {
			t.Fatalf("mirror %d state diverged from central (%d vs %d bytes)",
				i, len(got), len(central))
		}
	}
	if bytes.Equal(central, nil) || len(central) == 0 {
		t.Fatal("central snapshot is empty; convergence check is vacuous")
	}
}
