package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/core"
	"adaptmirror/internal/httpfront"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/status"
)

// deltaRegime is the field-delta override the wire-telemetry variables
// install when a link saturates.
var deltaRegime = adapt.Regime{ID: 3, Name: "field-deltas", FieldDeltas: true, CheckpointFreq: 50}

// TestBandwidthEngageVisibleOnEverySite is the PR's acceptance
// criterion end to end: a bandwidth-constrained run (wire-bytes primary
// threshold far below the workload's bytes/round) must engage the
// field-delta regime via the wire telemetry variable, the audit trail
// must attribute the engage to wire_bytes, and /cluster/status
// documents — central and every mirror — must report the transition.
func TestBandwidthEngageVisibleOnEverySite(t *testing.T) {
	fn1 := adapt.Regime{ID: 1, Name: "coalesce-10", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Name: "overwrite-20", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	controller := adapt.NewController(fn1, fn2, nil)
	// ~50 events/round at ~150 wire bytes each puts the EWMA thousands
	// of bytes/round over this primary from the first telemetry tick.
	controller.SetMonitorValues(adapt.VarWireBytes, 1_000, 500)
	controller.SetVarRegime(adapt.VarWireBytes, &deltaRegime)
	// Never revert: the drain tail must not swap the regime back before
	// the assertions run.
	controller.SetRevertAfter(1 << 30)

	cl, err := New(Config{
		Mirrors: 2,
		Model:   lightModel,
		Params:  core.Params{CheckpointFreq: 50},
		OnMirrorSample: func(site int, s core.Sample) {
			controller.ObserveSite(site, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	controller.SetApply(adapt.InstallRegime(cl.Central))
	cl.Controller = controller
	audit := obs.NewAuditLog(0)
	cl.Audit = audit
	controller.SetAudit(audit)
	cl.Central.SetPiggyback(func() []byte {
		controller.Observe(cl.Central.Sample())
		return adapt.EncodeRegime(controller.Current())
	})

	events := BuildEvents(Options{Flights: 10, UpdatesPerFlight: 50, EventSize: 256, Seed: 7})
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()

	if !controller.Engaged() {
		t.Fatal("bandwidth-constrained run never engaged")
	}
	if got := controller.EngagesByVar(adapt.VarWireBytes); got != 1 {
		t.Fatalf("EngagesByVar(wire_bytes) = %d, want 1", got)
	}
	if got := controller.Current(); got.ID != deltaRegime.ID || !got.FieldDeltas {
		t.Fatalf("engaged regime = %+v, want the field-delta override", got)
	}
	if !cl.Central.FieldDeltas() {
		t.Fatal("central never switched to field-delta mirroring")
	}

	// Audit attribution.
	entries := audit.Entries()
	if len(entries) == 0 {
		t.Fatal("empty audit trail")
	}
	e := entries[0]
	if e.Action != "engage" || e.Var != "wire_bytes" {
		t.Fatalf("audit entry = %+v, want action=engage var=wire_bytes", e)
	}
	if e.WireBytes <= 1_000 {
		t.Fatalf("engage logged wire_bytes=%d, want over the primary threshold", e.WireBytes)
	}

	// The central document reports the engaged field-delta regime, the
	// triggering audit entry, and moving wire telemetry.
	doc := cl.CentralStatus()
	if doc.Regime.ID != deltaRegime.ID || !doc.Regime.FieldDeltas || !doc.Regime.Engaged {
		t.Fatalf("central status regime = %+v, want engaged field-deltas", doc.Regime)
	}
	if len(doc.Audit) == 0 || doc.Audit[0].Var != "wire_bytes" {
		t.Fatalf("central status audit tail = %+v, want the wire_bytes engage", doc.Audit)
	}
	if len(doc.Links) != 2 {
		t.Fatalf("central status has %d links, want 2", len(doc.Links))
	}
	for i, l := range doc.Links {
		if l.SentBytes == 0 || l.BytesPerRound <= 0 {
			t.Fatalf("link %d telemetry never moved: %+v", i, l)
		}
	}

	// Every mirror's own document reports the installed transition: the
	// directive rode a checkpoint round to each site's applier.
	for i := range cl.Mirrors {
		md := cl.MirrorStatus(i)
		if md.Regime.ID != deltaRegime.ID || !md.Regime.FieldDeltas {
			t.Fatalf("mirror %d status regime = %+v, want field-deltas installed", i, md.Regime)
		}
		if md.Regime.DirectiveRound == 0 {
			t.Fatalf("mirror %d reports no directive round", i)
		}
		if got, _, _ := cl.Mirrors[i].Regime(); got != deltaRegime.ID {
			t.Fatalf("mirror %d core regime = %d, want %d", i, got, deltaRegime.ID)
		}
	}
	// And the central's per-site rows agree.
	mirrorRows := 0
	for _, row := range doc.Sites {
		if row.Site == "central" {
			continue
		}
		mirrorRows++
		if row.RegimeID != deltaRegime.ID {
			t.Fatalf("central status row for %s regime = %d, want %d", row.Site, row.RegimeID, deltaRegime.ID)
		}
	}
	if mirrorRows != 2 {
		t.Fatalf("central status has %d mirror rows, want 2", mirrorRows)
	}
}

// TestExperimentWireThresholdEngages covers the experiments-layer
// wiring of the same path: Options.WirePrimary plus Options.DeltaRegime
// must produce an adaptive run whose audit shows a wire_bytes engage
// and whose result carries the FigBandwidth bytes/round metric.
func TestExperimentWireThresholdEngages(t *testing.T) {
	res, err := RunExperiment(Options{
		Mirrors:          2,
		Flights:          10,
		UpdatesPerFlight: 50,
		EventSize:        256,
		ChkptFreq:        50,
		Adaptive:         true,
		Baseline:         adapt.Regime{ID: 1, Name: "baseline", CheckpointFreq: 50},
		Degraded:         adapt.Regime{ID: 2, Name: "degraded", Coalesce: true, MaxCoalesce: 20, CheckpointFreq: 100},
		WirePrimary:      1_000,
		WireSecondary:    500,
		DeltaRegime:      deltaRegime,
		Model:            lightModel,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engages == 0 {
		t.Fatal("wire threshold never engaged")
	}
	found := false
	for _, e := range res.Audit {
		if e.Action == "engage" && e.Var == "wire_bytes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wire_bytes engage in audit: %+v", res.Audit)
	}
	if res.LinkSentBytes == 0 || res.BytesPerRound <= 0 {
		t.Fatalf("bandwidth accounting empty: sent=%d bytes/round=%v", res.LinkSentBytes, res.BytesPerRound)
	}
}

// TestStatusScrapeStorm hammers /cluster/status over real HTTP while a
// Fig5-style workload is in flight — the aggregator walks live link
// stats, telemetry, controller tables, and applier state, so this is
// the race-detector coverage for the whole status plane (run under
// `go test -race`, part of `make ci`).
func TestStatusScrapeStorm(t *testing.T) {
	fn1 := adapt.Regime{ID: 1, Name: "coalesce-10", Coalesce: true, MaxCoalesce: 10, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Name: "overwrite-20", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
	controller := adapt.NewController(fn1, fn2, nil)
	controller.SetMonitorValues(adapt.VarWireBytes, 5_000, 2_500)
	controller.SetVarRegime(adapt.VarWireBytes, &deltaRegime)

	cl, err := New(Config{
		Mirrors: 2,
		Model:   lightModel,
		Params:  core.Params{CheckpointFreq: 50},
		OnMirrorSample: func(site int, s core.Sample) {
			controller.ObserveSite(site, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	controller.SetApply(adapt.InstallRegime(cl.Central))
	cl.Controller = controller
	cl.Audit = obs.NewAuditLog(0)
	controller.SetAudit(cl.Audit)
	cl.Central.SetPiggyback(func() []byte {
		controller.Observe(cl.Central.Sample())
		return adapt.EncodeRegime(controller.Current())
	})

	front := httpfront.NewWithRegistry(cl.Central.Main(), cl.Obs)
	defer front.Close()
	front.SetStatus(cl.CentralStatus)
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr + "/cluster/status"

	// Scrapers run for the whole workload; every response must be a
	// well-formed document. Mirror documents are built concurrently too.
	const scrapers = 4
	stop := make(chan struct{})
	errc := make(chan error, scrapers)
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				var doc status.Document
				err = json.NewDecoder(resp.Body).Decode(&doc)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("scraper %d: %w", id, err)
					return
				}
				if doc.Role != "central" {
					errc <- fmt.Errorf("scraper %d: role %q", id, doc.Role)
					return
				}
				for m := range cl.Mirrors {
					if md := cl.MirrorStatus(m); md.Role != "mirror" {
						errc <- fmt.Errorf("scraper %d: mirror %d role %q", id, m, md.Role)
						return
					}
				}
			}
		}(i)
	}

	events := BuildEvents(Options{Flights: 20, UpdatesPerFlight: 50, EventSize: 128, Seed: 5})
	if err := cl.Feed(events); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The storm must not have perturbed the pipeline.
	if got := cl.Central.Stats().Mirrored; got != 1000 {
		t.Fatalf("Mirrored = %d, want 1000", got)
	}
	doc := cl.CentralStatus()
	if doc.Checkpoint == nil || doc.Checkpoint.Commits == 0 {
		t.Fatalf("no checkpoint progress after the run: %+v", doc.Checkpoint)
	}
}
