package cluster

import (
	"testing"

	"adaptmirror/internal/faultinject"
	"adaptmirror/internal/obs"
)

// TestChaosSeeds runs the chaos harness over a spread of seeds: each
// run crashes and restarts a mirror, partitions its links, injects
// probabilistic control-link faults, and skews one mirror's CPU, then
// machine-checks the four safety invariants (monotone commits, backup
// integrity, byte-for-byte convergence, latency envelope).
func TestChaosSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 11, 42, 1337, 99991}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(ChaosConfig{Seed: seed}.name(), func(t *testing.T) {
			res := RunChaos(ChaosConfig{Seed: seed})
			if res.Failed() {
				t.Fatal(res.Report())
			}
			if res.Commits == 0 {
				t.Fatalf("no commits landed: %s", res.Report())
			}
			if res.Replayed < 0 {
				t.Fatalf("bad replay count: %s", res.Report())
			}
		})
	}
}

func (c ChaosConfig) name() string {
	return "seed=" + itoa(c.Seed)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestChaosCentralCrashPromotion runs the central-crash schedule
// class over a spread of seeds: the central site itself dies mid-run,
// the warm-standby mirror is promoted, and the run continues —
// survivors re-pointed, ingest resumed, the adaptation ramp and the
// delta-lag scenario exercised against the promoted central.
// Invariant 7 (promotion is lossless and monotone) is machine-checked
// inside the harness at the promotion instant and after drain; this
// test additionally pins the promotion's observable contract: exactly
// one promotion per run, the cluster ends in epoch 1, commits land
// under the new central (the forced pre-crash commit plus continued
// ingest means every seed demonstrates zero committed-event loss, not
// just one), and the audit log records the handover.
func TestChaosCentralCrashPromotion(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 11, 42, 1337, 99991}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("central-seed="+itoa(seed), func(t *testing.T) {
			res := RunChaos(ChaosConfig{Seed: seed, CentralCrash: true})
			if res.Failed() {
				t.Fatal(res.Report())
			}
			if !res.Schedule.CrashCentral {
				t.Fatalf("schedule is not central-crash class: %s", res.Schedule)
			}
			if res.Promotions != 1 {
				t.Fatalf("promotions = %d, want 1: %s", res.Promotions, res.Report())
			}
			if res.CentralEpoch != 1 {
				t.Fatalf("central epoch = %d, want 1: %s", res.CentralEpoch, res.Report())
			}
			if res.Commits == 0 {
				t.Fatalf("no commits landed under the promoted central: %s", res.Report())
			}
			var promo *obs.AuditEntry
			for i := range res.Audit {
				if res.Audit[i].Action == "promotion" {
					if promo != nil {
						t.Fatalf("audit records more than one promotion: %s", res.Report())
					}
					promo = &res.Audit[i]
				}
			}
			if promo == nil {
				t.Fatalf("audit log has no promotion entry: %s", res.Report())
			}
			if promo.OldCentral != "central" || promo.NewCentral == "" || promo.Epoch != 1 {
				t.Fatalf("promotion audit entry malformed: %+v", *promo)
			}
		})
	}
}

// TestChaosCentralCrashScheduleClass spot-checks the central-crash
// schedule generator: the class is marked, the crash position stays in
// the configured band, the old central never returns (no down window
// to wait out), and the slow-mirror pick never lands on mirror 0 —
// the deterministic promotion candidate.
func TestChaosCentralCrashScheduleClass(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		sched := faultinject.NewCentralCrashSchedule(seed, 3)
		if !sched.CrashCentral {
			t.Fatalf("seed %d: schedule not marked central-crash", seed)
		}
		if sched.CrashMirror != -1 {
			t.Fatalf("seed %d: central-crash schedule also crashes mirror %d", seed, sched.CrashMirror)
		}
		if sched.DownFrac != 0 {
			t.Fatalf("seed %d: central-crash schedule has a down window %v", seed, sched.DownFrac)
		}
		if sched.CrashAfterFrac < 0.25 || sched.CrashAfterFrac > 0.65 {
			t.Fatalf("seed %d: crash position %v outside [0.25, 0.65]", seed, sched.CrashAfterFrac)
		}
		if sched.SlowMirror == 0 {
			t.Fatalf("seed %d: slow mirror is the promotion candidate", seed)
		}
	}
}

// TestChaosDeterministicReplay is the repro contract: the same seed
// produces the same fault schedule, the same verdict, and the same
// final central state digest, so a failing seed from CI replays
// exactly via scripts/chaos_repro.sh.
func TestChaosDeterministicReplay(t *testing.T) {
	const seed = 4242
	a := RunChaos(ChaosConfig{Seed: seed})
	b := RunChaos(ChaosConfig{Seed: seed})
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("schedule not deterministic:\n  %s\n  %s", a.Schedule, b.Schedule)
	}
	if a.Failed() != b.Failed() {
		t.Fatalf("verdict not deterministic:\n  %s\n  %s", a.Report(), b.Report())
	}
	if a.StateDigest != b.StateDigest {
		t.Fatalf("final state digest not deterministic: %016x vs %016x",
			a.StateDigest, b.StateDigest)
	}
	if a.Failed() {
		t.Fatal(a.Report())
	}

	// Same contract for the central-crash class: the crash position,
	// the promotion, and everything the promoted central ingests are
	// all seed-determined, so verdict and digest replay exactly — the
	// crash-position quiesce in promoteCentral exists precisely to keep
	// this true.
	ca := RunChaos(ChaosConfig{Seed: seed, CentralCrash: true})
	cb := RunChaos(ChaosConfig{Seed: seed, CentralCrash: true})
	if ca.Schedule.String() != cb.Schedule.String() {
		t.Fatalf("central-crash schedule not deterministic:\n  %s\n  %s", ca.Schedule, cb.Schedule)
	}
	if ca.Failed() != cb.Failed() {
		t.Fatalf("central-crash verdict not deterministic:\n  %s\n  %s", ca.Report(), cb.Report())
	}
	if ca.StateDigest != cb.StateDigest {
		t.Fatalf("central-crash state digest not deterministic: %016x vs %016x",
			ca.StateDigest, cb.StateDigest)
	}
	if ca.Failed() {
		t.Fatal(ca.Report())
	}
	if ca.Promotions != 1 || cb.Promotions != 1 {
		t.Fatalf("central-crash replay promotions %d/%d, want 1/1", ca.Promotions, cb.Promotions)
	}
}

// TestChaosAdaptationScenario pins the adaptation leg of the chaos
// run: the overload ramp engages the degraded regime, the calm tail's
// per-site revert rule brings the cluster back to baseline (so the
// run ends with the controller on regime 1), and the convergence
// invariant holds with the dup/reorder-heavy control links having
// produced at least one watermark rejection somewhere in the seed
// range — proving the stale-directive path is actually exercised, not
// just tolerated.
func TestChaosAdaptationScenario(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 11}
	if testing.Short() {
		seeds = seeds[:2]
	}
	var stale uint64
	for _, seed := range seeds {
		res := RunChaos(ChaosConfig{Seed: seed})
		if res.Failed() {
			t.Fatal(res.Report())
		}
		if res.Engages == 0 {
			t.Fatalf("seed %d: overload ramp never engaged: %s", seed, res.Report())
		}
		if res.Reverts == 0 {
			t.Fatalf("seed %d: calm tail never reverted: %s", seed, res.Report())
		}
		stale += res.StaleDirectives
	}
	if stale == 0 {
		t.Errorf("no seed produced a watermark-rejected directive; dup/reorder faults not reaching the applier")
	}
}

// TestChaosScheduleCoversFaultClasses spot-checks that schedules over
// a seed range actually exercise every probabilistic fault class and
// pick distinct crash/slow victims — the suite is only as good as the
// schedules it draws.
func TestChaosScheduleCoversFaultClasses(t *testing.T) {
	victims := map[int]bool{}
	slow := map[int]bool{}
	var anyDrop, anyDup, anyReorder, anyCorrupt bool
	for seed := int64(0); seed < 64; seed++ {
		sched := faultinject.NewSchedule(seed, 3)
		victims[sched.CrashMirror] = true
		if sched.SlowMirror >= 0 {
			slow[sched.SlowMirror] = true
		}
		if sched.CtrlFaults.Drop > 0 {
			anyDrop = true
		}
		if sched.CtrlFaults.Duplicate > 0 {
			anyDup = true
		}
		if sched.CtrlFaults.Reorder > 0 {
			anyReorder = true
		}
		if sched.CtrlFaults.Corrupt > 0 {
			anyCorrupt = true
		}
	}
	if len(victims) < 3 {
		t.Errorf("crash victims not spread across mirrors: %v", victims)
	}
	if len(slow) == 0 {
		t.Error("no schedule ever picked a slow mirror")
	}
	if !anyDrop || !anyDup || !anyReorder || !anyCorrupt {
		t.Errorf("fault classes not covered: drop=%v dup=%v reorder=%v corrupt=%v",
			anyDrop, anyDup, anyReorder, anyCorrupt)
	}
}
