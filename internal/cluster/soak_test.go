package cluster

import (
	"runtime"
	"testing"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/workload"
)

// TestNoGoroutineLeaks builds and tears down clusters over every
// transport and verifies the goroutine count returns to baseline —
// sites, subscriptions, servers, and links must all shut down.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, tr := range []Transport{TransportDirect, TransportChannels, TransportTCP} {
		for i := 0; i < 3; i++ {
			cl, err := New(Config{Mirrors: 2, Transport: tr, Model: lightModel})
			if err != nil {
				t.Fatal(err)
			}
			events := BuildEvents(Options{Flights: 3, UpdatesPerFlight: 10, Seed: int64(i)})
			if err := cl.Feed(events); err != nil {
				t.Fatal(err)
			}
			cl.DrainAll()
			cl.Close()
		}
	}
	// Allow stragglers (TCP teardown, test runtime helpers) to exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — leak", baseline, runtime.NumGoroutine())
}

// TestSoakMixedLoad runs a sustained mixed workload — paced events,
// constant requests, adaptation, checkpointing — and verifies the
// system stays live and consistent throughout. Skipped with -short.
func TestSoakMixedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cl, err := New(Config{
		Mirrors: 2,
		Model:   lightModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Central.InstallSelective(10)
	cl.Central.SetParams(true, 10, 25)

	stop := make(chan struct{})
	reqDone := make(chan workload.Result, 1)
	go func() {
		reqDone <- workload.Run(workload.Config{
			Pattern: workload.Bursty{Base: 500, Burst: 5000, Period: 400 * time.Millisecond, BurstLen: 100 * time.Millisecond},
			Targets: cl.AllTargets(),
			Stop:    stop,
		})
	}()

	events := BuildEvents(Options{
		Flights: 20, UpdatesPerFlight: 250, EventSize: 512,
		WithDelta: true, Passengers: 10, Seed: 42,
	})
	if err := cl.FeedPaced(events, 3000, nil); err != nil {
		t.Fatal(err)
	}
	cl.DrainAll()
	close(stop)
	res := <-reqDone

	st := cl.Central.Stats()
	if st.Received != uint64(len(events)) {
		t.Fatalf("received %d of %d", st.Received, len(events))
	}
	if st.ChkptCommits == 0 {
		t.Fatal("no checkpoint commits during soak")
	}
	if res.Completed == 0 {
		t.Fatal("no requests served during soak")
	}
	// Replica states converge on every flight's terminal status.
	for f := 1; f <= 20; f++ {
		cf, ok := cl.Central.Main().Engine().State().Get(event.FlightID(f))
		if !ok {
			t.Fatalf("central missing flight %d", f)
		}
		for i, m := range cl.Mirrors {
			mf, ok := m.Main().Engine().State().Get(event.FlightID(f))
			if !ok {
				t.Fatalf("mirror %d missing flight %d", i, f)
			}
			if mf.Status != cf.Status {
				t.Fatalf("mirror %d flight %d status %s, central %s", i, f, mf.Status, cf.Status)
			}
		}
	}
}
