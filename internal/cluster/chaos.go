// Chaos harness: runs a Figure-5-style workload through a manually
// wired cluster whose links pass through a seeded fault plane, executes
// the seed's fault schedule (mirror crash-restart with volatile-state
// loss, link partitions, probabilistic control-link faults, a slow
// mirror), and machine-checks the mirroring framework's safety
// invariants the whole way:
//
//  1. committed checkpoint cuts are monotone — a later commit subsumes
//     an earlier one, never regresses it (per backup-queue incarnation);
//  2. backup queues never retain anything at or below their committed
//     cut, never reorder, and the central cut never runs ahead of the
//     central EDE's progress;
//  3. a crash-restarted mirror recovered through the snapshot +
//     backup-replay path converges to the central EDE state
//     byte-for-byte once the stream drains;
//  4. central update-delay percentiles stay inside a latency envelope
//     even while a mirror is down — a dead site degrades alone;
//  5. adaptation converges: regime directives piggybacked on the
//     faulty control links install in strictly increasing round order
//     at every mirror incarnation (a stale or duplicate delivery never
//     installs), and after drain every site's installed regime ID
//     equals the central controller's;
//  6. incremental rejoin is sound: a healthy mirror that falls behind
//     (partitioned until excluded, then overtaken by fresh traffic and
//     commits) and rejoins presenting its committed cut is served the
//     per-cut state delta — not a full snapshot — and still converges
//     to the central EDE state byte-for-byte (checked by invariant 3
//     over the same drained cluster);
//  7. central failover is lossless and monotone: when the schedule
//     class kills the central site itself (ChaosConfig.CentralCrash),
//     the warm-standby mirror detects the missed rounds and is
//     promoted, the adopted state covers the last committed checkpoint
//     cut (nothing durable is lost), the drained cluster's final
//     committed cut covers the pre-crash cut, and round/cut numbering
//     never regresses across the promotion epoch (checkpoint rounds
//     restart above checkpoint.EpochBase; the surviving appliers'
//     install watermarks carry over, so a directive stamped by the old
//     central can never install after one stamped by the new).
//
// The adaptation scenario runs in every chaos run: the workload's
// checkpoint cadence pushes the central backup queue over the primary
// threshold (a Figure-8-style overload ramp), a fixed-length calm tail
// lets the per-site revert rule bring the cluster back to baseline,
// and the regimes themselves are state-neutral so transitions never
// perturb the mirrored stream — what the scenario stresses is the
// directive control plane under dup/drop/reorder/corrupt faults,
// crash-restart, and recovery.
//
// Everything observable about a run derives from the seed: the
// workload, the fault schedule, and each link's per-submission fault
// decisions. Goroutine interleaving still varies between runs, so the
// invariants are stated to hold under every interleaving; a violation
// report prints the seed and schedule for one-command replay
// (scripts/chaos_repro.sh).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/core"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/faultinject"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/vclock"
)

// chaosModel is a light cost model for chaos runs: heavy enough to
// exercise the virtual CPUs, light enough for 32 seeds under -race.
// (The cluster tests' lightModel is test-only; cmd/chaosrunner links
// this file, so the chaos harness carries its own.)
var chaosModel = costmodel.Model{
	EventBase:      2 * time.Microsecond,
	SerializeBase:  500 * time.Nanosecond,
	SubmitBase:     200 * time.Nanosecond,
	RequestBase:    5 * time.Microsecond,
	CheckpointBase: time.Microsecond,
	ControlCost:    200 * time.Nanosecond,
}

// Adaptation scenario parameters. The backup-queue thresholds sit
// below the checkpoint cadence (CheckpointEvery events accumulate
// between rounds), so the first round of every run observes an
// over-primary central sample and engages deterministically; the calm
// floor (primary − secondary) is 8, low enough that the trickle-fed
// calm tail reads calm at every site once a commit has trimmed the
// backlog. The tail length leaves a wide margin over the revert
// debounce even when control faults abort several commits in a row.
const (
	chaosAdaptPrimary   = 48
	chaosAdaptSecondary = 40
	chaosCalmTail       = 24
)

// The chaos regimes are deliberately state-neutral: both leave
// coalescing and overwriting off and keep checkpointing
// driver-sequenced, so a regime transition never perturbs the
// mirrored stream and the seed-exact StateDigest replay check stays
// valid. What distinguishes them is the ID the directive carries.
var (
	chaosBaselineRegime = adapt.Regime{ID: 1, Name: "chaos-baseline", MaxCoalesce: 1, CheckpointFreq: 1 << 30}
	chaosDegradedRegime = adapt.Regime{ID: 2, Name: "chaos-degraded", MaxCoalesce: 1, CheckpointFreq: 1 << 30}
)

// ChaosConfig parameterizes one chaos run. The zero value of every
// field selects a sensible default, so ChaosConfig{Seed: n} is a
// complete configuration.
type ChaosConfig struct {
	// Seed drives the workload, the fault schedule, and every link's
	// fault decision stream.
	Seed int64
	// Mirrors is the mirror-site count (default 3).
	Mirrors int
	// Flights/UpdatesPerFlight/EventSize shape the FAA position stream
	// (defaults 24/40/96 — ~960 events).
	Flights          int
	UpdatesPerFlight int
	EventSize        int
	// CheckpointEvery runs a checkpoint round after every N fed events
	// (default 64). Rounds are driver-sequenced so the schedule is
	// expressed in stream positions, not wall time.
	CheckpointEvery int
	// MissedRounds is the failure detector's miss budget (default 3).
	MissedRounds int
	// EnvelopeP95 bounds the central update-delay 95th percentile
	// (invariant 4; default 250ms).
	EnvelopeP95 time.Duration
	// CentralCrash selects the central-crash schedule class: instead
	// of a mirror crash-restart, the central site itself dies at the
	// schedule's crash position and the warm-standby mirror is
	// promoted in its place (invariant 7). Every mirror runs
	// standby-armed in this class.
	CentralCrash bool
}

func (c *ChaosConfig) defaults() {
	if c.Mirrors <= 0 {
		c.Mirrors = 3
	}
	if c.Flights <= 0 {
		c.Flights = 24
	}
	if c.UpdatesPerFlight <= 0 {
		c.UpdatesPerFlight = 40
	}
	if c.EventSize <= 0 {
		c.EventSize = 96
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.MissedRounds <= 0 {
		c.MissedRounds = 3
	}
	if c.EnvelopeP95 <= 0 {
		c.EnvelopeP95 = 250 * time.Millisecond
	}
}

// ChaosResult reports one chaos run.
type ChaosResult struct {
	// Schedule is the fault plan the run executed.
	Schedule faultinject.Schedule
	// Violations are the invariant failures observed (empty = pass).
	Violations []string
	// Replayed is the number of backup events replayed to the
	// crash-restarted mirror at rejoin.
	Replayed int
	// DeltaReplayed is the number of backup events replayed to the
	// lagging mirror at its incremental (delta-mode) rejoin.
	DeltaReplayed int
	// RejoinSnapshots/RejoinDeltas are the central's final rejoin
	// transfer counters by mode: the crash-restarted victim (no cut)
	// must take the snapshot path, the lagging mirror (committed cut
	// within the journal horizon) the delta path.
	RejoinSnapshots, RejoinDeltas uint64
	// Rounds/Commits are the checkpoint protocol's final counters.
	Rounds, Commits uint64
	// P95 is the central update-delay 95th percentile.
	P95 time.Duration
	// StateDigest is an FNV-64a hash of the final central EDE snapshot
	// (seed-deterministic: the replay test compares it across runs).
	StateDigest uint64
	// Faults counts fault-plane injections across all links.
	Faults uint64
	// Engages/Reverts count the adaptation controller's transitions
	// (the overload ramp guarantees at least one engage per run).
	Engages, Reverts uint64
	// StaleDirectives counts regime deliveries the mirrors' appliers
	// rejected at the round watermark (duplicated or reordered
	// control-link deliveries, summed across incarnations).
	StaleDirectives uint64
	// InvalidDirectives counts regime deliveries rejected by the
	// directive checksum (corrupted control-link deliveries, summed
	// across incarnations).
	InvalidDirectives uint64
	// Promotions/PromotionReplayed report the central-crash class:
	// warm-standby promotions performed (1 in that class, 0 otherwise)
	// and the backup-queue events the promotion replayed from the last
	// committed cut.
	Promotions        uint64
	PromotionReplayed uint64
	// CentralEpoch is the final central's promotion epoch (0 = the
	// original central survived the run).
	CentralEpoch uint64
	// Audit is the run's decision log: engage/revert transitions and,
	// in the central-crash class, the promotion entry recording the
	// old and new central identities.
	Audit []obs.AuditEntry
}

// Failed reports whether any invariant was violated.
func (r ChaosResult) Failed() bool { return len(r.Violations) > 0 }

// Report renders the run for humans: schedule, verdict, and the repro
// seed on failure.
func (r ChaosResult) Report() string {
	s := fmt.Sprintf("%s replayed=%d delta-replayed=%d rejoins=%d/%d rounds=%d commits=%d p95=%s faults=%d adapt=%d/%d stale=%d invalid=%d digest=%016x",
		r.Schedule, r.Replayed, r.DeltaReplayed, r.RejoinSnapshots, r.RejoinDeltas,
		r.Rounds, r.Commits, r.P95, r.Faults,
		r.Engages, r.Reverts, r.StaleDirectives, r.InvalidDirectives, r.StateDigest)
	if r.Schedule.CrashCentral {
		s += fmt.Sprintf(" promo=%d replayed=%d epoch=%d", r.Promotions, r.PromotionReplayed, r.CentralEpoch)
	}
	if !r.Failed() {
		return "PASS " + s
	}
	s = "FAIL " + s
	for _, v := range r.Violations {
		s += "\n  violation: " + v
	}
	s += fmt.Sprintf("\n  replay: scripts/chaos_repro.sh %d", r.Schedule.Seed)
	return s
}

// chaosRig is the manually wired cluster under fault injection. It
// mirrors the direct transport's wiring, but each mirror site lives in
// an atomic slot so a crash-restart can swap in a fresh site (volatile
// queues lost) while the central's links keep pointing at "mirror i".
type chaosRig struct {
	cfg   ChaosConfig
	sched faultinject.Schedule
	plane *faultinject.Plane
	reg   *obs.Registry

	// central/member live in atomic slots because the central-crash
	// class replaces them mid-run (warm-standby promotion) while the
	// control uplinks' closures keep routing "to the central" — the
	// same late binding the mirror slots already use.
	central atomic.Pointer[core.Central]
	member  atomic.Pointer[core.Membership]
	slots   []atomic.Pointer[core.MirrorSite]
	cpus    []*costmodel.CPU // [0] central, [1..] mirrors
	hist    *metrics.Histogram
	audit   *obs.AuditLog

	data     []*faultinject.Link // central → mirror data (partition only)
	ctrlDown []*faultinject.Link // central → mirror control (probabilistic faults)
	ctrlUp   []*faultinject.Link // mirror → central control (probabilistic faults)

	violations []string
	// prevCommitted tracks the last observed cut per backup-queue
	// incarnation: [0] central, [1..] mirrors (reset on crash-restart
	// and on central promotion).
	prevCommitted []vclock.VC

	// Central-crash bookkeeping (driver goroutine only): the committed
	// cut the promotion is held to (invariant 7), and the fed-event
	// count at the promotion instant — the new central's Mirrored
	// counter starts at zero, so waitMirrored measures against it.
	preCrashCut vclock.VC
	fedBase     uint64

	// controller is the central adaptation decision-maker; appliers
	// hold each mirror slot's current directive applier (swapped with
	// the site on crash-restart — the watermark is volatile state).
	controller *adapt.Controller
	appliers   []atomic.Pointer[adapt.Applier]

	// adaptMu guards the install watermarks and violations recorded
	// from applier install callbacks, plus the counters retired from
	// dead incarnations.
	adaptMu        sync.Mutex
	lastInstall    []uint64 // per-slot install-round high-water mark
	adaptViol      []string
	staleRetired   uint64
	invalidRetired uint64
}

func (r *chaosRig) violatef(format string, args ...interface{}) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// cen and mem load the current central/membership incarnation.
func (r *chaosRig) cen() *core.Central    { return r.central.Load() }
func (r *chaosRig) mem() *core.Membership { return r.member.Load() }

// newMirror builds one mirror-site incarnation. The control uplink is
// the plane's per-mirror Link, shared across incarnations so the fault
// decision stream continues over a restart, exactly like a network
// path that outlives the host behind it.
func (r *chaosRig) newMirror(i int) *core.MirrorSite {
	// Each incarnation gets a fresh applier: a crash loses the
	// directive watermark with the rest of volatile state, and the
	// recovery transfer re-delivers the current regime.
	ap := adapt.NewApplier(nil)
	m := core.NewMirrorSite(core.MirrorSiteConfig{
		Model:  chaosModel,
		CPU:    r.cpus[i+1],
		SiteID: uint8(i),
		CtrlUp: r.ctrlUp[i],
		// Central-crash class: every mirror runs standby-armed (journal
		// + sealed cuts), so whichever is the lowest-indexed live site
		// at the crash can be promoted.
		Standby: r.cfg.CentralCrash,
		OnPiggyback: func(round uint64, b []byte) {
			ap.Apply(round, b)
		},
	})
	install := adapt.InstallMirrorRegime(m)
	ap.SetInstall(func(round uint64, reg adapt.Regime) {
		install(round, reg)
		r.noteInstall(i, round)
	})
	r.appliers[i].Store(ap)
	return m
}

// noteInstall machine-checks directive versioning end to end: the
// rounds a mirror incarnation actually installs must be strictly
// increasing. A stale or duplicate delivery that makes it past the
// applier's watermark is an invariant violation, not just a counter.
func (r *chaosRig) noteInstall(i int, round uint64) {
	r.adaptMu.Lock()
	defer r.adaptMu.Unlock()
	if round <= r.lastInstall[i] {
		r.adaptViol = append(r.adaptViol, fmt.Sprintf(
			"adapt: mirror %d installed directive round %d at or below watermark %d",
			i, round, r.lastInstall[i]))
		return
	}
	r.lastInstall[i] = round
}

// retireApplier folds a dead incarnation's directive counters into
// the run totals and resets its install watermark: the replacement
// incarnation restarts the monotonicity baseline (its regime arrives
// again through the recovery transfer).
func (r *chaosRig) retireApplier(i int) {
	ap := r.appliers[i].Load()
	if ap == nil {
		return
	}
	_, stale, invalid := ap.Stats()
	r.adaptMu.Lock()
	r.staleRetired += stale
	r.invalidRetired += invalid
	r.lastInstall[i] = 0
	r.adaptMu.Unlock()
}

// directiveStats sums the applier counters across every incarnation,
// dead and live.
func (r *chaosRig) directiveStats() (stale, invalid uint64) {
	r.adaptMu.Lock()
	stale, invalid = r.staleRetired, r.invalidRetired
	r.adaptMu.Unlock()
	for i := range r.appliers {
		if ap := r.appliers[i].Load(); ap != nil {
			_, s, inv := ap.Stats()
			stale += s
			invalid += inv
		}
	}
	return stale, invalid
}

// slowCharge books the slow-mirror skew: the victim's CPU pays an
// extra (factor-1)× cost per handled event, the paper's "slow mirror
// site" disturbance without touching wall-clock sleeps.
func (r *chaosRig) slowCharge(i int, base time.Duration, n int) {
	if i != r.sched.SlowMirror {
		return
	}
	r.cpus[i+1].ChargeAsync(time.Duration(r.sched.SlowFactor-1) * base * time.Duration(n))
}

func newChaosRig(cfg ChaosConfig) *chaosRig {
	sched := faultinject.NewSchedule(cfg.Seed, cfg.Mirrors)
	if cfg.CentralCrash {
		sched = faultinject.NewCentralCrashSchedule(cfg.Seed, cfg.Mirrors)
	}
	r := &chaosRig{
		cfg:           cfg,
		sched:         sched,
		reg:           obs.NewRegistry(),
		slots:         make([]atomic.Pointer[core.MirrorSite], cfg.Mirrors),
		hist:          metrics.NewHistogram(0),
		prevCommitted: make([]vclock.VC, cfg.Mirrors+1),
		appliers:      make([]atomic.Pointer[adapt.Applier], cfg.Mirrors),
		lastInstall:   make([]uint64, cfg.Mirrors),
	}
	// The controller is fully constructed before the central exists:
	// its ObserveSite closure runs on control-handling paths. The audit
	// log records its transitions and, in the central-crash class, the
	// promotion entry.
	r.audit = obs.NewAuditLog(0)
	r.controller = adapt.NewController(chaosBaselineRegime, chaosDegradedRegime, nil)
	r.controller.SetAudit(r.audit)
	r.controller.SetMonitorValues(adapt.VarBackup, chaosAdaptPrimary, chaosAdaptSecondary)
	r.plane = faultinject.NewPlane(cfg.Seed, r.reg)
	for i := 0; i <= cfg.Mirrors; i++ {
		r.cpus = append(r.cpus, &costmodel.CPU{})
	}

	links := make([]core.MirrorLink, cfg.Mirrors)
	for i := 0; i < cfg.Mirrors; i++ {
		i := i
		// Data links carry the mirrored stream the framework assumes is
		// delivered in order, exactly once, to live mirrors — so they
		// only ever fail whole (partition/crash), never probabilistically.
		r.data = append(r.data, r.plane.Wrap(fmt.Sprintf("data.%d", i), batchSenderFunc{
			one: func(e *event.Event) error {
				r.slowCharge(i, chaosModel.EventBase, 1)
				r.slots[i].Load().HandleData(e)
				return nil
			},
			many: func(es []*event.Event) error {
				r.slowCharge(i, chaosModel.EventBase, len(es))
				r.slots[i].Load().HandleDataBatch(es)
				return nil
			},
			owned: func(es []*event.Event, ref event.Ref) error {
				r.slowCharge(i, chaosModel.EventBase, len(es))
				return r.slots[i].Load().HandleOwnedBatch(es, ref)
			},
		}, faultinject.Faults{}))
		// Control links tolerate loss, duplication, reordering, and
		// payload damage by protocol design — the schedule's
		// probabilistic faults apply here, in both directions.
		r.ctrlDown = append(r.ctrlDown, r.plane.Wrap(fmt.Sprintf("ctrl.down.%d", i),
			senderFunc(func(e *event.Event) error {
				r.slowCharge(i, chaosModel.ControlCost, 1)
				r.slots[i].Load().HandleControl(e)
				return nil
			}), sched.CtrlFaults))
		r.ctrlUp = append(r.ctrlUp, r.plane.Wrap(fmt.Sprintf("ctrl.up.%d", i),
			senderFunc(func(e *event.Event) error {
				r.cen().HandleControl(e)
				return nil
			}), sched.CtrlFaults))
		links[i] = core.MirrorLink{Data: r.data[i], Ctrl: r.ctrlDown[i]}
	}

	r.central.Store(core.NewCentral(core.CentralConfig{
		Streams: 1,
		Model:   chaosModel,
		CPU:     r.cpus[0],
		Main:    core.MainConfig{DelayHist: r.hist},
		Mirrors: links,
		OnMirrorSample: func(site int, s core.Sample) {
			r.controller.ObserveSite(site, s)
		},
	}))
	// Manual rounds only: the driver sequences checkpoints against
	// stream positions so the schedule is machine-speed independent.
	r.cen().SetParams(false, 1, 1<<30)
	// Decision point: each round's CHKPT observes the central's own
	// queues and piggybacks whatever regime is current, stamped with
	// the round.
	r.cen().SetPiggyback(func() []byte {
		r.controller.Observe(r.cen().Sample())
		return adapt.EncodeRegime(r.controller.Current())
	})
	for i := 0; i < cfg.Mirrors; i++ {
		r.slots[i].Store(r.newMirror(i))
	}
	r.member.Store(core.NewMembership(r.cen(), core.MembershipConfig{
		MissedRounds: cfg.MissedRounds,
		// An excluded site's last sample row must not pin the regime:
		// the per-site revert rule considers live sites only.
		OnFailure: func(site int) { r.controller.EvictSite(site) },
	}))
	return r
}

// check samples the continuously checkable invariants (1 and the
// structural half of 2). It runs from the driver goroutine only.
func (r *chaosRig) check(stage string) {
	com := r.cen().Backup().Committed()
	if prev := r.prevCommitted[0]; prev != nil && !prev.LessEq(com) {
		r.violatef("%s: central committed cut regressed: %v after %v", stage, com, prev)
	}
	r.prevCommitted[0] = com
	if lp := r.cen().Main().LastProcessed(); com != nil && !com.LessEq(lp) {
		r.violatef("%s: central committed %v beyond its own progress %v", stage, com, lp)
	}
	if err := r.cen().Backup().CheckInvariants(); err != nil {
		r.violatef("%s: central backup: %v", stage, err)
	}
	for i := range r.slots {
		m := r.slots[i].Load()
		mcom := m.Backup().Committed()
		if prev := r.prevCommitted[i+1]; prev != nil && !prev.LessEq(mcom) {
			r.violatef("%s: mirror %d committed cut regressed: %v after %v", stage, i, mcom, prev)
		}
		r.prevCommitted[i+1] = mcom
		if err := m.Backup().CheckInvariants(); err != nil {
			r.violatef("%s: mirror %d backup: %v", stage, i, err)
		}
	}
}

// round runs one checkpoint round and samples the invariants. The
// control loop — broadcast, replies, commit — is synchronous through
// the direct links, so the sample right after sees its effect.
func (r *chaosRig) round(stage string) {
	r.cen().Checkpoint()
	r.check(stage)
}

// flushCtrl releases reorder holdbacks on every control link so a held
// reply or commit cannot outlive the run.
func (r *chaosRig) flushCtrl() {
	for i := range r.ctrlDown {
		_ = r.ctrlDown[i].Flush()
		_ = r.ctrlUp[i].Flush()
	}
}

// RunChaos executes one seeded chaos run and reports the verdict.
func RunChaos(cfg ChaosConfig) ChaosResult {
	cfg.defaults()
	r := newChaosRig(cfg)
	sched := r.sched
	res := ChaosResult{Schedule: sched}
	defer func() {
		for i := range r.slots {
			r.slots[i].Load().Close()
		}
		r.cen().Close()
	}()

	events := BuildEvents(Options{
		Flights:          cfg.Flights,
		UpdatesPerFlight: cfg.UpdatesPerFlight,
		EventSize:        cfg.EventSize,
		Seed:             cfg.Seed,
	})
	n := len(events)
	crashAt := int(sched.CrashAfterFrac * float64(n))
	restartAt := crashAt + int(sched.DownFrac*float64(n))
	victim := sched.CrashMirror

	fed := 0
	for i, e := range events {
		if sched.CrashCentral {
			if i == crashAt {
				// The central site itself dies; the warm-standby mirror
				// is promoted in its place (invariant 7).
				r.promoteCentral(uint64(i))
			}
		} else {
			// Independent checks: a zero down-window schedule makes
			// restartAt == crashAt and both must still run.
			if i == crashAt {
				// The mirror dies: every link to and from it partitions,
				// and whatever its volatile queues held is gone with it.
				r.data[victim].SetDown(true)
				r.ctrlDown[victim].SetDown(true)
				r.ctrlUp[victim].SetDown(true)
			}
			if i == restartAt {
				r.waitMirrored(uint64(i))
				r.excludeVictim()
				res.Replayed = r.restartAndRejoin()
			}
		}
		if err := r.cen().Ingest(e); err != nil {
			r.violatef("feed: event %d/%d rejected: %v", i, n, err)
			break
		}
		fed++
		if (i+1)%cfg.CheckpointEvery == 0 {
			// Let the pipeline catch up to the feed before the round:
			// a checkpoint against a not-yet-populated backup is a
			// no-op and would starve the failure detector of rounds.
			r.waitMirrored(uint64(fed))
			r.round("round")
		}
	}

	res.DeltaReplayed = r.deltaLagScenario(&fed)
	r.calmTail(fed)
	r.finish(&res)
	stats := r.cen().RejoinStats()
	res.RejoinSnapshots, res.RejoinDeltas = stats.Snapshots, stats.Deltas
	r.adaptMu.Lock()
	r.violations = append(r.violations, r.adaptViol...)
	r.adaptMu.Unlock()
	res.Violations = r.violations
	res.Rounds, res.Commits = r.cen().Stats().ChkptRounds, r.cen().Stats().ChkptCommits
	res.P95 = r.hist.Percentile(95)
	res.Faults = r.faultCount()
	res.Engages, res.Reverts = r.controller.Transitions()
	res.StaleDirectives, res.InvalidDirectives = r.directiveStats()
	res.Promotions, res.PromotionReplayed = r.cen().PromotionStats()
	res.CentralEpoch = r.cen().Epoch()
	res.Audit = r.audit.Entries()
	return res
}

// deltaLagScenario exercises invariant 6: a healthy mirror (never the
// crash victim — its state must stay intact) is partitioned until the
// failure detector excludes it, the stream advances past it with fresh
// events and committed cuts, and it then rejoins presenting the
// checkpoint cut it had committed before the partition. The cut sits
// within the central mutation journal's horizon, so the recovery
// transfer must take the delta path; byte-exact convergence of the
// delta-rejoined replica is then checked by invariant 3 over the
// drained cluster. Returns the backup events replayed at the rejoin.
func (r *chaosRig) deltaLagScenario(fed *int) int {
	lag := 0
	if lag == r.sched.CrashMirror {
		lag = 1
	}
	if lag >= len(r.slots) {
		return 0 // no healthy peer to lag in a 1-mirror cluster
	}
	// Control faults may have spuriously excluded the chosen site
	// already; an excluded site receives no COMMIT broadcasts, so
	// re-admit everyone before waiting for its cut to land.
	r.rejoinAll("delta-prep")
	m := r.slots[lag].Load()
	// The site must hold a committed cut to present; control faults can
	// have eaten every COMMIT so far, so drive rounds until one lands.
	for attempt := 0; attempt < 200 && m.Backup().Committed() == nil; attempt++ {
		r.round("delta-cut")
		r.flushCtrl()
	}
	if m.Backup().Committed() == nil {
		r.violatef("delta: mirror %d never committed a cut to rejoin from", lag)
		return 0
	}

	// Partition the site and drive rounds until the detector excludes
	// it, unblocking commits for the rest of the cluster.
	r.data[lag].SetDown(true)
	r.ctrlDown[lag].SetDown(true)
	r.ctrlUp[lag].SetDown(true)
	lagOut := func() bool {
		for _, i := range r.mem().Failed() {
			if i == lag {
				return true
			}
		}
		return false
	}
	for attempt := 0; !lagOut() && attempt < r.cfg.MissedRounds+8; attempt++ {
		r.round("delta-exclusion")
	}
	if !lagOut() {
		r.violatef("delta: failure detector reported %v, missing lagging mirror %d",
			r.mem().Failed(), lag)
	}

	// Advance the world past the lagging site: fresh mutations and
	// fresh committed cuts, all journaled against the cut it holds.
	extra := BuildEvents(Options{
		Flights:          r.cfg.Flights,
		UpdatesPerFlight: 4,
		EventSize:        48,
		Seed:             r.cfg.Seed + 202,
	})
	for i, e := range extra {
		if err := r.cen().Ingest(e); err != nil {
			r.violatef("delta: event %d/%d rejected: %v", i, len(extra), err)
			return 0
		}
		*fed++
		if (i+1)%r.cfg.CheckpointEvery == 0 {
			r.waitMirrored(uint64(*fed))
			r.round("delta-advance")
		}
	}
	r.waitMirrored(uint64(*fed))
	r.round("delta-advance")

	// Heal the links and rejoin incrementally from the committed cut.
	r.data[lag].SetDown(false)
	r.ctrlDown[lag].SetDown(false)
	r.ctrlUp[lag].SetDown(false)
	before := r.cen().RejoinStats()
	replayed, err := r.mem().RejoinSince(lag, m.Backup().Committed())
	if err != nil {
		r.violatef("delta: rejoin mirror %d: %v", lag, err)
		return 0
	}
	if after := r.cen().RejoinStats(); after.Deltas != before.Deltas+1 {
		r.violatef("delta: rejoin of lagging mirror %d fell back to snapshot mode "+
			"(cut should be within the journal horizon)", lag)
	}
	r.check("delta-rejoin")
	return replayed
}

// calmTail is the downslope of the Figure-8-style load ramp: the
// overload subsides and a fixed trickle of small events keeps
// checkpoint rounds running (a round against an empty backup queue is
// a no-op) while every site reports calm samples, driving the
// controller's per-site revert rule. The tail length is fixed so the
// ingested-event count — and with it the replayed StateDigest — stays
// a pure function of the seed.
func (r *chaosRig) calmTail(fed int) {
	tail := BuildEvents(Options{
		Flights:          chaosCalmTail,
		UpdatesPerFlight: 1,
		EventSize:        32,
		Seed:             r.cfg.Seed + 101,
	})
	for i, e := range tail {
		if err := r.cen().Ingest(e); err != nil {
			r.violatef("calm: event %d/%d rejected: %v", i, len(tail), err)
			return
		}
		fed++
		r.waitMirrored(uint64(fed))
		r.round("calm")
		r.flushCtrl()
	}
	// The ramp itself is deterministic: the first checkpoint round of
	// every run observes CheckpointEvery backed-up events at the
	// central, which is over the primary threshold.
	if eng, _ := r.controller.Transitions(); eng == 0 {
		r.violatef("adapt: overload ramp never engaged the degraded regime")
	}
}

// waitMirrored blocks until the sending task has fanned out (and
// backup-appended) n events, i.e. the async pipeline has caught up to
// the driver's feed position. n is the cumulative fed count; a
// promoted central's counter starts at zero, so the count at the
// promotion instant (fedBase) is subtracted out.
func (r *chaosRig) waitMirrored(n uint64) {
	if n < r.fedBase {
		return
	}
	n -= r.fedBase
	deadline := time.Now().Add(20 * time.Second)
	for r.cen().Stats().Mirrored < n {
		if time.Now().After(deadline) {
			r.violatef("feed: pipeline stuck at %d/%d mirrored events",
				r.cen().Stats().Mirrored, n)
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// excludeVictim drives checkpoint rounds until the failure detector
// removes the silent mirror from the quorum, unblocking commits for
// the healthy sites.
func (r *chaosRig) excludeVictim() {
	// The victim misses one round per attempt; the detector fires after
	// MissedRounds consecutive misses. A couple of extra attempts cover
	// rounds skipped on an empty backup. Checking for the victim
	// specifically matters: control-link faults may have spuriously
	// excluded a healthy mirror already, so a bare "anyone failed?"
	// check could pass without the victim ever leaving the quorum.
	victimOut := func() bool {
		for _, i := range r.mem().Failed() {
			if i == r.sched.CrashMirror {
				return true
			}
		}
		return false
	}
	for attempt := 0; !victimOut() && attempt < r.cfg.MissedRounds+8; attempt++ {
		r.round("exclusion")
	}
	if !victimOut() {
		r.violatef("exclusion: failure detector reported %v, missing victim %d",
			r.mem().Failed(), r.sched.CrashMirror)
	}
}

// rejoinAll re-admits every currently excluded site. Control-link
// faults can spuriously exclude a live mirror (a dropped reply is
// indistinguishable from a dead site — that's the point of a miss
// budget), and the restarted victim can be excluded again before the
// faults quiesce; the end-state invariants are stated over the
// converged cluster, so everyone gets re-admitted first.
func (r *chaosRig) rejoinAll(stage string) {
	for _, i := range r.mem().Failed() {
		if _, err := r.mem().Rejoin(i); err != nil {
			r.violatef("%s: rejoin mirror %d: %v", stage, i, err)
		}
	}
}

// restartAndRejoin replaces the dead site with a fresh one (its
// volatile state is lost — this is a crash-restart, not a resume),
// heals its links, and re-admits it through the recovery transfer.
func (r *chaosRig) restartAndRejoin() int {
	victim := r.sched.CrashMirror
	r.retireApplier(victim)
	old := r.slots[victim].Swap(r.newMirror(victim))
	old.Close()
	// A fresh incarnation starts a fresh backup queue: the monotonicity
	// baseline resets with it.
	r.prevCommitted[victim+1] = nil
	r.data[victim].SetDown(false)
	r.ctrlDown[victim].SetDown(false)
	r.ctrlUp[victim].SetDown(false)
	replayed, err := r.mem().Rejoin(victim)
	if err != nil {
		r.violatef("rejoin: %v", err)
		return 0
	}
	r.rejoinAll("restart")
	r.check("rejoin")
	return replayed
}

// promoteCentral executes the central-crash schedule class: the
// current central dies at its crash position and the warm-standby
// mirror (the lowest-indexed live site) is promoted in its place. The
// sequence mirrors a real deployment's failover path — detect via
// missed rounds, adopt local state, restart the coordinator above the
// old epoch, re-admit the survivors — with two harness-only additions:
// the pipeline is quiesced at the crash position first (so the
// delivered-event set, and with it the replayed StateDigest, stays a
// pure function of the seed), and a checkpoint commit is forced before
// the crash so every seed demonstrates zero committed-event loss
// rather than vacuously passing with a nil pre-crash cut. fed is the
// cumulative fed-event count at the crash instant.
func (r *chaosRig) promoteCentral(fed uint64) {
	old := r.cen()
	r.waitMirrored(fed)
	// Force a committed cut before the crash: control faults may have
	// eaten every COMMIT so far, and invariant 7's lossless check is
	// stated against the last cut committed under the old central.
	for attempt := 0; attempt < 200 && old.Backup().Committed() == nil; attempt++ {
		r.round("pre-crash")
		r.flushCtrl()
	}
	preCut := old.Backup().Committed()
	if preCut == nil {
		r.violatef("pre-crash: no checkpoint cut committed before the central crash")
	}
	r.preCrashCut = preCut
	// Control faults may have spuriously excluded the standby; the
	// promotion picks the lowest-indexed *live* mirror, and the chaos
	// scenarios that follow assume a full quorum, so re-admit everyone
	// while the old central is still alive to serve the transfer.
	r.rejoinAll("pre-crash")

	// Crash. Drain first: the sending task's exit path flushes the
	// outbox rings over still-up links, so draining before partitioning
	// pins the delivered-event set to the feed position (seed-exact);
	// protocol-wise the crash is still abrupt — no handoff round runs.
	old.Drain()
	for i := range r.slots {
		r.data[i].SetDown(true)
		r.ctrlDown[i].SetDown(true)
		r.ctrlUp[i].SetDown(true)
	}
	old.Close()

	// The standby is the lowest-indexed live mirror (Failed() reports
	// ascending indices, so one pass suffices).
	standby := 0
	for _, f := range r.mem().Failed() {
		if f == standby {
			standby++
		}
	}
	if standby >= len(r.slots) {
		r.violatef("promotion: no live mirror left to promote")
		return
	}
	site := r.slots[standby].Load()

	// Failure detection: the standby's monitor sees no new round for
	// its whole budget and declares the central dead. The first tick
	// baselines (the site has observed rounds), the rest miss.
	mon := core.NewStandbyMonitor(site.LastRound, r.cfg.MissedRounds)
	fired := false
	for t := 0; t < r.cfg.MissedRounds+2 && !fired; t++ {
		fired = mon.Tick()
	}
	if !fired {
		r.violatef("promotion: standby monitor never declared the central failed")
		return
	}

	// Adopt: capture the standby's local view and build the new central
	// on it, one epoch past the failed one. The directive pair comes
	// from the standby's applier so PublishDirective re-broadcasts the
	// installed regime idempotently.
	state := site.Promote()
	state.Epoch = old.Epoch() + 1
	if ap := r.appliers[standby].Load(); ap != nil {
		if reg, round, ok := ap.Current(); ok {
			state.Directive = adapt.EncodeRegime(reg)
			state.DirectiveRound = round
		}
	}
	preRound := state.RoundFloor
	links := make([]core.MirrorLink, len(r.slots))
	for i := range r.slots {
		links[i] = core.MirrorLink{Data: r.data[i], Ctrl: r.ctrlDown[i]}
	}
	nc := core.NewCentral(core.CentralConfig{
		Streams: 1,
		Model:   chaosModel,
		CPU:     r.cpus[standby+1],
		Mirrors: links,
		Obs:     r.reg,
		OnMirrorSample: func(site int, s core.Sample) {
			r.controller.ObserveSite(site, s)
		},
		Resume: &state,
	})
	nc.SetParams(false, 1, 1<<30)
	nc.SetPiggyback(func() []byte {
		r.controller.Observe(nc.Sample())
		return adapt.EncodeRegime(r.controller.Current())
	})
	r.central.Store(nc)
	// The new backup queue is a fresh incarnation seeded at the
	// standby's cut; the new Mirrored counter starts at zero.
	r.prevCommitted[0] = nil
	r.fedBase = fed

	// Invariant 7, promotion-instant half: the adopted state covers the
	// last committed cut (nothing durable lost) and round numbering
	// restarts strictly above everything the old epoch stamped.
	if preCut != nil && !preCut.LessEq(nc.Main().LastProcessed()) {
		r.violatef("promotion: adopted state %v below last committed cut %v",
			nc.Main().LastProcessed(), preCut)
	}
	if nc.Epoch() != old.Epoch()+1 {
		r.violatef("promotion: epoch %d, want %d", nc.Epoch(), old.Epoch()+1)
	}
	if checkpoint.EpochBase(nc.Epoch()) <= preRound {
		r.violatef("promotion: epoch base %d not above old epoch's round watermark %d",
			checkpoint.EpochBase(nc.Epoch()), preRound)
	}

	// Re-point the survivors: a fresh Membership starts with every slot
	// excluded, then each is re-admitted through RejoinSince. The
	// standby's own slot restarts as a fresh mirror (its main unit now
	// belongs to the central); survivors present their committed cut
	// for a delta transfer only when their arrival watermark is covered
	// by the adopted state — a survivor the old central fanned out to
	// past the standby's progress holds mutations the adopted journal
	// never saw, and must take the snapshot path (Install replaces
	// wholesale).
	nm := core.NewMembership(nc, core.MembershipConfig{
		MissedRounds: r.cfg.MissedRounds,
		OnFailure:    func(site int) { r.controller.EvictSite(site) },
	})
	for i := range r.slots {
		if err := nm.Exclude(i); err != nil {
			r.violatef("promotion: exclude mirror %d: %v", i, err)
		}
	}
	r.member.Store(nm)
	for i := range r.slots {
		r.data[i].SetDown(false)
		r.ctrlDown[i].SetDown(false)
		r.ctrlUp[i].SetDown(false)
	}
	r.retireApplier(standby)
	promoted := r.slots[standby].Swap(r.newMirror(standby))
	promoted.Close() // detached: stops aux plumbing only, the main unit lives on
	r.prevCommitted[standby+1] = nil
	anchor := nc.Main().LastProcessed()
	for i := range r.slots {
		var cut vclock.VC
		if i != standby {
			m := r.slots[i].Load()
			if m.ArrivalHigh().LessEq(anchor) {
				cut = m.Backup().Committed()
			}
		}
		if _, err := nm.RejoinSince(i, cut); err != nil {
			r.violatef("promotion: rejoin mirror %d: %v", i, err)
		}
	}
	r.check("promotion")
	r.audit.Append(obs.AuditEntry{
		Action:     "promotion",
		Site:       fmt.Sprintf("mirror%d", standby),
		OldCentral: "central",
		NewCentral: fmt.Sprintf("mirror%d", standby),
		Epoch:      nc.Epoch(),
	})
}

// finish drains the pipeline, waits for every mirror to converge on
// the central progress, runs final checkpoint rounds until the central
// backup is fully trimmed, and evaluates the end-state invariants.
func (r *chaosRig) finish(res *ChaosResult) {
	r.cen().Drain()
	// Whoever the detector excluded along the way comes back now: the
	// rejoin transfer (snapshot + retained backup) covers everything an
	// excluded site missed, so convergence is still byte-exact.
	r.rejoinAll("final")
	centralLP := r.cen().Main().LastProcessed()
	deadline := time.Now().Add(20 * time.Second)
	for i := range r.slots {
		for !centralLP.LessEq(r.slots[i].Load().Main().LastProcessed()) {
			if time.Now().After(deadline) {
				r.violatef("drain: mirror %d stuck at %v, central at %v",
					i, r.slots[i].Load().Main().LastProcessed(), centralLP)
				break
			}
			time.Sleep(time.Millisecond)
		}
		r.slots[i].Load().Drain()
	}

	// Final rounds: control faults can drop a reply or a commit, so one
	// round is not guaranteed to land — later rounds subsume earlier
	// ones until the backup trims through the last event. The bound is
	// far beyond any plausible unlucky streak at ≤10% per-class rates.
	for attempt := 0; attempt < 200 && r.cen().Backup().Len() > 0; attempt++ {
		r.round("final")
		r.flushCtrl()
	}
	if got := r.cen().Backup().Len(); got > 0 {
		r.violatef("final: central backup retains %d events after 200 rounds", got)
	}
	costmodel.WaitIdle(r.cpus...)

	// Invariant 3: every replica — including the crash-restarted one —
	// has converged to the central EDE state byte-for-byte.
	want := r.cen().Main().Engine().State().Snapshot()
	h := fnv.New64a()
	_, _ = h.Write(want)
	res.StateDigest = h.Sum64()
	for i := range r.slots {
		m := r.slots[i].Load()
		got := m.Main().Engine().State().Snapshot()
		if string(got) != string(want) {
			r.violatef("convergence: mirror %d snapshot differs from central (%d vs %d bytes)",
				i, len(got), len(want))
		}
		// End-state half of invariant 2: with the stream drained, no
		// mirror's committed cut may exceed what it actually processed.
		if com := m.Backup().Committed(); com != nil && !com.LessEq(m.Main().LastProcessed()) {
			r.violatef("final: mirror %d committed %v beyond its progress %v",
				i, com, m.Main().LastProcessed())
		}
	}

	// Invariant 4: the central path never stalled on the dead mirror.
	if r.hist.Count() == 0 {
		r.violatef("latency: no update-delay samples recorded (envelope check vacuous)")
	}
	if p95 := r.hist.Percentile(95); p95 > r.cfg.EnvelopeP95 {
		r.violatef("latency: central update-delay p95 %s exceeds envelope %s", p95, r.cfg.EnvelopeP95)
	}

	// Invariant 5: regime convergence. Control faults can have dropped
	// the last piggybacked delivery to any site, and a transition can
	// have been decided on a reply that arrived after the final round's
	// CHKPT went out — PublishDirective refreshes the directive
	// (allocating a new round when it changed) and re-broadcasts until
	// every applier converges; the round watermark makes the redundant
	// deliveries harmless.
	for attempt := 0; attempt < 200 && !r.regimesConverged(); attempt++ {
		r.cen().PublishDirective()
		r.flushCtrl()
	}
	if !r.regimesConverged() {
		want := r.controller.Current()
		for i := range r.appliers {
			reg, round, ok := r.appliers[i].Load().Current()
			id, _, _ := r.slots[i].Load().Regime()
			if !ok || reg.ID != want.ID || id != want.ID {
				r.violatef("adapt: mirror %d regime applier=%d site=%d (round %d, have=%v) != central %d after drain",
					i, reg.ID, id, round, ok, want.ID)
			}
		}
	}

	// Invariant 7, end-state half: the promotion lost nothing durable
	// and never regressed numbering. The drained cluster's final
	// committed cut must cover the cut committed before the crash, and
	// the promotion epoch's rounds must have reached the cluster: some
	// mirror observed a round at or above the epoch base. (Per-slot
	// would be too strong — a site spuriously excluded through the calm
	// tail and rejoined with a fresh backup may legitimately see no
	// further round before the stream ends; the per-incarnation CAS-max
	// watermarks and noteInstall monotonicity cover no-regression.)
	if r.sched.CrashCentral {
		if r.preCrashCut != nil {
			if com := r.cen().Backup().Committed(); com == nil || !r.preCrashCut.LessEq(com) {
				r.violatef("promotion: final committed cut %v does not cover pre-crash cut %v",
					com, r.preCrashCut)
			}
		}
		base := checkpoint.EpochBase(r.cen().Epoch())
		var maxRound uint64
		for i := range r.slots {
			if lr := r.slots[i].Load().LastRound(); lr > maxRound {
				maxRound = lr
			}
		}
		if maxRound < base {
			r.violatef("promotion: no mirror observed a round in epoch %d (max round %d < epoch base %d)",
				r.cen().Epoch(), maxRound, base)
		}
	}
}

// regimesConverged reports whether every mirror's applier — and the
// site it installs into — carries the central controller's current
// regime ID.
func (r *chaosRig) regimesConverged() bool {
	want := r.controller.Current().ID
	for i := range r.appliers {
		reg, _, ok := r.appliers[i].Load().Current()
		if !ok || reg.ID != want {
			return false
		}
		if id, _, _ := r.slots[i].Load().Regime(); id != want {
			return false
		}
	}
	return true
}

// faultCount sums the plane's injection counters across all links.
func (r *chaosRig) faultCount() uint64 {
	var total uint64
	for i := range r.data {
		total += r.data[i].Injected() + r.ctrlDown[i].Injected() + r.ctrlUp[i].Injected()
	}
	return total
}
