package simnet

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestGatePassesWhenOpen(t *testing.T) {
	a, b := net.Pipe()
	g := NewGate(a)
	defer g.Close()
	defer b.Close()
	go func() { _, _ = g.Write([]byte("hello")) }()
	buf := make([]byte, 5)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
}

func TestGateStallsAndReleases(t *testing.T) {
	a, b := net.Pipe()
	g := NewGate(a)
	defer g.Close()
	defer b.Close()

	g.SetDown(true)
	var wrote atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := g.Write([]byte("x"))
		wrote.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if wrote.Load() {
		t.Fatal("write completed through a down gate")
	}
	go func() {
		buf := make([]byte, 1)
		_, _ = b.Read(buf)
	}()
	g.SetDown(false)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGateCloseUnblocksStalledWriter(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	g := NewGate(a)
	g.SetDown(true)
	done := make(chan error, 1)
	go func() {
		_, err := g.Write([]byte("x"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled write succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled writer never released by Close")
	}
}
