package simnet

import (
	"net"
	"sync"
)

// Gate is a runtime-switchable stall point on a net.Conn: while down,
// writes block (the TCP picture of a partitioned or wedged peer —
// data neither flows nor errors) until the gate reopens or the
// connection is closed. It composes with Shape, giving chaos
// schedules link stall/partition windows on real transports without
// tearing the connection down.
type Gate struct {
	net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	down   bool
	closed bool
}

// NewGate wraps c with an open gate.
func NewGate(c net.Conn) *Gate {
	g := &Gate{Conn: c}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// SetDown closes (true) or opens (false) the gate. Opening releases
// every writer blocked on it, in arrival order of the scheduler.
func (g *Gate) SetDown(down bool) {
	g.mu.Lock()
	g.down = down
	if !down {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Down reports the gate state.
func (g *Gate) Down() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

// Write blocks while the gate is down, then writes through. A Close
// during the stall unblocks the writer with net.ErrClosed.
func (g *Gate) Write(p []byte) (int, error) {
	g.mu.Lock()
	for g.down && !g.closed {
		g.cond.Wait()
	}
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	return g.Conn.Write(p)
}

// Close releases stalled writers and closes the underlying
// connection.
func (g *Gate) Close() error {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	return g.Conn.Close()
}
