// Package simnet emulates the network asymmetry of the paper's
// testbed: a fast cluster interconnect between mirror sites versus a
// 100 Mbps Ethernet between server and clients. It shapes io/net
// connections with a token-bucket bandwidth limit (serialization
// delay, which grows with event size) and one-way propagation latency.
package simnet

import (
	"net"
	"sync"
	"time"
)

// Profile describes one direction of a link.
type Profile struct {
	// Bandwidth in bytes per second; 0 means unlimited.
	Bandwidth float64
	// Latency is the one-way propagation delay added to each write.
	Latency time.Duration
	// Burst is the token bucket depth in bytes; defaults to 64 KiB
	// when zero and a bandwidth limit is set.
	Burst int
}

// Common profiles. The cluster SAN dwarfs the client network, which is
// what makes intra-cluster mirroring cheap relative to client traffic.
var (
	// ClusterSAN approximates the paper's cluster interconnect:
	// ~1 Gbps, tens of microseconds of latency.
	ClusterSAN = Profile{Bandwidth: 125e6, Latency: 50 * time.Microsecond}
	// ClientEthernet approximates the 100 Mbps client-facing network.
	ClientEthernet = Profile{Bandwidth: 12.5e6, Latency: 200 * time.Microsecond}
	// Unshaped applies no shaping at all.
	Unshaped = Profile{}
)

// IsZero reports whether p applies no shaping.
func (p Profile) IsZero() bool {
	return p.Bandwidth == 0 && p.Latency == 0
}

// bucket is a token bucket: callers wait until enough byte-tokens have
// accrued. It intentionally models only serialization delay — no drops.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	if burst <= 0 {
		burst = 64 << 10
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// wait blocks until n bytes of tokens are available and consumes them.
// Requests larger than the burst are satisfied in burst-sized slices.
func (b *bucket) wait(n int) {
	for n > 0 {
		slice := n
		if float64(slice) > b.burst {
			slice = int(b.burst)
		}
		b.waitSlice(slice)
		n -= slice
	}
}

func (b *bucket) waitSlice(n int) {
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= float64(n) {
			b.tokens -= float64(n)
			b.mu.Unlock()
			return
		}
		need := (float64(n) - b.tokens) / b.rate
		b.mu.Unlock()
		time.Sleep(time.Duration(need * float64(time.Second)))
	}
}

// Conn shapes writes on an underlying net.Conn. Reads pass through
// untouched (the peer's writes are shaped on its side).
type Conn struct {
	net.Conn
	bucket  *bucket
	latency time.Duration

	mu sync.Mutex // serializes shaped writes
}

// Shape wraps c so writes experience p. A zero profile returns c
// unchanged.
func Shape(c net.Conn, p Profile) net.Conn {
	if p.IsZero() {
		return c
	}
	sc := &Conn{Conn: c, latency: p.Latency}
	if p.Bandwidth > 0 {
		sc.bucket = newBucket(p.Bandwidth, p.Burst)
	}
	return sc
}

// Write applies serialization delay (bandwidth) and propagation
// latency, then writes to the underlying connection.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bucket != nil {
		c.bucket.wait(len(p))
	}
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	return c.Conn.Write(p)
}

// Listener shapes connections accepted from an inner listener.
type Listener struct {
	net.Listener
	profile Profile
}

// ShapeListener wraps l so accepted connections are shaped with p.
func ShapeListener(l net.Listener, p Profile) net.Listener {
	if p.IsZero() {
		return l
	}
	return &Listener{Listener: l, profile: p}
}

// Accept shapes the accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Shape(c, l.profile), nil
}

// Dial connects to addr over TCP and shapes the connection with p.
func Dial(addr string, p Profile) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Shape(c, p), nil
}

// Pipe returns an in-process full-duplex connection pair, each
// direction shaped with p.
func Pipe(p Profile) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return Shape(a, p), Shape(b, p)
}
