package simnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestShapeZeroProfilePassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if Shape(a, Unshaped) != a {
		t.Fatal("zero profile must return the connection unchanged")
	}
}

func TestIsZero(t *testing.T) {
	if !Unshaped.IsZero() {
		t.Fatal("Unshaped.IsZero() = false")
	}
	if ClusterSAN.IsZero() || ClientEthernet.IsZero() {
		t.Fatal("shaped profiles must not be zero")
	}
	if (Profile{Latency: time.Millisecond}).IsZero() {
		t.Fatal("latency-only profile must not be zero")
	}
}

func TestBandwidthLimitsThroughput(t *testing.T) {
	// 1 MB/s with a small burst: sending 200 KB beyond the burst must
	// take roughly 200ms (loose bounds to stay robust under CI noise).
	const rate = 1e6
	a, b := net.Pipe()
	shaped := Shape(a, Profile{Bandwidth: rate, Burst: 4 << 10})
	defer shaped.Close()
	defer b.Close()

	go io.Copy(io.Discard, b)
	payload := make([]byte, 200<<10)
	start := time.Now()
	if _, err := shaped.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	min := 100 * time.Millisecond
	if elapsed < min {
		t.Fatalf("200KB at 1MB/s finished in %v, want at least %v", elapsed, min)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("transfer took %v, far beyond expected ~200ms", elapsed)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	a, b := net.Pipe()
	shaped := Shape(a, Profile{Latency: 20 * time.Millisecond})
	defer shaped.Close()
	defer b.Close()
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
		done <- buf
	}()
	start := time.Now()
	if _, err := shaped.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("write completed in %v, latency not applied", time.Since(start))
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("payload corrupted: %q", got)
	}
}

func TestReadsUnshaped(t *testing.T) {
	a, b := net.Pipe()
	shaped := Shape(a, Profile{Latency: 50 * time.Millisecond})
	defer shaped.Close()
	defer b.Close()
	go b.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 25*time.Millisecond {
		t.Fatal("reads must not be delayed by the local write profile")
	}
}

func TestBucketLargeWriteExceedingBurst(t *testing.T) {
	b := newBucket(1e9, 1024)
	start := time.Now()
	b.wait(10 * 1024) // 10 KiB through a 1 KiB-burst bucket at 1 GB/s
	if time.Since(start) > time.Second {
		t.Fatal("bucket stalled on larger-than-burst request")
	}
}

func TestShapedListenerAndDial(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := ShapeListener(inner, Profile{Latency: 5 * time.Millisecond})
	defer l.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := Dial(inner.Addr().String(), Profile{Latency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srvConn := <-accepted
	defer srvConn.Close()

	if _, ok := srvConn.(*Conn); !ok {
		t.Fatal("accepted connection must be shaped")
	}
	if _, ok := c.(*Conn); !ok {
		t.Fatal("dialed connection must be shaped")
	}
	// Round trip still works through shaping.
	go srvConn.Write([]byte("pong"))
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Fatalf("got %q", buf)
	}
}

func TestShapeListenerZeroPassthrough(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if ShapeListener(inner, Unshaped) != inner {
		t.Fatal("zero profile must return listener unchanged")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClusterSAN); err == nil {
		t.Fatal("Dial to closed port must fail")
	}
}

func TestPipePair(t *testing.T) {
	a, b := Pipe(Profile{Latency: time.Millisecond})
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Fatalf("got %q", buf)
	}
}

func TestConcurrentShapedWrites(t *testing.T) {
	a, b := net.Pipe()
	shaped := Shape(a, Profile{Bandwidth: 100e6, Latency: time.Microsecond})
	defer shaped.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)
	done := make(chan struct{}, 4)
	for g := 0; g < 4; g++ {
		go func() {
			buf := make([]byte, 1024)
			for i := 0; i < 50; i++ {
				if _, err := shaped.Write(buf); err != nil {
					t.Error(err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent writes deadlocked")
		}
	}
}
