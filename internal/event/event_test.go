package event

import (
	"strings"
	"testing"
	"time"

	"adaptmirror/internal/vclock"
)

func TestTypeClassification(t *testing.T) {
	dataTypes := []Type{TypeFAAPosition, TypeDeltaStatus, TypeGateReader,
		TypeCrewUpdate, TypeBaggage, TypeWeather, TypeAllBoarded,
		TypeFlightArrived, TypeCoalesced, TypeStateUpdate}
	for _, ty := range dataTypes {
		if !ty.IsData() {
			t.Errorf("%s: IsData = false, want true", ty)
		}
		if ty.IsControl() {
			t.Errorf("%s: IsControl = true, want false", ty)
		}
	}
	ctrlTypes := []Type{TypeChkpt, TypeChkptReply, TypeCommit, TypeAdapt,
		TypeHello, TypeRecoveryRequest}
	for _, ty := range ctrlTypes {
		if ty.IsData() {
			t.Errorf("%s: IsData = true, want false", ty)
		}
		if !ty.IsControl() {
			t.Errorf("%s: IsControl = false, want true", ty)
		}
	}
	if TypeInvalid.IsData() || TypeInvalid.IsControl() {
		t.Error("TypeInvalid must be neither data nor control")
	}
}

func TestTypeStringsDistinct(t *testing.T) {
	seen := map[string]Type{}
	for _, ty := range []Type{TypeInvalid, TypeFAAPosition, TypeDeltaStatus,
		TypeGateReader, TypeCrewUpdate, TypeBaggage, TypeWeather,
		TypeAllBoarded, TypeFlightArrived, TypeCoalesced, TypeStateUpdate,
		TypeChkpt, TypeChkptReply, TypeCommit, TypeAdapt, TypeHello,
		TypeRecoveryRequest, Type(9999)} {
		s := ty.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("types %d and %d share name %q", prev, ty, s)
		}
		seen[s] = ty
	}
}

func TestStatusLifecycle(t *testing.T) {
	order := []Status{StatusScheduled, StatusBoarding, StatusBoarded,
		StatusDeparted, StatusEnRoute, StatusLanded, StatusAtRunway,
		StatusAtGate, StatusArrived}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("lifecycle must be strictly increasing: %s <= %s", order[i], order[i-1])
		}
	}
	for _, s := range order[:5] {
		if s.Terminal() {
			t.Errorf("%s: Terminal = true, want false", s)
		}
	}
	for _, s := range order[5:] {
		if !s.Terminal() {
			t.Errorf("%s: Terminal = false, want true", s)
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusLanded.String() != "landed" {
		t.Errorf("got %q", StatusLanded.String())
	}
	if !strings.Contains(Status(200).String(), "200") {
		t.Errorf("unknown status should embed numeric value, got %q", Status(200).String())
	}
}

func TestNewPosition(t *testing.T) {
	e := NewPosition(42, 7, 33.64, -84.43, 10500, 1024)
	if e.Type != TypeFAAPosition || e.Flight != 42 || e.Seq != 7 {
		t.Fatalf("bad event: %s", e)
	}
	if len(e.Payload) != 1024 {
		t.Fatalf("payload size = %d, want 1024", len(e.Payload))
	}
	lat, lon, alt, ok := e.Position()
	if !ok || lat != 33.64 || lon != -84.43 || alt != 10500 {
		t.Fatalf("Position() = %v %v %v %v", lat, lon, alt, ok)
	}
}

func TestNewPositionMinimumSize(t *testing.T) {
	e := NewPosition(1, 1, 1, 2, 3, 0)
	if len(e.Payload) < positionHeader {
		t.Fatalf("payload must be padded to hold a position, got %d", len(e.Payload))
	}
	if _, _, _, ok := e.Position(); !ok {
		t.Fatal("position must decode")
	}
}

func TestPositionTooShort(t *testing.T) {
	e := &Event{Type: TypeFAAPosition, Payload: make([]byte, 8)}
	if _, _, _, ok := e.Position(); ok {
		t.Fatal("short payload must not decode as position")
	}
}

func TestNewStatus(t *testing.T) {
	e := NewStatus(9, 3, StatusLanded, 256)
	if e.Type != TypeDeltaStatus || e.Status != StatusLanded || len(e.Payload) != 256 {
		t.Fatalf("bad event: %s", e)
	}
	e0 := NewStatus(9, 4, StatusAtGate, 0)
	if len(e0.Payload) != 0 {
		t.Fatalf("zero-size payload expected, got %d", len(e0.Payload))
	}
}

func TestNewControl(t *testing.T) {
	vt := vclock.VC{3, 4}
	e := NewControl(TypeChkpt, vt)
	if e.Type != TypeChkpt || e.VT.Compare(vt) != vclock.Equal {
		t.Fatalf("bad control event: %s", e)
	}
	vt[0] = 99
	if e.VT[0] == 99 {
		t.Fatal("NewControl must clone the timestamp")
	}
}

func TestNewControlPanicsOnDataType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for data type")
		}
	}()
	NewControl(TypeFAAPosition, nil)
}

func TestCloneDeep(t *testing.T) {
	e := NewPosition(1, 1, 1, 2, 3, 64)
	e.VT = vclock.VC{5}
	c := e.Clone()
	c.Payload[0] = ^c.Payload[0]
	c.VT[0] = 99
	if e.Payload[0] == c.Payload[0] || e.VT[0] == 99 {
		t.Fatal("Clone must not alias payload or VT")
	}
}

func TestCloneBatchMatchesClone(t *testing.T) {
	src := []*Event{
		NewPosition(1, 1, 1, 2, 3, 64),
		{Type: TypeChkpt},                          // nil payload, nil VT
		{Type: TypeDeltaStatus, Payload: []byte{}}, // empty but non-nil payload
		NewStatus(7, 9, StatusEnRoute, 32),
	}
	src[0].VT = vclock.VC{5, 6}
	src[3].VT = vclock.VC{1}

	if got := CloneBatch(nil, nil); got != nil {
		t.Fatalf("CloneBatch of empty batch = %v, want nil", got)
	}
	clones := CloneBatch(nil, src)
	if len(clones) != len(src) {
		t.Fatalf("CloneBatch returned %d events, want %d", len(clones), len(src))
	}
	for i, c := range clones {
		want := src[i].Clone()
		if c.Type != want.Type || c.Flight != want.Flight || c.Seq != want.Seq ||
			c.Status != want.Status || c.Coalesced != want.Coalesced {
			t.Fatalf("clone %d mismatch: %s vs %s", i, c, want)
		}
		if !vtEqual(c.VT, src[i].VT) || string(c.Payload) != string(src[i].Payload) {
			t.Fatalf("clone %d payload/VT mismatch", i)
		}
		if (c.Payload == nil) != (src[i].Payload == nil) {
			t.Fatalf("clone %d payload nil-ness differs", i)
		}
	}

	// Deep copy: mutating a clone leaves the source untouched.
	clones[0].Payload[0] = ^clones[0].Payload[0]
	clones[0].VT[0] = 99
	if src[0].Payload[0] == clones[0].Payload[0] || src[0].VT[0] == 99 {
		t.Fatal("CloneBatch must not alias payload or VT")
	}

	// Slab isolation: appending to one clone's payload/VT must not
	// clobber its neighbour (slices are capped at their own length).
	before := string(clones[3].Payload)
	clones[0].Payload = append(clones[0].Payload, 0xAA, 0xBB)
	clones[0].VT = append(clones[0].VT, 123)
	if string(clones[3].Payload) != before || !vtEqual(clones[3].VT, vclock.VC{1}) {
		t.Fatal("append to one clone corrupted a neighbour's slab slice")
	}

	// dst reuse appends after existing entries.
	scratch := make([]*Event, 0, 8)
	scratch = append(scratch, src[0])
	out := CloneBatch(scratch, src[:1])
	if len(out) != 2 || out[0] != src[0] || out[1] == src[0] {
		t.Fatal("CloneBatch must append clones after existing dst entries")
	}
}

func vtEqual(a, b vclock.VC) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWeight(t *testing.T) {
	e := &Event{}
	if e.Weight() != 1 {
		t.Fatalf("zero Coalesced must weigh 1, got %d", e.Weight())
	}
	e.Coalesced = 10
	if e.Weight() != 10 {
		t.Fatalf("Weight = %d, want 10", e.Weight())
	}
}

func TestAge(t *testing.T) {
	now := time.Now()
	e := &Event{Ingress: now.Add(-time.Second).UnixNano()}
	if age := e.Age(now); age != time.Second {
		t.Fatalf("Age = %v, want 1s", age)
	}
	if (&Event{}).Age(now) != 0 {
		t.Fatal("unstamped event must have zero age")
	}
}

func TestEventString(t *testing.T) {
	var e *Event
	if e.String() != "event(nil)" {
		t.Fatalf("nil String = %q", e.String())
	}
	s := NewStatus(7, 1, StatusLanded, 8).String()
	for _, want := range []string{"delta-status", "flight=7", "landed"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
