package event

import (
	"bytes"
	"io"
	"testing"

	"adaptmirror/internal/vclock"
)

// bev builds one data event with distinguishable fields.
func bev(i int) *Event {
	return &Event{
		Type:      TypeFAAPosition,
		Flight:    FlightID(i + 1),
		Stream:    uint8(i % 3),
		Seq:       uint64(i * 7),
		Status:    StatusUnknown,
		Coalesced: 1,
		VT:        vclock.VC{uint64(i + 1), uint64(2 * i)},
		Ingress:   int64(1000 + i),
		Payload:   bytes.Repeat([]byte{byte(i + 1)}, 16+i),
	}
}

func sameEvent(t *testing.T, got, want *Event, i int) {
	t.Helper()
	if got.Type != want.Type || got.Flight != want.Flight || got.Stream != want.Stream ||
		got.Seq != want.Seq || got.Status != want.Status || got.Coalesced != want.Coalesced ||
		got.Ingress != want.Ingress {
		t.Fatalf("event %d: header mismatch: got %v want %v", i, got, want)
	}
	if got.VT.Compare(want.VT) != vclock.Equal || len(got.VT) != len(want.VT) {
		t.Fatalf("event %d: VT %v, want %v", i, got.VT, want.VT)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("event %d: payload mismatch (%d vs %d bytes)", i, len(got.Payload), len(want.Payload))
	}
	if got.ReadyAt != 0 || got.ForwardAt != 0 {
		t.Fatalf("event %d: trace stamps leaked onto the wire", i)
	}
}

func TestBatchFrameRoundTrip(t *testing.T) {
	src := make([]*Event, 17)
	for i := range src {
		src[i] = bev(i)
		src[i].ReadyAt = 99 // must not travel
	}
	// Break every hoistable column so the ×N paths are exercised.
	src[3].Type = TypeDeltaStatus
	src[3].Status = StatusBoarding
	src[5].Stream = 7
	src[9].Coalesced = 4
	src[11].VT = vclock.VC{1, 2, 3} // non-uniform width
	src[12].Payload = nil           // empty payload slot
	src[12].VT = nil                // nil timestamp round-trips as nil

	frame, err := AppendBatchFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBatchFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if len(b.Events) != len(src) {
		t.Fatalf("decoded %d events, want %d", len(b.Events), len(src))
	}
	for i, v := range b.Events {
		sameEvent(t, v, src[i], i)
	}
	if b.Events[12].VT != nil {
		t.Fatalf("nil VT decoded as %v", b.Events[12].VT)
	}
	if b.Events[12].Payload != nil {
		t.Fatalf("empty payload decoded as %v", b.Events[12].Payload)
	}
}

func TestBatchFrameHoistedColumns(t *testing.T) {
	uniform := make([]*Event, 8)
	for i := range uniform {
		uniform[i] = bev(0)
		uniform[i].Seq = uint64(i)
		uniform[i].Flight = FlightID(i)
	}
	hoisted, err := AppendBatchFrame(nil, uniform)
	if err != nil {
		t.Fatal(err)
	}
	varied := make([]*Event, 8)
	for i := range varied {
		varied[i] = bev(i)
		varied[i].Type = Type(uint16(i%2) + uint16(TypeFAAPosition))
		varied[i].Status = Status(i % 3)
		varied[i].Coalesced = uint32(i + 1)
	}
	full, err := AppendBatchFrame(nil, varied)
	if err != nil {
		t.Fatal(err)
	}
	if len(hoisted) >= len(full) {
		t.Fatalf("hoisted frame (%d bytes) not smaller than varied frame (%d bytes)", len(hoisted), len(full))
	}
	for _, frame := range [][]byte{hoisted, full} {
		b, err := ParseBatchFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
}

func TestBatchFrameRejectsMalformed(t *testing.T) {
	src := []*Event{bev(0), bev(1), bev(2)}
	frame, err := AppendBatchFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation of a valid frame must fail cleanly.
	for n := 0; n < len(frame); n++ {
		if b, err := ParseBatchFrame(frame[:n]); err == nil {
			b.Release()
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}

	corrupt := func(mutate func([]byte)) error {
		c := append([]byte(nil), frame...)
		mutate(c)
		b, err := ParseBatchFrame(c)
		if err == nil {
			b.Release()
		}
		return err
	}
	if err := corrupt(func(c []byte) { c[2] = 99 }); err == nil {
		t.Fatal("unknown version accepted")
	}
	if err := corrupt(func(c []byte) { c[3] |= 0x80 }); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := corrupt(func(c []byte) { c[4], c[5], c[6], c[7] = 0, 0, 0, 0 }); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := corrupt(func(c []byte) { c[4], c[5], c[6], c[7] = 0xFF, 0xFF, 0xFF, 0xFF }); err == nil {
		t.Fatal("giant count accepted")
	}
	// A decreasing offset table must be rejected: patch the last two
	// entries so offsets[N-1] > offsets[N].
	payloadLen := len(src[2].Payload)
	if err := corrupt(func(c []byte) {
		end := len(c) - BatchPayloadBytes(src)
		le := c[end-8 : end-4]
		le[0], le[1], le[2], le[3] = 0xFF, 0xFF, 0, 0
	}); err == nil {
		t.Fatalf("decreasing offset table accepted (payload len %d)", payloadLen)
	}
}

func TestReadFrameMixedGenerations(t *testing.T) {
	var wire bytes.Buffer
	w := NewWriter(&wire)
	legacy := bev(100)
	if err := w.WriteEvent(legacy); err != nil {
		t.Fatal(err)
	}
	batch := []*Event{bev(0), bev(1), bev(2), bev(3)}
	if err := w.WriteBatchFrame(batch); err != nil {
		t.Fatal(err)
	}
	legacy2 := bev(200)
	if err := w.WriteEvent(legacy2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&wire)
	e, b, err := r.ReadFrame()
	if err != nil || e == nil || b != nil {
		t.Fatalf("first frame: e=%v b=%v err=%v, want legacy event", e, b, err)
	}
	sameEvent(t, e, legacy, 0)

	e, b, err = r.ReadFrame()
	if err != nil || e != nil || b == nil {
		t.Fatalf("second frame: e=%v b=%v err=%v, want batch", e, b, err)
	}
	if len(b.Events) != len(batch) {
		t.Fatalf("batch decoded %d events, want %d", len(b.Events), len(batch))
	}
	for i, v := range b.Events {
		sameEvent(t, v, batch[i], i)
	}
	b.Release()

	e, _, err = r.ReadFrame()
	if err != nil || e == nil {
		t.Fatalf("third frame: %v, %v", e, err)
	}
	sameEvent(t, e, legacy2, 0)

	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestShallowBatchAliasesPayloads(t *testing.T) {
	src := []*Event{bev(0), bev(1)}
	b := ShallowBatch(src)
	if len(b.Events) != 2 {
		t.Fatalf("ShallowBatch produced %d views", len(b.Events))
	}
	for i, v := range b.Events {
		if v == src[i] {
			t.Fatalf("view %d is the source pointer, want a copy", i)
		}
		if &v.Payload[0] != &src[i].Payload[0] {
			t.Fatalf("view %d payload does not alias the source", i)
		}
		if &v.VT[0] != &src[i].VT[0] {
			t.Fatalf("view %d VT does not alias the source", i)
		}
	}
	// Header mutation on the view must not touch the source.
	b.Events[0].Coalesced = 42
	if src[0].Coalesced == 42 {
		t.Fatal("view header mutation reached the source event")
	}
	b.Release()
}

func TestBatchRetainRelease(t *testing.T) {
	src := []*Event{bev(0)}
	b := ShallowBatch(src)
	b.Retain()
	b.Release()
	b.Release() // final: back to pool
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("release past zero did not panic")
			}
		}()
		b.Release()
	}()
	_, _, retained := SlabPoolStats()
	if retained == 0 {
		t.Fatal("Retain not counted")
	}
}

// TestBatchDecodeReuseSteadyStateAllocs pins the zero-allocation claim
// at the codec layer: once pools are warm, one encode→decode→release
// cycle of a full batch performs no per-event allocations.
func TestBatchDecodeReuseSteadyStateAllocs(t *testing.T) {
	const n = 64
	src := make([]*Event, n)
	for i := range src {
		src[i] = bev(i)
	}
	frame, err := AppendBatchFrame(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool.
	for i := 0; i < 4; i++ {
		b, err := ParseBatchFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		b, err := ParseBatchFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	// ParseBatchFrame itself may allocate nothing once the slab is
	// warm; allow a tiny constant slack for the pool's interface boxing
	// but nothing proportional to the batch size.
	if allocs > 2 {
		t.Fatalf("decode cycle allocates %.1f objects per run for %d events; want ≤ 2", allocs, n)
	}
}

func FuzzBatchFrame(f *testing.F) {
	// Seed with valid frames of both generations plus mutations the
	// fuzzer can splice: a hoisted columnar frame, a varied columnar
	// frame, and a legacy frame.
	uniform := make([]*Event, 4)
	for i := range uniform {
		uniform[i] = bev(0)
		uniform[i].Seq = uint64(i)
	}
	varied := []*Event{bev(0), bev(3), bev(7)}
	varied[1].Type = TypeDeltaStatus
	varied[1].VT = vclock.VC{9}
	for _, events := range [][]*Event{uniform, varied} {
		frame, err := AppendBatchFrame(nil, events)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add(bev(5).Marshal())
	f.Add([]byte{0xFF, 0xFF, 1, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder must never panic or over-read; on success the
		// views must be internally consistent and re-encodable.
		b, err := ParseBatchFrame(data)
		if err != nil {
			return
		}
		if len(b.Events) == 0 {
			t.Fatal("decoded batch with zero events")
		}
		for _, v := range b.Events {
			_ = v.String()
			if len(v.Payload) > MaxPayload {
				t.Fatalf("decoded payload of %d bytes", len(v.Payload))
			}
		}
		reenc, err := AppendBatchFrame(nil, b.Events)
		if err != nil {
			t.Fatalf("re-encoding decoded batch: %v", err)
		}
		b2, err := ParseBatchFrame(reenc)
		if err != nil {
			t.Fatalf("decoding re-encoded batch: %v", err)
		}
		if len(b2.Events) != len(b.Events) {
			t.Fatalf("re-encode changed count: %d vs %d", len(b2.Events), len(b.Events))
		}
		for i := range b.Events {
			a, c := b.Events[i], b2.Events[i]
			if a.Type != c.Type || a.Seq != c.Seq || !bytes.Equal(a.Payload, c.Payload) ||
				a.VT.Compare(c.VT) != vclock.Equal {
				t.Fatalf("event %d not stable under re-encode", i)
			}
		}
		b2.Release()
		b.Release()
	})
}
