package event

import (
	"fmt"
	"time"

	"adaptmirror/internal/vclock"
)

// FlightID identifies a flight across all streams and sites.
type FlightID uint32

// Event is one application-level update event (or framework control
// event). Events are value-ish: the mirroring layer copies the struct
// freely but treats Payload and VT as immutable once the event has been
// admitted; use Clone when a mutated copy is needed.
type Event struct {
	// Type is the event kind; see the Type constants.
	Type Type

	// Flight is the flight this event concerns (zero for events that
	// are not flight-scoped, e.g. control events).
	Flight FlightID

	// Stream is the index of the incoming source stream, which is
	// also the event's component in vector timestamps.
	Stream uint8

	// Seq is the per-stream sequence number, unique and monotonically
	// increasing within a stream (assigned by the source).
	Seq uint64

	// Status is the lifecycle state for TypeDeltaStatus events and
	// for derived status-bearing events; StatusUnknown otherwise.
	Status Status

	// Coalesced is the number of raw source events this event
	// represents: 1 for an ordinary event, n>1 when the sending task
	// coalesced or overwrote a run of events into this one.
	Coalesced uint32

	// VT is the vector timestamp assigned by the central site's
	// receiving task when the event enters the OIS.
	VT vclock.VC

	// Ingress is the wall-clock instant (UnixNano) the event entered
	// the OIS; the update-delay metric (Figure 8/9) measures from
	// here to EDE emission.
	Ingress int64

	// ReadyAt and ForwardAt are lifecycle trace stamps (UnixNano, 0
	// when tracing is off): the instants the sending task removed the
	// event from the ready queue and handed it to the local main unit.
	// They are central-site bookkeeping only — the wire codec does not
	// carry them.
	ReadyAt   int64
	ForwardAt int64

	// Payload is the opaque application body. Its size drives
	// serialization, transmission and processing cost, matching the
	// "size of data events" axis of Figures 4 and 6.
	Payload []byte
}

// Clone returns a deep copy of e (payload and vector timestamp are
// copied, not aliased).
func (e *Event) Clone() *Event {
	c := *e
	c.VT = e.VT.Clone()
	if e.Payload != nil {
		c.Payload = make([]byte, len(e.Payload))
		copy(c.Payload, e.Payload)
	}
	return &c
}

// CloneBatch appends a deep copy of every event in src to dst and
// returns the extended slice. It is equivalent to calling Clone per
// event but amortizes allocation across the batch: one event slab, one
// vector-timestamp slab and one payload slab back all the copies.
// Every copied slice is capped at its own length, so growing one
// clone's payload or timestamp can never reach into a neighbour's.
func CloneBatch(dst []*Event, src []*Event) []*Event {
	if len(src) == 0 {
		return dst
	}
	var vtWords, payloadBytes int
	for _, e := range src {
		vtWords += len(e.VT)
		payloadBytes += len(e.Payload)
	}
	events := make([]Event, len(src))
	var vts []uint64
	if vtWords > 0 {
		vts = make([]uint64, vtWords)
	}
	var payloads []byte
	if payloadBytes > 0 {
		payloads = make([]byte, payloadBytes)
	}
	for i, e := range src {
		c := &events[i]
		*c = *e
		if n := len(e.VT); n > 0 {
			v := vts[:n:n]
			vts = vts[n:]
			copy(v, e.VT)
			c.VT = vclock.VC(v)
		}
		if n := len(e.Payload); n > 0 {
			p := payloads[:n:n]
			payloads = payloads[n:]
			copy(p, e.Payload)
			c.Payload = p
		} else if e.Payload != nil {
			c.Payload = []byte{}
		}
		dst = append(dst, c)
	}
	return dst
}

// Weight returns how many raw source events e stands for (at least 1),
// used when accounting for overwritten/coalesced traffic.
func (e *Event) Weight() uint32 {
	if e.Coalesced < 1 {
		return 1
	}
	return e.Coalesced
}

// Age returns the time elapsed since the event entered the OIS,
// measured at now. It reports 0 for events that never passed through a
// receiving task (Ingress == 0).
func (e *Event) Age(now time.Time) time.Duration {
	if e.Ingress == 0 {
		return 0
	}
	return time.Duration(now.UnixNano() - e.Ingress)
}

// String formats a short debugging description.
func (e *Event) String() string {
	if e == nil {
		return "event(nil)"
	}
	return fmt.Sprintf("%s flight=%d stream=%d seq=%d status=%s vt=%s n=%d len=%d",
		e.Type, e.Flight, e.Stream, e.Seq, e.Status, e.VT, e.Weight(), len(e.Payload))
}

// NewPosition builds an FAA flight-position event. The payload carries
// the encoded position padded to size bytes (the experiments sweep this
// size).
func NewPosition(flight FlightID, seq uint64, lat, lon, alt float64, size int) *Event {
	return &Event{
		Type:      TypeFAAPosition,
		Flight:    flight,
		Seq:       seq,
		Coalesced: 1,
		Payload:   encodePosition(lat, lon, alt, size),
	}
}

// NewStatus builds a Delta flight-status event with the given payload
// size.
func NewStatus(flight FlightID, seq uint64, s Status, size int) *Event {
	p := make([]byte, size)
	if size > 0 {
		p[0] = byte(s)
	}
	return &Event{
		Type:      TypeDeltaStatus,
		Flight:    flight,
		Seq:       seq,
		Status:    s,
		Coalesced: 1,
		Payload:   p,
	}
}

// NewControl builds a control event of type t whose VT carries the
// timestamp value the protocol is negotiating.
func NewControl(t Type, vt vclock.VC) *Event {
	if !t.IsControl() {
		panic(fmt.Sprintf("event: NewControl called with data type %s", t))
	}
	return &Event{Type: t, Coalesced: 1, VT: vt.Clone()}
}

// positionHeader is the encoded size of a position triple.
const positionHeader = 24

func encodePosition(lat, lon, alt float64, size int) []byte {
	if size < positionHeader {
		size = positionHeader
	}
	p := make([]byte, size)
	putFloat(p[0:], lat)
	putFloat(p[8:], lon)
	putFloat(p[16:], alt)
	return p
}

// Position decodes the (lat, lon, alt) triple from a position payload.
// ok is false when the payload is too short to hold one.
func (e *Event) Position() (lat, lon, alt float64, ok bool) {
	if len(e.Payload) < positionHeader {
		return 0, 0, 0, false
	}
	return getFloat(e.Payload[0:]), getFloat(e.Payload[8:]), getFloat(e.Payload[16:]), true
}
