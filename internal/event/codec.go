package event

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adaptmirror/internal/vclock"
)

// The wire format is a fixed little-endian header followed by the
// vector timestamp and payload:
//
//	offset  size  field
//	0       2     Type
//	2       4     Flight
//	6       1     Stream
//	7       1     Status
//	8       8     Seq
//	16      4     Coalesced
//	20      8     Ingress (UnixNano)
//	28      2+8k  VT (length-prefixed)
//	...     4+n   Payload (length-prefixed)
const headerSize = 28

// MaxPayload bounds payload sizes accepted by the decoder, protecting
// sites from malformed frames.
const MaxPayload = 16 << 20

func putFloat(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}

func getFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// EncodedSize returns the exact number of bytes Append will produce.
func (e *Event) EncodedSize() int {
	return headerSize + e.VT.EncodedSize() + 4 + len(e.Payload)
}

// Append appends the binary encoding of e to b and returns the
// extended slice.
func (e *Event) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(e.Type))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Flight))
	b = append(b, e.Stream, byte(e.Status))
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint32(b, e.Coalesced)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Ingress))
	b = e.VT.AppendBinary(b)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Payload)))
	b = append(b, e.Payload...)
	return b
}

// Marshal returns the binary encoding of e.
func (e *Event) Marshal() []byte {
	return e.Append(make([]byte, 0, e.EncodedSize()))
}

// Unmarshal decodes an event from b, returning the event and the
// number of bytes consumed.
func Unmarshal(b []byte) (*Event, int, error) {
	if len(b) < headerSize {
		return nil, 0, fmt.Errorf("event: short header: %d bytes", len(b))
	}
	e := &Event{
		Type:      Type(binary.LittleEndian.Uint16(b[0:])),
		Flight:    FlightID(binary.LittleEndian.Uint32(b[2:])),
		Stream:    b[6],
		Status:    Status(b[7]),
		Seq:       binary.LittleEndian.Uint64(b[8:]),
		Coalesced: binary.LittleEndian.Uint32(b[16:]),
		Ingress:   int64(binary.LittleEndian.Uint64(b[20:])),
	}
	off := headerSize
	vt, n, err := vclock.DecodeVC(b[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("event: decoding VT: %w", err)
	}
	e.VT = vt
	off += n
	if len(b) < off+4 {
		return nil, 0, fmt.Errorf("event: truncated payload length")
	}
	plen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("event: payload length %d exceeds maximum %d", plen, MaxPayload)
	}
	if len(b) < off+plen {
		return nil, 0, fmt.Errorf("event: truncated payload: need %d bytes, have %d", plen, len(b)-off)
	}
	if plen > 0 {
		e.Payload = make([]byte, plen)
		copy(e.Payload, b[off:off+plen])
	}
	return e, off + plen, nil
}

// Writer frames events onto an io.Writer with a 4-byte length prefix
// per event. It is not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a framing Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// WriteEvent frames and buffers one event. Call Flush to push buffered
// frames to the underlying writer.
func (w *Writer) WriteEvent(e *Event) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(e.EncodedSize()))
	w.buf = e.Append(w.buf)
	_, err := w.w.Write(w.buf)
	return err
}

// WriteBatch frames a whole batch into one contiguous buffer and
// hands it to the underlying bufio writer with a single Write call,
// so a batch costs one buffered write (plus the caller's single
// Flush) instead of one write and flush per event.
func (w *Writer) WriteBatch(events []*Event) error {
	if len(events) == 0 {
		return nil
	}
	total := 0
	for _, e := range events {
		total += 4 + e.EncodedSize()
	}
	if cap(w.buf) < total {
		w.buf = make([]byte, 0, total)
	}
	w.buf = w.buf[:0]
	for _, e := range events {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(e.EncodedSize()))
		w.buf = e.Append(w.buf)
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteBatchFrame frames a whole batch as one columnar frame (see
// batchframe.go) built in the writer's reused buffer and handed to the
// underlying bufio writer with a single Write call. Batches larger than
// MaxBatchEvents are split across consecutive frames.
func (w *Writer) WriteBatchFrame(events []*Event) error {
	for len(events) > 0 {
		n := len(events)
		if n > MaxBatchEvents {
			n = MaxBatchEvents
		}
		chunk := events[:n]
		events = events[n:]
		w.buf = append(w.buf[:0], 0, 0, 0, 0)
		var err error
		w.buf, err = AppendBatchFrame(w.buf, chunk)
		if err != nil {
			return err
		}
		if len(w.buf)-4 > MaxBatchFrame {
			return fmt.Errorf("event: batch frame length %d exceeds maximum %d", len(w.buf)-4, MaxBatchFrame)
		}
		binary.LittleEndian.PutUint32(w.buf, uint32(len(w.buf)-4))
		if _, err := w.w.Write(w.buf); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered frames.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader unframes events from an io.Reader. It is not safe for
// concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns an unframing Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// ReadEvent reads one framed event. It returns io.EOF at a clean end
// of stream and io.ErrUnexpectedEOF on a truncated frame.
func (r *Reader) ReadEvent() (*Event, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > MaxPayload+headerSize+1024 {
		return nil, fmt.Errorf("event: frame length %d exceeds maximum", n)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	e, used, err := Unmarshal(buf)
	if err != nil {
		return nil, err
	}
	if used != n {
		return nil, fmt.Errorf("event: frame length %d does not match encoding %d", n, used)
	}
	return e, nil
}

// ReadFrame reads one frame of either framing generation: a columnar
// batch frame yields a pooled Batch of zero-copy views (the caller owns
// one reference and must Release it), a legacy frame yields a single
// decoded event. Exactly one of the two results is non-nil on success.
// It returns io.EOF at a clean end of stream and io.ErrUnexpectedEOF on
// a truncated frame.
func (r *Reader) ReadFrame() (*Event, *Batch, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		return nil, nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > MaxBatchFrame {
		return nil, nil, fmt.Errorf("event: frame length %d exceeds maximum", n)
	}
	// The frame is read straight into a pooled slab so a batch frame's
	// payloads need no further copy; a legacy frame just borrows the
	// slab for the duration of the decode.
	b := acquireBatch()
	buf := b.Frame(n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		b.Release()
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, err
	}
	if IsBatchFrame(buf) {
		if err := b.DecodeFrame(); err != nil {
			b.Release()
			return nil, nil, err
		}
		return nil, b, nil
	}
	defer b.Release()
	if n > MaxPayload+headerSize+1024 {
		return nil, nil, fmt.Errorf("event: frame length %d exceeds maximum", n)
	}
	e, used, err := Unmarshal(buf)
	if err != nil {
		return nil, nil, err
	}
	if used != n {
		return nil, nil, fmt.Errorf("event: frame length %d does not match encoding %d", n, used)
	}
	return e, nil, nil
}
