package event

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptmirror/internal/vclock"
)

// The columnar batch frame packs a whole send batch into one frame so
// the wire path pays one header and one buffered write per batch
// instead of per event, and so the decoder can hand out views that
// borrow from the frame buffer instead of allocating per event.
//
// After the transport's 4-byte length prefix the frame reads:
//
//	offset  size        field
//	0       2           marker 0xFFFF (Type 0xFFFF is never produced,
//	                    so legacy per-event frames self-discriminate
//	                    on their first two bytes)
//	2       1           version (currently 1)
//	3       1           flags (constant-column hoisting, see below)
//	4       4           count N (1 .. MaxBatchEvents)
//	8       ...         types      u16 ×1 if hoisted, else ×N
//	...     ...         flights    u32 ×N
//	...     ...         streams    u8  ×1 if hoisted, else ×N
//	...     ...         statuses   u8  ×1 if hoisted, else ×N
//	...     ...         seqs       u64 ×N
//	...     ...         coalesced  u32 ×1 if hoisted, else ×N
//	...     ...         ingress    u64 ×N
//	...     ...         VTs: uniform width → u16 K then N×K×u64;
//	                    else per event u16 len + len×u64
//	...     4×(N+1)     payload offsets (u32, non-decreasing,
//	                    offsets[0] = 0, offsets[N] = blob length)
//	...     offsets[N]  payload blob
//
// A flag bit set means the column is constant across the batch and is
// encoded once. ReadyAt/ForwardAt are trace stamps and never travel.
const (
	batchMarker  = 0xFFFF
	batchVersion = 1

	// MaxBatchEvents bounds the event count of one columnar frame.
	MaxBatchEvents = 1 << 16

	// MaxBatchFrame bounds the total encoded size of one columnar
	// frame accepted by the Reader (legacy frames stay bounded by the
	// tighter per-event limit).
	MaxBatchFrame = 64 << 20
)

const (
	flagTypeConst = 1 << iota
	flagStreamConst
	flagStatusConst
	flagCoalescedConst
	flagVTUniform

	flagsKnown = flagTypeConst | flagStreamConst | flagStatusConst |
		flagCoalescedConst | flagVTUniform
)

// IsBatchFrame reports whether buf starts with the columnar batch
// marker rather than a legacy per-event header.
func IsBatchFrame(buf []byte) bool {
	return len(buf) >= 2 && binary.LittleEndian.Uint16(buf) == batchMarker
}

// Ref is the reference-counting lifetime handle passed alongside
// borrowed event views. *Batch implements it for single-slab batches;
// the fan-out layer aggregates several slabs behind one Ref when a
// drained outbox merges batches. The convention is borrow-during-call:
// views handed to a function are valid until it returns, and a
// receiver keeping them longer must Retain first and Release when
// done.
type Ref interface {
	Retain()
	Release()
}

// maxRetainedSlab caps the frame buffer capacity a pooled Batch keeps
// between uses, so one oversized frame does not pin megabytes in the
// pool forever.
const maxRetainedSlab = 4 << 20

var (
	slabPool sync.Pool // of *Batch

	slabHits     atomic.Uint64
	slabMisses   atomic.Uint64
	slabRetained atomic.Uint64
)

// SlabPoolStats returns the cumulative slab pool counters: acquisitions
// served from the pool (hits), acquisitions that had to allocate
// (misses), and Retain calls extending a slab's lifetime (retained).
func SlabPoolStats() (hits, misses, retained uint64) {
	return slabHits.Load(), slabMisses.Load(), slabRetained.Load()
}

// Batch is a pooled, reference-counted slab holding one decoded (or
// shallow-copied) batch of events. Events points at views whose Payload
// and VT borrow from the slab's backing arrays; they stay valid until
// the last reference is released, at which point the slab returns to a
// sync.Pool for reuse.
//
// Ownership protocol: the function that acquires a Batch owns one
// reference. Passing the views to another component is
// borrow-during-call — the receiver must Retain before keeping any view
// past the call's return, and Release once done with it.
type Batch struct {
	// Events are the decoded views, valid until the last Release.
	Events []*Event

	refs   atomic.Int32
	buf    []byte   // raw frame bytes; payloads alias into this
	events []Event  // view structs
	vts    []uint64 // decoded timestamp words
	ptrs   []*Event // backing array for Events
}

// acquireBatch returns a Batch with one reference held by the caller.
func acquireBatch() *Batch {
	var b *Batch
	if v := slabPool.Get(); v != nil {
		b = v.(*Batch)
		slabHits.Add(1)
	} else {
		b = &Batch{}
		slabMisses.Add(1)
	}
	b.refs.Store(1)
	return b
}

// Retain adds a reference, extending the lifetime of every view in the
// batch until a matching Release.
func (b *Batch) Retain() {
	b.refs.Add(1)
	slabRetained.Add(1)
}

// Release drops one reference; the last release clears the views (so
// the pool retains no payload memory through dangling pointers) and
// returns the slab to the pool.
func (b *Batch) Release() {
	switch n := b.refs.Add(-1); {
	case n > 0:
	case n == 0:
		b.recycle()
	default:
		panic("event: Batch released more times than retained")
	}
}

func (b *Batch) recycle() {
	clear(b.events)
	clear(b.ptrs)
	b.Events = nil
	b.events = b.events[:0]
	b.ptrs = b.ptrs[:0]
	b.vts = b.vts[:0]
	if cap(b.buf) > maxRetainedSlab {
		b.buf = nil
	} else {
		b.buf = b.buf[:0]
	}
	slabPool.Put(b)
}

// Frame resizes the batch's backing buffer to n bytes and returns it
// for the caller to fill with one wire frame before DecodeFrame.
func (b *Batch) Frame(n int) []byte {
	if cap(b.buf) < n {
		b.buf = make([]byte, n)
	}
	b.buf = b.buf[:n]
	return b.buf
}

// growViews sizes the view arrays for n events; caller fills them.
func (b *Batch) growViews(n int) {
	if cap(b.events) < n {
		b.events = make([]Event, n)
	} else {
		b.events = b.events[:n]
	}
	if cap(b.ptrs) < n {
		b.ptrs = make([]*Event, n)
	} else {
		b.ptrs = b.ptrs[:n]
	}
}

// growVTs sizes the timestamp word slab; caller fills it.
func (b *Batch) growVTs(words int) {
	if cap(b.vts) < words {
		b.vts = make([]uint64, words)
	} else {
		b.vts = b.vts[:words]
	}
}

// ShallowBatch returns a pooled batch of shallow copies of src: each
// view aliases its source event's Payload and VT (both immutable once
// admitted) while carrying its own mutable header fields, so the
// mirror pipeline can filter, coalesce and re-stamp without cloning
// payload bytes. The caller owns one reference.
func ShallowBatch(src []*Event) *Batch {
	b := acquireBatch()
	b.growViews(len(src))
	for i, e := range src {
		v := &b.events[i]
		*v = *e
		b.ptrs[i] = v
	}
	b.Events = b.ptrs[:len(src)]
	return b
}

// AppendBatchFrame appends the columnar encoding of events to dst and
// returns the extended slice. The caller adds the transport's length
// prefix. Batches must hold 1..MaxBatchEvents events with payloads of
// at most MaxPayload bytes each.
func AppendBatchFrame(dst []byte, events []*Event) ([]byte, error) {
	n := len(events)
	if n == 0 {
		return dst, fmt.Errorf("event: empty batch frame")
	}
	if n > MaxBatchEvents {
		return dst, fmt.Errorf("event: batch of %d events exceeds maximum %d", n, MaxBatchEvents)
	}

	first := events[0]
	flags := uint8(flagTypeConst | flagStreamConst | flagStatusConst |
		flagCoalescedConst | flagVTUniform)
	vtWidth := len(first.VT)
	blob := 0
	for i, e := range events {
		if len(e.Payload) > MaxPayload {
			return dst, fmt.Errorf("event: payload length %d exceeds maximum %d", len(e.Payload), MaxPayload)
		}
		blob += len(e.Payload)
		if i == 0 {
			continue
		}
		if e.Type != first.Type {
			flags &^= flagTypeConst
		}
		if e.Stream != first.Stream {
			flags &^= flagStreamConst
		}
		if e.Status != first.Status {
			flags &^= flagStatusConst
		}
		if e.Coalesced != first.Coalesced {
			flags &^= flagCoalescedConst
		}
		if len(e.VT) != vtWidth {
			flags &^= flagVTUniform
		}
	}
	if blob > MaxBatchFrame {
		return dst, fmt.Errorf("event: batch payload blob %d exceeds maximum frame %d", blob, MaxBatchFrame)
	}

	dst = binary.LittleEndian.AppendUint16(dst, batchMarker)
	dst = append(dst, batchVersion, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))

	if flags&flagTypeConst != 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(first.Type))
	} else {
		for _, e := range events {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(e.Type))
		}
	}
	for _, e := range events {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Flight))
	}
	if flags&flagStreamConst != 0 {
		dst = append(dst, first.Stream)
	} else {
		for _, e := range events {
			dst = append(dst, e.Stream)
		}
	}
	if flags&flagStatusConst != 0 {
		dst = append(dst, byte(first.Status))
	} else {
		for _, e := range events {
			dst = append(dst, byte(e.Status))
		}
	}
	for _, e := range events {
		dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
	}
	if flags&flagCoalescedConst != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, first.Coalesced)
	} else {
		for _, e := range events {
			dst = binary.LittleEndian.AppendUint32(dst, e.Coalesced)
		}
	}
	for _, e := range events {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Ingress))
	}
	if flags&flagVTUniform != 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(vtWidth))
		for _, e := range events {
			for _, w := range e.VT {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
		}
	} else {
		for _, e := range events {
			dst = e.VT.AppendBinary(dst)
		}
	}
	off := uint32(0)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	for _, e := range events {
		off += uint32(len(e.Payload))
		dst = binary.LittleEndian.AppendUint32(dst, off)
	}
	for _, e := range events {
		dst = append(dst, e.Payload...)
	}
	return dst, nil
}

// DecodeFrame decodes the columnar frame previously loaded into the
// batch's buffer (via Frame) into pooled event views. Payloads alias
// the frame buffer; timestamps are decoded into the batch's word slab.
// The frame is validated strictly — any malformed length, flag or
// offset table fails the whole frame without reading past the buffer.
func (b *Batch) DecodeFrame() error {
	buf := b.buf
	if len(buf) < 8 {
		return fmt.Errorf("event: batch frame too short: %d bytes", len(buf))
	}
	if binary.LittleEndian.Uint16(buf) != batchMarker {
		return fmt.Errorf("event: not a batch frame")
	}
	if v := buf[2]; v != batchVersion {
		return fmt.Errorf("event: unsupported batch frame version %d", v)
	}
	flags := buf[3]
	if flags&^uint8(flagsKnown) != 0 {
		return fmt.Errorf("event: unknown batch frame flags %#x", flags)
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if n == 0 || n > MaxBatchEvents {
		return fmt.Errorf("event: batch frame count %d out of range", n)
	}
	off := 8
	need := func(k int) error {
		if len(buf)-off < k {
			return fmt.Errorf("event: truncated batch frame: need %d bytes at offset %d, have %d", k, off, len(buf)-off)
		}
		return nil
	}
	colWidth := func(flag uint8, unit int) int {
		if flags&flag != 0 {
			return unit
		}
		return unit * n
	}

	typesOff := off
	if err := need(colWidth(flagTypeConst, 2)); err != nil {
		return err
	}
	off += colWidth(flagTypeConst, 2)

	flightsOff := off
	if err := need(4 * n); err != nil {
		return err
	}
	off += 4 * n

	streamsOff := off
	if err := need(colWidth(flagStreamConst, 1)); err != nil {
		return err
	}
	off += colWidth(flagStreamConst, 1)

	statusesOff := off
	if err := need(colWidth(flagStatusConst, 1)); err != nil {
		return err
	}
	off += colWidth(flagStatusConst, 1)

	seqsOff := off
	if err := need(8 * n); err != nil {
		return err
	}
	off += 8 * n

	coalOff := off
	if err := need(colWidth(flagCoalescedConst, 4)); err != nil {
		return err
	}
	off += colWidth(flagCoalescedConst, 4)

	ingressOff := off
	if err := need(8 * n); err != nil {
		return err
	}
	off += 8 * n

	// Timestamp section: size the word slab exactly before decoding so
	// views never alias a slab that a later append would move.
	vtOff := off
	vtWidth := 0
	totalWords := 0
	if flags&flagVTUniform != 0 {
		if err := need(2); err != nil {
			return err
		}
		vtWidth = int(binary.LittleEndian.Uint16(buf[off:]))
		totalWords = vtWidth * n
		if err := need(2 + 8*totalWords); err != nil {
			return err
		}
		vtOff = off + 2
		off += 2 + 8*totalWords
	} else {
		scan := off
		for i := 0; i < n; i++ {
			if len(buf)-scan < 2 {
				return fmt.Errorf("event: truncated batch frame timestamp %d", i)
			}
			k := int(binary.LittleEndian.Uint16(buf[scan:]))
			scan += 2
			if len(buf)-scan < 8*k {
				return fmt.Errorf("event: truncated batch frame timestamp %d: need %d words", i, k)
			}
			scan += 8 * k
			totalWords += k
		}
		off = scan
	}

	offsetsOff := off
	if err := need(4 * (n + 1)); err != nil {
		return err
	}
	off += 4 * (n + 1)
	blobOff := off
	blobLen := len(buf) - blobOff
	if first := binary.LittleEndian.Uint32(buf[offsetsOff:]); first != 0 {
		return fmt.Errorf("event: batch frame offset table starts at %d, want 0", first)
	}
	prev := uint32(0)
	for i := 1; i <= n; i++ {
		o := binary.LittleEndian.Uint32(buf[offsetsOff+4*i:])
		if o < prev {
			return fmt.Errorf("event: batch frame offset table decreases at %d: %d after %d", i, o, prev)
		}
		if o-prev > MaxPayload {
			return fmt.Errorf("event: batch frame payload %d length %d exceeds maximum %d", i-1, o-prev, MaxPayload)
		}
		prev = o
	}
	if int(prev) != blobLen {
		return fmt.Errorf("event: batch frame blob length %d does not match offset table end %d", blobLen, prev)
	}

	b.growViews(n)
	b.growVTs(totalWords)
	vts := b.vts
	word := 0
	vtCur := vtOff
	pPrev := uint32(0)
	for i := 0; i < n; i++ {
		v := &b.events[i]
		*v = Event{}
		if flags&flagTypeConst != 0 {
			v.Type = Type(binary.LittleEndian.Uint16(buf[typesOff:]))
		} else {
			v.Type = Type(binary.LittleEndian.Uint16(buf[typesOff+2*i:]))
		}
		v.Flight = FlightID(binary.LittleEndian.Uint32(buf[flightsOff+4*i:]))
		if flags&flagStreamConst != 0 {
			v.Stream = buf[streamsOff]
		} else {
			v.Stream = buf[streamsOff+i]
		}
		if flags&flagStatusConst != 0 {
			v.Status = Status(buf[statusesOff])
		} else {
			v.Status = Status(buf[statusesOff+i])
		}
		v.Seq = binary.LittleEndian.Uint64(buf[seqsOff+8*i:])
		if flags&flagCoalescedConst != 0 {
			v.Coalesced = binary.LittleEndian.Uint32(buf[coalOff:])
		} else {
			v.Coalesced = binary.LittleEndian.Uint32(buf[coalOff+4*i:])
		}
		v.Ingress = int64(binary.LittleEndian.Uint64(buf[ingressOff+8*i:]))

		k := vtWidth
		if flags&flagVTUniform == 0 {
			k = int(binary.LittleEndian.Uint16(buf[vtCur:]))
			vtCur += 2
		}
		if k > 0 {
			dst := vts[word : word+k : word+k]
			for j := 0; j < k; j++ {
				dst[j] = binary.LittleEndian.Uint64(buf[vtCur+8*j:])
			}
			v.VT = vclock.VC(dst)
			word += k
			vtCur += 8 * k
		}

		pEnd := binary.LittleEndian.Uint32(buf[offsetsOff+4*(i+1):])
		if pEnd > pPrev {
			lo, hi := blobOff+int(pPrev), blobOff+int(pEnd)
			v.Payload = buf[lo:hi:hi]
		}
		pPrev = pEnd
		b.ptrs[i] = v
	}
	b.Events = b.ptrs[:n]
	return nil
}

// ParseBatchFrame copies data into a pooled batch and decodes it,
// returning the batch (one reference owned by the caller) or the decode
// error. It is the convenience entry for tests and fuzzing; the wire
// path uses Frame + DecodeFrame to avoid the copy.
func ParseBatchFrame(data []byte) (*Batch, error) {
	b := acquireBatch()
	copy(b.Frame(len(data)), data)
	if err := b.DecodeFrame(); err != nil {
		b.Release()
		return nil, err
	}
	return b, nil
}

// BatchPayloadBytes sums the payload sizes of a batch — the blob size
// its columnar frame will carry.
func BatchPayloadBytes(events []*Event) int {
	total := 0
	for _, e := range events {
		total += len(e.Payload)
	}
	return total
}
