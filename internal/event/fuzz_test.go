package event

import (
	"bytes"
	"testing"

	"adaptmirror/internal/vclock"
)

// FuzzUnmarshal hardens the wire decoder against malformed frames:
// it must never panic and never over-read, and any event it accepts
// must re-encode to bytes it accepts again.
func FuzzUnmarshal(f *testing.F) {
	f.Add(sampleEvent().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	e := NewPosition(7, 9, 1.5, -2.5, 30000, 300)
	e.VT = vclock.VC{4, 5, 6}
	f.Add(e.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := ev.Marshal()
		ev2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of accepted event failed: %v", err)
		}
		if !eventsEqual(ev, ev2) {
			t.Fatalf("re-decode mismatch: %s vs %s", ev, ev2)
		}
	})
}

// FuzzCodecCorrupt models a corrupting link rather than a random byte
// source: it starts from a stream of well-formed frames (or a
// fuzzer-supplied stream), flips one byte and truncates, then runs
// both decoders over the damage. Neither may panic or over-read, any
// frame still accepted must round-trip exactly, and a frame whose
// length prefix survived but whose body was damaged must come out as
// either a clean decode or a clean error — never a half-initialized
// event.
func FuzzCodecCorrupt(f *testing.F) {
	valid := validStream()
	f.Add([]byte(nil), uint32(0), byte(0), uint32(0))
	f.Add([]byte(nil), uint32(3), byte(0x80), uint32(0))
	f.Add([]byte(nil), uint32(40), byte(0xFF), uint32(17))
	f.Add(valid, uint32(7), byte(1), uint32(0))
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4}, uint32(0), byte(0), uint32(2))

	f.Fuzz(func(t *testing.T, stream []byte, pos uint32, mask byte, cut uint32) {
		if len(stream) == 0 {
			stream = validStream()
		}
		data := append([]byte(nil), stream...)
		data[int(pos)%len(data)] ^= mask
		if cut > 0 {
			data = data[:len(data)-int(cut)%len(data)]
		}

		// Contiguous decode path (batch buffers).
		rest := data
		for len(rest) > 0 {
			ev, n, err := Unmarshal(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("consumed %d of %d bytes", n, len(rest))
			}
			roundTrip(t, ev)
			rest = rest[n:]
		}

		// Framed stream path (TCP links).
		r := NewReader(bytes.NewReader(data))
		for i := 0; i <= len(data); i++ {
			ev, err := r.ReadEvent()
			if err != nil {
				break
			}
			roundTrip(t, ev)
		}
	})
}

// validStream frames a representative event mix the mirroring links
// actually carry: positions, a status change, and checkpoint control
// traffic with VT and payload.
func validStream() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pos := NewPosition(7, 9, 1.5, -2.5, 30000, 64)
	pos.VT = vclock.VC{41, 7}
	st := NewStatus(3, 10, StatusLanded, 48)
	st.VT = vclock.VC{42, 7}
	chk := NewControl(TypeChkpt, vclock.VC{42, 7})
	chk.Seq = 5
	rep := NewControl(TypeChkptReply, vclock.VC{40, 6})
	rep.Seq = 5
	rep.Stream = 1
	rep.Payload = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	w.WriteBatch([]*Event{pos, st, chk, rep})
	w.Flush()
	return buf.Bytes()
}

// roundTrip asserts an accepted event re-encodes to bytes that decode
// back to the same event.
func roundTrip(t *testing.T, ev *Event) {
	t.Helper()
	re := ev.Marshal()
	ev2, n, err := Unmarshal(re)
	if err != nil {
		t.Fatalf("re-decode of accepted event failed: %v", err)
	}
	if n != len(re) {
		t.Fatalf("re-decode consumed %d of %d bytes", n, len(re))
	}
	if !eventsEqual(ev, ev2) {
		t.Fatalf("re-decode mismatch: %s vs %s", ev, ev2)
	}
}

// FuzzReader hardens the stream unframer: arbitrary byte streams must
// produce clean errors, never panics, and decoded events must
// round-trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteEvent(sampleEvent())
	w.WriteEvent(NewPosition(1, 2, 3, 4, 5, 64))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			ev, err := r.ReadEvent()
			if err != nil {
				return
			}
			if _, _, err := Unmarshal(ev.Marshal()); err != nil {
				t.Fatalf("accepted event does not round-trip: %v", err)
			}
		}
	})
}
