package event

import (
	"bytes"
	"testing"

	"adaptmirror/internal/vclock"
)

// FuzzUnmarshal hardens the wire decoder against malformed frames:
// it must never panic and never over-read, and any event it accepts
// must re-encode to bytes it accepts again.
func FuzzUnmarshal(f *testing.F) {
	f.Add(sampleEvent().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	e := NewPosition(7, 9, 1.5, -2.5, 30000, 300)
	e.VT = vclock.VC{4, 5, 6}
	f.Add(e.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := ev.Marshal()
		ev2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of accepted event failed: %v", err)
		}
		if !eventsEqual(ev, ev2) {
			t.Fatalf("re-decode mismatch: %s vs %s", ev, ev2)
		}
	})
}

// FuzzReader hardens the stream unframer: arbitrary byte streams must
// produce clean errors, never panics, and decoded events must
// round-trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteEvent(sampleEvent())
	w.WriteEvent(NewPosition(1, 2, 3, 4, 5, 64))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			ev, err := r.ReadEvent()
			if err != nil {
				return
			}
			if _, _, err := Unmarshal(ev.Marshal()); err != nil {
				t.Fatalf("accepted event does not round-trip: %v", err)
			}
		}
	})
}
