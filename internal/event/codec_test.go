package event

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptmirror/internal/vclock"
)

func sampleEvent() *Event {
	return &Event{
		Type:      TypeDeltaStatus,
		Flight:    1234,
		Stream:    1,
		Seq:       987654321,
		Status:    StatusLanded,
		Coalesced: 3,
		VT:        vclock.VC{10, 20},
		Ingress:   1700000000000000000,
		Payload:   []byte("hello, mirror"),
	}
}

func eventsEqual(a, b *Event) bool {
	if a.Type != b.Type || a.Flight != b.Flight || a.Stream != b.Stream ||
		a.Seq != b.Seq || a.Status != b.Status || a.Coalesced != b.Coalesced ||
		a.Ingress != b.Ingress {
		return false
	}
	if a.VT.Compare(b.VT) != vclock.Equal {
		return false
	}
	return bytes.Equal(a.Payload, b.Payload)
}

func TestMarshalRoundTrip(t *testing.T) {
	e := sampleEvent()
	b := e.Marshal()
	if len(b) != e.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(b), e.EncodedSize())
	}
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if !eventsEqual(e, got) {
		t.Fatalf("round trip mismatch:\n in: %s\nout: %s", e, got)
	}
}

func TestMarshalRoundTripEmpty(t *testing.T) {
	e := &Event{Type: TypeChkpt}
	got, _, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !eventsEqual(e, got) {
		t.Fatalf("round trip mismatch: %s vs %s", e, got)
	}
	if got.Payload != nil {
		t.Fatal("empty payload must decode as nil")
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(ty uint16, fl uint32, stream uint8, seq uint64, st uint8, co uint32, ing int64, vt []uint64, payload []byte) bool {
		if len(vt) > 256 {
			vt = vt[:256]
		}
		e := &Event{
			Type: Type(ty), Flight: FlightID(fl), Stream: stream, Seq: seq,
			Status: Status(st), Coalesced: co, Ingress: ing,
			VT: vclock.VC(vt), Payload: payload,
		}
		got, n, err := Unmarshal(e.Marshal())
		if err != nil {
			return false
		}
		if n != e.EncodedSize() {
			return false
		}
		if len(payload) == 0 {
			// nil and empty payloads are equivalent on the wire.
			return eventsEqual(&Event{Type: e.Type, Flight: e.Flight, Stream: e.Stream,
				Seq: e.Seq, Status: e.Status, Coalesced: e.Coalesced, Ingress: e.Ingress,
				VT: e.VT}, got) || eventsEqual(e, got)
		}
		return eventsEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	e := sampleEvent()
	full := e.Marshal()
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(full); n++ {
		if _, _, err := Unmarshal(full[:n]); err == nil {
			t.Fatalf("prefix of %d bytes unexpectedly decoded", n)
		}
	}
}

func TestUnmarshalRejectsHugePayload(t *testing.T) {
	e := &Event{Type: TypeFAAPosition}
	b := e.Marshal()
	// Corrupt the payload-length field (last 4 bytes) to a huge value.
	b[len(b)-4] = 0xFF
	b[len(b)-3] = 0xFF
	b[len(b)-2] = 0xFF
	b[len(b)-1] = 0x7F
	if _, _, err := Unmarshal(b); err == nil {
		t.Fatal("want error for oversized payload length")
	}
}

func TestUnmarshalTrailingBytesIgnored(t *testing.T) {
	e := sampleEvent()
	b := append(e.Marshal(), 1, 2, 3)
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b)-3 {
		t.Fatalf("consumed %d, want %d", n, len(b)-3)
	}
	if !eventsEqual(e, got) {
		t.Fatal("mismatch with trailing bytes present")
	}
}

func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	e := sampleEvent()
	b := e.Marshal()
	got, _, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xFF
	}
	if !bytes.Equal(got.Payload, e.Payload) {
		t.Fatal("decoded payload must not alias the input buffer")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := rand.New(rand.NewSource(7))
	var sent []*Event
	for i := 0; i < 100; i++ {
		e := NewPosition(FlightID(rng.Intn(50)), uint64(i), rng.Float64(), rng.Float64(), rng.Float64(), rng.Intn(2048))
		e.VT = vclock.New(2).Tick(0)
		sent = append(sent, e)
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range sent {
		got, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !eventsEqual(want, got) {
			t.Fatalf("event %d mismatch: %s vs %s", i, want, got)
		}
	}
	if _, err := r.ReadEvent(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestWriteBatchMatchesPerEvent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var events []*Event
	for i := 0; i < 50; i++ {
		e := NewPosition(FlightID(rng.Intn(50)), uint64(i), rng.Float64(), rng.Float64(), rng.Float64(), rng.Intn(2048))
		e.VT = vclock.New(2).Tick(0)
		events = append(events, e)
	}

	var single, batched bytes.Buffer
	ws := NewWriter(&single)
	for _, e := range events {
		if err := ws.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	wb := NewWriter(&batched)
	if err := wb.WriteBatch(nil); err != nil { // no-op
		t.Fatal(err)
	}
	if err := wb.WriteBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single.Bytes(), batched.Bytes()) {
		t.Fatal("WriteBatch encoding differs from per-event WriteEvent")
	}

	r := NewReader(&batched)
	for i, want := range events {
		got, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !eventsEqual(want, got) {
			t.Fatalf("event %d mismatch: %s vs %s", i, want, got)
		}
	}
	if _, err := r.ReadEvent(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvent(sampleEvent()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.ReadEvent(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0xFF, 0x7F}
	r := NewReader(bytes.NewReader(b))
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("want error for oversized frame header")
	}
}

func TestReaderFrameLengthMismatch(t *testing.T) {
	e := sampleEvent()
	enc := e.Marshal()
	var buf bytes.Buffer
	// Frame claims 3 extra bytes that are actually junk.
	lenPrefix := []byte{byte(len(enc) + 3), 0, 0, 0}
	buf.Write(lenPrefix)
	buf.Write(enc)
	buf.Write([]byte{9, 9, 9})
	r := NewReader(&buf)
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("want error on frame/encoding length mismatch")
	}
}

func BenchmarkMarshal(b *testing.B) {
	for _, size := range []int{64, 1024, 8192} {
		e := NewPosition(1, 1, 1, 2, 3, size)
		e.VT = vclock.VC{1, 2}
		b.Run(byteLabel(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			buf := make([]byte, 0, e.EncodedSize())
			for i := 0; i < b.N; i++ {
				buf = e.Append(buf[:0])
			}
		})
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	for _, size := range []int{64, 1024, 8192} {
		e := NewPosition(1, 1, 1, 2, 3, size)
		e.VT = vclock.VC{1, 2}
		enc := e.Marshal()
		b.Run(byteLabel(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, _, err := Unmarshal(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteLabel(n int) string { return fmt.Sprintf("%dB", n) }
