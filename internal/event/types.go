// Package event defines the application-level update events flowing
// through the Operational Information System, the control events used by
// the mirroring framework, and a compact binary codec for both.
//
// Two kinds of data streams exist in the OIS the paper models (Section
// 3.3): FAA flight-position updates and Delta internal flight-status
// updates (landed, taxiing, at gate, passenger and baggage information).
// Control events (CHKPT, CHKPT_REP, COMMIT, ADAPT) travel on separate
// control channels and drive checkpointing and runtime adaptation.
package event

import "fmt"

// Type identifies the kind of an event. Data types and control types
// share one space so a single codec handles both channels.
type Type uint16

// Data event types.
const (
	TypeInvalid Type = iota

	// TypeFAAPosition is a flight position report derived from FAA
	// radar data: high-rate, overwritable (a later position for the
	// same flight supersedes earlier ones).
	TypeFAAPosition

	// TypeDeltaStatus carries a flight lifecycle status change from
	// Delta's internal systems (see Status).
	TypeDeltaStatus

	// TypeGateReader is raised by an airport gate reader when a
	// passenger boards.
	TypeGateReader

	// TypeCrewUpdate reports a change in crew disposition.
	TypeCrewUpdate

	// TypeBaggage reports a baggage-handling update.
	TypeBaggage

	// TypeWeather carries weather-tracking data; inclement-weather
	// operation increases its rate and precision (paper Section 1,
	// Case 2).
	TypeWeather
)

// Derived event types produced by the Event Derivation Engine or by the
// mirroring layer itself.
const (
	// TypeAllBoarded is derived by the EDE when gate-reader events
	// show every passenger of a flight has boarded.
	TypeAllBoarded Type = iota + 64

	// TypeFlightArrived is the complex event collapsing the
	// 'flight landed' + 'flight at runway' + 'flight at gate'
	// sequence (paper Section 3.2.1).
	TypeFlightArrived

	// TypeCoalesced wraps a batch of events coalesced by the sending
	// task before mirroring; Coalesced holds the count.
	TypeCoalesced

	// TypeStateUpdate is an output event carrying an operational-state
	// update from a main unit (EDE) to its clients.
	TypeStateUpdate

	// TypeRecoveryState carries a serialized EDE state snapshot from the
	// central site to a recovering mirror. Its VT is the consistency cut
	// the snapshot corresponds to: every event with VT at or before the
	// cut is reflected in the payload, so the mirror installs the
	// snapshot and applies only later events.
	TypeRecoveryState

	// TypeBarrier is a process-local sentinel used by a main unit to run
	// a closure at an exact point of its event stream. It never crosses
	// a link and is never serialized.
	TypeBarrier

	// TypeStateDelta carries a framed per-flight field-level state
	// delta (internal/statedelta) in place of the raw data event(s) it
	// summarizes. The central sending task emits them when the
	// field-delta mirroring regime is installed; mirror EDEs apply them
	// incrementally through ede.DeltaRule.
	TypeStateDelta

	// TypeRecoveryDelta is the incremental counterpart of
	// TypeRecoveryState: its payload is a framed statedelta stream
	// holding the absolute state, at the event's VT (the consistency
	// cut), of exactly the flights that mutated since the rejoiner's
	// committed cut. Installing it overwrites only those flights, so a
	// lagging mirror rejoins without shipping the full snapshot.
	TypeRecoveryDelta
)

// Control event types (exchanged on control channels).
const (
	// TypeChkpt is the coordinator's CHKPT proposal carrying a
	// candidate commit timestamp.
	TypeChkpt Type = iota + 128

	// TypeChkptReply is a participant's CHKPT_REP carrying the highest
	// timestamp its main unit has safely processed.
	TypeChkptReply

	// TypeCommit is the coordinator's COMMIT for the agreed timestamp.
	TypeCommit

	// TypeAdapt carries an adaptation directive (piggybacked on
	// checkpoint traffic in the paper; also valid standalone).
	TypeAdapt

	// TypeHello announces a site joining the mirror group.
	TypeHello

	// TypeRecoveryRequest asks the central site to replay backup-queue
	// events to a rejoining mirror (future-work extension).
	TypeRecoveryRequest

	// TypeTakeover announces a promoted central over the wire: after a
	// standby (or election winner) adopts the central role, it
	// broadcasts this event on every survivor's control downlink until
	// the survivor rejoins. Seq carries the promotion epoch; the
	// payload is a core.TakeoverAnnouncement (new ctrl.up address plus
	// the adopted state's processed watermark for rejoin-cut
	// negotiation).
	TypeTakeover

	// TypeElect is a central-election claim exchanged between mirrors
	// when the central dies and no standby was designated. Seq carries
	// the claimed epoch; the payload is a core.ElectionClaim (claimant
	// site and committed cut — highest cut wins, ties break to the
	// lowest site ID).
	TypeElect
)

// String returns the conventional name of the event type.
func (t Type) String() string {
	switch t {
	case TypeInvalid:
		return "invalid"
	case TypeFAAPosition:
		return "faa-position"
	case TypeDeltaStatus:
		return "delta-status"
	case TypeGateReader:
		return "gate-reader"
	case TypeCrewUpdate:
		return "crew-update"
	case TypeBaggage:
		return "baggage"
	case TypeWeather:
		return "weather"
	case TypeAllBoarded:
		return "all-boarded"
	case TypeFlightArrived:
		return "flight-arrived"
	case TypeCoalesced:
		return "coalesced"
	case TypeStateUpdate:
		return "state-update"
	case TypeRecoveryState:
		return "recovery-state"
	case TypeBarrier:
		return "barrier"
	case TypeStateDelta:
		return "state-delta"
	case TypeRecoveryDelta:
		return "recovery-delta"
	case TypeChkpt:
		return "CHKPT"
	case TypeChkptReply:
		return "CHKPT_REP"
	case TypeCommit:
		return "COMMIT"
	case TypeAdapt:
		return "ADAPT"
	case TypeHello:
		return "HELLO"
	case TypeRecoveryRequest:
		return "RECOVERY_REQ"
	case TypeTakeover:
		return "TAKEOVER"
	case TypeElect:
		return "ELECT"
	default:
		return fmt.Sprintf("type(%d)", uint16(t))
	}
}

// IsControl reports whether t is a framework control event.
func (t Type) IsControl() bool { return t >= TypeChkpt }

// IsData reports whether t is an application data or derived event.
func (t Type) IsData() bool { return t != TypeInvalid && t < TypeChkpt }

// Status enumerates the flight lifecycle states carried by
// TypeDeltaStatus events. Order matters: the lifecycle advances
// monotonically, which the EDE uses to reject stale transitions.
type Status uint8

// Flight lifecycle states.
const (
	StatusUnknown Status = iota
	StatusScheduled
	StatusBoarding
	StatusBoarded
	StatusDeparted
	StatusEnRoute
	StatusLanded
	StatusAtRunway
	StatusAtGate
	StatusArrived
)

// String returns the human-readable name of the status.
func (s Status) String() string {
	switch s {
	case StatusUnknown:
		return "unknown"
	case StatusScheduled:
		return "scheduled"
	case StatusBoarding:
		return "boarding"
	case StatusBoarded:
		return "boarded"
	case StatusDeparted:
		return "departed"
	case StatusEnRoute:
		return "en-route"
	case StatusLanded:
		return "landed"
	case StatusAtRunway:
		return "at-runway"
	case StatusAtGate:
		return "at-gate"
	case StatusArrived:
		return "arrived"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Terminal reports whether s ends the tracked portion of a flight's
// lifecycle: once a flight has landed, further FAA position updates for
// it are discardable (the set_complex_seq rule from the paper).
func (s Status) Terminal() bool { return s >= StatusLanded }
