package adapt

import (
	"testing"

	"adaptmirror/internal/core"
)

// TestNeverRevertHysteresisRegression pins the hysteresis clamp: a
// configuration with Secondary >= Primary used to push the below-band
// floor to zero or negative, which no sample can ever be strictly
// below — the degraded regime became permanent. The secondary is now
// clamped into [0, primary] and the floor to at least 1, so the
// regime reverts once the variable drains to zero.
func TestNeverRevertHysteresisRegression(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetRevertAfter(1)
	c.SetMonitorValues(VarPending, 10, 50) // secondary clamps to 10, floor to 1
	if !c.Observe(core.Sample{Pending: 10}) {
		t.Fatal("primary threshold must engage")
	}
	if c.Observe(core.Sample{Pending: 1}) {
		t.Fatal("value at the clamped floor must not revert")
	}
	if !c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("fully drained variable must revert even with secondary >= primary")
	}
	if c.Engaged() {
		t.Fatal("still engaged after drain")
	}
}

// TestReentrantApplyCallback pins the deadlock fix: the apply
// callback used to run with c.mu held, so a callback that consulted
// the controller — the natural thing for an apply hook that logs or
// exports state — deadlocked. Apply now runs outside the lock.
func TestReentrantApplyCallback(t *testing.T) {
	var c *Controller
	var seen []uint8
	done := make(chan struct{}, 8)
	c = NewController(base, degr, func(r Regime) {
		if c == nil {
			// Constructor-time baseline install: controller not yet
			// published to this closure.
			return
		}
		// Re-enter the controller from inside the callback.
		_ = c.Engaged()
		_, _ = c.Transitions()
		seen = append(seen, c.Current().ID)
		// A non-transitioning observation must also be safe.
		c.Observe(core.Sample{Pending: 70})
		done <- struct{}{}
	})
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(1)

	c.Observe(core.Sample{Pending: 150}) // engage → callback re-enters
	c.Observe(core.Sample{Pending: 0})   // revert → callback re-enters
	if len(done) != 2 {
		t.Fatalf("apply callback ran %d times, want 2", len(done))
	}
	if len(seen) != 2 || seen[0] != degr.ID || seen[1] != base.ID {
		t.Fatalf("callback observed regimes %v, want [2 1]", seen)
	}
}

// TestPerSiteRevertRequiresAllCalm is the tentpole's revert rule: any
// single site crossing primary engages, but reverting requires every
// tracked live site's latest sample to sit below the band — a calm
// central must not revert the cluster while a mirror still reports
// overload.
func TestPerSiteRevertRequiresAllCalm(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(2)

	if !c.ObserveSite(2, core.Sample{Pending: 150}) {
		t.Fatal("hot mirror must engage")
	}
	// The central reports calm over and over; mirror 2's latest sample
	// is still hot, so the streak never starts.
	for i := 0; i < 10; i++ {
		if c.Observe(core.Sample{Pending: 0}) {
			t.Fatal("reverted while a mirror's latest sample is over the band")
		}
	}
	// Mirror 2 calms down: now calm observations count.
	if c.ObserveSite(2, core.Sample{Pending: 0}) {
		t.Fatal("reverted before the debounce elapsed")
	}
	if !c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("all sites calm for revertAfter observations must revert")
	}
	if c.Engaged() {
		t.Fatal("still engaged after per-site revert")
	}
}

// TestEvictSiteUnpinsRevert: a departed mirror's stale overload report
// must not hold the degraded regime forever — membership eviction
// drops its row from the revert decision.
func TestEvictSiteUnpinsRevert(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(1)

	c.ObserveSite(0, core.Sample{Pending: 150}) // engage
	if c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("reverted over a live hot site")
	}
	c.EvictSite(0)
	if got := c.Sites(); got != 1 {
		t.Fatalf("Sites = %d after eviction, want 1 (central)", got)
	}
	if !c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("eviction must unpin the revert decision")
	}
}

// globalStreakTransitions replays the pre-fix revert rule — one global
// calm streak over the interleaved sample stream, with no per-site
// table — against the same Figure-8-style ramp the per-site test
// drives. It exists to document, with machine-checked numbers, the
// flapping the per-site rule eliminates (see EXPERIMENTS.md).
func globalStreakTransitions(rounds, sites, revertAfter int, hot func(round, site int) bool) (engages, reverts int) {
	engaged, streak := false, 0
	for r := 0; r < rounds; r++ {
		for s := 0; s < sites; s++ {
			if hot(r, s) {
				if !engaged {
					engaged = true
					engages++
				}
				streak = 0
				continue
			}
			if !engaged {
				continue
			}
			streak++
			if streak >= revertAfter {
				engaged = false
				reverts++
				streak = 0
			}
		}
	}
	return engages, reverts
}

// TestFig8RampNoFlapping drives the paper's Figure-8 shape — one site
// pinned over primary for a sustained overload window, everyone else
// calm — through the per-site controller and asserts the degraded
// regime holds for the whole window with exactly one engage, then
// reverts within revertAfter observations of the overload ending. The
// old global-streak rule flaps once per round on the same input; the
// reference replay quantifies it.
func TestFig8RampNoFlapping(t *testing.T) {
	const (
		sites         = 9 // central + 8 mirrors, one of them hot
		overloadRound = 30
		calmRounds    = 4
		revertAfter   = 8
	)
	hot := func(round, site int) bool { return round < overloadRound && site == 0 }

	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(revertAfter)

	observe := func(round int) {
		for s := 0; s < sites; s++ {
			p := 0
			if hot(round, s) {
				p = 150
			}
			c.ObserveSite(s, core.Sample{Pending: p})
		}
	}

	for r := 0; r < overloadRound; r++ {
		observe(r)
		if !c.Engaged() {
			t.Fatalf("round %d: degraded regime not held through the overload window", r)
		}
	}
	eng, rev := c.Transitions()
	if eng != 1 || rev != 0 {
		t.Fatalf("overload window transitions = %d/%d, want 1/0", eng, rev)
	}

	// Overload ends: all sites calm. The hot site's row updates on its
	// first calm report, so the very first all-calm round accumulates
	// sites-1 >= revertAfter calm observations and reverts.
	for r := overloadRound; r < overloadRound+calmRounds; r++ {
		observe(r)
	}
	eng, rev = c.Transitions()
	if eng != 1 || rev != 1 {
		t.Fatalf("post-calm transitions = %d/%d, want 1/1", eng, rev)
	}
	if c.Engaged() {
		t.Fatal("still engaged after the ramp")
	}

	// The pre-fix rule on the identical stream: one revert per overload
	// round (8 calm samples follow each hot one), one re-engage per
	// round — the flapping EXPERIMENTS.md tabulates.
	gEng, gRev := globalStreakTransitions(overloadRound+calmRounds, sites, revertAfter, hot)
	if gEng != overloadRound || gRev != overloadRound {
		t.Fatalf("global-streak replay = %d/%d transitions, want %d/%d (update EXPERIMENTS.md if the ramp changed)",
			gEng, gRev, overloadRound, overloadRound)
	}
}
