// Mirror-side directive application. The central controller decides
// regime transitions; each mirror runs an Applier that consumes the
// directives piggybacked on CHKPT control events (and re-delivered
// standalone or inside recovery snapshots), keeps a round watermark so
// duplicated or reordered control traffic cannot install a stale
// regime, and installs the mirror-relevant parameters locally.
package adapt

import (
	"sync"

	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

// Applier applies versioned regime directives at a mirror site.
type Applier struct {
	mu        sync.Mutex
	round     uint64 // watermark: highest round whose directive was accepted
	cur       Regime
	have      bool
	installed uint64
	stale     uint64
	invalid   uint64

	// install runs outside mu so a callback that re-enters Current()
	// or Stats() cannot deadlock; appliedRound keeps racing deliveries
	// in round order at the callback boundary.
	installMu    sync.Mutex
	install      func(round uint64, r Regime)
	appliedRound uint64
}

// NewApplier returns an applier invoking install (may be nil) for each
// newly accepted directive.
func NewApplier(install func(round uint64, r Regime)) *Applier {
	return &Applier{install: install}
}

// SetInstall installs (or replaces) the install callback and, when a
// directive has already been accepted, immediately replays the current
// one through it. This lets the applier be wired into a mirror site's
// config before the site object it installs into exists.
func (a *Applier) SetInstall(f func(round uint64, r Regime)) {
	a.installMu.Lock()
	defer a.installMu.Unlock()
	a.install = f
	if f == nil {
		return
	}
	a.mu.Lock()
	round, reg, have := a.round, a.cur, a.have
	a.mu.Unlock()
	if have {
		if round > a.appliedRound {
			a.appliedRound = round
		}
		f(round, reg)
	}
}

// Apply decodes and applies one directive stamped with its checkpoint
// round. It returns true when the directive was newly installed, false
// when it was rejected as malformed (counted in invalid) or as a
// duplicate / out-of-order stale delivery (counted in stale). Round 0
// is never valid: coordinator rounds start at 1.
func (a *Applier) Apply(round uint64, payload []byte) bool {
	reg, err := DecodeRegime(payload)
	if err != nil {
		a.mu.Lock()
		a.invalid++
		a.mu.Unlock()
		return false
	}
	a.mu.Lock()
	if round <= a.round {
		a.stale++
		a.mu.Unlock()
		return false
	}
	a.round = round
	a.cur = reg
	a.have = true
	a.installed++
	a.mu.Unlock()

	a.installMu.Lock()
	if round > a.appliedRound {
		a.appliedRound = round
		if a.install != nil {
			a.install(round, reg)
		}
	}
	a.installMu.Unlock()
	return true
}

// Current returns the installed regime, the round that carried it, and
// whether any directive has been accepted yet.
func (a *Applier) Current() (Regime, uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur, a.round, a.have
}

// Stats returns the applier's acceptance counters.
func (a *Applier) Stats() (installed, stale, invalid uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.installed, a.stale, a.invalid
}

// RegisterMetrics exposes the applier's regime gauge and discard
// counters on r under the given site label.
func (a *Applier) RegisterMetrics(r *obs.Registry, site string) {
	if r == nil {
		return
	}
	l := obs.L("site", site)
	r.Describe("adapt_regime_id", "ID of the mirroring regime installed at this site.")
	r.GaugeFunc("adapt_regime_id", func() float64 {
		reg, _, ok := a.Current()
		if !ok {
			return 0
		}
		return float64(reg.ID)
	}, l)
	r.Describe("adapt_directive_stale_total", "Regime directives discarded as duplicate or out-of-order.")
	r.CounterFunc("adapt_directive_stale_total", func() float64 {
		_, stale, _ := a.Stats()
		return float64(stale)
	}, l)
	r.Describe("adapt_directive_invalid_total", "Regime directives rejected as truncated or corrupted.")
	r.CounterFunc("adapt_directive_invalid_total", func() float64 {
		_, _, invalid := a.Stats()
		return float64(invalid)
	}, l)
	r.Describe("adapt_directives_installed_total", "Regime directives newly installed at this site.")
	r.CounterFunc("adapt_directives_installed_total", func() float64 {
		installed, _, _ := a.Stats()
		return float64(installed)
	}, l)
}

// InstallMirrorRegime returns the standard install callback for a
// mirror site: it records the regime ID and the mirror-relevant
// parameters (the configuration a promoted replacement central would
// start from) on the site.
func InstallMirrorRegime(m *core.MirrorSite) func(uint64, Regime) {
	return func(_ uint64, r Regime) {
		m.SetRegime(r.ID, core.Params{
			Coalesce:       r.Coalesce,
			MaxCoalesce:    r.MaxCoalesce,
			CheckpointFreq: r.CheckpointFreq,
		}, r.OverwriteLen)
	}
}
