package adapt

import (
	"bytes"
	"testing"
)

// FuzzRegimeDirective throws arbitrary byte strings and round stamps —
// including bit-flipped and truncated encodings of real directives,
// and out-of-order replays — at the mirror-side applier. Whatever the
// input, the applier must hold its contract: malformed payloads never
// install, round 0 never installs, a duplicate or earlier round never
// installs (and never re-invokes the install callback), and anything
// that does install round-trips through the codec canonically.
func FuzzRegimeDirective(f *testing.F) {
	valid := EncodeRegime(Regime{ID: 2, Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100})
	f.Add(uint64(1), valid)
	f.Add(uint64(0), valid)
	f.Add(uint64(7), []byte{})
	f.Add(uint64(3), valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[2] ^= 0x40
	f.Add(uint64(9), flipped)

	f.Fuzz(func(t *testing.T, round uint64, data []byte) {
		var installs []uint64
		a := NewApplier(func(r uint64, _ Regime) { installs = append(installs, r) })

		ok := a.Apply(round, data)
		if a.Apply(round, data) {
			t.Fatalf("duplicate delivery of round %d installed", round)
		}
		if round > 0 && a.Apply(round-1, data) {
			t.Fatalf("out-of-order round %d installed after %d", round-1, round)
		}

		installed, _, _ := a.Stats()
		if installed != uint64(len(installs)) {
			t.Fatalf("installed counter %d != callback invocations %d", installed, len(installs))
		}
		if !ok {
			if installed != 0 {
				t.Fatalf("rejected delivery installed %d directives", installed)
			}
			if _, _, have := a.Current(); have {
				t.Fatal("rejected delivery left a directive behind")
			}
			return
		}
		if round == 0 {
			t.Fatal("round 0 installed")
		}
		if installed != 1 || installs[0] != round {
			t.Fatalf("install rounds = %v, want [%d]", installs, round)
		}
		reg, wm, have := a.Current()
		if !have || wm != round {
			t.Fatalf("Current watermark %d have=%v, want %d", wm, have, round)
		}
		// Canonical round-trip: an accepted directive re-encodes to a
		// decodable image of the same regime.
		enc := EncodeRegime(reg)
		dec, err := DecodeRegime(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted directive rejected: %v", err)
		}
		if dec != reg {
			t.Fatalf("round-trip mismatch: %+v vs %+v", dec, reg)
		}
		if !bytes.Equal(enc, EncodeRegime(dec)) {
			t.Fatal("encoding not canonical")
		}
	})
}
