package adapt

import (
	"testing"

	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

// TestWireBytesEngagesFieldDeltas drives the bandwidth-adaptation path
// end to end inside the controller: a saturated link (WireBytes over
// primary) must engage exactly once, the per-variable regime override
// must select the field-delta regime rather than the generic degraded
// one, the audit trail must attribute the engage to wire_bytes, and the
// link draining must revert after the debounce with no flapping.
func TestWireBytesEngagesFieldDeltas(t *testing.T) {
	const (
		primary     = 100_000 // bytes/round
		secondary   = 60_000
		hotRounds   = 30
		revertAfter = 4
	)
	deltas := Regime{ID: 3, Name: "field-deltas", FieldDeltas: true, CheckpointFreq: 50}

	audit := obs.NewAuditLog(16)
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarWireBytes, primary, secondary)
	c.SetVarRegime(VarWireBytes, &deltas)
	c.SetRevertAfter(revertAfter)
	c.SetAudit(audit)

	// Sustained saturation: every round reports bytes/round over the
	// primary threshold. The regime must engage on the first round and
	// hold without re-engaging.
	for r := 0; r < hotRounds; r++ {
		c.Observe(core.Sample{WireBytes: 150_000, Outbox: 8})
		if !c.Engaged() {
			t.Fatalf("round %d: not engaged under sustained wire saturation", r)
		}
		if got := c.Current(); !got.FieldDeltas || got.ID != deltas.ID {
			t.Fatalf("round %d: engaged regime = %+v, want the field-delta override", r, got)
		}
	}
	eng, rev := c.Transitions()
	if eng != 1 || rev != 0 {
		t.Fatalf("saturation window transitions = %d/%d, want 1/0 (flapping)", eng, rev)
	}
	if got := c.EngagesByVar(VarWireBytes); got != 1 {
		t.Fatalf("EngagesByVar(wire_bytes) = %d, want 1", got)
	}
	if got := c.EngagesByVar(VarPending); got != 0 {
		t.Fatalf("EngagesByVar(pending) = %d, want 0", got)
	}

	// The link drains: bytes/round drops below the hysteresis floor.
	// Revert exactly once, after the debounce, back to the baseline.
	drained := 0
	for r := 0; r < revertAfter+2; r++ {
		c.Observe(core.Sample{WireBytes: 1_000})
		if !c.Engaged() {
			drained++
		}
	}
	if drained == 0 {
		t.Fatal("never reverted after the link drained")
	}
	eng, rev = c.Transitions()
	if eng != 1 || rev != 1 {
		t.Fatalf("post-drain transitions = %d/%d, want 1/1", eng, rev)
	}
	if got := c.Current(); got.ID != base.ID || got.FieldDeltas {
		t.Fatalf("post-revert regime = %+v, want baseline", got)
	}

	// Audit attribution: the engage names wire_bytes and records the
	// observed value; the revert restores the baseline regime.
	entries := audit.Entries()
	if len(entries) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(entries))
	}
	e := entries[0]
	if e.Action != "engage" || e.Var != "wire_bytes" {
		t.Fatalf("engage entry = %+v, want action=engage var=wire_bytes", e)
	}
	if e.Value < primary {
		t.Fatalf("engage logged value %d below primary %d", e.Value, primary)
	}
	if e.WireBytes != 150_000 {
		t.Fatalf("engage entry wire_bytes = %d, want 150000", e.WireBytes)
	}
	if entries[1].Action != "revert" {
		t.Fatalf("second entry = %+v, want revert", entries[1])
	}
}

// TestOutboxDepthSharesDeltaOverride pins first-trigger-wins regime
// selection: with per-variable overrides on both wire variables, the
// variable that crosses primary first decides the installed regime, and
// a second variable crossing while engaged does not re-engage or swap
// regimes.
func TestOutboxDepthSharesDeltaOverride(t *testing.T) {
	deltas := Regime{ID: 3, Name: "field-deltas", FieldDeltas: true, CheckpointFreq: 50}
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarWireBytes, 100_000, 60_000)
	c.SetMonitorValues(VarOutboxDepth, 64, 32)
	c.SetVarRegime(VarWireBytes, &deltas)
	c.SetVarRegime(VarOutboxDepth, &deltas)
	c.SetRevertAfter(2)

	if !c.Observe(core.Sample{Outbox: 100}) {
		t.Fatal("outbox depth over primary must engage")
	}
	if got := c.Current(); !got.FieldDeltas {
		t.Fatalf("outbox engage installed %+v, want field-delta override", got)
	}
	if got := c.EngagesByVar(VarOutboxDepth); got != 1 {
		t.Fatalf("EngagesByVar(outbox_depth) = %d, want 1", got)
	}
	// WireBytes crossing while engaged is not a second transition.
	c.Observe(core.Sample{WireBytes: 500_000, Outbox: 100})
	if eng, _ := c.Transitions(); eng != 1 {
		t.Fatalf("engages = %d after second variable crossed, want 1", eng)
	}
	// Reverting requires BOTH variables calm: wire bytes still hot
	// holds the degraded regime even though the outbox drained.
	for i := 0; i < 6; i++ {
		if c.Observe(core.Sample{WireBytes: 500_000, Outbox: 0}) {
			t.Fatal("reverted while wire bytes still over the band")
		}
	}
	reverted := false
	for i := 0; i < 4; i++ {
		if c.Observe(core.Sample{}) {
			reverted = true
		}
	}
	if !reverted {
		t.Fatal("never reverted after both variables drained")
	}
	if got := c.Current(); got.ID != base.ID {
		t.Fatalf("post-revert regime = %+v, want baseline", got)
	}
}

// TestSetVarRegimeNilRestoresDefault: clearing an override falls back
// to the constructor's degraded regime.
func TestSetVarRegimeNilRestoresDefault(t *testing.T) {
	deltas := Regime{ID: 3, Name: "field-deltas", FieldDeltas: true}
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarWireBytes, 100, 50)
	c.SetRevertAfter(1)
	c.SetVarRegime(VarWireBytes, &deltas)
	c.SetVarRegime(VarWireBytes, nil)

	c.Observe(core.Sample{WireBytes: 200})
	if got := c.Current(); got.ID != degr.ID || got.FieldDeltas {
		t.Fatalf("engaged regime = %+v, want constructor degraded after clearing the override", got)
	}
}
