package adapt

import (
	"strings"
	"sync"
	"testing"

	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

var (
	base = Regime{ID: 1, Name: "normal", Coalesce: true, MaxCoalesce: 10, OverwriteLen: 10, CheckpointFreq: 50}
	degr = Regime{ID: 2, Name: "degraded", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}
)

func controller(applied *[]Regime) *Controller {
	c := NewController(base, degr, func(r Regime) { *applied = append(*applied, r) })
	c.SetMonitorValues(VarPending, 100, 40)
	// Most tests exercise single-sample transitions; the debounce has
	// its own test.
	c.SetRevertAfter(1)
	return c
}

func TestRevertDebounce(t *testing.T) {
	var applied []Regime
	c := NewController(base, degr, func(r Regime) { applied = append(applied, r) })
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(3)
	c.Observe(core.Sample{Pending: 150}) // engage
	// Two calm samples: still engaged.
	for i := 0; i < 2; i++ {
		if c.Observe(core.Sample{Pending: 0}) {
			t.Fatal("reverted before the debounce elapsed")
		}
	}
	// An in-band sample resets the streak.
	c.Observe(core.Sample{Pending: 80})
	for i := 0; i < 2; i++ {
		if c.Observe(core.Sample{Pending: 0}) {
			t.Fatal("streak not reset by in-band sample")
		}
	}
	if !c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("third consecutive calm sample must revert")
	}
	if c.Engaged() {
		t.Fatal("still engaged after debounced revert")
	}
}

func TestSetRevertAfterFloor(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetRevertAfter(0) // clamps to 1
	c.SetMonitorValues(VarPending, 10, 5)
	c.Observe(core.Sample{Pending: 10})
	if !c.Observe(core.Sample{Pending: 0}) {
		t.Fatal("revert-after 1 must revert on first calm sample")
	}
}

func TestBaselineInstalledOnConstruction(t *testing.T) {
	var applied []Regime
	controller(&applied)
	if len(applied) != 1 || applied[0].ID != base.ID {
		t.Fatalf("applied = %v, want baseline once", applied)
	}
}

func TestEngageOnPrimaryThreshold(t *testing.T) {
	var applied []Regime
	c := controller(&applied)
	if c.Observe(core.Sample{Pending: 99}) {
		t.Fatal("below primary must not transition")
	}
	if !c.Observe(core.Sample{Pending: 100}) {
		t.Fatal("reaching primary must engage")
	}
	if !c.Engaged() {
		t.Fatal("Engaged = false after engage")
	}
	if c.Current().ID != degr.ID {
		t.Fatalf("Current = %+v, want degraded", c.Current())
	}
	if applied[len(applied)-1].ID != degr.ID {
		t.Fatal("degraded regime not applied")
	}
}

func TestHysteresisRevert(t *testing.T) {
	var applied []Regime
	c := controller(&applied)
	c.Observe(core.Sample{Pending: 150})
	// Within the hysteresis band [60, ∞): stays engaged.
	if c.Observe(core.Sample{Pending: 80}) {
		t.Fatal("value inside hysteresis band must not revert")
	}
	if c.Observe(core.Sample{Pending: 60}) {
		t.Fatal("value at primary-secondary must not revert")
	}
	// Below primary - secondary: reverts.
	if !c.Observe(core.Sample{Pending: 59}) {
		t.Fatal("value below primary-secondary must revert")
	}
	if c.Engaged() {
		t.Fatal("still engaged after revert")
	}
	engages, reverts := c.Transitions()
	if engages != 1 || reverts != 1 {
		t.Fatalf("transitions = %d/%d, want 1/1", engages, reverts)
	}
}

func TestReEngageAfterRevert(t *testing.T) {
	var applied []Regime
	c := controller(&applied)
	c.Observe(core.Sample{Pending: 150})
	c.Observe(core.Sample{Pending: 0})
	c.Observe(core.Sample{Pending: 200})
	engages, reverts := c.Transitions()
	if engages != 2 || reverts != 1 {
		t.Fatalf("transitions = %d/%d, want 2/1", engages, reverts)
	}
}

func TestMultipleVariablesAnyEngages(t *testing.T) {
	var applied []Regime
	c := controller(&applied)
	c.SetMonitorValues(VarReady, 50, 20)
	if !c.Observe(core.Sample{Ready: 50}) {
		t.Fatal("ready-queue threshold must engage")
	}
	// Revert requires ALL enabled variables below their bands.
	if c.Observe(core.Sample{Ready: 40, Pending: 70}) {
		t.Fatal("pending still in band, must not revert")
	}
	if !c.Observe(core.Sample{Ready: 29, Pending: 59}) {
		t.Fatal("all below bands, must revert")
	}
}

func TestDisabledVariablesIgnored(t *testing.T) {
	var applied []Regime
	c := NewController(base, degr, func(r Regime) { *(&applied) = append(applied, r) })
	// No thresholds set at all: nothing ever engages.
	if c.Observe(core.Sample{Ready: 1 << 20, Backup: 1 << 20, Pending: 1 << 20}) {
		t.Fatal("engaged with no thresholds configured")
	}
}

func TestSetMonitorValuesOutOfRange(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetMonitorValues(Var(200), 1, 1) // must not panic
	if c.Observe(core.Sample{Pending: 1 << 20}) {
		t.Fatal("out-of-range variable affected decisions")
	}
}

func TestNilApplyCallback(t *testing.T) {
	c := NewController(base, degr, nil)
	c.SetMonitorValues(VarPending, 10, 5)
	if !c.Observe(core.Sample{Pending: 10}) {
		t.Fatal("engage must still be reported without an apply callback")
	}
}

func TestRegimeEncodeDecode(t *testing.T) {
	b := EncodeRegime(degr)
	got, err := DecodeRegime(b)
	if err != nil {
		t.Fatal(err)
	}
	want := degr
	want.Name = "" // names do not travel
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeRegime(b[:5]); err == nil {
		t.Fatal("short directive must fail")
	}
}

func TestRegimeEncodeNoCoalesce(t *testing.T) {
	r := Regime{ID: 3, OverwriteLen: 5, CheckpointFreq: 25}
	got, err := DecodeRegime(EncodeRegime(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Coalesce {
		t.Fatal("Coalesce flag corrupted")
	}
}

func TestRegimeEncodeFieldDeltas(t *testing.T) {
	// The flag byte carries Coalesce (bit 0) and FieldDeltas (bit 1)
	// independently, and directives encoded before the field-delta
	// regime existed decode with FieldDeltas off.
	for _, r := range []Regime{
		{ID: 4, FieldDeltas: true, OverwriteLen: 5, CheckpointFreq: 25},
		{ID: 5, Coalesce: true, FieldDeltas: true, MaxCoalesce: 8, OverwriteLen: 5, CheckpointFreq: 25},
		{ID: 6, Coalesce: true, MaxCoalesce: 8, OverwriteLen: 5, CheckpointFreq: 25},
	} {
		got, err := DecodeRegime(EncodeRegime(r))
		if err != nil {
			t.Fatal(err)
		}
		if got.FieldDeltas != r.FieldDeltas || got.Coalesce != r.Coalesce {
			t.Fatalf("flags round trip = %+v, want %+v", got, r)
		}
	}
}

func TestVarString(t *testing.T) {
	for v, want := range map[Var]string{
		VarReady:   "ready-queue",
		VarBackup:  "backup-queue",
		VarPending: "pending-requests",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if !strings.Contains(Var(9).String(), "9") {
		t.Error("unknown var must embed its value")
	}
}

func TestInstallRegimeAppliesToCentral(t *testing.T) {
	central := core.NewCentral(core.CentralConfig{Streams: 1, NoMirror: true})
	defer central.Close()
	apply := InstallRegime(central)
	apply(degr)
	p := central.GetParams()
	if !p.Coalesce || p.MaxCoalesce != 20 || p.CheckpointFreq != 100 {
		t.Fatalf("params = %+v", p)
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := NewController(base, degr, func(Regime) {})
	c.SetMonitorValues(VarPending, 100, 40)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Observe(core.Sample{Pending: (g*37 + i*13) % 220})
			}
		}()
	}
	wg.Wait()
	engages, reverts := c.Transitions()
	if engages == 0 {
		t.Fatal("no engagements under oscillating load")
	}
	if reverts > engages {
		t.Fatalf("reverts (%d) exceed engages (%d)", reverts, engages)
	}
}

func BenchmarkObserve(b *testing.B) {
	c := NewController(base, degr, func(Regime) {})
	c.SetMonitorValues(VarPending, 100, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(core.Sample{Pending: i & 127})
	}
}

// TestAuditRampStraddlesThresholds drives the controller through a
// Fig-8-style load ramp — pending requests climb past the primary
// threshold, plateau, then fall back through the hysteresis band —
// twice, and checks the audit trail: engage/revert entries alternate,
// every engage logged a value at or above primary, and every revert a
// value strictly below primary - secondary. The trail is written
// through a durable JSONL log and read back, covering the on-disk
// round trip.
func TestAuditRampStraddlesThresholds(t *testing.T) {
	path := t.TempDir() + "/audit.jsonl"
	audit := obs.NewAuditLog(4)
	if err := audit.OpenDurable(path); err != nil {
		t.Fatal(err)
	}
	c := NewController(base, degr, func(Regime) {})
	c.SetMonitorValues(VarPending, 100, 40)
	c.SetRevertAfter(2)
	c.SetAudit(audit)

	// Two ramps: 0 → 160 → 0 in steps of 20. Each up-slope crosses the
	// primary threshold (100) once; each down-slope spends two
	// consecutive samples below the band floor (60) to pass the
	// debounce.
	ramp := []int{0, 20, 40, 60, 80, 100, 120, 140, 160, 140, 120, 100, 80, 50, 30, 10, 0}
	for round := 0; round < 2; round++ {
		for _, p := range ramp {
			c.Observe(core.Sample{Pending: p, Ready: p / 4})
		}
	}
	engages, reverts := c.Transitions()
	if engages != 2 || reverts != 2 {
		t.Fatalf("engages/reverts = %d/%d, want 2/2", engages, reverts)
	}
	if err := audit.Close(); err != nil {
		t.Fatal(err)
	}

	// The durable file retains the full trail even past the ring cap.
	entries, err := obs.ReadAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("audit entries = %d, want 4", len(entries))
	}
	for i, e := range entries {
		wantAction := "engage"
		if i%2 == 1 {
			wantAction = "revert"
		}
		if e.Action != wantAction {
			t.Fatalf("entry %d action = %q, want %q (trail %+v)", i, e.Action, wantAction, entries)
		}
		if e.Var != VarPending.String() {
			t.Errorf("entry %d var = %q, want %q", i, e.Var, VarPending)
		}
		if e.Primary != 100 || e.Secondary != 40 {
			t.Errorf("entry %d thresholds = %d/%d, want 100/40", i, e.Primary, e.Secondary)
		}
		switch e.Action {
		case "engage":
			if e.Value < e.Primary {
				t.Errorf("entry %d: engage value %d below primary %d", i, e.Value, e.Primary)
			}
			if e.RegimeID != degr.ID || e.Regime != degr.Name {
				t.Errorf("entry %d: engage installed %d/%q, want the degraded regime", i, e.RegimeID, e.Regime)
			}
		case "revert":
			if e.Value >= e.Primary-e.Secondary {
				t.Errorf("entry %d: revert value %d inside hysteresis band (floor %d)",
					i, e.Value, e.Primary-e.Secondary)
			}
			if e.RegimeID != base.ID || e.Regime != base.Name {
				t.Errorf("entry %d: revert installed %d/%q, want the baseline regime", i, e.RegimeID, e.Regime)
			}
		}
		if e.Pending != e.Value {
			t.Errorf("entry %d: Value %d != Pending %d for the pending-requests variable", i, e.Value, e.Pending)
		}
	}
}
