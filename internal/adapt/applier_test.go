package adapt

import (
	"testing"

	"adaptmirror/internal/core"
)

func validDirective() []byte { return EncodeRegime(degr) }

func TestApplierWatermark(t *testing.T) {
	var installs []uint64
	a := NewApplier(func(round uint64, _ Regime) { installs = append(installs, round) })

	if !a.Apply(3, validDirective()) {
		t.Fatal("first directive at round 3 must install")
	}
	if a.Apply(3, validDirective()) {
		t.Fatal("duplicate round must be rejected")
	}
	if a.Apply(2, validDirective()) {
		t.Fatal("reordered earlier round must be rejected")
	}
	if !a.Apply(4, EncodeRegime(base)) {
		t.Fatal("later round must install")
	}
	if len(installs) != 2 || installs[0] != 3 || installs[1] != 4 {
		t.Fatalf("install rounds = %v, want [3 4]", installs)
	}
	reg, round, have := a.Current()
	if !have || round != 4 || reg.ID != base.ID {
		t.Fatalf("Current = %+v round %d have %v, want baseline at 4", reg, round, have)
	}
	installed, stale, invalid := a.Stats()
	if installed != 2 || stale != 2 || invalid != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/2/0", installed, stale, invalid)
	}
}

func TestApplierRoundZeroNeverInstalls(t *testing.T) {
	a := NewApplier(nil)
	if a.Apply(0, validDirective()) {
		t.Fatal("round 0 must never install: coordinator rounds start at 1")
	}
	if _, _, have := a.Current(); have {
		t.Fatal("round-0 delivery left a directive behind")
	}
}

func TestApplierRejectsCorruptAndTruncated(t *testing.T) {
	a := NewApplier(func(uint64, Regime) { t.Fatal("corrupt directive installed") })
	b := validDirective()
	for i := range b {
		flipped := append([]byte(nil), b...)
		flipped[i] ^= 0x10
		if a.Apply(1, flipped) {
			t.Fatalf("byte %d bit-flip survived the checksum", i)
		}
	}
	for n := 0; n < len(b); n++ {
		if a.Apply(1, b[:n]) {
			t.Fatalf("truncation to %d bytes installed", n)
		}
	}
	_, _, invalid := a.Stats()
	if invalid != uint64(len(b)+len(b)) {
		t.Fatalf("invalid = %d, want %d", invalid, len(b)*2)
	}
}

// TestApplierSetInstallReplays: the applier can accept a directive
// before the object it installs into exists (cluster wiring builds the
// applier first, the mirror site second); SetInstall replays the
// current directive so the late-wired target converges.
func TestApplierSetInstallReplays(t *testing.T) {
	a := NewApplier(nil)
	if !a.Apply(5, validDirective()) {
		t.Fatal("install-less apply must still accept")
	}
	var got []uint64
	a.SetInstall(func(round uint64, r Regime) {
		if r.ID != degr.ID {
			t.Fatalf("replayed regime %d, want %d", r.ID, degr.ID)
		}
		got = append(got, round)
	})
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("SetInstall replays = %v, want [5]", got)
	}
	// A stale delivery after wiring must not re-invoke the callback.
	a.Apply(5, validDirective())
	if len(got) != 1 {
		t.Fatalf("stale delivery reached the install callback: %v", got)
	}
}

// TestInstallMirrorRegime wires a real mirror site and checks the
// directive lands as the site's recorded regime and parameters.
func TestInstallMirrorRegime(t *testing.T) {
	m := core.NewMirrorSite(core.MirrorSiteConfig{})
	defer m.Close()
	a := NewApplier(InstallMirrorRegime(m))
	if !a.Apply(2, EncodeRegime(degr)) {
		t.Fatal("directive rejected")
	}
	id, p, overwrite := m.Regime()
	if id != degr.ID || p.MaxCoalesce != degr.MaxCoalesce ||
		p.CheckpointFreq != degr.CheckpointFreq || overwrite != degr.OverwriteLen {
		t.Fatalf("site regime = %d %+v overwrite %d, want %+v", id, p, overwrite, degr)
	}
}
