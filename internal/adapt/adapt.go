// Package adapt implements the paper's runtime adaptation mechanism
// (Section 3.2.2): monitored variables — ready/backup queue lengths
// and the pending client request buffer — each carry a primary and a
// secondary threshold set through set_monitor_values(). When a
// monitored value reaches its primary threshold, the mirroring
// algorithm is modified (a different mirroring function or parameter
// set is installed); the original mechanism is reinstalled when the
// value falls below primary - secondary. Decisions are made at the
// central site so all mirrors adapt identically, and directives travel
// piggybacked on checkpoint messages, stamped with the checkpoint
// round so duplicated or reordered deliveries cannot roll a site back
// to a stale regime.
package adapt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

// Var identifies a monitored variable (the index argument of
// set_monitor_values).
type Var uint8

// Monitored variables. The first three are the paper's queue-length
// variables; the wire-telemetry variables (PR 8) let the controller see
// bandwidth pressure: VarWireBytes is the busiest link's EWMA payload
// bytes per checkpoint round, VarOutboxDepth the deepest windowed
// outbox high-water mark, and VarApplyLag the worst mirror's smoothed
// apply lag in microseconds (piggybacked like the queue lengths).
const (
	VarReady Var = iota
	VarBackup
	VarPending
	VarWireBytes
	VarOutboxDepth
	VarApplyLag
	numVars
)

// NumVars is the number of monitored variables.
const NumVars = int(numVars)

// String names the variable (the label value of
// adapt_engage_total{var=...} and the audit log's var field).
func (v Var) String() string {
	switch v {
	case VarReady:
		return "ready-queue"
	case VarBackup:
		return "backup-queue"
	case VarPending:
		return "pending-requests"
	case VarWireBytes:
		return "wire_bytes"
	case VarOutboxDepth:
		return "outbox_depth"
	case VarApplyLag:
		return "apply_lag"
	default:
		return fmt.Sprintf("var(%d)", uint8(v))
	}
}

// sampleVals indexes a Sample by monitored variable.
func sampleVals(s core.Sample) [numVars]int {
	return [numVars]int{s.Ready, s.Backup, s.Pending, s.WireBytes, s.Outbox, s.ApplyLag}
}

// Thresholds is a primary/secondary threshold pair. Primary triggers
// the modification; the modification remains until the value falls
// below Primary - Secondary (hysteresis).
type Thresholds struct {
	Primary   int
	Secondary int
}

// enabled reports whether the thresholds are active.
func (t Thresholds) enabled() bool { return t.Primary > 0 }

// calmFloor is the below-band boundary: a value is calm when it is
// strictly below Primary - Secondary. The floor is clamped to 1 so
// that a band configured with Secondary >= Primary still reverts once
// the variable drains to zero instead of never reverting.
func (t Thresholds) calmFloor() int {
	f := t.Primary - t.Secondary
	if f < 1 {
		f = 1
	}
	return f
}

// Regime is one complete mirroring configuration the controller can
// install: the paper's experiment alternates between a regime that
// coalesces up to 10 events with checkpointing every 50 and one that
// overwrites up to 20 position events with checkpointing every 100.
type Regime struct {
	// ID distinguishes regimes on the wire.
	ID uint8
	// Name is a human-readable label.
	Name string
	// Coalesce and MaxCoalesce configure sending-task coalescing.
	Coalesce    bool
	MaxCoalesce int
	// OverwriteLen is the run length for FAA position overwriting
	// (0 = no overwriting).
	OverwriteLen int
	// CheckpointFreq is the checkpoint frequency in mirrored events.
	CheckpointFreq int
	// FieldDeltas installs the field-delta mirroring regime: the
	// sending task ships per-flight field-level state deltas
	// (internal/statedelta) in place of raw data events. Composes with
	// Coalesce and OverwriteLen — deltas are built from the filtered,
	// coalesced stream.
	FieldDeltas bool
}

// SiteCentral keys the central site's own samples in the controller's
// per-site table. Mirror sites are keyed by their non-negative site
// index (the event Stream their checkpoint replies carry).
const SiteCentral = -1

// SiteLabel renders a site key the way metrics and audit entries name
// sites.
func SiteLabel(site int) string {
	if site == SiteCentral {
		return "central"
	}
	return fmt.Sprintf("mirror%d", site)
}

// Controller makes adaptation decisions at the central site. It is
// fed Samples — the central site's own and those piggybacked on
// mirror checkpoint replies — and switches between the baseline and
// degraded regimes with hysteresis.
type Controller struct {
	mu         sync.Mutex
	thresholds [numVars]Thresholds
	baseline   Regime
	degraded   Regime
	engaged    bool
	engages    uint64
	reverts    uint64

	// varRegime optionally overrides the degraded regime per monitored
	// variable (SetVarRegime): bandwidth pressure can select the
	// field-delta regime while queue pressure keeps selecting the
	// coalescing one. engagedRegime is the regime the current
	// engagement installed; engagesByVar counts engagements per
	// triggering variable (adapt_engage_total{var=...}).
	varRegime     [numVars]*Regime
	engagedRegime Regime
	engagesByVar  [numVars]uint64

	// last holds the most recent sample reported by each live site.
	// Engagement triggers on any one site crossing primary; reverting
	// requires every tracked site's latest sample below the band, so
	// N-1 idle mirrors cannot reinstall the baseline while one site is
	// still overloaded.
	last map[int]core.Sample

	// audit, when set, receives one entry per transition; engagedVar
	// remembers which variable triggered the current engagement so the
	// revert entry can name it.
	audit      *obs.AuditLog
	engagedVar Var

	// revertAfter debounces reverts: the controller reverts only after
	// this many consecutive observations during which every live
	// site's latest sample sits below the band.
	revertAfter int
	calmStreak  int

	// apply is invoked outside mu (a callback that re-enters
	// Engaged()/Current()/Observe() must not deadlock). applySeq
	// numbers transitions as they are decided under mu; appliedSeq,
	// under applyMu, ensures a stale transition never overwrites a
	// newer one when observers race to the callback.
	applyMu    sync.Mutex
	apply      func(Regime)
	applySeq   uint64
	appliedSeq uint64
}

// DefaultRevertAfter is the revert debounce in consecutive samples.
const DefaultRevertAfter = 8

// NewController returns a controller that switches between baseline
// and degraded regimes, calling apply on every transition (and once
// immediately to install the baseline).
func NewController(baseline, degraded Regime, apply func(Regime)) *Controller {
	c := &Controller{
		baseline:    baseline,
		degraded:    degraded,
		apply:       apply,
		revertAfter: DefaultRevertAfter,
		last:        make(map[int]core.Sample),
	}
	if apply != nil {
		apply(baseline)
	}
	return c
}

// SetApply installs (or replaces) the apply callback and immediately
// applies the current regime through it, so a controller constructed
// before its cluster exists (to avoid publishing the pointer to
// transport goroutines mid-construction) can be wired up afterwards.
func (c *Controller) SetApply(f func(Regime)) {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()
	c.apply = f
	if f == nil {
		return
	}
	c.mu.Lock()
	c.appliedSeq = c.applySeq
	reg := c.currentLocked()
	c.mu.Unlock()
	f(reg)
}

// runApply invokes the apply callback for the transition numbered seq,
// outside c.mu. Out-of-order arrivals (an observer that decided an
// older transition but reached the callback late) are dropped.
func (c *Controller) runApply(seq uint64, reg Regime) {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()
	if seq <= c.appliedSeq {
		return
	}
	c.appliedSeq = seq
	if c.apply != nil {
		c.apply(reg)
	}
}

// SetAudit attaches an audit log: every engage and revert decision is
// recorded with the observed sample and the thresholds that drove it.
func (c *Controller) SetAudit(a *obs.AuditLog) {
	c.mu.Lock()
	c.audit = a
	c.mu.Unlock()
}

// RegisterMetrics exposes the controller's transition counters,
// engagement state, and installed regime ID on r.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Describe("adapt_engages_total", "Transitions into the degraded regime.")
	r.CounterFunc("adapt_engages_total", func() float64 {
		e, _ := c.Transitions()
		return float64(e)
	})
	r.Describe("adapt_reverts_total", "Transitions back to the baseline regime.")
	r.CounterFunc("adapt_reverts_total", func() float64 {
		_, rv := c.Transitions()
		return float64(rv)
	})
	r.Describe("adapt_engaged", "1 while the degraded regime is installed.")
	r.GaugeFunc("adapt_engaged", func() float64 {
		if c.Engaged() {
			return 1
		}
		return 0
	})
	r.Describe("adapt_regime_id", "ID of the mirroring regime installed at this site.")
	r.GaugeFunc("adapt_regime_id", func() float64 {
		return float64(c.Current().ID)
	}, obs.L("site", "central"))
	r.Describe("adapt_engage_total", "Transitions into a degraded regime, by triggering monitored variable.")
	for v := Var(0); v < numVars; v++ {
		vv := v
		r.CounterFunc("adapt_engage_total", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.engagesByVar[vv])
		}, obs.L("var", vv.String()))
	}
}

// auditLocked appends one transition entry. Caller holds c.mu.
func (c *Controller) auditLocked(action string, reg Regime, v Var, s core.Sample, site int) {
	if c.audit == nil {
		return
	}
	vals := sampleVals(s)
	th := c.thresholds[v]
	c.audit.Append(obs.AuditEntry{
		Action:    action,
		RegimeID:  reg.ID,
		Regime:    reg.Name,
		Var:       v.String(),
		Value:     vals[v],
		Site:      SiteLabel(site),
		Primary:   th.Primary,
		Secondary: th.Secondary,
		Ready:     s.Ready,
		Backup:    s.Backup,
		Pending:   s.Pending,
		WireBytes: s.WireBytes,
		Outbox:    s.Outbox,
		ApplyLag:  s.ApplyLag,
	})
}

// SetRevertAfter tunes the revert debounce (minimum 1).
func (c *Controller) SetRevertAfter(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.revertAfter = n
	c.mu.Unlock()
}

// SetVarRegime overrides the regime an engagement triggered by v
// installs (nil restores the shared degraded regime). The paper's
// mechanism installs one "modification" regardless of trigger; the
// per-variable override lets bandwidth pressure (VarWireBytes /
// VarOutboxDepth) select the field-delta regime while queue pressure
// keeps selecting the coalescing one. The override is consulted at
// engage time only — an engagement already in force keeps its regime
// until revert (first trigger wins).
func (c *Controller) SetVarRegime(v Var, r *Regime) {
	if v >= numVars {
		return
	}
	c.mu.Lock()
	if r == nil {
		c.varRegime[v] = nil
	} else {
		reg := *r
		c.varRegime[v] = &reg
	}
	c.mu.Unlock()
}

// SetMonitorValues is set_monitor_values(index, p, s): configure the
// primary and secondary thresholds for one monitored variable. The
// secondary (hysteresis) value is clamped into [0, primary]: a
// secondary at or above primary would drive the below-band test
// negative and make the degraded regime permanent.
func (c *Controller) SetMonitorValues(v Var, primary, secondary int) {
	if v >= numVars {
		return
	}
	if secondary < 0 {
		secondary = 0
	}
	if secondary > primary {
		secondary = primary
	}
	c.mu.Lock()
	c.thresholds[v] = Thresholds{Primary: primary, Secondary: secondary}
	c.mu.Unlock()
}

// Observe feeds one of the central site's own samples. It is
// ObserveSite(SiteCentral, s).
func (c *Controller) Observe(s core.Sample) bool {
	return c.ObserveSite(SiteCentral, s)
}

// ObserveSite feeds one sample reported by the given site (SiteCentral
// for the central site's own, a mirror index for piggybacked
// checkpoint-reply samples). It returns true when the observation
// caused a regime transition. Any single site crossing a primary
// threshold engages the degraded regime; the controller reverts only
// once every tracked live site's latest sample sits fully below the
// hysteresis band for revertAfter consecutive observations.
func (c *Controller) ObserveSite(site int, s core.Sample) bool {
	c.mu.Lock()
	vals := sampleVals(s)
	c.last[site] = s

	if !c.engaged {
		for v := Var(0); v < numVars; v++ {
			th := c.thresholds[v]
			if th.enabled() && vals[v] >= th.Primary {
				reg := c.degraded
				if r := c.varRegime[v]; r != nil {
					reg = *r
				}
				c.engaged = true
				c.engagedVar = v
				c.engagedRegime = reg
				c.engages++
				c.engagesByVar[v]++
				c.calmStreak = 0
				c.auditLocked("engage", reg, v, s, site)
				seq := c.nextSeqLocked()
				c.mu.Unlock()
				c.runApply(seq, reg)
				return true
			}
		}
		c.mu.Unlock()
		return false
	}

	if !c.calmLocked(s) || !c.allCalmLocked() {
		c.calmStreak = 0
		c.mu.Unlock()
		return false
	}
	c.calmStreak++
	if c.calmStreak < c.revertAfter {
		c.mu.Unlock()
		return false
	}
	c.engaged = false
	c.reverts++
	c.calmStreak = 0
	c.auditLocked("revert", c.baseline, c.engagedVar, s, site)
	seq := c.nextSeqLocked()
	reg := c.baseline
	c.mu.Unlock()
	c.runApply(seq, reg)
	return true
}

// EvictSite drops a site's row from the last-sample table, typically
// on membership departure: a failed site's stale overload report must
// not pin the degraded regime forever, and conversely its stale calm
// report must not count toward reverting.
func (c *Controller) EvictSite(site int) {
	c.mu.Lock()
	delete(c.last, site)
	c.mu.Unlock()
}

// Sites returns the number of sites with a tracked sample.
func (c *Controller) Sites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.last)
}

// calmLocked reports whether s sits strictly below the hysteresis band
// on every enabled variable. Caller holds c.mu.
func (c *Controller) calmLocked(s core.Sample) bool {
	vals := sampleVals(s)
	for v := Var(0); v < numVars; v++ {
		th := c.thresholds[v]
		if th.enabled() && vals[v] >= th.calmFloor() {
			return false
		}
	}
	return true
}

// allCalmLocked reports whether every tracked site's latest sample is
// calm. Caller holds c.mu.
func (c *Controller) allCalmLocked() bool {
	for _, s := range c.last {
		if !c.calmLocked(s) {
			return false
		}
	}
	return true
}

// nextSeqLocked numbers a decided transition. Caller holds c.mu.
func (c *Controller) nextSeqLocked() uint64 {
	c.applySeq++
	return c.applySeq
}

// currentLocked returns the installed regime. Caller holds c.mu.
func (c *Controller) currentLocked() Regime {
	if c.engaged {
		return c.engagedRegime
	}
	return c.baseline
}

// Engaged reports whether the degraded regime is installed.
func (c *Controller) Engaged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engaged
}

// Current returns the installed regime.
func (c *Controller) Current() Regime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentLocked()
}

// Transitions returns the number of engage and revert transitions.
func (c *Controller) Transitions() (engages, reverts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engages, c.reverts
}

// EngagesByVar returns the engage count for one monitored variable.
func (c *Controller) EngagesByVar(v Var) uint64 {
	if v >= numVars {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engagesByVar[v]
}

// LastSamples copies the per-site last-sample table (the status plane's
// per-site rows). Keys are SiteCentral or mirror indices.
func (c *Controller) LastSamples() map[int]core.Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]core.Sample, len(c.last))
	for k, v := range c.last {
		out[k] = v
	}
	return out
}

// regimeWire is the encoded size of a Regime directive: the regime
// settings followed by a CRC32 so a corrupted directive is rejected
// rather than installed.
const regimeWire = 1 + 1 + 4 + 4 + 4 + 4

// EncodeRegime serializes the settings of r for piggybacking on CHKPT
// control events (the name is not transmitted).
func EncodeRegime(r Regime) []byte {
	b := make([]byte, regimeWire)
	b[0] = r.ID
	// b[1] is a flag byte: bit 0 coalescing, bit 1 field-delta
	// mirroring. (Pre-field-delta decoders read it as a boolean, so the
	// bit assignment keeps old directives decoding identically.)
	if r.Coalesce {
		b[1] |= 1
	}
	if r.FieldDeltas {
		b[1] |= 2
	}
	binary.LittleEndian.PutUint32(b[2:], uint32(r.MaxCoalesce))
	binary.LittleEndian.PutUint32(b[6:], uint32(r.OverwriteLen))
	binary.LittleEndian.PutUint32(b[10:], uint32(r.CheckpointFreq))
	binary.LittleEndian.PutUint32(b[14:], crc32.ChecksumIEEE(b[:14]))
	return b
}

// DecodeRegime parses a directive encoded by EncodeRegime, rejecting
// truncated or corrupted payloads.
func DecodeRegime(b []byte) (Regime, error) {
	if len(b) < regimeWire {
		return Regime{}, fmt.Errorf("adapt: regime directive too short: %d bytes", len(b))
	}
	if got, want := crc32.ChecksumIEEE(b[:14]), binary.LittleEndian.Uint32(b[14:]); got != want {
		return Regime{}, fmt.Errorf("adapt: regime directive checksum mismatch")
	}
	return Regime{
		ID:             b[0],
		Coalesce:       b[1]&1 != 0,
		FieldDeltas:    b[1]&2 != 0,
		MaxCoalesce:    int(binary.LittleEndian.Uint32(b[2:])),
		OverwriteLen:   int(binary.LittleEndian.Uint32(b[6:])),
		CheckpointFreq: int(binary.LittleEndian.Uint32(b[10:])),
	}, nil
}

// InstallRegime applies a regime to a central site: it configures
// coalescing, FAA-position overwriting, field-delta mirroring, and
// checkpoint frequency in one step. It is the standard apply callback
// for NewController.
func InstallRegime(c *core.Central) func(Regime) {
	return func(r Regime) {
		c.SetParams(r.Coalesce, r.MaxCoalesce, r.CheckpointFreq)
		c.InstallSelective(r.OverwriteLen)
		c.SetFieldDeltas(r.FieldDeltas)
	}
}
