// Package adapt implements the paper's runtime adaptation mechanism
// (Section 3.2.2): monitored variables — ready/backup queue lengths
// and the pending client request buffer — each carry a primary and a
// secondary threshold set through set_monitor_values(). When a
// monitored value reaches its primary threshold, the mirroring
// algorithm is modified (a different mirroring function or parameter
// set is installed); the original mechanism is reinstalled when the
// value falls below primary - secondary. Decisions are made at the
// central site so all mirrors adapt identically, and directives travel
// piggybacked on checkpoint messages.
package adapt

import (
	"encoding/binary"
	"fmt"
	"sync"

	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

// Var identifies a monitored variable (the index argument of
// set_monitor_values).
type Var uint8

// Monitored variables.
const (
	VarReady Var = iota
	VarBackup
	VarPending
	numVars
)

// String names the variable.
func (v Var) String() string {
	switch v {
	case VarReady:
		return "ready-queue"
	case VarBackup:
		return "backup-queue"
	case VarPending:
		return "pending-requests"
	default:
		return fmt.Sprintf("var(%d)", uint8(v))
	}
}

// Thresholds is a primary/secondary threshold pair. Primary triggers
// the modification; the modification remains until the value falls
// below Primary - Secondary (hysteresis).
type Thresholds struct {
	Primary   int
	Secondary int
}

// enabled reports whether the thresholds are active.
func (t Thresholds) enabled() bool { return t.Primary > 0 }

// Regime is one complete mirroring configuration the controller can
// install: the paper's experiment alternates between a regime that
// coalesces up to 10 events with checkpointing every 50 and one that
// overwrites up to 20 position events with checkpointing every 100.
type Regime struct {
	// ID distinguishes regimes on the wire.
	ID uint8
	// Name is a human-readable label.
	Name string
	// Coalesce and MaxCoalesce configure sending-task coalescing.
	Coalesce    bool
	MaxCoalesce int
	// OverwriteLen is the run length for FAA position overwriting
	// (0 = no overwriting).
	OverwriteLen int
	// CheckpointFreq is the checkpoint frequency in mirrored events.
	CheckpointFreq int
}

// Controller makes adaptation decisions at the central site. It is
// fed Samples — the central site's own and those piggybacked on
// mirror checkpoint replies — and switches between the baseline and
// degraded regimes with hysteresis.
type Controller struct {
	mu         sync.Mutex
	thresholds [numVars]Thresholds
	baseline   Regime
	degraded   Regime
	apply      func(Regime)
	engaged    bool
	engages    uint64
	reverts    uint64

	// audit, when set, receives one entry per transition; engagedVar
	// remembers which variable triggered the current engagement so the
	// revert entry can name it.
	audit      *obs.AuditLog
	engagedVar Var

	// revertAfter debounces reverts: samples arrive per site, so one
	// idle site's report must not reinstall the baseline while another
	// site is still overloaded. The controller reverts only after this
	// many consecutive below-band samples.
	revertAfter int
	calmStreak  int
}

// DefaultRevertAfter is the revert debounce in consecutive samples.
const DefaultRevertAfter = 8

// NewController returns a controller that switches between baseline
// and degraded regimes, calling apply on every transition (and once
// immediately to install the baseline).
func NewController(baseline, degraded Regime, apply func(Regime)) *Controller {
	c := &Controller{
		baseline:    baseline,
		degraded:    degraded,
		apply:       apply,
		revertAfter: DefaultRevertAfter,
	}
	if apply != nil {
		apply(baseline)
	}
	return c
}

// SetAudit attaches an audit log: every engage and revert decision is
// recorded with the observed sample and the thresholds that drove it.
func (c *Controller) SetAudit(a *obs.AuditLog) {
	c.mu.Lock()
	c.audit = a
	c.mu.Unlock()
}

// RegisterMetrics exposes the controller's transition counters and
// engagement state on r.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Describe("adapt_engages_total", "Transitions into the degraded regime.")
	r.CounterFunc("adapt_engages_total", func() float64 {
		e, _ := c.Transitions()
		return float64(e)
	})
	r.Describe("adapt_reverts_total", "Transitions back to the baseline regime.")
	r.CounterFunc("adapt_reverts_total", func() float64 {
		_, rv := c.Transitions()
		return float64(rv)
	})
	r.Describe("adapt_engaged", "1 while the degraded regime is installed.")
	r.GaugeFunc("adapt_engaged", func() float64 {
		if c.Engaged() {
			return 1
		}
		return 0
	})
}

// auditLocked appends one transition entry. Caller holds c.mu.
func (c *Controller) auditLocked(action string, reg Regime, v Var, s core.Sample) {
	if c.audit == nil {
		return
	}
	vals := [numVars]int{s.Ready, s.Backup, s.Pending}
	th := c.thresholds[v]
	c.audit.Append(obs.AuditEntry{
		Action:    action,
		RegimeID:  reg.ID,
		Regime:    reg.Name,
		Var:       v.String(),
		Value:     vals[v],
		Primary:   th.Primary,
		Secondary: th.Secondary,
		Ready:     s.Ready,
		Backup:    s.Backup,
		Pending:   s.Pending,
	})
}

// SetRevertAfter tunes the revert debounce (minimum 1).
func (c *Controller) SetRevertAfter(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.revertAfter = n
	c.mu.Unlock()
}

// SetMonitorValues is set_monitor_values(index, p, s): configure the
// primary and secondary thresholds for one monitored variable.
func (c *Controller) SetMonitorValues(v Var, primary, secondary int) {
	if v >= numVars {
		return
	}
	c.mu.Lock()
	c.thresholds[v] = Thresholds{Primary: primary, Secondary: secondary}
	c.mu.Unlock()
}

// Observe feeds one sample (the central site's own, or one reported
// by a mirror). It returns true when the observation caused a regime
// transition. Any single site crossing a primary threshold engages the
// degraded regime; a site observed fully below the hysteresis band
// (primary - secondary on every enabled variable) reverts it.
func (c *Controller) Observe(s core.Sample) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	vals := [numVars]int{s.Ready, s.Backup, s.Pending}

	if !c.engaged {
		for v := Var(0); v < numVars; v++ {
			th := c.thresholds[v]
			if th.enabled() && vals[v] >= th.Primary {
				c.engaged = true
				c.engagedVar = v
				c.engages++
				c.calmStreak = 0
				c.auditLocked("engage", c.degraded, v, s)
				if c.apply != nil {
					c.apply(c.degraded)
				}
				return true
			}
		}
		return false
	}

	for v := Var(0); v < numVars; v++ {
		th := c.thresholds[v]
		if th.enabled() && vals[v] >= th.Primary-th.Secondary {
			c.calmStreak = 0
			return false
		}
	}
	c.calmStreak++
	if c.calmStreak < c.revertAfter {
		return false
	}
	c.engaged = false
	c.reverts++
	c.calmStreak = 0
	c.auditLocked("revert", c.baseline, c.engagedVar, s)
	if c.apply != nil {
		c.apply(c.baseline)
	}
	return true
}

// Engaged reports whether the degraded regime is installed.
func (c *Controller) Engaged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engaged
}

// Current returns the installed regime.
func (c *Controller) Current() Regime {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.engaged {
		return c.degraded
	}
	return c.baseline
}

// Transitions returns the number of engage and revert transitions.
func (c *Controller) Transitions() (engages, reverts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engages, c.reverts
}

// regimeWire is the encoded size of a Regime directive.
const regimeWire = 1 + 1 + 4 + 4 + 4

// EncodeRegime serializes the settings of r for piggybacking on CHKPT
// control events (the name is not transmitted).
func EncodeRegime(r Regime) []byte {
	b := make([]byte, regimeWire)
	b[0] = r.ID
	if r.Coalesce {
		b[1] = 1
	}
	binary.LittleEndian.PutUint32(b[2:], uint32(r.MaxCoalesce))
	binary.LittleEndian.PutUint32(b[6:], uint32(r.OverwriteLen))
	binary.LittleEndian.PutUint32(b[10:], uint32(r.CheckpointFreq))
	return b
}

// DecodeRegime parses a directive encoded by EncodeRegime.
func DecodeRegime(b []byte) (Regime, error) {
	if len(b) < regimeWire {
		return Regime{}, fmt.Errorf("adapt: regime directive too short: %d bytes", len(b))
	}
	return Regime{
		ID:             b[0],
		Coalesce:       b[1] == 1,
		MaxCoalesce:    int(binary.LittleEndian.Uint32(b[2:])),
		OverwriteLen:   int(binary.LittleEndian.Uint32(b[6:])),
		CheckpointFreq: int(binary.LittleEndian.Uint32(b[10:])),
	}, nil
}

// InstallRegime applies a regime to a central site: it configures
// coalescing, FAA-position overwriting, and checkpoint frequency in
// one step. It is the standard apply callback for NewController.
func InstallRegime(c *core.Central) func(Regime) {
	return func(r Regime) {
		c.SetParams(r.Coalesce, r.MaxCoalesce, r.CheckpointFreq)
		c.InstallSelective(r.OverwriteLen)
	}
}
