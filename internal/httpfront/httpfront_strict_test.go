package httpfront

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// TestUpdateBodyValidation pins the strict-body contract of POST
// /update: exactly one well-formed data event, nothing more. A body
// with trailing bytes used to be accepted (Unmarshal's consumed count
// was discarded) and an oversized body was silently truncated by the
// read limit before failing as a parse error.
func TestUpdateBodyValidation(t *testing.T) {
	var got []*event.Event
	m := core.NewMainUnit(core.MainConfig{})
	f := New(m)
	f.EnableUpdates(func(e *event.Event) error {
		got = append(got, e)
		return nil
	})
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer m.Close()

	good := event.NewStatus(7, 1, event.StatusBoarding, 32).Marshal()
	cases := []struct {
		name   string
		body   []byte
		status int
		ingest int // cumulative accepted updates after the case
	}{
		{"well-formed", good, http.StatusAccepted, 1},
		{"trailing-garbage", append(append([]byte(nil), good...), 0xDE, 0xAD), http.StatusBadRequest, 1},
		{"two-events", append(append([]byte(nil), good...), good...), http.StatusBadRequest, 1},
		{"empty", nil, http.StatusBadRequest, 1},
		{"oversized", make([]byte, maxUpdateBody+1), http.StatusRequestEntityTooLarge, 1},
		{"at-limit-garbage", make([]byte, maxUpdateBody), http.StatusBadRequest, 1},
		{"well-formed-again", good, http.StatusAccepted, 2},
	}
	for _, tc := range cases {
		resp, err := http.Post("http://"+addr+"/update", "application/octet-stream",
			bytes.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if len(got) != tc.ingest {
			t.Errorf("%s: ingested = %d events, want %d", tc.name, len(got), tc.ingest)
		}
	}
}

// TestInitAnchorHeader pins the X-Init-VT response header: it carries
// the main unit's progress timestamp so a re-initializing thin client
// can seed its stale/gap tracking at the snapshot instead of at zero.
func TestInitAnchorHeader(t *testing.T) {
	f, addr, m := front(t, core.MainConfig{})
	_ = f

	fetch := func() vclock.VC {
		resp, err := http.Get("http://" + addr + "/init")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("init status = %d", resp.StatusCode)
		}
		anchor, err := vclock.Parse(resp.Header.Get("X-Init-VT"))
		if err != nil {
			t.Fatalf("bad X-Init-VT %q: %v", resp.Header.Get("X-Init-VT"), err)
		}
		return anchor
	}

	// An empty view anchors at zero (nil clock).
	if anchor := fetch(); anchor.Sum() != 0 {
		t.Fatalf("fresh anchor = %s, want zero", anchor)
	}

	// After processed traffic, the anchor matches the main unit's
	// progress exactly.
	for i := 1; i <= 5; i++ {
		e := event.NewPosition(event.FlightID(i), uint64(i), 1, 2, 3, 16)
		e.VT = vclock.VC{uint64(i)}
		if err := m.Deliver(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Barrier(func() {}); err != nil {
		t.Fatal(err)
	}
	anchor := fetch()
	if want := m.LastProcessed(); anchor.Compare(want) != vclock.Equal {
		t.Fatalf("anchor = %s, want %s", anchor, want)
	}
}
