// Package httpfront exposes a site's client services over HTTP — the
// interface the paper's experiments exercised with httperf. Thin
// clients GET /init to fetch a fresh initialization state from the
// site's main unit; /healthz and /stats support operations. The
// deployed binaries (cmd/mirrord) mount one front per site, and
// cmd/loadgen plays httperf's role against it.
package httpfront

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/status"
)

// Stats summarizes a front's request handling.
type Stats struct {
	Requests  uint64 `json:"requests"`
	Updates   uint64 `json:"updates"`
	Busy      uint64 `json:"busy"`
	Bytes     uint64 `json:"bytes"`
	UptimeSec int64  `json:"uptime_sec"`
	Pending   int    `json:"pending"`
	// SnapshotHits/SnapshotMisses are the main unit's init-state
	// snapshot-cache counters: hits were served by concatenating
	// cached segments, misses rebuilt at least one.
	SnapshotHits   uint64 `json:"snapshot_hits"`
	SnapshotMisses uint64 `json:"snapshot_misses"`
}

// Front serves one site's client requests over HTTP. Counters are
// atomics so stats accounting never serializes concurrent /init
// handlers.
type Front struct {
	main     *core.MainUnit
	reg      *obs.Registry
	ingest   atomic.Pointer[func(*event.Event) error]
	statusFn atomic.Pointer[func() status.Document]
	srv      *http.Server
	ln       net.Listener
	start    time.Time

	requests atomic.Uint64
	busy     atomic.Uint64
	bytes    atomic.Uint64
	updates  atomic.Uint64
}

// New builds a front for the given main unit (not yet listening) with
// a private metrics registry serving only the front's own counters.
func New(main *core.MainUnit) *Front {
	return NewWithRegistry(main, obs.NewRegistry())
}

// NewWithRegistry builds a front exporting reg at /metrics in the
// Prometheus text format, alongside the front's own http_* counters.
// Pass the site's shared registry so one scrape covers the whole site.
func NewWithRegistry(main *core.MainUnit, reg *obs.Registry) *Front {
	f := &Front{main: main, reg: reg, start: time.Now()}
	if reg != nil {
		reg.Describe("http_requests_total", "Init-state requests answered over HTTP.")
		reg.CounterFunc("http_requests_total", func() float64 { return float64(f.requests.Load()) })
		reg.Describe("http_updates_total", "Client-generated updates accepted over HTTP.")
		reg.CounterFunc("http_updates_total", func() float64 { return float64(f.updates.Load()) })
		reg.Describe("http_busy_total", "Init-state requests rejected with the buffer full.")
		reg.CounterFunc("http_busy_total", func() float64 { return float64(f.busy.Load()) })
		reg.Describe("http_bytes_total", "Init-state bytes served over HTTP.")
		reg.CounterFunc("http_bytes_total", func() float64 { return float64(f.bytes.Load()) })
		reg.Describe("http_uptime_seconds", "Seconds since the front started.")
		reg.GaugeFunc("http_uptime_seconds", func() float64 { return time.Since(f.start).Seconds() })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/init", f.handleInit)
	mux.HandleFunc("/update", f.handleUpdate)
	mux.HandleFunc("/healthz", f.handleHealth)
	mux.HandleFunc("/stats", f.handleStats)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/cluster/status", f.handleClusterStatus)
	f.srv = &http.Server{Handler: mux}
	return f
}

// Registry exposes the registry served at /metrics.
func (f *Front) Registry() *obs.Registry { return f.reg }

// Handler exposes the front's full mux (/init, /update, /healthz,
// /stats, /metrics, /cluster/status) so the same routes can be bound
// on an additional listener (cmd/mirrord's -statusaddr).
func (f *Front) Handler() http.Handler { return f.srv.Handler }

// SetStatus installs the provider behind GET /cluster/status. Until one
// is installed the endpoint answers 404.
func (f *Front) SetStatus(fn func() status.Document) {
	f.statusFn.Store(&fn)
}

// EnableUpdates accepts client-generated state updates at POST /update
// (the paper: "certain clients may generate additional state updates,
// such as changes in flights, crews, or passengers"). Only the central
// site's front should enable this — events enter the OIS through the
// central receiving task, which assigns their timestamps.
func (f *Front) EnableUpdates(ingest func(*event.Event) error) {
	f.ingest.Store(&ingest)
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (f *Front) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("httpfront: %w", err)
	}
	f.ln = ln
	go f.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// handleInit answers a thin client's initialization-state request. The
// X-Init-VT response header carries the main unit's progress timestamp
// so the client can anchor its update-stream stale/gap tracking at the
// snapshot instead of at zero (a client that re-initializes mid-stream
// would otherwise re-count every buffered update as fresh). The anchor
// is captured BEFORE the snapshot is requested: an anchor at or below
// the snapshot's coverage is safe (re-applied updates are idempotent),
// one above it would silently drop the updates in between.
func (f *Front) handleInit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	anchor := f.main.LastProcessed()
	state, err := f.main.RequestInitState()
	switch {
	case errors.Is(err, core.ErrBusy):
		f.busy.Add(1)
		http.Error(w, "request buffer full", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	f.requests.Add(1)
	f.bytes.Add(uint64(len(state)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Init-VT", anchor.String())
	w.Write(state)
}

// maxUpdateBody bounds a POST /update body; a single encoded event is
// far smaller.
const maxUpdateBody = 1 << 20

// handleUpdate ingests one client-generated update: the POST body is
// a single binary-encoded event.
func (f *Front) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ingest := f.ingest.Load()
	if ingest == nil {
		http.Error(w, "updates not accepted at this site", http.StatusForbidden)
		return
	}
	// Read one byte past the limit so an oversized body is
	// distinguishable from one that merely fills it: a LimitReader at
	// the limit would silently truncate and then fail (or worse,
	// succeed) on a partial event.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUpdateBody+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxUpdateBody {
		http.Error(w, "update body exceeds 1MiB", http.StatusRequestEntityTooLarge)
		return
	}
	e, n, err := event.Unmarshal(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad event: %v", err), http.StatusBadRequest)
		return
	}
	if n != len(body) {
		// A body with trailing garbage is a malformed request, not "an
		// event plus noise we happen to ignore".
		http.Error(w, fmt.Sprintf("bad event: %d trailing bytes", len(body)-n), http.StatusBadRequest)
		return
	}
	if !e.Type.IsData() {
		http.Error(w, "control events not accepted", http.StatusBadRequest)
		return
	}
	if err := (*ingest)(e); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	f.updates.Add(1)
	w.WriteHeader(http.StatusAccepted)
}

func (f *Front) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (f *Front) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.Stats())
}

// handleClusterStatus serves the aggregated cluster-status document as
// JSON (the central site's view, or a mirror's local one).
func (f *Front) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fn := f.statusFn.Load()
	if fn == nil {
		http.Error(w, "cluster status not available at this site", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode((*fn)())
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (f *Front) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = f.reg.WritePrometheus(w)
}

// Stats returns a snapshot of the front's counters.
func (f *Front) Stats() Stats {
	hits, misses := f.main.SnapshotCacheStats()
	return Stats{
		Requests:       f.requests.Load(),
		Updates:        f.updates.Load(),
		Busy:           f.busy.Load(),
		Bytes:          f.bytes.Load(),
		UptimeSec:      int64(time.Since(f.start).Seconds()),
		Pending:        f.main.PendingRequests(),
		SnapshotHits:   hits,
		SnapshotMisses: misses,
	}
}

// Close stops the server.
func (f *Front) Close() error {
	return f.srv.Close()
}
