package httpfront

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"adaptmirror/internal/core"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/status"
)

func front(t *testing.T, cfg core.MainConfig) (*Front, string, *core.MainUnit) {
	t.Helper()
	m := core.NewMainUnit(cfg)
	f := New(m)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		f.Close()
		m.Close()
	})
	return f, addr, m
}

func TestInitServesState(t *testing.T) {
	f, addr, m := front(t, core.MainConfig{})
	m.Deliver(event.NewPosition(1, 1, 10, 20, 30000, 64))
	m.Deliver(event.NewPosition(2, 2, 11, 21, 31000, 64))

	resp, err := http.Get("http://" + addr + "/init")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty init state")
	}
	if got := f.Stats().Requests; got != 1 {
		t.Fatalf("Requests = %d, want 1", got)
	}
}

func TestInitRejectsNonGet(t *testing.T) {
	_, addr, _ := front(t, core.MainConfig{})
	resp, err := http.Post("http://"+addr+"/init", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, addr, _ := front(t, core.MainConfig{})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, addr, m := front(t, core.MainConfig{})
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))
	for i := 0; i < 3; i++ {
		resp, err := http.Get("http://" + addr + "/init")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Fatalf("stats requests = %d, want 3", st.Requests)
	}
	if st.Bytes == 0 {
		t.Fatal("stats bytes = 0")
	}
	if st.SnapshotHits+st.SnapshotMisses != 3 {
		t.Fatalf("snapshot hits+misses = %d+%d, want 3", st.SnapshotHits, st.SnapshotMisses)
	}
	if st.SnapshotMisses == 0 {
		t.Fatal("first /init against fresh state must be a cache miss")
	}
}

func TestClosedMainUnitReturns503(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	f := New(m)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m.Close()
	resp, err := http.Get("http://" + addr + "/init")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestListenBadAddr(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	defer m.Close()
	f := New(m)
	if _, err := f.Listen("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address must fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, m := front(t, core.MainConfig{RequestWorkers: 2})
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			resp, err := http.Get("http://" + addr + "/init")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestUpdateEndpoint(t *testing.T) {
	var got []*event.Event
	m := core.NewMainUnit(core.MainConfig{})
	f := New(m)
	f.EnableUpdates(func(e *event.Event) error {
		got = append(got, e)
		return nil
	})
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer m.Close()

	e := event.NewStatus(9, 1, event.StatusDeparted, 64)
	resp, err := http.Post("http://"+addr+"/update", "application/octet-stream",
		bytes.NewReader(e.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if len(got) != 1 || got[0].Flight != 9 || got[0].Status != event.StatusDeparted {
		t.Fatalf("ingested = %v", got)
	}
	if f.Stats().Updates != 1 {
		t.Fatalf("Updates stat = %d", f.Stats().Updates)
	}
}

func TestUpdateRejectedWhenDisabled(t *testing.T) {
	_, addr, _ := front(t, core.MainConfig{})
	e := event.NewStatus(1, 1, event.StatusDeparted, 16)
	resp, err := http.Post("http://"+addr+"/update", "application/octet-stream",
		bytes.NewReader(e.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403 (mirror sites do not ingest)", resp.StatusCode)
	}
}

func TestUpdateRejectsGarbageAndControl(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	f := New(m)
	f.EnableUpdates(func(*event.Event) error { return nil })
	addr, _ := f.Listen("127.0.0.1:0")
	defer f.Close()
	defer m.Close()

	resp, _ := http.Post("http://"+addr+"/update", "application/octet-stream",
		bytes.NewReader([]byte{1, 2, 3}))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status = %d, want 400", resp.StatusCode)
	}
	ctrl := event.NewControl(event.TypeChkpt, nil)
	resp, _ = http.Post("http://"+addr+"/update", "application/octet-stream",
		bytes.NewReader(ctrl.Marshal()))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("control status = %d, want 400", resp.StatusCode)
	}
	// GET not allowed.
	resp, _ = http.Get("http://" + addr + "/update")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	m := core.NewMainUnit(core.MainConfig{Obs: reg, Site: "central"})
	f := NewWithRegistry(m, reg)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer m.Close()
	if f.Registry() != reg {
		t.Fatal("Registry() must expose the shared registry")
	}

	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))
	if _, err := m.RequestInitState(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"http_requests_total 0",
		`pending_requests{site="central"} 0`,
		`snapshot_cache_misses_total{site="central"} 1`,
		`requests_served_total{site="central"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if err := obs.LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("scrape fails lint: %v\n%s", err, out)
	}
}

// TestConcurrentScrapesDuringStorm drives an update storm plus /init
// traffic while hammering /stats and /metrics: the handlers must stay
// race-clean and the counters monotone across scrapes.
func TestConcurrentScrapesDuringStorm(t *testing.T) {
	reg := obs.NewRegistry()
	m := core.NewMainUnit(core.MainConfig{Obs: reg, Site: "central", RequestWorkers: 2})
	f := NewWithRegistry(m, reg)
	addr, err := f.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer m.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Update storm straight into the main unit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Deliver(event.NewPosition(event.FlightID(i%64), i, 1, 2, 3, 64))
		}
	}()
	// Client init requests, so the serving counters move too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/init")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	scrape := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	metricValue := func(exposition, name string) float64 {
		for _, line := range strings.Split(exposition, "\n") {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
				fields := strings.Fields(line)
				v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
				if err != nil {
					t.Fatalf("bad value in %q: %v", line, err)
				}
				return v
			}
		}
		return -1
	}

	var scrapeWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var lastServed, lastProcessed float64
			var lastStats Stats
			for i := 0; i < 25; i++ {
				out, err := scrape("/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				if err := obs.LintPrometheus(strings.NewReader(out)); err != nil {
					t.Errorf("mid-storm scrape fails lint: %v", err)
					return
				}
				served := metricValue(out, "requests_served_total")
				processed := metricValue(out, "events_processed_total")
				if served < lastServed || processed < lastProcessed {
					t.Errorf("counter went backwards: served %v→%v, processed %v→%v",
						lastServed, served, lastProcessed, processed)
					return
				}
				lastServed, lastProcessed = served, processed

				raw, err := scrape("/stats")
				if err != nil {
					t.Error(err)
					return
				}
				var st Stats
				if err := json.Unmarshal([]byte(raw), &st); err != nil {
					t.Errorf("bad /stats payload %q: %v", raw, err)
					return
				}
				if st.Requests < lastStats.Requests || st.Bytes < lastStats.Bytes {
					t.Errorf("/stats went backwards: %+v after %+v", st, lastStats)
					return
				}
				lastStats = st
			}
		}()
	}
	scrapeWG.Wait()
	close(stop)
	wg.Wait()
}

// TestClusterStatusEndpoint pins the /cluster/status contract: 404
// until a document source is installed with SetStatus, 405 on non-GET,
// then a JSON document built fresh per request.
func TestClusterStatusEndpoint(t *testing.T) {
	f, addr, _ := front(t, core.MainConfig{})
	url := "http://" + addr + "/cluster/status"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-SetStatus status = %d, want 404", resp.StatusCode)
	}

	calls := 0
	f.SetStatus(func() status.Document {
		calls++
		return status.Document{Site: "central", Role: "central"}
	})

	resp, err = http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}

	for i := 1; i <= 2; i++ {
		resp, err = http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var doc status.Document
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if doc.Site != "central" || doc.Role != "central" {
			t.Fatalf("document = %+v", doc)
		}
		if calls != i {
			t.Fatalf("builder ran %d times after %d GETs, want fresh per request", calls, i)
		}
	}
}
