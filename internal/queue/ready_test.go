package queue

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"adaptmirror/internal/event"
)

func ev(seq uint64) *event.Event {
	return &event.Event{Type: event.TypeFAAPosition, Seq: seq, Coalesced: 1}
}

func TestReadyFIFO(t *testing.T) {
	q := NewReady(0)
	for i := uint64(0); i < 10; i++ {
		if err := q.Put(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := uint64(0); i < 10; i++ {
		e, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != i {
			t.Fatalf("got seq %d, want %d", e.Seq, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestReadyGetBlocksUntilPut(t *testing.T) {
	q := NewReady(0)
	done := make(chan *event.Event, 1)
	go func() {
		e, err := q.Get()
		if err != nil {
			t.Error(err)
		}
		done <- e
	}()
	select {
	case <-done:
		t.Fatal("Get returned before Put")
	case <-time.After(10 * time.Millisecond):
	}
	if err := q.Put(ev(42)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-done:
		if e.Seq != 42 {
			t.Fatalf("seq = %d, want 42", e.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not wake up")
	}
}

func TestReadyBoundedBackpressure(t *testing.T) {
	q := NewReady(2)
	if err := q.Put(ev(1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(ev(2)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- q.Put(ev(3)) }()
	select {
	case <-blocked:
		t.Fatal("Put must block when full")
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Put did not unblock after Get")
	}
}

func TestReadyCloseDrains(t *testing.T) {
	q := NewReady(0)
	q.Put(ev(1))
	q.Put(ev(2))
	q.Close()
	if err := q.Put(ev(3)); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	for i := uint64(1); i <= 2; i++ {
		e, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != i {
			t.Fatalf("seq = %d, want %d", e.Seq, i)
		}
	}
	if _, err := q.Get(); err != ErrClosed {
		t.Fatalf("Get on drained closed queue = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestReadyCloseWakesBlockedGetters(t *testing.T) {
	q := NewReady(0)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := q.Get()
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	q.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Fatalf("err = %v, want ErrClosed", err)
			}
		case <-time.After(time.Second):
			t.Fatal("blocked Get not woken by Close")
		}
	}
}

func TestReadyCloseWakesBlockedPutters(t *testing.T) {
	q := NewReady(1)
	q.Put(ev(1))
	errs := make(chan error, 1)
	go func() { errs <- q.Put(ev(2)) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-errs:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put not woken by Close")
	}
}

func TestReadyGetBatch(t *testing.T) {
	q := NewReady(0)
	for i := uint64(0); i < 5; i++ {
		q.Put(ev(i))
	}
	batch, err := q.GetBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch size = %d, want 3", len(batch))
	}
	for i, e := range batch {
		if e.Seq != uint64(i) {
			t.Fatalf("batch[%d].Seq = %d, want %d", i, e.Seq, i)
		}
	}
	batch, err = q.GetBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("second batch size = %d, want 2", len(batch))
	}
}

func TestReadyGetBatchMinimumOne(t *testing.T) {
	q := NewReady(0)
	q.Put(ev(7))
	batch, err := q.GetBatch(0)
	if err != nil || len(batch) != 1 || batch[0].Seq != 7 {
		t.Fatalf("GetBatch(0) = %v, %v", batch, err)
	}
}

func TestReadyHighWater(t *testing.T) {
	q := NewReady(0)
	for i := uint64(0); i < 7; i++ {
		q.Put(ev(i))
	}
	q.Get()
	q.Get()
	q.Put(ev(99))
	if hwm := q.HighWater(); hwm != 7 {
		t.Fatalf("HighWater = %d, want 7", hwm)
	}
}

func TestReadyConcurrentProducersConsumers(t *testing.T) {
	q := NewReady(64)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(ev(uint64(p*perProducer + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	got := make(chan uint64, producers*perProducer)
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				e, err := q.Get()
				if err != nil {
					return
				}
				got <- e.Seq
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	close(got)
	seen := make(map[uint64]bool)
	for s := range got {
		if seen[s] {
			t.Fatalf("duplicate event %d", s)
		}
		seen[s] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d events, want %d", len(seen), producers*perProducer)
	}
}

func TestReadyCompaction(t *testing.T) {
	// Exercise the internal buffer compaction path (head > 1024).
	q := NewReady(0)
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 2000; i++ {
			q.Put(ev(i))
		}
		for i := uint64(0); i < 2000; i++ {
			e, err := q.Get()
			if err != nil || e.Seq != i {
				t.Fatalf("round %d: got (%v, %v), want seq %d", round, e, err, i)
			}
		}
	}
}

func TestReadyPutBatchFIFO(t *testing.T) {
	q := NewReady(0)
	batch := make([]*event.Event, 5)
	for i := range batch {
		batch[i] = ev(uint64(i))
	}
	if err := q.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := uint64(0); i < 5; i++ {
		e, err := q.Get()
		if err != nil || e.Seq != i {
			t.Fatalf("got (%v, %v), want seq %d", e, err, i)
		}
	}
}

func TestReadyPutBatchBlocksWhenFull(t *testing.T) {
	q := NewReady(2)
	batch := make([]*event.Event, 5)
	for i := range batch {
		batch[i] = ev(uint64(i))
	}
	done := make(chan error, 1)
	go func() { done <- q.PutBatch(batch) }()
	select {
	case <-done:
		t.Fatal("PutBatch must block when the batch exceeds capacity")
	case <-time.After(10 * time.Millisecond):
	}
	// Draining lets the producer finish; order is preserved end to end.
	for i := uint64(0); i < 5; i++ {
		e, err := q.Get()
		if err != nil || e.Seq != i {
			t.Fatalf("got (%v, %v), want seq %d", e, err, i)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("PutBatch did not finish after drain")
	}
}

func TestReadyCloseWakesAllBlocked(t *testing.T) {
	// Regression test for the Signal-only-on-progress discipline: Close
	// must still wake every blocked producer and consumer, not just one.
	full := NewReady(1)
	full.Put(ev(0))
	putErrs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { putErrs <- full.Put(ev(1)) }()
	}
	empty := NewReady(0)
	getErrs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := empty.Get()
			getErrs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	full.Close()
	empty.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-putErrs:
			if err != ErrClosed {
				t.Fatalf("blocked Put = %v, want ErrClosed", err)
			}
		case <-time.After(time.Second):
			t.Fatal("blocked Put not woken by Close")
		}
		select {
		case err := <-getErrs:
			if err != ErrClosed {
				t.Fatalf("blocked Get = %v, want ErrClosed", err)
			}
		case <-time.After(time.Second):
			t.Fatal("blocked Get not woken by Close")
		}
	}
}

func TestReadyRingWraparoundQuick(t *testing.T) {
	// Property: any interleaving of batch puts and batch gets is FIFO,
	// across ring wraparounds and growth.
	prop := func(sizes []uint8) bool {
		q := NewReady(0)
		var put, got uint64
		for _, s := range sizes {
			n := int(s%7) + 1
			batch := make([]*event.Event, n)
			for i := range batch {
				batch[i] = ev(put)
				put++
			}
			if err := q.PutBatch(batch); err != nil {
				return false
			}
			out, err := q.GetAppend(nil, int(s%5)+1)
			if err != nil {
				return false
			}
			for _, e := range out {
				if e.Seq != got {
					return false
				}
				got++
			}
		}
		q.Close()
		for {
			e, err := q.Get()
			if err != nil {
				break
			}
			if e.Seq != got {
				return false
			}
			got++
		}
		return got == put
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadyGetAppendReusesScratch(t *testing.T) {
	q := NewReady(0)
	for i := uint64(0); i < 4; i++ {
		q.Put(ev(i))
	}
	scratch := make([]*event.Event, 0, 8)
	out, err := q.GetAppend(scratch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || cap(out) != cap(scratch) {
		t.Fatalf("GetAppend did not fill the provided scratch: len %d cap %d", len(out), cap(out))
	}
	for i, e := range out {
		if e.Seq != uint64(i) {
			t.Fatalf("out[%d].Seq = %d, want %d", i, e.Seq, i)
		}
	}
}

func BenchmarkReadyPutGet(b *testing.B) {
	q := NewReady(0)
	e := ev(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(e)
		q.Get()
	}
}
