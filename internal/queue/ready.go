// Package queue provides the data structures shared by the tasks of an
// auxiliary unit: the ready queue feeding the sending task, the backup
// queue retaining sent events until checkpoint commit, and the status
// table recording per-flight history for the semantic mirroring rules
// (paper Section 3.1-3.2).
package queue

import (
	"errors"
	"sync"

	"adaptmirror/internal/event"
)

// ErrClosed is returned by queue operations after Close.
var ErrClosed = errors.New("queue: closed")

// Ready is the blocking FIFO between the receiving task (producer) and
// the sending task (consumer). Events live in a power-of-two ring
// buffer, so sustained load recirculates one allocation instead of
// repeatedly re-slicing a head-trimmed slice. Its length is one of the
// monitored variables driving adaptation, so Len is cheap and safe to
// call from other goroutines.
type Ready struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	notFul *sync.Cond
	buf    []*event.Event // ring storage; len(buf) is a power of two
	head   int            // index of the oldest event
	n      int            // queued events
	cap    int            // 0 = unbounded
	closed bool

	// Waiter counts let Put/Get signal only when a blocked goroutine
	// can actually make progress, instead of unconditionally.
	putWaiters int
	getWaiters int

	// hwm tracks the high-water mark of the queue length, reported by
	// experiment harnesses to characterize backlog behaviour.
	hwm int
}

// NewReady returns a ready queue. capacity 0 means unbounded; a
// positive capacity makes Put block when full (back-pressure on the
// receiving task, as with a fixed-size kernel queue).
func NewReady(capacity int) *Ready {
	q := &Ready{cap: capacity}
	q.nonEmp = sync.NewCond(&q.mu)
	q.notFul = sync.NewCond(&q.mu)
	return q
}

// push appends e to the ring; caller holds q.mu.
func (q *Ready) push(e *event.Event) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	q.n++
	if q.n > q.hwm {
		q.hwm = q.n
	}
}

// grow doubles the ring, unwrapping the queued events to the front;
// caller holds q.mu.
func (q *Ready) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 64
	}
	buf := make([]*event.Event, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// take pops one event; caller holds q.mu and guarantees non-empty.
func (q *Ready) take() *event.Event {
	e := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return e
}

// full reports whether a bounded queue has no free slot; caller holds
// q.mu.
func (q *Ready) full() bool { return q.cap > 0 && q.n >= q.cap }

// signalNonEmpty wakes one consumer if one is blocked and an event is
// queued for it; caller holds q.mu.
func (q *Ready) signalNonEmpty() {
	if q.getWaiters > 0 && q.n > 0 {
		q.nonEmp.Signal()
	}
}

// signalNotFull wakes one producer if any is blocked and a slot is
// free; caller holds q.mu.
func (q *Ready) signalNotFull() {
	if q.putWaiters > 0 && !q.full() {
		q.notFul.Signal()
	}
}

// Put appends e, blocking while the queue is full. It returns ErrClosed
// if the queue was closed before the event could be enqueued.
func (q *Ready) Put(e *event.Event) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.full() && !q.closed {
		q.putWaiters++
		q.notFul.Wait()
		q.putWaiters--
	}
	if q.closed {
		return ErrClosed
	}
	q.push(e)
	q.signalNonEmpty()
	// A freed slot may admit more than one producer: chain the wakeup
	// so each admitted producer passes the baton while space remains.
	q.signalNotFull()
	return nil
}

// PutBatch appends every event of batch in order, blocking as needed
// while the queue is full. It returns ErrClosed if the queue closes
// before the whole batch is enqueued (events already enqueued remain
// for consumers to drain).
func (q *Ready) PutBatch(batch []*event.Event) error {
	if len(batch) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range batch {
		for q.full() && !q.closed {
			q.putWaiters++
			q.notFul.Wait()
			q.putWaiters--
		}
		if q.closed {
			return ErrClosed
		}
		q.push(e)
		q.signalNonEmpty()
	}
	q.signalNotFull()
	return nil
}

// Get removes and returns the oldest event, blocking while the queue is
// empty. After Close, Get drains remaining events and then returns
// ErrClosed.
func (q *Ready) Get() (*event.Event, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.getWaiters++
		q.nonEmp.Wait()
		q.getWaiters--
	}
	if q.n == 0 {
		return nil, ErrClosed
	}
	e := q.take()
	q.signalNotFull()
	// Events may remain for other blocked consumers.
	q.signalNonEmpty()
	return e, nil
}

// GetBatch removes up to max events in one call (at least one; it
// blocks while empty). The sending task uses it to coalesce runs of
// events. After Close, remaining events are drained before ErrClosed.
func (q *Ready) GetBatch(max int) ([]*event.Event, error) {
	out, err := q.GetAppend(nil, max)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetAppend removes up to max events (at least one; it blocks while
// empty) and appends them to dst, returning the extended slice. The
// sending task passes a reused scratch slice so a draining loop
// allocates nothing in steady state. After Close, remaining events are
// drained before ErrClosed.
func (q *Ready) GetAppend(dst []*event.Event, max int) ([]*event.Event, error) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.getWaiters++
		q.nonEmp.Wait()
		q.getWaiters--
	}
	if q.n == 0 {
		return dst, ErrClosed
	}
	n := q.n
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, q.take())
	}
	q.signalNotFull()
	q.signalNonEmpty()
	return dst, nil
}

// Len returns the current number of queued events.
func (q *Ready) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// HighWater returns the maximum length the queue has reached.
func (q *Ready) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hwm
}

// Close marks the queue closed. Blocked producers fail with ErrClosed;
// consumers drain remaining events, then receive ErrClosed. Close is
// idempotent.
func (q *Ready) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.nonEmp.Broadcast()
	q.notFul.Broadcast()
}
