// Package queue provides the data structures shared by the tasks of an
// auxiliary unit: the ready queue feeding the sending task, the backup
// queue retaining sent events until checkpoint commit, and the status
// table recording per-flight history for the semantic mirroring rules
// (paper Section 3.1-3.2).
package queue

import (
	"errors"
	"sync"

	"adaptmirror/internal/event"
)

// ErrClosed is returned by queue operations after Close.
var ErrClosed = errors.New("queue: closed")

// Ready is the blocking FIFO between the receiving task (producer) and
// the sending task (consumer). Its length is one of the monitored
// variables driving adaptation, so Len is cheap and safe to call from
// other goroutines.
type Ready struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	notFul *sync.Cond
	buf    []*event.Event
	head   int
	cap    int // 0 = unbounded
	closed bool

	// hwm tracks the high-water mark of the queue length, reported by
	// experiment harnesses to characterize backlog behaviour.
	hwm int
}

// NewReady returns a ready queue. capacity 0 means unbounded; a
// positive capacity makes Put block when full (back-pressure on the
// receiving task, as with a fixed-size kernel queue).
func NewReady(capacity int) *Ready {
	q := &Ready{cap: capacity}
	q.nonEmp = sync.NewCond(&q.mu)
	q.notFul = sync.NewCond(&q.mu)
	return q
}

// Put appends e, blocking while the queue is full. It returns ErrClosed
// if the queue was closed before the event could be enqueued.
func (q *Ready) Put(e *event.Event) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.cap > 0 && len(q.buf)-q.head >= q.cap && !q.closed {
		q.notFul.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf = append(q.buf, e)
	if n := len(q.buf) - q.head; n > q.hwm {
		q.hwm = n
	}
	q.nonEmp.Signal()
	return nil
}

// Get removes and returns the oldest event, blocking while the queue is
// empty. After Close, Get drains remaining events and then returns
// ErrClosed.
func (q *Ready) Get() (*event.Event, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == q.head && !q.closed {
		q.nonEmp.Wait()
	}
	if len(q.buf) == q.head {
		return nil, ErrClosed
	}
	e := q.take()
	q.notFul.Signal()
	return e, nil
}

// GetBatch removes up to max events in one call (at least one; it
// blocks while empty). The sending task uses it to coalesce runs of
// events. After Close, remaining events are drained before ErrClosed.
func (q *Ready) GetBatch(max int) ([]*event.Event, error) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == q.head && !q.closed {
		q.nonEmp.Wait()
	}
	if len(q.buf) == q.head {
		return nil, ErrClosed
	}
	n := len(q.buf) - q.head
	if n > max {
		n = max
	}
	out := make([]*event.Event, n)
	for i := range out {
		out[i] = q.take()
	}
	q.notFul.Broadcast()
	return out, nil
}

// take pops one event; caller holds q.mu and guarantees non-empty.
func (q *Ready) take() *event.Event {
	e := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return e
}

// Len returns the current number of queued events.
func (q *Ready) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// HighWater returns the maximum length the queue has reached.
func (q *Ready) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hwm
}

// Close marks the queue closed. Blocked producers fail with ErrClosed;
// consumers drain remaining events, then receive ErrClosed. Close is
// idempotent.
func (q *Ready) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.nonEmp.Broadcast()
	q.notFul.Broadcast()
}
