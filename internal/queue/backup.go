package queue

import (
	"fmt"
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// Backup retains sent events until the checkpoint protocol commits a
// timestamp covering them (paper Section 3.2.1). Events are appended in
// timestamp order — the central site's sending task is the only writer
// and admission stamps are monotonic — and trimmed from the front at
// commit. Its length is the second monitored variable used by the
// adaptation mechanism.
// releaseGroup tracks one owned batch's retained slab: remaining counts
// the group's events still in the backup, and release fires when the
// last one is trimmed.
type releaseGroup struct {
	remaining int
	release   func()
}

type Backup struct {
	mu  sync.Mutex
	buf []*event.Event
	hwm int

	// rel parallels buf once any owned batch has been appended: rel[i]
	// is the release group retaining buf[i]'s slab, or nil for events
	// appended without an ownership transfer. It stays nil (no parallel
	// bookkeeping at all) until the first AppendOwnedBatch.
	rel []*releaseGroup

	// trimmedEvents/trimmedBytes account everything Commit has ever
	// released — the per-checkpoint-round reclamation the observability
	// layer exports.
	trimmedEvents uint64
	trimmedBytes  uint64

	// committed is the highest timestamp trimmed so far; commits at or
	// below it are ignored (the "commit no longer in backup" rule).
	committed vclock.VC
}

// NewBackup returns an empty backup queue.
func NewBackup() *Backup { return &Backup{} }

// Append stores a sent event until commit. Events must be appended in
// non-decreasing timestamp order.
func (b *Backup) Append(e *event.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, e)
	if b.rel != nil {
		b.rel = append(b.rel, nil)
	}
	if len(b.buf) > b.hwm {
		b.hwm = len(b.buf)
	}
}

// AppendBatch stores a batch of sent events until commit with a single
// lock acquisition. Events must be in non-decreasing timestamp order,
// both within the batch and relative to earlier appends. The queue
// retains the events, not the passed slice, so callers may reuse it.
func (b *Backup) AppendBatch(batch []*event.Event) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, batch...)
	if b.rel != nil {
		for range batch {
			b.rel = append(b.rel, nil)
		}
	}
	if len(b.buf) > b.hwm {
		b.hwm = len(b.buf)
	}
}

// AppendOwnedBatch stores a batch whose events borrow from a pooled
// slab the caller has retained for the backup: release is invoked
// exactly once, after Commit has trimmed the batch's last event, at
// which point no retained event references the slab any more. Ordering
// requirements match AppendBatch. An empty batch releases immediately.
func (b *Backup) AppendOwnedBatch(batch []*event.Event, release func()) {
	if len(batch) == 0 {
		if release != nil {
			release()
		}
		return
	}
	b.mu.Lock()
	if b.rel == nil {
		// First owned append: backfill the parallel array for the
		// events already retained.
		b.rel = make([]*releaseGroup, len(b.buf), len(b.buf)+len(batch))
	}
	g := &releaseGroup{remaining: len(batch), release: release}
	b.buf = append(b.buf, batch...)
	for range batch {
		b.rel = append(b.rel, g)
	}
	if len(b.buf) > b.hwm {
		b.hwm = len(b.buf)
	}
	b.mu.Unlock()
}

// Last returns the timestamp of the most recently appended event, or
// nil when the queue is empty. The checkpoint coordinator proposes this
// value in its CHKPT message.
func (b *Backup) Last() vclock.VC {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) == 0 {
		return nil
	}
	return b.buf[len(b.buf)-1].VT.Clone()
}

// LastAtOrBefore returns the timestamp of the newest retained event
// whose timestamp is ≤ limit, or nil if none is. Participants use it to
// answer a CHKPT proposal with their own safe value.
func (b *Backup) LastAtOrBefore(limit vclock.VC) vclock.VC {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := len(b.buf) - 1; i >= 0; i-- {
		if b.buf[i].VT.LessEq(limit) {
			return b.buf[i].VT.Clone()
		}
	}
	return nil
}

// Contains reports whether an event with timestamp ts is still
// retained. Per the protocol, a unit receiving a commit identifying an
// event no longer in its backup ignores it.
func (b *Backup) Contains(ts vclock.VC) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := len(b.buf) - 1; i >= 0; i-- {
		if b.buf[i].VT.Compare(ts) == vclock.Equal {
			return true
		}
	}
	return false
}

// Commit removes every event with timestamp ≤ ts and records ts as
// committed. It returns the number of events released. Commits not
// newer than a previous commit are ignored (later checkpoints subsume
// earlier ones).
func (b *Backup) Commit(ts vclock.VC) int {
	b.mu.Lock()
	if b.committed != nil && ts.LessEq(b.committed) {
		b.mu.Unlock()
		return 0
	}
	var fire []func()
	n := 0
	for n < len(b.buf) && b.buf[n].VT.LessEq(ts) {
		b.trimmedBytes += uint64(len(b.buf[n].Payload))
		b.buf[n] = nil
		if b.rel != nil {
			if g := b.rel[n]; g != nil {
				b.rel[n] = nil
				if g.remaining--; g.remaining == 0 {
					fire = append(fire, g.release)
				}
			}
		}
		n++
	}
	if n > 0 {
		b.buf = append(b.buf[:0], b.buf[n:]...)
		if b.rel != nil {
			b.rel = append(b.rel[:0], b.rel[n:]...)
		}
	}
	b.trimmedEvents += uint64(n)
	b.committed = b.committed.Merge(ts)
	b.mu.Unlock()
	// Slab releases run outside the queue lock: a release is a pool
	// return plus reference-count arithmetic, but holding no lock here
	// keeps the queue reentrancy-safe whatever the release closure does.
	for _, f := range fire {
		if f != nil {
			f()
		}
	}
	return n
}

// Rebase empties the queue and folds cut into the committed watermark.
// A recovery state transfer re-anchors the receiving replica at its
// cut — it replaces retained history rather than extending it — so the
// receiver's backup drops with the history it retained: every entry is
// either covered by the cut (inside the state body) or an orphan of a
// failed central's epoch that no future commit will ever identify, and
// keeping orphans would break append ordering the moment a promoted
// central's resumed clock stamps fresh traffic. Returns the number of
// entries dropped.
//
// Owned-batch slab references are dropped WITHOUT firing their release
// groups. Commit's release safety rests on the commit cut covering
// this replica's own processed watermark — everything trimmed has been
// applied, so its views are dead. A rebase has no such guarantee: the
// transfer can arrive while earlier views still sit unprocessed in the
// site's ready/main queues, and returning their slab to the pool would
// let a new batch overwrite memory the apply path is still reading.
// The slabs leak to the garbage collector instead (the same idiom the
// fan-out uses for non-owned senders); rebases are per-recovery rare,
// so the pool miss is noise.
func (b *Backup) Rebase(cut vclock.VC) int {
	b.mu.Lock()
	n := len(b.buf)
	for i := range b.buf {
		b.trimmedBytes += uint64(len(b.buf[i].Payload))
		b.buf[i] = nil
		if b.rel != nil {
			b.rel[i] = nil
		}
	}
	b.buf = b.buf[:0]
	if b.rel != nil {
		b.rel = b.rel[:0]
	}
	b.trimmedEvents += uint64(n)
	b.committed = b.committed.Merge(cut)
	b.mu.Unlock()
	return n
}

// Trimmed returns the cumulative number of events and payload bytes
// Commit has released since the queue was created.
func (b *Backup) Trimmed() (events, bytes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trimmedEvents, b.trimmedBytes
}

// Committed returns the highest committed timestamp (nil before the
// first commit).
func (b *Backup) Committed() vclock.VC {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.committed.Clone()
}

// Len returns the number of retained events.
func (b *Backup) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// HighWater returns the maximum length the queue has reached.
func (b *Backup) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hwm
}

// CheckInvariants verifies the queue's structural safety properties:
// retained events are in non-decreasing timestamp order, and no
// retained event is covered by the committed timestamp (Commit must
// never leave behind an event it should have trimmed, and must never
// trim past what was committed — the chaos suite's "no over-trim"
// property). It returns the first violation found, or nil.
func (b *Backup) CheckInvariants() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var prev vclock.VC
	for i, e := range b.buf {
		if e.VT == nil {
			return fmt.Errorf("queue: retained event %d has no timestamp", i)
		}
		if prev != nil && !prev.LessEq(e.VT) {
			return fmt.Errorf("queue: retained events out of order at %d: %v then %v", i, prev, e.VT)
		}
		prev = e.VT
		if b.committed != nil && e.VT.LessEq(b.committed) {
			return fmt.Errorf("queue: retained event %d (%v) is at or below committed %v", i, e.VT, b.committed)
		}
	}
	return nil
}

// Snapshot returns deep copies of the retained events in order. The
// recovery extension replays them to a rejoining mirror; copying here
// decouples that replay from the pooled slabs owned batches borrow
// from, which a concurrent Commit may release at any moment. Recovery
// is rare, so the copy is off the steady-state path.
func (b *Backup) Snapshot() []*event.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return event.CloneBatch(make([]*event.Event, 0, len(b.buf)), b.buf)
}

// SnapshotSince returns deep copies of only the retained events NOT
// covered by cut — the suffix a rejoiner that has already committed cut
// still needs. A nil cut is equivalent to Snapshot. Because events are
// retained in non-decreasing timestamp order, the covered prefix is
// skipped rather than cloned, which is the point: a rejoiner one cut
// behind pays for one round of traffic, not the whole retained window.
func (b *Backup) SnapshotSince(cut vclock.VC) []*event.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := 0
	for i < len(b.buf) && b.buf[i].VT.LessEq(cut) {
		i++
	}
	return event.CloneBatch(make([]*event.Event, 0, len(b.buf)-i), b.buf[i:])
}
