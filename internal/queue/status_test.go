package queue

import (
	"sync"
	"testing"
	"testing/quick"

	"adaptmirror/internal/event"
)

func TestObserveStatusMonotonic(t *testing.T) {
	st := NewStatusTable()
	st.ObserveStatus(1, event.StatusBoarding)
	st.ObserveStatus(1, event.StatusLanded)
	st.ObserveStatus(1, event.StatusBoarded) // stale, must not regress
	if got := st.Status(1); got != event.StatusLanded {
		t.Fatalf("Status = %s, want landed", got)
	}
	if got := st.Status(2); got != event.StatusUnknown {
		t.Fatalf("unseen flight Status = %s, want unknown", got)
	}
}

func TestOverwriteTickSendOneOfL(t *testing.T) {
	st := NewStatusTable()
	const l = 5
	sent := 0
	for i := 0; i < 20; i++ {
		if st.OverwriteTick(7, event.TypeFAAPosition, l) {
			sent++
		}
	}
	if sent != 4 {
		t.Fatalf("sent %d of 20 with L=5, want 4", sent)
	}
	discarded, _ := st.Stats()
	if discarded != 16 {
		t.Fatalf("discarded = %d, want 16", discarded)
	}
}

func TestOverwriteTickPerFlightIndependent(t *testing.T) {
	st := NewStatusTable()
	// First event of each flight's run must be sent regardless of
	// other flights' runs.
	if !st.OverwriteTick(1, event.TypeFAAPosition, 10) {
		t.Fatal("flight 1 first event must send")
	}
	if !st.OverwriteTick(2, event.TypeFAAPosition, 10) {
		t.Fatal("flight 2 first event must send")
	}
	if st.OverwriteTick(1, event.TypeFAAPosition, 10) {
		t.Fatal("flight 1 second event must be discarded")
	}
}

func TestOverwriteTickPerTypeIndependent(t *testing.T) {
	st := NewStatusTable()
	st.OverwriteTick(1, event.TypeFAAPosition, 10)
	if !st.OverwriteTick(1, event.TypeWeather, 10) {
		t.Fatal("different type must have its own run")
	}
}

func TestOverwriteTickDisabled(t *testing.T) {
	st := NewStatusTable()
	for _, l := range []int{0, 1, -3} {
		for i := 0; i < 5; i++ {
			if !st.OverwriteTick(3, event.TypeFAAPosition, l) {
				t.Fatalf("L=%d must disable overwriting", l)
			}
		}
	}
}

func TestOverwriteFraction(t *testing.T) {
	// Property: over n events with run length l, the number sent is
	// ceil(n/l).
	f := func(n8, l8 uint8) bool {
		n := int(n8%100) + 1
		l := int(l8%20) + 2
		st := NewStatusTable()
		sent := 0
		for i := 0; i < n; i++ {
			if st.OverwriteTick(1, event.TypeFAAPosition, l) {
				sent++
			}
		}
		want := (n + l - 1) / l
		return sent == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetRun(t *testing.T) {
	st := NewStatusTable()
	st.OverwriteTick(1, event.TypeFAAPosition, 10)
	st.ResetRun(1, event.TypeFAAPosition)
	if !st.OverwriteTick(1, event.TypeFAAPosition, 10) {
		t.Fatal("after ResetRun the next event must send")
	}
	st.ResetRun(99, event.TypeFAAPosition) // unknown flight: no-op
}

func TestResetAllRuns(t *testing.T) {
	st := NewStatusTable()
	st.OverwriteTick(1, event.TypeFAAPosition, 10)
	st.OverwriteTick(2, event.TypeFAAPosition, 10)
	st.ResetAllRuns()
	if !st.OverwriteTick(1, event.TypeFAAPosition, 10) || !st.OverwriteTick(2, event.TypeFAAPosition, 10) {
		t.Fatal("after ResetAllRuns every flight's next event must send")
	}
}

func TestHasAll(t *testing.T) {
	st := NewStatusTable()
	want := []event.Status{event.StatusLanded, event.StatusAtRunway, event.StatusAtGate}
	st.ObserveStatus(5, event.StatusLanded)
	st.ObserveStatus(5, event.StatusAtRunway)
	if st.HasAll(5, want) {
		t.Fatal("HasAll true with one status missing")
	}
	st.ObserveStatus(5, event.StatusAtGate)
	if !st.HasAll(5, want) {
		t.Fatal("HasAll false with all statuses observed")
	}
	if st.HasAll(6, want) {
		t.Fatal("HasAll true for unknown flight")
	}
}

func TestTryCollapseOnce(t *testing.T) {
	st := NewStatusTable()
	want := []event.Status{event.StatusLanded, event.StatusAtRunway, event.StatusAtGate}
	if st.TryCollapse(5, want) {
		t.Fatal("collapse before any status observed")
	}
	st.ObserveStatus(5, event.StatusLanded)
	st.ObserveStatus(5, event.StatusAtRunway)
	st.ObserveStatus(5, event.StatusAtGate)
	if !st.TryCollapse(5, want) {
		t.Fatal("collapse must fire once all statuses observed")
	}
	if st.TryCollapse(5, want) {
		t.Fatal("collapse must fire only once")
	}
	_, combined := st.Stats()
	if combined != 3 {
		t.Fatalf("combined = %d, want 3", combined)
	}
}

func TestCountDiscard(t *testing.T) {
	st := NewStatusTable()
	st.CountDiscard()
	st.CountDiscard()
	d, _ := st.Stats()
	if d != 2 {
		t.Fatalf("discarded = %d, want 2", d)
	}
}

func TestFlightsCount(t *testing.T) {
	st := NewStatusTable()
	st.ObserveStatus(1, event.StatusLanded)
	st.ObserveStatus(2, event.StatusBoarding)
	st.OverwriteTick(3, event.TypeFAAPosition, 5)
	if st.Flights() != 3 {
		t.Fatalf("Flights = %d, want 3", st.Flights())
	}
}

func TestStatusTableConcurrency(t *testing.T) {
	st := NewStatusTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := event.FlightID(g % 4)
			for i := 0; i < 200; i++ {
				st.OverwriteTick(f, event.TypeFAAPosition, 10)
				st.ObserveStatus(f, event.StatusEnRoute)
				st.Status(f)
				st.HasAll(f, []event.Status{event.StatusEnRoute})
			}
		}(g)
	}
	wg.Wait()
	if st.Flights() != 4 {
		t.Fatalf("Flights = %d, want 4", st.Flights())
	}
}

func BenchmarkOverwriteTick(b *testing.B) {
	st := NewStatusTable()
	for i := 0; i < b.N; i++ {
		st.OverwriteTick(event.FlightID(i&31), event.TypeFAAPosition, 10)
	}
}
