package queue

import (
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

func stamped(seq uint64) *event.Event {
	e := ev(seq)
	e.VT = vclock.VC{seq}
	return e
}

func TestBackupLastAndLen(t *testing.T) {
	b := NewBackup()
	if b.Last() != nil {
		t.Fatal("empty backup must have nil Last")
	}
	for i := uint64(1); i <= 5; i++ {
		b.Append(stamped(i))
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	if got := b.Last(); got.Compare(vclock.VC{5}) != vclock.Equal {
		t.Fatalf("Last = %v, want <5>", got)
	}
}

func TestBackupCommitTrims(t *testing.T) {
	b := NewBackup()
	for i := uint64(1); i <= 10; i++ {
		b.Append(stamped(i))
	}
	n := b.Commit(vclock.VC{4})
	if n != 4 {
		t.Fatalf("Commit released %d, want 4", n)
	}
	if b.Len() != 6 {
		t.Fatalf("Len after commit = %d, want 6", b.Len())
	}
	if got := b.Committed(); got.Compare(vclock.VC{4}) != vclock.Equal {
		t.Fatalf("Committed = %v, want <4>", got)
	}
}

func TestBackupStaleCommitIgnored(t *testing.T) {
	b := NewBackup()
	for i := uint64(1); i <= 10; i++ {
		b.Append(stamped(i))
	}
	b.Commit(vclock.VC{6})
	if n := b.Commit(vclock.VC{4}); n != 0 {
		t.Fatalf("stale commit released %d events, want 0", n)
	}
	if n := b.Commit(vclock.VC{6}); n != 0 {
		t.Fatalf("repeated commit released %d events, want 0", n)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
}

func TestBackupLaterCommitSubsumesEarlier(t *testing.T) {
	// Paper: "if a checkpointing procedure has not completed a commit
	// before the following one is initiated, the later commit will
	// encapsulate the earlier one."
	b := NewBackup()
	for i := uint64(1); i <= 10; i++ {
		b.Append(stamped(i))
	}
	if n := b.Commit(vclock.VC{9}); n != 9 {
		t.Fatalf("released %d, want 9", n)
	}
	// The earlier (skipped) commit arrives late and must be a no-op.
	if n := b.Commit(vclock.VC{5}); n != 0 {
		t.Fatalf("late earlier commit released %d, want 0", n)
	}
}

func TestBackupContains(t *testing.T) {
	b := NewBackup()
	b.Append(stamped(1))
	b.Append(stamped(2))
	if !b.Contains(vclock.VC{2}) {
		t.Fatal("Contains(<2>) = false, want true")
	}
	if b.Contains(vclock.VC{3}) {
		t.Fatal("Contains(<3>) = true, want false")
	}
	b.Commit(vclock.VC{2})
	if b.Contains(vclock.VC{2}) {
		t.Fatal("Contains after commit = true, want false")
	}
}

func TestBackupLastAtOrBefore(t *testing.T) {
	b := NewBackup()
	for _, s := range []uint64{1, 3, 5, 7} {
		b.Append(stamped(s))
	}
	if got := b.LastAtOrBefore(vclock.VC{6}); got.Compare(vclock.VC{5}) != vclock.Equal {
		t.Fatalf("LastAtOrBefore(<6>) = %v, want <5>", got)
	}
	if got := b.LastAtOrBefore(vclock.VC{0}); got != nil {
		t.Fatalf("LastAtOrBefore(<0>) = %v, want nil", got)
	}
	if got := b.LastAtOrBefore(vclock.VC{100}); got.Compare(vclock.VC{7}) != vclock.Equal {
		t.Fatalf("LastAtOrBefore(<100>) = %v, want <7>", got)
	}
}

func TestBackupSnapshotOrder(t *testing.T) {
	b := NewBackup()
	for i := uint64(1); i <= 4; i++ {
		b.Append(stamped(i))
	}
	b.Commit(vclock.VC{2})
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 3 || snap[1].Seq != 4 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestBackupHighWater(t *testing.T) {
	b := NewBackup()
	for i := uint64(1); i <= 8; i++ {
		b.Append(stamped(i))
	}
	b.Commit(vclock.VC{8})
	b.Append(stamped(9))
	if b.HighWater() != 8 {
		t.Fatalf("HighWater = %d, want 8", b.HighWater())
	}
}

func TestBackupVectorTimestamps(t *testing.T) {
	// Two streams: commits respect the component-wise partial order.
	b := NewBackup()
	e1 := ev(1)
	e1.VT = vclock.VC{1, 0}
	e2 := ev(2)
	e2.VT = vclock.VC{1, 1}
	e3 := ev(3)
	e3.VT = vclock.VC{2, 1}
	b.Append(e1)
	b.Append(e2)
	b.Append(e3)
	if n := b.Commit(vclock.VC{1, 1}); n != 2 {
		t.Fatalf("released %d, want 2", n)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestBackupAppendBatchMatchesAppend(t *testing.T) {
	one, many := NewBackup(), NewBackup()
	var batch []*event.Event
	for i := uint64(1); i <= 6; i++ {
		one.Append(stamped(i))
		batch = append(batch, stamped(i))
	}
	many.AppendBatch(batch)
	many.AppendBatch(nil) // no-op
	if one.Len() != many.Len() {
		t.Fatalf("Len: %d vs %d", one.Len(), many.Len())
	}
	if one.Last().Compare(many.Last()) != vclock.Equal {
		t.Fatalf("Last: %v vs %v", one.Last(), many.Last())
	}
	a, b := one.Snapshot(), many.Snapshot()
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatalf("Snapshot[%d]: %d vs %d", i, a[i].Seq, b[i].Seq)
		}
	}
}

func TestBackupAppendBatchCommitInterleaving(t *testing.T) {
	b := NewBackup()
	mk := func(lo, hi uint64) []*event.Event {
		var out []*event.Event
		for i := lo; i <= hi; i++ {
			out = append(out, stamped(i))
		}
		return out
	}
	b.AppendBatch(mk(1, 5))
	if n := b.Commit(vclock.VC{3}); n != 3 {
		t.Fatalf("Commit(<3>) released %d, want 3", n)
	}
	b.AppendBatch(mk(6, 8))
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	// A stale commit between batches must stay a no-op.
	if n := b.Commit(vclock.VC{2}); n != 0 {
		t.Fatalf("stale commit released %d, want 0", n)
	}
	if n := b.Commit(vclock.VC{7}); n != 4 {
		t.Fatalf("Commit(<7>) released %d, want 4", n)
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Seq != 8 {
		t.Fatalf("Snapshot = %v, want [seq 8]", snap)
	}
	if b.HighWater() != 5 {
		t.Fatalf("HighWater = %d, want 5", b.HighWater())
	}
}

func BenchmarkBackupAppendCommit(b *testing.B) {
	bk := NewBackup()
	for i := 0; i < b.N; i++ {
		e := ev(uint64(i))
		e.VT = vclock.VC{uint64(i + 1)}
		bk.Append(e)
		if i%50 == 49 {
			bk.Commit(vclock.VC{uint64(i + 1)})
		}
	}
}
