package queue

import (
	"sync"

	"adaptmirror/internal/event"
)

// StatusTable is the per-flight history the mirroring process consults
// when applying semantic rules: the number of overwritten updates for a
// flight, the value of status events with actions attached, and which
// lifecycle states have been observed (paper Section 3.2.1). It lives
// in the auxiliary unit of the central site.
type StatusTable struct {
	mu      sync.Mutex
	flights map[event.FlightID]*flightRecord

	discarded uint64 // events dropped by overwrite/complex-seq rules
	combined  uint64 // events folded into complex/coalesced events
}

type flightRecord struct {
	status event.Status
	// runs counts, per event type, the events of that type mirrored
	// or discarded since the last one actually sent — the state behind
	// the "send 1, discard the next L-1" overwrite rule.
	runs map[event.Type]int
	// seen records lifecycle states observed for the flight, used by
	// the complex-tuple rule (landed + at-runway + at-gate → arrived).
	seen map[event.Status]bool
	// collapsed marks that a complex event has already been emitted
	// for the current seen-set, preventing duplicates.
	collapsed bool
}

// NewStatusTable returns an empty table.
func NewStatusTable() *StatusTable {
	return &StatusTable{flights: make(map[event.FlightID]*flightRecord)}
}

func (t *StatusTable) record(f event.FlightID) *flightRecord {
	r := t.flights[f]
	if r == nil {
		r = &flightRecord{
			runs: make(map[event.Type]int),
			seen: make(map[event.Status]bool),
		}
		t.flights[f] = r
	}
	return r
}

// ObserveStatus records a status transition for a flight. Stale
// transitions (earlier lifecycle states than already recorded) update
// the seen-set but not the current status.
func (t *StatusTable) ObserveStatus(f event.FlightID, s event.Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.record(f)
	r.seen[s] = true
	if s > r.status {
		r.status = s
		if !s.Terminal() {
			// A new lifecycle phase re-arms complex-event collapse.
			r.collapsed = false
		}
	}
}

// Status returns the current lifecycle state recorded for the flight
// (StatusUnknown when never observed).
func (t *StatusTable) Status(f event.FlightID) event.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.flights[f]; r != nil {
		return r.status
	}
	return event.StatusUnknown
}

// OverwriteTick advances the overwrite run for (flight, type) and
// reports whether this event should be sent: the first event of each
// run of length l is sent, the following l-1 are discarded. l < 2
// disables overwriting (everything is sent).
func (t *StatusTable) OverwriteTick(f event.FlightID, ty event.Type, l int) (send bool) {
	if l < 2 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.record(f)
	n := r.runs[ty]
	r.runs[ty] = (n + 1) % l
	if n == 0 {
		return true
	}
	t.discarded++
	return false
}

// ResetRun clears the overwrite run for (flight, type); used when the
// overwrite length is re-tuned by adaptation so the next event is
// always sent under the new regime.
func (t *StatusTable) ResetRun(f event.FlightID, ty event.Type) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.flights[f]; r != nil {
		delete(r.runs, ty)
	}
}

// ResetAllRuns clears overwrite runs for every flight.
func (t *StatusTable) ResetAllRuns() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.flights {
		clear(r.runs)
	}
}

// HasAll reports whether every status in want has been observed for
// the flight.
func (t *StatusTable) HasAll(f event.FlightID, want []event.Status) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.flights[f]
	if r == nil {
		return false
	}
	for _, s := range want {
		if !r.seen[s] {
			return false
		}
	}
	return true
}

// TryCollapse reports whether a complex event should be emitted now
// for the flight: it returns true exactly once after all statuses in
// want have been observed, until the seen-set is re-armed by a new
// (non-terminal) lifecycle phase.
func (t *StatusTable) TryCollapse(f event.FlightID, want []event.Status) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.flights[f]
	if r == nil || r.collapsed {
		return false
	}
	for _, s := range want {
		if !r.seen[s] {
			return false
		}
	}
	r.collapsed = true
	t.combined += uint64(len(want))
	return true
}

// CountDiscard increments the discarded-events counter (used by rules
// applied outside the table, e.g. complex-seq drops).
func (t *StatusTable) CountDiscard() {
	t.mu.Lock()
	t.discarded++
	t.mu.Unlock()
}

// Stats returns the cumulative counts of events discarded by overwrite
// and complex-seq rules, and of events combined into complex events.
func (t *StatusTable) Stats() (discarded, combined uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.discarded, t.combined
}

// Flights returns the number of flights with recorded history.
func (t *StatusTable) Flights() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flights)
}
