package thinclient

import (
	"testing"

	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// TestInitializeAtAnchorsProgress pins the re-initialization fix: a
// view re-initialized with the server's snapshot anchor treats updates
// at or below the anchor as stale and does NOT trip the gap detector
// on the first post-snapshot update. Before the fix, Initialize reset
// lastVT to nil, so a re-initializing client re-counted old updates as
// fresh and immediately re-detected a gap, looping on /init.
func TestInitializeAtAnchorsProgress(t *testing.T) {
	en := ede.New(ede.Config{StatePadding: 16})
	en.Process(event.NewPosition(1, 1, 10, 20, 30000, 64))

	v := New(16)
	anchor := vclock.VC{5}
	if err := v.InitializeAt(en.State().Snapshot(), anchor); err != nil {
		t.Fatal(err)
	}
	if got := v.Progress(); got.Compare(anchor) != vclock.Equal {
		t.Fatalf("progress = %s, want %s", got, anchor)
	}

	// An update from before the snapshot is stale, not fresh.
	v.Apply(update(1, vclock.VC{3}, 11, 21, 31000))
	if applied, stale := v.Stats(); applied != 0 || stale != 1 {
		t.Fatalf("after old update: applied=%d stale=%d, want 0/1", applied, stale)
	}

	// The first live update after the snapshot (anchor+1) is a normal
	// continuation — no gap.
	v.Apply(update(1, vclock.VC{6}, 12, 22, 32000))
	if v.NeedsReinit() {
		t.Fatal("contiguous post-snapshot update tripped the gap detector")
	}
	if applied, _ := v.Stats(); applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}

	// A real jump past the anchor still trips it.
	v.Apply(update(1, vclock.VC{9}, 13, 23, 33000))
	if !v.NeedsReinit() {
		t.Fatal("lost updates not detected after anchored re-init")
	}
}

// TestInitializeAtResetsCounters pins that re-initialization resets the
// per-view counters along with the state they described: counters from
// the discarded view previously leaked across re-inits.
func TestInitializeAtResetsCounters(t *testing.T) {
	en := ede.New(ede.Config{StatePadding: 0})
	en.Process(event.NewPosition(1, 1, 1, 2, 3, 16))

	v := New(0)
	if err := v.Initialize(en.State().Snapshot()); err != nil {
		t.Fatal(err)
	}
	v.Apply(update(1, vclock.VC{1}, 1, 2, 3))
	v.Apply(update(1, vclock.VC{1}, 1, 2, 3)) // merged, not stale (equal VT)
	v.Apply(update(1, vclock.VC{0}, 1, 2, 3)) // stale
	if applied, stale := v.Stats(); applied == 0 && stale == 0 {
		t.Fatal("setup produced no counter traffic")
	}

	if err := v.InitializeAt(en.State().Snapshot(), vclock.VC{1}); err != nil {
		t.Fatal(err)
	}
	if applied, stale := v.Stats(); applied != 0 || stale != 0 {
		t.Fatalf("counters survived re-init: applied=%d stale=%d", applied, stale)
	}
	if v.NeedsReinit() {
		t.Fatal("gap flag survived re-init")
	}

	// Initialize (no anchor) still resets progress to zero.
	if err := v.Initialize(en.State().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := v.Progress(); got != nil {
		t.Fatalf("unanchored re-init progress = %s, want zero", got)
	}
}
