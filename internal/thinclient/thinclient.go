// Package thinclient implements the paper's thin clients — airport
// flight displays, gate-agent PCs — which "maintain their own local
// views of the system's state, which they continuously update based on
// events received from the OIS server". A View is initialized from an
// initialization-state snapshot (served by any mirror site) and then
// advanced by the state-update stream, so a client that re-initializes
// after a failure converges back to the server's state.
package thinclient

import (
	"fmt"
	"sync"

	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// View is one thin client's local view of operational state.
type View struct {
	mu      sync.RWMutex
	flights map[event.FlightID]ede.FlightState
	lastVT  vclock.VC
	padding int

	inited  bool
	applied uint64
	stale   uint64
	gap     bool
}

// New returns an uninitialized view; paddingPerFlight must match the
// server's snapshot padding.
func New(paddingPerFlight int) *View {
	return &View{
		flights: make(map[event.FlightID]ede.FlightState),
		padding: paddingPerFlight,
	}
}

// Initialize loads a server snapshot, replacing the current view.
// Clients call it at startup, after recovering from failures (the
// paper's power-failure scenario), and when NeedsReinit reports lost
// updates. The view's progress restarts from zero; prefer InitializeAt
// with the server's X-Init-VT anchor when it is available.
func (v *View) Initialize(snapshot []byte) error {
	return v.InitializeAt(snapshot, nil)
}

// InitializeAt loads a server snapshot and anchors the view's
// update-stream progress at the snapshot's timestamp (the /init
// response's X-Init-VT header). Without the anchor a re-initializing
// client restarts its stale/gap tracking from zero: every update older
// than the fresh snapshot is re-applied as if new, and the very next
// live update trips the gap detector again. The per-view counters
// reset with the state they described.
func (v *View) InitializeAt(snapshot []byte, anchor vclock.VC) error {
	flights, err := ede.DecodeSnapshot(snapshot, v.padding)
	if err != nil {
		return fmt.Errorf("thinclient: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.flights = flights
	v.inited = true
	v.lastVT = anchor.Clone()
	v.applied = 0
	v.stale = 0
	v.gap = false
	return nil
}

// NeedsReinit reports whether the view observed a gap in the update
// stream and should re-request its initialization state.
func (v *View) NeedsReinit() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gap
}

// Initialized reports whether the view has loaded a snapshot.
func (v *View) Initialized() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.inited
}

// Apply advances the view with one event from the server's output
// stream: TypeStateUpdate events carry raw position/status changes;
// derived events (all-boarded, flight-arrived) set their flags.
// Events at or before the view's progress are counted stale and
// ignored, making re-application after re-initialization harmless.
func (v *View) Apply(e *event.Event) {
	v.mu.Lock()
	defer v.mu.Unlock()
	// Only strictly older events are stale: an update and the events
	// derived from it legitimately share a timestamp. Re-applying an
	// equal-stamped event is harmless (state assignment is
	// idempotent; statuses and flags are monotone).
	if e.VT != nil && v.lastVT != nil && e.VT.Compare(v.lastVT) == vclock.Before {
		v.stale++
		return
	}
	// Gap detection: the central site stamps one timestamp tick per
	// admitted event, so a jump of more than one total tick between
	// consecutively applied updates means updates were lost (e.g. a
	// dropped stream connection). The paper's thin clients respond by
	// re-requesting their initialization state.
	if e.VT != nil && v.lastVT != nil && e.VT.Sum() > v.lastVT.Sum()+1 {
		v.gap = true
	}
	fs := v.flights[e.Flight]
	fs.ID = e.Flight
	switch e.Type {
	case event.TypeStateUpdate:
		if lat, lon, alt, ok := e.Position(); ok {
			fs.Lat, fs.Lon, fs.Alt = lat, lon, alt
			fs.PositionUpdates += uint64(e.Weight())
		}
		if e.Status > fs.Status {
			fs.Status = e.Status
		}
	case event.TypeAllBoarded:
		fs.AllBoarded = true
	case event.TypeFlightArrived:
		fs.Arrived = true
		if event.StatusArrived > fs.Status {
			fs.Status = event.StatusArrived
		}
	default:
		// Unknown output types are ignored: forward compatibility.
		return
	}
	v.flights[e.Flight] = fs
	if e.VT != nil {
		v.lastVT = v.lastVT.Merge(e.VT)
	}
	v.applied++
}

// Flight returns the view's state for one flight.
func (v *View) Flight(id event.FlightID) (ede.FlightState, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	fs, ok := v.flights[id]
	return fs, ok
}

// Flights returns the number of tracked flights.
func (v *View) Flights() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.flights)
}

// Stats returns (events applied, stale events ignored).
func (v *View) Stats() (applied, stale uint64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.applied, v.stale
}

// Progress returns the view's update-stream progress timestamp.
func (v *View) Progress() vclock.VC {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.lastVT.Clone()
}
