package thinclient

import (
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

func update(flight event.FlightID, vt vclock.VC, lat, lon, alt float64) *event.Event {
	src := event.NewPosition(flight, vt.Sum(), lat, lon, alt, 64)
	return &event.Event{
		Type: event.TypeStateUpdate, Flight: flight, Coalesced: 1,
		VT: vt, Payload: src.Payload,
	}
}

func statusUpdate(flight event.FlightID, vt vclock.VC, s event.Status) *event.Event {
	return &event.Event{
		Type: event.TypeStateUpdate, Flight: flight, Status: s, Coalesced: 1, VT: vt,
	}
}

func TestInitializeFromSnapshot(t *testing.T) {
	en := ede.New(ede.Config{StatePadding: 16})
	en.Process(event.NewPosition(1, 1, 10, 20, 30000, 64))
	en.Process(event.NewStatus(2, 1, event.StatusLanded, 32))

	v := New(16)
	if v.Initialized() {
		t.Fatal("fresh view claims initialized")
	}
	if err := v.Initialize(en.State().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !v.Initialized() || v.Flights() != 2 {
		t.Fatalf("flights = %d", v.Flights())
	}
	f1, ok := v.Flight(1)
	if !ok || f1.Lat != 10 {
		t.Fatalf("flight 1 = %+v", f1)
	}
}

func TestInitializeRejectsCorruptSnapshot(t *testing.T) {
	v := New(0)
	if err := v.Initialize([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestApplyAdvancesView(t *testing.T) {
	v := New(0)
	v.Apply(update(7, vclock.VC{1}, 10, 20, 30000))
	v.Apply(statusUpdate(7, vclock.VC{2}, event.StatusLanded))
	v.Apply(&event.Event{Type: event.TypeFlightArrived, Flight: 7, VT: vclock.VC{3}, Coalesced: 1})

	fs, ok := v.Flight(7)
	if !ok {
		t.Fatal("flight 7 missing")
	}
	if fs.Lat != 10 || fs.Status != event.StatusArrived || !fs.Arrived {
		t.Fatalf("view = %+v", fs)
	}
	applied, stale := v.Stats()
	if applied != 3 || stale != 0 {
		t.Fatalf("stats = %d/%d", applied, stale)
	}
}

func TestStaleUpdatesIgnored(t *testing.T) {
	v := New(0)
	v.Apply(update(1, vclock.VC{5}, 1, 2, 3))
	v.Apply(update(1, vclock.VC{3}, 9, 9, 9)) // stale
	fs, _ := v.Flight(1)
	if fs.Lat != 1 {
		t.Fatalf("stale update applied: %+v", fs)
	}
	if _, stale := v.Stats(); stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}
}

func TestUnknownOutputTypesIgnored(t *testing.T) {
	v := New(0)
	v.Apply(&event.Event{Type: event.TypeChkpt, Flight: 1, VT: vclock.VC{1}})
	if v.Flights() != 0 {
		t.Fatal("control event created view state")
	}
}

// TestEndToEndConvergence is the OIS contract: a thin client that
// initializes from a snapshot mid-stream and applies subsequent
// updates converges to the server's final state.
func TestEndToEndConvergence(t *testing.T) {
	var mu sync.Mutex
	var stream []*event.Event
	out := senderFunc(func(e *event.Event) error {
		mu.Lock()
		stream = append(stream, e)
		mu.Unlock()
		return nil
	})
	central := core.NewCentral(core.CentralConfig{
		Streams:  1,
		NoMirror: true,
		Main:     core.MainConfig{Out: out},
	})
	defer central.Close()

	// First half of the day.
	seq := uint64(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			central.Ingest(event.NewPosition(event.FlightID(1+seq%4), seq, float64(seq), -float64(seq), 9000, 64))
		}
	}
	feed(50)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(stream) >= 50 })

	// Client initializes from the current state (as served by a
	// mirror), then applies the rest of the stream.
	snapshot := central.Main().Engine().State().Snapshot()
	v := New(0)
	if err := v.Initialize(snapshot); err != nil {
		t.Fatal(err)
	}
	markerLen := len(stream)

	feed(50)
	central.Ingest(event.NewStatus(1, seq+1, event.StatusAtGate, 32))
	central.Drain()

	mu.Lock()
	tail := stream[markerLen:]
	mu.Unlock()
	for _, e := range tail {
		v.Apply(e)
	}

	// The client's view must match the server's state for every
	// flight on position and status.
	for f := event.FlightID(1); f <= 4; f++ {
		server, ok := central.Main().Engine().State().Get(f)
		if !ok {
			t.Fatalf("server missing flight %d", f)
		}
		client, ok := v.Flight(f)
		if !ok {
			t.Fatalf("client missing flight %d", f)
		}
		if client.Lat != server.Lat || client.Lon != server.Lon {
			t.Fatalf("flight %d position diverged: client %v,%v server %v,%v",
				f, client.Lat, client.Lon, server.Lat, server.Lon)
		}
		if client.Status != server.Status {
			t.Fatalf("flight %d status diverged: %s vs %s", f, client.Status, server.Status)
		}
		if client.Arrived != server.Arrived {
			t.Fatalf("flight %d arrived flag diverged", f)
		}
	}
}

type senderFunc func(*event.Event) error

func (f senderFunc) Submit(e *event.Event) error { return f(e) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never met")
}

func TestGapDetection(t *testing.T) {
	v := New(0)
	v.Apply(update(1, vclock.VC{1}, 1, 2, 3))
	v.Apply(update(1, vclock.VC{2}, 2, 3, 4))
	if v.NeedsReinit() {
		t.Fatal("contiguous stream flagged a gap")
	}
	// Derived events share the trigger's timestamp: no gap.
	v.Apply(&event.Event{Type: event.TypeAllBoarded, Flight: 1, VT: vclock.VC{2}, Coalesced: 1})
	if v.NeedsReinit() {
		t.Fatal("equal-stamped derived event flagged a gap")
	}
	// Jumping from <2> to <5>: two updates lost.
	v.Apply(update(1, vclock.VC{5}, 9, 9, 9))
	if !v.NeedsReinit() {
		t.Fatal("lost updates not detected")
	}
	// Re-initialization clears the flag.
	en := ede.New(ede.Config{})
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))
	if err := v.Initialize(en.State().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if v.NeedsReinit() {
		t.Fatal("gap flag survives re-initialization")
	}
}

func TestGapDetectionMultiStream(t *testing.T) {
	v := New(0)
	// Two streams interleaved: sums advance by one per event.
	v.Apply(update(1, vclock.VC{1, 0}, 1, 2, 3))
	v.Apply(update(2, vclock.VC{1, 1}, 1, 2, 3))
	v.Apply(update(1, vclock.VC{2, 1}, 1, 2, 3))
	if v.NeedsReinit() {
		t.Fatal("contiguous multi-stream flow flagged a gap")
	}
	v.Apply(update(2, vclock.VC{2, 4}, 1, 2, 3))
	if !v.NeedsReinit() {
		t.Fatal("multi-stream gap not detected")
	}
}
