// Package costmodel stands in for the CPU of the paper's testbed
// nodes. The original experiments ran on a cluster of 300 MHz Pentium
// III machines, where per-event business logic, per-mirror event
// resubmission, and per-request state preparation took measurable time
// and competed for each node's processor. This reproduction may run on
// a single modern core, so it models every cluster node as a virtual
// CPU: a FIFO occupancy ledger over wall-clock time. Work charged to a
// node advances that node's busy-until deadline; concurrent nodes'
// deadlines advance independently, so the cluster genuinely
// parallelizes in wall-clock even on one host core, while work on the
// same node queues — exactly the contention the paper measures.
package costmodel

import (
	"sync"
	"sync/atomic"
	"time"
)

// Model describes the CPU charge of the OIS operations.
type Model struct {
	// EventBase is the fixed cost of processing one event through the
	// EDE's business logic.
	EventBase time.Duration
	// EventPerKB is the additional processing cost per KiB of payload.
	EventPerKB time.Duration

	// SerializeBase/SerializePerKB is the once-per-mirrored-event cost
	// of preparing an event for mirroring (resubmission, queue
	// management, copy) regardless of the number of mirrors.
	SerializeBase  time.Duration
	SerializePerKB time.Duration

	// SubmitBase/SubmitPerKB is the per-mirror-site cost of pushing a
	// prepared event onto one outgoing channel.
	SubmitBase  time.Duration
	SubmitPerKB time.Duration

	// RequestBase/RequestPerKB is the cost of computing one client
	// initialization state of a given size.
	RequestBase  time.Duration
	RequestPerKB time.Duration

	// CheckpointBase is the fixed coordinator cost of one checkpoint
	// round; CheckpointPerBacklog is added per event retained in the
	// backup queue at round start (scanning and trimming).
	CheckpointBase       time.Duration
	CheckpointPerBacklog time.Duration

	// ControlCost is charged per control event handled at a site.
	ControlCost time.Duration

	// FrameBase/FramePerEvent price the columnar batch framing of the
	// zero-copy wire path: one fixed charge per frame (header build,
	// offset table, single buffered write) plus a small per-event
	// column-append charge. When both are zero the model predates the
	// columnar codec and FrameBatchCost falls back to
	// SerializeBatchCost, keeping older calibrations unchanged.
	FrameBase     time.Duration
	FramePerEvent time.Duration
}

// Default is calibrated so the experiment harness reproduces the
// paper's curve shapes in hundreds of milliseconds instead of tens of
// seconds: mirroring one site costs ~15-20% of processing (growing
// with event size, Figure 4), each additional mirror costs well under
// 10% (Figure 5), and requests are expensive enough that bursts
// perturb event processing (Figures 6-9).
var Default = Model{
	EventBase:            40 * time.Microsecond,
	EventPerKB:           12 * time.Microsecond,
	SerializeBase:        2500 * time.Nanosecond,
	SerializePerKB:       2500 * time.Nanosecond,
	SubmitBase:           3 * time.Microsecond,
	SubmitPerKB:          150 * time.Nanosecond,
	RequestBase:          33 * time.Microsecond,
	RequestPerKB:         3 * time.Microsecond,
	CheckpointBase:       100 * time.Microsecond,
	CheckpointPerBacklog: 400 * time.Nanosecond,
	ControlCost:          5 * time.Microsecond,
	FrameBase:            2500 * time.Nanosecond,
	FramePerEvent:        300 * time.Nanosecond,
}

// EventCost returns the EDE processing charge for a payload of n bytes.
func (m Model) EventCost(n int) time.Duration {
	return m.EventBase + scale(m.EventPerKB, n)
}

// SerializeCost returns the once-per-event mirroring preparation charge.
func (m Model) SerializeCost(n int) time.Duration {
	return m.SerializeBase + scale(m.SerializePerKB, n)
}

// SubmitCost returns the per-mirror-site submission charge.
func (m Model) SubmitCost(n int) time.Duration {
	return m.SubmitBase + scale(m.SubmitPerKB, n)
}

// SerializeBatchCost returns the mirroring preparation charge for a
// batch of n events totalling bytes payload bytes. Resubmission,
// queue management, and copying remain per-event work, so the base is
// paid n times; the size-proportional term is paid on the batch's
// bytes. The total equals the sum of per-event SerializeCost charges
// but is booked with a single ledger operation.
func (m Model) SerializeBatchCost(n, bytes int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n)*m.SerializeBase + scale(m.SerializePerKB, bytes)
}

// FrameBatchCost returns the preparation charge for encoding a batch
// of n events totalling bytes payload bytes as one columnar frame.
// The columnar layout replaces the per-event header re-encode with
// cheap column appends, so the per-event term is far below the legacy
// SerializeBase while the byte-proportional term is unchanged. Models
// with no framing calibration (both frame fields zero) fall back to
// SerializeBatchCost so existing test and chaos calibrations keep
// their historical charges.
func (m Model) FrameBatchCost(n, bytes int) time.Duration {
	if n <= 0 {
		return 0
	}
	if m.FrameBase == 0 && m.FramePerEvent == 0 {
		return m.SerializeBatchCost(n, bytes)
	}
	return m.FrameBase + time.Duration(n)*m.FramePerEvent + scale(m.SerializePerKB, bytes)
}

// SubmitBatchCost returns the per-mirror-site charge for submitting a
// batch of n events totalling bytes payload bytes as one framed write
// plus a single flush. The fixed submission cost is paid once per
// batch — the batching win the fan-out pipeline is built around —
// while the size-proportional term still covers every byte moved.
func (m Model) SubmitBatchCost(n, bytes int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.SubmitBase + scale(m.SubmitPerKB, bytes)
}

// RequestCost returns the charge for serving an init-state request of
// n bytes.
func (m Model) RequestCost(n int) time.Duration {
	return m.RequestBase + scale(m.RequestPerKB, n)
}

// InitStateCost returns the charge for serving one init-state request
// from the epoch-cached snapshot path: the full response of copied
// bytes is booked as request work (the copy out of the cache), and
// only the rebuilt segment bytes — 0 on a warm cache hit — are
// additionally booked as serialization work. This keeps the Figure
// 6/7 virtual-CPU numbers honest: a storm against a quiet state pays
// the request copy per request but the serialization once.
func (m Model) InitStateCost(copied, rebuilt int) time.Duration {
	d := m.RequestCost(copied)
	if rebuilt > 0 {
		d += m.SerializeCost(rebuilt)
	}
	return d
}

// CheckpointCost returns the coordinator charge for one round with the
// given backup-queue backlog.
func (m Model) CheckpointCost(backlog int) time.Duration {
	return m.CheckpointBase + time.Duration(backlog)*m.CheckpointPerBacklog
}

func scale(perKB time.Duration, n int) time.Duration {
	return time.Duration(float64(perKB) * float64(n) / 1024)
}

// CPU is one cluster node's processor: a FIFO occupancy ledger.
// Charges advance the node's busy-until deadline by exactly the
// charged duration; callers are paced with coarse sleeps only when
// the ledger runs ahead of wall clock, so microsecond-scale charges
// stay accurate despite millisecond sleep granularity. A nil *CPU
// spins the real processor instead (useful for standalone units).
type CPU struct {
	mu        sync.Mutex
	busyUntil time.Time
}

// Pacing constants: catchUpWindow bounds how much late-running work
// may back-fill (absorbing the host's ~1ms sleep overshoot without
// compounding); sleepSlack is the ledger lead at which callers start
// sleeping. Their difference is the pacing chunk; the slack bounds how
// far a pipeline can race ahead of its node's timeline, which keeps
// queue lengths — the adaptation-monitored variables — honest.
const (
	catchUpWindow = 4 * time.Millisecond
	sleepSlack    = 8 * time.Millisecond
)

// Charge books d of work on the CPU and returns the instant the work
// completes in the node's timeline. The caller is delayed only when
// the node has accumulated a significant backlog.
func (c *CPU) Charge(d time.Duration) time.Time {
	if c == nil {
		Spin(d)
		return time.Now()
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	now := time.Now()
	floor := now.Add(-catchUpWindow)
	if c.busyUntil.Before(floor) {
		c.busyUntil = floor
	}
	c.busyUntil = c.busyUntil.Add(d)
	release := c.busyUntil
	c.mu.Unlock()

	if wait := time.Until(release); wait > sleepSlack {
		time.Sleep(wait - catchUpWindow)
	}
	return release
}

// ChargeAsync books d of work on the CPU without pacing the caller.
// Control-plane handlers use it: their charges must occupy the node's
// timeline, but blocking a protocol state machine for milliseconds
// behind a saturated ledger would serialize rounds that the real
// system runs as cheap background work.
func (c *CPU) ChargeAsync(d time.Duration) time.Time {
	if c == nil {
		return time.Now()
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	floor := now.Add(-catchUpWindow)
	if c.busyUntil.Before(floor) {
		c.busyUntil = floor
	}
	c.busyUntil = c.busyUntil.Add(d)
	return c.busyUntil
}

// BusyUntil returns the node's current busy-until deadline.
func (c *CPU) BusyUntil() time.Time {
	if c == nil {
		return time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busyUntil
}

// WaitIdle blocks until every CPU's booked work has completed in wall
// clock, and returns the latest completion instant. Experiment
// harnesses call it after draining queues so "total execution time"
// includes the booked processing.
func WaitIdle(cpus ...*CPU) time.Time {
	var latest time.Time
	for _, c := range cpus {
		if bu := c.BusyUntil(); bu.After(latest) {
			latest = bu
		}
	}
	if wait := time.Until(latest); wait > 0 {
		time.Sleep(wait)
	}
	if latest.IsZero() {
		return time.Now()
	}
	return latest
}

// spinSink prevents the spin loop from being optimized away.
var spinSink atomic.Uint64

// Spin burns real CPU for approximately d. Unlike time.Sleep it keeps
// the processor busy; used when no virtual CPU is attached.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	var acc uint64
	for {
		for i := 0; i < 64; i++ {
			acc = acc*2654435761 + 1
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	spinSink.Store(acc)
}
