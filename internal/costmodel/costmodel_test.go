package costmodel

import (
	"sync"
	"testing"
	"time"
)

func TestCostsScaleWithSize(t *testing.T) {
	m := Default
	if m.EventCost(8192) <= m.EventCost(0) {
		t.Fatal("event cost must grow with payload size")
	}
	if m.SerializeCost(8192) <= m.SerializeCost(0) {
		t.Fatal("serialize cost must grow with payload size")
	}
	if m.SubmitCost(8192) <= m.SubmitCost(0) {
		t.Fatal("submit cost must grow with payload size")
	}
	if m.RequestCost(8192) <= m.RequestCost(0) {
		t.Fatal("request cost must grow with state size")
	}
	if m.CheckpointCost(1000) <= m.CheckpointCost(0) {
		t.Fatal("checkpoint cost must grow with backlog")
	}
}

func TestCostsExactValues(t *testing.T) {
	m := Model{
		EventBase:  10 * time.Microsecond,
		EventPerKB: 4 * time.Microsecond,
	}
	if got := m.EventCost(0); got != 10*time.Microsecond {
		t.Fatalf("EventCost(0) = %v, want 10µs", got)
	}
	if got := m.EventCost(2048); got != 18*time.Microsecond {
		t.Fatalf("EventCost(2048) = %v, want 18µs", got)
	}
	if got := m.EventCost(512); got != 12*time.Microsecond {
		t.Fatalf("EventCost(512) = %v, want 12µs", got)
	}
}

func TestMirroringOverheadFraction(t *testing.T) {
	// Figure 4's premise: mirroring to one site costs ~15-20% of event
	// processing, growing with event size.
	for _, n := range []int{0, 1024, 4096, 8192} {
		mirror := Default.SerializeCost(n) + Default.SubmitCost(n)
		frac := float64(mirror) / float64(Default.EventCost(n))
		if frac < 0.10 || frac > 0.30 {
			t.Fatalf("size %d: one-mirror overhead fraction %.2f outside [0.10, 0.30]", n, frac)
		}
	}
}

func TestAdditionalMirrorUnderTenPercent(t *testing.T) {
	// Figure 5's premise: each additional mirror adds < 10%.
	for _, n := range []int{0, 1024, 8192} {
		oneMirror := Default.EventCost(n) + Default.SerializeCost(n) + Default.SubmitCost(n)
		added := Default.SubmitCost(n)
		if frac := float64(added) / float64(oneMirror); frac >= 0.10 {
			t.Fatalf("size %d: extra-mirror fraction %.2f >= 0.10", n, frac)
		}
	}
}

func TestRequestCostAtRealisticStateSize(t *testing.T) {
	// A realistic init-state snapshot (tens of flights → several KiB)
	// must cost at least as much as processing a small event, so
	// request bursts genuinely perturb event processing.
	if Default.RequestCost(6<<10) < Default.EventCost(0) {
		t.Fatal("init-state requests too cheap to perturb event processing")
	}
}

func TestCPULedgerAccrues(t *testing.T) {
	cpu := &CPU{}
	start := time.Now()
	var release time.Time
	for i := 0; i < 100; i++ {
		release = cpu.Charge(100 * time.Microsecond)
	}
	virtual := release.Sub(start)
	// 100 × 100µs = 10ms of booked work; allow the catch-up window of
	// slack on both sides.
	if virtual < 10*time.Millisecond-catchUpWindow {
		t.Fatalf("ledger advanced only %v, want ~10ms", virtual)
	}
	if virtual > 10*time.Millisecond+20*time.Millisecond {
		t.Fatalf("ledger advanced %v, far beyond 10ms", virtual)
	}
}

func TestCPUChargePacesWhenBacklogged(t *testing.T) {
	cpu := &CPU{}
	start := time.Now()
	for i := 0; i < 100; i++ {
		cpu.Charge(time.Millisecond) // 100ms booked
	}
	// Caller must have been paced to within sleepSlack of the ledger.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond-sleepSlack-catchUpWindow {
		t.Fatalf("caller ran %v ahead of a 100ms ledger", elapsed)
	}
}

func TestCPUsRunInParallel(t *testing.T) {
	// Two nodes each booking 100ms must finish in ~100ms wall, not
	// 200ms — the point of virtual CPUs on a single host core.
	a, b := &CPU{}, &CPU{}
	start := time.Now()
	var wg sync.WaitGroup
	for _, cpu := range []*CPU{a, b} {
		cpu := cpu
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				cpu.Charge(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	WaitIdle(a, b)
	elapsed := time.Since(start)
	if elapsed > 160*time.Millisecond {
		t.Fatalf("two parallel 100ms nodes took %v, want ~100ms", elapsed)
	}
}

func TestCPUIdleDoesNotBackfill(t *testing.T) {
	cpu := &CPU{}
	cpu.Charge(time.Millisecond)
	time.Sleep(20 * time.Millisecond) // genuine idle
	before := time.Now()
	release := cpu.Charge(time.Millisecond)
	// The release must be anchored near now, not at the old deadline.
	if release.Before(before.Add(-catchUpWindow)) {
		t.Fatalf("idle CPU back-filled: release %v before now", before.Sub(release))
	}
}

func TestWaitIdleReturnsLatest(t *testing.T) {
	a, b := &CPU{}, &CPU{}
	a.Charge(5 * time.Millisecond)
	rb := b.Charge(40 * time.Millisecond)
	latest := WaitIdle(a, b)
	if latest.Before(rb) {
		t.Fatalf("WaitIdle returned %v, want >= %v", latest, rb)
	}
	if time.Now().Before(rb) {
		t.Fatal("WaitIdle returned before the latest deadline passed")
	}
}

func TestWaitIdleNoCPUs(t *testing.T) {
	start := time.Now()
	WaitIdle()
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("WaitIdle with no CPUs must return immediately")
	}
}

func TestNilCPUSpins(t *testing.T) {
	var cpu *CPU
	start := time.Now()
	release := cpu.Charge(2 * time.Millisecond)
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("nil CPU must spin for the charge")
	}
	if release.Before(start) {
		t.Fatal("release must be after start")
	}
	if cpu.BusyUntil().IsZero() {
		t.Fatal("nil CPU BusyUntil must report now")
	}
}

func TestChargeNegativeDuration(t *testing.T) {
	cpu := &CPU{}
	r1 := cpu.Charge(time.Millisecond)
	r2 := cpu.Charge(-time.Second)
	if r2.Before(r1) {
		t.Fatal("negative charge must not rewind the ledger")
	}
}

func TestSpinBurnsApproximatelyRequestedTime(t *testing.T) {
	const d = 2 * time.Millisecond
	start := time.Now()
	Spin(d)
	elapsed := time.Since(start)
	if elapsed < d {
		t.Fatalf("Spin(%v) returned after %v", d, elapsed)
	}
	if elapsed > 20*d {
		t.Fatalf("Spin(%v) took %v, far too long", d, elapsed)
	}
}

func TestSpinZeroAndNegative(t *testing.T) {
	start := time.Now()
	Spin(0)
	Spin(-time.Second)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("Spin must return immediately for non-positive durations")
	}
}

func BenchmarkCharge(b *testing.B) {
	cpu := &CPU{}
	for i := 0; i < b.N; i++ {
		cpu.Charge(0)
	}
}

func TestBatchCosts(t *testing.T) {
	m := Model{
		SerializeBase:  2 * time.Microsecond,
		SerializePerKB: 1 * time.Microsecond,
		SubmitBase:     3 * time.Microsecond,
		SubmitPerKB:    4 * time.Microsecond,
	}
	// Serialization is per-event work: the batch form must equal the sum
	// of the per-event costs (one ledger operation, same total).
	if got, want := m.SerializeBatchCost(5, 5*1024), 5*m.SerializeCost(1024); got != want {
		t.Fatalf("SerializeBatchCost(5, 5KB) = %v, want %v", got, want)
	}
	// Submission pays the fixed cost once per batch: cheaper than the
	// per-event sum for any batch larger than one, identical at one.
	if got, want := m.SubmitBatchCost(1, 1024), m.SubmitCost(1024); got != want {
		t.Fatalf("SubmitBatchCost(1, 1KB) = %v, want %v", got, want)
	}
	batched := m.SubmitBatchCost(8, 8*1024)
	serial := 8 * m.SubmitCost(1024)
	if batched >= serial {
		t.Fatalf("SubmitBatchCost(8, 8KB) = %v, not below per-event sum %v", batched, serial)
	}
	if want := serial - 7*m.SubmitBase; batched != want {
		t.Fatalf("SubmitBatchCost(8, 8KB) = %v, want %v (one base per batch)", batched, want)
	}
	// Empty batches are free.
	if m.SerializeBatchCost(0, 0) != 0 || m.SubmitBatchCost(0, 0) != 0 {
		t.Fatal("empty batch must cost nothing")
	}
}
