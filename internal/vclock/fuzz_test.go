package vclock

import "testing"

// FuzzDecodeVC hardens the vector-clock decoder: no panics on
// arbitrary bytes, no over-reads, and accepted clocks round-trip.
func FuzzDecodeVC(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(VC{1, 2, 3}.AppendBinary(nil))
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeVC(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := v.AppendBinary(nil)
		v2, _, err := DecodeVC(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if v.Compare(v2) != Equal {
			t.Fatalf("round trip mismatch: %v vs %v", v, v2)
		}
	})
}
