package vclock

import (
	"testing"
	"testing/quick"
)

func TestTickGrowsAndIncrements(t *testing.T) {
	var v VC
	v = v.Tick(2)
	if len(v) != 3 {
		t.Fatalf("len = %d, want 3", len(v))
	}
	if v.At(2) != 1 || v.At(0) != 0 || v.At(1) != 0 {
		t.Fatalf("unexpected components: %v", v)
	}
	v = v.Tick(2)
	if v.At(2) != 2 {
		t.Fatalf("At(2) = %d, want 2", v.At(2))
	}
}

func TestSetGrows(t *testing.T) {
	var v VC
	v = v.Set(4, 99)
	if got := v.At(4); got != 99 {
		t.Fatalf("At(4) = %d, want 99", got)
	}
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
}

func TestAtOutOfRange(t *testing.T) {
	v := VC{1, 2}
	if v.At(-1) != 0 || v.At(5) != 0 {
		t.Fatal("out-of-range components must read as zero")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{VC{1, 2}, VC{1, 2}, Equal},
		{VC{1, 2}, VC{2, 2}, Before},
		{VC{3, 2}, VC{2, 2}, After},
		{VC{1, 3}, VC{2, 2}, Concurrent},
		{nil, VC{0, 0}, Equal},
		{nil, VC{1}, Before},
		{VC{1}, nil, After},
		{VC{1, 0}, VC{1, 0, 0}, Equal}, // differing widths, trailing zeros
		{VC{1}, VC{0, 1}, Concurrent},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: %v.Compare(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b []uint64) bool {
		va, vb := VC(a), VC(b)
		x, y := va.Compare(vb), vb.Compare(va)
		switch x {
		case Equal:
			return y == Equal
		case Before:
			return y == After
		case After:
			return y == Before
		case Concurrent:
			return y == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIsUpperBound(t *testing.T) {
	f := func(a, b []uint64) bool {
		va, vb := VC(a), VC(b)
		m := va.Merge(vb)
		return va.LessEq(m) && vb.LessEq(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinIsLowerBound(t *testing.T) {
	f := func(a, b []uint64) bool {
		va, vb := VC(a), VC(b)
		m := va.Min(vb)
		return m.LessEq(va) && m.LessEq(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutative(t *testing.T) {
	f := func(a, b []uint64) bool {
		m1 := VC(a).Merge(VC(b))
		m2 := VC(b).Merge(VC(a))
		return m1.Compare(m2) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Clone()
	c[0] = 100
	if v[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
	if VC(nil).Clone() != nil {
		t.Fatal("Clone of nil must be nil")
	}
}

func TestSum(t *testing.T) {
	if got := (VC{1, 2, 3}).Sum(); got != 6 {
		t.Fatalf("Sum = %d, want 6", got)
	}
	if got := VC(nil).Sum(); got != 0 {
		t.Fatalf("Sum(nil) = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 2}).String(); got != "<1,2>" {
		t.Fatalf("String = %q", got)
	}
	if got := VC(nil).String(); got != "<>" {
		t.Fatalf("String(nil) = %q", got)
	}
}

func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want VC
	}{
		{"<1,2>", VC{1, 2}},
		{"1,2", VC{1, 2}},
		{"<>", nil},
		{"", nil},
		{"  <7>  ", VC{7}},
		{"<0, 42 ,9>", VC{0, 42, 9}},
		{"<18446744073709551615>", VC{1<<64 - 1}},
	}
	for _, c := range good {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.Compare(c.want) != Equal || len(got) != len(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"<1,2", "<1,x>", "1,,2", "<-1>", "<1,2,>"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
	// Parse inverts String.
	for _, v := range []VC{nil, {0}, {1, 2, 3}} {
		got, err := Parse(v.String())
		if err != nil || got.Compare(v) != Equal {
			t.Errorf("Parse(String(%v)) = %v, %v", v, got, err)
		}
	}
}

func TestOrderingString(t *testing.T) {
	for _, c := range []struct {
		o    Ordering
		want string
	}{{Before, "before"}, {Equal, "equal"}, {After, "after"}, {Concurrent, "concurrent"}, {Ordering(9), "ordering(9)"}} {
		if got := c.o.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(a []uint64) bool {
		v := VC(a)
		if len(v) > 1000 {
			v = v[:1000]
		}
		b := v.AppendBinary(nil)
		if len(b) != v.EncodedSize() {
			return false
		}
		got, n, err := DecodeVC(b)
		if err != nil || n != len(b) {
			return false
		}
		return got.Compare(v) == Equal && len(got) == len(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeVC(nil); err == nil {
		t.Fatal("want error on empty buffer")
	}
	if _, _, err := DecodeVC([]byte{0x01}); err == nil {
		t.Fatal("want error on 1-byte buffer")
	}
	// Declares 3 components but provides none.
	if _, _, err := DecodeVC([]byte{0x03, 0x00}); err == nil {
		t.Fatal("want error on truncated components")
	}
}

func TestDecodeWithTrailingBytes(t *testing.T) {
	v := VC{7, 8}
	b := v.AppendBinary(nil)
	b = append(b, 0xAA, 0xBB)
	got, n, err := DecodeVC(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != v.EncodedSize() {
		t.Fatalf("consumed %d, want %d", n, v.EncodedSize())
	}
	if got.Compare(v) != Equal {
		t.Fatalf("decoded %v, want %v", got, v)
	}
}

func BenchmarkTick(b *testing.B) {
	v := New(4)
	for i := 0; i < b.N; i++ {
		v = v.Tick(i & 3)
	}
}

func BenchmarkCompare(b *testing.B) {
	x, y := VC{1, 2, 3, 4}, VC{1, 2, 4, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	v := VC{1, 2, 3, 4}
	buf := make([]byte, 0, v.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.AppendBinary(buf[:0])
		if _, _, err := DecodeVC(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeAssociativeAndIdempotent(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		va, vb, vc := VC(a), VC(b), VC(c)
		left := va.Merge(vb).Merge(vc)
		right := va.Merge(vb.Merge(vc))
		if left.Compare(right) != Equal {
			return false
		}
		return va.Merge(va).Compare(va) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMergeAbsorption(t *testing.T) {
	// Lattice absorption laws: a ∧ (a ∨ b) = a and a ∨ (a ∧ b) = a,
	// modulo vector width (trailing zeros are equivalent).
	f := func(a, b []uint64) bool {
		va, vb := VC(a), VC(b)
		if va.Min(va.Merge(vb)).Compare(va) != Equal {
			return false
		}
		return va.Merge(va.Min(vb)).Compare(va) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitivity(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		va, vb, vc := VC(a), VC(b), VC(c)
		if va.LessEq(vb) && vb.LessEq(vc) {
			return va.LessEq(vc)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
