// Package vclock implements the vector timestamps used by the mirroring
// framework to order update events arriving on multiple input streams.
//
// The paper (Section 3.3) timestamps every event as it enters the primary
// site with a vector in which each component corresponds to a different
// incoming stream; the order of events within one stream is captured by
// per-stream sequence numbers. Vector timestamps give the checkpointing
// protocol a consistent notion of "all events up to here" across streams.
package vclock

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Ordering is the result of comparing two vector clocks.
type Ordering int8

// Possible results of VC.Compare.
const (
	Before     Ordering = -1 // strictly happened-before
	Equal      Ordering = 0
	After      Ordering = 1 // strictly happened-after
	Concurrent Ordering = 2 // incomparable
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case Equal:
		return "equal"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int8(o))
	}
}

// VC is a vector clock with one component per input stream. The zero
// value (nil) behaves as a vector of all zeros of any width.
type VC []uint64

// New returns a zeroed vector clock with n components.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// At returns component i, treating components beyond len(v) as zero.
func (v VC) At(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Tick increments component stream, growing the vector if needed, and
// returns the (possibly reallocated) clock.
func (v VC) Tick(stream int) VC {
	v = v.grow(stream + 1)
	v[stream]++
	return v
}

// Set assigns component stream to val, growing the vector if needed,
// and returns the (possibly reallocated) clock.
func (v VC) Set(stream int, val uint64) VC {
	v = v.grow(stream + 1)
	v[stream] = val
	return v
}

func (v VC) grow(n int) VC {
	if len(v) >= n {
		return v
	}
	g := make(VC, n)
	copy(g, v)
	return g
}

// Merge returns the component-wise maximum of v and o.
func (v VC) Merge(o VC) VC {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	m := make(VC, n)
	for i := range m {
		a, b := v.At(i), o.At(i)
		if a > b {
			m[i] = a
		} else {
			m[i] = b
		}
	}
	return m
}

// MergeInto folds o into v in place (component-wise maximum), growing
// v only when o is wider, and returns the (possibly reallocated)
// clock. Unlike Merge it allocates nothing once v is wide enough —
// the mirror sites' arrival watermark advances with it on every
// admitted batch. v must not alias memory the caller does not own.
func (v VC) MergeInto(o VC) VC {
	for len(v) < len(o) {
		v = append(v, 0)
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
	return v
}

// Min returns the component-wise minimum of v and o. The checkpoint
// coordinator uses Min over participant replies to compute the highest
// timestamp safely committable everywhere.
func (v VC) Min(o VC) VC {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	m := make(VC, n)
	for i := range m {
		a, b := v.At(i), o.At(i)
		if a < b {
			m[i] = a
		} else {
			m[i] = b
		}
	}
	return m
}

// Compare reports the causal relation of v to o.
func (v VC) Compare(o VC) Ordering {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	var less, greater bool
	for i := 0; i < n; i++ {
		a, b := v.At(i), o.At(i)
		switch {
		case a < b:
			less = true
		case a > b:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// LessEq reports whether v happened-before-or-equal o (every component
// of v is <= the corresponding component of o).
func (v VC) LessEq(o VC) bool {
	ord := v.Compare(o)
	return ord == Before || ord == Equal
}

// Sum returns the sum of all components. It provides a cheap scalar
// progress measure (total events admitted across all streams).
func (v VC) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// String renders the clock as "<a,b,c>".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('>')
	return b.String()
}

// Parse parses a clock rendered by String ("<a,b,c>"), also accepting
// the bare "a,b,c" form. The empty clock ("" or "<>") parses to nil,
// matching the nil-means-all-zeros convention.
func Parse(s string) (VC, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "<") {
		if !strings.HasSuffix(s, ">") {
			return nil, fmt.Errorf("vclock: unterminated clock %q", s)
		}
		s = s[1 : len(s)-1]
	}
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	v := make(VC, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vclock: bad component %q in %q", p, s)
		}
		v[i] = x
	}
	return v, nil
}

// EncodedSize returns the number of bytes AppendBinary will write.
func (v VC) EncodedSize() int { return 2 + 8*len(v) }

// AppendBinary appends a length-prefixed little-endian encoding of v.
func (v VC) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

// DecodeVC decodes a clock encoded by AppendBinary from the front of b,
// returning the clock and the number of bytes consumed.
func DecodeVC(b []byte) (VC, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("vclock: short buffer (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b))
	need := 2 + 8*n
	if len(b) < need {
		return nil, 0, fmt.Errorf("vclock: truncated: need %d bytes, have %d", need, len(b))
	}
	if n == 0 {
		return nil, 2, nil
	}
	v := make(VC, n)
	for i := 0; i < n; i++ {
		v[i] = binary.LittleEndian.Uint64(b[2+8*i:])
	}
	return v, need, nil
}
