// Package checkpoint implements the modified two-phase commit protocol
// of the paper's Figure 3, which advances a consistent view of
// application state across mirror sites and lets every unit trim its
// backup queue.
//
// The protocol is non-standard in several ways the paper calls out:
// during the voting phase the coordinator *suggests* a timestamp (the
// most recent value in its backup queue); participants reply with the
// minimum of that suggestion and their own progress; there are no 'No'
// votes and no ABORT messages; no timeouts are used — if a round has
// not committed before the next one starts, the later commit subsumes
// the earlier one; and a commit naming an event no longer in a unit's
// backup queue is simply ignored.
//
// The package provides the three state machines of Figure 3 —
// Coordinator (central aux unit), Mirror (mirror aux unit), and Main
// (main unit) — wired to their surroundings through callbacks, so the
// same machines run over in-process channels in the harness and over
// TCP links in a deployed cluster. Adaptation directives piggyback on
// checkpoint control events (paper Section 3.2.2) via the Piggyback
// hooks.
package checkpoint

import (
	"sync"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// CentralParticipant is the Stream value the central main unit stamps
// on its own checkpoint replies. Mirror sites stamp their 0-based
// SiteID; 0xFF is reserved so the coordinator's per-site reply
// accounting can tell the central vote apart from mirror 0's (a
// cluster is limited to 255 mirrors, far beyond the paper's eight).
const CentralParticipant uint8 = 0xFF

// EpochShift partitions the round-number space by promotion epoch: a
// coordinator resumed at epoch e stamps rounds above EpochBase(e), so
// every round it issues is strictly greater than anything the previous
// central could have stamped (rounds advance one per checkpoint or
// directive broadcast — 2^32 of them is decades of continuous
// operation). Receiver-side directive watermarks and the coordinator's
// own reply floor both lean on this monotonicity.
const EpochShift = 32

// EpochBase returns the first round number reserved for promotion
// epoch e. Epoch 0 is the original central; its rounds start at 1.
func EpochBase(epoch uint64) uint64 { return epoch << EpochShift }

// Coordinator runs at the central site's auxiliary unit. It initiates
// rounds, collects CHKPT_REP replies, computes their minimum, and
// issues COMMIT.
type Coordinator struct {
	// Propose returns the timestamp to suggest: usually the most
	// recent value found in the central backup queue. A nil proposal
	// skips the round (nothing to commit).
	Propose func() vclock.VC
	// Broadcast sends a control event to every mirror aux unit and to
	// the central site's own main unit.
	Broadcast func(*event.Event)
	// OnCommit applies a committed timestamp locally (trim the central
	// backup queue).
	OnCommit func(vclock.VC)
	// Participants is the number of CHKPT_REP replies that complete a
	// round (mirror sites + the central main unit).
	Participants int
	// Piggyback, when non-nil, returns bytes to attach to outgoing
	// CHKPT events (adaptation directives ride along here). It is
	// passed the round number stamped on the CHKPT so directives carry
	// a version: receivers discard deliveries for rounds at or below
	// their watermark.
	Piggyback func(round uint64) []byte
	// RoundLatency, when non-nil, receives each committed round's
	// CHKPT→COMMIT latency. Abandoned rounds report nothing — their
	// time is folded into the subsuming round.
	RoundLatency func(time.Duration)

	mu        sync.Mutex
	round     uint64
	floor     uint64 // rounds at or below this belong to a previous central
	pending   int
	min       vclock.VC
	replied   [4]uint64 // per-site reply bitset for the open round, keyed by Stream
	commits   uint64
	rounds    uint64
	startedAt time.Time
}

// Init starts a new checkpoint round. If a previous round is still
// open it is abandoned: its eventual commit is subsumed by this one.
// It reports whether a round was actually started.
func (c *Coordinator) Init() bool {
	proposal := c.Propose()
	if proposal == nil {
		return false
	}
	c.mu.Lock()
	c.round++
	round := c.round
	c.pending = c.Participants
	participants := c.Participants
	c.min = nil
	c.replied = [4]uint64{}
	c.rounds++
	c.startedAt = time.Now()
	c.mu.Unlock()

	ev := event.NewControl(event.TypeChkpt, proposal)
	ev.Seq = round
	if c.Piggyback != nil {
		ev.Payload = c.Piggyback(round)
	}
	c.Broadcast(ev)
	if participants == 0 {
		// Degenerate single-site deployment: commit immediately.
		c.finish(round, proposal)
	}
	return true
}

// OnReply handles a CHKPT_REP. Replies for abandoned rounds are
// ignored, and so is a second reply from a site that already voted
// this round (Stream carries the site identity): a control link that
// duplicates messages must not complete the round before every
// distinct participant has replied, or the commit would be the
// minimum over a subset and could run ahead of a silent site.
// When the round's last distinct reply arrives, the minimum timestamp
// is committed and broadcast.
func (c *Coordinator) OnReply(e *event.Event) {
	if e.Type != event.TypeChkptReply {
		return
	}
	c.mu.Lock()
	if e.Seq <= c.floor {
		// A reply stamped by a previous central's coordinator, still in
		// flight when the role moved. The round check below would reject
		// it too (resumed rounds start past the floor), but the explicit
		// guard keeps promotion safety independent of round-allocation
		// order and makes the property fuzzable on its own.
		c.mu.Unlock()
		return
	}
	if e.Seq != c.round || c.pending == 0 {
		c.mu.Unlock()
		return
	}
	bit := uint(e.Stream)
	if c.replied[bit>>6]&(1<<(bit&63)) != 0 {
		c.mu.Unlock()
		return
	}
	c.replied[bit>>6] |= 1 << (bit & 63)
	if c.min == nil {
		c.min = e.VT.Clone()
	} else {
		c.min = c.min.Min(e.VT)
	}
	c.pending--
	done := c.pending == 0
	round := c.round
	commit := c.min.Clone()
	c.mu.Unlock()
	if done {
		c.finish(round, commit)
	}
}

func (c *Coordinator) finish(round uint64, commit vclock.VC) {
	c.mu.Lock()
	c.commits++
	started := c.startedAt
	c.mu.Unlock()
	if c.RoundLatency != nil && !started.IsZero() {
		c.RoundLatency(time.Since(started))
	}
	ev := event.NewControl(event.TypeCommit, commit)
	ev.Seq = round
	c.Broadcast(ev)
	if c.OnCommit != nil {
		c.OnCommit(commit)
	}
}

// NextRound allocates and returns a fresh round number for an
// out-of-band control broadcast (a standalone adaptation directive
// whose content changed after the last checkpoint stamped one). Any
// open checkpoint round is abandoned exactly as a new Init would
// abandon it — its late replies are ignored and a later round's
// commit subsumes it — so round numbers stay globally monotone
// across CHKPTs and directive re-broadcasts, which is what receiver
// watermarks rely on.
func (c *Coordinator) NextRound() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.round++
	return c.round
}

// Resume prepares a coordinator that takes over from a failed central
// (warm-standby promotion): round numbering restarts strictly above
// floor, and replies stamped at or below it — stragglers addressed to
// the old coordinator — are ignored. Use EpochBase to pick a floor
// past everything the old central could have stamped. Call before the
// first Init.
func (c *Coordinator) Resume(floor uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if floor > c.round {
		c.round = floor
	}
	if floor > c.floor {
		c.floor = floor
	}
}

// SetParticipants changes the number of replies that complete a round
// (membership changes: failed mirrors leave the quorum, recovered ones
// rejoin).
//
// A growth takes effect at the next Init: a mirror admitted mid-round
// never received the open round's CHKPT, so waiting for its reply
// would block the round forever. A shrink, however, applies to the
// open round immediately — the departed participant will never reply,
// and without the adjustment the round would hang until subsumed (or,
// with no further rounds, forever). If the shrink satisfies the open
// round's remaining quorum, the round commits with the minimum of the
// replies already received.
func (c *Coordinator) SetParticipants(n int) {
	c.mu.Lock()
	delta := n - c.Participants
	c.Participants = n
	var (
		finishRound  uint64
		finishCommit vclock.VC
		finishNow    bool
	)
	if delta < 0 && c.pending > 0 {
		c.pending += delta
		if c.pending <= 0 {
			c.pending = 0
			if c.min != nil {
				finishNow = true
				finishRound = c.round
				finishCommit = c.min.Clone()
			}
			// With no replies received there is nothing to commit:
			// the round simply closes (pending == 0 makes OnReply
			// ignore any stragglers) and the next Init subsumes it.
		}
	}
	c.mu.Unlock()
	if finishNow {
		c.finish(finishRound, finishCommit)
	}
}

// Stats returns the number of rounds initiated and commits issued.
func (c *Coordinator) Stats() (rounds, commits uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds, c.commits
}

// Mirror runs at a mirror site's auxiliary unit. Per Figure 3: CHKPT
// is forwarded to the main unit; the main unit's CHKPT_REP is
// forwarded to the central site if its timestamp is (at or before an
// event) in the local backup queue; COMMIT trims the local backup
// queue and is forwarded to the main unit.
type Mirror struct {
	// ToMain forwards a control event to the site's main unit.
	ToMain func(*event.Event)
	// ToCentral sends a control event to the coordinator.
	ToCentral func(*event.Event)
	// Commit trims the local backup queue through the timestamp.
	Commit func(vclock.VC)
	// OnPiggyback, when non-nil, receives the adaptation bytes
	// attached to CHKPT events (and carried by standalone TypeAdapt
	// control events), together with the checkpoint round that stamped
	// them.
	OnPiggyback func(round uint64, payload []byte)
}

// OnControl dispatches one control event through the mirror-aux state
// machine. Non-checkpoint events are ignored.
func (m *Mirror) OnControl(e *event.Event) {
	switch e.Type {
	case event.TypeChkpt:
		if m.OnPiggyback != nil && len(e.Payload) > 0 {
			m.OnPiggyback(e.Seq, e.Payload)
		}
		m.ToMain(e)
	case event.TypeAdapt:
		// A standalone adaptation directive (re-broadcast outside a
		// checkpoint round, e.g. after the backup queue drains). Not a
		// round message, so it is not forwarded to the main unit.
		if m.OnPiggyback != nil && len(e.Payload) > 0 {
			m.OnPiggyback(e.Seq, e.Payload)
		}
	case event.TypeChkptReply:
		// From our main unit: forward to the coordinator. The paper's
		// "if chkpt_rep in backup queue" guard is subsumed by the
		// commit side: stale commits are ignored by the backup queue
		// itself, so a reply is always safe to forward.
		m.ToCentral(e)
	case event.TypeCommit:
		// "if commit in backup queue, update backup queue": the
		// backup queue ignores commits at or below its trim point.
		if m.Commit != nil {
			m.Commit(e.VT)
		}
		m.ToMain(e)
	}
}

// Main runs at a main unit (central or mirror). On CHKPT it replies
// with min{suggested, last locally processed}; on COMMIT it trims any
// main-unit-side retained state.
type Main struct {
	// LastProcessed returns the highest event timestamp the unit's
	// business logic has applied.
	LastProcessed func() vclock.VC
	// Reply sends a control event back to the local aux unit (or, for
	// the central main unit, directly to the coordinator).
	Reply func(*event.Event)
	// Commit, when non-nil, is told the committed timestamp.
	Commit func(vclock.VC)
}

// OnControl dispatches one control event through the main-unit state
// machine.
func (m *Main) OnControl(e *event.Event) {
	switch e.Type {
	case event.TypeChkpt:
		last := m.LastProcessed()
		rep := e.VT.Min(last)
		if last == nil {
			// Nothing processed yet: vote zero progress.
			rep = vclock.New(len(e.VT))
		}
		reply := event.NewControl(event.TypeChkptReply, rep)
		reply.Seq = e.Seq
		m.Reply(reply)
	case event.TypeCommit:
		if m.Commit != nil {
			m.Commit(e.VT)
		}
	}
}
