package checkpoint

import (
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// FuzzCheckpointControl drives the full checkpoint control plane — a
// coordinator, the central main unit, and two mirror sites with real
// backup queues — with a fuzzer-chosen interleaving of feeds,
// processing steps, round initiations, and control-link faults (drop,
// duplicate, reorder, corrupt) on the reply path. The protocol's
// written-down safety properties are asserted after every delivery:
// no panic, committed cuts monotone, every commit at or below every
// participant's processed progress (a violation is a silent
// mis-commit — exactly what a duplicated reply used to cause), and
// backup-queue invariants intact at all times.
//
// Op bytes, interpreted modulo 8:
//
//	0 feed one event to all backup queues
//	1 site 0 processes one pending event
//	2 site 1 processes one pending event
//	3 coordinator initiates a round (replies go to the pending queue)
//	4 deliver the oldest pending reply
//	5 drop the oldest pending reply
//	6 duplicate the oldest pending reply (deliver twice)
//	7 corrupt the oldest pending reply's payload, then deliver it
func FuzzCheckpointControl(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 4, 4})          // clean round, everyone replies
	f.Add([]byte{0, 1, 3, 6, 6, 6, 0, 2, 3, 4, 4}) // duplicated replies must not commit early
	f.Add([]byte{0, 1, 3, 6, 5, 4})                // dup fast site + drop slow site = subset commit if dedup breaks
	f.Add([]byte{0, 0, 0, 1, 1, 2, 3, 5, 3, 4, 4, 4, 4}) // dropped reply, subsuming round
	f.Add([]byte{0, 1, 2, 3, 7, 7, 7, 0, 3, 4, 4, 4})    // corrupted payloads
	f.Add([]byte{3, 3, 3, 0, 3, 4, 1, 4, 2, 4, 4, 0, 0, 3, 4, 4, 4, 6, 5})

	f.Fuzz(func(t *testing.T, ops []byte) {
		const sites = 2
		var (
			history []vclock.VC // VTs fed so far, in order
			applied [sites]int  // events each mirror has processed
			central = queue.NewBackup()
			backups [sites]*queue.Backup
			pending []*event.Event // in-flight CHKPT_REP queue
			prev    vclock.VC      // last committed cut
		)
		for i := range backups {
			backups[i] = queue.NewBackup()
		}
		lastProcessed := func(site int) vclock.VC {
			if applied[site] == 0 {
				return nil
			}
			return history[applied[site]-1].Clone()
		}

		coord := &Coordinator{Participants: sites + 1}
		coord.Propose = central.Last
		checkCommit := func(cut vclock.VC) {
			if prev != nil && !prev.LessEq(cut) {
				t.Fatalf("committed cut regressed: %v after %v", cut, prev)
			}
			prev = cut.Clone()
			// The mis-commit detector: a commit is the min over every
			// distinct participant's vote, and votes never exceed the
			// voter's progress, so a commit past any site's progress
			// means the round completed without that site.
			for s := 0; s < sites; s++ {
				if lp := lastProcessed(s); !cut.LessEq(lp) {
					t.Fatalf("commit %v beyond site %d progress %v", cut, s, lp)
				}
			}
			if lp := central.Last(); lp != nil && !cut.LessEq(lp) {
				t.Fatalf("commit %v beyond central high water %v", cut, lp)
			}
		}
		coord.OnCommit = func(cut vclock.VC) {
			checkCommit(cut)
			central.Commit(cut)
		}

		mirrors := make([]*Mirror, sites)
		mains := make([]*Main, sites)
		for i := 0; i < sites; i++ {
			i := i
			mains[i] = &Main{
				LastProcessed: func() vclock.VC { return lastProcessed(i) },
				Reply: func(e *event.Event) {
					e.Stream = uint8(i)
					// Deployed replies carry a piggybacked monitor
					// sample; give the corrupt op something to damage.
					e.Payload = []byte{byte(i), 0xAB, 0xCD}
					pending = append(pending, e)
				},
			}
			mirrors[i] = &Mirror{
				ToMain:    func(e *event.Event) { mains[i].OnControl(e) },
				ToCentral: func(e *event.Event) { pending = append(pending, e) },
				Commit:    func(cut vclock.VC) { backups[i].Commit(cut) },
			}
		}
		centralMain := &Main{
			LastProcessed: central.Last,
			Reply: func(e *event.Event) {
				e.Stream = CentralParticipant
				pending = append(pending, e)
			},
		}
		coord.Broadcast = func(e *event.Event) {
			for i := range mirrors {
				mirrors[i].OnControl(e.Clone())
			}
			centralMain.OnControl(e.Clone())
		}

		checkQueues := func() {
			if err := central.CheckInvariants(); err != nil {
				t.Fatalf("central backup: %v", err)
			}
			for i := range backups {
				if err := backups[i].CheckInvariants(); err != nil {
					t.Fatalf("mirror %d backup: %v", i, err)
				}
			}
		}

		seq := uint64(0)
		for _, op := range ops {
			switch op % 8 {
			case 0: // feed
				seq++
				vt := vclock.VC{seq}
				e := event.NewPosition(event.FlightID(1+seq%3), seq, 0, 0, 0, 16)
				e.VT = vt
				history = append(history, vt)
				central.Append(e)
				for i := range backups {
					backups[i].Append(e.Clone())
				}
			case 1, 2: // a mirror processes one event
				s := int(op%8) - 1
				if applied[s] < len(history) {
					applied[s]++
				}
			case 3:
				coord.Init()
			case 4, 5, 6, 7:
				if len(pending) == 0 {
					continue
				}
				e := pending[0]
				pending = pending[1:]
				switch op % 8 {
				case 5: // drop
				case 6: // duplicate
					coord.OnReply(e.Clone())
					coord.OnReply(e)
				case 7: // corrupt payload only (framing survives)
					if len(e.Payload) > 0 {
						e.Payload[0] ^= 0xFF
					}
					coord.OnReply(e)
				default:
					coord.OnReply(e)
				}
			}
			checkQueues()
		}

		// Whatever interleaving the fuzzer chose, a clean final round
		// with full delivery must still commit: faults never wedge the
		// protocol permanently.
		if central.Last() != nil {
			for i := range applied {
				applied[i] = len(history)
			}
			pending = nil
			_, before := coord.Stats()
			coord.Init()
			for len(pending) > 0 {
				e := pending[0]
				pending = pending[1:]
				coord.OnReply(e)
			}
			if _, after := coord.Stats(); after != before+1 {
				t.Fatalf("clean final round did not commit (%d -> %d)", before, after)
			}
			checkQueues()
		}
	})
}
