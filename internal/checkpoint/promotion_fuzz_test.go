package checkpoint_test

import (
	"testing"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/event"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// FuzzPromotionHandshake drives the checkpoint control plane through
// central-failure handovers: a coordinator, the central main unit, and
// two mirror sites (with real backup queues and real directive
// appliers) run a fuzzer-chosen interleaving of feeds, processing
// steps, rounds, reply faults (drop, duplicate), directive publishes,
// stale-directive replays, and central crashes — each crash abandons
// the coordinator mid-flight and resumes a fresh one in the next epoch
// via Coordinator.Resume, with the old epoch's straggler replies still
// queued for delivery to the new one. It lives in the external test
// package so the harness can use adapt.Applier (adapt imports core,
// which imports this package).
//
// Machine-checked after every delivery, across every promotion:
//
//   - the committed cut is globally monotone — a promoted coordinator
//     never commits below its predecessor;
//   - no commit runs ahead of any site's processed progress (the
//     mis-commit a stale or duplicated CHKPT_REP would cause);
//   - CHKPT/directive rounds are strictly monotone and stay above the
//     current epoch's base, so receiver watermarks stay sound;
//   - directive appliers install exactly the highest-round directive
//     delivered to them — stale replays bounce off the watermark;
//   - backup-queue structural invariants hold at all times;
//   - whatever the interleaving did, a clean final round under the
//     current coordinator still commits (no permanent wedge).
//
// Op bytes, interpreted modulo 10:
//
//	0 feed one event to all backup queues
//	1 site 0 processes one pending event
//	2 site 1 processes one pending event
//	3 coordinator initiates a round (replies go to the pending queue)
//	4 deliver the oldest pending reply to the current coordinator
//	5 duplicate the oldest pending reply (deliver twice)
//	6 drop the oldest pending reply
//	7 crash the central: abandon the coordinator, resume a new one in
//	  the next epoch (stragglers in the pending queue survive it)
//	8 replay the oldest published directive to both appliers
//	9 publish a changed directive standalone via NextRound
func FuzzPromotionHandshake(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 4, 4})                                  // clean epoch-0 round
	f.Add([]byte{0, 1, 2, 3, 4, 4, 4, 7, 0, 1, 2, 3, 4, 4, 4})          // commit, promote, commit again
	f.Add([]byte{0, 3, 7, 4, 4, 4, 0, 1, 2, 3, 4, 4, 4})                // old-epoch stragglers hit the new coordinator
	f.Add([]byte{9, 0, 1, 2, 3, 4, 4, 4, 7, 9, 8, 8})                   // directives across promotion + stale replays
	f.Add([]byte{0, 1, 2, 3, 5, 4, 4, 7, 3, 4, 4, 4, 6, 5})             // dup completes round, then promoted round with faults
	f.Add([]byte{7, 7, 0, 1, 2, 3, 4, 4, 4, 9})                         // double promotion before any traffic
	f.Add([]byte{0, 0, 3, 4, 7, 4, 4, 0, 1, 1, 2, 2, 3, 4, 5, 4, 8, 9}) // half-voted round dies with its central

	f.Fuzz(func(t *testing.T, ops []byte) {
		const sites = 2
		var (
			history   []vclock.VC // VTs fed so far, in order
			applied   [sites]int  // events each mirror has processed
			central   = queue.NewBackup()
			backups   [sites]*queue.Backup
			pending   []*event.Event // in-flight CHKPT_REP queue
			prev      vclock.VC      // last committed cut, across all epochs
			epoch     uint64
			lastRound uint64          // highest round stamped on any CHKPT/directive
			published []*event.Event  // payload-carrying broadcasts, for stale replay
			appliers  [sites]*adapt.Applier
			expRound  [sites]uint64 // model: highest directive round delivered per site
			expID     [sites]uint8  // model: that directive's regime ID
		)
		for i := range backups {
			backups[i] = queue.NewBackup()
			appliers[i] = adapt.NewApplier(nil)
		}
		lastProcessed := func(site int) vclock.VC {
			if applied[site] == 0 {
				return nil
			}
			return history[applied[site]-1].Clone()
		}

		regimeID := uint8(1)
		directive := adapt.EncodeRegime(adapt.Regime{ID: regimeID, CheckpointFreq: 50})

		// deliver pushes one directive through a site's real applier and
		// checks it against the model: a directive above the site's
		// watermark must install, one at or below it must bounce, and
		// the applier's visible state must match the highest delivery.
		deliver := func(site int, round uint64, payload []byte) {
			installed := appliers[site].Apply(round, payload)
			reg, err := adapt.DecodeRegime(payload)
			if err != nil {
				if installed {
					t.Fatalf("site %d installed an undecodable directive", site)
				}
				return
			}
			if round > expRound[site] {
				if !installed {
					t.Fatalf("site %d rejected fresh directive round %d (watermark %d)",
						site, round, expRound[site])
				}
				expRound[site] = round
				expID[site] = reg.ID
			} else if installed {
				t.Fatalf("site %d installed stale directive round %d past watermark %d",
					site, round, expRound[site])
			}
			cur, wm, have := appliers[site].Current()
			if !have || wm != expRound[site] || cur.ID != expID[site] {
				t.Fatalf("site %d applier = (id %d, round %d, have %v), model = (id %d, round %d)",
					site, cur.ID, wm, have, expID[site], expRound[site])
			}
		}

		checkCommit := func(cut vclock.VC) {
			if prev != nil && !prev.LessEq(cut) {
				t.Fatalf("committed cut regressed across epoch %d: %v after %v", epoch, cut, prev)
			}
			prev = cut.Clone()
			for s := 0; s < sites; s++ {
				if lp := lastProcessed(s); !cut.LessEq(lp) {
					t.Fatalf("commit %v beyond site %d progress %v", cut, s, lp)
				}
			}
			if lp := central.Last(); lp != nil && !cut.LessEq(lp) {
				t.Fatalf("commit %v beyond central high water %v", cut, lp)
			}
		}

		mirrors := make([]*checkpoint.Mirror, sites)
		mains := make([]*checkpoint.Main, sites)
		for i := 0; i < sites; i++ {
			i := i
			mains[i] = &checkpoint.Main{
				LastProcessed: func() vclock.VC { return lastProcessed(i) },
				Reply: func(e *event.Event) {
					e.Stream = uint8(i)
					pending = append(pending, e)
				},
			}
			mirrors[i] = &checkpoint.Mirror{
				ToMain:      func(e *event.Event) { mains[i].OnControl(e) },
				ToCentral:   func(e *event.Event) { pending = append(pending, e) },
				Commit:      func(cut vclock.VC) { backups[i].Commit(cut) },
				OnPiggyback: func(round uint64, payload []byte) { deliver(i, round, payload) },
			}
		}
		centralMain := &checkpoint.Main{
			LastProcessed: central.Last,
			Reply: func(e *event.Event) {
				e.Stream = checkpoint.CentralParticipant
				pending = append(pending, e)
			},
		}
		broadcast := func(e *event.Event) {
			if e.Type == event.TypeChkpt || e.Type == event.TypeAdapt {
				if e.Seq <= lastRound {
					t.Fatalf("round %d not above previous round %d (epoch %d)", e.Seq, lastRound, epoch)
				}
				if e.Seq <= checkpoint.EpochBase(epoch) {
					t.Fatalf("round %d at or below epoch %d base %d", e.Seq, epoch, checkpoint.EpochBase(epoch))
				}
				lastRound = e.Seq
				if len(e.Payload) > 0 {
					published = append(published, e.Clone())
				}
			}
			for i := range mirrors {
				mirrors[i].OnControl(e.Clone())
			}
			centralMain.OnControl(e.Clone())
		}
		newCoordinator := func() *checkpoint.Coordinator {
			c := &checkpoint.Coordinator{Participants: sites + 1}
			c.Propose = central.Last
			c.Broadcast = broadcast
			c.OnCommit = func(cut vclock.VC) {
				checkCommit(cut)
				central.Commit(cut)
			}
			c.Piggyback = func(round uint64) []byte { return append([]byte(nil), directive...) }
			return c
		}
		coord := newCoordinator()

		checkQueues := func() {
			if err := central.CheckInvariants(); err != nil {
				t.Fatalf("central backup: %v", err)
			}
			for i := range backups {
				if err := backups[i].CheckInvariants(); err != nil {
					t.Fatalf("mirror %d backup: %v", i, err)
				}
			}
		}

		seq := uint64(0)
		for _, op := range ops {
			switch op % 10 {
			case 0: // feed
				seq++
				vt := vclock.VC{seq}
				e := event.NewPosition(event.FlightID(1+seq%3), seq, 0, 0, 0, 16)
				e.VT = vt
				history = append(history, vt)
				central.Append(e)
				for i := range backups {
					backups[i].Append(e.Clone())
				}
			case 1, 2: // a mirror processes one event
				s := int(op%10) - 1
				if applied[s] < len(history) {
					applied[s]++
				}
			case 3:
				coord.Init()
			case 4, 5, 6:
				if len(pending) == 0 {
					continue
				}
				e := pending[0]
				pending = pending[1:]
				switch op % 10 {
				case 5: // duplicate
					coord.OnReply(e.Clone())
					coord.OnReply(e)
				case 6: // drop
				default:
					coord.OnReply(e)
				}
			case 7: // central crash: promote into the next epoch
				epoch++
				floor := checkpoint.EpochBase(epoch)
				if lastRound > floor {
					floor = lastRound
				}
				coord = newCoordinator()
				coord.Resume(floor)
			case 8: // stale replay of the oldest published directive
				if len(published) == 0 {
					continue
				}
				d := published[0]
				for i := 0; i < sites; i++ {
					deliver(i, d.Seq, d.Payload)
				}
			case 9: // publish a changed directive standalone
				regimeID++
				directive = adapt.EncodeRegime(adapt.Regime{ID: regimeID, CheckpointFreq: 50})
				ev := event.NewControl(event.TypeAdapt, nil)
				ev.Seq = coord.NextRound()
				ev.Payload = append([]byte(nil), directive...)
				broadcast(ev)
			}
			checkQueues()
		}

		// Whatever interleaving the fuzzer chose — crashes included —
		// a clean final round under the current coordinator with full
		// delivery must still commit: promotions and stragglers never
		// wedge the protocol permanently.
		for i := range applied {
			applied[i] = len(history)
		}
		// Flush stragglers first; old-epoch replies must bounce off the
		// resumed coordinator's floor (and an open current round may
		// legitimately complete here, emptying the backup).
		for len(pending) > 0 {
			e := pending[0]
			pending = pending[1:]
			coord.OnReply(e)
		}
		if central.Last() != nil {
			_, before := coord.Stats()
			if !coord.Init() {
				t.Fatal("final round refused to start with a non-empty backup")
			}
			for len(pending) > 0 {
				e := pending[0]
				pending = pending[1:]
				coord.OnReply(e)
			}
			if _, after := coord.Stats(); after != before+1 {
				t.Fatalf("clean final round did not commit (%d -> %d, epoch %d)", before, after, epoch)
			}
			checkQueues()
		}
	})
}
