package checkpoint

import (
	"fmt"
	"sync"
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// harness wires a coordinator, n mirror-aux participants (each with a
// main unit and backup queue), and the central main unit, all over
// direct function calls.
type harness struct {
	coord      *Coordinator
	central    *queue.Backup
	mirrors    []*Mirror
	mirrorBk   []*queue.Backup
	mains      []*Main
	mainLast   []vclock.VC
	mu         sync.Mutex
	commitsAt  []vclock.VC // commit timestamps observed at central
	centralRep vclock.VC   // central main unit's progress
}

func newHarness(nMirrors int) *harness {
	h := &harness{central: queue.NewBackup()}
	h.coord = &Coordinator{
		Propose:      func() vclock.VC { return h.central.Last() },
		Participants: nMirrors + 1, // mirrors + central main unit
	}
	h.coord.OnCommit = func(ts vclock.VC) {
		h.central.Commit(ts)
		h.mu.Lock()
		h.commitsAt = append(h.commitsAt, ts)
		h.mu.Unlock()
	}

	// Central main unit replies directly to the coordinator, stamped
	// with the reserved participant identity.
	centralMain := &Main{
		LastProcessed: func() vclock.VC {
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.centralRep.Clone()
		},
		Reply: func(e *event.Event) {
			e.Stream = CentralParticipant
			h.coord.OnReply(e)
		},
	}

	h.mirrorBk = make([]*queue.Backup, nMirrors)
	h.mainLast = make([]vclock.VC, nMirrors)
	h.mirrors = make([]*Mirror, nMirrors)
	h.mains = make([]*Main, nMirrors)
	for i := 0; i < nMirrors; i++ {
		i := i
		h.mirrorBk[i] = queue.NewBackup()
		h.mains[i] = &Main{
			LastProcessed: func() vclock.VC {
				h.mu.Lock()
				defer h.mu.Unlock()
				return h.mainLast[i].Clone()
			},
		}
		h.mirrors[i] = &Mirror{
			ToMain: func(e *event.Event) { h.mains[i].OnControl(e) },
			ToCentral: func(e *event.Event) {
				e.Stream = uint8(i) // site identity, as the core wiring stamps it
				h.coord.OnReply(e)
			},
			Commit: func(ts vclock.VC) { h.mirrorBk[i].Commit(ts) },
		}
		h.mains[i].Reply = func(e *event.Event) { h.mirrors[i].OnControl(e) }
	}

	h.coord.Broadcast = func(e *event.Event) {
		for _, m := range h.mirrors {
			m.OnControl(e.Clone())
		}
		centralMain.OnControl(e.Clone())
	}
	return h
}

func (h *harness) setProgress(central uint64, mirrors ...uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.centralRep = vclock.VC{central}
	for i, m := range mirrors {
		h.mainLast[i] = vclock.VC{m}
	}
}

func (h *harness) feed(n uint64) {
	for i := uint64(1); i <= n; i++ {
		e := &event.Event{Type: event.TypeFAAPosition, Seq: i, Coalesced: 1, VT: vclock.VC{i}}
		h.central.Append(e)
		for _, bk := range h.mirrorBk {
			bk.Append(e.Clone())
		}
	}
}

func TestRoundCommitsMinimum(t *testing.T) {
	h := newHarness(2)
	h.feed(10)
	// Central main processed through 9; mirror mains through 7 and 5.
	h.setProgress(9, 7, 5)
	if !h.coord.Init() {
		t.Fatal("Init returned false with a non-empty backup queue")
	}
	if len(h.commitsAt) != 1 {
		t.Fatalf("commits = %d, want 1", len(h.commitsAt))
	}
	// Commit = min(propose=10, central=9, mirrors 7 and 5) = 5.
	if got := h.commitsAt[0]; got.Compare(vclock.VC{5}) != vclock.Equal {
		t.Fatalf("commit = %v, want <5>", got)
	}
	if h.central.Len() != 5 {
		t.Fatalf("central backup len = %d, want 5", h.central.Len())
	}
	for i, bk := range h.mirrorBk {
		if bk.Len() != 5 {
			t.Fatalf("mirror %d backup len = %d, want 5", i, bk.Len())
		}
	}
}

func TestEmptyBackupSkipsRound(t *testing.T) {
	h := newHarness(1)
	if h.coord.Init() {
		t.Fatal("Init must skip when backup queue is empty")
	}
	rounds, commits := h.coord.Stats()
	if rounds != 0 || commits != 0 {
		t.Fatalf("stats = %d rounds %d commits", rounds, commits)
	}
}

func TestSuccessiveRoundsAdvance(t *testing.T) {
	h := newHarness(1)
	h.feed(4)
	h.setProgress(4, 4)
	h.coord.Init()
	if h.central.Len() != 0 {
		t.Fatalf("after full commit central backup = %d", h.central.Len())
	}
	h.feed(4) // seq 1..4 again is stale; feed stamps 1..4 — need fresh stamps
	// Re-feed with higher stamps.
	for i := uint64(5); i <= 8; i++ {
		e := &event.Event{Type: event.TypeFAAPosition, Seq: i, Coalesced: 1, VT: vclock.VC{i}}
		h.central.Append(e)
		h.mirrorBk[0].Append(e.Clone())
	}
	h.setProgress(8, 6)
	h.coord.Init()
	if got := h.commitsAt[len(h.commitsAt)-1]; got.Compare(vclock.VC{6}) != vclock.Equal {
		t.Fatalf("second commit = %v, want <6>", got)
	}
}

func TestStaleReplyIgnored(t *testing.T) {
	h := newHarness(1)
	h.feed(5)
	h.setProgress(5, 5)
	h.coord.Init()
	_, commits := h.coord.Stats()
	// Inject a reply for a long-gone round; nothing should change.
	stale := event.NewControl(event.TypeChkptReply, vclock.VC{1})
	stale.Seq = 999
	h.coord.OnReply(stale)
	if _, c := h.coord.Stats(); c != commits {
		t.Fatalf("stale reply caused a commit: %d -> %d", commits, c)
	}
}

func TestDuplicateAndExtraRepliesIgnored(t *testing.T) {
	h := newHarness(1)
	h.feed(5)
	h.setProgress(5, 5)
	h.coord.Init()
	// Round completed; a duplicate reply for the same round must not
	// trigger another commit.
	dup := event.NewControl(event.TypeChkptReply, vclock.VC{2})
	dup.Seq = 1
	h.coord.OnReply(dup)
	if _, commits := h.coord.Stats(); commits != 1 {
		t.Fatalf("commits = %d, want 1", commits)
	}
}

func TestDuplicatedReplyDoesNotCompleteRoundEarly(t *testing.T) {
	// A control link that duplicates messages delivers the same site's
	// CHKPT_REP twice mid-round. The duplicate must not count toward
	// the quorum: committing on {site0, site0} would take the minimum
	// over a subset and could trim past site1's actual progress.
	c, _, committed := directCoord(2)
	c.Init()
	reply(c, 1, 0, 9)
	reply(c, 1, 0, 9) // duplicated delivery of the same vote
	if len(*committed) != 0 {
		t.Fatalf("duplicate reply completed the round: %v", *committed)
	}
	reply(c, 1, 1, 4)
	if len(*committed) != 1 || (*committed)[0].Compare(vclock.VC{4}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<4>]", *committed)
	}
}

func TestNonReplyEventIgnoredByCoordinator(t *testing.T) {
	h := newHarness(1)
	h.feed(3)
	h.setProgress(3, 3)
	h.coord.OnReply(event.NewControl(event.TypeCommit, vclock.VC{3})) // wrong type
	if _, commits := h.coord.Stats(); commits != 0 {
		t.Fatal("wrong-type event advanced the protocol")
	}
}

func TestLaterRoundSubsumesAbandoned(t *testing.T) {
	// Manually drive a coordinator whose participants never reply to
	// round 1; round 2 must commit and round-1 replies arriving later
	// must be ignored.
	var sent []*event.Event
	var committed []vclock.VC
	proposals := []vclock.VC{{5}, {8}}
	c := &Coordinator{
		Propose:      func() vclock.VC { v := proposals[0]; proposals = proposals[1:]; return v },
		Broadcast:    func(e *event.Event) { sent = append(sent, e) },
		OnCommit:     func(ts vclock.VC) { committed = append(committed, ts) },
		Participants: 1,
	}
	c.Init() // round 1, no replies
	c.Init() // round 2 abandons round 1
	rep := event.NewControl(event.TypeChkptReply, vclock.VC{7})
	rep.Seq = 2
	rep.Stream = CentralParticipant
	c.OnReply(rep)
	if len(committed) != 1 || committed[0].Compare(vclock.VC{7}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<7>]", committed)
	}
	// Late reply for abandoned round 1.
	late := event.NewControl(event.TypeChkptReply, vclock.VC{3})
	late.Seq = 1
	c.OnReply(late)
	if len(committed) != 1 {
		t.Fatalf("late round-1 reply caused commit: %v", committed)
	}
}

func TestZeroParticipantsCommitsImmediately(t *testing.T) {
	var committed []vclock.VC
	c := &Coordinator{
		Propose:      func() vclock.VC { return vclock.VC{4} },
		Broadcast:    func(*event.Event) {},
		OnCommit:     func(ts vclock.VC) { committed = append(committed, ts) },
		Participants: 0,
	}
	c.Init()
	if len(committed) != 1 || committed[0].Compare(vclock.VC{4}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<4>]", committed)
	}
}

func TestMainRepliesMinOfProposalAndProgress(t *testing.T) {
	var replies []*event.Event
	m := &Main{
		LastProcessed: func() vclock.VC { return vclock.VC{3} },
		Reply:         func(e *event.Event) { replies = append(replies, e) },
	}
	chkpt := event.NewControl(event.TypeChkpt, vclock.VC{10})
	chkpt.Seq = 7
	m.OnControl(chkpt)
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	if replies[0].VT.Compare(vclock.VC{3}) != vclock.Equal {
		t.Fatalf("reply VT = %v, want <3>", replies[0].VT)
	}
	if replies[0].Seq != 7 {
		t.Fatalf("reply round = %d, want 7", replies[0].Seq)
	}
	// Progress ahead of proposal: reply capped at proposal.
	m2 := &Main{
		LastProcessed: func() vclock.VC { return vclock.VC{20} },
		Reply:         func(e *event.Event) { replies = append(replies, e) },
	}
	m2.OnControl(chkpt)
	if replies[1].VT.Compare(vclock.VC{10}) != vclock.Equal {
		t.Fatalf("reply VT = %v, want <10>", replies[1].VT)
	}
}

func TestMainWithNoProgressVotesZero(t *testing.T) {
	var replies []*event.Event
	m := &Main{
		LastProcessed: func() vclock.VC { return nil },
		Reply:         func(e *event.Event) { replies = append(replies, e) },
	}
	m.OnControl(event.NewControl(event.TypeChkpt, vclock.VC{10, 2}))
	if len(replies) != 1 {
		t.Fatal("no reply")
	}
	if replies[0].VT.Compare(vclock.VC{0, 0}) != vclock.Equal {
		t.Fatalf("reply VT = %v, want <0,0>", replies[0].VT)
	}
}

func TestMainCommitCallback(t *testing.T) {
	var got vclock.VC
	m := &Main{
		LastProcessed: func() vclock.VC { return nil },
		Reply:         func(*event.Event) {},
		Commit:        func(ts vclock.VC) { got = ts },
	}
	m.OnControl(event.NewControl(event.TypeCommit, vclock.VC{6}))
	if got.Compare(vclock.VC{6}) != vclock.Equal {
		t.Fatalf("commit callback got %v", got)
	}
}

func TestPiggybackDelivery(t *testing.T) {
	var delivered [][]byte
	var rounds []uint64
	coord := &Coordinator{
		Propose:      func() vclock.VC { return vclock.VC{1} },
		Participants: 1,
		Piggyback: func(round uint64) []byte {
			return []byte(fmt.Sprintf("adapt:coalesce=20@%d", round))
		},
	}
	mirror := &Mirror{
		ToMain:    func(*event.Event) {},
		ToCentral: func(*event.Event) {},
		OnPiggyback: func(round uint64, b []byte) {
			rounds = append(rounds, round)
			delivered = append(delivered, b)
		},
	}
	coord.Broadcast = func(e *event.Event) { mirror.OnControl(e) }
	coord.Init()
	if len(delivered) != 1 || string(delivered[0]) != "adapt:coalesce=20@1" {
		t.Fatalf("delivered = %q", delivered)
	}
	if len(rounds) != 1 || rounds[0] != 1 {
		t.Fatalf("piggyback rounds = %v, want [1]", rounds)
	}
}

func TestStandaloneAdaptDirectiveDelivery(t *testing.T) {
	// A TypeAdapt control event (a directive re-broadcast outside any
	// checkpoint round) reaches the piggyback hook with its round stamp
	// and is not forwarded to the main unit.
	var delivered [][]byte
	var rounds []uint64
	toMain := 0
	mirror := &Mirror{
		ToMain:    func(*event.Event) { toMain++ },
		ToCentral: func(*event.Event) {},
		OnPiggyback: func(round uint64, b []byte) {
			rounds = append(rounds, round)
			delivered = append(delivered, b)
		},
	}
	ev := event.NewControl(event.TypeAdapt, nil)
	ev.Seq = 7
	ev.Payload = []byte("regime")
	mirror.OnControl(ev)
	if len(delivered) != 1 || string(delivered[0]) != "regime" {
		t.Fatalf("delivered = %q", delivered)
	}
	if len(rounds) != 1 || rounds[0] != 7 {
		t.Fatalf("rounds = %v, want [7]", rounds)
	}
	if toMain != 0 {
		t.Fatalf("standalone directive forwarded to main %d times", toMain)
	}
}

func TestCommitForTrimmedEventIgnored(t *testing.T) {
	// Mirror receives a commit for a timestamp its backup queue has
	// already trimmed; per the paper it is ignored (no state change,
	// no error).
	bk := queue.NewBackup()
	bk.Append(&event.Event{VT: vclock.VC{1}, Coalesced: 1})
	bk.Append(&event.Event{VT: vclock.VC{2}, Coalesced: 1})
	bk.Commit(vclock.VC{2})
	m := &Mirror{
		ToMain:    func(*event.Event) {},
		ToCentral: func(*event.Event) {},
		Commit:    func(ts vclock.VC) { bk.Commit(ts) },
	}
	m.OnControl(event.NewControl(event.TypeCommit, vclock.VC{1}))
	if bk.Len() != 0 {
		t.Fatalf("backup len = %d", bk.Len())
	}
	if got := bk.Committed(); got.Compare(vclock.VC{2}) != vclock.Equal {
		t.Fatalf("committed regressed to %v", got)
	}
}

func TestConcurrentRepliesSafe(t *testing.T) {
	c := &Coordinator{
		Propose:      func() vclock.VC { return vclock.VC{100} },
		Broadcast:    func(*event.Event) {},
		OnCommit:     func(vclock.VC) {},
		Participants: 8,
	}
	c.Init()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := event.NewControl(event.TypeChkptReply, vclock.VC{uint64(10 + i)})
			rep.Seq = 1
			rep.Stream = uint8(i)
			c.OnReply(rep)
		}(i)
	}
	wg.Wait()
	if _, commits := c.Stats(); commits != 1 {
		t.Fatalf("commits = %d, want 1", commits)
	}
}

// directCoord builds a coordinator whose broadcasts and commits are
// recorded; participants are driven by hand via OnReply.
func directCoord(participants int) (*Coordinator, *[]*event.Event, *[]vclock.VC) {
	var (
		mu        sync.Mutex
		sent      []*event.Event
		committed []vclock.VC
	)
	c := &Coordinator{
		Propose: func() vclock.VC { return vclock.VC{100} },
		Broadcast: func(e *event.Event) {
			mu.Lock()
			sent = append(sent, e)
			mu.Unlock()
		},
		OnCommit: func(ts vclock.VC) {
			mu.Lock()
			committed = append(committed, ts)
			mu.Unlock()
		},
		Participants: participants,
	}
	return c, &sent, &committed
}

func reply(c *Coordinator, round uint64, site uint8, ts uint64) {
	rep := event.NewControl(event.TypeChkptReply, vclock.VC{ts})
	rep.Seq = round
	rep.Stream = site
	c.OnReply(rep)
}

func TestShrinkMidRoundCompletesWithReceivedMin(t *testing.T) {
	// Three participants; two reply, the third dies. Shrinking to two
	// must commit the round with the minimum of the two received
	// replies instead of blocking forever.
	c, _, committed := directCoord(3)
	c.Init()
	reply(c, 1, 0, 7)
	reply(c, 1, 1, 9)
	c.SetParticipants(2)
	if len(*committed) != 1 || (*committed)[0].Compare(vclock.VC{7}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<7>]", *committed)
	}
	// A late reply from the departed participant must not re-commit.
	reply(c, 1, 2, 3)
	if len(*committed) != 1 {
		t.Fatalf("late reply from departed participant re-committed: %v", *committed)
	}
}

func TestShrinkWithNoRepliesClosesRoundWithoutCommit(t *testing.T) {
	// The only participant dies before replying. The shrink closes the
	// round with nothing to commit; the next Init proceeds normally.
	c, _, committed := directCoord(1)
	c.Init()
	c.SetParticipants(0)
	if len(*committed) != 0 {
		t.Fatalf("commit with zero replies: %v", *committed)
	}
	// Straggler reply for the closed round is ignored.
	reply(c, 1, 0, 5)
	if len(*committed) != 0 {
		t.Fatalf("straggler reply committed closed round: %v", *committed)
	}
	// Zero participants now: the next round commits immediately.
	c.Init()
	if len(*committed) != 1 {
		t.Fatalf("commits after Init = %d, want 1", len(*committed))
	}
}

func TestShrinkBelowRepliesReceived(t *testing.T) {
	// Shrink by more than the outstanding count: pending clamps at zero
	// and the round commits exactly once.
	c, _, committed := directCoord(4)
	c.Init()
	reply(c, 1, 0, 12)
	c.SetParticipants(1) // delta -3 > pending 3 remaining after one reply
	if len(*committed) != 1 || (*committed)[0].Compare(vclock.VC{12}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<12>]", *committed)
	}
}

func TestGrowthMidRoundDefersToNextInit(t *testing.T) {
	// A participant rejoining mid-round never saw the open round's
	// CHKPT, so growth must not raise the open round's quorum.
	c, _, committed := directCoord(2)
	c.Init()
	reply(c, 1, 0, 4)
	c.SetParticipants(3)
	reply(c, 1, 1, 6)
	if len(*committed) != 1 || (*committed)[0].Compare(vclock.VC{4}) != vclock.Equal {
		t.Fatalf("committed = %v, want [<4>]", *committed)
	}
	// The next round requires all three.
	c.Init()
	reply(c, 2, 0, 8)
	reply(c, 2, 1, 9)
	if len(*committed) != 1 {
		t.Fatalf("round 2 committed early: %v", *committed)
	}
	reply(c, 2, 2, 10)
	if len(*committed) != 2 {
		t.Fatalf("round 2 did not commit after 3 replies: %v", *committed)
	}
}

func TestShrinkIdleCoordinatorNoEffect(t *testing.T) {
	// Shrinking with no open round (pending == 0) must not commit.
	c, _, committed := directCoord(3)
	c.SetParticipants(2)
	if len(*committed) != 0 {
		t.Fatalf("idle shrink committed: %v", *committed)
	}
}

func TestConcurrentShrinkAndReplies(t *testing.T) {
	// The mid-round shrink racing OnReply must produce exactly one
	// commit (either path may deliver it) and never deadlock.
	for iter := 0; iter < 50; iter++ {
		c, _, committed := directCoord(8)
		c.Init()
		var wg sync.WaitGroup
		for i := 0; i < 7; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				reply(c, 1, uint8(i), uint64(10+i))
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.SetParticipants(7)
		}()
		wg.Wait()
		if len(*committed) != 1 {
			t.Fatalf("iter %d: commits = %d, want 1", iter, len(*committed))
		}
	}
}

func BenchmarkCheckpointRound(b *testing.B) {
	h := newHarness(4)
	h.feed(uint64(b.N%1000 + 100))
	h.setProgress(50, 50, 50, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.coord.Init()
	}
}
