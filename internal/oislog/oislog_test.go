package oislog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

func ev(seq uint64, size int) *event.Event {
	e := event.NewPosition(event.FlightID(1+seq%5), seq, float64(seq), 0, 9000, size)
	e.VT = vclock.VC{seq}
	return e
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := uint64(1); i <= n; i++ {
		if err := l.Append(ev(i, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appends() != n {
		t.Fatalf("Appends = %d", l.Appends())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	count, err := Replay(dir, func(e *event.Event) error {
		got = append(got, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n || len(got) != n {
		t.Fatalf("replayed %d, want %d", count, n)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("record %d has seq %d: order violated", i, s)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := l.Append(ev(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want rotation", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq <= segs[i-1].Seq {
			t.Fatal("segments not ordered")
		}
	}
	count, err := Replay(dir, func(*event.Event) error { return nil })
	if err != nil || count != 50 {
		t.Fatalf("replay across segments = (%d, %v)", count, err)
	}
}

func TestExplicitRotate(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append(ev(1, 64))
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	l.Append(ev(2, 64))
	l.Close()
	segs, _ := Segments(dir)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
}

func TestReopenContinuesInFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l1, _ := Open(dir, Options{})
	l1.Append(ev(1, 64))
	l1.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(ev(2, 64))
	l2.Close()
	segs, _ := Segments(dir)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (fresh segment per open)", len(segs))
	}
	count, err := Replay(dir, func(*event.Event) error { return nil })
	if err != nil || count != 2 {
		t.Fatalf("replay = (%d, %v)", count, err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := uint64(1); i <= 10; i++ {
		l.Append(ev(i, 64))
	}
	l.Close()
	// Simulate a crash mid-write: truncate the last few bytes.
	segs, _ := Segments(dir)
	last := segs[len(segs)-1]
	if err := os.Truncate(last.Path, last.Size-7); err != nil {
		t.Fatal(err)
	}
	count, err := Replay(dir, func(*event.Event) error { return nil })
	if err != nil {
		t.Fatalf("torn tail must replay cleanly: %v", err)
	}
	if count != 9 {
		t.Fatalf("replayed %d, want 9 (last record lost)", count)
	}
}

func TestCorruptBodyDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append(ev(1, 64))
	l.Append(ev(2, 64))
	l.Close()
	segs, _ := Segments(dir)
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF // flip a byte inside the first record's body
	os.WriteFile(segs[0].Path, data, 0o644)
	count, err := Replay(dir, func(*event.Event) error { return nil })
	if err != nil {
		t.Fatalf("corrupt tail of single segment tolerated as torn: %v", err)
	}
	if count != 0 {
		t.Fatalf("replayed %d past a corrupt record, want 0", count)
	}
}

func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentSize: 1024})
	for i := uint64(1); i <= 30; i++ {
		l.Append(ev(i, 128))
	}
	l.Close()
	segs, _ := Segments(dir)
	if len(segs) < 3 {
		t.Skip("need ≥3 segments for this scenario")
	}
	data, _ := os.ReadFile(segs[0].Path)
	data[10] ^= 0xFF
	os.WriteFile(segs[0].Path, data, 0o644)
	if _, err := Replay(dir, func(*event.Event) error { return nil }); err == nil {
		t.Fatal("corruption in a non-final segment must be reported")
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append(ev(1, 64))
	l.Close()
	boom := errors.New("boom")
	if _, err := Replay(dir, func(*event.Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Close()
	if err := l.Append(ev(1, 16)); err != ErrClosed {
		t.Fatalf("Append after close = %v", err)
	}
	if err := l.Rotate(); err != ErrClosed {
		t.Fatalf("Rotate after close = %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestOpenBadDir(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "file")
	os.WriteFile(path, []byte("x"), 0o644)
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open on a file must fail")
	}
}

func TestSubmitImplementsSender(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	defer l.Close()
	if err := l.Submit(ev(1, 32)); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 1 {
		t.Fatal("Submit did not append")
	}
}

func TestReplayEmptyDir(t *testing.T) {
	count, err := Replay(t.TempDir(), func(*event.Event) error { return nil })
	if err != nil || count != 0 {
		t.Fatalf("empty replay = (%d, %v)", count, err)
	}
}

func BenchmarkAppend1KB(b *testing.B) {
	dir := b.TempDir()
	l, _ := Open(dir, Options{})
	defer l.Close()
	e := ev(1, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}
