// Package oislog implements the durable operational-state log among
// the OIS's output consumers: the paper lists "large databases in
// which operational state changes are recorded for logging purposes"
// as clients of the server's update stream. The log is a segmented
// append-only file store: every record is a framed event with a CRC;
// segments rotate at a size threshold; Replay streams every record
// back in order, stopping cleanly at a torn tail (a crash mid-write
// loses at most the last record).
package oislog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"adaptmirror/internal/event"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("oislog: closed")

// DefaultSegmentSize is the rotation threshold.
const DefaultSegmentSize = 4 << 20

// segment file names: 00000001.oislog, 00000002.oislog, ...
const segmentSuffix = ".oislog"

// Log is a durable, append-only event log.
type Log struct {
	dir     string
	maxSize int64

	mu      sync.Mutex
	f       *os.File
	size    int64
	seq     uint64 // current segment number
	appends uint64
	closed  bool
}

// Options tunes a Log.
type Options struct {
	// SegmentSize is the rotation threshold (default 4 MiB).
	SegmentSize int64
}

// Open creates or resumes a log in dir. Existing segments are kept;
// appends continue in a fresh segment after the highest existing one
// (a torn tail in an old segment therefore never corrupts new data).
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oislog: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1].Seq + 1
	}
	l := &Log{dir: dir, maxSize: opts.SegmentSize, seq: next}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	Seq  uint64
	Path string
	Size int64
}

// Segments lists a log directory's segments in order.
func Segments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("oislog: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != segmentSuffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "%08d"+segmentSuffix, &seq); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("oislog: %w", err)
		}
		segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, name), Size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

func (l *Log) openSegment() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%08d%s", l.seq, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("oislog: %w", err)
	}
	l.f = f
	l.size = 0
	return nil
}

// Append durably records one event. Records are framed as
// [len uint32][crc32 uint32][event bytes].
func (l *Log) Append(e *event.Event) error {
	body := e.Marshal()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(len(body))+8 > l.maxSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("oislog: %w", err)
	}
	if _, err := l.f.Write(body); err != nil {
		return fmt.Errorf("oislog: %w", err)
	}
	l.size += int64(len(body)) + 8
	l.appends++
	return nil
}

// Submit implements the core.Sender shape, so a Log can serve directly
// as a site's client-update sink.
func (l *Log) Submit(e *event.Event) error { return l.Append(e) }

func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("oislog: %w", err)
	}
	l.seq++
	return l.openSegment()
}

// Rotate forces a segment boundary.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Appends returns the number of records appended by this handle.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("oislog: %w", err)
	}
	return l.f.Close()
}

// Replay streams every durable record in order to fn, stopping at the
// first torn or corrupt record in the final segment (earlier segments
// must be intact). It returns the number of records delivered.
func Replay(dir string, fn func(*event.Event) error) (int, error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, seg := range segs {
		n, err := replaySegment(seg.Path, fn)
		total += n
		if err != nil {
			if i == len(segs)-1 && errors.Is(err, errTorn) {
				// A torn tail in the last segment is the expected
				// crash artifact: everything before it is intact.
				return total, nil
			}
			return total, err
		}
	}
	return total, nil
}

var errTorn = errors.New("oislog: torn record")

func replaySegment(path string, fn func(*event.Event) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("oislog: %w", err)
	}
	defer f.Close()
	n := 0
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, errTorn
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if size > event.MaxPayload {
			return n, errTorn
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(f, body); err != nil {
			return n, errTorn
		}
		if crc32.ChecksumIEEE(body) != want {
			return n, errTorn
		}
		e, _, err := event.Unmarshal(body)
		if err != nil {
			return n, errTorn
		}
		if err := fn(e); err != nil {
			return n, err
		}
		n++
	}
}
