package workload

import (
	"testing"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/loadbal"
	"adaptmirror/internal/metrics"
)

func mains(t *testing.T, n int) []*core.MainUnit {
	t.Helper()
	out := make([]*core.MainUnit, n)
	for i := range out {
		out[i] = core.NewMainUnit(core.MainConfig{})
		t.Cleanup(out[i].Close)
	}
	return out
}

func TestConstantPattern(t *testing.T) {
	p := Constant{RPS: 100}
	if p.Rate(0) != 100 || p.Rate(time.Hour) != 100 {
		t.Fatal("constant pattern must be constant")
	}
}

func TestBurstyPattern(t *testing.T) {
	p := Bursty{Base: 10, Burst: 400, Period: time.Second, BurstLen: 200 * time.Millisecond}
	if got := p.Rate(100 * time.Millisecond); got != 400 {
		t.Fatalf("rate in burst = %v, want 400", got)
	}
	if got := p.Rate(500 * time.Millisecond); got != 10 {
		t.Fatalf("rate off burst = %v, want 10", got)
	}
	if got := p.Rate(1100 * time.Millisecond); got != 400 {
		t.Fatalf("rate in second period's burst = %v, want 400", got)
	}
	zero := Bursty{Base: 7}
	if zero.Rate(time.Second) != 7 {
		t.Fatal("zero-period bursty must return base")
	}
}

func TestSpikePattern(t *testing.T) {
	p := Spike{Base: 5, Extra: 500, At: time.Second, Len: 100 * time.Millisecond}
	if got := p.Rate(0); got != 5 {
		t.Fatalf("pre-spike rate = %v", got)
	}
	if got := p.Rate(time.Second + 50*time.Millisecond); got != 505 {
		t.Fatalf("spike rate = %v, want 505", got)
	}
	if got := p.Rate(2 * time.Second); got != 5 {
		t.Fatalf("post-spike rate = %v", got)
	}
}

func TestRunTotalRequests(t *testing.T) {
	targets := mains(t, 2)
	lat := metrics.NewHistogram(0)
	res := Run(Config{
		Pattern:       Constant{RPS: 5000},
		Targets:       targets,
		TotalRequests: 50,
		Latency:       lat,
	})
	if res.Issued != 50 {
		t.Fatalf("Issued = %d, want 50", res.Issued)
	}
	if res.Completed != 50 {
		t.Fatalf("Completed = %d, want 50", res.Completed)
	}
	if lat.Count() != 50 {
		t.Fatalf("latency samples = %d, want 50", lat.Count())
	}
	// Round-robin spread.
	if a, b := targets[0].ServedRequests(), targets[1].ServedRequests(); a != 25 || b != 25 {
		t.Fatalf("spread = %d/%d, want 25/25", a, b)
	}
}

func TestRunDuration(t *testing.T) {
	targets := mains(t, 1)
	res := Run(Config{
		Pattern:  Constant{RPS: 1000},
		Targets:  targets,
		Duration: 50 * time.Millisecond,
	})
	if res.Issued == 0 {
		t.Fatal("no requests issued during duration run")
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("Elapsed = %v, want >= 50ms", res.Elapsed)
	}
}

func TestRunStopChannel(t *testing.T) {
	targets := mains(t, 1)
	stop := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(stop)
	}()
	res := Run(Config{
		Pattern: Constant{RPS: 1000},
		Targets: targets,
		Stop:    stop,
	})
	if res.Elapsed > 5*time.Second {
		t.Fatal("Stop channel did not stop the run")
	}
}

func TestRunPoisson(t *testing.T) {
	targets := mains(t, 1)
	res := Run(Config{
		Pattern:       Constant{RPS: 5000},
		Targets:       targets,
		TotalRequests: 30,
		Poisson:       true,
		Seed:          3,
	})
	if res.Completed != 30 {
		t.Fatalf("Completed = %d, want 30", res.Completed)
	}
}

func TestRunRejectedOnClosedTarget(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	m.Close()
	res := Run(Config{
		Pattern:       Constant{RPS: 10000},
		Targets:       []*core.MainUnit{m},
		TotalRequests: 10,
	})
	if res.Rejected != 10 || res.Completed != 0 {
		t.Fatalf("result = %+v, want 10 rejected", res)
	}
}

func TestRunCustomBalancer(t *testing.T) {
	targets := mains(t, 3)
	bal, _ := loadbal.NewLeastLoaded(3, func(i int) int { return targets[i].PendingRequests() })
	res := Run(Config{
		Pattern:       Constant{RPS: 5000},
		Targets:       targets,
		Balancer:      bal,
		TotalRequests: 30,
	})
	if res.Completed != 30 {
		t.Fatalf("Completed = %d", res.Completed)
	}
}

func TestRunPanicsWithoutTargets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic with no targets")
		}
	}()
	Run(Config{Pattern: Constant{RPS: 1}})
}

func TestBurst(t *testing.T) {
	targets := mains(t, 2)
	lat := metrics.NewHistogram(0)
	done, elapsed := Burst(targets, nil, 40, lat)
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
	if elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
	if lat.Count() != 40 {
		t.Fatalf("latency samples = %d", lat.Count())
	}
}

func TestBurstAgainstClosedTarget(t *testing.T) {
	m := core.NewMainUnit(core.MainConfig{})
	m.Close()
	done, _ := Burst([]*core.MainUnit{m}, nil, 5, nil)
	if done != 0 {
		t.Fatalf("completed %d against closed target", done)
	}
}

func TestIdlePatternMakesProgress(t *testing.T) {
	// A pattern that is idle at first and active later must still
	// issue requests once active.
	targets := mains(t, 1)
	res := Run(Config{
		Pattern:       Spike{Base: 0, Extra: 2000, At: 10 * time.Millisecond, Len: time.Hour},
		Targets:       targets,
		TotalRequests: 10,
	})
	if res.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", res.Completed)
	}
}
