// Package workload generates client request load against mirror
// sites, standing in for the paper's httperf-driven client machines.
// Requests are issued open-loop (arrival times do not depend on
// completion times, like httperf's fixed-rate mode) following a rate
// pattern: constant, Poisson-jittered, bursty on/off, or a
// power-failure spike (the paper's motivating scenario of an airport
// terminal's thin clients all requesting initialization state at
// once).
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/core"
	"adaptmirror/internal/loadbal"
	"adaptmirror/internal/metrics"
)

// Pattern yields the offered request rate in requests/second as a
// function of elapsed time.
type Pattern interface {
	// Rate returns the instantaneous offered rate at the given
	// elapsed time; 0 means idle.
	Rate(elapsed time.Duration) float64
}

// Constant offers a fixed rate.
type Constant struct{ RPS float64 }

// Rate implements Pattern.
func (c Constant) Rate(time.Duration) float64 { return c.RPS }

// Bursty alternates between a base and a burst rate: each Period, the
// first BurstLen runs at Burst RPS, the remainder at Base RPS. This is
// the "bursty clients requests pattern" of the Figure 9 experiment.
type Bursty struct {
	Base, Burst float64
	Period      time.Duration
	BurstLen    time.Duration
}

// Rate implements Pattern.
func (b Bursty) Rate(elapsed time.Duration) float64 {
	if b.Period <= 0 {
		return b.Base
	}
	into := elapsed % b.Period
	if into < b.BurstLen {
		return b.Burst
	}
	return b.Base
}

// Spike models a power-failure recovery: Base RPS, with a single
// burst of Extra RPS during [At, At+Len) while a terminal's thin
// clients re-request initialization state.
type Spike struct {
	Base, Extra float64
	At, Len     time.Duration
}

// Rate implements Pattern.
func (s Spike) Rate(elapsed time.Duration) float64 {
	if elapsed >= s.At && elapsed < s.At+s.Len {
		return s.Base + s.Extra
	}
	return s.Base
}

// Config parameterizes a load run.
type Config struct {
	// Pattern is the offered-rate schedule.
	Pattern Pattern
	// Targets are the mirror main units serving requests.
	Targets []*core.MainUnit
	// Balancer spreads requests over Targets (nil = round robin).
	Balancer loadbal.Balancer
	// TotalRequests stops the run after issuing this many requests
	// (0 = run until Duration or Stop).
	TotalRequests int
	// Duration stops the run after this much time (0 = until
	// TotalRequests or Stop).
	Duration time.Duration
	// Stop, when non-nil, aborts the run when closed.
	Stop <-chan struct{}
	// Latency, when non-nil, records request round-trip times.
	Latency *metrics.Histogram
	// Poisson jitters inter-arrival times exponentially instead of
	// using a deterministic rate.
	Poisson bool
	// Seed drives the Poisson jitter.
	Seed int64
}

// Result summarizes a load run.
type Result struct {
	Issued    uint64 // requests dispatched
	Completed uint64 // responses received
	Rejected  uint64 // requests refused (buffer full or unit closed)
	Elapsed   time.Duration
}

// Run issues requests per the configuration and blocks until every
// dispatched request has completed (or failed). It panics if no
// targets are configured.
func Run(cfg Config) Result {
	if len(cfg.Targets) == 0 {
		panic("workload: no targets")
	}
	bal := cfg.Balancer
	if bal == nil {
		bal, _ = loadbal.NewRoundRobin(len(cfg.Targets))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var issued, completed, rejected atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()

	dispatch := func() {
		target := cfg.Targets[bal.Pick()%len(cfg.Targets)]
		req := &core.InitRequest{Resp: make(chan []byte, 1)}
		sentAt := time.Now()
		if err := target.Request(req); err != nil {
			rejected.Add(1)
			return
		}
		issued.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := <-req.Resp; !ok {
				return
			}
			completed.Add(1)
			if cfg.Latency != nil {
				cfg.Latency.Record(time.Since(sentAt))
			}
		}()
	}

	// The generator accumulates request "debt" as the integral of the
	// offered rate over elapsed time and dispatches the whole batch
	// due at each wake-up. This keeps offered load accurate at rates
	// far above the host's sleep granularity (tens of thousands of
	// requests per second paced with ~1ms sleeps).
	n := 0
	last := start
	var due float64
	for {
		now := time.Now()
		elapsed := now.Sub(start)
		if cfg.Duration > 0 && elapsed >= cfg.Duration {
			break
		}
		if cfg.TotalRequests > 0 && n >= cfg.TotalRequests {
			break
		}
		if stopped(cfg.Stop) {
			break
		}
		due += cfg.Pattern.Rate(elapsed) * now.Sub(last).Seconds()
		last = now
		for due >= 1 {
			if cfg.TotalRequests > 0 && n >= cfg.TotalRequests {
				due = 0
				break
			}
			dispatch()
			n++
			due--
		}
		pause := time.Millisecond
		if cfg.Poisson {
			pause = time.Duration(rng.ExpFloat64() * float64(pause))
		}
		time.Sleep(pause)
	}
	wg.Wait()
	return Result{
		Issued:    issued.Load(),
		Completed: completed.Load(),
		Rejected:  rejected.Load(),
		Elapsed:   time.Since(start),
	}
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Burst issues n simultaneous requests (the instantaneous half of the
// power-failure scenario) and waits for all responses. It returns the
// number completed and the total elapsed time.
func Burst(targets []*core.MainUnit, bal loadbal.Balancer, n int, lat *metrics.Histogram) (completed int, elapsed time.Duration) {
	if bal == nil {
		bal, _ = loadbal.NewRoundRobin(len(targets))
	}
	start := time.Now()
	var wg sync.WaitGroup
	var done atomic.Uint64
	for i := 0; i < n; i++ {
		target := targets[bal.Pick()%len(targets)]
		req := &core.InitRequest{Resp: make(chan []byte, 1)}
		sentAt := time.Now()
		if err := target.Request(req); err != nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := <-req.Resp; ok {
				done.Add(1)
				if lat != nil {
					lat.Record(time.Since(sentAt))
				}
			}
		}()
	}
	wg.Wait()
	return int(done.Load()), time.Since(start)
}
