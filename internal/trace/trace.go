// Package trace records event streams to files and replays them, the
// equivalent of the paper's "demo replay of original FAA streams":
// experiments run against identical captured input regardless of
// generator changes.
package trace

import (
	"fmt"
	"io"
	"os"

	"adaptmirror/internal/event"
)

// Save writes events to path in framed binary form.
func Save(path string, events []*event.Event) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("trace: close: %w", cerr)
		}
	}()
	w := event.NewWriter(f)
	for i, e := range events {
		if err := w.WriteEvent(e); err != nil {
			return fmt.Errorf("trace: writing event %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Load reads every event from path.
func Load(path string) ([]*event.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	r := event.NewReader(f)
	var out []*event.Event
	for {
		e, err := r.ReadEvent()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Replay feeds events to submit in order, stopping at the first error.
// It returns the number of events submitted.
func Replay(events []*event.Event, submit func(*event.Event) error) (int, error) {
	for i, e := range events {
		if err := submit(e); err != nil {
			return i, fmt.Errorf("trace: replay at %d/%d: %w", i, len(events), err)
		}
	}
	return len(events), nil
}
