package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/faa"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faa.trace")
	events := faa.New(faa.Config{Flights: 5, UpdatesPerFlight: 10, EventSize: 200, Seed: 4}).All()
	if err := Save(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("loaded %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Flight != events[i].Flight || got[i].Seq != events[i].Seq {
			t.Fatalf("event %d mismatch", i)
		}
		if len(got[i].Payload) != len(events[i].Payload) {
			t.Fatalf("event %d payload size mismatch", i)
		}
	}
}

func TestSaveEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.trace")
	if err := Save(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("loaded %d events from empty trace", len(got))
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestSaveBadPath(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.trace"), nil); err == nil {
		t.Fatal("bad path must fail")
	}
}

func TestLoadCorruptTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.trace")
	events := []*event.Event{event.NewPosition(1, 1, 0, 0, 0, 64)}
	if err := Save(path, events); err != nil {
		t.Fatal(err)
	}
	// Truncate the file mid-frame.
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-10]); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt trace must fail to load")
	}
}

func TestReplay(t *testing.T) {
	events := faa.New(faa.Config{Flights: 2, UpdatesPerFlight: 3, Seed: 1}).All()
	var got []*event.Event
	n, err := Replay(events, func(e *event.Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil || n != 6 {
		t.Fatalf("Replay = (%d, %v)", n, err)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	events := faa.New(faa.Config{Flights: 1, UpdatesPerFlight: 5, Seed: 1}).All()
	boom := errors.New("boom")
	n, err := Replay(events, func(e *event.Event) error {
		if e.Seq == 3 {
			return boom
		}
		return nil
	})
	if n != 2 {
		t.Fatalf("submitted %d before error, want 2", n)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func readFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
