// Package statedelta implements the compact per-flight field-level
// state-delta codec used by incremental mirror rejoin and by the
// field-delta mirroring regime.
//
// Not to be confused with internal/delta, which is the Delta Air
// Lines *stream generator* (it synthesizes flight-status source
// events). This package encodes and decodes *state deltas*: framed
// sequences of per-flight records, each carrying a field mask and the
// masked fields' values, shipped either as the payload of a
// TypeRecoveryDelta event (absolute state at a cut, applied by
// ede.State.ApplyDeltaAbsolute) or of a TypeStateDelta event
// (incremental updates, applied by ede.DeltaRule with the same
// semantics as the full-event rules).
//
// The frame rides the PR-6 self-framing wire convention as its own
// frame kind: like the columnar batch frame (event.IsBatchFrame,
// marker 0xFFFF) it self-discriminates on a 2-byte marker — 0xFFFE
// here — so a reader holding an arbitrary frame can tell the kinds
// apart without out-of-band context. Layout (little-endian):
//
//	offset  size  field
//	0       2     marker 0xFFFE
//	1       -     (marker high byte)
//	2       1     version (1)
//	3       1     flags (0)
//	4       4     record count N
//	8       ...   N records, variable size (see Record)
//	end-4   4     CRC32 (IEEE) over everything before it
//
// Each record is flight(4) | mask(1) | weight(4) | masked fields in
// mask-bit order. The trailing CRC makes bit flips a rejection, not a
// state corruption; every length is validated before a byte is read,
// so truncation cannot panic. Encoding goes through a pooled slab
// (AppendFrame onto a GetSlab buffer) and decoding borrows from the
// input — Decoder never copies the frame.
package statedelta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"adaptmirror/internal/event"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Field-mask bits: which FlightState fields a record carries.
const (
	// MaskStatus carries the lifecycle status byte.
	MaskStatus uint8 = 1 << 0
	// MaskPosition carries the (lat, lon, alt) triple.
	MaskPosition uint8 = 1 << 1
	// MaskPax carries the expected and boarded passenger counts.
	MaskPax uint8 = 1 << 2
	// MaskCounters carries the position-update counter.
	MaskCounters uint8 = 1 << 3
	// MaskFlags carries the derived-marker flags (AllBoarded, Arrived).
	MaskFlags uint8 = 1 << 4

	// MaskAll is every field: a full absolute flight record.
	MaskAll = MaskStatus | MaskPosition | MaskPax | MaskCounters | MaskFlags

	maskValid = MaskAll
)

// Flag bits carried under MaskFlags (matching the ede snapshot flags).
const (
	FlagAllBoarded uint8 = 1 << 0
	FlagArrived    uint8 = 1 << 1
)

// Record is one per-flight delta: a field mask plus the masked
// fields' values. Unmasked fields are zero and must be ignored.
type Record struct {
	Flight event.FlightID
	Mask   uint8

	// Weight is how many raw source events the record stands for; the
	// incremental apply path adds it to the counting fields
	// (PositionUpdates, PaxBoarded) exactly as the full-event rules add
	// event weights. Absolute (recovery) records carry 0.
	Weight uint32

	Status        uint8   // MaskStatus
	Lat, Lon, Alt float64 // MaskPosition
	PaxExpected   uint32  // MaskPax
	PaxBoarded    uint32  // MaskPax
	PosUpdates    uint64  // MaskCounters
	Flags         uint8   // MaskFlags
}

// Frame header/trailer geometry.
const (
	deltaMarker  = 0xFFFE
	deltaVersion = 1
	headerSize   = 2 + 1 + 1 + 4
	trailerSize  = 4

	// recordFixed is the unconditional prefix of a record:
	// flight(4) + mask(1) + weight(4).
	recordFixed = 4 + 1 + 4

	// MaxRecords bounds the record count of one frame.
	MaxRecords = 1 << 20
)

// EncodedSize returns the exact encoded size of r.
func (r *Record) EncodedSize() int {
	n := recordFixed
	if r.Mask&MaskStatus != 0 {
		n++
	}
	if r.Mask&MaskPosition != 0 {
		n += 24
	}
	if r.Mask&MaskPax != 0 {
		n += 8
	}
	if r.Mask&MaskCounters != 0 {
		n += 8
	}
	if r.Mask&MaskFlags != 0 {
		n++
	}
	return n
}

// FrameSize returns the exact encoded size of a frame holding recs.
func FrameSize(recs []Record) int {
	n := headerSize + trailerSize
	for i := range recs {
		n += recs[i].EncodedSize()
	}
	return n
}

// IsDeltaFrame reports whether buf starts with the state-delta frame
// marker (the analogue of event.IsBatchFrame for this frame kind).
func IsDeltaFrame(buf []byte) bool {
	return len(buf) >= 2 && binary.LittleEndian.Uint16(buf) == deltaMarker
}

// AppendFrame appends a framed encoding of recs to dst and returns
// the extended slice. Records with invalid masks are rejected.
func AppendFrame(dst []byte, recs []Record) ([]byte, error) {
	if len(recs) == 0 || len(recs) > MaxRecords {
		return dst, fmt.Errorf("statedelta: frame of %d records outside 1..%d", len(recs), MaxRecords)
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, deltaMarker)
	dst = append(dst, deltaVersion, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		if r.Mask == 0 || r.Mask&^maskValid != 0 {
			return dst[:start], fmt.Errorf("statedelta: record %d has invalid mask %#x", i, r.Mask)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Flight))
		dst = append(dst, r.Mask)
		dst = binary.LittleEndian.AppendUint32(dst, r.Weight)
		if r.Mask&MaskStatus != 0 {
			dst = append(dst, r.Status)
		}
		if r.Mask&MaskPosition != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Lat))
			dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Lon))
			dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Alt))
		}
		if r.Mask&MaskPax != 0 {
			dst = binary.LittleEndian.AppendUint32(dst, r.PaxExpected)
			dst = binary.LittleEndian.AppendUint32(dst, r.PaxBoarded)
		}
		if r.Mask&MaskCounters != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, r.PosUpdates)
		}
		if r.Mask&MaskFlags != 0 {
			dst = append(dst, r.Flags)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// EncodeFrame frames recs onto a pooled slab sized by FrameSize. The
// returned buffer must be handed back with PutSlab once no retained
// event aliases it (event payloads built from it keep it alive via
// the GC instead — callers that transfer ownership simply skip the
// return).
func EncodeFrame(recs []Record) ([]byte, error) {
	return AppendFrame(GetSlab(FrameSize(recs)), recs)
}

// slabPool recycles encode scratch buffers so steady-state regime
// encoding does not allocate per batch.
var slabPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// maxRetainedSlab matches the batch-frame pool policy: buffers grown
// past this stay with the GC instead of pinning pool memory.
const maxRetainedSlab = 4 << 20

// GetSlab returns an empty pooled buffer with at least the given
// capacity.
func GetSlab(capacity int) []byte {
	b := slabPool.Get().([]byte)[:0]
	if cap(b) < capacity {
		b = make([]byte, 0, capacity)
	}
	return b
}

// PutSlab returns a buffer obtained from GetSlab to the pool.
func PutSlab(b []byte) {
	if cap(b) > 0 && cap(b) <= maxRetainedSlab {
		slabPool.Put(b[:0])
	}
}

// Decoder iterates the records of one frame, borrowing from buf (no
// copy is made; the caller keeps buf alive across Next calls). The
// whole frame — lengths, version, count, CRC — is validated by
// NewDecoder before any record is surfaced, so a Decoder that
// constructs successfully can never fail mid-iteration on corrupt
// input.
type Decoder struct {
	rest    []byte
	pending uint32
}

// NewDecoder validates buf as one complete state-delta frame and
// returns a borrowing iterator over its records.
func NewDecoder(buf []byte) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Reset(buf); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-points an existing decoder at a new frame, revalidating it
// (the zero-alloc path for per-event regime payloads).
func (d *Decoder) Reset(buf []byte) error {
	d.rest, d.pending = nil, 0
	if len(buf) < headerSize+trailerSize {
		return fmt.Errorf("statedelta: frame too short: %d bytes", len(buf))
	}
	if binary.LittleEndian.Uint16(buf) != deltaMarker {
		return fmt.Errorf("statedelta: bad frame marker %#x", binary.LittleEndian.Uint16(buf))
	}
	if buf[2] != deltaVersion {
		return fmt.Errorf("statedelta: unsupported frame version %d", buf[2])
	}
	if buf[3] != 0 {
		return fmt.Errorf("statedelta: unsupported frame flags %#x", buf[3])
	}
	body := buf[:len(buf)-trailerSize]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(buf[len(buf)-trailerSize:]); got != want {
		return fmt.Errorf("statedelta: frame checksum mismatch")
	}
	n := binary.LittleEndian.Uint32(buf[4:])
	if n == 0 || n > MaxRecords {
		return fmt.Errorf("statedelta: record count %d outside 1..%d", n, MaxRecords)
	}
	// Walk the records once up front: every mask and length is checked
	// here so Next never sees malformed input.
	rest := body[headerSize:]
	for i := uint32(0); i < n; i++ {
		if len(rest) < recordFixed {
			return fmt.Errorf("statedelta: record %d truncated", i)
		}
		mask := rest[4]
		if mask == 0 || mask&^maskValid != 0 {
			return fmt.Errorf("statedelta: record %d has invalid mask %#x", i, mask)
		}
		size := (&Record{Mask: mask}).EncodedSize()
		if len(rest) < size {
			return fmt.Errorf("statedelta: record %d truncated", i)
		}
		rest = rest[size:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("statedelta: %d trailing bytes after %d records", len(rest), n)
	}
	d.rest = body[headerSize:]
	d.pending = n
	return nil
}

// Len returns the number of records not yet decoded.
func (d *Decoder) Len() int { return int(d.pending) }

// Next decodes the next record into r, returning false once the frame
// is exhausted.
func (d *Decoder) Next(r *Record) bool {
	if d.pending == 0 {
		return false
	}
	d.pending--
	b := d.rest
	*r = Record{
		Flight: event.FlightID(binary.LittleEndian.Uint32(b)),
		Mask:   b[4],
		Weight: binary.LittleEndian.Uint32(b[5:]),
	}
	b = b[recordFixed:]
	if r.Mask&MaskStatus != 0 {
		r.Status = b[0]
		b = b[1:]
	}
	if r.Mask&MaskPosition != 0 {
		r.Lat = bitsFloat(binary.LittleEndian.Uint64(b))
		r.Lon = bitsFloat(binary.LittleEndian.Uint64(b[8:]))
		r.Alt = bitsFloat(binary.LittleEndian.Uint64(b[16:]))
		b = b[24:]
	}
	if r.Mask&MaskPax != 0 {
		r.PaxExpected = binary.LittleEndian.Uint32(b)
		r.PaxBoarded = binary.LittleEndian.Uint32(b[4:])
		b = b[8:]
	}
	if r.Mask&MaskCounters != 0 {
		r.PosUpdates = binary.LittleEndian.Uint64(b)
		b = b[8:]
	}
	if r.Mask&MaskFlags != 0 {
		r.Flags = b[0]
		b = b[1:]
	}
	d.rest = b
	return true
}

// DecodeFrame parses a frame into a fresh record slice (tests,
// tooling; hot paths use Decoder to avoid the allocation).
func DecodeFrame(buf []byte) ([]Record, error) {
	d, err := NewDecoder(buf)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, d.Len())
	var r Record
	for d.Next(&r) {
		out = append(out, r)
	}
	return out, nil
}
