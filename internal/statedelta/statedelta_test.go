package statedelta

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"adaptmirror/internal/event"
)

func sampleRecords() []Record {
	return []Record{
		{Flight: 1, Mask: MaskStatus, Status: uint8(event.StatusBoarding), Weight: 1},
		{Flight: 2, Mask: MaskPosition | MaskCounters, Lat: 33.64, Lon: -84.42, Alt: 31000, Weight: 12},
		{Flight: 3, Mask: MaskPax, PaxExpected: 180, PaxBoarded: 42, Weight: 3},
		{Flight: 7, Mask: MaskAll, Status: uint8(event.StatusArrived), Lat: -1.5, Lon: 2.25, Alt: 0,
			PaxExpected: 120, PaxBoarded: 120, PosUpdates: 999, Flags: FlagAllBoarded | FlagArrived, Weight: 1},
		{Flight: 9, Mask: MaskFlags, Flags: FlagArrived},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	recs := sampleRecords()
	buf, err := EncodeFrame(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDeltaFrame(buf) {
		t.Fatal("encoded frame not recognized by IsDeltaFrame")
	}
	if want := FrameSize(recs); len(buf) != want {
		t.Fatalf("frame is %d bytes, FrameSize predicts %d", len(buf), want)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	PutSlab(buf)
}

func TestEmptyFrameRejected(t *testing.T) {
	// A frame always carries at least one record — empty deltas are
	// represented by not shipping a frame at all.
	if _, err := EncodeFrame(nil); err == nil {
		t.Fatal("zero-record frame encoded")
	}
	// A hand-built zero-count frame with a valid CRC must be rejected
	// by count validation, not decoded as vacuously valid.
	raw := []byte{0xFE, 0xFF, 1, 0, 0, 0, 0, 0}
	raw = binary.LittleEndian.AppendUint32(raw, crc32.ChecksumIEEE(raw))
	if _, err := DecodeFrame(raw); err == nil {
		t.Fatal("zero-count frame accepted")
	}
}

func TestUnmaskedFieldsDropped(t *testing.T) {
	// Fields outside the mask must not travel: the decode of a record
	// that set them anyway comes back zeroed outside the mask.
	in := Record{Flight: 5, Mask: MaskStatus, Status: 3, Lat: 99, PaxBoarded: 7, Flags: FlagArrived, Weight: 2}
	buf, err := EncodeFrame([]Record{in})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{Flight: 5, Mask: MaskStatus, Status: 3, Weight: 2}
	if out[0] != want {
		t.Fatalf("decoded %+v, want %+v", out[0], want)
	}
}

func TestInvalidMaskRejected(t *testing.T) {
	if _, err := EncodeFrame([]Record{{Flight: 1, Mask: 0x80}}); err == nil {
		t.Fatal("mask with undefined bits encoded")
	}
	if _, err := EncodeFrame([]Record{{Flight: 1, Mask: 0}}); err == nil {
		t.Fatal("empty mask encoded")
	}
}

func TestCorruptionRejected(t *testing.T) {
	buf, err := EncodeFrame(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip anywhere in the frame must be rejected:
	// the trailing CRC covers marker, header, and records alike.
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x41
		var d Decoder
		if d.Reset(bad) == nil {
			// The only unprotected acceptance would be a flip that keeps
			// the CRC consistent, which a single-byte xor cannot.
			t.Fatalf("flip at byte %d/%d accepted", i, len(buf))
		}
	}
	// Every truncation must be rejected too.
	for n := 0; n < len(buf); n++ {
		var d Decoder
		if d.Reset(buf[:n]) == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(buf))
		}
	}
	// Trailing garbage after a valid frame is not a valid frame.
	var d Decoder
	if d.Reset(append(append([]byte(nil), buf...), 0)) == nil {
		t.Fatal("frame with trailing byte accepted")
	}
}

func TestDecoderNext(t *testing.T) {
	recs := sampleRecords()
	buf, err := EncodeFrame(recs)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if err := d.Reset(buf); err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(recs))
	}
	var r Record
	for i := 0; d.Next(&r); i++ {
		if r != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
	if d.Next(&r) {
		t.Fatal("Next returned a record past the end")
	}
}

func TestSlabReuse(t *testing.T) {
	a := GetSlab(100)
	PutSlab(a)
	b := GetSlab(50)
	if cap(b) < 50 {
		t.Fatalf("slab capacity %d < 50", cap(b))
	}
	PutSlab(b)
	// Oversized slabs must not be retained.
	PutSlab(make([]byte, maxRetainedSlab+1))
}

// FuzzStateDelta hardens the field-delta frame decoder: arbitrary
// bytes must never panic, anything accepted must round-trip through
// the codec to identical bytes, and every accepted record must carry a
// valid mask with unmasked fields zeroed.
func FuzzStateDelta(f *testing.F) {
	valid, _ := EncodeFrame(sampleRecords())
	f.Add(append([]byte(nil), valid...))
	one, _ := EncodeFrame([]Record{{Flight: 4, Mask: MaskPosition, Lat: 1, Lon: 2, Alt: 3}})
	f.Add(append([]byte(nil), one...))
	f.Add([]byte{})
	f.Add([]byte{0xFE, 0xFF, 0x01, 0x00})
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x10
	f.Add(flipped)
	f.Add(valid[:len(valid)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeFrame(data)
		if err != nil {
			return
		}
		for i, r := range recs {
			if r.Mask&^MaskAll != 0 {
				t.Fatalf("record %d accepted with undefined mask bits %#x", i, r.Mask)
			}
			if r.Mask&MaskStatus == 0 && r.Status != 0 {
				t.Fatalf("record %d carries an unmasked status", i)
			}
			if r.Mask&MaskFlags == 0 && r.Flags != 0 {
				t.Fatalf("record %d carries unmasked flags", i)
			}
		}
		re, err := EncodeFrame(recs)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(data))
		}
	})
}
