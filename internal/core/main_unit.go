package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// Sender is the minimal outbound interface the framework needs from a
// transport: both echo.LocalChannel and echo.SendLink satisfy it.
type Sender interface {
	Submit(*event.Event) error
}

// ErrUnitClosed is returned when submitting work to a closed unit.
var ErrUnitClosed = errors.New("core: unit closed")

// ErrBusy is returned when the pending request buffer is full.
var ErrBusy = errors.New("core: request buffer full")

// MainConfig parameterizes a MainUnit.
type MainConfig struct {
	// EDE configures the unit's Event Derivation Engine.
	EDE ede.Config
	// Out, when non-nil, receives the state updates the EDE emits to
	// regular clients (only the central site sets this).
	Out Sender
	// DelayHist, when non-nil, records per-event update delays
	// (ingress → emission), the metric of Figures 8 and 9.
	DelayHist *metrics.Histogram
	// DelaySeries, when non-nil, records update delays against wall
	// time (Figure 9's time axis).
	DelaySeries *metrics.Series
	// RequestBuffer bounds the pending client request buffer; the
	// buffer's length is one of the adaptation-monitored variables.
	RequestBuffer int
	// RequestWorkers bounds the pool of goroutines serving client
	// requests from the buffer (default DefaultRequestWorkers). With
	// the EDE's sharded state and epoch-cached snapshots, concurrent
	// workers serve warm-cache requests in parallel; the pool bound
	// keeps a storm from spawning unbounded goroutines.
	RequestWorkers int
	// RequestHist, when non-nil, records per-request latencies
	// (enqueue → response ready), the serve-path analogue of
	// DelayHist.
	RequestHist *metrics.Histogram
	// QueueCap bounds the inbound event queue; Deliver blocks when it
	// is full, back-pressuring the feeding task to the EDE's pace.
	// 0 leaves the queue unbounded.
	QueueCap int
	// Obs, when non-nil, exports the unit's queue depth and serving
	// counters, labeled with Site.
	Obs  *obs.Registry
	Site string
	// Tracer, when non-nil, receives lifecycle stage latencies: the
	// central path decomposed from event stamps, or (TraceMirror) the
	// replica-freshness lag of a mirror's EDE.
	Tracer *obs.Tracer
	// TraceMirror selects the mirror-apply stage instead of the
	// central-path decomposition.
	TraceMirror bool
}

// InitRequest is one thin-client request for a fresh initialization
// state.
type InitRequest struct {
	// EnqueuedAt is stamped when the request enters the buffer.
	EnqueuedAt time.Time
	// Resp receives the serialized initialization state; it is closed
	// without a value if the unit shuts down first.
	Resp chan []byte
}

// MainUnit hosts a site's EDE: it processes events forwarded by the
// auxiliary unit, emits state updates (central site), answers
// initialization-state requests (primarily mirror sites), and
// participates in checkpointing by reporting its processing progress.
type MainUnit struct {
	engine *ede.Engine
	cfg    MainConfig
	in     *queue.Ready

	reqMu     sync.RWMutex
	reqQ      chan *InitRequest
	reqClosed bool

	pendingReqs atomic.Int64
	servedReqs  atomic.Uint64
	emitted     atomic.Uint64

	// applyLagMicros is an EWMA (alpha 1/4) of per-event update delay
	// in microseconds, maintained by the single processLoop goroutine
	// when TraceMirror is set. Mirror sites piggyback it on control
	// events as the ApplyLag monitored variable.
	applyLagMicros atomic.Int64

	barrierMu sync.Mutex
	barriers  []func()

	procWG    sync.WaitGroup
	reqWG     sync.WaitGroup
	closeOnce sync.Once
}

// DefaultRequestWorkers is the request worker-pool size when
// MainConfig.RequestWorkers is unset. A warm snapshot-cache hit is a
// shared-buffer handout, so a small pool saturates the serving path;
// more workers only add scheduling churn.
const DefaultRequestWorkers = 4

// NewMainUnit starts a main unit's processing and request-serving
// goroutines.
func NewMainUnit(cfg MainConfig) *MainUnit {
	if cfg.RequestBuffer <= 0 {
		cfg.RequestBuffer = 4096
	}
	if cfg.RequestWorkers <= 0 {
		cfg.RequestWorkers = DefaultRequestWorkers
	}
	if cfg.EDE.Obs == nil {
		cfg.EDE.Obs = cfg.Obs
		cfg.EDE.Site = cfg.Site
	}
	m := &MainUnit{
		engine: ede.New(cfg.EDE),
		cfg:    cfg,
		in:     queue.NewReady(cfg.QueueCap),
		reqQ:   make(chan *InitRequest, cfg.RequestBuffer),
	}
	if r := cfg.Obs; r != nil {
		site := obs.L("site", cfg.Site)
		r.Describe("main_queue_depth", "Main-unit inbound event queue depth.")
		r.GaugeFunc("main_queue_depth", func() float64 { return float64(m.in.Len()) }, site)
		r.Describe("pending_requests", "Client init-state requests buffered (adaptation-monitored).")
		r.GaugeFunc("pending_requests", func() float64 { return float64(m.PendingRequests()) }, site)
		r.Describe("requests_served_total", "Client init-state requests answered.")
		r.CounterFunc("requests_served_total", func() float64 { return float64(m.servedReqs.Load()) }, site)
		r.Describe("events_processed_total", "Weighted events applied by the EDE.")
		r.CounterFunc("events_processed_total", func() float64 { return float64(m.Processed()) }, site)
		r.Describe("updates_emitted_total", "State updates emitted to clients.")
		r.CounterFunc("updates_emitted_total", func() float64 { return float64(m.emitted.Load()) }, site)
		if m.cfg.RequestHist == nil {
			r.Describe("request_latency_seconds", "Init-state request latency, enqueue to response.")
			m.cfg.RequestHist = r.Histogram("request_latency_seconds", site)
		}
	}
	m.procWG.Add(1)
	go m.processLoop()
	for i := 0; i < cfg.RequestWorkers; i++ {
		m.reqWG.Add(1)
		go m.requestLoop()
	}
	return m
}

// Engine exposes the unit's EDE.
func (m *MainUnit) Engine() *ede.Engine { return m.engine }

// Deliver hands one forwarded event to the unit.
func (m *MainUnit) Deliver(e *event.Event) error {
	if err := m.in.Put(e); err != nil {
		return ErrUnitClosed
	}
	return nil
}

// Barrier enqueues a sentinel into the unit's inbound event queue and
// runs fn from the processing goroutine when the sentinel is reached.
// Because the processing goroutine is the only writer of EDE state,
// fn observes the state produced by exactly the events delivered
// before the Barrier call — an exact (state, progress) cut, which is
// what mirror recovery snapshots require. Barrier returns once fn has
// run; it returns ErrUnitClosed (without running fn) if the unit shut
// down first. fn must not call Deliver or Barrier on the same unit.
func (m *MainUnit) Barrier(fn func()) error {
	done := make(chan struct{})
	m.barrierMu.Lock()
	m.barriers = append(m.barriers, func() {
		fn()
		close(done)
	})
	// Pairing the append and the Put under barrierMu keeps concurrent
	// Barrier calls FIFO-matched with their sentinels.
	err := m.in.Put(&event.Event{Type: event.TypeBarrier})
	if err != nil {
		m.barriers = m.barriers[:len(m.barriers)-1]
		m.barrierMu.Unlock()
		return ErrUnitClosed
	}
	m.barrierMu.Unlock()
	<-done
	return nil
}

func (m *MainUnit) processLoop() {
	defer m.procWG.Done()
	for {
		e, err := m.in.Get()
		if err != nil {
			return
		}
		if e.Type == event.TypeBarrier {
			m.barrierMu.Lock()
			fn := m.barriers[0]
			m.barriers = m.barriers[1:]
			m.barrierMu.Unlock()
			fn()
			continue
		}
		// Copy the event before Process: the moment Process folds its
		// timestamp into the progress watermark, a checkpoint commit
		// may trim the backup queue and recycle the slab an owned view
		// borrows from, so e must not be touched after Process returns.
		// Scalar reads below come from this stack copy. The Payload/VT
		// aliases only reach the Out stream, which exists solely on the
		// central site, whose main unit processes heap originals — a
		// mirror site configuring Out would need to clone them first.
		ev := *e
		// The emission instant comes from the node's timeline (the
		// virtual-CPU charge), so update delays reflect the node's
		// booked processing, not the host's scheduling.
		derived, done := m.engine.Process(e)
		if ev.Ingress != 0 && (m.cfg.DelayHist != nil || m.cfg.DelaySeries != nil || m.cfg.Tracer != nil || m.cfg.TraceMirror) {
			delay := ev.Age(done)
			if delay < 0 {
				// The virtual CPU's catch-up window can book work
				// slightly in the past; an event cannot complete
				// before it arrived.
				delay = 0
			}
			if m.cfg.DelayHist != nil {
				m.cfg.DelayHist.Record(delay)
			}
			if m.cfg.DelaySeries != nil {
				m.cfg.DelaySeries.Observe(done, float64(delay)/float64(time.Microsecond))
			}
			if m.cfg.TraceMirror {
				// processLoop is the only writer, so load-modify-store
				// without CAS is race-free; readers see a torn-free
				// atomic value.
				us := int64(delay / time.Microsecond)
				old := m.applyLagMicros.Load()
				m.applyLagMicros.Store(old + (us-old)/4)
			}
			if t := m.cfg.Tracer; t != nil {
				if m.cfg.TraceMirror {
					t.Observe(obs.StageMirrorApply, delay)
				} else {
					t.ObserveCentralPath(ev.Ingress, ev.ReadyAt, ev.ForwardAt, done)
				}
			}
		}
		if m.cfg.Out != nil {
			// Position updates carry the source payload so thin
			// clients can advance their local views from the stream
			// alone; other updates are identified by their Status
			// field and payloads are not forwarded (clients receive
			// derived events for boarding/arrival).
			var payload []byte
			if ev.Type == event.TypeFAAPosition {
				payload = ev.Payload
			}
			update := &event.Event{
				Type:      event.TypeStateUpdate,
				Flight:    ev.Flight,
				Stream:    ev.Stream,
				Seq:       ev.Seq,
				Status:    ev.Status,
				Coalesced: ev.Weight(),
				VT:        ev.VT,
				Ingress:   ev.Ingress,
				Payload:   payload,
			}
			if m.cfg.Out.Submit(update) == nil {
				m.emitted.Add(1)
			}
			for _, d := range derived {
				if m.cfg.Out.Submit(d) == nil {
					m.emitted.Add(1)
				}
			}
		}
	}
}

// Request enqueues a client init-state request. It returns
// ErrUnitClosed after Close and ErrBusy when the pending buffer is
// full.
func (m *MainUnit) Request(r *InitRequest) error {
	// Stamp before taking the lock: the enqueue instant should not
	// include time spent waiting behind Close, and keeping the
	// critical section to the closed-check plus the non-blocking send
	// keeps concurrent requesters off each other's backs.
	r.EnqueuedAt = time.Now()
	m.reqMu.RLock()
	defer m.reqMu.RUnlock()
	if m.reqClosed {
		return ErrUnitClosed
	}
	select {
	case m.reqQ <- r:
		m.pendingReqs.Add(1)
		return nil
	default:
		return ErrBusy
	}
}

// RequestInitState performs a synchronous init-state request.
func (m *MainUnit) RequestInitState() ([]byte, error) {
	r := &InitRequest{Resp: make(chan []byte, 1)}
	if err := m.Request(r); err != nil {
		return nil, err
	}
	state, ok := <-r.Resp
	if !ok {
		return nil, ErrUnitClosed
	}
	return state, nil
}

// requestLoop is one worker of the bounded serving pool: every worker
// feeds from the shared reqQ, so a storm drains through
// RequestWorkers concurrent ServeInitState calls (warm cache hits run
// fully in parallel; cold ones single-flight on the cache rebuild).
func (m *MainUnit) requestLoop() {
	defer m.reqWG.Done()
	for r := range m.reqQ {
		state := m.engine.ServeInitState()
		m.pendingReqs.Add(-1)
		m.servedReqs.Add(1)
		if m.cfg.RequestHist != nil && !r.EnqueuedAt.IsZero() {
			m.cfg.RequestHist.Record(time.Since(r.EnqueuedAt))
		}
		if r.Resp != nil {
			r.Resp <- state
		}
	}
}

// PendingRequests returns the current depth of the client request
// buffer (an adaptation-monitored variable).
func (m *MainUnit) PendingRequests() int {
	n := m.pendingReqs.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// ServedRequests returns the number of requests answered.
func (m *MainUnit) ServedRequests() uint64 { return m.servedReqs.Load() }

// SnapshotCacheStats reports the EDE snapshot cache's hit and miss
// counts for the init-state serving path.
func (m *MainUnit) SnapshotCacheStats() (hits, misses uint64) {
	hits, misses, _, _ = m.engine.State().CacheStats()
	return hits, misses
}

// EmittedUpdates returns the number of output events sent to clients.
func (m *MainUnit) EmittedUpdates() uint64 { return m.emitted.Load() }

// ApplyLagMicros returns the smoothed update-delay EWMA in
// microseconds (0 unless TraceMirror is set).
func (m *MainUnit) ApplyLagMicros() int { return int(m.applyLagMicros.Load()) }

// Processed returns the weighted number of events applied by the EDE.
func (m *MainUnit) Processed() uint64 { return m.engine.State().Processed() }

// LastProcessed reports EDE progress for checkpointing.
func (m *MainUnit) LastProcessed() vclock.VC { return m.engine.LastProcessed() }

// QueueLen returns the depth of the unit's inbound event queue.
func (m *MainUnit) QueueLen() int { return m.in.Len() }

// DrainEvents stops accepting events and blocks until every delivered
// event has been processed. Request serving stays available until
// Close.
func (m *MainUnit) DrainEvents() {
	m.in.Close()
	m.procWG.Wait()
}

// Close shuts the unit down: the inbound event queue is drained, then
// request workers finish buffered requests and stop. Close blocks
// until all goroutines exit.
func (m *MainUnit) Close() {
	m.closeOnce.Do(func() {
		m.in.Close()
		m.procWG.Wait()
		m.reqMu.Lock()
		m.reqClosed = true
		close(m.reqQ)
		m.reqMu.Unlock()
		m.reqWG.Wait()
	})
}
