package core

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestDeltaRejoinMidTraffic lags a mirror past a committed cut and
// rejoins it incrementally: the transfer must ship a TypeRecoveryDelta
// (not a snapshot), book a delta rejoin, and converge the mirror
// byte-for-byte with the central replica.
func TestDeltaRejoinMidTraffic(t *testing.T) {
	var drop atomic.Bool
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 10}
		inner := cfg.Mirrors[0].Data
		cfg.Mirrors[0].Data = senderFunc(func(e *event.Event) error {
			if drop.Load() {
				return nil
			}
			return inner.Submit(e)
		})
	})
	m := r.mirrors[0]

	r.feedPositions(t, 3, 10, 64) // 30 events
	waitFor(t, "mirror to receive the first batch", func() bool { return m.Received() >= 30 })
	r.central.Checkpoint()
	waitFor(t, "a committed cut at the mirror", func() bool { return m.Backup().Committed() != nil })
	cut := m.Backup().Committed()

	// The mirror falls off the data link; only flight 1 mutates past
	// its cut.
	drop.Store(true)
	for i := 0; i < 5; i++ {
		if err := r.central.Ingest(event.NewPosition(1, uint64(100+i), float64(50+i), 8, 9000, 64)); err != nil {
			t.Fatal(err)
		}
	}
	r.central.Drain()
	drop.Store(false)

	var sawDelta, sawState bool
	n, err := r.central.RecoverMirrorSince(senderFunc(func(e *event.Event) error {
		switch e.Type {
		case event.TypeRecoveryDelta:
			sawDelta = true
		case event.TypeRecoveryState:
			sawState = true
		}
		m.HandleData(e)
		return nil
	}), cut)
	if err != nil {
		t.Fatal(err)
	}
	if !sawDelta || sawState {
		t.Fatalf("transfer modes: delta=%v state=%v, want an incremental delta", sawDelta, sawState)
	}
	if n != 0 {
		t.Fatalf("replayed %d backup events, want 0 (the drained backup holds nothing past the current cut)", n)
	}
	stats := r.central.RejoinStats()
	if stats.Deltas != 1 || stats.Snapshots != 0 {
		t.Fatalf("RejoinStats = %+v, want exactly one delta rejoin", stats)
	}
	if stats.DeltaBytes == 0 {
		t.Fatal("delta rejoin booked no wire bytes")
	}

	m.Drain()
	cs := r.central.Main().Engine().State().Snapshot()
	ms := m.Main().Engine().State().Snapshot()
	if !bytes.Equal(cs, ms) {
		t.Fatalf("delta-rejoined mirror diverged: %d vs %d snapshot bytes", len(cs), len(ms))
	}
}

// TestDeltaRejoinPastHorizonFallsBack presents a cut older than the
// journal floor: the transfer must fall back to the full snapshot and
// still converge byte-for-byte.
func TestDeltaRejoinPastHorizonFallsBack(t *testing.T) {
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 1 << 30} // manual checkpoints only
		cfg.DeltaHorizon = 2
	})
	m := r.mirrors[0]

	// Four distinct committed cuts: with horizon 2, the first falls
	// below the floor.
	var oldCut vclock.VC
	seq, committed := uint64(0), uint64(0)
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			seq++
			if err := r.central.Ingest(event.NewPosition(event.FlightID(1+seq%3), seq, float64(seq), 1, 9000, 64)); err != nil {
				t.Fatal(err)
			}
		}
		committed += 5
		want := committed
		waitFor(t, "mirror to receive the round", func() bool { return m.Received() >= want })
		r.central.Checkpoint()
		waitFor(t, "the round's commit", func() bool {
			c := m.Backup().Committed()
			if c != nil && c.Sum() >= want {
				return true
			}
			// A CHKPT proposal can race ahead of the round's data on
			// the mirror's path; the conservative vote then commits a
			// lower cut and a single round never covers the round's
			// events. Rounds are manual here, so just ask again.
			r.central.Checkpoint()
			return false
		})
		if round == 0 {
			oldCut = m.Backup().Committed()
		}
	}
	r.drainAll()

	if _, floor := r.central.Main().Engine().State().JournalSeals(); floor <= oldCut.Sum() {
		t.Fatalf("journal floor %d has not passed the old cut %d", floor, oldCut.Sum())
	}

	fresh := NewMirrorSite(MirrorSiteConfig{})
	defer fresh.Close()
	var sawDelta, sawState bool
	if _, err := r.central.RecoverMirrorSince(senderFunc(func(e *event.Event) error {
		switch e.Type {
		case event.TypeRecoveryDelta:
			sawDelta = true
		case event.TypeRecoveryState:
			sawState = true
		}
		fresh.HandleData(e)
		return nil
	}), oldCut); err != nil {
		t.Fatal(err)
	}
	if !sawState || sawDelta {
		t.Fatalf("transfer modes: delta=%v state=%v, want a snapshot fallback", sawDelta, sawState)
	}
	stats := r.central.RejoinStats()
	if stats.Snapshots != 1 || stats.Deltas != 0 {
		t.Fatalf("RejoinStats = %+v, want exactly one snapshot rejoin", stats)
	}

	fresh.Drain()
	cs := r.central.Main().Engine().State().Snapshot()
	ms := fresh.Main().Engine().State().Snapshot()
	if !bytes.Equal(cs, ms) {
		t.Fatalf("fallback-recovered mirror diverged: %d vs %d snapshot bytes", len(cs), len(ms))
	}
}

// TestFieldDeltaRegimeConverges turns on delta mirroring: the sending
// task rewrites mirror traffic into TypeStateDelta frames, and every
// mirror must still converge byte-for-byte with the central replica.
func TestFieldDeltaRegimeConverges(t *testing.T) {
	r := newRig(t, 2, nil)
	r.central.SetFieldDeltas(true)
	if !r.central.FieldDeltas() {
		t.Fatal("field-delta regime not installed")
	}

	r.feedPositions(t, 3, 10, 64)
	// A status lifecycle and a boarding run exercise the derived-event
	// paths under the delta regime.
	seq := uint64(1000)
	for _, s := range []event.Status{event.StatusBoarding, event.StatusDeparted, event.StatusAtGate} {
		seq++
		if err := r.central.Ingest(event.NewStatus(2, seq, s, 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		seq++
		ge := &event.Event{
			Type: event.TypeGateReader, Flight: 3, Seq: seq, Coalesced: 1,
			Payload: []byte{2, 0, 0, 0},
		}
		if err := r.central.Ingest(ge); err != nil {
			t.Fatal(err)
		}
	}
	r.drainAll()

	cs := r.central.Main().Engine().State().Snapshot()
	for i, m := range r.mirrors {
		ms := m.Main().Engine().State().Snapshot()
		if !bytes.Equal(cs, ms) {
			t.Fatalf("mirror %d diverged under the field-delta regime: %d vs %d snapshot bytes", i, len(cs), len(ms))
		}
		fs, ok := m.Main().Engine().State().Get(2)
		if !ok || !fs.Arrived || fs.Status != event.StatusArrived {
			t.Fatalf("mirror %d flight 2 = %+v, want derived arrival", i, fs)
		}
		bs, ok := m.Main().Engine().State().Get(3)
		if !ok || !bs.AllBoarded || bs.PaxBoarded != 2 {
			t.Fatalf("mirror %d flight 3 = %+v, want all-boarded", i, bs)
		}
	}
}
