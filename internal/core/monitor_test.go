package core

import "testing"

// TestSampleWireExtension pins the mixed-generation wire contract: the
// extended 24-byte encoding round-trips all six variables, and a
// legacy 12-byte payload (pre-wire-telemetry sites) still decodes with
// the extension fields zero.
func TestSampleWireExtension(t *testing.T) {
	s := Sample{Ready: 1, Backup: 2, Pending: 3, WireBytes: 400_000, Outbox: 5, ApplyLag: 600}
	b := EncodeSample(s)
	if len(b) != sampleWire {
		t.Fatalf("encoded length = %d, want %d", len(b), sampleWire)
	}
	got, err := DecodeSample(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip = %+v, want %+v", got, s)
	}

	// A legacy peer ships only the leading three variables.
	legacy, err := DecodeSample(b[:sampleWireV1])
	if err != nil {
		t.Fatal(err)
	}
	want := Sample{Ready: 1, Backup: 2, Pending: 3}
	if legacy != want {
		t.Fatalf("legacy decode = %+v, want %+v", legacy, want)
	}

	// Truncated below the v1 floor still fails.
	if _, err := DecodeSample(b[:sampleWireV1-1]); err == nil {
		t.Fatal("sub-v1 payload must fail to decode")
	}
}

// TestSampleMaxExtendedFields: Max is componentwise over all six
// monitored variables, not just the original three.
func TestSampleMaxExtendedFields(t *testing.T) {
	a := Sample{Ready: 1, WireBytes: 900, Outbox: 2, ApplyLag: 50}
	b := Sample{Backup: 7, WireBytes: 100, Outbox: 6, ApplyLag: 40}
	got := a.Max(b)
	want := Sample{Ready: 1, Backup: 7, WireBytes: 900, Outbox: 6, ApplyLag: 50}
	if got != want {
		t.Fatalf("Max = %+v, want %+v", got, want)
	}
}
