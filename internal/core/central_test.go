package core

import (
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
)

// senderFunc adapts a function to the Sender interface.
type senderFunc func(*event.Event) error

func (f senderFunc) Submit(e *event.Event) error { return f(e) }

// rig is a fully wired in-process central + N mirrors.
type rig struct {
	central *Central
	mirrors []*MirrorSite
}

// newRig wires central and mirrors with direct synchronous links.
func newRig(t *testing.T, nMirrors int, mutate func(*CentralConfig)) *rig {
	t.Helper()
	r := &rig{}
	var links []MirrorLink
	for i := 0; i < nMirrors; i++ {
		i := i
		links = append(links, MirrorLink{
			Data: senderFunc(func(e *event.Event) error {
				r.mirrors[i].HandleData(e)
				return nil
			}),
			Ctrl: senderFunc(func(e *event.Event) error {
				r.mirrors[i].HandleControl(e)
				return nil
			}),
		})
	}
	cfg := CentralConfig{
		Streams: 2,
		Mirrors: links,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r.central = NewCentral(cfg)
	for i := 0; i < nMirrors; i++ {
		r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
			SiteID: uint8(i),
			CtrlUp: senderFunc(func(e *event.Event) error {
				r.central.HandleControl(e)
				return nil
			}),
		}))
	}
	t.Cleanup(func() {
		r.central.Close()
		for _, m := range r.mirrors {
			m.Close()
		}
	})
	return r
}

func (r *rig) feedPositions(t *testing.T, flights int, perFlight int, size int) {
	t.Helper()
	seq := uint64(0)
	for i := 0; i < perFlight; i++ {
		for f := 0; f < flights; f++ {
			seq++
			e := event.NewPosition(event.FlightID(f+1), seq, float64(i), float64(-i), 9000, size)
			if err := r.central.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// drainAll waits until mirrors received everything central mirrored,
// then drains them.
func (r *rig) drainAll() {
	r.central.Drain()
	want := r.central.Stats().Mirrored
	for _, m := range r.mirrors {
		for m.Received() < want {
			time.Sleep(200 * time.Microsecond)
		}
		m.Drain()
	}
}

func TestSimpleMirroringReplicates(t *testing.T) {
	r := newRig(t, 2, nil)
	r.feedPositions(t, 5, 20, 128)
	r.drainAll()

	st := r.central.Stats()
	if st.Received != 100 {
		t.Fatalf("Received = %d, want 100", st.Received)
	}
	if st.Mirrored != 100 {
		t.Fatalf("Mirrored = %d, want 100 (simple mirroring mirrors everything)", st.Mirrored)
	}
	if st.Forwarded != 100 {
		t.Fatalf("Forwarded = %d, want 100", st.Forwarded)
	}
	if got := r.central.Main().Processed(); got != 100 {
		t.Fatalf("central EDE processed %d, want 100", got)
	}
	for i, m := range r.mirrors {
		if got := m.Processed(); got != 100 {
			t.Fatalf("mirror %d processed %d, want 100", i, got)
		}
		// Replica check: flight positions equal.
		for f := event.FlightID(1); f <= 5; f++ {
			cf, _ := r.central.Main().Engine().State().Get(f)
			mf, ok := m.Main().Engine().State().Get(f)
			if !ok {
				t.Fatalf("mirror %d missing flight %d", i, f)
			}
			if cf.Lat != mf.Lat || cf.Lon != mf.Lon {
				t.Fatalf("mirror %d flight %d position diverged", i, f)
			}
		}
	}
}

func TestSelectiveMirroringReducesTraffic(t *testing.T) {
	r := newRig(t, 1, nil)
	r.central.InstallSelective(10)
	r.feedPositions(t, 2, 50, 64) // 100 events, 2 flights
	r.drainAll()

	st := r.central.Stats()
	if st.Received != 100 || st.Forwarded != 100 {
		t.Fatalf("stats = %+v", st)
	}
	// Per flight: 50 events, L=10 → 5 mirrored. 2 flights → 10.
	if st.Mirrored != 10 {
		t.Fatalf("Mirrored = %d, want 10", st.Mirrored)
	}
	// Weighted replication: mirror's weighted count within L of 100.
	got := r.mirrors[0].Processed()
	if got < 100-2*9 || got > 100 {
		t.Fatalf("mirror weighted processed = %d, want within [82,100]", got)
	}
	// Central EDE still sees the full stream.
	if r.central.Main().Processed() != 100 {
		t.Fatalf("central processed %d, want 100", r.central.Main().Processed())
	}
}

func TestNoMirrorBaseline(t *testing.T) {
	r := newRig(t, 0, func(cfg *CentralConfig) { cfg.NoMirror = true })
	r.feedPositions(t, 3, 10, 64)
	r.central.Drain()
	st := r.central.Stats()
	if st.Mirrored != 0 {
		t.Fatalf("Mirrored = %d, want 0", st.Mirrored)
	}
	if st.Forwarded != 30 {
		t.Fatalf("Forwarded = %d, want 30", st.Forwarded)
	}
	if r.central.Backup().Len() != 0 {
		t.Fatal("backup queue used with mirroring disabled")
	}
}

func TestVectorTimestampsPerStream(t *testing.T) {
	r := newRig(t, 1, nil)
	for i := uint64(1); i <= 3; i++ {
		e := event.NewPosition(1, i, 0, 0, 0, 32)
		e.Stream = 0
		r.central.Ingest(e)
	}
	e := event.NewStatus(1, 1, event.StatusLanded, 16)
	e.Stream = 1
	r.central.Ingest(e)
	r.drainAll()

	last := r.central.Main().LastProcessed()
	if last.At(0) != 3 || last.At(1) != 1 {
		t.Fatalf("LastProcessed = %v, want <3,1>", last)
	}
}

func TestCheckpointTrimsBackupQueues(t *testing.T) {
	r := newRig(t, 2, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 10}
	})
	r.feedPositions(t, 4, 25, 64) // 100 events
	r.drainAll()

	st := r.central.Stats()
	if st.ChkptRounds == 0 || st.ChkptCommits == 0 {
		t.Fatalf("no checkpointing happened: %+v", st)
	}
	// With everything drained, a final round commits through the last
	// event and trims every backup queue completely. (Checkpoint
	// reports false when the automatic rounds already emptied the
	// backup — equally acceptable.)
	r.central.Checkpoint()
	if got := r.central.Backup().Len(); got != 0 {
		t.Fatalf("central backup len = %d after final checkpoint, want 0", got)
	}
	for i, m := range r.mirrors {
		if got := m.Backup().Len(); got != 0 {
			t.Fatalf("mirror %d backup len = %d after final checkpoint, want 0", i, got)
		}
	}
}

func TestIngestAfterDrainFails(t *testing.T) {
	r := newRig(t, 0, nil)
	r.central.Drain()
	if err := r.central.Ingest(event.NewPosition(1, 1, 0, 0, 0, 32)); err != ErrUnitClosed {
		t.Fatalf("Ingest after Drain = %v, want ErrUnitClosed", err)
	}
}

func TestUpdateDelayRecorded(t *testing.T) {
	hist := metrics.NewHistogram(0)
	r := newRig(t, 0, func(cfg *CentralConfig) {
		cfg.Main.DelayHist = hist
	})
	r.feedPositions(t, 1, 20, 64)
	r.central.Drain()
	if hist.Count() != 20 {
		t.Fatalf("delay samples = %d, want 20", hist.Count())
	}
	if hist.Mean() <= 0 {
		t.Fatal("mean delay must be positive")
	}
}

func TestCentralEmitsStateUpdates(t *testing.T) {
	var updates []event.Type
	out := senderFunc(func(e *event.Event) error {
		updates = append(updates, e.Type)
		return nil
	})
	r := newRig(t, 0, func(cfg *CentralConfig) {
		cfg.Main.Out = out
	})
	r.central.Ingest(event.NewStatus(1, 1, event.StatusAtGate, 16))
	r.central.Drain()
	// One state update + one derived flight-arrived event.
	var stateUpdates, arrived int
	for _, ty := range updates {
		switch ty {
		case event.TypeStateUpdate:
			stateUpdates++
		case event.TypeFlightArrived:
			arrived++
		}
	}
	if stateUpdates != 1 || arrived != 1 {
		t.Fatalf("updates = %v", updates)
	}
	if r.central.Main().EmittedUpdates() != 2 {
		t.Fatalf("EmittedUpdates = %d, want 2", r.central.Main().EmittedUpdates())
	}
}

func TestSetParamsDynamic(t *testing.T) {
	r := newRig(t, 1, nil)
	r.central.SetParams(true, 20, 100)
	p := r.central.GetParams()
	if !p.Coalesce || p.MaxCoalesce != 20 || p.CheckpointFreq != 100 {
		t.Fatalf("params = %+v", p)
	}
}

func TestAdjustParam(t *testing.T) {
	r := newRig(t, 1, nil)
	r.central.SetParams(true, 10, 50)
	r.central.AdjustParam(ParamMaxCoalesce, 200)
	if got := r.central.GetParams().MaxCoalesce; got != 20 {
		t.Fatalf("MaxCoalesce = %d, want 20", got)
	}
	r.central.AdjustParam(ParamChkptFreq, 200)
	if got := r.central.GetParams().CheckpointFreq; got != 100 {
		t.Fatalf("CheckpointFreq = %d, want 100", got)
	}
	r.central.SetOverwrite(event.TypeFAAPosition, 10)
	r.central.AdjustParam(ParamOverwriteLen, 200)
	if got := r.central.Semantics().OverwriteLen(event.TypeFAAPosition); got != 20 {
		t.Fatalf("overwrite len = %d, want 20", got)
	}
}

func TestCustomMirrorAndFwdFunctions(t *testing.T) {
	r := newRig(t, 1, nil)
	// Custom mirror: drop everything; custom fwd: drop status events.
	r.central.SetMirror(func(_ *Semantics, e *event.Event) *event.Event { return nil })
	r.central.SetFwd(func(e *event.Event) *event.Event {
		if e.Type == event.TypeDeltaStatus {
			return nil
		}
		return e
	})
	r.central.Ingest(event.NewPosition(1, 1, 0, 0, 0, 32))
	r.central.Ingest(event.NewStatus(1, 2, event.StatusLanded, 16))
	r.central.Drain()
	st := r.central.Stats()
	if st.Mirrored != 0 {
		t.Fatalf("Mirrored = %d, want 0 with drop-all mirror func", st.Mirrored)
	}
	if st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1 (status dropped)", st.Forwarded)
	}
	// Reset to defaults via nil.
	r.central.SetMirror(nil)
	r.central.SetFwd(nil)
}

func TestCoalescingReducesMirrorEvents(t *testing.T) {
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{Coalesce: true, MaxCoalesce: 10}
	})
	// Feed a burst for one flight; the sending task batches and
	// coalesces runs of positions.
	for i := uint64(1); i <= 100; i++ {
		r.central.Ingest(event.NewPosition(1, i, float64(i), 0, 0, 64))
	}
	r.drainAll()
	st := r.central.Stats()
	if st.Mirrored >= 100 {
		t.Fatalf("Mirrored = %d, want < 100 with coalescing", st.Mirrored)
	}
	// Weight is conserved through coalescing.
	if st.MirroredWeight != 100 {
		t.Fatalf("MirroredWeight = %d, want 100", st.MirroredWeight)
	}
	if got := r.mirrors[0].Processed(); got != 100 {
		t.Fatalf("mirror weighted processed = %d, want 100", got)
	}
}

func TestMirrorSampleReachesCentral(t *testing.T) {
	var mu sync.Mutex
	var got []Sample
	var sites []int
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 5}
		cfg.OnMirrorSample = func(site int, s Sample) {
			mu.Lock()
			got = append(got, s)
			sites = append(sites, site)
			mu.Unlock()
		}
	})
	r.feedPositions(t, 1, 50, 64)
	r.drainAll()
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no mirror samples observed at central")
	}
	for _, site := range sites {
		if site != 0 {
			t.Fatalf("sample attributed to site %d, want 0", site)
		}
	}
}

func TestRecoveryReplay(t *testing.T) {
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 1 << 30} // never checkpoint
	})
	r.feedPositions(t, 3, 10, 64)
	r.drainAll()

	// A fresh mirror joins and is recovered from the central site: the
	// TypeRecoveryState event installs the snapshot at its cut and the
	// replay covers anything past it — here nothing, since the cut
	// already covers every drained event and the backup suffix past the
	// cut is therefore empty (events the receiver's arrival watermark
	// would drop are not shipped at all).
	fresh := NewMirrorSite(MirrorSiteConfig{})
	defer fresh.Close()
	var sawState bool
	n, err := r.central.RecoverMirror(senderFunc(func(e *event.Event) error {
		if e.Type == event.TypeRecoveryState {
			sawState = true
		}
		fresh.HandleData(e)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !sawState {
		t.Fatal("no TypeRecoveryState event in the recovery transfer")
	}
	if n != 0 {
		t.Fatalf("replayed %d events, want 0 (all 30 inside the snapshot cut)", n)
	}
	fresh.Drain()
	for f := event.FlightID(1); f <= 3; f++ {
		cf, _ := r.central.Main().Engine().State().Get(f)
		mf, ok := fresh.Main().Engine().State().Get(f)
		if !ok || cf.Lat != mf.Lat || cf.PositionUpdates != mf.PositionUpdates {
			t.Fatalf("recovered mirror diverged on flight %d", f)
		}
	}
	// Byte-for-byte convergence, the chaos suite's invariant 3.
	cs := r.central.Main().Engine().State().Snapshot()
	ms := fresh.Main().Engine().State().Snapshot()
	if string(cs) != string(ms) {
		t.Fatalf("recovered snapshot differs: %d vs %d bytes", len(cs), len(ms))
	}
}

func TestHandleRecoveryRequest(t *testing.T) {
	r := newRig(t, 1, func(cfg *CentralConfig) {
		cfg.Params = Params{CheckpointFreq: 1 << 30}
	})
	r.feedPositions(t, 1, 5, 32)
	r.drainAll()
	req := event.NewControl(event.TypeRecoveryRequest, nil)
	req.Seq = 0
	if _, err := r.central.HandleRecoveryRequest(req); err != nil {
		t.Fatal(err)
	}
	bad := event.NewControl(event.TypeRecoveryRequest, nil)
	bad.Seq = 99
	if _, err := r.central.HandleRecoveryRequest(bad); err == nil {
		t.Fatal("unknown mirror index must fail")
	}
	if _, err := r.central.HandleRecoveryRequest(event.NewControl(event.TypeChkpt, nil)); err == nil {
		t.Fatal("non-recovery event must fail")
	}
}

func TestMainUnitRequests(t *testing.T) {
	m := NewMainUnit(MainConfig{})
	defer m.Close()
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))
	state, err := m.RequestInitState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 {
		t.Fatal("empty init state")
	}
	if m.ServedRequests() != 1 {
		t.Fatalf("ServedRequests = %d", m.ServedRequests())
	}
}

func TestMainUnitRequestAfterClose(t *testing.T) {
	m := NewMainUnit(MainConfig{})
	m.Close()
	if _, err := m.RequestInitState(); err != ErrUnitClosed {
		t.Fatalf("err = %v, want ErrUnitClosed", err)
	}
	if err := m.Deliver(&event.Event{}); err != ErrUnitClosed {
		t.Fatalf("Deliver after close = %v, want ErrUnitClosed", err)
	}
}

func TestMainUnitRequestBufferFull(t *testing.T) {
	m := NewMainUnit(MainConfig{RequestBuffer: 1})
	defer m.Close()
	// Saturate: worker may pick up the first request, so push until
	// ErrBusy appears or give up.
	busy := false
	for i := 0; i < 10000 && !busy; i++ {
		err := m.Request(&InitRequest{})
		busy = err == ErrBusy
	}
	if !busy {
		t.Fatal("never saw ErrBusy with a 1-deep buffer")
	}
}

func TestParamString(t *testing.T) {
	names := map[Param]string{
		ParamMaxCoalesce:  "max-coalesce",
		ParamOverwriteLen: "overwrite-len",
		ParamChkptFreq:    "chkpt-freq",
		Param(99):         "param(?)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestSampleEncodeDecode(t *testing.T) {
	s := Sample{Ready: 10, Backup: 20, Pending: 30}
	got, err := DecodeSample(EncodeSample(s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip = %+v, want %+v", got, s)
	}
	if _, err := DecodeSample([]byte{1, 2}); err == nil {
		t.Fatal("short sample must fail")
	}
}

func TestSampleMax(t *testing.T) {
	a := Sample{Ready: 1, Backup: 9, Pending: 4}
	b := Sample{Ready: 5, Backup: 2, Pending: 4}
	got := a.Max(b)
	if got != (Sample{Ready: 5, Backup: 9, Pending: 4}) {
		t.Fatalf("Max = %+v", got)
	}
}
