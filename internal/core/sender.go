package core

import "adaptmirror/internal/event"

// BatchSender extends Sender with whole-batch submission. Transports
// that can frame a batch into one buffered write (echo.SendLink), one
// subscriber-queue append (echo.LocalChannel), or one handler call
// implement it natively; everything else goes through the
// AsBatchSender adapter, which degrades to per-event Submit.
type BatchSender interface {
	Sender
	// SubmitBatch delivers every event of the batch in order. The
	// receiver retains the events, never the slice, so callers may
	// reuse the slice after the call returns.
	SubmitBatch([]*event.Event) error
}

// AsBatchSender returns s itself when it natively implements
// BatchSender, and otherwise wraps it in an adapter that submits the
// batch one event at a time — semantically equivalent, just without
// the amortization.
func AsBatchSender(s Sender) BatchSender {
	if bs, ok := s.(BatchSender); ok {
		return bs
	}
	return submitEach{s}
}

// submitEach is the per-event fallback adapter.
type submitEach struct{ Sender }

func (a submitEach) SubmitBatch(events []*event.Event) error {
	for _, e := range events {
		if err := a.Sender.Submit(e); err != nil {
			return err
		}
	}
	return nil
}
