package core

import (
	"sync"
	"sync/atomic"

	"adaptmirror/internal/event"
)

// BatchSender extends Sender with whole-batch submission. Transports
// that can frame a batch into one buffered write (echo.SendLink), one
// subscriber-queue append (echo.LocalChannel), or one handler call
// implement it natively; everything else goes through the
// AsBatchSender adapter, which degrades to per-event Submit.
type BatchSender interface {
	Sender
	// SubmitBatch delivers every event of the batch in order. The
	// receiver retains the events, never the slice, so callers may
	// reuse the slice after the call returns.
	SubmitBatch([]*event.Event) error
}

// AsBatchSender returns s itself when it natively implements
// BatchSender, and otherwise wraps it in an adapter that submits the
// batch one event at a time — semantically equivalent, just without
// the amortization.
func AsBatchSender(s Sender) BatchSender {
	if bs, ok := s.(BatchSender); ok {
		return bs
	}
	return submitEach{s}
}

// submitEach is the per-event fallback adapter.
type submitEach struct{ Sender }

func (a submitEach) SubmitBatch(events []*event.Event) error {
	for _, e := range events {
		if err := a.Sender.Submit(e); err != nil {
			return err
		}
	}
	return nil
}

// OwnedBatchSender is the zero-copy extension of BatchSender: the
// batch's events are pooled views borrowing from slabs guarded by ref.
// The views (and the slice) are valid only for the duration of the
// call; a receiver keeping any view longer must ref.Retain() before
// returning and ref.Release() once done. Transports that merely encode
// (echo.SendLink) need neither. Senders that do not implement this
// interface receive the same views through SubmitBatch, in which case
// the caller forfeits slab reuse rather than correctness (the slab is
// leaked to the garbage collector).
type OwnedBatchSender interface {
	SubmitOwned(events []*event.Event, ref event.Ref) error
}

// groupRef aggregates several slab releases behind one event.Ref, for
// drained outbox batches that merged events from more than one
// producer batch. It is pooled: the final Release fires every
// underlying release and returns the ref to the pool.
type groupRef struct {
	refs atomic.Int32
	rels []func()
}

var groupRefPool = sync.Pool{New: func() any { return &groupRef{} }}

// newGroupRef returns a ref holding the given releases with one
// reference owned by the caller. The rels slice is copied.
func newGroupRef(rels []func()) *groupRef {
	g := groupRefPool.Get().(*groupRef)
	g.refs.Store(1)
	g.rels = append(g.rels[:0], rels...)
	return g
}

func (g *groupRef) Retain() { g.refs.Add(1) }

func (g *groupRef) Release() {
	switch n := g.refs.Add(-1); {
	case n > 0:
	case n == 0:
		for _, f := range g.rels {
			if f != nil {
				f()
			}
		}
		clear(g.rels)
		g.rels = g.rels[:0]
		groupRefPool.Put(g)
	default:
		panic("core: group ref released more times than retained")
	}
}
