package core

import (
	"fmt"
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// Membership extends the framework with mirror-site failure handling,
// the server half of the recovery support the paper lists as future
// work. The paper's checkpoint protocol has no timeouts — a silent
// mirror simply stalls commits forever ("if a mirror site fails, these
// events have already been processed by all main units"). Membership
// adds the operational complement: a mirror that misses too many
// consecutive checkpoint rounds is excluded from mirroring and from
// the commit quorum so the healthy sites keep trimming their backup
// queues; a recovered site is re-admitted through a state-snapshot +
// backup-replay transfer (RecoverMirror) and rejoins the quorum.
//
// Site identity travels in the Stream field of checkpoint replies
// (unused for control events): mirrors stamp their assigned SiteID.

// MembershipConfig tunes the failure detector.
type MembershipConfig struct {
	// MissedRounds is the number of consecutive checkpoint rounds a
	// mirror may miss before being excluded (default 8).
	MissedRounds int
	// OnFailure, when non-nil, is told the excluded mirror's index.
	OnFailure func(site int)
	// OnRejoin, when non-nil, is told the re-admitted mirror's index.
	OnRejoin func(site int)
}

// Membership is the central-site failure detector and admission
// controller. Create it with NewMembership after constructing the
// Central.
type Membership struct {
	central *Central
	cfg     MembershipConfig

	mu     sync.Mutex
	missed []int  // consecutive rounds without a reply, per mirror
	failed []bool // excluded mirrors
	live   int
}

// NewMembership attaches a failure detector to c. It hooks the
// coordinator's round lifecycle, so call it before traffic starts.
func NewMembership(c *Central, cfg MembershipConfig) *Membership {
	if cfg.MissedRounds <= 0 {
		cfg.MissedRounds = 8
	}
	m := &Membership{
		central: c,
		cfg:     cfg,
		missed:  make([]int, len(c.cfg.Mirrors)),
		failed:  make([]bool, len(c.cfg.Mirrors)),
		live:    len(c.cfg.Mirrors),
	}
	c.setMembership(m)
	return m
}

// onRoundStart counts a round against every live mirror and excludes
// those that exceeded the miss budget.
func (m *Membership) onRoundStart() {
	m.mu.Lock()
	var newlyFailed []int
	for i := range m.missed {
		if m.failed[i] {
			continue
		}
		m.missed[i]++
		if m.missed[i] > m.cfg.MissedRounds {
			m.failed[i] = true
			m.live--
			newlyFailed = append(newlyFailed, i)
		}
	}
	live := m.live
	m.mu.Unlock()

	if len(newlyFailed) > 0 {
		// Quorum shrinks: live mirrors + the central main unit.
		m.central.coord.SetParticipants(live + 1)
		if m.cfg.OnFailure != nil {
			for _, i := range newlyFailed {
				m.cfg.OnFailure(i)
			}
		}
	}
}

// onReply resets the miss counter for the replying site.
func (m *Membership) onReply(site int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if site < 0 || site >= len(m.missed) || m.failed[site] {
		return
	}
	m.missed[site] = 0
}

// alive reports whether mirror i receives mirrored events.
func (m *Membership) alive(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return i < len(m.failed) && !m.failed[i]
}

// Failed returns the indices of excluded mirrors.
func (m *Membership) Failed() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, f := range m.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Live returns the number of admitted mirrors.
func (m *Membership) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// Exclude forcibly removes mirror i from mirroring and the commit
// quorum, as if it had exhausted the miss budget. Promotion bootstrap
// uses it: a freshly promoted central starts with every mirror
// excluded — the standby's own slot stays that way, survivors are
// re-admitted through RejoinSince with their own committed cuts.
// Excluding an already-excluded mirror is a no-op.
func (m *Membership) Exclude(i int) error {
	m.mu.Lock()
	if i < 0 || i >= len(m.failed) {
		m.mu.Unlock()
		return fmt.Errorf("core: no mirror %d", i)
	}
	if m.failed[i] {
		m.mu.Unlock()
		return nil
	}
	m.failed[i] = true
	m.missed[i] = 0
	m.live--
	live := m.live
	m.mu.Unlock()

	m.central.coord.SetParticipants(live + 1)
	if m.cfg.OnFailure != nil {
		m.cfg.OnFailure(i)
	}
	return nil
}

// Rejoin re-admits mirror i after transferring the central state
// snapshot (with its consistency cut) and the retained backup events
// through the mirror's fan-out sender. The transfer and the liveness
// flip happen atomically with respect to the live fan-out — no batch
// can slip between the replayed history and the first post-rejoin
// drain — so the recovered replica converges to the central state
// byte-for-byte even while traffic is flowing. The site rejoins the
// commit quorum at the next checkpoint round.
func (m *Membership) Rejoin(i int) (replayed int, err error) {
	return m.RejoinSince(i, nil)
}

// RejoinSince is Rejoin with cut negotiation: cut is the rejoiner's
// last committed checkpoint cut (its backup queue's Committed
// watermark), nil when the site lost all state. A cut within the
// central mutation journal's horizon turns the state transfer into a
// per-flight delta of exactly what the rejoiner missed; anything else
// falls back to the full snapshot. Either way the recovered replica
// converges byte-for-byte.
func (m *Membership) RejoinSince(i int, cut vclock.VC) (replayed int, err error) {
	m.mu.Lock()
	if i < 0 || i >= len(m.failed) {
		m.mu.Unlock()
		return 0, fmt.Errorf("core: no mirror %d", i)
	}
	if !m.failed[i] {
		m.mu.Unlock()
		return 0, fmt.Errorf("core: mirror %d is not excluded", i)
	}
	m.mu.Unlock()

	n, err := m.central.recoverMirrorAndReadmit(i, cut, func() {
		m.mu.Lock()
		m.failed[i] = false
		m.missed[i] = 0
		m.live++
		m.mu.Unlock()
	})
	if err != nil {
		return n, err
	}

	m.mu.Lock()
	live := m.live
	m.mu.Unlock()
	m.central.coord.SetParticipants(live + 1)
	if m.cfg.OnRejoin != nil {
		m.cfg.OnRejoin(i)
	}
	return n, nil
}

// --- Central hooks ------------------------------------------------------

// setMembership installs the detector (central side).
func (c *Central) setMembership(m *Membership) {
	c.memberMu.Lock()
	c.membership = m
	c.memberMu.Unlock()
}

func (c *Central) membershipHandle() *Membership {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	return c.membership
}

// mirrorAlive reports whether mirror i should receive traffic.
func (c *Central) mirrorAlive(i int) bool {
	m := c.membershipHandle()
	return m == nil || m.alive(i)
}

// noteRoundStart and noteReply forward protocol lifecycle to the
// detector.
func (c *Central) noteRoundStart() {
	if m := c.membershipHandle(); m != nil {
		m.onRoundStart()
	}
}

func (c *Central) noteReply(e *event.Event) {
	if m := c.membershipHandle(); m != nil {
		m.onReply(int(e.Stream))
	}
}
