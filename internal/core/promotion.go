package core

import (
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// Warm-standby central promotion. The paper's architecture hangs every
// mirror, the checkpoint coordinator, and the directive publisher off
// one central site; this file implements the failover path that keeps
// the cluster alive when that site dies. A designated standby mirror
// (config-ordered: the lowest-indexed live mirror) detects the failure
// through missed checkpoint rounds (StandbyMonitor), captures its local
// view (MirrorSite.Promote), and a new Central built with
// CentralConfig.Resume takes over:
//
//   - the standby's main unit is adopted whole — EDE state, processed
//     watermark, and (for a Standby-armed site) the mutation journal
//     with its sealed cuts, so survivor rejoins keep getting deltas;
//   - the backup queue is reseeded with the standby's retained events
//     past its last committed cut (committed events were trimmed
//     everywhere and live in every replica's state — nothing is lost);
//   - the stamping clock resumes past every event the standby admitted,
//     so surviving mirrors' dedup watermarks accept fresh traffic;
//   - checkpoint rounds restart above checkpoint.EpochBase(epoch) and
//     the standby's observed round watermark, so survivor-side
//     directive appliers accept the new central's directives and
//     stragglers addressed to the old coordinator are rejected;
//   - survivors are re-pointed through a fresh Membership: everything
//     starts excluded, then RejoinSince re-admits each survivor from
//     its own committed cut.

// ResumeState is everything a promoted central takes over from the
// standby mirror it is built on. MirrorSite.Promote captures the
// site-local fields; the caller supplies Epoch (one past the failed
// central's) and, when it tracks directives through an applier, the
// Directive pair.
type ResumeState struct {
	// Epoch is the promotion epoch the new central stamps rounds in
	// (>= 1; the original central is epoch 0).
	Epoch uint64
	// RoundFloor is the highest checkpoint/directive round the standby
	// observed from the failed central. The resumed coordinator stamps
	// strictly above max(EpochBase(Epoch), RoundFloor).
	RoundFloor uint64
	// Clock is the standby's arrival watermark: the stamping clock
	// resumes from here so fresh events never reuse a timestamp a
	// surviving mirror has already admitted.
	Clock vclock.VC
	// Cut is the standby's last committed checkpoint cut (nil before
	// the first commit it saw); it seeds the new backup queue's
	// committed watermark so cut numbering never regresses.
	Cut vclock.VC
	// Events is the standby's retained backup queue — every event past
	// Cut, in timestamp order. They re-enter the new central's backup
	// queue for future rounds to commit; their effects already live in
	// the adopted state, which survivor rejoin transfers carry over, so
	// they are never re-fanned-out directly.
	Events []*event.Event
	// Main is the standby's main unit, adopted whole.
	Main *MainUnit
	// Directive/DirectiveRound restore the last adaptation directive
	// the standby saw installed, so PublishDirective re-broadcasts it
	// idempotently (survivor watermarks already cover the round).
	Directive      []byte
	DirectiveRound uint64
}

// Promote drains this site and captures everything a replacement
// central needs from it: the last committed cut, the retained backup
// suffix (deep copies), the arrival watermark, the observed round
// watermark, and the main unit itself, which is detached — Close will
// no longer shut it down; the adopting Central owns it now. The site
// must already be isolated from live traffic (its central is down);
// after Promote it serves no further purpose beyond being dropped.
func (m *MirrorSite) Promote() ResumeState {
	// Detach before draining: the forward task's exit path would
	// otherwise close the main unit's inbound queue for good, and the
	// adopting central must keep delivering into it.
	m.detached.Store(true)
	// Drain the site's plumbing, then quiesce the main unit without
	// closing it: the captured state must reflect every admitted
	// event, or the resumed clock (arrivalHigh) would run ahead of the
	// adopted state's processed watermark. The barrier runs on the
	// processing goroutine after everything delivered before it.
	m.Drain()
	_ = m.main.Barrier(func() {})
	return ResumeState{
		RoundFloor: m.lastRound.Load(),
		Clock:      m.ArrivalHigh(),
		Cut:        m.backup.Committed(),
		Events:     m.backup.Snapshot(),
		Main:       m.main,
	}
}

// StandbyMonitor is the failure detector a standby mirror runs against
// its own control path: the central is presumed failed after Budget+1
// consecutive detection intervals without a new checkpoint round.
// Drive Tick once per expected round interval — from a wall-clock
// ticker in a deployment, or deterministically from a test harness.
type StandbyMonitor struct {
	// LastRound reads the observed round watermark (MirrorSite.LastRound).
	LastRound func() uint64
	// Budget is how many consecutive missed intervals are tolerated
	// (<= 0 uses 1): one more declares failure. Align it with the
	// Membership miss budget so the standby never declares a central
	// dead faster than the central would declare a mirror dead.
	Budget int

	mu     sync.Mutex
	prev   uint64
	missed int
	fired  bool
}

// NewStandbyMonitor returns a monitor polling lastRound with the given
// miss budget.
func NewStandbyMonitor(lastRound func() uint64, budget int) *StandbyMonitor {
	if budget <= 0 {
		budget = 1
	}
	return &StandbyMonitor{LastRound: lastRound, Budget: budget}
}

// Tick observes one detection interval and reports whether central
// failure is (now or already) declared. An interval that saw a new
// round resets the miss streak; one that did not extends it.
func (s *StandbyMonitor) Tick() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired {
		return true
	}
	cur := s.LastRound()
	if cur > s.prev {
		s.prev = cur
		s.missed = 0
		return false
	}
	s.missed++
	if s.missed > s.Budget {
		s.fired = true
	}
	return s.fired
}

// Missed returns the current consecutive-miss streak.
func (s *StandbyMonitor) Missed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.missed
}

// Fired reports whether failure has been declared.
func (s *StandbyMonitor) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}
