package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/vclock"
)

// Warm-standby central promotion. The paper's architecture hangs every
// mirror, the checkpoint coordinator, and the directive publisher off
// one central site; this file implements the failover path that keeps
// the cluster alive when that site dies. A designated standby mirror
// (config-ordered: the lowest-indexed live mirror) detects the failure
// through missed checkpoint rounds (StandbyMonitor), captures its local
// view (MirrorSite.Promote), and a new Central built with
// CentralConfig.Resume takes over:
//
//   - the standby's main unit is adopted whole — EDE state, processed
//     watermark, and (for a Standby-armed site) the mutation journal
//     with its sealed cuts, so survivor rejoins keep getting deltas;
//   - the backup queue is reseeded with the standby's retained events
//     past its last committed cut (committed events were trimmed
//     everywhere and live in every replica's state — nothing is lost);
//   - the stamping clock resumes past every event the standby admitted,
//     so surviving mirrors' dedup watermarks accept fresh traffic;
//   - checkpoint rounds restart above checkpoint.EpochBase(epoch) and
//     the standby's observed round watermark, so survivor-side
//     directive appliers accept the new central's directives and
//     stragglers addressed to the old coordinator are rejected;
//   - survivors are re-pointed through a fresh Membership: everything
//     starts excluded, then RejoinSince re-admits each survivor from
//     its own committed cut.

// ResumeState is everything a promoted central takes over from the
// standby mirror it is built on. MirrorSite.Promote captures the
// site-local fields; the caller supplies Epoch (one past the failed
// central's) and, when it tracks directives through an applier, the
// Directive pair.
type ResumeState struct {
	// Epoch is the promotion epoch the new central stamps rounds in
	// (>= 1; the original central is epoch 0).
	Epoch uint64
	// RoundFloor is the highest checkpoint/directive round the standby
	// observed from the failed central. The resumed coordinator stamps
	// strictly above max(EpochBase(Epoch), RoundFloor).
	RoundFloor uint64
	// Clock is the standby's arrival watermark: the stamping clock
	// resumes from here so fresh events never reuse a timestamp a
	// surviving mirror has already admitted.
	Clock vclock.VC
	// Cut is the standby's last committed checkpoint cut (nil before
	// the first commit it saw); it seeds the new backup queue's
	// committed watermark so cut numbering never regresses.
	Cut vclock.VC
	// Events is the standby's retained backup queue — every event past
	// Cut, in timestamp order. They re-enter the new central's backup
	// queue for future rounds to commit; their effects already live in
	// the adopted state, which survivor rejoin transfers carry over, so
	// they are never re-fanned-out directly.
	Events []*event.Event
	// Main is the standby's main unit, adopted whole.
	Main *MainUnit
	// Directive/DirectiveRound restore the last adaptation directive
	// the standby saw installed, so PublishDirective re-broadcasts it
	// idempotently (survivor watermarks already cover the round).
	Directive      []byte
	DirectiveRound uint64
}

// Promote drains this site and captures everything a replacement
// central needs from it: the last committed cut, the retained backup
// suffix (deep copies), the arrival watermark, the observed round
// watermark, and the main unit itself, which is detached — Close will
// no longer shut it down; the adopting Central owns it now. The site
// must already be isolated from live traffic (its central is down);
// after Promote it serves no further purpose beyond being dropped.
func (m *MirrorSite) Promote() ResumeState {
	// Detach before draining: the forward task's exit path would
	// otherwise close the main unit's inbound queue for good, and the
	// adopting central must keep delivering into it.
	m.detached.Store(true)
	// Drain the site's plumbing, then quiesce the main unit without
	// closing it: the captured state must reflect every admitted
	// event, or the resumed clock (arrivalHigh) would run ahead of the
	// adopted state's processed watermark. The barrier runs on the
	// processing goroutine after everything delivered before it.
	m.Drain()
	_ = m.main.Barrier(func() {})
	return ResumeState{
		RoundFloor: m.lastRound.Load(),
		Clock:      m.ArrivalHigh(),
		Cut:        m.backup.Committed(),
		Events:     m.backup.Snapshot(),
		Main:       m.main,
	}
}

// StandbyMonitor is the failure detector a standby mirror runs against
// its own control path: the central is presumed failed after Budget+1
// consecutive detection intervals without a new checkpoint round.
// Drive Tick once per expected round interval — from a wall-clock
// ticker in a deployment, or deterministically from a test harness.
type StandbyMonitor struct {
	// LastRound reads the observed round watermark (MirrorSite.LastRound).
	LastRound func() uint64
	// Budget is how many consecutive missed intervals are tolerated
	// (<= 0 uses 1): one more declares failure. Align it with the
	// Membership miss budget so the standby never declares a central
	// dead faster than the central would declare a mirror dead.
	Budget int

	mu     sync.Mutex
	prev   uint64
	missed int
	fired  bool
}

// NewStandbyMonitor returns a monitor polling lastRound with the given
// miss budget.
func NewStandbyMonitor(lastRound func() uint64, budget int) *StandbyMonitor {
	if budget <= 0 {
		budget = 1
	}
	return &StandbyMonitor{LastRound: lastRound, Budget: budget}
}

// Tick observes one detection interval and reports whether central
// failure is (now or already) declared. An interval that saw a new
// round resets the miss streak; one that did not extends it.
func (s *StandbyMonitor) Tick() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired {
		return true
	}
	cur := s.LastRound()
	if cur > s.prev {
		s.prev = cur
		s.missed = 0
		return false
	}
	s.missed++
	if s.missed > s.Budget {
		s.fired = true
	}
	return s.fired
}

// Missed returns the current consecutive-miss streak.
func (s *StandbyMonitor) Missed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.missed
}

// Fired reports whether failure has been declared.
func (s *StandbyMonitor) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// --- Wire takeover protocol ---------------------------------------------
//
// The in-process promotion above becomes a deployed-cluster protocol
// with two control frames carried on the existing mirror-to-mirror
// channels (every mirrord site exports a ctrl.down channel any peer can
// dial):
//
//   - TAKEOVER (event.TypeTakeover): the promoted central's
//     announcement, retried on each survivor's ctrl.down until it
//     rejoins. Epoch-fenced: a survivor records the first announcement
//     it accepts for an epoch and rejects any later announcement for
//     the same or an older epoch from a different address, so two
//     would-be centrals can never split the cluster.
//   - ELECT (event.TypeElect): an election claim exchanged by mirrors
//     when no standby was designated. The winner is deterministic:
//     highest committed cut first (commit quorum requires every live
//     participant, so any site's committed cut is covered by all
//     survivors' states), lowest site ID on ties.

const (
	takeoverWireVersion = 1
	maxTakeoverAddr     = 255
)

// TakeoverAnnouncement is the payload of a TypeTakeover control event.
type TakeoverAnnouncement struct {
	// Epoch is the promotion epoch the new central stamps rounds in.
	Epoch uint64
	// Addr is the promoted site's event-channel address: survivors
	// swing their ctrl.up uplink here.
	Addr string
	// Anchor is the adopted main unit's processed watermark. A
	// survivor whose arrival watermark is covered by Anchor rejoins
	// from its committed cut (delta-eligible); one that admitted
	// events past the adopted state must take the full transfer.
	Anchor vclock.VC
}

// Encode serializes the announcement.
func (a TakeoverAnnouncement) Encode() []byte {
	b := make([]byte, 0, 1+8+2+len(a.Addr)+a.Anchor.EncodedSize())
	b = append(b, takeoverWireVersion)
	b = binary.LittleEndian.AppendUint64(b, a.Epoch)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(a.Addr)))
	b = append(b, a.Addr...)
	b = a.Anchor.AppendBinary(b)
	return b
}

// DecodeTakeoverAnnouncement parses an announcement payload, rejecting
// truncated or trailing bytes.
func DecodeTakeoverAnnouncement(b []byte) (TakeoverAnnouncement, error) {
	var a TakeoverAnnouncement
	if len(b) < 11 {
		return a, fmt.Errorf("core: takeover announcement truncated (%d bytes)", len(b))
	}
	if b[0] != takeoverWireVersion {
		return a, fmt.Errorf("core: takeover announcement version %d", b[0])
	}
	a.Epoch = binary.LittleEndian.Uint64(b[1:])
	n := int(binary.LittleEndian.Uint16(b[9:]))
	if n > maxTakeoverAddr || len(b) < 11+n {
		return a, fmt.Errorf("core: takeover announcement bad address length %d", n)
	}
	a.Addr = string(b[11 : 11+n])
	anchor, used, err := vclock.DecodeVC(b[11+n:])
	if err != nil {
		return a, fmt.Errorf("core: takeover announcement anchor: %w", err)
	}
	if 11+n+used != len(b) {
		return a, fmt.Errorf("core: takeover announcement has %d trailing bytes", len(b)-11-n-used)
	}
	a.Anchor = anchor
	return a, nil
}

// ElectionClaim is the payload of a TypeElect control event: one
// mirror's bid to become the epoch's central.
type ElectionClaim struct {
	// Epoch is the promotion epoch being contested (one past the
	// claimant's current epoch).
	Epoch uint64
	// Site is the claimant's site ID.
	Site uint8
	// Cut is the claimant's last committed checkpoint cut (nil before
	// any commit).
	Cut vclock.VC
}

// Encode serializes the claim.
func (c ElectionClaim) Encode() []byte {
	b := make([]byte, 0, 1+8+1+c.Cut.EncodedSize())
	b = append(b, takeoverWireVersion)
	b = binary.LittleEndian.AppendUint64(b, c.Epoch)
	b = append(b, c.Site)
	b = c.Cut.AppendBinary(b)
	return b
}

// DecodeElectionClaim parses a claim payload, rejecting truncated or
// trailing bytes.
func DecodeElectionClaim(b []byte) (ElectionClaim, error) {
	var c ElectionClaim
	if len(b) < 10 {
		return c, fmt.Errorf("core: election claim truncated (%d bytes)", len(b))
	}
	if b[0] != takeoverWireVersion {
		return c, fmt.Errorf("core: election claim version %d", b[0])
	}
	c.Epoch = binary.LittleEndian.Uint64(b[1:])
	c.Site = b[9]
	cut, used, err := vclock.DecodeVC(b[10:])
	if err != nil {
		return c, fmt.Errorf("core: election claim cut: %w", err)
	}
	if 10+used != len(b) {
		return c, fmt.Errorf("core: election claim has %d trailing bytes", len(b)-10-used)
	}
	c.Cut = cut
	return c, nil
}

// Beats reports whether c wins the election against rival o for the
// same epoch: the higher committed cut wins (commit quorum spans every
// live participant, so each committed cut is covered by every
// survivor's state — any winner preserves committed events), with ties
// broken deterministically toward the lower site ID.
func (c ElectionClaim) Beats(o ElectionClaim) bool {
	cs, os := c.Cut.Sum(), o.Cut.Sum()
	if cs != os {
		return cs > os
	}
	return c.Site < o.Site
}

// TakeoverStats are the wire-takeover runtime's counters, registered
// once per site via RegisterTakeoverMetrics so the series exist at zero
// from boot.
type TakeoverStats struct {
	// Fired counts central-failure declarations by this site's monitor.
	Fired atomic.Uint64
	// Repoints counts ctrl.up uplink swings to a promoted address.
	Repoints atomic.Uint64
	// Claims counts election claims sent or received by this site.
	Claims atomic.Uint64
}

// RegisterTakeoverMetrics exports a site's wire-takeover counters on r
// (nil-safe) and returns the stats sink the runtime increments.
func RegisterTakeoverMetrics(r *obs.Registry, site string) *TakeoverStats {
	s := &TakeoverStats{}
	if r != nil {
		l := obs.L("site", site)
		r.Describe("takeover_fired_total", "Central-failure declarations by the wire-takeover monitor.")
		r.CounterFunc("takeover_fired_total", func() float64 { return float64(s.Fired.Load()) }, l)
		r.Describe("uplink_repoint_total", "Control-uplink swings to a promoted central's address.")
		r.CounterFunc("uplink_repoint_total", func() float64 { return float64(s.Repoints.Load()) }, l)
		r.Describe("election_claims_total", "Central-election claims sent or received.")
		r.CounterFunc("election_claims_total", func() float64 { return float64(s.Claims.Load()) }, l)
	}
	return s
}
