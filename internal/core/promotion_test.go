package core

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// promotionRig wires a central with severable links to n mirrors, of
// which mirror 0 is the warm standby. The central and membership slots
// are atomic so mirror uplinks — closures over the rig — always route
// to whoever currently holds the central role, which is exactly the
// re-pointing a deployment does when the standby takes over.
type promotionRig struct {
	central atomic.Pointer[Central]
	member  atomic.Pointer[Membership]
	mirrors []*MirrorSite
	links   []*failableLink // data+ctrl per mirror, interleaved
}

func (r *promotionRig) cen() *Central { return r.central.Load() }

// newPromotionRig builds the rig. wrapUp, when non-nil, may interpose
// on a mirror's control uplink (reply latency injection); the default
// uplink delivers to the current central.
func newPromotionRig(t *testing.T, nMirrors int, wrapUp func(i int, next senderFunc) Sender) *promotionRig {
	t.Helper()
	r := &promotionRig{}
	var coreLinks []MirrorLink
	for i := 0; i < nMirrors; i++ {
		i := i
		data := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleData(e); return nil }}
		ctrl := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleControl(e); return nil }}
		r.links = append(r.links, data, ctrl)
		coreLinks = append(coreLinks, MirrorLink{Data: data, Ctrl: ctrl})
	}
	c := NewCentral(CentralConfig{Streams: 1, Mirrors: coreLinks})
	c.SetParams(false, 1, 1<<30) // manual checkpoints
	r.central.Store(c)
	for i := 0; i < nMirrors; i++ {
		up := senderFunc(func(e *event.Event) error { r.cen().HandleControl(e); return nil })
		var upLink Sender = up
		if wrapUp != nil {
			upLink = wrapUp(i, up)
		}
		r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
			SiteID:  uint8(i),
			CtrlUp:  upLink,
			Standby: i == 0,
		}))
	}
	r.member.Store(NewMembership(c, MembershipConfig{MissedRounds: 2}))
	t.Cleanup(func() {
		r.cen().Close()
		for _, m := range r.mirrors {
			m.Close()
		}
	})
	return r
}

func (r *promotionRig) feed(t *testing.T, from, n uint64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := r.cen().Ingest(event.NewPosition(event.FlightID(1+i%3), i, 0, 0, 0, 16)); err != nil {
			t.Fatal(err)
		}
	}
}

// commitThrough drives checkpoint rounds until the central and every
// given mirror have committed a cut summing to at least want. Rounds
// are re-triggered while waiting: a CHKPT can race ahead of a round's
// data on a mirror path, and the conservative vote then needs a later
// round to cover everything.
func (r *promotionRig) commitThrough(t *testing.T, want uint64, sites ...*MirrorSite) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.cen().Checkpoint()
		ok := true
		if com := r.cen().Backup().Committed(); com == nil || com.Sum() < want {
			ok = false
		}
		for _, m := range sites {
			if com := m.Backup().Committed(); com == nil || com.Sum() < want {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no committed cut covering %d events (central %v)", want, r.cen().Backup().Committed())
		}
		time.Sleep(time.Millisecond)
	}
}

// promoteStandby crashes the current central and runs the full
// handover: the standby's monitor declares the failure, Promote
// captures its state, a resumed Central adopts it, and every surviving
// mirror is re-admitted through a fresh membership — from its own
// committed cut when its arrival watermark is covered by the adopted
// state, from a snapshot otherwise.
func (r *promotionRig) promoteStandby(t *testing.T) {
	t.Helper()
	old := r.cen()
	old.Drain()
	for _, l := range r.links {
		l.dead.Store(true)
	}
	old.Close()

	standby := r.mirrors[0]
	mon := NewStandbyMonitor(standby.LastRound, 2)
	for i := 0; i < 4 && !mon.Fired(); i++ {
		mon.Tick()
	}
	if !mon.Fired() {
		t.Fatal("standby monitor did not declare the central dead")
	}

	state := standby.Promote()
	state.Epoch = old.Epoch() + 1

	// Survivors keep their sites; the standby's slot is not replaced —
	// the promoted central IS that site now. Slot i of the new central
	// serves r.mirrors[i+1].
	var coreLinks []MirrorLink
	var fresh []*failableLink
	for i := 1; i < len(r.mirrors); i++ {
		i := i
		data := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleData(e); return nil }}
		ctrl := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleControl(e); return nil }}
		fresh = append(fresh, data, ctrl)
		coreLinks = append(coreLinks, MirrorLink{Data: data, Ctrl: ctrl})
	}
	nc := NewCentral(CentralConfig{Streams: 1, Mirrors: coreLinks, Resume: &state})
	nc.SetParams(false, 1, 1<<30)
	r.central.Store(nc)
	r.links = fresh
	standby.Close()

	nm := NewMembership(nc, MembershipConfig{MissedRounds: 2})
	for i := range coreLinks {
		_ = nm.Exclude(i)
	}
	r.member.Store(nm)
	anchor := nc.Main().LastProcessed()
	for i := 1; i < len(r.mirrors); i++ {
		var cut vclock.VC
		if high := r.mirrors[i].ArrivalHigh(); high.LessEq(anchor) {
			cut = r.mirrors[i].Backup().Committed()
		}
		if _, err := nm.RejoinSince(i-1, cut); err != nil {
			t.Fatalf("rejoining survivor %d: %v", i, err)
		}
	}
	t.Cleanup(nc.Close)
}

// TestPromotionMidRejoin promotes the standby while a survivor is
// mid-rejoin: mirror 2 was excluded and missed committed traffic, and
// the central dies before re-admitting it. The promotion must re-point
// BOTH survivors — the current one and the laggard — and the laggard's
// rejoin negotiates against the adopted journal (its committed cut is
// behind the adopted state), ending with every survivor byte-identical
// to the promoted central and checkpoint rounds landing in epoch 1.
func TestPromotionMidRejoin(t *testing.T) {
	r := newPromotionRig(t, 3, nil)
	r.feed(t, 1, 60)
	r.commitThrough(t, 60, r.mirrors...)

	// Mirror 2 falls off, misses committed traffic, and is voted out by
	// the old central (rounds need uncommitted events to propose, so
	// feed before driving the exclusion rounds).
	r.links[4].dead.Store(true)
	r.links[5].dead.Store(true)
	r.feed(t, 1000, 40)
	deadline := time.Now().Add(5 * time.Second)
	for len(r.member.Load().Failed()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("old central never excluded the dead mirror")
		}
		r.cen().Checkpoint()
		time.Sleep(time.Millisecond)
	}
	r.commitThrough(t, 100, r.mirrors[0], r.mirrors[1])

	// The central dies before the laggard's rejoin completes; the
	// promotion has to finish the job.
	r.promoteStandby(t)
	nc := r.cen()
	if nc.Epoch() != 1 {
		t.Fatalf("promoted central epoch = %d, want 1", nc.Epoch())
	}
	stats := nc.RejoinStats()
	if stats.Deltas+stats.Snapshots != 2 {
		t.Fatalf("RejoinStats = %+v, want 2 rejoin transfers", stats)
	}

	// Fresh ingest lands under the new epoch and commits.
	r.feed(t, 2000, 20)
	r.commitThrough(t, 120, r.mirrors[1], r.mirrors[2])
	nc.Drain()

	want := nc.Main().LastProcessed()
	for i := 1; i < len(r.mirrors); i++ {
		waitProgress(t, r.mirrors[i], want)
	}
	central := nc.Main().Engine().State().Snapshot()
	for i := 1; i < len(r.mirrors); i++ {
		if got := r.mirrors[i].Main().Engine().State().Snapshot(); !bytes.Equal(got, central) {
			t.Fatalf("survivor %d diverged after promotion (%d vs %d bytes)", i, len(got), len(central))
		}
	}
	base := checkpoint.EpochBase(nc.Epoch())
	for i := 1; i < len(r.mirrors); i++ {
		if lr := r.mirrors[i].LastRound(); lr <= base {
			t.Fatalf("survivor %d round watermark %d not above epoch base %d", i, lr, base)
		}
	}
	if err := nc.Backup().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionDuringInFlightRound promotes the standby while a
// checkpoint round is open: the survivor's CHKPT_REP is still in
// flight when the central dies, and is only released after the role
// has moved. The resumed coordinator's floor must reject the old-epoch
// straggler — no commit, no double-count — and the next round under
// epoch 1 commits normally with everyone converged.
func TestPromotionDuringInFlightRound(t *testing.T) {
	hold := &holdableSender{}
	r := newPromotionRig(t, 2, func(i int, next senderFunc) Sender {
		if i != 1 {
			return next
		}
		hold.next = next
		return hold
	})
	r.feed(t, 1, 60)
	r.commitThrough(t, 60, r.mirrors...)

	// Uncommitted traffic for the round to propose, then hold the
	// survivor's reply so the round stays open across the crash.
	r.feed(t, 5000, 20)
	r.cen().Drain()
	hold.hold()
	if !r.cen().Checkpoint() {
		t.Fatal("round did not start")
	}

	r.promoteStandby(t)
	nc := r.cen()
	if nc.Epoch() != 1 {
		t.Fatalf("promoted central epoch = %d, want 1", nc.Epoch())
	}

	// The straggler reply lands on the NEW coordinator (the survivor's
	// uplink was re-pointed). Its round is below the resumed floor:
	// it must change nothing.
	roundsBefore, commitsBefore := nc.coord.Stats()
	hold.release()
	if rounds, commits := nc.coord.Stats(); rounds != roundsBefore || commits != commitsBefore {
		t.Fatalf("old-epoch straggler moved the resumed coordinator: rounds %d->%d commits %d->%d",
			roundsBefore, rounds, commitsBefore, commits)
	}

	// The new epoch ingests and commits; the adopted backup carried the
	// pre-crash uncommitted events, so the cut covers them too.
	r.feed(t, 7000, 20)
	r.commitThrough(t, 100, r.mirrors[1])
	nc.Drain()

	waitProgress(t, r.mirrors[1], nc.Main().LastProcessed())
	central := nc.Main().Engine().State().Snapshot()
	if got := r.mirrors[1].Main().Engine().State().Snapshot(); !bytes.Equal(got, central) {
		t.Fatalf("survivor diverged after mid-round promotion (%d vs %d bytes)", len(got), len(central))
	}
	if lr := r.mirrors[1].LastRound(); lr <= checkpoint.EpochBase(1) {
		t.Fatalf("survivor round watermark %d not above epoch base %d", lr, checkpoint.EpochBase(1))
	}
	if err := nc.Backup().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
