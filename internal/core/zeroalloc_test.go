package core

import (
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// loopback is an in-memory wire: Write appends framed bytes, Read
// consumes them, and storage is reclaimed once fully drained so the
// steady state neither grows nor reallocates.
type loopback struct {
	buf []byte
	r   int
}

func (l *loopback) Write(p []byte) (int, error) {
	l.buf = append(l.buf, p...)
	return len(p), nil
}

func (l *loopback) Read(p []byte) (int, error) {
	n := copy(p, l.buf[l.r:])
	l.r += n
	if l.r == len(l.buf) {
		l.buf = l.buf[:0]
		l.r = 0
	}
	return n, nil
}

// TestSteadyStatePathZeroAllocs pins the per-event allocation count of
// the synchronous central→mirror data path — shallow view batch,
// semantic filter, columnar encode, wire decode into pooled slab views,
// backup retention, checkpoint trim — at (amortized) zero. The few
// allocations that remain are per-BATCH bookkeeping (one release group,
// one committed-watermark merge per checkpoint), which this test bounds
// at 0.05 allocs per EVENT so a per-event allocation sneaking back into
// the hot path (~1.0/event) fails loudly.
func TestSteadyStatePathZeroAllocs(t *testing.T) {
	const n = 256
	src := make([]*event.Event, n)
	for i := range src {
		e := event.NewPosition(event.FlightID(i%8+1), uint64(i), 1, 2, 3, 128)
		e.VT = vclock.VC{0}
		src[i] = e
	}

	var wire loopback
	w := event.NewWriter(&wire)
	r := event.NewReader(&wire)
	sem := NewSemantics()
	backup := queue.NewBackup()

	seq := uint64(1)
	cycle := func() {
		// Monotonic admission stamps so each cycle's commit trims the
		// previous cycle's retained slab (in-place VT mutation: the
		// stamps are this test's own, never shared).
		for _, e := range src {
			e.VT[0] = seq
			e.Seq = seq
			seq++
		}
		vb := event.ShallowBatch(src)
		kept := sem.FilterBatch(vb.Events)
		if err := w.WriteBatchFrame(kept); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		_, b, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil || len(b.Events) != len(kept) {
			t.Fatalf("decoded batch = %v, want %d events", b, len(kept))
		}
		backup.AppendOwnedBatch(b.Events, b.Release)
		vb.Release()
		backup.Commit(b.Events[len(b.Events)-1].VT)
	}

	// Warm the slab pool, the wire buffers, and the backup's internal
	// slices before measuring.
	for i := 0; i < 10; i++ {
		cycle()
	}
	perRun := testing.AllocsPerRun(50, cycle)
	if perEvent := perRun / n; perEvent > 0.05 {
		t.Fatalf("steady-state path allocates %.3f allocs/event (%.1f per %d-event batch), want ~0",
			perEvent, perRun, n)
	}
	if backup.Len() > n {
		t.Fatalf("backup retained %d events; commits are not trimming", backup.Len())
	}
}
