package core

import (
	"encoding/binary"
	"fmt"
)

// Sample is one observation of the variables the adaptation mechanism
// monitors (paper Section 3.2.2): the lengths of the ready and backup
// queues and the depth of the application-level buffer of pending
// client requests. Mirror sites attach an encoded Sample to their
// CHKPT_REP control events so adaptation decisions at the central site
// see the whole cluster without extra traffic.
type Sample struct {
	Ready   int
	Backup  int
	Pending int
}

// Max returns the component-wise maximum of s and o — the aggregation
// the central decision-maker applies across sites.
func (s Sample) Max(o Sample) Sample {
	if o.Ready > s.Ready {
		s.Ready = o.Ready
	}
	if o.Backup > s.Backup {
		s.Backup = o.Backup
	}
	if o.Pending > s.Pending {
		s.Pending = o.Pending
	}
	return s
}

// sampleWire is the encoded size of a Sample.
const sampleWire = 12

// EncodeSample serializes s for piggybacking on control events.
func EncodeSample(s Sample) []byte {
	b := make([]byte, sampleWire)
	binary.LittleEndian.PutUint32(b[0:], uint32(s.Ready))
	binary.LittleEndian.PutUint32(b[4:], uint32(s.Backup))
	binary.LittleEndian.PutUint32(b[8:], uint32(s.Pending))
	return b
}

// DecodeSample parses a Sample encoded by EncodeSample.
func DecodeSample(b []byte) (Sample, error) {
	if len(b) < sampleWire {
		return Sample{}, fmt.Errorf("core: sample too short: %d bytes", len(b))
	}
	return Sample{
		Ready:   int(binary.LittleEndian.Uint32(b[0:])),
		Backup:  int(binary.LittleEndian.Uint32(b[4:])),
		Pending: int(binary.LittleEndian.Uint32(b[8:])),
	}, nil
}
