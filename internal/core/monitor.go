package core

import (
	"encoding/binary"
	"fmt"
)

// Sample is one observation of the variables the adaptation mechanism
// monitors (paper Section 3.2.2): the lengths of the ready and backup
// queues and the depth of the application-level buffer of pending
// client requests, extended with the wire-telemetry variables the
// bandwidth-adaptation plane watches. Mirror sites attach an encoded
// Sample to their CHKPT_REP control events so adaptation decisions at
// the central site see the whole cluster without extra traffic.
type Sample struct {
	Ready   int
	Backup  int
	Pending int
	// WireBytes is the EWMA of wire payload bytes the fan-out ships
	// per checkpoint round on its busiest link (central site only;
	// 0 at mirrors). It is the bandwidth-pressure monitored variable.
	WireBytes int
	// Outbox is the deepest per-link outbox high-water mark in the
	// current telemetry window (central site only; 0 at mirrors).
	Outbox int
	// ApplyLag is the site's smoothed mirror-apply lag in microseconds
	// (central ingress to replica EDE emission; mirror sites only).
	ApplyLag int
}

// Max returns the component-wise maximum of s and o — the aggregation
// the central decision-maker applies across sites.
func (s Sample) Max(o Sample) Sample {
	if o.Ready > s.Ready {
		s.Ready = o.Ready
	}
	if o.Backup > s.Backup {
		s.Backup = o.Backup
	}
	if o.Pending > s.Pending {
		s.Pending = o.Pending
	}
	if o.WireBytes > s.WireBytes {
		s.WireBytes = o.WireBytes
	}
	if o.Outbox > s.Outbox {
		s.Outbox = o.Outbox
	}
	if o.ApplyLag > s.ApplyLag {
		s.ApplyLag = o.ApplyLag
	}
	return s
}

// sampleWireV1 is the original three-variable encoding; sampleWire is
// the current size. DecodeSample accepts both, so mixed-generation
// sites interoperate: an old sample decodes with the telemetry
// variables zero, and an old decoder reads the leading 12 bytes of a
// new sample unchanged.
const (
	sampleWireV1 = 12
	sampleWire   = 24
)

// EncodeSample serializes s for piggybacking on control events.
func EncodeSample(s Sample) []byte {
	b := make([]byte, sampleWire)
	binary.LittleEndian.PutUint32(b[0:], uint32(s.Ready))
	binary.LittleEndian.PutUint32(b[4:], uint32(s.Backup))
	binary.LittleEndian.PutUint32(b[8:], uint32(s.Pending))
	binary.LittleEndian.PutUint32(b[12:], uint32(s.WireBytes))
	binary.LittleEndian.PutUint32(b[16:], uint32(s.Outbox))
	binary.LittleEndian.PutUint32(b[20:], uint32(s.ApplyLag))
	return b
}

// DecodeSample parses a Sample encoded by EncodeSample, accepting the
// pre-telemetry 12-byte form with the extension variables zeroed.
func DecodeSample(b []byte) (Sample, error) {
	if len(b) < sampleWireV1 {
		return Sample{}, fmt.Errorf("core: sample too short: %d bytes", len(b))
	}
	s := Sample{
		Ready:   int(binary.LittleEndian.Uint32(b[0:])),
		Backup:  int(binary.LittleEndian.Uint32(b[4:])),
		Pending: int(binary.LittleEndian.Uint32(b[8:])),
	}
	if len(b) >= sampleWire {
		s.WireBytes = int(binary.LittleEndian.Uint32(b[12:]))
		s.Outbox = int(binary.LittleEndian.Uint32(b[16:]))
		s.ApplyLag = int(binary.LittleEndian.Uint32(b[20:]))
	}
	return s, nil
}
