package core

import (
	"testing"

	"adaptmirror/internal/vclock"
)

func TestTakeoverAnnouncementRoundTrip(t *testing.T) {
	cases := []TakeoverAnnouncement{
		{Epoch: 1, Addr: "127.0.0.1:7001", Anchor: vclock.VC{40, 12}},
		{Epoch: 3, Addr: "host-a.cluster.internal:9000", Anchor: nil},
		{Epoch: 1 << 40, Addr: "[::1]:7001", Anchor: vclock.VC{0}},
	}
	for _, want := range cases {
		got, err := DecodeTakeoverAnnouncement(want.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Epoch != want.Epoch || got.Addr != want.Addr || got.Anchor.Compare(want.Anchor) != vclock.Equal {
			t.Fatalf("round trip %+v != %+v", got, want)
		}
	}
}

func TestTakeoverAnnouncementRejectsCorruption(t *testing.T) {
	good := TakeoverAnnouncement{Epoch: 2, Addr: "127.0.0.1:7001", Anchor: vclock.VC{9}}.Encode()
	for name, b := range map[string][]byte{
		"empty":       nil,
		"short":       good[:8],
		"version":     append([]byte{99}, good[1:]...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0xAA),
		"addr-length": func() []byte { c := append([]byte(nil), good...); c[9] = 0xFF; c[10] = 0xFF; return c }(),
	} {
		if _, err := DecodeTakeoverAnnouncement(b); err == nil {
			t.Errorf("%s: corrupt announcement decoded without error", name)
		}
	}
}

func TestElectionClaimRoundTrip(t *testing.T) {
	cases := []ElectionClaim{
		{Epoch: 1, Site: 0, Cut: vclock.VC{100, 7}},
		{Epoch: 2, Site: 255, Cut: nil},
	}
	for _, want := range cases {
		got, err := DecodeElectionClaim(want.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Epoch != want.Epoch || got.Site != want.Site || got.Cut.Compare(want.Cut) != vclock.Equal {
			t.Fatalf("round trip %+v != %+v", got, want)
		}
	}
	good := cases[0].Encode()
	if _, err := DecodeElectionClaim(good[:5]); err == nil {
		t.Error("truncated claim decoded without error")
	}
	if _, err := DecodeElectionClaim(append(append([]byte(nil), good...), 1)); err == nil {
		t.Error("claim with trailing bytes decoded without error")
	}
}

// TestElectionClaimBeats pins the election rule: highest committed cut
// wins, ties break to the lowest site ID, and the relation is a strict
// total order over distinct (cut-sum, site) pairs.
func TestElectionClaimBeats(t *testing.T) {
	hi := ElectionClaim{Epoch: 1, Site: 2, Cut: vclock.VC{50, 10}}
	lo := ElectionClaim{Epoch: 1, Site: 0, Cut: vclock.VC{40, 10}}
	if !hi.Beats(lo) || lo.Beats(hi) {
		t.Fatal("higher committed cut must win regardless of site ID")
	}
	a := ElectionClaim{Epoch: 1, Site: 1, Cut: vclock.VC{30}}
	b := ElectionClaim{Epoch: 1, Site: 3, Cut: vclock.VC{10, 20}}
	if !a.Beats(b) || b.Beats(a) {
		t.Fatal("equal cut sums must break toward the lower site ID")
	}
	if a.Beats(a) {
		t.Fatal("a claim must not beat itself")
	}
	none := ElectionClaim{Epoch: 1, Site: 4, Cut: nil}
	if none.Beats(a) || !a.Beats(none) {
		t.Fatal("a nil cut loses to any committed cut")
	}
}
