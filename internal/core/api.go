package core

import "adaptmirror/internal/event"

// This file is the programmer-facing mirroring API of the paper's
// Table 1. Each method corresponds to one API call; all of them may be
// invoked at initialization or dynamically at runtime (directly or by
// the adaptation mechanism).

// SetParams is set_params(c, number, f): coalesce (c) up to number
// events and set checkpointing frequency to f.
func (c *Central) SetParams(coalesce bool, number, f int) {
	c.params.update(func(p *Params) {
		p.Coalesce = coalesce
		p.MaxCoalesce = number
		p.CheckpointFreq = f
	})
}

// GetParams returns the current mirroring parameters.
func (c *Central) GetParams() Params { return c.params.get() }

// SetOverwrite is set_overwrite(t, l): allow overwriting of events of
// type t with a maximum run length of l (one event of each run of l is
// mirrored). l < 2 disables overwriting for t.
func (c *Central) SetOverwrite(t event.Type, l int) { c.sem.SetOverwrite(t, l) }

// SetComplexSeq is set_complex_seq(t1, value, t2): discard events of
// type t2 for a flight after an event of type t1 with the given status
// value has been observed. The paper's example discards FAA position
// updates after a Delta 'flight landed' event:
//
//	c.SetComplexSeq(event.TypeDeltaStatus, event.StatusLanded, event.TypeFAAPosition)
func (c *Central) SetComplexSeq(t1 event.Type, value event.Status, t2 event.Type) {
	c.sem.AddSeqRule(SeqRule{Trigger: t1, TriggerStatus: value, Discard: t2})
}

// SetComplexTuple is set_complex_tuple(t, values, n): combine the n
// events with the given status values into one complex event of type
// out. The paper's example collapses 'flight landed', 'flight at
// runway', and 'flight at gate' into 'flight arrived'.
func (c *Central) SetComplexTuple(values []event.Status, out event.Type) {
	c.sem.AddTupleRule(TupleRule{Statuses: values, Out: out})
}

// SetMirror is set_mirror(func): install a custom mirroring function.
// Custom functions see one event at a time, so the sending task drops
// back to its per-event filter loop; nil restores the default rule
// engine together with its vectorized batch scan.
func (c *Central) SetMirror(fn MirrorFunc) {
	if fn == nil {
		c.setMirrorFns(DefaultMirrorFunc, (*Semantics).FilterBatch)
		return
	}
	c.setMirrorFns(fn, nil)
}

// SetFwd is set_fwd(func): install a custom forwarding function.
func (c *Central) SetFwd(fn FwdFunc) {
	if fn == nil {
		fn = DefaultFwdFunc
	}
	for {
		old := c.fns.Load()
		if c.fns.CompareAndSwap(old, &centralFns{mirror: old.mirror, fwd: fn}) {
			return
		}
	}
}

// AdjustParam is set_adapt(p_id, p)'s effect: modify parameter p_id by
// pct percent (100 = unchanged). The adaptation mechanism invokes it
// when a monitored variable crosses its primary threshold.
func (c *Central) AdjustParam(id Param, pct int) {
	switch id {
	case ParamMaxCoalesce:
		c.params.update(func(p *Params) {
			p.MaxCoalesce = scalePct(p.MaxCoalesce, pct)
		})
	case ParamChkptFreq:
		c.params.update(func(p *Params) {
			p.CheckpointFreq = scalePct(p.CheckpointFreq, pct)
		})
	case ParamOverwriteLen:
		c.sem.ScaleOverwrite(pct)
	}
}

func scalePct(v, pct int) int {
	nv := v * pct / 100
	if nv < 1 {
		nv = 1
	}
	return nv
}

// InstallSelective configures the paper's "selective mirroring"
// function for FAA data: only the most recent event in each sequence
// of up to l overwriting position events is mirrored.
func (c *Central) InstallSelective(l int) {
	c.SetOverwrite(event.TypeFAAPosition, l)
	c.setMirrorFns(DefaultMirrorFunc, (*Semantics).FilterBatch)
}

// InstallSimple reverts to simple mirroring (every event mirrored).
func (c *Central) InstallSimple() {
	c.setMirrorFns(SimpleMirrorFunc, passthroughBatch)
}
