package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// waitProgress polls until the site's main unit has processed at least
// through want.
func waitProgress(t *testing.T, m *MirrorSite, want vclock.VC) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !want.LessEq(m.Main().LastProcessed()) {
		if time.Now().After(deadline) {
			t.Fatalf("mirror stuck at %v, want at least %v", m.Main().LastProcessed(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// excludeMirror kills mirror i's links and drives checkpoint rounds
// until the failure detector removes it.
func excludeMirror(t *testing.T, r *membershipRig, i int) {
	t.Helper()
	r.kill(i)
	for attempt := 0; len(r.member.Failed()) == 0 && attempt < 10; attempt++ {
		r.central.Checkpoint()
		time.Sleep(time.Millisecond)
	}
	if failed := r.member.Failed(); len(failed) != 1 || failed[0] != i {
		t.Fatalf("Failed = %v, want [%d]", failed, i)
	}
}

// TestRejoinMidStorm re-admits a crash-restarted mirror while the feed
// is still running full tilt: the rejoin transfer must serialize
// against the live fan-out so the recovered replica sees every event
// exactly once — snapshot, replay, or post-rejoin fan-out — and ends
// byte-identical to the central state.
func TestRejoinMidStorm(t *testing.T) {
	r := newMembershipRig(t, 2)
	r.central.SetParams(false, 1, 1<<30)
	r.feed(t, 1, 80)
	r.settle()
	excludeMirror(t, r, 1)

	// Crash-restart: the old site's volatile state is gone.
	r.mirrors[1].Close()
	r.mirrors[1] = NewMirrorSite(MirrorSiteConfig{
		SiteID: 1,
		CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
	})
	r.revive(1)

	// Storm: feed concurrently with the rejoin so recovery overlaps
	// live traffic.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(10000); i < 10400; i++ {
			if err := r.central.Ingest(event.NewPosition(event.FlightID(1+i%5), i, float64(i), 0, 0, 24)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if _, err := r.member.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	r.central.Drain()
	want := r.central.Main().LastProcessed()
	for i := range r.mirrors {
		waitProgress(t, r.mirrors[i], want)
	}
	central := r.central.Main().Engine().State().Snapshot()
	for i, m := range r.mirrors {
		if got := m.Main().Engine().State().Snapshot(); !bytes.Equal(got, central) {
			t.Fatalf("mirror %d state diverged after mid-storm rejoin (%d vs %d bytes)",
				i, len(got), len(central))
		}
	}
}

// holdableSender queues control events until released (simulates reply
// latency so a checkpoint round can be held open).
type holdableSender struct {
	mu      sync.Mutex
	holding bool
	held    []*event.Event
	next    senderFunc
}

func (h *holdableSender) Submit(e *event.Event) error {
	h.mu.Lock()
	if h.holding {
		h.held = append(h.held, e)
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()
	return h.next(e)
}

func (h *holdableSender) hold() {
	h.mu.Lock()
	h.holding = true
	h.mu.Unlock()
}

func (h *holdableSender) release() {
	h.mu.Lock()
	held := h.held
	h.held = nil
	h.holding = false
	h.mu.Unlock()
	for _, e := range held {
		_ = h.next(e)
	}
}

// TestRejoinDuringInFlightRound re-admits a mirror while a checkpoint
// round is still open (a live participant's reply is in flight). The
// quorum growth must defer to the next round — the rejoined site never
// saw the open round's CHKPT — so the open round still commits with
// its original quorum and the next round includes everyone. No
// deadlock, no lost round.
func TestRejoinDuringInFlightRound(t *testing.T) {
	r := &membershipRig{}
	hold := &holdableSender{}
	var coreLinks []MirrorLink
	for i := 0; i < 2; i++ {
		i := i
		data := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleData(e); return nil }}
		ctrl := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleControl(e); return nil }}
		r.links = append(r.links, data, ctrl)
		coreLinks = append(coreLinks, MirrorLink{Data: data, Ctrl: ctrl})
	}
	r.central = NewCentral(CentralConfig{Streams: 1, Mirrors: coreLinks})
	hold.next = func(e *event.Event) error { r.central.HandleControl(e); return nil }
	// Mirror 0's replies pass through the holdable sender; mirror 1's
	// go direct.
	r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{SiteID: 0, CtrlUp: hold}))
	r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
		SiteID: 1,
		CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
	}))
	r.member = NewMembership(r.central, MembershipConfig{MissedRounds: 2})
	defer func() {
		r.central.Close()
		for _, m := range r.mirrors {
			m.Close()
		}
	}()

	r.central.SetParams(false, 1, 1<<30)
	r.feed(t, 1, 60)
	r.settle()
	excludeMirror(t, r, 1)
	r.revive(1)

	// Fresh uncommitted traffic so the round has something to propose
	// (the exclusion rounds trimmed the backup clean).
	r.feed(t, 5000, 20)
	r.settle()

	// Open a round and keep it open: mirror 0's reply is held, so the
	// round waits on it (central's own vote arrived synchronously).
	hold.hold()
	if !r.central.Checkpoint() {
		t.Fatal("round did not start")
	}
	_, commitsBefore := r.central.coord.Stats()

	// Rejoin mid-round. This must not deadlock and must not complete
	// the open round (the rejoined site is next-round quorum).
	done := make(chan error, 1)
	go func() {
		_, err := r.member.Rejoin(1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Rejoin deadlocked against the in-flight round")
	}
	if _, commits := r.central.coord.Stats(); commits != commitsBefore {
		t.Fatalf("open round committed during rejoin: %d -> %d", commitsBefore, commits)
	}

	// Release the held reply: the open round commits with its original
	// quorum.
	hold.release()
	if _, commits := r.central.coord.Stats(); commits != commitsBefore+1 {
		t.Fatalf("open round did not commit after release: %d -> %d", commitsBefore, commits)
	}

	// The next round includes the rejoined mirror and commits too.
	r.feed(t, 7000, 20)
	r.settle()
	waitProgress(t, r.mirrors[1], r.central.Backup().Last())
	if !r.central.Checkpoint() {
		t.Fatal("post-rejoin round did not start")
	}
	if _, commits := r.central.coord.Stats(); commits != commitsBefore+2 {
		t.Fatalf("post-rejoin round did not commit: %d -> %d", commitsBefore, commits)
	}
	if err := r.central.Backup().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleRecoveryIdempotent pushes two full recovery transfers at
// the same mirror: the second snapshot reinstalls (not re-applies) and
// the arrival watermark discards the overlapping replay, so nothing is
// double-counted and the replica still matches the central state
// byte-for-byte.
func TestDoubleRecoveryIdempotent(t *testing.T) {
	r := newRigStandalone(1)
	defer r.close()
	r.central.SetParams(false, 1, 1<<30)
	for i := uint64(1); i <= 50; i++ {
		if err := r.central.Ingest(event.NewPosition(event.FlightID(1+i%4), i, float64(i), 1, 2, 24)); err != nil {
			t.Fatal(err)
		}
	}
	r.drainAll()
	r.central.Checkpoint() // commit + trim part of the history

	// A fresh external site, recovered twice over the same link.
	ext := NewMirrorSite(MirrorSiteConfig{})
	defer ext.Close()
	link := senderFunc(func(e *event.Event) error { ext.HandleData(e); return nil })

	if _, err := r.central.RecoverMirror(link); err != nil {
		t.Fatal(err)
	}
	want := r.central.Main().LastProcessed()
	waitProgress(t, ext, want)
	first := ext.Main().Engine().State().Snapshot()
	processedOnce := ext.Processed()

	if _, err := r.central.RecoverMirror(link); err != nil {
		t.Fatal(err)
	}
	waitProgress(t, ext, want)
	ext.Drain()
	second := ext.Main().Engine().State().Snapshot()

	central := r.central.Main().Engine().State().Snapshot()
	if !bytes.Equal(first, central) {
		t.Fatalf("first recovery diverged (%d vs %d bytes)", len(first), len(central))
	}
	if !bytes.Equal(second, central) {
		t.Fatalf("second recovery diverged (%d vs %d bytes)", len(second), len(central))
	}
	if got := ext.Processed(); got > processedOnce {
		t.Fatalf("double recovery re-applied events: processed %d -> %d", processedOnce, got)
	}
}
