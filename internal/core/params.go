package core

import "sync"

// Param identifies a tunable mirroring parameter for set_adapt.
type Param uint8

// Adaptable parameters (paper Section 3.2.2).
const (
	// ParamMaxCoalesce is the maximum number of events coalesced
	// before mirroring.
	ParamMaxCoalesce Param = iota
	// ParamOverwriteLen scales every installed overwrite run length.
	ParamOverwriteLen
	// ParamChkptFreq is the checkpoint frequency in sent events.
	ParamChkptFreq
)

// String names the parameter.
func (p Param) String() string {
	switch p {
	case ParamMaxCoalesce:
		return "max-coalesce"
	case ParamOverwriteLen:
		return "overwrite-len"
	case ParamChkptFreq:
		return "chkpt-freq"
	default:
		return "param(?)"
	}
}

// DefaultCheckpointFreq is the paper's default: checkpoint once per 50
// processed events.
const DefaultCheckpointFreq = 50

// Params are the runtime-tunable knobs of the mirroring process
// (paper Section 3.2.1, parameters (1)-(5)).
type Params struct {
	// Coalesce selects whether events are mirrored independently or
	// multiple events are coalesced before mirroring.
	Coalesce bool
	// MaxCoalesce bounds the number of events coalesced into one.
	MaxCoalesce int
	// CheckpointFreq invokes the checkpoint procedure once per this
	// many mirrored events.
	CheckpointFreq int
}

// withDefaults fills unset fields.
func (p Params) withDefaults() Params {
	if p.MaxCoalesce <= 0 {
		p.MaxCoalesce = 1
	}
	if p.CheckpointFreq <= 0 {
		p.CheckpointFreq = DefaultCheckpointFreq
	}
	return p
}

// paramBox holds Params behind a mutex so the sending and control
// tasks see updates made through the API or by adaptation.
type paramBox struct {
	mu sync.Mutex
	p  Params
}

func newParamBox(p Params) *paramBox {
	return &paramBox{p: p.withDefaults()}
}

func (b *paramBox) get() Params {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p
}

func (b *paramBox) set(p Params) {
	b.mu.Lock()
	b.p = p.withDefaults()
	b.mu.Unlock()
}

// update applies f to the current params atomically.
func (b *paramBox) update(f func(*Params)) {
	b.mu.Lock()
	f(&b.p)
	b.p = b.p.withDefaults()
	b.mu.Unlock()
}
