package core

import (
	"testing"
	"testing/quick"

	"adaptmirror/internal/event"
)

func pos(flight event.FlightID, seq uint64) *event.Event {
	return event.NewPosition(flight, seq, float64(seq), -float64(seq), 10000, 64)
}

func status(flight event.FlightID, seq uint64, s event.Status) *event.Event {
	return event.NewStatus(flight, seq, s, 32)
}

func TestNoRulesPassthrough(t *testing.T) {
	s := NewSemantics()
	for i := uint64(0); i < 10; i++ {
		if s.FilterForMirror(pos(1, i)) == nil {
			t.Fatalf("event %d suppressed with no rules installed", i)
		}
	}
}

func TestOverwriteRuleKeepsOneOfL(t *testing.T) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 10)
	var kept []*event.Event
	for i := uint64(0); i < 40; i++ {
		if e := s.FilterForMirror(pos(1, i)); e != nil {
			kept = append(kept, e)
		}
	}
	if len(kept) != 4 {
		t.Fatalf("kept %d of 40 with L=10, want 4", len(kept))
	}
	// Weight conservation: first kept has weight 1; later kept events
	// carry the preceding discards.
	if kept[0].Weight() != 1 {
		t.Fatalf("first kept weight = %d, want 1", kept[0].Weight())
	}
	for i := 1; i < len(kept); i++ {
		if kept[i].Weight() != 10 {
			t.Fatalf("kept[%d] weight = %d, want 10", i, kept[i].Weight())
		}
	}
}

func TestOverwriteWeightConservation(t *testing.T) {
	// Property: total delivered weight + pending tail = events fed.
	f := func(n8 uint8, l8 uint8) bool {
		n := int(n8%200) + 1
		l := int(l8%15) + 2
		s := NewSemantics()
		s.SetOverwrite(event.TypeFAAPosition, l)
		var total uint64
		for i := 0; i < n; i++ {
			if e := s.FilterForMirror(pos(1, uint64(i))); e != nil {
				total += uint64(e.Weight())
			}
		}
		// The tail of the last run (up to l-1 events) may still be
		// pending attribution.
		return int(total) <= n && int(total) >= n-(l-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverwritePerFlight(t *testing.T) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 5)
	if s.FilterForMirror(pos(1, 0)) == nil || s.FilterForMirror(pos(2, 0)) == nil {
		t.Fatal("first event of each flight must be mirrored")
	}
	if s.FilterForMirror(pos(1, 1)) != nil {
		t.Fatal("second event of flight 1 must be suppressed")
	}
}

func TestSetOverwriteDisable(t *testing.T) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 5)
	s.SetOverwrite(event.TypeFAAPosition, 0)
	if s.OverwriteLen(event.TypeFAAPosition) != 0 {
		t.Fatal("overwrite rule not removed")
	}
	for i := uint64(0); i < 5; i++ {
		if s.FilterForMirror(pos(1, i)) == nil {
			t.Fatal("suppression after rule removal")
		}
	}
}

func TestScaleOverwrite(t *testing.T) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 10)
	s.ScaleOverwrite(200)
	if got := s.OverwriteLen(event.TypeFAAPosition); got != 20 {
		t.Fatalf("scaled length = %d, want 20", got)
	}
	s.ScaleOverwrite(10) // 20*10/100 = 2
	if got := s.OverwriteLen(event.TypeFAAPosition); got != 2 {
		t.Fatalf("scaled length = %d, want 2 (floor)", got)
	}
	s.ScaleOverwrite(1) // would go below 2 → clamped
	if got := s.OverwriteLen(event.TypeFAAPosition); got != 2 {
		t.Fatalf("scaled length = %d, want 2 (clamp)", got)
	}
}

func TestComplexSeqDiscardsAfterTrigger(t *testing.T) {
	// Paper example: FAA updates arriving after 'flight landed' are
	// discarded.
	s := NewSemantics()
	s.AddSeqRule(SeqRule{Trigger: event.TypeDeltaStatus, TriggerStatus: event.StatusLanded, Discard: event.TypeFAAPosition})

	if s.FilterForMirror(pos(1, 0)) == nil {
		t.Fatal("position before landing must pass")
	}
	if s.FilterForMirror(status(1, 1, event.StatusLanded)) == nil {
		t.Fatal("the landed event itself must pass")
	}
	if s.FilterForMirror(pos(1, 2)) != nil {
		t.Fatal("position after landing must be discarded")
	}
	// Other flights unaffected.
	if s.FilterForMirror(pos(2, 0)) == nil {
		t.Fatal("other flight's position wrongly discarded")
	}
	discarded, _ := s.Stats()
	if discarded != 1 {
		t.Fatalf("discarded = %d, want 1", discarded)
	}
}

func TestComplexSeqLaterStatusAlsoTriggers(t *testing.T) {
	// A status beyond the trigger (at-gate > landed) also suppresses.
	s := NewSemantics()
	s.AddSeqRule(SeqRule{Trigger: event.TypeDeltaStatus, TriggerStatus: event.StatusLanded, Discard: event.TypeFAAPosition})
	s.FilterForMirror(status(1, 0, event.StatusAtGate))
	if s.FilterForMirror(pos(1, 1)) != nil {
		t.Fatal("position after at-gate must be discarded")
	}
}

func TestComplexTupleCollapse(t *testing.T) {
	s := NewSemantics()
	tuple := []event.Status{event.StatusLanded, event.StatusAtRunway, event.StatusAtGate}
	s.AddTupleRule(TupleRule{Statuses: tuple, Out: event.TypeFlightArrived})

	if got := s.FilterForMirror(status(1, 0, event.StatusLanded)); got != nil {
		t.Fatalf("component 'landed' must be suppressed, got %s", got)
	}
	if got := s.FilterForMirror(status(1, 1, event.StatusAtRunway)); got != nil {
		t.Fatalf("component 'at-runway' must be suppressed, got %s", got)
	}
	got := s.FilterForMirror(status(1, 2, event.StatusAtGate))
	if got == nil {
		t.Fatal("tuple completion must emit the complex event")
	}
	if got.Type != event.TypeFlightArrived {
		t.Fatalf("complex event type = %s, want flight-arrived", got.Type)
	}
	if got.Weight() != 3 {
		t.Fatalf("complex event weight = %d, want 3", got.Weight())
	}
	// Repeats after collapse are suppressed.
	if s.FilterForMirror(status(1, 3, event.StatusAtGate)) != nil {
		t.Fatal("post-collapse component must be suppressed")
	}
	// Non-tuple statuses pass.
	if s.FilterForMirror(status(1, 4, event.StatusBoarding)) == nil {
		t.Fatal("status outside the tuple must pass")
	}
}

func TestTupleAndSeqCompose(t *testing.T) {
	// With both the paper's rules installed, a full flight lifecycle
	// mirrors only: early positions (1 per run), pre-landing statuses,
	// and one flight-arrived event.
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 10)
	s.AddSeqRule(SeqRule{Trigger: event.TypeDeltaStatus, TriggerStatus: event.StatusLanded, Discard: event.TypeFAAPosition})
	s.AddTupleRule(TupleRule{
		Statuses: []event.Status{event.StatusLanded, event.StatusAtRunway, event.StatusAtGate},
		Out:      event.TypeFlightArrived,
	})

	var mirrored []*event.Event
	feed := func(e *event.Event) {
		if out := s.FilterForMirror(e); out != nil {
			mirrored = append(mirrored, out)
		}
	}
	seq := uint64(0)
	next := func() uint64 { seq++; return seq }
	feed(status(1, next(), event.StatusDeparted))
	for i := 0; i < 25; i++ {
		feed(pos(1, next()))
	}
	feed(status(1, next(), event.StatusLanded))
	for i := 0; i < 5; i++ {
		feed(pos(1, next())) // post-landing: all discarded
	}
	feed(status(1, next(), event.StatusAtRunway))
	feed(status(1, next(), event.StatusAtGate))

	var positions, arrived, statuses int
	for _, e := range mirrored {
		switch e.Type {
		case event.TypeFAAPosition:
			positions++
		case event.TypeFlightArrived:
			arrived++
		case event.TypeDeltaStatus:
			statuses++
		}
	}
	if positions != 3 { // 25 positions, L=10 → 3 kept
		t.Fatalf("positions mirrored = %d, want 3", positions)
	}
	if arrived != 1 {
		t.Fatalf("flight-arrived events = %d, want 1", arrived)
	}
	if statuses != 1 { // only 'departed'; landed/runway/gate collapsed
		t.Fatalf("status events mirrored = %d, want 1", statuses)
	}
}

func TestCoalesceKeepsNewestPerFlight(t *testing.T) {
	s := NewSemantics()
	batch := []*event.Event{pos(1, 1), pos(2, 1), pos(1, 2), pos(1, 3), pos(2, 2)}
	out := s.Coalesce(batch)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d events, want 2", len(out))
	}
	byFlight := map[event.FlightID]*event.Event{}
	for _, e := range out {
		byFlight[e.Flight] = e
	}
	if byFlight[1].Seq != 3 || byFlight[1].Weight() != 3 {
		t.Fatalf("flight 1 survivor = %s", byFlight[1])
	}
	if byFlight[2].Seq != 2 || byFlight[2].Weight() != 2 {
		t.Fatalf("flight 2 survivor = %s", byFlight[2])
	}
}

func TestCoalesceLeavesStatusEventsAlone(t *testing.T) {
	s := NewSemantics()
	batch := []*event.Event{
		status(1, 1, event.StatusBoarding),
		pos(1, 2), pos(1, 3),
		status(1, 4, event.StatusBoarded),
	}
	out := s.Coalesce(batch)
	var statuses, positions int
	for _, e := range out {
		switch e.Type {
		case event.TypeDeltaStatus:
			statuses++
		case event.TypeFAAPosition:
			positions++
		}
	}
	if statuses != 2 {
		t.Fatalf("statuses = %d, want 2 (never coalesced)", statuses)
	}
	if positions != 1 {
		t.Fatalf("positions = %d, want 1", positions)
	}
}

func TestCoalesceSmallBatches(t *testing.T) {
	s := NewSemantics()
	if out := s.Coalesce(nil); len(out) != 0 {
		t.Fatal("nil batch must coalesce to nothing")
	}
	one := []*event.Event{pos(1, 1)}
	if out := s.Coalesce(one); len(out) != 1 || out[0].Seq != 1 {
		t.Fatal("single-event batch must pass through")
	}
}

func TestClearRules(t *testing.T) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 5)
	s.AddSeqRule(SeqRule{Trigger: event.TypeDeltaStatus, TriggerStatus: event.StatusLanded, Discard: event.TypeFAAPosition})
	s.ClearRules()
	s.FilterForMirror(status(1, 0, event.StatusLanded))
	for i := uint64(1); i < 5; i++ {
		if s.FilterForMirror(pos(1, i)) == nil {
			t.Fatal("rules still active after ClearRules")
		}
	}
}

func BenchmarkFilterForMirrorSelective(b *testing.B) {
	s := NewSemantics()
	s.SetOverwrite(event.TypeFAAPosition, 10)
	e := pos(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec := *e
		s.FilterForMirror(&ec)
	}
}

func TestCoalesceWeightConservation(t *testing.T) {
	// Property: coalescing preserves total weight for any interleaving
	// of flights.
	f := func(flights8, n8 uint8) bool {
		flights := int(flights8%6) + 1
		n := int(n8%60) + 1
		s := NewSemantics()
		var batch []*event.Event
		var total uint64
		for i := 0; i < n; i++ {
			e := pos(event.FlightID(1+i%flights), uint64(i))
			total += uint64(e.Weight())
			batch = append(batch, e)
		}
		out := s.Coalesce(batch)
		var got uint64
		for _, e := range out {
			got += uint64(e.Weight())
		}
		if got != total {
			return false
		}
		// At most one survivor per flight.
		return len(out) <= flights
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterThenCoalesceWeightBound(t *testing.T) {
	// Property: chaining overwrite filtering and coalescing never
	// inflates weight beyond the raw event count.
	f := func(n8, l8 uint8) bool {
		n := int(n8%80) + 1
		l := int(l8%10) + 2
		s := NewSemantics()
		s.SetOverwrite(event.TypeFAAPosition, l)
		var filtered []*event.Event
		for i := 0; i < n; i++ {
			if e := s.FilterForMirror(pos(1, uint64(i))); e != nil {
				filtered = append(filtered, e)
			}
		}
		out := s.Coalesce(filtered)
		var got uint64
		for _, e := range out {
			got += uint64(e.Weight())
		}
		return got <= uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
