package core

import (
	"fmt"

	"adaptmirror/internal/event"
	"adaptmirror/internal/statedelta"
	"adaptmirror/internal/vclock"
)

// Recovery support is listed as future work in the paper ("extending
// the mirroring infrastructure with recovery support, for both client
// failures, and failures of a node within the cluster server"); this
// file implements the server-node half: a mirror site that lost state
// (crash, restart) is brought back by replaying the central backup
// queue, which by construction still holds every mirrored event not
// yet covered by a checkpoint commit, preceded by a state transfer
// covering the committed prefix.
//
// The state transfer comes in two modes, negotiated on the rejoiner's
// last committed cut. A rejoiner presenting a cut within the central
// mutation journal's horizon (ede.State.DeltaSince) gets a
// TypeRecoveryDelta: absolute statedelta records for exactly the
// flights that mutated past its cut. Anything else — a crash-restarted
// site with no cut, or a cut older than the journal floor — gets the
// classic TypeRecoveryState full snapshot. Both are followed by the
// backup-queue suffix past the transfer's own cut and converge to the
// same bytes.

// RecoveryMode identifies which state-transfer form a recovery
// snapshot carries.
type RecoveryMode uint8

const (
	// RecoverSnapshot ships the full serialized EDE state.
	RecoverSnapshot RecoveryMode = iota
	// RecoverDelta ships only the flights that mutated past the
	// rejoiner's committed cut, as framed statedelta records.
	RecoverDelta
)

// String names the mode the way the rejoin metrics label it.
func (m RecoveryMode) String() string {
	if m == RecoverDelta {
		return "delta"
	}
	return "snapshot"
}

// RecoverySnapshot is what a rejoining mirror needs: the central EDE
// state (full or delta form), the consistency cut that state
// corresponds to, and the retained backup events past the cut.
// Installing the transfer and applying only events past the cut
// reconstructs a mirror replica exactly.
type RecoverySnapshot struct {
	// Mode selects between State (RecoverSnapshot) and Delta
	// (RecoverDelta) as the transfer body.
	Mode RecoveryMode
	// State is the serialized central EDE state (ede.Snapshot format);
	// nil in delta mode.
	State []byte
	// Delta is a framed statedelta stream holding absolute records for
	// the flights that mutated past the rejoiner's cut; nil in
	// snapshot mode, and empty when nothing mutated at all.
	Delta []byte
	// Cut is the highest event timestamp reflected in State/Delta;
	// events at or before Cut must not be re-applied on top of it.
	Cut vclock.VC
	// Events are the retained backup-queue events past Cut, in
	// timestamp order. The receiving site's arrival watermark discards
	// any overlap.
	Events []*event.Event
	// Directive is the most recent adaptation directive the central
	// piggybacked on a checkpoint round (nil if none yet), and
	// DirectiveRound the round that stamped it. Carrying it in the
	// snapshot lets a rejoining mirror converge on the installed
	// regime immediately instead of waiting for the next transition.
	Directive      []byte
	DirectiveRound uint64
}

// WireBytes is the transfer's payload volume: what the rejoin-bytes
// accounting (and the bench-rejoin scenario) measures.
func (s *RecoverySnapshot) WireBytes() int {
	n := len(s.State) + len(s.Delta) + len(s.Directive)
	for _, e := range s.Events {
		n += len(e.Payload)
	}
	return n
}

// BuildRecovery assembles a full-snapshot recovery transfer (the
// no-negotiation entry point: external links, tooling, rejoiners with
// no usable cut).
func (c *Central) BuildRecovery() RecoverySnapshot {
	return c.BuildRecoverySince(nil)
}

// BuildRecoverySince assembles a recovery transfer for a rejoiner
// whose last committed cut is `cut` (nil when unknown). The state
// body — full snapshot, or journal delta when the cut is within
// horizon — and the transfer's Cut are captured through a main-unit
// barrier, so they are exactly consistent — the state of precisely
// the events the EDE applied before the barrier, stamped with their
// merged timestamp — even while events are flowing. If the main unit
// has already shut down, the pair is read directly (the EDE is
// quiescent then, so the direct read is just as consistent). The
// backup replay is the suffix past the captured Cut in either mode:
// everything at or before it is inside the state body, and the
// receiver's arrival watermark (advanced by the head event's VT)
// would discard it anyway.
func (c *Central) BuildRecoverySince(cut vclock.VC) RecoverySnapshot {
	var snap RecoverySnapshot
	capture := func() {
		st := c.main.Engine().State()
		snap.Cut = c.main.Engine().LastProcessed()
		if recs, ok := st.DeltaSince(cut); ok {
			snap.Mode = RecoverDelta
			if len(recs) > 0 {
				if buf, err := statedelta.EncodeFrame(recs); err == nil {
					snap.Delta = buf
				} else {
					// Unencodable delta (cannot happen with journal-built
					// records, but never ship a broken frame): fall back.
					snap.Mode = RecoverSnapshot
					snap.State = st.Snapshot()
				}
			}
		} else {
			snap.Mode = RecoverSnapshot
			snap.State = st.Snapshot()
		}
	}
	if err := c.main.Barrier(capture); err != nil {
		capture()
	}
	snap.Events = c.backup.SnapshotSince(snap.Cut)
	snap.DirectiveRound, snap.Directive = c.lastDirectiveSnapshot()
	return snap
}

// recoveryEvents flattens a snapshot into the wire sequence pushed to
// a recovering mirror: one head event carrying the state transfer at
// the cut — TypeRecoveryState with the serialized state, or
// TypeRecoveryDelta with the framed record stream (empty when nothing
// mutated; the VT still advances the receiver's watermark) — then
// (when the adaptation loop has distributed one) the current regime
// directive stamped with its round — the receiver's watermark makes
// it idempotent — followed by the backup replay.
func recoveryEvents(snap RecoverySnapshot) []*event.Event {
	events := make([]*event.Event, 0, len(snap.Events)+2)
	head := &event.Event{
		Type:      event.TypeRecoveryState,
		Coalesced: 1,
		VT:        snap.Cut,
		Payload:   snap.State,
	}
	if snap.Mode == RecoverDelta {
		head.Type = event.TypeRecoveryDelta
		head.Payload = snap.Delta
	}
	events = append(events, head)
	if len(snap.Directive) > 0 {
		events = append(events, &event.Event{
			Type:      event.TypeAdapt,
			Coalesced: 1,
			Seq:       snap.DirectiveRound,
			Payload:   snap.Directive,
		})
	}
	return append(events, snap.Events...)
}

// RecoverMirror pushes a full-snapshot recovery transfer to a mirror
// site's data link. It returns the number of events replayed.
//
// This entry point serves external links (a site outside the
// configured mirror set, tests, tooling); re-admitting a configured
// mirror goes through Membership.Rejoin / Membership.RejoinSince,
// which additionally serializes the transfer against the live
// fan-out.
func (c *Central) RecoverMirror(link Sender) (int, error) {
	return c.RecoverMirrorSince(link, nil)
}

// RecoverMirrorSince is RecoverMirror with cut negotiation: the
// rejoiner's last committed cut selects delta or snapshot mode. The
// state transfer travels as a single head event whose payload is the
// state body and whose VT is the consistency cut, followed by the
// backup suffix.
func (c *Central) RecoverMirrorSince(link Sender, cut vclock.VC) (int, error) {
	snap := c.BuildRecoverySince(cut)
	events := recoveryEvents(snap)
	if err := link.Submit(events[0]); err != nil {
		return 0, fmt.Errorf("core: recovery state transfer: %w", err)
	}
	for i, e := range events[1:] {
		if err := link.Submit(e); err != nil {
			return i, fmt.Errorf("core: recovery replay at %d/%d: %w", i, len(snap.Events), err)
		}
	}
	c.noteRejoin(snap)
	return len(snap.Events), nil
}

// recoverMirrorAndReadmit transfers a recovery snapshot to configured
// mirror i through its fan-out sender and atomically re-admits it.
// Holding sendMu across the build + transfer pins the backup queue and
// the outboxes: every event is either inside the state transfer (VT at
// or before the cut), in the backup replay, or fanned out after the
// readmit flip — exactly one of the three, which is what byte-for-byte
// convergence of the recovered replica requires. readmit runs on the
// sender's submission mutex after a successful transfer, before any
// subsequent drained batch can be liveness-checked.
func (c *Central) recoverMirrorAndReadmit(i int, cut vclock.VC, readmit func()) (int, error) {
	if i < 0 || i >= len(c.senders) {
		return 0, fmt.Errorf("core: no fan-out sender for mirror %d", i)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	snap := c.BuildRecoverySince(cut)
	if err := c.senders[i].recoverySend(recoveryEvents(snap), readmit); err != nil {
		return 0, fmt.Errorf("core: recovery transfer to mirror %d: %w", i, err)
	}
	c.noteRejoin(snap)
	return len(snap.Events), nil
}

// noteRejoin books one completed recovery transfer in the rejoin
// accounting (rejoin_mode_total / rejoin_bytes_total).
func (c *Central) noteRejoin(snap RecoverySnapshot) {
	bytes := uint64(snap.WireBytes())
	if snap.Mode == RecoverDelta {
		c.rejoinDeltas.Add(1)
		c.rejoinDeltaBytes.Add(bytes)
	} else {
		c.rejoinSnapshots.Add(1)
		c.rejoinSnapshotBytes.Add(bytes)
	}
}

// RejoinStats reports completed recovery transfers and their payload
// volume, by mode (tests, benchmarks; the same counters back the
// rejoin metrics).
type RejoinStats struct {
	Snapshots     uint64
	Deltas        uint64
	SnapshotBytes uint64
	DeltaBytes    uint64
}

// RejoinStats returns the rejoin transfer counters.
func (c *Central) RejoinStats() RejoinStats {
	return RejoinStats{
		Snapshots:     c.rejoinSnapshots.Load(),
		Deltas:        c.rejoinDeltas.Load(),
		SnapshotBytes: c.rejoinSnapshotBytes.Load(),
		DeltaBytes:    c.rejoinDeltaBytes.Load(),
	}
}

// HandleRecoveryRequest serves a TypeRecoveryRequest control event by
// replaying to the identified mirror link. The requesting site's index
// travels in the event's Seq field; its last committed cut (nil when
// it has none) travels in the event's VT, so the reply is incremental
// whenever the journal can serve it.
func (c *Central) HandleRecoveryRequest(e *event.Event) (int, error) {
	if e.Type != event.TypeRecoveryRequest {
		return 0, fmt.Errorf("core: not a recovery request: %s", e.Type)
	}
	idx := int(e.Seq)
	if idx < 0 || idx >= len(c.cfg.Mirrors) {
		return 0, fmt.Errorf("core: recovery request for unknown mirror %d", idx)
	}
	return c.RecoverMirrorSince(c.cfg.Mirrors[idx].Data, e.VT)
}
