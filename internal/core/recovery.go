package core

import (
	"fmt"

	"adaptmirror/internal/event"
)

// Recovery support is listed as future work in the paper ("extending
// the mirroring infrastructure with recovery support, for both client
// failures, and failures of a node within the cluster server"); this
// file implements the server-node half: a mirror site that lost state
// (crash, restart) is brought back by replaying the central backup
// queue, which by construction still holds every mirrored event not
// yet covered by a checkpoint commit, preceded by a state snapshot
// covering the committed prefix.

// RecoverySnapshot is what a rejoining mirror needs: the central EDE
// state as of now plus the uncommitted backup events. Replaying the
// snapshot then the events (idempotent rules make replay of the
// overlap harmless) reconstructs a mirror replica.
type RecoverySnapshot struct {
	// State is the serialized central EDE state (ede.Snapshot format).
	State []byte
	// Events are the retained backup-queue events in timestamp order.
	Events []*event.Event
}

// BuildRecovery assembles a recovery snapshot for a rejoining mirror.
// The state transfer rides the same epoch-cached snapshot path that
// serves thin-client storms: CachedSnapshot rebuilds any shard
// mutated since the last serve, so the result is as fresh as a direct
// serialization, and a recovery arriving during an init-state storm
// reuses the storm's cached segments instead of re-serializing the
// table.
func (c *Central) BuildRecovery() RecoverySnapshot {
	state, _ := c.main.Engine().State().CachedSnapshot()
	return RecoverySnapshot{
		State:  state,
		Events: c.backup.Snapshot(),
	}
}

// RecoverMirror pushes a recovery snapshot to a mirror site's data
// link: the state snapshot travels as a single TypeStateUpdate event
// whose payload is the serialized state, followed by the backup
// events. It returns the number of events replayed.
func (c *Central) RecoverMirror(link Sender) (int, error) {
	snap := c.BuildRecovery()
	stateEv := &event.Event{
		Type:      event.TypeStateUpdate,
		Coalesced: 1,
		Payload:   snap.State,
	}
	if err := link.Submit(stateEv); err != nil {
		return 0, fmt.Errorf("core: recovery state transfer: %w", err)
	}
	for i, e := range snap.Events {
		if err := link.Submit(e); err != nil {
			return i, fmt.Errorf("core: recovery replay at %d/%d: %w", i, len(snap.Events), err)
		}
	}
	return len(snap.Events), nil
}

// HandleRecoveryRequest serves a TypeRecoveryRequest control event by
// replaying to the identified mirror link. The requesting site's index
// travels in the event's Seq field.
func (c *Central) HandleRecoveryRequest(e *event.Event) (int, error) {
	if e.Type != event.TypeRecoveryRequest {
		return 0, fmt.Errorf("core: not a recovery request: %s", e.Type)
	}
	idx := int(e.Seq)
	if idx < 0 || idx >= len(c.cfg.Mirrors) {
		return 0, fmt.Errorf("core: recovery request for unknown mirror %d", idx)
	}
	return c.RecoverMirror(c.cfg.Mirrors[idx].Data)
}
