package core

import (
	"fmt"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// Recovery support is listed as future work in the paper ("extending
// the mirroring infrastructure with recovery support, for both client
// failures, and failures of a node within the cluster server"); this
// file implements the server-node half: a mirror site that lost state
// (crash, restart) is brought back by replaying the central backup
// queue, which by construction still holds every mirrored event not
// yet covered by a checkpoint commit, preceded by a state snapshot
// covering the committed prefix.

// RecoverySnapshot is what a rejoining mirror needs: the central EDE
// state, the consistency cut that state corresponds to, and the
// retained backup events. Installing the snapshot and applying only
// events past the cut reconstructs a mirror replica exactly.
type RecoverySnapshot struct {
	// State is the serialized central EDE state (ede.Snapshot format).
	State []byte
	// Cut is the highest event timestamp reflected in State; events at
	// or before Cut must not be re-applied on top of it.
	Cut vclock.VC
	// Events are the retained backup-queue events in timestamp order.
	// The range may overlap Cut; the receiving site's arrival
	// watermark discards the overlap.
	Events []*event.Event
	// Directive is the most recent adaptation directive the central
	// piggybacked on a checkpoint round (nil if none yet), and
	// DirectiveRound the round that stamped it. Carrying it in the
	// snapshot lets a rejoining mirror converge on the installed
	// regime immediately instead of waiting for the next transition.
	Directive      []byte
	DirectiveRound uint64
}

// BuildRecovery assembles a recovery snapshot for a rejoining mirror.
// The (State, Cut) pair is captured through a main-unit barrier, so
// it is exactly consistent — the state of precisely the events the
// EDE applied before the barrier, stamped with their merged
// timestamp — even while events are flowing. If the main unit has
// already shut down, the pair is read directly (the EDE is quiescent
// then, so the direct read is just as consistent).
func (c *Central) BuildRecovery() RecoverySnapshot {
	var snap RecoverySnapshot
	capture := func() {
		snap.State = c.main.Engine().State().Snapshot()
		snap.Cut = c.main.Engine().LastProcessed()
	}
	if err := c.main.Barrier(capture); err != nil {
		capture()
	}
	snap.Events = c.backup.Snapshot()
	snap.DirectiveRound, snap.Directive = c.lastDirectiveSnapshot()
	return snap
}

// recoveryEvents flattens a snapshot into the wire sequence pushed to
// a recovering mirror: one TypeRecoveryState event carrying the
// serialized state at the cut, then (when the adaptation loop has
// distributed one) the current regime directive stamped with its
// round — the receiver's watermark makes it idempotent — followed by
// the backup replay.
func recoveryEvents(snap RecoverySnapshot) []*event.Event {
	events := make([]*event.Event, 0, len(snap.Events)+2)
	events = append(events, &event.Event{
		Type:      event.TypeRecoveryState,
		Coalesced: 1,
		VT:        snap.Cut,
		Payload:   snap.State,
	})
	if len(snap.Directive) > 0 {
		events = append(events, &event.Event{
			Type:      event.TypeAdapt,
			Coalesced: 1,
			Seq:       snap.DirectiveRound,
			Payload:   snap.Directive,
		})
	}
	return append(events, snap.Events...)
}

// RecoverMirror pushes a recovery snapshot to a mirror site's data
// link: the state snapshot travels as a single TypeRecoveryState event
// whose payload is the serialized state and whose VT is the
// consistency cut, followed by the backup events. It returns the
// number of events replayed.
//
// This entry point serves external links (a site outside the
// configured mirror set, tests, tooling); re-admitting a configured
// mirror goes through Membership.Rejoin, which additionally serializes
// the transfer against the live fan-out.
func (c *Central) RecoverMirror(link Sender) (int, error) {
	snap := c.BuildRecovery()
	events := recoveryEvents(snap)
	if err := link.Submit(events[0]); err != nil {
		return 0, fmt.Errorf("core: recovery state transfer: %w", err)
	}
	for i, e := range events[1:] {
		if err := link.Submit(e); err != nil {
			return i, fmt.Errorf("core: recovery replay at %d/%d: %w", i, len(snap.Events), err)
		}
	}
	return len(snap.Events), nil
}

// recoverMirrorAndReadmit transfers a recovery snapshot to configured
// mirror i through its fan-out sender and atomically re-admits it.
// Holding sendMu across the build + transfer pins the backup queue and
// the outboxes: every event is either inside the snapshot (VT at or
// before the cut), in the backup replay, or fanned out after the
// readmit flip — exactly one of the three, which is what byte-for-byte
// convergence of the recovered replica requires. readmit runs on the
// sender's submission mutex after a successful transfer, before any
// subsequent drained batch can be liveness-checked.
func (c *Central) recoverMirrorAndReadmit(i int, readmit func()) (int, error) {
	if i < 0 || i >= len(c.senders) {
		return 0, fmt.Errorf("core: no fan-out sender for mirror %d", i)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	snap := c.BuildRecovery()
	if err := c.senders[i].recoverySend(recoveryEvents(snap), readmit); err != nil {
		return 0, fmt.Errorf("core: recovery transfer to mirror %d: %w", i, err)
	}
	return len(snap.Events), nil
}

// HandleRecoveryRequest serves a TypeRecoveryRequest control event by
// replaying to the identified mirror link. The requesting site's index
// travels in the event's Seq field.
func (c *Central) HandleRecoveryRequest(e *event.Event) (int, error) {
	if e.Type != event.TypeRecoveryRequest {
		return 0, fmt.Errorf("core: not a recovery request: %s", e.Type)
	}
	idx := int(e.Seq)
	if idx < 0 || idx >= len(c.cfg.Mirrors) {
		return 0, fmt.Errorf("core: recovery request for unknown mirror %d", idx)
	}
	return c.RecoverMirror(c.cfg.Mirrors[idx].Data)
}
