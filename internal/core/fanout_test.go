package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
)

func tev(seq uint64) *event.Event {
	return &event.Event{Type: event.TypeFAAPosition, Seq: seq, Coalesced: 1, Payload: []byte{1, 2, 3, 4}}
}

// collectSender records every submitted event.
type collectSender struct {
	mu   sync.Mutex
	seqs []uint64
	fail uint64 // Submit of this seq errors (0 = never)
}

func (s *collectSender) Submit(e *event.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != 0 && e.Seq == s.fail {
		return errors.New("collect: injected failure")
	}
	s.seqs = append(s.seqs, e.Seq)
	return nil
}

func (s *collectSender) got() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.seqs...)
}

// nativeBatchSender implements BatchSender directly.
type nativeBatchSender struct{ collectSender }

func (s *nativeBatchSender) SubmitBatch(events []*event.Event) error {
	for _, e := range events {
		if err := s.Submit(e); err != nil {
			return err
		}
	}
	return nil
}

func TestAsBatchSenderAdapterEquivalence(t *testing.T) {
	batch := make([]*event.Event, 10)
	for i := range batch {
		batch[i] = tev(uint64(i + 1))
	}

	// Per-event reference.
	ref := &collectSender{}
	for _, e := range batch {
		if err := ref.Submit(e); err != nil {
			t.Fatal(err)
		}
	}

	// The adapter must deliver the same events in the same order.
	adapted := &collectSender{}
	bs := AsBatchSender(adapted)
	if err := bs.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	want, got := ref.got(), adapted.got()
	if len(want) != len(got) {
		t.Fatalf("adapter delivered %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d: seq %d vs %d", i, got[i], want[i])
		}
	}

	// A native BatchSender passes through unchanged.
	native := &nativeBatchSender{}
	if AsBatchSender(native) != BatchSender(native) {
		t.Fatal("AsBatchSender must return a native BatchSender as-is")
	}

	// The adapter stops at the first per-event error and reports it.
	failing := &collectSender{fail: 4}
	if err := AsBatchSender(failing).SubmitBatch(batch); err == nil {
		t.Fatal("SubmitBatch must surface the per-event error")
	}
	if got := failing.got(); len(got) != 3 {
		t.Fatalf("delivered %d events before the failure, want 3", len(got))
	}
}

func TestLinkSenderOverflowAccounting(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	blocking := senderFunc(func(e *event.Event) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	s := newLinkSender(0, MirrorLink{Data: blocking}, 4, nil, costmodel.Model{}, nil, nil, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go s.run(&wg)

	// First event: picked up by the sender goroutine, which then blocks
	// inside the transport.
	s.enqueue([]*event.Event{tev(1)}, nil)
	<-entered

	// Eight more against a depth-4 ring: the four oldest are shed.
	more := make([]*event.Event, 8)
	for i := range more {
		more[i] = tev(uint64(i + 2))
	}
	s.enqueue(more, nil)
	st := s.stats()
	if st.Enqueued != 9 {
		t.Fatalf("Enqueued = %d, want 9", st.Enqueued)
	}
	if st.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4 (ring depth exceeded)", st.Dropped)
	}
	if st.Depth != 4 || st.MaxDepth != 4 {
		t.Fatalf("Depth/MaxDepth = %d/%d, want 4/4", st.Depth, st.MaxDepth)
	}

	close(release)
	s.close()
	wg.Wait()
	st = s.stats()
	if st.Sent != 5 {
		t.Fatalf("Sent = %d, want 5 (first event + surviving ring)", st.Sent)
	}
	if st.Sent+st.Dropped != st.Enqueued {
		t.Fatalf("Sent(%d) + Dropped(%d) != Enqueued(%d)", st.Sent, st.Dropped, st.Enqueued)
	}
	if st.Stall <= 0 {
		t.Fatal("blocked submission must accumulate stall time")
	}
}

func TestLinkSenderFilterAccounting(t *testing.T) {
	sink := &collectSender{}
	link := MirrorLink{
		Data:   sink,
		Filter: func(e *event.Event) bool { return e.Seq%2 == 0 },
	}
	s := newLinkSender(0, link, 16, nil, costmodel.Model{}, nil, nil, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go s.run(&wg)
	batch := make([]*event.Event, 10)
	for i := range batch {
		batch[i] = tev(uint64(i + 1))
	}
	s.enqueue(batch, nil)
	s.close()
	wg.Wait()
	st := s.stats()
	if st.Sent != 5 || st.Filtered != 5 || st.Dropped != 0 {
		t.Fatalf("Sent/Filtered/Dropped = %d/%d/%d, want 5/5/0", st.Sent, st.Filtered, st.Dropped)
	}
	for _, seq := range sink.got() {
		if seq%2 != 0 {
			t.Fatalf("filter leaked seq %d", seq)
		}
	}
}

// slowBatchSender stalls a fixed time per batch, simulating a shaped
// link, and counts what it receives.
type slowBatchSender struct {
	delay time.Duration
	n     atomic.Uint64
}

func (s *slowBatchSender) Submit(e *event.Event) error {
	return s.SubmitBatch([]*event.Event{e})
}

func (s *slowBatchSender) SubmitBatch(events []*event.Event) error {
	time.Sleep(s.delay)
	s.n.Add(uint64(len(events)))
	return nil
}

func TestSlowLinkDoesNotPerturbMainUnit(t *testing.T) {
	// One fast link and one deliberately slow link (200ms per batch,
	// simnet-shaped latency). With the per-link fan-out pipeline the
	// slow link backs up and sheds its own outbox; the sending task,
	// the fast link, and the local main unit proceed at full speed. The
	// pre-pipeline serial path would stall the whole sending loop on
	// every slow submission: ≥ ceil(5000/64) × 200ms ≈ 16s just in slow
	// link sleeps, on top of the ~100ms of modeled EDE work. The 2s
	// elapsed bound is far below that serial floor but generous against
	// scheduler noise. A virtual CPU paces the stream like every real
	// experiment (bursts bounded to ~8ms ≈ 400 events by the charge
	// ledger, well under the outbox depth), so the fast link
	// demonstrably keeps up while the slow one sheds.
	const events = 5000
	fast := &collectSender{}
	slow := &slowBatchSender{delay: 200 * time.Millisecond}
	model := costmodel.Model{
		EventBase:     20 * time.Microsecond,
		SerializeBase: 2 * time.Microsecond,
		SubmitBase:    3 * time.Microsecond,
	}
	c := NewCentral(CentralConfig{
		Streams: 1,
		Params:  Params{CheckpointFreq: 1 << 30},
		Model:   model,
		CPU:     &costmodel.CPU{},
		Main:    MainConfig{EDE: ede.Config{Model: model}},
		Mirrors: []MirrorLink{
			{Data: fast, Ctrl: senderFunc(func(*event.Event) error { return nil })},
			{Data: slow, Ctrl: senderFunc(func(*event.Event) error { return nil })},
		},
		OutboxDepth: 2048,
	})
	defer c.Close()
	c.InstallSimple()

	start := time.Now()
	for i := uint64(1); i <= events; i++ {
		if err := c.Ingest(tev(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	elapsed := time.Since(start)

	st := c.Stats()
	if st.Forwarded != events {
		t.Fatalf("Forwarded = %d, want %d (main unit must see the full stream)", st.Forwarded, events)
	}
	if got := c.Main().Processed(); got != events {
		t.Fatalf("central EDE processed %d, want %d", got, events)
	}
	links := c.LinkStats()
	if links[0].Sent != events || links[0].Dropped != 0 {
		t.Fatalf("fast link Sent/Dropped = %d/%d, want %d/0", links[0].Sent, links[0].Dropped, events)
	}
	if links[1].Dropped == 0 {
		t.Fatal("slow link must shed its own backlog instead of stalling the pipeline")
	}
	if links[1].Sent+links[1].Dropped != links[1].Enqueued {
		t.Fatalf("slow link Sent(%d) + Dropped(%d) != Enqueued(%d)",
			links[1].Sent, links[1].Dropped, links[1].Enqueued)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("drain took %v; the slow link is perturbing the sending path (serial floor ≈ 16s)", elapsed)
	}
}

func TestSetMirrorSetFwdSwapAtomically(t *testing.T) {
	r := newRig(t, 1, nil)
	r.central.SetFwd(func(e *event.Event) *event.Event { return nil })
	r.central.SetMirror(func(sem *Semantics, e *event.Event) *event.Event { return nil })
	r.feedPositions(t, 2, 10, 16)
	r.central.Drain()
	st := r.central.Stats()
	if st.Forwarded != 0 || st.Mirrored != 0 {
		t.Fatalf("Forwarded/Mirrored = %d/%d, want 0/0 after suppressing functions", st.Forwarded, st.Mirrored)
	}
	// Reset to defaults via nil.
	r.central.SetFwd(nil)
	r.central.SetMirror(nil)
}
