// Package core implements the paper's contribution: the middleware
// mirroring framework. A central site's auxiliary unit runs three
// tasks — receiving, sending, and control (paper Section 3.1) — around
// a ready queue, a backup queue, and a status table. The sending task
// mirrors events to mirror sites and forwards them to the local main
// unit; semantic rules (overwriting, complex sequences, complex
// tuples, coalescing) reduce mirror traffic; the control task runs the
// checkpoint protocol and the adaptation exchange. Mirror sites run a
// reduced auxiliary unit plus an identical main unit (EDE), making
// their application states replicas that can serve client requests.
package core

import (
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/queue"
)

// SeqRule is the set_complex_seq(t1, value, t2) rule: once an event of
// type Trigger with status TriggerStatus has been seen for a flight,
// subsequent events of type Discard for that flight are discarded.
// The paper's example: discard FAA position updates after a Delta
// 'flight landed' event.
type SeqRule struct {
	Trigger       event.Type
	TriggerStatus event.Status
	Discard       event.Type
}

// TupleRule is the set_complex_tuple(types, values, n) rule: once all
// listed statuses have been observed for a flight, they are collapsed
// into a single complex event of type Out, and the component events
// are not mirrored individually. The paper's example: 'flight landed'
// + 'flight at runway' + 'flight at gate' → 'flight arrived'.
type TupleRule struct {
	Statuses []event.Status
	Out      event.Type
}

type weightKey struct {
	flight event.FlightID
	typ    event.Type
}

// Semantics is the application-specific rule engine consulted by the
// sending task when deciding what to mirror. All rule sets can be
// changed at runtime (directly through the Table-1 API or by the
// adaptation mechanism).
type Semantics struct {
	mu        sync.Mutex
	overwrite map[event.Type]int
	seqRules  []SeqRule
	tuples    []TupleRule
	table     *queue.StatusTable

	// pending accumulates the weight of overwritten (discarded)
	// events per (flight, type); the next mirrored event of that key
	// carries the accumulated weight so replica counters converge.
	pending map[weightKey]uint32

	// coalesce is Coalesce's scratch index, retained between calls so
	// the steady-state batch scan allocates nothing. Guarded by mu.
	coalesce map[weightKey]int
}

// NewSemantics returns a rule engine with no rules installed
// (everything is mirrored — the paper's "simple mirroring").
func NewSemantics() *Semantics {
	return &Semantics{
		overwrite: make(map[event.Type]int),
		table:     queue.NewStatusTable(),
		pending:   make(map[weightKey]uint32),
	}
}

// Table exposes the status table (monitored by tests and diagnostics).
func (s *Semantics) Table() *queue.StatusTable { return s.table }

// SetOverwrite installs an overwrite rule: of every run of l events of
// type t per flight, only the first is mirrored. l < 2 removes the
// rule.
func (s *Semantics) SetOverwrite(t event.Type, l int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l < 2 {
		delete(s.overwrite, t)
	} else {
		s.overwrite[t] = l
	}
	s.table.ResetAllRuns()
}

// OverwriteLen returns the current overwrite length for t (0 when
// disabled).
func (s *Semantics) OverwriteLen(t event.Type) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overwrite[t]
}

// ScaleOverwrite multiplies every installed overwrite length by
// pct/100 (minimum 2); used by set_adapt percent adjustments.
func (s *Semantics) ScaleOverwrite(pct int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for t, l := range s.overwrite {
		nl := l * pct / 100
		if nl < 2 {
			nl = 2
		}
		s.overwrite[t] = nl
	}
}

// AddSeqRule installs a complex-sequence rule.
func (s *Semantics) AddSeqRule(r SeqRule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seqRules = append(s.seqRules, r)
}

// AddTupleRule installs a complex-tuple rule.
func (s *Semantics) AddTupleRule(r TupleRule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tuples = append(s.tuples, r)
}

// ClearRules removes all sequence and tuple rules and overwrite
// settings.
func (s *Semantics) ClearRules() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.overwrite = make(map[event.Type]int)
	s.seqRules = nil
	s.tuples = nil
}

// FilterForMirror applies the installed rules to one event and returns
// the event to mirror (possibly transformed) or nil when the event is
// suppressed. The caller must not reuse the input event afterwards.
func (s *Semantics) FilterForMirror(e *event.Event) *event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filterLocked(e)
}

// FilterBatch applies the installed rules to every event of batch under
// a single lock acquisition, compacting survivors in place and
// returning the shortened slice. It is the vectorized equivalent of
// calling FilterForMirror per event; the sending task runs it over the
// packed view batch so the steady-state scan costs one lock and no
// allocations.
func (s *Semantics) FilterBatch(batch []*event.Event) []*event.Event {
	if len(batch) == 0 {
		return batch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := batch[:0]
	for _, e := range batch {
		if kept := s.filterLocked(e); kept != nil {
			out = append(out, kept)
		}
	}
	return out
}

// filterLocked is FilterForMirror's body; caller holds s.mu.
func (s *Semantics) filterLocked(e *event.Event) *event.Event {
	// Track lifecycle state for sequence and tuple rules.
	if e.Type == event.TypeDeltaStatus {
		s.table.ObserveStatus(e.Flight, e.Status)
	}

	// Complex-sequence rules: discard events made obsolete by an
	// observed trigger status.
	for _, r := range s.seqRules {
		if e.Type == r.Discard && s.table.Status(e.Flight) >= r.TriggerStatus {
			s.table.CountDiscard()
			return nil
		}
	}

	// Complex-tuple rules: suppress component statuses; emit the
	// complex event once the tuple completes.
	if e.Type == event.TypeDeltaStatus {
		for _, r := range s.tuples {
			if !statusIn(e.Status, r.Statuses) {
				continue
			}
			if s.table.TryCollapse(e.Flight, r.Statuses) {
				return &event.Event{
					Type:      r.Out,
					Flight:    e.Flight,
					Stream:    e.Stream,
					Seq:       e.Seq,
					Status:    event.StatusArrived,
					Coalesced: uint32(len(r.Statuses)),
					VT:        e.VT,
					Ingress:   e.Ingress,
				}
			}
			// Component suppressed until (or after) the collapse.
			return nil
		}
	}

	// Overwrite rules: mirror the first of each run of l, fold the
	// weight of the discarded remainder into the next mirrored event.
	if l, ok := s.overwrite[e.Type]; ok {
		key := weightKey{e.Flight, e.Type}
		if !s.table.OverwriteTick(e.Flight, e.Type, l) {
			s.pending[key] += e.Weight()
			return nil
		}
		if p := s.pending[key]; p > 0 {
			e.Coalesced = e.Weight() + p
			delete(s.pending, key)
		}
	}
	return e
}

// Coalesce folds a batch of already-filtered events: for each
// (flight, type) group of overwritable types, only the newest event
// survives, carrying the group's total weight. Events of types without
// an overwrite rule pass through untouched. Relative order of
// survivors follows their last occurrence in the batch.
func (s *Semantics) Coalesce(batch []*event.Event) []*event.Event {
	if len(batch) <= 1 {
		return batch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := batch[:0]
	if s.coalesce == nil {
		s.coalesce = make(map[weightKey]int)
	} else {
		clear(s.coalesce)
	}
	last := s.coalesce // key → index in out
	for _, e := range batch {
		if _, overwritable := s.overwrite[e.Type]; !overwritable && e.Type != event.TypeFAAPosition {
			out = append(out, e)
			continue
		}
		key := weightKey{e.Flight, e.Type}
		if i, ok := last[key]; ok {
			e.Coalesced = e.Weight() + out[i].Weight()
			out[i] = nil // superseded
		}
		out = append(out, e)
		last[key] = len(out) - 1
	}
	// Compact superseded slots.
	dst := out[:0]
	for _, e := range out {
		if e != nil {
			dst = append(dst, e)
		}
	}
	return dst
}

// Stats returns the rule engine's discard/combine counters.
func (s *Semantics) Stats() (discarded, combined uint64) {
	return s.table.Stats()
}

func statusIn(st event.Status, set []event.Status) bool {
	for _, s := range set {
		if s == st {
			return true
		}
	}
	return false
}
