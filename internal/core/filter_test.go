package core

import (
	"testing"
	"time"

	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
)

// TestPerMirrorContentFilter exercises the functional-distribution
// path: one full replica mirror plus a weather-analytics site that
// only receives weather events.
func TestPerMirrorContentFilter(t *testing.T) {
	replica := NewMirrorSite(MirrorSiteConfig{SiteID: 0})
	weather := NewMirrorSite(MirrorSiteConfig{
		SiteID: 1,
		Main:   MainConfig{EDE: ede.Config{Rules: ede.ExtendedRules()}},
	})
	defer replica.Close()
	defer weather.Close()

	c := NewCentral(CentralConfig{
		Streams: 1,
		Mirrors: []MirrorLink{
			{
				Data: senderFunc(func(e *event.Event) error { replica.HandleData(e); return nil }),
				Ctrl: senderFunc(func(e *event.Event) error { replica.HandleControl(e); return nil }),
			},
			{
				Data:   senderFunc(func(e *event.Event) error { weather.HandleData(e); return nil }),
				Ctrl:   senderFunc(func(e *event.Event) error { weather.HandleControl(e); return nil }),
				Filter: func(e *event.Event) bool { return e.Type == event.TypeWeather },
			},
		},
	})
	defer c.Close()

	for i := uint64(1); i <= 30; i++ {
		c.Ingest(event.NewPosition(1, i, 0, 0, 0, 32))
	}
	for i := uint64(31); i <= 40; i++ {
		c.Ingest(ede.NewWeather(1, i, 100, 32))
	}
	c.Drain()

	deadline := time.Now().Add(5 * time.Second)
	for replica.Received() < 40 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := replica.Received(); got != 40 {
		t.Fatalf("replica received %d, want 40 (everything)", got)
	}
	for weather.Received() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := weather.Received(); got != 10 {
		t.Fatalf("weather site received %d, want 10 (weather only)", got)
	}
	weather.Drain()
	ws, ok := weather.Main().Engine().State().Weather(1)
	if !ok || ws.Reports != 10 {
		t.Fatalf("weather site state = %+v ok=%v", ws, ok)
	}
}

// TestNICOffloadMovesAuxWork verifies the co-processor split: with an
// AuxCPU configured, mirroring charges land there and the main CPU
// only pays EDE costs.
func TestNICOffloadMovesAuxWork(t *testing.T) {
	mainCPU := &costmodel.CPU{}
	auxCPU := &costmodel.CPU{}
	model := costmodel.Model{
		EventBase:     10 * time.Microsecond,
		SerializeBase: 40 * time.Microsecond, // exaggerated for the assertion
		SubmitBase:    40 * time.Microsecond,
	}
	mirror := NewMirrorSite(MirrorSiteConfig{})
	defer mirror.Close()
	c := NewCentral(CentralConfig{
		Streams: 1,
		Model:   model,
		CPU:     mainCPU,
		AuxCPU:  auxCPU,
		Mirrors: []MirrorLink{{
			Data: senderFunc(func(e *event.Event) error { mirror.HandleData(e); return nil }),
			Ctrl: senderFunc(func(e *event.Event) error { mirror.HandleControl(e); return nil }),
		}},
		Main: MainConfig{EDE: ede.Config{Model: model}},
	})
	defer c.Close()

	start := time.Now()
	const n = 200
	for i := uint64(1); i <= n; i++ {
		c.Ingest(event.NewPosition(1, i, 0, 0, 0, 16))
	}
	c.Drain()
	costmodel.WaitIdle(mainCPU, auxCPU)

	// Main CPU booked ~n×EventBase = 2ms; aux ~n×80µs = 16ms. If the
	// split failed, the main ledger would carry both (~18ms).
	mainBusy := mainCPU.BusyUntil().Sub(start)
	auxBusy := auxCPU.BusyUntil().Sub(start)
	if auxBusy <= mainBusy {
		t.Fatalf("aux ledger (%v) not beyond main (%v): offload ineffective", auxBusy, mainBusy)
	}
	if mainBusy > 10*time.Millisecond {
		t.Fatalf("main CPU carried %v; mirroring work not offloaded", mainBusy)
	}
}
