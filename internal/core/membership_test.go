package core

import (
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/event"
)

// failableLink wraps a sender with a kill switch.
type failableLink struct {
	dead atomic.Bool
	fn   senderFunc
}

func (l *failableLink) Submit(e *event.Event) error {
	if l.dead.Load() {
		return ErrUnitClosed
	}
	return l.fn(e)
}

// membershipRig wires a central with two mirrors whose links can be
// severed.
type membershipRig struct {
	central *Central
	mirrors []*MirrorSite
	links   []*failableLink // data+ctrl per mirror, interleaved
	member  *Membership
}

func newMembershipRig(t *testing.T, missedRounds int) *membershipRig {
	t.Helper()
	r := &membershipRig{}
	var coreLinks []MirrorLink
	for i := 0; i < 2; i++ {
		i := i
		data := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleData(e); return nil }}
		ctrl := &failableLink{fn: func(e *event.Event) error { r.mirrors[i].HandleControl(e); return nil }}
		r.links = append(r.links, data, ctrl)
		coreLinks = append(coreLinks, MirrorLink{Data: data, Ctrl: ctrl})
	}
	r.central = NewCentral(CentralConfig{Streams: 1, Mirrors: coreLinks})
	for i := 0; i < 2; i++ {
		r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
			SiteID: uint8(i),
			CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
		}))
	}
	r.member = NewMembership(r.central, MembershipConfig{MissedRounds: missedRounds})
	t.Cleanup(func() {
		r.central.Close()
		for _, m := range r.mirrors {
			m.Close()
		}
	})
	return r
}

func (r *membershipRig) kill(mirror int) {
	r.links[2*mirror].dead.Store(true)
	r.links[2*mirror+1].dead.Store(true)
}

func (r *membershipRig) revive(mirror int) {
	r.links[2*mirror].dead.Store(false)
	r.links[2*mirror+1].dead.Store(false)
}

func (r *membershipRig) feed(t *testing.T, from, n uint64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := r.central.Ingest(event.NewPosition(event.FlightID(1+i%3), i, 0, 0, 0, 16)); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *membershipRig) settle() {
	// Give the asynchronous pipeline a moment to process.
	deadline := time.Now().Add(5 * time.Second)
	for r.central.ready.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
}

func TestHealthyClusterStaysAdmitted(t *testing.T) {
	r := newMembershipRig(t, 3)
	r.central.SetParams(false, 1, 10)
	r.feed(t, 1, 200)
	r.settle()
	for i := 0; i < 10; i++ {
		r.central.Checkpoint()
	}
	if got := r.member.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
	if failed := r.member.Failed(); len(failed) != 0 {
		t.Fatalf("Failed = %v, want none", failed)
	}
}

func TestDeadMirrorExcludedAndCommitsResume(t *testing.T) {
	r := newMembershipRig(t, 3)
	r.central.SetParams(false, 1, 1<<30) // manual rounds only
	r.feed(t, 1, 100)
	r.settle()

	r.kill(1)
	// Rounds run; mirror 1 never replies. After MissedRounds, it is
	// excluded and rounds complete with the remaining quorum.
	for i := 0; i < 5; i++ {
		r.central.Checkpoint()
		time.Sleep(2 * time.Millisecond)
	}
	if failed := r.member.Failed(); len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", failed)
	}
	if r.member.Live() != 1 {
		t.Fatalf("Live = %d, want 1", r.member.Live())
	}
	// Post-exclusion rounds commit with the healthy quorum, so new
	// traffic keeps being trimmed instead of accumulating forever.
	r.feed(t, 5000, 50)
	r.settle()
	r.central.Checkpoint()
	time.Sleep(2 * time.Millisecond)
	if after := r.central.Backup().Len(); after >= 50 {
		t.Fatalf("backup stuck at %d after exclusion; commits did not resume", after)
	}
}

func TestExcludedMirrorReceivesNoTraffic(t *testing.T) {
	r := newMembershipRig(t, 2)
	r.central.SetParams(false, 1, 1<<30)
	r.feed(t, 1, 50)
	r.settle()
	r.kill(1)
	for i := 0; i < 4; i++ {
		r.central.Checkpoint()
		time.Sleep(time.Millisecond)
	}
	if len(r.member.Failed()) != 1 {
		t.Fatalf("mirror 1 not excluded: %v", r.member.Failed())
	}
	// Revive the link but do NOT rejoin: excluded mirrors get nothing.
	r.revive(1)
	before := r.mirrors[1].Received()
	r.feed(t, 1000, 50)
	r.settle()
	if got := r.mirrors[1].Received(); got != before {
		t.Fatalf("excluded mirror received %d new events", got-before)
	}
	// The live mirror keeps receiving.
	if got := r.mirrors[0].Received(); got < 100 {
		t.Fatalf("live mirror received only %d", got)
	}
}

func TestRejoinRestoresReplicationAndQuorum(t *testing.T) {
	r := newMembershipRig(t, 2)
	r.central.SetParams(false, 1, 1<<30)
	r.feed(t, 1, 60)
	r.settle()
	r.kill(1)
	for i := 0; i < 4; i++ {
		r.central.Checkpoint()
		time.Sleep(time.Millisecond)
	}
	if len(r.member.Failed()) != 1 {
		t.Fatal("mirror 1 not excluded")
	}

	// The mirror comes back: replace it with a fresh site (its state
	// was lost) and rejoin.
	r.mirrors[1].Close()
	r.mirrors[1] = NewMirrorSite(MirrorSiteConfig{
		SiteID: 1,
		CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
	})
	r.revive(1)
	// After the healthy quorum committed, the backup may be fully
	// trimmed — the state snapshot alone then carries recovery, and
	// replayed can legitimately be zero.
	replayed, err := r.member.Rejoin(1)
	if err != nil {
		t.Fatal(err)
	}
	if replayed > 0 && r.mirrors[1].Received() == 0 {
		t.Fatal("replayed events never reached the rejoined mirror")
	}
	if r.member.Live() != 2 {
		t.Fatalf("Live = %d after rejoin, want 2", r.member.Live())
	}

	// New traffic reaches the rejoined mirror again.
	r.feed(t, 2000, 30)
	r.settle()
	deadline := time.Now().Add(5 * time.Second)
	for r.mirrors[1].Processed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.mirrors[1].Processed() == 0 {
		t.Fatal("rejoined mirror processed nothing")
	}
}

func TestRejoinValidation(t *testing.T) {
	r := newMembershipRig(t, 2)
	if _, err := r.member.Rejoin(0); err == nil {
		t.Fatal("rejoining a live mirror must fail")
	}
	if _, err := r.member.Rejoin(9); err == nil {
		t.Fatal("rejoining an unknown mirror must fail")
	}
}

func TestMembershipCallbacks(t *testing.T) {
	var failures, rejoins atomic.Int64
	r := &membershipRig{}
	var coreLinks []MirrorLink
	data := &failableLink{fn: func(e *event.Event) error { r.mirrors[0].HandleData(e); return nil }}
	ctrl := &failableLink{fn: func(e *event.Event) error { r.mirrors[0].HandleControl(e); return nil }}
	r.links = append(r.links, data, ctrl)
	coreLinks = append(coreLinks, MirrorLink{Data: data, Ctrl: ctrl})
	r.central = NewCentral(CentralConfig{Streams: 1, Mirrors: coreLinks})
	r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
		SiteID: 0,
		CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
	}))
	r.member = NewMembership(r.central, MembershipConfig{
		MissedRounds: 1,
		OnFailure:    func(int) { failures.Add(1) },
		OnRejoin:     func(int) { rejoins.Add(1) },
	})
	defer r.central.Close()
	defer r.mirrors[0].Close()

	r.central.SetParams(false, 1, 1<<30)
	r.feed(t, 1, 20)
	r.settle()
	r.kill(0)
	for i := 0; i < 3; i++ {
		r.central.Checkpoint()
		time.Sleep(time.Millisecond)
	}
	if failures.Load() != 1 {
		t.Fatalf("failure callbacks = %d, want 1", failures.Load())
	}
	r.revive(0)
	if _, err := r.member.Rejoin(0); err != nil {
		t.Fatal(err)
	}
	if rejoins.Load() != 1 {
		t.Fatalf("rejoin callbacks = %d, want 1", rejoins.Load())
	}
}
