package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/vclock"
)

// MirrorSiteConfig parameterizes a mirror site.
type MirrorSiteConfig struct {
	// Main configures the site's main unit (EDE replica).
	Main MainConfig
	// Model is the CPU cost model for control-event handling.
	Model costmodel.Model
	// CPU is the mirror node's virtual processor, shared by its
	// auxiliary and main units. Nil spins the real CPU.
	CPU *costmodel.CPU
	// CtrlUp sends control events to the central site (checkpoint
	// replies with piggybacked monitor samples).
	CtrlUp Sender
	// SiteID identifies this mirror at the central site (its index in
	// the central's Mirrors slice); it is stamped into the Stream
	// field of control replies for membership tracking.
	SiteID uint8
	// OnPiggyback, when non-nil, receives adaptation bytes attached to
	// CHKPT events by the central site (or carried by standalone and
	// recovery-snapshot TypeAdapt events), with the checkpoint round
	// that stamped them.
	OnPiggyback func(round uint64, payload []byte)
	// Obs, when non-nil, exports the site's queue depths and counters,
	// labeled with Site (default "mirror<SiteID>").
	Obs  *obs.Registry
	Site string
	// Tracer, when non-nil, receives the site's mirror-apply latencies
	// (central ingress → replica EDE emission).
	Tracer *obs.Tracer
	// Standby arms this site as a warm-standby central: its EDE journals
	// mutations and seals every committed checkpoint cut, so that after
	// Promote the adopted state can serve cut-anchored rejoin deltas to
	// surviving mirrors exactly as the old central did.
	Standby bool
	// StandbyHorizon bounds the standby journal in committed cuts
	// (0 uses ede.DefaultJournalHorizon).
	StandbyHorizon int
}

// MirrorSite is a secondary mirror: its auxiliary unit receives
// mirrored events, retains them in a backup queue until checkpoint
// commit, and forwards them to the local main unit, whose replicated
// state serves client initialization requests.
type MirrorSite struct {
	cfg    MirrorSiteConfig
	ready  *queue.Ready
	backup *queue.Backup
	main   *MainUnit
	aux    *checkpoint.Mirror

	received atomic.Uint64

	// arrivalHigh is the highest event timestamp ever admitted on the
	// data path. The central receiving task stamps a totally ordered
	// timestamp sequence, so anything at or below the watermark has
	// already been seen: re-deliveries — the overlap between a recovery
	// snapshot's cut and its backup replay, or stale fan-out batches
	// drained after a recovery block — are dropped before they touch
	// the backup queue or the EDE. That keeps the backup queue
	// append-ordered and event application exactly-once, which the
	// non-idempotent counting rules (position updates, boardings) need
	// for replicas to converge byte-for-byte.
	dedupMu     sync.Mutex
	arrivalHigh vclock.VC

	// batchMu serializes the owned-batch apply path so its scratch
	// slices survive across the dedupMu window (queue bookings happen
	// after dedupMu is dropped, so dedupMu alone cannot guard them).
	batchMu       sync.Mutex
	scratchBackup []*event.Event
	scratchReady  []*event.Event
	scratchDirs   []*event.Event

	// regime bookkeeping: the adaptation regime installed at this site
	// (via piggybacked directives) — the configuration a promoted
	// replacement central would start from.
	regimeMu        sync.Mutex
	regimeID        uint8
	regimeParams    Params
	regimeOverwrite int

	// lastRound is the highest checkpoint/directive round observed on
	// this site's control path — the watermark a promoted coordinator
	// must restamp rounds above (missed-round failure detection reads
	// it too).
	lastRound atomic.Uint64

	// detached flips when Promote hands the main unit to a new central;
	// Close then leaves the unit alone (its new owner closes it).
	detached atomic.Bool

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewMirrorSite builds and starts a mirror site.
func NewMirrorSite(cfg MirrorSiteConfig) *MirrorSite {
	cfg.Main.EDE.CPU = cfg.CPU
	if cfg.Site == "" {
		cfg.Site = fmt.Sprintf("mirror%d", cfg.SiteID)
	}
	cfg.Main.Obs = cfg.Obs
	cfg.Main.Site = cfg.Site
	cfg.Main.Tracer = cfg.Tracer
	cfg.Main.TraceMirror = true
	cfg.Main.EDE.Obs = cfg.Obs
	cfg.Main.EDE.Site = cfg.Site
	m := &MirrorSite{
		cfg:    cfg,
		ready:  queue.NewReady(0),
		backup: queue.NewBackup(),
		main:   NewMainUnit(cfg.Main),
	}
	if cfg.Standby {
		// Warm standby: journal mutations from the first event so the
		// state adopted at promotion can serve rejoin deltas. Seals are
		// added as this site learns commits (the Commit closure below).
		m.main.Engine().State().EnableJournal(cfg.StandbyHorizon, nil)
	}
	if r := cfg.Obs; r != nil {
		site := obs.L("site", cfg.Site)
		r.Describe("queue_ready_depth", "Ready-queue depth (adaptation-monitored).")
		r.GaugeFunc("queue_ready_depth", func() float64 { return float64(m.ready.Len()) }, site)
		r.Describe("queue_backup_depth", "Backup-queue depth (adaptation-monitored).")
		r.GaugeFunc("queue_backup_depth", func() float64 { return float64(m.backup.Len()) }, site)
		r.Describe("mirror_received_total", "Mirrored events accepted from the central site.")
		r.CounterFunc("mirror_received_total", func() float64 { return float64(m.received.Load()) }, site)
		r.Describe("mirror_apply_lag_micros", "Smoothed mirror-apply lag (central ingress to replica EDE emission), microseconds.")
		r.GaugeFunc("mirror_apply_lag_micros", func() float64 { return float64(m.main.ApplyLagMicros()) }, site)
		r.Describe("checkpoint_trimmed_events_total", "Backup-queue events released by checkpoint commits.")
		r.CounterFunc("checkpoint_trimmed_events_total", func() float64 {
			n, _ := m.backup.Trimmed()
			return float64(n)
		}, site)
		r.Describe("checkpoint_trimmed_bytes_total", "Backup-queue payload bytes released by checkpoint commits.")
		r.CounterFunc("checkpoint_trimmed_bytes_total", func() float64 {
			_, n := m.backup.Trimmed()
			return float64(n)
		}, site)
	}
	mainPart := &checkpoint.Main{
		LastProcessed: m.main.LastProcessed,
	}
	m.aux = &checkpoint.Mirror{
		ToMain: func(e *event.Event) { mainPart.OnControl(e) },
		ToCentral: func(e *event.Event) {
			// Piggyback the site's monitored variables on the reply
			// so central adaptation sees this site's load, and stamp
			// the site identity for membership tracking.
			e.Payload = EncodeSample(m.Sample())
			e.Stream = cfg.SiteID
			if cfg.CtrlUp != nil {
				_ = cfg.CtrlUp.Submit(e)
			}
		},
		Commit: func(ts vclock.VC) {
			m.backup.Commit(ts)
			if cfg.Standby {
				// Every committed cut is a position a survivor may later
				// rejoin the promoted central from.
				m.main.Engine().State().SealCut(ts)
			}
		},
		OnPiggyback: cfg.OnPiggyback,
	}
	// The main unit's checkpoint replies flow back through the aux
	// state machine (Figure 3: main sends chkpt_rep to aux, aux
	// forwards to central).
	mainPart.Reply = func(e *event.Event) { m.aux.OnControl(e) }

	m.wg.Add(1)
	go m.forwardTask()
	return m
}

// Main exposes the site's main unit.
func (m *MirrorSite) Main() *MainUnit { return m.main }

// Backup exposes the site's backup queue.
func (m *MirrorSite) Backup() *queue.Backup { return m.backup }

// isRecoveryTransfer reports whether e carries a recovery state
// transfer — full snapshot or incremental delta. Both replace history
// rather than extend it, so neither belongs in the backup queue.
func isRecoveryTransfer(e *event.Event) bool {
	return e.Type == event.TypeRecoveryState || e.Type == event.TypeRecoveryDelta
}

// admit checks one arriving event against the arrival watermark,
// advancing it on acceptance. Caller holds dedupMu. Unstamped events
// (nil VT — unit tests, out-of-band traffic) bypass the watermark.
//
// Recovery transfers RESET the watermark to their cut instead of
// merging: a transfer re-anchors the whole replica at its consistency
// point, and after a central promotion the new anchor can sit below a
// survivor's watermark (the survivor admitted uncommitted events the
// standby's cut does not cover). Merging would make the survivor
// reject the transfer and then silently dedup the promoted central's
// fresh events, whose resumed clock stamps collide with timestamps the
// survivor has already seen. Resetting is safe: anything at or below
// the new anchor is in the transferred state by construction, replayed
// backup events above it still merge forward, and the failed central's
// in-flight traffic never races the reset because its links are down
// before a promotion starts.
func (m *MirrorSite) admit(e *event.Event) bool {
	if e.VT == nil {
		return true
	}
	if isRecoveryTransfer(e) {
		m.arrivalHigh = e.VT.Clone()
		return true
	}
	if e.VT.LessEq(m.arrivalHigh) {
		return false
	}
	// In-place merge: the watermark owns its backing and never aliases
	// arriving events, so steady-state admission allocates nothing.
	m.arrivalHigh = m.arrivalHigh.MergeInto(e.VT)
	return true
}

// ArrivalHigh returns a copy of the arrival watermark: the highest
// event timestamp admitted on the data path. A promoted central
// resumes its stamping clock from here.
func (m *MirrorSite) ArrivalHigh() vclock.VC {
	m.dedupMu.Lock()
	defer m.dedupMu.Unlock()
	return m.arrivalHigh.Clone()
}

// noteRound advances the observed-round watermark.
func (m *MirrorSite) noteRound(seq uint64) {
	for {
		cur := m.lastRound.Load()
		if seq <= cur || m.lastRound.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// LastRound returns the highest checkpoint or directive round this
// site has observed from the central. A standby monitor polls it to
// detect missed rounds; a promoted coordinator resumes above it.
func (m *MirrorSite) LastRound() uint64 { return m.lastRound.Load() }

// HandleData accepts one mirrored event from the central site.
// Re-delivered events (at or below the arrival watermark) count as
// received but are otherwise dropped; recovery-state events skip the
// backup queue (they are not mirrored history, they replace it);
// adaptation directives (recovery snapshots carry one) go straight to
// the piggyback hook, never near the queues.
func (m *MirrorSite) HandleData(e *event.Event) {
	m.received.Add(1)
	if e.Type == event.TypeAdapt {
		m.noteRound(e.Seq)
		if m.cfg.OnPiggyback != nil && len(e.Payload) > 0 {
			m.cfg.OnPiggyback(e.Seq, e.Payload)
		}
		return
	}
	m.dedupMu.Lock()
	ok := m.admit(e)
	m.dedupMu.Unlock()
	if !ok {
		return
	}
	if isRecoveryTransfer(e) {
		// The transfer re-anchors this replica at its cut: retained
		// backup entries are either covered (inside the state body) or
		// orphans of a dead central's epoch — both go.
		m.backup.Rebase(e.VT)
	} else {
		m.backup.Append(e)
	}
	_ = m.ready.Put(e)
}

// HandleDataBatch accepts a batch of mirrored events, booking the
// backup and ready queues once per batch. The site retains the events,
// not the slice.
func (m *MirrorSite) HandleDataBatch(events []*event.Event) {
	if len(events) == 0 {
		return
	}
	m.received.Add(uint64(len(events)))
	// Common case first: every event admitted, none of them recovery
	// state — the original slice feeds both queues with no copying.
	// On the first exception, fall back to filtered copies.
	toBackup, toReady := events, events
	plain := true
	var directives []*event.Event
	var rebase vclock.VC
	m.dedupMu.Lock()
	for i, e := range events {
		adaptDir := e.Type == event.TypeAdapt
		ok := !adaptDir && m.admit(e)
		if plain && ok && !isRecoveryTransfer(e) {
			continue
		}
		if plain {
			toBackup = append(make([]*event.Event, 0, len(events)), events[:i]...)
			toReady = append(make([]*event.Event, 0, len(events)), events[:i]...)
			plain = false
		}
		if adaptDir {
			m.noteRound(e.Seq)
			directives = append(directives, e)
			continue
		}
		if ok {
			toReady = append(toReady, e)
			if isRecoveryTransfer(e) {
				// The transfer replaces history: everything retained so
				// far — including earlier events in this batch — is
				// covered by its cut or orphaned by it.
				rebase = e.VT
				toBackup = toBackup[:0]
			} else {
				toBackup = append(toBackup, e)
			}
		}
	}
	m.dedupMu.Unlock()
	if rebase != nil {
		m.backup.Rebase(rebase)
	}
	if len(toBackup) > 0 {
		m.backup.AppendBatch(toBackup)
	}
	if len(toReady) > 0 {
		_ = m.ready.PutBatch(toReady)
	}
	if m.cfg.OnPiggyback != nil {
		for _, e := range directives {
			if len(e.Payload) > 0 {
				m.cfg.OnPiggyback(e.Seq, e.Payload)
			}
		}
	}
}

// HandleOwnedBatch accepts a batch of pooled event views borrowing
// from slabs guarded by ref (core.OwnedBatchSender). No payload is
// copied: admitted events enter the backup and ready queues as-is,
// and the backup queue takes a retained reference that it drops when
// a checkpoint commit trims past the batch. That trim is the proof
// the views are dead — the commit cut folds in this site's own
// last-processed reply, so everything trimmed has already cleared the
// ready queue and the EDE. Recovery-state events skip the backup
// queue, so nothing would pin their slab while they wait in ready;
// they are deep-cloned off it (a cold path — recovery only).
// Adaptation directives are applied synchronously while the caller's
// borrow keeps the slab live.
func (m *MirrorSite) HandleOwnedBatch(events []*event.Event, ref event.Ref) error {
	if len(events) == 0 {
		return nil
	}
	m.received.Add(uint64(len(events)))
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	toBackup := m.scratchBackup[:0]
	toReady := m.scratchReady[:0]
	dirs := m.scratchDirs[:0]
	var rebase vclock.VC
	m.dedupMu.Lock()
	for _, e := range events {
		if e.Type == event.TypeAdapt {
			m.noteRound(e.Seq)
			dirs = append(dirs, e)
			continue
		}
		if !m.admit(e) {
			continue
		}
		if isRecoveryTransfer(e) {
			// History replacement: drop what this batch retained so far
			// and rebase the backup below.
			rebase = e.VT
			toBackup = toBackup[:0]
			toReady = append(toReady, e.Clone())
			continue
		}
		toBackup = append(toBackup, e)
		toReady = append(toReady, e)
	}
	m.dedupMu.Unlock()
	if rebase != nil {
		m.backup.Rebase(rebase)
	}
	// Backup first: once the forward task can see an event it must
	// already be backed up, or a crash between the two bookings would
	// lose acknowledged history.
	if len(toBackup) > 0 {
		ref.Retain()
		m.backup.AppendOwnedBatch(toBackup, ref.Release)
	}
	var err error
	if len(toReady) > 0 {
		err = m.ready.PutBatch(toReady)
	}
	if m.cfg.OnPiggyback != nil {
		for _, e := range dirs {
			if len(e.Payload) > 0 {
				m.cfg.OnPiggyback(e.Seq, e.Payload)
			}
		}
	}
	// Zero the scratches so they do not pin retired slabs against the
	// collector between batches. (Anything past len was zeroed by the
	// wider call that wrote it.)
	clear(toBackup)
	clear(toReady)
	clear(dirs)
	m.scratchBackup = toBackup[:0]
	m.scratchReady = toReady[:0]
	m.scratchDirs = dirs[:0]
	return err
}

// HandleControl accepts one control event from the central site.
// CHKPT and COMMIT handling scans the local backup queue (answering
// the proposal, trimming on commit), so their cost grows with the
// site's backlog — the mechanism that makes checkpointing frequency
// matter under load (paper Figure 7).
func (m *MirrorSite) HandleControl(e *event.Event) {
	cost := m.cfg.Model.ControlCost
	if e.Type == event.TypeChkpt || e.Type == event.TypeCommit {
		m.noteRound(e.Seq)
		// Answering a proposal and trimming on commit scan the local
		// backup queue.
		cost += time.Duration(m.backup.Len()) * m.cfg.Model.CheckpointPerBacklog
	}
	m.cfg.CPU.ChargeAsync(cost)
	m.aux.OnControl(e)
}

// forwardTask moves mirrored events from the ready queue to the local
// main unit. Its exit path drains the unit shut — unless the site was
// detached by a promotion, in which case the unit now belongs to the
// adopting central and must keep accepting that central's deliveries.
func (m *MirrorSite) forwardTask() {
	defer m.wg.Done()
	defer func() {
		if !m.detached.Load() {
			m.main.DrainEvents()
		}
	}()
	for {
		e, err := m.ready.Get()
		if err != nil {
			return
		}
		_ = m.main.Deliver(e)
	}
}

// Sample returns the site's monitored variables, including the
// smoothed apply lag the site piggybacks to central adaptation.
func (m *MirrorSite) Sample() Sample {
	return Sample{
		Ready:    m.ready.Len(),
		Backup:   m.backup.Len(),
		Pending:  m.main.PendingRequests(),
		ApplyLag: m.main.ApplyLagMicros(),
	}
}

// SetRegime records the adaptation regime installed at this site: the
// wire ID plus the mirror-relevant parameters. Mirrors do not run the
// sending task, so the parameters are bookkeeping — the configuration
// a promoted replacement central would start from — while the ID
// feeds the per-site adapt_regime_id gauge and the chaos harness's
// regime-convergence invariant.
func (m *MirrorSite) SetRegime(id uint8, p Params, overwriteLen int) {
	m.regimeMu.Lock()
	m.regimeID = id
	m.regimeParams = p
	m.regimeOverwrite = overwriteLen
	m.regimeMu.Unlock()
}

// Regime returns the recorded adaptation regime (zero values until a
// directive has been installed).
func (m *MirrorSite) Regime() (id uint8, p Params, overwriteLen int) {
	m.regimeMu.Lock()
	defer m.regimeMu.Unlock()
	return m.regimeID, m.regimeParams, m.regimeOverwrite
}

// Received returns the number of mirrored events accepted.
func (m *MirrorSite) Received() uint64 { return m.received.Load() }

// Processed returns the weighted number of events applied by the EDE.
func (m *MirrorSite) Processed() uint64 { return m.main.Processed() }

// Drain stops accepting data events and blocks until every received
// event has been processed by the EDE. Control handling and request
// serving stay available until Close.
func (m *MirrorSite) Drain() {
	m.ready.Close()
	m.wg.Wait()
}

// Close drains the site and shuts its main unit down. A site whose
// main unit was adopted by a promoted central (Promote) leaves the
// unit to its new owner.
func (m *MirrorSite) Close() {
	m.closeOnce.Do(func() {
		m.Drain()
		if !m.detached.Load() {
			m.main.Close()
		}
	})
}
