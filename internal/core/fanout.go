package core

import (
	"strconv"
	"sync"
	"time"

	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/obs/linktelem"
)

// This file implements the central site's per-mirror fan-out pipeline.
// The sending task hands each filtered batch to every link's bounded
// outbox ring; a dedicated sender goroutine per link drains its ring
// and submits batches on the wire. A slow or stalled link therefore
// backs up only its own outbox — it can no longer head-of-line-block
// the other mirrors or the local main unit, preserving the paper's
// claim that mirroring does not perturb the central site's event
// processing.

// DefaultSendBatch is the sending task's default batch size (events
// removed from the ready queue per iteration when coalescing is off).
const DefaultSendBatch = 64

// DefaultOutboxDepth is the default per-link outbox capacity in
// events.
const DefaultOutboxDepth = 8192

// LinkStats is a snapshot of one mirror link's fan-out counters.
type LinkStats struct {
	// Enqueued counts events accepted into the link's outbox.
	Enqueued uint64
	// Sent counts events successfully submitted on the link (after
	// the per-link filter).
	Sent uint64
	// SentBytes counts payload bytes successfully submitted on the
	// link (regular batches plus recovery blocks).
	SentBytes uint64
	// Filtered counts events the per-link filter suppressed.
	Filtered uint64
	// Dropped counts events shed on outbox overflow (oldest first).
	Dropped uint64
	// Depth is the current outbox depth; MaxDepth its high-water mark.
	Depth    int
	MaxDepth int
	// Stall is the cumulative wall-clock time the link's sender spent
	// blocked inside transport submission.
	Stall time.Duration
}

// sendGroup tracks the slab release of one enqueued batch while its
// events sit in the outbox ring: left counts the group's events still
// ringed, and release (nil for un-owned batches) must fire once none
// remain anywhere — shed from the ring, or submitted and returned.
type sendGroup struct {
	left    int
	release func()
}

// linkSender owns one mirror link's data path: a bounded outbox ring
// fed by the sending task and a goroutine that drains it.
type linkSender struct {
	idx   int
	link  MirrorLink
	data  BatchSender
	owned OwnedBatchSender // non-nil when link.Data speaks the zero-copy protocol
	aux   *costmodel.CPU
	model costmodel.Model
	alive func(int) bool

	mu     sync.Mutex
	cond   *sync.Cond
	ring   []*event.Event // power-of-two ring
	head   int
	n      int
	closed bool
	groups []sendGroup // FIFO, parallel to ring occupancy

	// ioMu serializes wire submission (send and recoverySend) so a
	// recovery block — state snapshot plus backup replay — cannot
	// interleave with a regular drained batch, and so the liveness flip
	// that readmits a recovered mirror happens atomically with the
	// recovery submission.
	ioMu sync.Mutex

	tracer *obs.Tracer

	enqueued  *metrics.Counter
	sent      *metrics.Counter
	sentBytes *metrics.Counter
	filtered  *metrics.Counter
	dropped   *metrics.Counter
	depth     *metrics.Gauge
	stall     metrics.DurationCounter

	// batchEvents/batchBytes sample each wire submission's event count
	// and payload bytes (value histograms, not durations).
	batchEvents *metrics.Histogram
	batchBytes  *metrics.Histogram
}

// newLinkSender sizes the ring to the next power of two covering
// depth events. Its counters live on reg under link_* families labeled
// by mirror index (a nil reg keeps them as private instruments).
func newLinkSender(idx int, link MirrorLink, depth int, aux *costmodel.CPU, model costmodel.Model, alive func(int) bool, reg *obs.Registry, tracer *obs.Tracer) *linkSender {
	if depth <= 0 {
		depth = DefaultOutboxDepth
	}
	size := 1
	for size < depth {
		size *= 2
	}
	s := &linkSender{
		idx:    idx,
		link:   link,
		data:   AsBatchSender(link.Data),
		aux:    aux,
		model:  model,
		alive:  alive,
		ring:   make([]*event.Event, size),
		tracer: tracer,
	}
	if o, ok := link.Data.(OwnedBatchSender); ok {
		s.owned = o
	}
	mirror := obs.L("mirror", strconv.Itoa(idx))
	s.enqueued = reg.Counter("link_enqueued_total", mirror)
	s.sent = reg.Counter("link_sent_total", mirror)
	s.sentBytes = reg.Counter("link_wire_bytes_total", mirror)
	s.filtered = reg.Counter("link_filtered_total", mirror)
	s.dropped = reg.Counter("link_dropped_total", mirror)
	s.depth = reg.Gauge("link_outbox_depth", mirror)
	s.batchEvents = reg.ValueHistogram("wire_batch_events", mirror)
	s.batchBytes = reg.ValueHistogram("wire_batch_bytes", mirror)
	if reg != nil {
		reg.Describe("link_enqueued_total", "Events accepted into the link outbox.")
		reg.Describe("link_sent_total", "Events submitted on the mirror link.")
		reg.Describe("link_wire_bytes_total", "Payload bytes submitted on the mirror link.")
		reg.Describe("link_filtered_total", "Events suppressed by the per-link filter.")
		reg.Describe("link_dropped_total", "Events shed on outbox overflow.")
		reg.Describe("link_outbox_depth", "Current outbox depth per mirror link.")
		reg.Describe("link_outbox_depth_max", "Outbox depth high-water mark per mirror link (windowed: resets at each telemetry tick).")
		reg.GaugeFunc("link_outbox_depth_max", func() float64 { return float64(s.depth.Max()) }, mirror)
		reg.Describe("link_stall_seconds_total", "Wall-clock time the link sender spent blocked in submission.")
		reg.RegisterDurationCounter("link_stall_seconds_total", &s.stall, mirror)
		reg.Describe("wire_batch_events", "Events per wire batch submission (value summary).")
		reg.Describe("wire_batch_bytes", "Payload bytes per wire batch submission (value summary).")
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue hands a batch to the link, retaining ref (when non-nil) until
// every event of the batch has left the ring — shed, or drained and
// submitted. It never blocks: when the ring is full the oldest queued
// events are shed (and accounted as drops), so a stalled link loses its
// own backlog instead of stalling the sending task. Enqueue after close
// is a no-op and takes no reference.
func (s *linkSender) enqueue(batch []*event.Event, ref event.Ref) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	var rel func()
	if ref != nil {
		ref.Retain()
		rel = ref.Release
	}
	s.groups = append(s.groups, sendGroup{left: len(batch), release: rel})
	mask := len(s.ring) - 1
	dropped := 0
	var fire []func()
	for _, e := range batch {
		if s.n == len(s.ring) {
			s.ring[s.head] = nil
			s.head = (s.head + 1) & mask
			s.n--
			dropped++
			if f := s.shedOldestLocked(); f != nil {
				fire = append(fire, f)
			}
		}
		s.ring[(s.head+s.n)&mask] = e
		s.n++
	}
	depth := s.n
	s.cond.Signal()
	s.mu.Unlock()

	// A group released by shedding has no event anywhere any more — the
	// drainer removes all ring events and all groups atomically, so a
	// group still in s.groups cannot have drained siblings in flight.
	for _, f := range fire {
		f()
	}
	s.enqueued.Add(uint64(len(batch)))
	if dropped > 0 {
		s.dropped.Add(uint64(dropped))
	}
	s.depth.Set(int64(depth))
}

// shedOldestLocked accounts one shed ring event against the oldest
// group and returns its release when the shed was the group's last
// event. Caller holds s.mu.
func (s *linkSender) shedOldestLocked() func() {
	for len(s.groups) > 0 {
		g := &s.groups[0]
		if g.left > 0 {
			g.left--
			if g.left == 0 {
				rel := g.release
				s.groups = s.groups[1:]
				return rel
			}
			return nil
		}
		s.groups = s.groups[1:]
	}
	return nil
}

// close stops accepting events; the sender goroutine drains what is
// already queued, then exits.
func (s *linkSender) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// run is the link's sender goroutine: it drains everything queued in
// one sweep — a link that fell behind catches up with one large batch
// instead of many small ones — and submits it downstream.
func (s *linkSender) run(wg *sync.WaitGroup) {
	defer wg.Done()
	scratch := make([]*event.Event, 0, DefaultSendBatch)
	rels := make([]func(), 0, 8)
	for {
		s.mu.Lock()
		for s.n == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.n == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		mask := len(s.ring) - 1
		scratch = scratch[:0]
		for s.n > 0 {
			scratch = append(scratch, s.ring[s.head])
			s.ring[s.head] = nil
			s.head = (s.head + 1) & mask
			s.n--
		}
		// The drain takes every ring event and every group in one
		// critical section: after this point no group taken here can be
		// decremented by shedding, so send owns their releases.
		rels = rels[:0]
		for _, g := range s.groups {
			if g.release != nil {
				rels = append(rels, g.release)
			}
		}
		s.groups = s.groups[:0]
		s.mu.Unlock()
		s.depth.Set(0)
		s.send(scratch, rels)
	}
}

// send filters, charges, and submits one drained batch. The liveness
// check happens under ioMu so a batch drained while the mirror was
// dead cannot slip onto the wire mid-recovery: either it is dropped
// before the recovery block, or it follows the block entirely (and the
// mirror's arrival watermark discards the stale prefix).
// send owns the drained batch's slab releases (rels): they fire once no
// event of the batch can be referenced downstream any more — after an
// owned submission returns (receivers retained what they keep), or
// immediately when the batch is dropped or filtered to nothing. A plain
// BatchSender receiver may retain the views indefinitely, so that path
// never fires the releases and the slabs are left to the garbage
// collector instead of the pool — correctness over reuse.
func (s *linkSender) send(batch []*event.Event, rels []func()) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if s.alive != nil && !s.alive(s.idx) {
		fireAll(rels)
		return
	}
	if f := s.link.Filter; f != nil {
		kept := batch[:0]
		for _, e := range batch {
			if f(e) {
				kept = append(kept, e)
			}
		}
		s.filtered.Add(uint64(len(batch) - len(kept)))
		batch = kept
	}
	if len(batch) == 0 {
		fireAll(rels)
		return
	}
	bytes := event.BatchPayloadBytes(batch)
	// The submission charge lands on the auxiliary unit's processor:
	// links contend for its ledger exactly as the per-event path did,
	// but the fixed cost is now paid once per batch.
	s.aux.Charge(s.model.SubmitBatchCost(len(batch), bytes))
	s.batchEvents.Record(time.Duration(len(batch)))
	s.batchBytes.Record(time.Duration(bytes))
	start := time.Now()
	var err error
	if s.owned != nil {
		ref := newGroupRef(rels)
		err = s.owned.SubmitOwned(batch, ref)
		ref.Release()
	} else {
		err = s.data.SubmitBatch(batch)
	}
	elapsed := time.Since(start)
	s.stall.Add(elapsed)
	s.tracer.Observe(obs.StageLinkSend, elapsed)
	if err == nil {
		s.sent.Add(uint64(len(batch)))
		s.sentBytes.Add(uint64(bytes))
	}
}

// fireAll invokes every non-nil release.
func fireAll(rels []func()) {
	for _, f := range rels {
		if f != nil {
			f()
		}
	}
}

// recoverySend submits a recovery block — the state-snapshot event
// followed by the backup-queue replay — bypassing the outbox ring, the
// liveness gate, and the per-link filter (a recovering mirror needs
// the full unfiltered history to converge byte-for-byte). readmit,
// when non-nil, runs while ioMu is still held, after a successful
// submission: flipping the mirror alive inside the same critical
// section guarantees no regular batch is dropped between the recovery
// block and the first post-recovery drain.
func (s *linkSender) recoverySend(events []*event.Event, readmit func()) error {
	if len(events) == 0 {
		if readmit != nil {
			s.ioMu.Lock()
			readmit()
			s.ioMu.Unlock()
		}
		return nil
	}
	bytes := 0
	for _, e := range events {
		bytes += len(e.Payload)
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.aux.Charge(s.model.SubmitBatchCost(len(events), bytes))
	start := time.Now()
	err := s.data.SubmitBatch(events)
	s.stall.Add(time.Since(start))
	if err != nil {
		return err
	}
	s.sent.Add(uint64(len(events)))
	s.sentBytes.Add(uint64(bytes))
	if readmit != nil {
		readmit()
	}
	return nil
}

// stats snapshots the link's counters.
func (s *linkSender) stats() LinkStats {
	return LinkStats{
		Enqueued:  s.enqueued.Value(),
		Sent:      s.sent.Value(),
		SentBytes: s.sentBytes.Value(),
		Filtered:  s.filtered.Value(),
		Dropped:   s.dropped.Value(),
		Depth:     int(s.depth.Value()),
		MaxDepth:  int(s.depth.Max()),
		Stall:     s.stall.Value(),
	}
}

// telemSample snapshots the counters the wire-telemetry sampler
// consumes once per checkpoint round. Unlike stats it *takes* the
// outbox high-water mark: each telemetry window reports its own peak,
// so a single historic burst no longer pins VarOutboxDepth high
// forever.
func (s *linkSender) telemSample() linktelem.Sample {
	return linktelem.Sample{
		Bytes:    s.sentBytes.Value(),
		Events:   s.sent.Value(),
		Depth:    int(s.depth.Value()),
		MaxDepth: int(s.depth.TakeMax()),
		Stall:    s.stall.Value(),
	}
}
