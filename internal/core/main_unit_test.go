package core

import (
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/ede"
	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
)

func TestRequestLatencyHistogram(t *testing.T) {
	hist := metrics.NewHistogram(0)
	m := NewMainUnit(MainConfig{RequestHist: hist})
	defer m.Close()
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))

	for i := 0; i < 5; i++ {
		if _, err := m.RequestInitState(); err != nil {
			t.Fatal(err)
		}
	}
	if got := hist.Count(); got != 5 {
		t.Fatalf("request histogram count = %d, want 5", got)
	}
	if hist.Max() < 0 {
		t.Fatalf("negative request latency: %v", hist.Max())
	}
}

func TestRequestStampPrecedesEnqueue(t *testing.T) {
	m := NewMainUnit(MainConfig{})
	defer m.Close()
	before := time.Now()
	r := &InitRequest{Resp: make(chan []byte, 1)}
	if err := m.Request(r); err != nil {
		t.Fatal(err)
	}
	if r.EnqueuedAt.Before(before) || r.EnqueuedAt.After(time.Now()) {
		t.Fatalf("EnqueuedAt = %v not within the Request call", r.EnqueuedAt)
	}
	<-r.Resp
}

func TestSnapshotCacheStatsThroughMainUnit(t *testing.T) {
	m := NewMainUnit(MainConfig{})
	defer m.Close()
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))
	for m.Processed() == 0 {
		time.Sleep(time.Millisecond)
	}

	const requests = 4
	for i := 0; i < requests; i++ {
		if _, err := m.RequestInitState(); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := m.SnapshotCacheStats()
	if hits+misses != requests {
		t.Fatalf("hits+misses = %d+%d, want %d", hits, misses, requests)
	}
	if misses == 0 {
		t.Fatal("first request against a fresh state must miss")
	}
	if hits == 0 {
		t.Fatal("quiet-state storm recorded no cache hits")
	}
}

// TestRequestPoolServesConcurrently floods the pool from many
// goroutines while events keep arriving; every response must be a
// decodable snapshot (the cross-layer storm path, meaningful under
// -race).
func TestRequestPoolServesConcurrently(t *testing.T) {
	m := NewMainUnit(MainConfig{RequestWorkers: 4, RequestBuffer: 1 << 12})
	defer m.Close()
	m.Deliver(event.NewPosition(1, 1, 0, 0, 0, 32))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := 2; f <= 200; f++ {
			m.Deliver(event.NewPosition(event.FlightID(f), uint64(f), 1, 2, 3, 32))
		}
	}()
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				state, err := m.RequestInitState()
				if err != nil {
					errs <- err
					return
				}
				if _, err := ede.DecodeSnapshot(state, 0); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
