package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/obs/linktelem"
	"adaptmirror/internal/queue"
	"adaptmirror/internal/statedelta"
	"adaptmirror/internal/vclock"
)

// MirrorFunc decides, per event, what (if anything) to mirror. The
// default applies the installed semantic rules; set_mirror() replaces
// it (paper Table 1). The function may transform or suppress (return
// nil) the event; it owns the passed event.
type MirrorFunc func(sem *Semantics, e *event.Event) *event.Event

// FwdFunc decides what the local main unit receives for each incoming
// event; set_fwd() replaces the default (identity).
type FwdFunc func(e *event.Event) *event.Event

// DefaultMirrorFunc applies the semantic rule engine.
func DefaultMirrorFunc(sem *Semantics, e *event.Event) *event.Event {
	return sem.FilterForMirror(e)
}

// SimpleMirrorFunc mirrors every event unmodified (the paper's
// "simple mirroring" baseline, ignoring all semantic rules).
func SimpleMirrorFunc(_ *Semantics, e *event.Event) *event.Event { return e }

// DefaultFwdFunc forwards every event unmodified.
func DefaultFwdFunc(e *event.Event) *event.Event { return e }

// MirrorLink is the central site's connection to one mirror site: a
// data channel for mirrored events and a control channel for the
// checkpoint/adaptation protocol. An optional Filter restricts which
// events the site receives — the paper notes that "update events must
// be mirrored both to sites that replicate local state and to sites
// that need such events for functionally different tasks"; a filtered
// link serves the latter (e.g. a weather-analytics site receiving only
// weather events).
type MirrorLink struct {
	Data Sender
	Ctrl Sender
	// Filter, when non-nil, selects the events this site receives;
	// nil mirrors everything.
	Filter func(*event.Event) bool
}

// CentralConfig parameterizes a central site.
type CentralConfig struct {
	// Streams is the number of input streams (the vector timestamp
	// width). Must cover every Stream index used by sources.
	Streams int
	// Params are the initial mirroring parameters (init()).
	Params Params
	// Model is the CPU cost model charged on the mirroring path.
	Model costmodel.Model
	// CPU is the central node's virtual processor, shared by the
	// auxiliary unit's tasks and the main unit's EDE. Nil spins the
	// real CPU for charges.
	CPU *costmodel.CPU
	// AuxCPU, when non-nil, hosts the auxiliary unit's mirroring and
	// checkpointing work on its own processor — the paper's planned
	// network-co-processor split ("splitting the functionality of the
	// 'auxiliary' units between a host node and a NI-resident
	// processing unit"). Nil keeps everything on CPU.
	AuxCPU *costmodel.CPU
	// Main configures the central main unit (EDE).
	Main MainConfig
	// Mirrors are the links to the mirror sites.
	Mirrors []MirrorLink
	// NoMirror disables the mirroring path entirely (the "no
	// mirroring" baseline of Figure 4): events are only forwarded to
	// the local main unit.
	NoMirror bool
	// IngestBuffer bounds the inbound raw-event buffer (default 8192).
	IngestBuffer int
	// SendBatch bounds how many ready events the sending task removes
	// per iteration when coalescing is off (default DefaultSendBatch).
	// When coalescing is on, MaxCoalesce bounds the batch instead, so
	// a coalesced event never represents more raw events than the
	// configured limit.
	SendBatch int
	// OutboxDepth bounds each mirror link's outbox ring in events
	// (default DefaultOutboxDepth). When a link stalls long enough to
	// fill its ring, the oldest queued events are shed and accounted
	// in LinkStats — the slow site degrades alone.
	OutboxDepth int
	// DeltaHorizon is how many committed checkpoint cuts the central
	// EDE's mutation journal retains for incremental mirror rejoin
	// (0 uses ede.DefaultJournalHorizon). A rejoiner whose committed
	// cut falls within the horizon receives only the flights that
	// mutated past it; older or unknown cuts fall back to the full
	// snapshot. Negative disables journaling entirely.
	DeltaHorizon int
	// OnMirrorSample, when non-nil, receives the monitored-variable
	// samples mirror sites piggyback on their checkpoint replies,
	// together with the reporting site's index (the reply's Stream).
	// The adaptation controller keys its per-site last-sample table on
	// it, so N-1 idle mirrors cannot revert the regime while one site
	// is still overloaded.
	OnMirrorSample func(site int, s Sample)
	// Obs, when non-nil, is the registry the site's instruments are
	// exported through (queue depths, fan-out counters, checkpoint
	// rounds). Site labels every series.
	Obs *obs.Registry
	// Site is the label value identifying this site on Obs (default
	// "central").
	Site string
	// Tracer, when non-nil, receives event-lifecycle stage latencies:
	// the sending task stamps ready/forward instants on each event and
	// the fan-out and checkpoint paths record their stages.
	Tracer *obs.Tracer
	// Resume, when non-nil, builds this central as the warm-standby
	// promotion of a failed one: the site adopts the standby mirror's
	// main unit (EDE state, mutation journal, processed watermark),
	// seeds its backup queue with the standby's retained events past
	// the last committed cut, resumes the stamping clock past every
	// event the standby admitted, restamps checkpoint rounds above the
	// old central's watermark, and restores the last adaptation
	// directive for idempotent re-broadcast. See MirrorSite.Promote.
	Resume *ResumeState
}

// Central is the central site: the primary mirror. Its auxiliary unit
// runs the receiving, sending, and control tasks; its main unit runs
// the EDE and emits state updates to regular clients.
type Central struct {
	cfg    CentralConfig
	sem    *Semantics
	params *paramBox
	ready  *queue.Ready
	backup *queue.Backup
	main   *MainUnit
	coord  *checkpoint.Coordinator

	ingestMu     sync.RWMutex
	in           chan *event.Event
	ingestClosed bool

	// fns holds the installed mirroring and forwarding functions; an
	// atomic pointer lets the sending task load them without taking a
	// lock on every batch.
	fns atomic.Pointer[centralFns]

	// senders are the per-mirror-link fan-out pipelines (nil when
	// NoMirror is set).
	senders  []*linkSender
	senderWG sync.WaitGroup

	// telem smooths the senders' cumulative counters into per-round
	// wire telemetry, ticked once per checkpoint round (nil when
	// NoMirror is set). It backs the VarWireBytes / VarOutboxDepth
	// monitored variables and the link_wire_* gauge families.
	telem *linktelem.Sampler

	// sendMu makes the backup-queue append and the outbox fan-out of a
	// batch atomic with respect to mirror recovery: a recovery snapshot
	// taken under sendMu sees either none or all of a batch, so the
	// snapshot + backup replay + post-readmit fan-out covers every
	// mirrored event exactly once.
	sendMu sync.Mutex

	piggyMu   sync.Mutex
	piggyback func() []byte
	// lastDirective/lastDirectiveRound retain the most recent
	// piggybacked adaptation directive and the checkpoint round that
	// carried it, for recovery snapshots and standalone re-broadcast.
	lastDirective      []byte
	lastDirectiveRound uint64

	chkptTrigger chan struct{}
	ctrlStop     chan struct{}

	memberMu   sync.Mutex
	membership *Membership

	received  atomic.Uint64
	mirrored  atomic.Uint64 // events sent to each mirror (per-mirror count)
	mirroredW atomic.Uint64 // weighted raw events represented by mirrored ones
	forwarded atomic.Uint64
	sinceCk   atomic.Uint64

	// fieldDeltas, when set, makes the sending task rewrite mirrored
	// data events into framed per-flight field deltas (the field-delta
	// mirroring regime, adapt.Regime.FieldDeltas).
	fieldDeltas atomic.Bool

	// Rejoin transfer accounting, by recovery mode (recovery.go).
	rejoinSnapshots     atomic.Uint64
	rejoinDeltas        atomic.Uint64
	rejoinSnapshotBytes atomic.Uint64
	rejoinDeltaBytes    atomic.Uint64

	// Promotion provenance (immutable after construction): the epoch
	// this central stamps rounds in (0 for an original central), how
	// many promotions it performed (1 when built from a ResumeState),
	// and how many backup-queue events the promotion replayed.
	epoch             uint64
	promotions        uint64
	promotionReplayed uint64

	pipeWG    sync.WaitGroup // receiving + sending tasks
	ctrlWG    sync.WaitGroup // control task
	drainOnce sync.Once
	closeOnce sync.Once
}

// NewCentral builds and starts a central site.
func NewCentral(cfg CentralConfig) *Central {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.IngestBuffer <= 0 {
		cfg.IngestBuffer = 8192
	}
	if cfg.AuxCPU == nil {
		cfg.AuxCPU = cfg.CPU
	}
	if cfg.SendBatch <= 0 {
		cfg.SendBatch = DefaultSendBatch
	}
	if cfg.OutboxDepth <= 0 {
		cfg.OutboxDepth = DefaultOutboxDepth
	}
	// The main unit shares the central node's processor, and its
	// inbound queue back-pressures the sending task so the auxiliary
	// unit cannot run unboundedly ahead of the EDE (on a real node
	// the two contend for the same cycles).
	cfg.Main.EDE.CPU = cfg.CPU
	if cfg.Main.QueueCap == 0 {
		cfg.Main.QueueCap = 8
	}
	if cfg.Site == "" {
		cfg.Site = "central"
	}
	cfg.Main.Obs = cfg.Obs
	cfg.Main.Site = cfg.Site
	cfg.Main.Tracer = cfg.Tracer
	cfg.Main.EDE.Obs = cfg.Obs
	cfg.Main.EDE.Site = cfg.Site
	c := &Central{
		cfg:    cfg,
		sem:    NewSemantics(),
		params: newParamBox(cfg.Params),
		ready:  queue.NewReady(0),
		backup: queue.NewBackup(),
		in:     make(chan *event.Event, cfg.IngestBuffer),
		// Deep buffer: the sending task can mirror hundreds of events
		// between scheduler yields, and every earned checkpoint round
		// must eventually run (frequency is defined in events, not
		// wall time).
		chkptTrigger: make(chan struct{}, 4096),
		ctrlStop:     make(chan struct{}),
	}
	if res := cfg.Resume; res != nil && res.Main != nil {
		// Promotion: adopt the standby's main unit whole. Its EDE state
		// already holds every event the standby processed, its
		// lastProcessed watermark keeps checkpoint votes honest (a fresh
		// unit would vote zero progress and let a commit regress below
		// the adopted state), and its mutation journal — sealed at the
		// cluster's committed cuts — keeps serving rejoin deltas to
		// survivors.
		c.main = res.Main
	} else {
		c.main = NewMainUnit(cfg.Main)
	}
	c.fns.Store(&centralFns{mirror: DefaultMirrorFunc, fwd: DefaultFwdFunc, batch: (*Semantics).FilterBatch})
	if cfg.DeltaHorizon >= 0 && !c.main.Engine().State().JournalEnabled() {
		// The mutation journal starts covering now (nil watermark =
		// everything from the first event), sealing one entry per
		// committed checkpoint cut via the coordinator's OnCommit. An
		// adopted standby main unit usually arrives with its journal
		// already on (and its history intact); one promoted from a
		// non-standby mirror starts covering at its processed watermark.
		since := vclock.VC(nil)
		if cfg.Resume != nil && cfg.Resume.Main != nil {
			since = c.main.LastProcessed()
		}
		c.main.Engine().State().EnableJournal(cfg.DeltaHorizon, since)
	}
	if res := cfg.Resume; res != nil {
		c.epoch = res.Epoch
		c.promotions = 1
		c.promotionReplayed = uint64(len(res.Events))
		// Replay the standby's backup queue from the last committed cut:
		// the committed watermark carries over so cut numbering never
		// regresses, and the retained suffix (every event past the cut)
		// re-enters the queue for future rounds to commit and trim. The
		// events need no re-fan-out — their effects are already in the
		// adopted state, which survivor rejoin transfers carry over.
		if res.Cut != nil {
			c.backup.Commit(res.Cut)
		}
		for _, e := range res.Events {
			c.backup.Append(e)
		}
		if len(res.Directive) > 0 {
			c.lastDirective = append([]byte(nil), res.Directive...)
			c.lastDirectiveRound = res.DirectiveRound
		}
	}
	if !cfg.NoMirror {
		for i, m := range cfg.Mirrors {
			c.senders = append(c.senders,
				newLinkSender(i, m, cfg.OutboxDepth, cfg.AuxCPU, cfg.Model, c.mirrorAlive, cfg.Obs, cfg.Tracer))
		}
		for _, s := range c.senders {
			c.senderWG.Add(1)
			go s.run(&c.senderWG)
		}
		c.telem = linktelem.New(len(c.senders))
		c.telem.Register(cfg.Obs)
	}

	// The central main unit participates in checkpointing directly:
	// CHKPT events reach it through Broadcast and its replies go
	// straight back to the coordinator.
	mainPart := &checkpoint.Main{
		LastProcessed: c.main.LastProcessed,
		Reply: func(e *event.Event) {
			// The reserved participant identity keeps the central vote
			// distinct from mirror 0's in the coordinator's per-site
			// reply accounting (mirrors stamp their SiteID).
			e.Stream = checkpoint.CentralParticipant
			c.coord.OnReply(e)
		},
	}
	c.coord = &checkpoint.Coordinator{
		Propose: func() vclock.VC { return c.backup.Last() },
		Broadcast: func(e *event.Event) {
			for i, m := range cfg.Mirrors {
				if !c.mirrorAlive(i) {
					continue
				}
				_ = m.Ctrl.Submit(e.Clone())
			}
			mainPart.OnControl(e.Clone())
		},
		OnCommit: func(ts vclock.VC) {
			c.backup.Commit(ts)
			// Each committed cut is a position a mirror may later rejoin
			// from; seal it with the mutation journal so the delta plane
			// can serve exactly the suffix past it.
			c.main.Engine().State().SealCut(ts)
		},
		Participants: len(cfg.Mirrors) + 1,
		Piggyback:    c.takePiggyback,
	}
	if res := cfg.Resume; res != nil {
		// Rounds restart strictly above both the promotion epoch's base
		// and everything the standby saw the old central stamp, so
		// survivor-side directive watermarks accept the new central's
		// directives and stragglers addressed to the old coordinator
		// are rejected by the floor.
		floor := checkpoint.EpochBase(res.Epoch)
		if res.RoundFloor > floor {
			floor = res.RoundFloor
		}
		c.coord.Resume(floor)
	}
	c.registerMetrics()
	if cfg.Resume != nil {
		c.primeTelemetry()
	}

	c.pipeWG.Add(2)
	go c.receivingTask()
	go c.sendingTask()
	c.ctrlWG.Add(1)
	go c.controlTask()
	return c
}

// registerMetrics exposes the site's counters, queue depths, and
// checkpoint instrumentation on the configured registry. With no
// registry the only cost is a nil RoundLatency hook.
func (c *Central) registerMetrics() {
	r := c.cfg.Obs
	tracer := c.cfg.Tracer
	if r != nil {
		site := obs.L("site", c.cfg.Site)
		r.Describe("central_received_total", "Raw events admitted by the receiving task.")
		r.CounterFunc("central_received_total", func() float64 { return float64(c.received.Load()) }, site)
		r.Describe("central_forwarded_total", "Events delivered to the central main unit.")
		r.CounterFunc("central_forwarded_total", func() float64 { return float64(c.forwarded.Load()) }, site)
		r.Describe("central_mirrored_total", "Events handed to the mirror fan-out.")
		r.CounterFunc("central_mirrored_total", func() float64 { return float64(c.mirrored.Load()) }, site)
		r.Describe("central_mirrored_weight_total", "Raw events represented by mirrored ones.")
		r.CounterFunc("central_mirrored_weight_total", func() float64 { return float64(c.mirroredW.Load()) }, site)
		r.Describe("queue_ready_depth", "Ready-queue depth (adaptation-monitored).")
		r.GaugeFunc("queue_ready_depth", func() float64 { return float64(c.ready.Len()) }, site)
		r.Describe("queue_backup_depth", "Backup-queue depth (adaptation-monitored).")
		r.GaugeFunc("queue_backup_depth", func() float64 { return float64(c.backup.Len()) }, site)
		r.Describe("checkpoint_rounds_total", "Checkpoint rounds initiated.")
		r.CounterFunc("checkpoint_rounds_total", func() float64 {
			rounds, _ := c.coord.Stats()
			return float64(rounds)
		}, site)
		r.Describe("checkpoint_commits_total", "Checkpoint rounds committed.")
		r.CounterFunc("checkpoint_commits_total", func() float64 {
			_, commits := c.coord.Stats()
			return float64(commits)
		}, site)
		r.Describe("checkpoint_trimmed_events_total", "Backup-queue events released by checkpoint commits.")
		r.CounterFunc("checkpoint_trimmed_events_total", func() float64 {
			n, _ := c.backup.Trimmed()
			return float64(n)
		}, site)
		r.Describe("checkpoint_trimmed_bytes_total", "Backup-queue payload bytes released by checkpoint commits.")
		r.CounterFunc("checkpoint_trimmed_bytes_total", func() float64 {
			_, n := c.backup.Trimmed()
			return float64(n)
		}, site)
		r.Describe("rejoin_mode_total", "Completed mirror recovery transfers by state-transfer mode.")
		r.CounterFunc("rejoin_mode_total",
			func() float64 { return float64(c.rejoinSnapshots.Load()) }, site, obs.L("mode", "snapshot"))
		r.CounterFunc("rejoin_mode_total",
			func() float64 { return float64(c.rejoinDeltas.Load()) }, site, obs.L("mode", "delta"))
		r.Describe("rejoin_bytes_total", "Recovery-transfer payload bytes shipped, by state-transfer mode.")
		r.CounterFunc("rejoin_bytes_total",
			func() float64 { return float64(c.rejoinSnapshotBytes.Load()) }, site, obs.L("mode", "snapshot"))
		r.CounterFunc("rejoin_bytes_total",
			func() float64 { return float64(c.rejoinDeltaBytes.Load()) }, site, obs.L("mode", "delta"))
		r.Describe("statedelta_journal_flights", "Flights tracked by the central mutation journal.")
		r.GaugeFunc("statedelta_journal_flights",
			func() float64 { return float64(c.main.Engine().State().JournalFlights()) }, site)
		r.Describe("promotion_total", "Warm-standby promotions this central performed (1 when it took over from a failed central).")
		r.CounterFunc("promotion_total", func() float64 { return float64(c.promotions) }, site)
		r.Describe("promotion_replayed_events_total", "Backup-queue events replayed from the last committed cut during promotion.")
		r.CounterFunc("promotion_replayed_events_total", func() float64 { return float64(c.promotionReplayed) }, site)
		r.Describe("central_epoch", "Promotion epoch this central stamps checkpoint rounds in (0 = original central).")
		r.GaugeFunc("central_epoch", func() float64 { return float64(c.epoch) }, site)
	}
	roundHist := r.Histogram("checkpoint_round_seconds", obs.L("site", c.cfg.Site))
	if r != nil {
		r.Describe("checkpoint_round_seconds", "CHKPT to COMMIT latency per checkpoint round.")
	}
	if r != nil || tracer != nil {
		c.coord.RoundLatency = func(d time.Duration) {
			roundHist.Record(d)
			tracer.Observe(obs.StageChkptCommit, d)
		}
	}
}

// Main exposes the central main unit.
func (c *Central) Main() *MainUnit { return c.main }

// Semantics exposes the rule engine (for the Table-1 API and tests).
func (c *Central) Semantics() *Semantics { return c.sem }

// Ingest accepts one raw event from a source stream. The event's
// Stream field selects its vector-timestamp component.
func (c *Central) Ingest(e *event.Event) error {
	c.ingestMu.RLock()
	defer c.ingestMu.RUnlock()
	if c.ingestClosed {
		return ErrUnitClosed
	}
	c.in <- e
	return nil
}

// receivingTask timestamps incoming events and places them on the
// ready queue (paper Section 3.1).
func (c *Central) receivingTask() {
	defer c.pipeWG.Done()
	clock := vclock.New(c.cfg.Streams)
	if res := c.cfg.Resume; res != nil {
		// Resume stamping past every event the standby admitted: reusing
		// an old stamp would make surviving mirrors' dedup watermarks
		// silently drop the promoted central's fresh events.
		for i := 0; i < len(clock) && i < len(res.Clock); i++ {
			clock[i] = res.Clock[i]
		}
	}
	for e := range c.in {
		clock = clock.Tick(int(e.Stream))
		e.VT = clock.Clone()
		e.Ingress = time.Now().UnixNano()
		if e.Coalesced == 0 {
			e.Coalesced = 1
		}
		c.received.Add(1)
		if c.ready.Put(e) != nil {
			return
		}
	}
	c.ready.Close()
}

// centralFns bundles the installed mirroring and forwarding
// functions so both can be swapped atomically. batch, when non-nil, is
// the vectorized form of mirror — it filters a whole view batch under
// one rule-engine lock with in-place compaction. It is set for the
// built-in mirror functions; a custom set_mirror function clears it
// and the sending task falls back to the per-event loop.
type centralFns struct {
	mirror MirrorFunc
	fwd    FwdFunc
	batch  func(*Semantics, []*event.Event) []*event.Event
}

// passthroughBatch is SimpleMirrorFunc's vectorized form: every event
// is mirrored unmodified.
func passthroughBatch(_ *Semantics, batch []*event.Event) []*event.Event { return batch }

// setMirrorFns atomically installs a mirror function together with its
// vectorized companion (nil for custom functions), preserving the
// installed forwarding function.
func (c *Central) setMirrorFns(fn MirrorFunc, batch func(*Semantics, []*event.Event) []*event.Event) {
	for {
		old := c.fns.Load()
		if c.fns.CompareAndSwap(old, &centralFns{mirror: fn, fwd: old.fwd, batch: batch}) {
			return
		}
	}
}

// sendingTask removes events from the ready queue in batches, forwards
// them to the main unit, applies the mirroring function, hands each
// surviving batch to every mirror link's outbox, stores it in the
// backup queue, and triggers checkpoints at the configured frequency.
func (c *Central) sendingTask() {
	defer c.pipeWG.Done()
	defer c.main.DrainEvents()
	defer c.closeSenders()
	if c.cfg.NoMirror {
		// Baseline fast path: no mirroring parameters, no filter, no
		// backup, no checkpoint accounting — the sending task is a
		// pure batch forwarder to the local main unit.
		c.forwardOnly()
		return
	}

	batch := make([]*event.Event, 0, c.cfg.SendBatch)
	var filtered []*event.Event
	for {
		p := c.params.get()
		max := c.cfg.SendBatch
		if p.Coalesce {
			// The coalescing bound doubles as the batch bound so one
			// coalesced event never represents more than MaxCoalesce
			// raw events.
			max = p.MaxCoalesce
		}
		var err error
		batch, err = c.ready.GetAppend(batch[:0], max)
		if err != nil {
			return
		}

		fns := c.fns.Load()
		tracer := c.cfg.Tracer
		if tracer != nil {
			// Stamp ready-queue removal before any handoff: the stamps
			// must be written while this task still owns the events
			// exclusively (ShallowBatch later copies them along).
			now := time.Now().UnixNano()
			for _, e := range batch {
				e.ReadyAt = now
			}
		}

		// Forward the full stream to the local main unit: regular
		// clients see unreduced state updates. Checkpointing runs at a
		// frequency counted in processed events (the paper's "once per
		// 50 processed events"), independent of how many survive the
		// mirroring filter.
		for _, e := range batch {
			if fe := fns.fwd(e); fe != nil {
				if tracer != nil {
					fe.ForwardAt = time.Now().UnixNano()
				}
				if c.main.Deliver(fe) == nil {
					c.forwarded.Add(1)
				}
			}
			if c.sinceCk.Add(1) >= uint64(p.CheckpointFreq) {
				c.sinceCk.Store(0)
				select {
				case c.chkptTrigger <- struct{}{}:
				default:
				}
			}
		}

		// Mirror path: shallow-copy the batch into a pooled slab of
		// views aliasing the originals' payloads and timestamps (both
		// immutable after admission), filter and optionally coalesce in
		// place over the slab, back the views up, then fan the batch
		// out to every link's outbox. No payload byte is copied and no
		// per-event allocation happens: the slab travels by reference —
		// one count for this loop iteration, one for the backup queue,
		// one per link outbox — and returns to the pool when the
		// checkpoint commit trims the batch and every link has
		// submitted it.
		vb := event.ShallowBatch(batch)
		if fns.batch != nil {
			filtered = fns.batch(c.sem, vb.Events)
		} else {
			// Custom mirror functions (set_mirror) see one event at a
			// time; compact survivors in place over the slab.
			filtered = vb.Events[:0]
			for _, e := range vb.Events {
				if me := fns.mirror(c.sem, e); me != nil {
					filtered = append(filtered, me)
				}
			}
		}
		if p.Coalesce && len(filtered) > 1 {
			filtered = c.sem.Coalesce(filtered)
		}
		if c.fieldDeltas.Load() && len(filtered) > 0 {
			// Field-delta regime: rewrite the surviving (possibly
			// coalesced) events into per-flight field deltas before
			// backup and fan-out, so mirrors and the backup replay see
			// the compact form.
			transformFieldDeltas(filtered)
		}
		if len(filtered) == 0 {
			vb.Release()
			continue
		}
		bytes := 0
		var weight uint64
		for _, me := range filtered {
			bytes += len(me.Payload)
			weight += uint64(me.Weight())
		}
		c.sendMu.Lock()
		vb.Retain()
		c.backup.AppendOwnedBatch(filtered, vb.Release)
		// Columnar framing costs a fixed charge per batch plus a small
		// per-event column append; the batch is booked in one ledger
		// operation.
		c.cfg.AuxCPU.Charge(c.cfg.Model.FrameBatchCost(len(filtered), bytes))
		for _, s := range c.senders {
			s.enqueue(filtered, vb)
		}
		c.sendMu.Unlock()
		if tracer != nil {
			// One fan-out sample per batch: ready-queue removal until
			// every link's outbox holds the filtered batch. The
			// producer reference is still held, so the view read here
			// cannot have been recycled by an early commit.
			tracer.Observe(obs.StageFanoutEnqueue,
				time.Duration(time.Now().UnixNano()-filtered[0].ReadyAt))
		}
		c.mirrored.Add(uint64(len(filtered)))
		c.mirroredW.Add(weight)
		vb.Release()
	}
}

// SetFieldDeltas switches the field-delta mirroring regime on or off.
// On, the sending task replaces each mirrored position, status, and
// gate-reader event with a one-record statedelta frame
// (TypeStateDelta) carrying only the fields the event would have
// changed; mirror EDEs apply the frames through ede.DeltaRule and
// converge byte-for-byte with raw mirroring. Off restores raw events.
// Takes effect on the next batch.
func (c *Central) SetFieldDeltas(on bool) { c.fieldDeltas.Store(on) }

// FieldDeltas reports whether the field-delta regime is installed.
func (c *Central) FieldDeltas() bool { return c.fieldDeltas.Load() }

// deltaRecordFor maps one mirrored data event to its field-delta
// record. ok=false passes the event through untransformed (control
// events and streams the flight table does not track: crew, baggage,
// weather).
func deltaRecordFor(e *event.Event) (statedelta.Record, bool) {
	r := statedelta.Record{Flight: e.Flight, Weight: e.Weight()}
	switch e.Type {
	case event.TypeFAAPosition:
		// The weighted update counter always advances; the coordinates
		// ride along when the payload carries a well-formed fix.
		r.Mask = statedelta.MaskCounters
		if lat, lon, alt, ok := e.Position(); ok {
			r.Mask |= statedelta.MaskPosition
			r.Lat, r.Lon, r.Alt = lat, lon, alt
		}
	case event.TypeDeltaStatus:
		r.Mask = statedelta.MaskStatus
		r.Status = uint8(e.Status)
	case event.TypeGateReader:
		// Weight is the boardings counted; the expected passenger total
		// travels in the first payload word, same as the raw event.
		r.Mask = statedelta.MaskPax
		if len(e.Payload) >= 4 {
			r.PaxExpected = uint32(e.Payload[0]) | uint32(e.Payload[1])<<8 |
				uint32(e.Payload[2])<<16 | uint32(e.Payload[3])<<24
		}
	default:
		return statedelta.Record{}, false
	}
	return r, true
}

// transformFieldDeltas rewrites, in place over the batch's view slab,
// every mappable data event into a one-record statedelta frame. It
// runs after filtering and coalescing, so record weights carry the
// coalesce counts. All frames in the batch share one exactly-sized
// buffer; each event's payload is a capped sub-slice of it.
func transformFieldDeltas(batch []*event.Event) {
	recs := make([]statedelta.Record, 0, len(batch))
	idxs := make([]int, 0, len(batch))
	total := 0
	for i, e := range batch {
		r, ok := deltaRecordFor(e)
		if !ok {
			continue
		}
		recs = append(recs, r)
		idxs = append(idxs, i)
		total += statedelta.FrameSize(recs[len(recs)-1:])
	}
	if len(recs) == 0 {
		return
	}
	buf := make([]byte, 0, total)
	for k, i := range idxs {
		start := len(buf)
		var err error
		buf, err = statedelta.AppendFrame(buf, recs[k:k+1])
		if err != nil {
			// A single record built by deltaRecordFor always encodes;
			// if it somehow does not, ship the raw event instead.
			buf = buf[:start]
			continue
		}
		e := batch[i]
		e.Type = event.TypeStateDelta
		e.Payload = buf[start:len(buf):len(buf)]
	}
}

// forwardOnly is the NoMirror sending loop: batch from the ready
// queue straight into the main unit.
func (c *Central) forwardOnly() {
	batch := make([]*event.Event, 0, c.cfg.SendBatch)
	for {
		var err error
		batch, err = c.ready.GetAppend(batch[:0], c.cfg.SendBatch)
		if err != nil {
			return
		}
		tracer := c.cfg.Tracer
		if tracer != nil {
			now := time.Now().UnixNano()
			for _, e := range batch {
				e.ReadyAt = now
			}
		}
		fwd := c.fns.Load().fwd
		for _, e := range batch {
			if fe := fwd(e); fe != nil {
				if tracer != nil {
					fe.ForwardAt = time.Now().UnixNano()
				}
				if c.main.Deliver(fe) == nil {
					c.forwarded.Add(1)
				}
			}
		}
	}
}

// closeSenders flushes and stops the per-link sender goroutines. It
// runs when the sending task exits, so Drain returns only after every
// queued event has been pushed onto its link.
func (c *Central) closeSenders() {
	for _, s := range c.senders {
		s.close()
	}
	c.senderWG.Wait()
}

// LinkStats snapshots the per-mirror-link fan-out counters, indexed
// like CentralConfig.Mirrors. With NoMirror set, all entries are zero.
func (c *Central) LinkStats() []LinkStats {
	out := make([]LinkStats, len(c.cfg.Mirrors))
	for i, s := range c.senders {
		out[i] = s.stats()
	}
	return out
}

// controlTask runs checkpoint rounds when the sending task signals
// that the configured number of events has been mirrored.
func (c *Central) controlTask() {
	defer c.ctrlWG.Done()
	for {
		select {
		case <-c.chkptTrigger:
			// The coordinator's own work is the fixed round cost;
			// participants charge their backup-queue scans locally.
			c.cfg.AuxCPU.ChargeAsync(c.cfg.Model.CheckpointBase)
			c.runRound()
		case <-c.ctrlStop:
			return
		}
	}
}

// Checkpoint synchronously initiates one checkpoint round (the control
// task triggers rounds automatically at the configured frequency; this
// entry point serves final flushes and tests). It reports whether a
// round ran.
func (c *Central) Checkpoint() bool {
	return c.runRound()
}

// runRound performs one checkpoint round with membership bookkeeping:
// the round is counted against every live mirror before it starts, and
// replies arriving during the round clear their site's miss counter.
func (c *Central) runRound() bool {
	if c.backup.Last() == nil {
		return false
	}
	// Tick wire telemetry at round granularity, before the round's
	// piggyback provider runs: the adaptation controller observing
	// this round's sample sees telemetry that includes the interval
	// just ended, so an engage decision rides the same CHKPT.
	c.tickTelemetry()
	c.noteRoundStart()
	return c.coord.Init()
}

// tickTelemetry feeds one cumulative sample per link into the wire
// telemetry sampler (no-op without mirror links).
func (c *Central) tickTelemetry() {
	if c.telem == nil {
		return
	}
	samples := make([]linktelem.Sample, len(c.senders))
	for i, s := range c.senders {
		samples[i] = s.telemSample()
	}
	c.telem.Tick(time.Now(), samples)
}

// primeTelemetry baselines the wire-telemetry sampler at the links'
// current cumulative counters. A promoted central re-registers the
// same per-link counter series the old central grew (the registry
// hands back existing series), so without the baseline the first
// post-promotion round would read the whole history as one delta and
// poison the EWMAs behind VarWireBytes/VarOutboxDepth.
func (c *Central) primeTelemetry() {
	if c.telem == nil {
		return
	}
	samples := make([]linktelem.Sample, len(c.senders))
	for i, s := range c.senders {
		samples[i] = s.telemSample()
	}
	c.telem.Prime(time.Now(), samples)
}

// Telemetry returns the smoothed per-link wire telemetry (nil without
// mirror links).
func (c *Central) Telemetry() []linktelem.Link {
	if c.telem == nil {
		return nil
	}
	return c.telem.Links()
}

// HandleControl processes a control event arriving from a mirror site
// (checkpoint replies carrying piggybacked monitor samples).
func (c *Central) HandleControl(e *event.Event) {
	if e.Type == event.TypeChkptReply {
		if c.cfg.OnMirrorSample != nil && len(e.Payload) > 0 {
			if s, err := DecodeSample(e.Payload); err == nil {
				// Only mirror sites reach HandleControl; the central
				// main unit replies straight to the coordinator.
				c.cfg.OnMirrorSample(int(e.Stream), s)
			}
		}
		c.noteReply(e)
		c.coord.OnReply(e)
	}
}

// SetPiggyback installs a provider whose bytes ride on the next CHKPT
// broadcast (adaptation directives). The provider is consumed once
// per checkpoint round.
func (c *Central) SetPiggyback(f func() []byte) {
	c.piggyMu.Lock()
	c.piggyback = f
	c.piggyMu.Unlock()
}

// takePiggyback produces the bytes for the CHKPT of the given round
// and retains them (with the round stamp) so recovery snapshots and
// PublishDirective can re-deliver the same versioned directive.
func (c *Central) takePiggyback(round uint64) []byte {
	c.piggyMu.Lock()
	f := c.piggyback
	c.piggyMu.Unlock()
	if f == nil {
		return nil
	}
	b := f()
	if len(b) > 0 {
		c.piggyMu.Lock()
		c.lastDirective = append(c.lastDirective[:0], b...)
		c.lastDirectiveRound = round
		c.piggyMu.Unlock()
	}
	return b
}

// lastDirectiveSnapshot copies the most recent piggybacked directive
// and the round that stamped it (nil if no round has piggybacked yet).
func (c *Central) lastDirectiveSnapshot() (uint64, []byte) {
	c.piggyMu.Lock()
	defer c.piggyMu.Unlock()
	if len(c.lastDirective) == 0 {
		return 0, nil
	}
	return c.lastDirectiveRound, append([]byte(nil), c.lastDirective...)
}

// PublishDirective broadcasts the current adaptation directive as a
// standalone TypeAdapt control event. Checkpoint rounds stop once the
// backup queue drains, so this is how a site that missed the last
// piggybacked delivery still converges. When a piggyback provider is
// installed it is consulted for fresh bytes first: a directive that
// changed since a checkpoint last stamped one (a transition decided
// on a reply that arrived after the round's CHKPT went out) gets a
// freshly allocated round so receivers past the old watermark still
// accept it — allocating the round abandons any open checkpoint
// round, exactly as starting a new round would. An unchanged
// directive keeps its original stamp, making the re-broadcast
// idempotent at every receiver. It reports whether a directive
// existed to publish.
func (c *Central) PublishDirective() bool {
	c.piggyMu.Lock()
	f := c.piggyback
	c.piggyMu.Unlock()
	if f != nil {
		if b := f(); len(b) > 0 {
			c.piggyMu.Lock()
			if !bytes.Equal(b, c.lastDirective) {
				c.lastDirective = append(c.lastDirective[:0], b...)
				c.lastDirectiveRound = c.coord.NextRound()
			}
			c.piggyMu.Unlock()
		}
	}
	round, dir := c.lastDirectiveSnapshot()
	if dir == nil {
		return false
	}
	ev := event.NewControl(event.TypeAdapt, nil)
	ev.Seq = round
	ev.Payload = dir
	c.coord.Broadcast(ev)
	return true
}

// Sample returns the central site's own monitored variables, including
// the wire-telemetry variables derived from the fan-out links.
func (c *Central) Sample() Sample {
	s := Sample{
		Ready:   c.ready.Len(),
		Backup:  c.backup.Len(),
		Pending: c.main.PendingRequests(),
	}
	if c.telem != nil {
		s.WireBytes = c.telem.MaxBytesPerRound()
		s.Outbox = c.telem.MaxOutboxDepth()
	}
	return s
}

// Backup exposes the central backup queue (recovery, tests).
func (c *Central) Backup() *queue.Backup { return c.backup }

// Epoch returns the promotion epoch this central stamps rounds in: 0
// for an original central, the ResumeState's epoch for a promoted one.
func (c *Central) Epoch() uint64 { return c.epoch }

// PromotionStats returns how many promotions this central performed
// (0 or 1) and how many backup events the promotion replayed.
func (c *Central) PromotionStats() (promotions, replayed uint64) {
	return c.promotions, c.promotionReplayed
}

// CommittedCut returns the last committed checkpoint cut (nil before
// the first commit) — the status plane's checkpoint-progress field.
func (c *Central) CommittedCut() vclock.VC { return c.backup.Committed() }

// LastDirectiveRound returns the checkpoint round that stamped the most
// recent piggybacked adaptation directive (0 before the first one).
func (c *Central) LastDirectiveRound() uint64 {
	round, dir := c.lastDirectiveSnapshot()
	if dir == nil {
		return 0
	}
	return round
}

// Stats snapshot.
type CentralStats struct {
	Received       uint64 // raw events admitted
	Forwarded      uint64 // events delivered to the central main unit
	Mirrored       uint64 // events sent to each mirror site
	MirroredWeight uint64 // raw events those mirrored events represent
	ChkptRounds    uint64
	ChkptCommits   uint64
}

// Stats returns traffic and protocol counters.
func (c *Central) Stats() CentralStats {
	rounds, commits := c.coord.Stats()
	return CentralStats{
		Received:       c.received.Load(),
		Forwarded:      c.forwarded.Load(),
		Mirrored:       c.mirrored.Load(),
		MirroredWeight: c.mirroredW.Load(),
		ChkptRounds:    rounds,
		ChkptCommits:   commits,
	}
}

// Drain stops ingestion and blocks until every admitted event has
// flowed through the ready queue, the mirror path, and the central
// EDE (the sending task drains the main unit's event queue before it
// exits). Mirror sites drain on their own schedule.
func (c *Central) Drain() {
	c.drainOnce.Do(func() {
		c.ingestMu.Lock()
		c.ingestClosed = true
		close(c.in)
		c.ingestMu.Unlock()
		c.pipeWG.Wait()
	})
}

// Close drains the pipeline, stops the control task, and shuts the
// main unit down. It blocks until all goroutines exit.
func (c *Central) Close() {
	c.closeOnce.Do(func() {
		c.Drain()
		close(c.ctrlStop)
		c.ctrlWG.Wait()
		c.main.Close()
	})
}
