package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// TestWeightConservationThroughPipeline checks the end-to-end
// invariant behind replica convergence: the weighted event count a
// mirror applies equals the raw events fed, minus at most the
// unflushed overwrite tails (one partial run per flight).
func TestWeightConservationThroughPipeline(t *testing.T) {
	f := func(flights8, perFlight8, l8 uint8) bool {
		flights := int(flights8%5) + 1
		perFlight := int(perFlight8%60) + 1
		l := int(l8%15) + 2
		r := newRigStandalone(1)
		defer r.close()
		r.central.InstallSelective(l)

		seq := uint64(0)
		for i := 0; i < perFlight; i++ {
			for fl := 1; fl <= flights; fl++ {
				seq++
				if r.central.Ingest(event.NewPosition(event.FlightID(fl), seq, 1, 2, 3, 32)) != nil {
					return false
				}
			}
		}
		r.drainAll()
		total := uint64(flights * perFlight)
		got := r.mirrors[0].Processed()
		tail := uint64(flights * (l - 1))
		return got <= total && got+tail >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newRigStandalone builds a central + n mirrors outside the testing.T
// cleanup flow so property functions can manage lifecycle themselves.
type standaloneRig struct {
	central *Central
	mirrors []*MirrorSite
}

func newRigStandalone(nMirrors int) *standaloneRig {
	r := &standaloneRig{}
	var links []MirrorLink
	for i := 0; i < nMirrors; i++ {
		i := i
		links = append(links, MirrorLink{
			Data: senderFunc(func(e *event.Event) error {
				r.mirrors[i].HandleData(e)
				return nil
			}),
			Ctrl: senderFunc(func(e *event.Event) error {
				r.mirrors[i].HandleControl(e)
				return nil
			}),
		})
	}
	r.central = NewCentral(CentralConfig{Streams: 1, Mirrors: links})
	for i := 0; i < nMirrors; i++ {
		r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
			SiteID: uint8(i),
			CtrlUp: senderFunc(func(e *event.Event) error {
				r.central.HandleControl(e)
				return nil
			}),
		}))
	}
	return r
}

func (r *standaloneRig) drainAll() {
	r.central.Drain()
	want := r.central.Stats().Mirrored
	for _, m := range r.mirrors {
		for m.Received() < want {
			time.Sleep(100 * time.Microsecond)
		}
		m.Drain()
	}
}

func (r *standaloneRig) close() {
	r.central.Close()
	for _, m := range r.mirrors {
		m.Close()
	}
}

// TestCommitNeverExceedsProcessed is the checkpoint safety property:
// a committed timestamp never runs ahead of the slowest participant's
// EDE progress.
func TestCommitNeverExceedsProcessed(t *testing.T) {
	r := newRigStandalone(2)
	defer r.close()
	r.central.SetParams(false, 1, 10)
	for i := uint64(1); i <= 200; i++ {
		r.central.Ingest(event.NewPosition(event.FlightID(i%7), i, 0, 0, 0, 16))
	}
	r.drainAll()
	r.central.Checkpoint()

	committed := r.central.Backup().Committed()
	if committed == nil {
		t.Fatal("nothing committed")
	}
	for i, m := range r.mirrors {
		last := m.Main().LastProcessed()
		if !committed.LessEq(last) {
			t.Fatalf("mirror %d: commit %v beyond processed %v", i, committed, last)
		}
	}
	if central := r.central.Main().LastProcessed(); !committed.LessEq(central) {
		t.Fatalf("commit %v beyond central progress %v", committed, central)
	}
}

// TestFailingMirrorLinkDoesNotStallCentral injects a dead mirror data
// link: the central site must keep processing and forwarding (the
// paper's no-timeout, no-abort stance means a commit simply never
// covers what the dead site never acknowledged).
func TestFailingMirrorLinkDoesNotStallCentral(t *testing.T) {
	dead := senderFunc(func(*event.Event) error { return ErrUnitClosed })
	c := NewCentral(CentralConfig{
		Streams: 1,
		Mirrors: []MirrorLink{{Data: dead, Ctrl: dead}},
	})
	defer c.Close()
	for i := uint64(1); i <= 100; i++ {
		if err := c.Ingest(event.NewPosition(1, i, 0, 0, 0, 16)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	if got := c.Main().Processed(); got != 100 {
		t.Fatalf("central processed %d with dead mirror, want 100", got)
	}
	// Backup retains everything: no replies, no commits.
	if got := c.Backup().Len(); got != 100 {
		t.Fatalf("backup len = %d, want 100 (nothing committable)", got)
	}
}

// TestRecoveryAfterPartialCommit replays only the uncommitted suffix
// plus a state snapshot; the snapshot covers the trimmed prefix.
func TestRecoveryAfterPartialCommit(t *testing.T) {
	r := newRigStandalone(1)
	defer r.close()
	r.central.SetParams(false, 1, 1<<30)
	for i := uint64(1); i <= 60; i++ {
		r.central.Ingest(event.NewPosition(event.FlightID(1+i%3), i, float64(i), 0, 0, 16))
	}
	r.drainAll()
	r.central.Checkpoint() // trims everything processed

	snap := r.central.BuildRecovery()
	if len(snap.State) == 0 {
		t.Fatal("empty recovery state")
	}
	if len(snap.Events) != 0 {
		t.Fatalf("backup retained %d events after full commit", len(snap.Events))
	}

	// Now some uncommitted extra traffic.
	r.central.ingestReopenForTest(t)
}

// ingestReopenForTest documents that Drain is terminal: feeding again
// must fail rather than silently drop.
func (c *Central) ingestReopenForTest(t *testing.T) {
	t.Helper()
	if err := c.Ingest(event.NewPosition(9, 999, 0, 0, 0, 8)); err != ErrUnitClosed {
		t.Fatalf("Ingest after drain = %v, want ErrUnitClosed", err)
	}
}

// TestConcurrentIngestors exercises the ingest path from many
// goroutines (sources are independent streams in deployment).
func TestConcurrentIngestors(t *testing.T) {
	r := newRigStandalone(1)
	defer r.close()
	var wg sync.WaitGroup
	const sources, each = 4, 100
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e := event.NewPosition(event.FlightID(s+1), uint64(i+1), 0, 0, 0, 16)
				if err := r.central.Ingest(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	r.drainAll()
	if got := r.central.Stats().Received; got != sources*each {
		t.Fatalf("received %d, want %d", got, sources*each)
	}
	// Vector stamps are strictly increasing in total order (single
	// receiving task), so the mirror saw a valid history.
	if got := r.mirrors[0].Processed(); got != sources*each {
		t.Fatalf("mirror processed %d, want %d", got, sources*each)
	}
}

// TestAdaptationPiggybackRoundTrip drives a regime directive through
// the real control path: central piggybacks on CHKPT, the mirror's
// OnPiggyback receives it.
func TestAdaptationPiggybackRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got [][]byte
	var rounds []uint64
	r := &standaloneRig{}
	links := []MirrorLink{{
		Data: senderFunc(func(e *event.Event) error { r.mirrors[0].HandleData(e); return nil }),
		Ctrl: senderFunc(func(e *event.Event) error { r.mirrors[0].HandleControl(e); return nil }),
	}}
	r.central = NewCentral(CentralConfig{Streams: 1, Mirrors: links})
	r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{
		CtrlUp: senderFunc(func(e *event.Event) error { r.central.HandleControl(e); return nil }),
		OnPiggyback: func(round uint64, b []byte) {
			mu.Lock()
			rounds = append(rounds, round)
			got = append(got, append([]byte(nil), b...))
			mu.Unlock()
		},
	}))
	defer r.close()

	r.central.SetPiggyback(func() []byte { return []byte("regime:2") })
	r.central.SetParams(false, 1, 5)
	for i := uint64(1); i <= 20; i++ {
		r.central.Ingest(event.NewPosition(1, i, 0, 0, 0, 8))
	}
	r.drainAll()
	r.central.Checkpoint()

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no piggybacked directives reached the mirror")
	}
	for _, b := range got {
		if string(b) != "regime:2" {
			t.Fatalf("directive corrupted: %q", b)
		}
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] <= rounds[i-1] {
			t.Fatalf("piggyback rounds not strictly increasing: %v", rounds)
		}
	}
}

// TestVTMonotonePerStream validates the receiving task's stamping:
// within one run, observed VTs at the mirror are totally ordered.
func TestVTMonotonePerStream(t *testing.T) {
	var mu sync.Mutex
	var stamps []vclock.VC
	r := &standaloneRig{}
	links := []MirrorLink{{
		Data: senderFunc(func(e *event.Event) error {
			mu.Lock()
			stamps = append(stamps, e.VT)
			mu.Unlock()
			r.mirrors[0].HandleData(e)
			return nil
		}),
		Ctrl: senderFunc(func(e *event.Event) error { r.mirrors[0].HandleControl(e); return nil }),
	}}
	r.central = NewCentral(CentralConfig{Streams: 2, Mirrors: links})
	r.mirrors = append(r.mirrors, NewMirrorSite(MirrorSiteConfig{}))
	defer r.close()

	for i := uint64(1); i <= 50; i++ {
		e := event.NewPosition(1, i, 0, 0, 0, 8)
		e.Stream = uint8(i % 2)
		r.central.Ingest(e)
	}
	r.drainAll()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(stamps); i++ {
		if stamps[i-1].Compare(stamps[i]) != vclock.Before {
			t.Fatalf("stamp %d (%v) not before stamp %d (%v)",
				i-1, stamps[i-1], i, stamps[i])
		}
	}
}
