package loadbal

import (
	"sync"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	b, err := NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Targets() != 3 {
		t.Fatalf("Targets = %d", b.Targets())
	}
	for i := 0; i < 9; i++ {
		if got := b.Pick(); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
	}
}

func TestRoundRobinNoTargets(t *testing.T) {
	if _, err := NewRoundRobin(0); err != ErrNoTargets {
		t.Fatalf("err = %v, want ErrNoTargets", err)
	}
}

func TestRoundRobinConcurrentBalance(t *testing.T) {
	b, _ := NewRoundRobin(4)
	counts := make([]int64, 4)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 4)
			for i := 0; i < 1000; i++ {
				local[b.Pick()]++
			}
			mu.Lock()
			for i, n := range local {
				counts[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i, n := range counts {
		if n != 2000 {
			t.Fatalf("target %d got %d picks, want 2000", i, n)
		}
	}
}

func TestRandomInRangeAndSpread(t *testing.T) {
	b, err := NewRandom(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		p := b.Pick()
		if p < 0 || p >= 4 {
			t.Fatalf("pick out of range: %d", p)
		}
		counts[p]++
	}
	for i, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("target %d got %d of 4000 picks: poor spread", i, n)
		}
	}
	if _, err := NewRandom(0, 1); err != ErrNoTargets {
		t.Fatal("want ErrNoTargets")
	}
}

func TestLeastLoaded(t *testing.T) {
	loads := []int{5, 2, 8}
	b, err := NewLeastLoaded(3, func(i int) int { return loads[i] })
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Pick(); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
	loads[1] = 100
	if got := b.Pick(); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
	// Ties: lowest index wins.
	loads = []int{3, 3, 3}
	if got := b.Pick(); got != 0 {
		t.Fatalf("tie Pick = %d, want 0", got)
	}
}

func TestLeastLoadedValidation(t *testing.T) {
	if _, err := NewLeastLoaded(0, func(int) int { return 0 }); err != ErrNoTargets {
		t.Fatal("want ErrNoTargets")
	}
	if _, err := NewLeastLoaded(2, nil); err == nil {
		t.Fatal("nil load function must fail")
	}
}

func TestWeightedProportions(t *testing.T) {
	b, err := NewWeighted([]int{1, 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if b.Targets() != 2 {
		t.Fatalf("Targets = %d", b.Targets())
	}
	counts := make([]int, 2)
	for i := 0; i < 8000; i++ {
		counts[b.Pick()]++
	}
	// Expect roughly 2000 / 6000.
	if counts[0] < 1500 || counts[0] > 2500 {
		t.Fatalf("weight-1 target got %d of 8000", counts[0])
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(nil, 1); err != ErrNoTargets {
		t.Fatal("want ErrNoTargets")
	}
	if _, err := NewWeighted([]int{1, 0}, 1); err == nil {
		t.Fatal("zero weight must fail")
	}
	if _, err := NewWeighted([]int{1, -2}, 1); err == nil {
		t.Fatal("negative weight must fail")
	}
}

func BenchmarkRoundRobinPick(b *testing.B) {
	bal, _ := NewRoundRobin(8)
	for i := 0; i < b.N; i++ {
		bal.Pick()
	}
}
