// Package loadbal distributes client requests across mirror sites.
// The paper relies on "simple load balancing strategies" (citing
// cluster-server work) to spread request processing over the mirrors;
// this package provides the standard ones: round-robin, random,
// least-loaded, and weighted.
package loadbal

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrNoTargets is returned when a balancer is constructed with no
// targets.
var ErrNoTargets = errors.New("loadbal: no targets")

// Balancer picks the index of the target to receive the next request.
type Balancer interface {
	// Pick returns a target index in [0, n).
	Pick() int
	// Targets returns the number of targets.
	Targets() int
}

// RoundRobin cycles through targets in order.
type RoundRobin struct {
	n    int
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin balancer over n targets.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n <= 0 {
		return nil, ErrNoTargets
	}
	return &RoundRobin{n: n}, nil
}

// Pick implements Balancer.
func (b *RoundRobin) Pick() int {
	return int((b.next.Add(1) - 1) % uint64(b.n))
}

// Targets implements Balancer.
func (b *RoundRobin) Targets() int { return b.n }

// Random picks targets uniformly at random.
type Random struct {
	n   int
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a random balancer over n targets with a seed.
func NewRandom(n int, seed int64) (*Random, error) {
	if n <= 0 {
		return nil, ErrNoTargets
	}
	return &Random{n: n, rng: rand.New(rand.NewSource(seed))}, nil
}

// Pick implements Balancer.
func (b *Random) Pick() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Intn(b.n)
}

// Targets implements Balancer.
func (b *Random) Targets() int { return b.n }

// LeastLoaded picks the target with the smallest current load as
// reported by the load function (e.g. pending-request depth).
type LeastLoaded struct {
	n    int
	load func(i int) int
}

// NewLeastLoaded returns a least-loaded balancer: load(i) reports
// target i's instantaneous load.
func NewLeastLoaded(n int, load func(i int) int) (*LeastLoaded, error) {
	if n <= 0 {
		return nil, ErrNoTargets
	}
	if load == nil {
		return nil, errors.New("loadbal: nil load function")
	}
	return &LeastLoaded{n: n, load: load}, nil
}

// Pick implements Balancer. Ties go to the lowest index.
func (b *LeastLoaded) Pick() int {
	best, bestLoad := 0, b.load(0)
	for i := 1; i < b.n; i++ {
		if l := b.load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// Targets implements Balancer.
func (b *LeastLoaded) Targets() int { return b.n }

// Weighted picks targets proportionally to fixed integer weights
// (e.g. heterogeneous mirror capacity).
type Weighted struct {
	cum   []int // cumulative weights
	total int
	mu    sync.Mutex
	rng   *rand.Rand
}

// NewWeighted returns a weighted balancer; weights must be positive.
func NewWeighted(weights []int, seed int64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, ErrNoTargets
	}
	w := &Weighted{rng: rand.New(rand.NewSource(seed))}
	for _, x := range weights {
		if x <= 0 {
			return nil, errors.New("loadbal: non-positive weight")
		}
		w.total += x
		w.cum = append(w.cum, w.total)
	}
	return w, nil
}

// Pick implements Balancer.
func (b *Weighted) Pick() int {
	b.mu.Lock()
	r := b.rng.Intn(b.total)
	b.mu.Unlock()
	for i, c := range b.cum {
		if r < c {
			return i
		}
	}
	return len(b.cum) - 1
}

// Targets implements Balancer.
func (b *Weighted) Targets() int { return len(b.cum) }
