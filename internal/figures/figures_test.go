package figures

import (
	"math"
	"strings"
	"testing"
	"time"
)

// The Quick scale keeps these smoke tests fast; shape assertions are
// deliberately loose (the strong checks run at Full scale via
// cmd/benchrunner and are recorded in EXPERIMENTS.md).

func TestFig4SmokeShape(t *testing.T) {
	fig, err := Fig4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		if len(s.X) != 9 {
			t.Fatalf("%s has %d points, want 9", s.Name, len(s.X))
		}
		byName[s.Name] = s
	}
	// Simple mirroring must cost more than no mirroring at the
	// largest size (where the effect is clearest).
	last := len(byName["simple"].Y) - 1
	if byName["simple"].Y[last] <= byName["no-mirroring"].Y[last] {
		t.Fatalf("simple (%v) not slower than no-mirroring (%v) at 8KB",
			byName["simple"].Y[last], byName["no-mirroring"].Y[last])
	}
	// Execution time grows with event size.
	ys := byName["no-mirroring"].Y
	if ys[len(ys)-1] <= ys[0] {
		t.Fatal("execution time must grow with event size")
	}
}

func TestFig5SmokeShape(t *testing.T) {
	fig, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	ys := fig.Series[0].Y
	if len(ys) != 5 {
		t.Fatalf("points = %d, want 5 (1,2,4,6,8 mirrors)", len(ys))
	}
	if ys[4] <= ys[0] {
		t.Fatal("8 mirrors must cost more than 1")
	}
}

func TestFig6Smoke(t *testing.T) {
	fig, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y <= 0 || math.IsNaN(y) {
				t.Fatalf("%s has non-positive point", s.Name)
			}
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	fig, err := Fig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	simple, sel := byName["simple"], byName["selective"]
	if len(simple.Y) != len(fig78Loads) {
		t.Fatalf("points = %d, want %d", len(simple.Y), len(fig78Loads))
	}
	// At the highest load, selective must not be meaningfully slower
	// than simple. The tolerance is wide: Quick scale is a smoke test
	// on sub-5ms runs (race-detector instrumentation alone shifts
	// them); the real shape assertions run at Full scale and are
	// recorded in EXPERIMENTS.md.
	last := len(simple.Y) - 1
	if sel.Y[last] > simple.Y[last]*1.5 {
		t.Fatalf("selective (%v) far slower than simple (%v) at max load", sel.Y[last], simple.Y[last])
	}
}

func TestFig8Smoke(t *testing.T) {
	fig, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 4 {
			t.Fatalf("%s points = %d, want 4", s.Name, len(s.Y))
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	p := Fig9Params{
		EventRate:        2000,
		RunSeconds:       1,
		BurstBase:        10,
		BurstPeak:        200,
		Period:           500 * time.Millisecond,
		BurstLen:         150 * time.Millisecond,
		Bin:              100 * time.Millisecond,
		PendingPrimary:   5,
		PendingSecondary: 2,
		EventSize:        256,
		Repeats:          1,
	}
	fig, err := Fig9(Quick, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (no-adaptation, with-adaptation)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 {
			t.Fatalf("%s has no bins", s.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{30, 40}},
		},
	}
	out := Table(fig)
	for _, want := range []string{"FIGX", "Test", "a", "b", "10.0000", "40.0000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2 header comments + 1 column header + 3 distinct x rows.
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestRunMedianOddAndSingle(t *testing.T) {
	s := Quick
	s.Repeats = 1
	opts := s.base(128)
	opts.NoMirror = true
	if _, err := s.runMedian(opts); err != nil {
		t.Fatal(err)
	}
}

func TestPlotRendering(t *testing.T) {
	fig := Figure{
		ID: "figY", Title: "Plot test", XLabel: "size", YLabel: "time",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
		},
	}
	out := Plot(fig, 40, 10)
	for _, want := range []string{"FIGY", "Plot test", "o = a", "+ = b", "x: size, y: time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// The crossing point of the two series renders as an overlap.
	if !strings.Contains(out, "&") && !strings.Contains(out, "o") {
		t.Fatalf("plot has no markers:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	out := Plot(Figure{ID: "e", Title: "empty"}, 0, 0)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
	// Single point: degenerate ranges must not divide by zero.
	one := Figure{ID: "one", Series: []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}}}
	if out := Plot(one, 20, 8); !strings.Contains(out, "o") {
		t.Fatalf("single-point plot missing marker:\n%s", out)
	}
	// NaN-only series behaves as empty.
	nan := Figure{ID: "nan", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if out := Plot(nan, 20, 8); !strings.Contains(out, "no data") {
		t.Fatalf("NaN plot = %q", out)
	}
}

func TestStageBreakdownSmoke(t *testing.T) {
	res, err := StageBreakdown(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) == 0 {
		t.Fatal("no stages recorded")
	}
	diff := res.StageSum - res.MeanDelay
	if diff < 0 {
		diff = -diff
	}
	if tol := res.MeanDelay / 20; diff > tol {
		t.Fatalf("stage sum %v vs mean delay %v: differ by %v (> 5%%)", res.StageSum, res.MeanDelay, diff)
	}
	table := StageTable(res)
	for _, want := range []string{"ready_wait", "apply", "mirror_apply"} {
		if !strings.Contains(table, want) {
			t.Errorf("stage table missing %q:\n%s", want, table)
		}
	}
}

func TestFigBandwidthSmoke(t *testing.T) {
	fig, err := FigBandwidth(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (bytes/round, mean-delay-us)", len(fig.Series))
	}
	bytes := fig.Series[0]
	if bytes.Name != "bytes/round" || len(bytes.Y) != 3 {
		t.Fatalf("bytes series = %s with %d points, want bytes/round with 3", bytes.Name, len(bytes.Y))
	}
	for i, y := range bytes.Y {
		if y <= 0 {
			t.Fatalf("regime %d shipped no bytes", i+1)
		}
	}
	// The point of the figure: field deltas (x=3) ship materially fewer
	// bytes per checkpoint round than raw mirroring (x=1).
	if bytes.Y[2] >= bytes.Y[0] {
		t.Fatalf("field-deltas bytes/round (%v) not below raw (%v)", bytes.Y[2], bytes.Y[0])
	}
	delay := fig.Series[1]
	if len(delay.Y) != 3 || delay.Y[2] <= 0 {
		t.Fatalf("delay series malformed: %+v", delay)
	}
}
