package figures

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a figure as an ASCII chart (width×height characters of
// plot area, plus axes and legend), for terminal inspection of the
// regenerated curves. Each series draws with its own marker.
func Plot(f Figure, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	markers := []byte{'o', '+', 'x', '*', '#', '@'}

	// Bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if grid[row][col] != ' ' && grid[row][col] != m {
				grid[row][col] = '&' // overlap of different series
			} else {
				grid[row][col] = m
			}
		}
	}

	yLabelW := 10
	for r, line := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%*.3g |%s|\n", yLabelW, yVal, string(line))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s %-*.4g%*.4g\n", yLabelW, "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%*s x: %s, y: %s\n", yLabelW, "", f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%*s %c = %s\n", yLabelW, "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
