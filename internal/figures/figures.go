// Package figures regenerates every figure of the paper's evaluation
// (Section 4): each FigN function runs the corresponding experiment
// sweep on the cluster harness and returns its data series, which
// cmd/benchrunner prints as text tables and bench_test.go exposes as
// benchmarks. Figure numbers follow the paper:
//
//	Fig. 4 — overhead of mirroring to a single site vs event size
//	          (no mirroring / simple / selective)
//	Fig. 5 — overhead vs number of mirror sites
//	Fig. 6 — total time under constant 100 req/s for 1/2/4 mirrors
//	          vs event size (crossover)
//	Fig. 7 — total time vs request load for simple / selective /
//	          selective with halved checkpoint frequency
//	Fig. 8 — mean update delay vs request load, simple vs selective
//	Fig. 9 — update-delay time series under bursty requests,
//	          adaptation on vs off
//
// FigServe is a reproduction-only addition (no paper counterpart): it
// characterizes the init-state serving path — the sharded EDE state
// plus epoch-cached snapshots — by sweeping the serving pool size
// under storm-level request load.
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/cluster"
	"adaptmirror/internal/workload"
)

// Scale sizes the experiments. The paper's runs took 4-45 seconds per
// point on 300 MHz hardware; Full reproduces every curve in a few
// hundred milliseconds per point. Quick shrinks everything for tests.
type Scale struct {
	// Flights × UpdatesPerFlight is the event-sequence length.
	Flights          int
	UpdatesPerFlight int
	// RateScale converts the paper's request rates (req/s on the
	// paper's timescale) to this reproduction's compressed timescale.
	RateScale float64
	// StatePadding sizes per-flight init state.
	StatePadding int
	// SelectiveL is the overwrite run length of "selective mirroring".
	SelectiveL int
	// Repeats runs each data point this many times and reports the
	// median, suppressing host scheduling noise on sub-second runs.
	Repeats int
	// Seed for deterministic workloads.
	Seed int64
}

// Full is the paper-shaped scale (a few hundred ms per data point).
var Full = Scale{
	Flights:          50,
	UpdatesPerFlight: 40,
	RateScale:        60,
	StatePadding:     64,
	SelectiveL:       10,
	Repeats:          5,
	Seed:             1,
}

// Quick is a reduced scale for smoke tests.
var Quick = Scale{
	Flights:          10,
	UpdatesPerFlight: 10,
	RateScale:        10,
	StatePadding:     16,
	SelectiveL:       10,
	Repeats:          1,
	Seed:             1,
}

// runMedian runs one configuration Repeats times and returns the run
// with the median total time.
func (s Scale) runMedian(opts cluster.Options) (cluster.Result, error) {
	n := s.Repeats
	if n < 1 {
		n = 1
	}
	results := make([]cluster.Result, 0, n)
	for i := 0; i < n; i++ {
		res, err := cluster.RunExperiment(opts)
		if err != nil {
			return cluster.Result{}, err
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].TotalTime < results[j].TotalTime
	})
	return results[len(results)/2], nil
}

// Series is one labeled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

func (s Scale) base(size int) cluster.Options {
	return cluster.Options{
		Flights:          s.Flights,
		UpdatesPerFlight: s.UpdatesPerFlight,
		EventSize:        size,
		StatePadding:     s.StatePadding,
		Seed:             s.Seed,
	}
}

func secs(d time.Duration) float64 { return d.Seconds() }

// Fig4 measures the overhead of mirroring to a single site across
// event sizes, for no mirroring, simple mirroring, and selective
// mirroring (paper Figure 4).
func Fig4(s Scale) (Figure, error) {
	sizes := []int{0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000}
	fig := Figure{
		ID:     "fig4",
		Title:  "Overhead of mirroring to a single site",
		XLabel: "event size (B)",
		YLabel: "total execution time (s)",
	}
	variants := []struct {
		name   string
		mutate func(*cluster.Options)
	}{
		{"no-mirroring", func(o *cluster.Options) { o.NoMirror = true }},
		{"simple", func(o *cluster.Options) { o.Mirrors = 1 }},
		{"selective", func(o *cluster.Options) { o.Mirrors = 1; o.Selective = s.SelectiveL }},
	}
	for _, v := range variants {
		series := Series{Name: v.name}
		for _, size := range sizes {
			opts := s.base(size)
			v.mutate(&opts)
			res, err := s.runMedian(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("fig4 %s size %d: %w", v.name, size, err)
			}
			series.X = append(series.X, float64(size))
			series.Y = append(series.Y, secs(res.TotalTime))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig5 measures execution time as mirror sites are added at a fixed
// event size (paper Figure 5).
func Fig5(s Scale) (Figure, error) {
	const size = 1000
	fig := Figure{
		ID:     "fig5",
		Title:  "Overheads implied by additional mirrors",
		XLabel: "number of mirror sites",
		YLabel: "total execution time (s)",
	}
	series := Series{Name: "simple"}
	for _, m := range []int{1, 2, 4, 6, 8} {
		opts := s.base(size)
		opts.Mirrors = m
		res, err := s.runMedian(opts)
		if err != nil {
			return Figure{}, fmt.Errorf("fig5 mirrors %d: %w", m, err)
		}
		series.X = append(series.X, float64(m))
		series.Y = append(series.Y, secs(res.TotalTime))
	}
	fig.Series = []Series{series}
	return fig, nil
}

// Fig6 measures total time (events + requests) under a constant
// 100 req/s load balanced across all sites, for 1, 2, and 4 mirrors
// across event sizes (paper Figure 6: the crossover figure).
func Fig6(s Scale) (Figure, error) {
	sizes := []int{0, 1000, 2000, 3000, 4000, 5000, 6000}
	fig := Figure{
		ID:     "fig6",
		Title:  "Mirroring to multiple sites under constant 100 req/s",
		XLabel: "event size (B)",
		YLabel: "total execution time (s)",
	}
	for _, m := range []int{1, 2, 4} {
		series := Series{Name: fmt.Sprintf("%d-mirrors", m)}
		for _, size := range sizes {
			opts := s.base(size)
			opts.Mirrors = m
			opts.RequestRate = 100 * s.RateScale
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			res, err := s.runMedian(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("fig6 mirrors %d size %d: %w", m, size, err)
			}
			series.X = append(series.X, float64(size))
			series.Y = append(series.Y, secs(res.TotalTime))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// fig78Loads is the request-rate sweep (paper req/s) of Figures 7-8.
var fig78Loads = []float64{0, 50, 100, 200, 300, 400}

// Fig7 measures total time vs request load for simple mirroring,
// selective mirroring, and selective mirroring with the checkpoint
// frequency halved (paper Figure 7). One mirror site; requests
// balanced across both sites.
func Fig7(s Scale) (Figure, error) {
	const size = 1000
	fig := Figure{
		ID:     "fig7",
		Title:  "Mirroring functions under varying request load",
		XLabel: "request load (req/s, paper scale)",
		YLabel: "total execution time (s)",
	}
	variants := []struct {
		name   string
		mutate func(*cluster.Options)
	}{
		{"simple", func(o *cluster.Options) {}},
		{"selective", func(o *cluster.Options) { o.Selective = s.SelectiveL }},
		{"selective-chkpt/2", func(o *cluster.Options) {
			o.Selective = s.SelectiveL
			// Half the checkpointing frequency = twice the interval.
			o.ChkptFreq = 2 * 50
		}},
	}
	for _, v := range variants {
		series := Series{Name: v.name}
		for _, load := range fig78Loads {
			opts := s.base(size)
			opts.Mirrors = 1
			opts.RequestRate = load * s.RateScale
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			v.mutate(&opts)
			res, err := s.runMedian(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("fig7 %s load %v: %w", v.name, load, err)
			}
			series.X = append(series.X, load)
			series.Y = append(series.Y, secs(res.TotalTime))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig8 measures the mean update delay experienced by operational-data
// clients vs request load, simple vs selective mirroring (paper
// Figure 8).
func Fig8(s Scale) (Figure, error) {
	const size = 1000
	fig := Figure{
		ID:     "fig8",
		Title:  "Update delays, selective vs simple mirroring",
		XLabel: "request load (req/s, paper scale)",
		YLabel: "mean update delay (ms)",
	}
	loads := []float64{0, 100, 200, 400}
	for _, variant := range []string{"simple", "selective"} {
		series := Series{Name: variant}
		for _, load := range loads {
			opts := s.base(size)
			opts.Mirrors = 1
			opts.RequestRate = load * s.RateScale
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			if variant == "selective" {
				opts.Selective = s.SelectiveL
			}
			res, err := s.runMedian(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("fig8 %s load %v: %w", variant, load, err)
			}
			series.X = append(series.X, load)
			series.Y = append(series.Y, float64(res.MeanDelay)/float64(time.Millisecond))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig9Params shapes the adaptation time-series experiment.
type Fig9Params struct {
	// EventRate paces the input stream (events/second).
	EventRate float64
	// Duration-ish: events = EventRate × RunSeconds.
	RunSeconds float64
	// BurstBase/BurstPeak are the bursty request pattern's rates in
	// paper req/s; Period and BurstLen shape the bursts.
	BurstBase, BurstPeak float64
	Period, BurstLen     time.Duration
	// Bin is the series bin width.
	Bin time.Duration
	// PendingPrimary/Secondary are the adaptation thresholds on the
	// pending-request buffer.
	PendingPrimary, PendingSecondary int
	// EventSize of the position stream.
	EventSize int
	// Repeats averages the delay series over this many runs per
	// variant (bins are averaged element-wise).
	Repeats int
}

// DefaultFig9 compresses the paper's 15-second run to ~6 seconds.
// Burst sizing pushes the central site just past saturation under
// function 1, while function 2's deterministic overwriting keeps it at
// the edge — the regime where shedding mirroring work changes queue
// growth qualitatively, as in the paper.
var DefaultFig9 = Fig9Params{
	EventRate:        8000,
	RunSeconds:       5,
	BurstBase:        20,
	BurstPeak:        380,
	Period:           time.Second,
	BurstLen:         300 * time.Millisecond,
	Bin:              250 * time.Millisecond,
	PendingPrimary:   30,
	PendingSecondary: 15,
	EventSize:        1000,
	Repeats:          3,
}

// Fig9 runs the bursty-request adaptation experiment and returns the
// update-delay time series with and without runtime adaptation (paper
// Figure 9). The two mirroring functions are the paper's: function 1
// coalesces up to 10 events with checkpointing every 50; function 2
// overwrites up to 20 position events with checkpointing every 100.
func Fig9(s Scale, p Fig9Params) (Figure, error) {
	fig := Figure{
		ID:     "fig9",
		Title:  "Dynamic adaptation under bursty requests",
		XLabel: fmt.Sprintf("time (bins of %v)", p.Bin),
		YLabel: "mean update delay (µs)",
	}
	events := int(p.EventRate * p.RunSeconds)
	updatesPerFlight := events / s.Flights
	if updatesPerFlight < 1 {
		updatesPerFlight = 1
	}
	pattern := workload.Bursty{
		Base:     p.BurstBase * s.RateScale,
		Burst:    p.BurstPeak * s.RateScale,
		Period:   p.Period,
		BurstLen: p.BurstLen,
	}
	// The paper's two mirroring functions: function 1 coalesces up to
	// 10 events (opportunistic — it reduces traffic only when the
	// ready queue backs up); function 2 deterministically overwrites
	// up to 20 position events and checkpoints half as often.
	fn1 := adapt.Regime{ID: 1, Name: "coalesce-10", Coalesce: true, MaxCoalesce: 10, OverwriteLen: 0, CheckpointFreq: 50}
	fn2 := adapt.Regime{ID: 2, Name: "overwrite-20", Coalesce: true, MaxCoalesce: 20, OverwriteLen: 20, CheckpointFreq: 100}

	repeats := p.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for _, adaptive := range []bool{false, true} {
		var sums []float64
		var counts []int
		for rep := 0; rep < repeats; rep++ {
			opts := s.base(p.EventSize)
			opts.UpdatesPerFlight = updatesPerFlight
			opts.Mirrors = 1
			opts.EventRate = p.EventRate
			opts.RequestPattern = pattern
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			opts.SeriesBin = p.Bin
			opts.Seed = s.Seed + int64(rep)
			if adaptive {
				opts.Adaptive = true
				opts.Baseline = fn1
				opts.Degraded = fn2
				opts.PendingPrimary = p.PendingPrimary
				opts.PendingSecondary = p.PendingSecondary
			} else {
				// No runtime adaptation: function 1 throughout.
				opts.Coalesce = true
				opts.MaxCoalesce = fn1.MaxCoalesce
				opts.ChkptFreq = fn1.CheckpointFreq
			}
			res, err := cluster.RunExperiment(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("fig9 adaptive=%v: %w", adaptive, err)
			}
			for i, v := range res.DelayBins {
				if math.IsNaN(v) {
					continue
				}
				for len(sums) <= i {
					sums = append(sums, 0)
					counts = append(counts, 0)
				}
				sums[i] += v
				counts[i]++
			}
		}
		name := "no-adaptation"
		if adaptive {
			name = "with-adaptation"
		}
		series := Series{Name: name}
		for i := range sums {
			if counts[i] == 0 {
				continue
			}
			series.X = append(series.X, float64(i)*p.Bin.Seconds())
			series.Y = append(series.Y, sums[i]/float64(counts[i]))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// FigServe sweeps the init-state serving pool size under sustained
// request storms and reports the mean request latency (enqueue →
// response ready). With the epoch-cached snapshot, warm requests are
// pure cache copies, so latency drops as workers are added until the
// copy bandwidth saturates; the old single-worker serializing path
// was flat and far slower.
func FigServe(s Scale) (Figure, error) {
	const size = 1000
	fig := Figure{
		ID:     "figserve",
		Title:  "Init-state serving pool under request storms",
		XLabel: "request workers per site",
		YLabel: "mean request latency (ms)",
	}
	for _, load := range []float64{100, 400} {
		series := Series{Name: fmt.Sprintf("%.0f-req/s", load)}
		for _, w := range []int{1, 2, 4, 8} {
			opts := s.base(size)
			opts.Mirrors = 1
			opts.RequestRate = load * s.RateScale
			opts.RequestsToAllSites = true
			opts.RequestsUntilDrained = true
			opts.RequestWorkers = w
			res, err := s.runMedian(opts)
			if err != nil {
				return Figure{}, fmt.Errorf("figserve load %v workers %d: %w", load, w, err)
			}
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, float64(res.MeanReqLat)/float64(time.Millisecond))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// FigBandwidth sweeps the wire-cost/freshness tradeoff across
// mirroring regimes (reproduction-only; motivated by the PR 7 + PR 8
// bandwidth-adaptation plane): for raw mirroring, coalescing, and the
// field-delta regime it reports the payload bytes each checkpoint
// round ships per link against the mean update delay. The delta regime
// should cut bytes/round substantially at a bounded delay cost — the
// tradeoff the VarWireBytes engage rule exploits.
func FigBandwidth(s Scale) (Figure, error) {
	const size = 1000
	fig := Figure{
		ID:     "figbandwidth",
		Title:  "Wire bytes per checkpoint round vs update delay across regimes",
		XLabel: "regime (1=raw 2=coalesce-10 3=field-deltas)",
		YLabel: "bytes/round | mean update delay (µs)",
	}
	variants := []struct {
		name  string
		apply func(*cluster.Options)
	}{
		{"raw", func(o *cluster.Options) {}},
		{"coalesce-10", func(o *cluster.Options) {
			o.Coalesce = true
			o.MaxCoalesce = 10
		}},
		{"field-deltas", func(o *cluster.Options) {
			o.FieldDeltas = true
		}},
	}
	bytesSeries := Series{Name: "bytes/round"}
	delaySeries := Series{Name: "mean-delay-us"}
	for i, v := range variants {
		opts := s.base(size)
		opts.Mirrors = 2
		opts.ChkptFreq = 50
		v.apply(&opts)
		res, err := s.runMedian(opts)
		if err != nil {
			return Figure{}, fmt.Errorf("figbandwidth %s: %w", v.name, err)
		}
		x := float64(i + 1)
		bytesSeries.X = append(bytesSeries.X, x)
		bytesSeries.Y = append(bytesSeries.Y, res.BytesPerRound)
		delaySeries.X = append(delaySeries.X, x)
		delaySeries.Y = append(delaySeries.Y, float64(res.MeanDelay)/float64(time.Microsecond))
	}
	fig.Series = append(fig.Series, bytesSeries, delaySeries)
	return fig, nil
}

// All regenerates every figure at the given scale.
func All(s Scale) ([]Figure, error) {
	var out []Figure
	for _, f := range []func() (Figure, error){
		func() (Figure, error) { return Fig4(s) },
		func() (Figure, error) { return Fig5(s) },
		func() (Figure, error) { return Fig6(s) },
		func() (Figure, error) { return Fig7(s) },
		func() (Figure, error) { return Fig8(s) },
		func() (Figure, error) { return Fig9(s, DefaultFig9) },
		func() (Figure, error) { return FigServe(s) },
		func() (Figure, error) { return FigBandwidth(s) },
	} {
		fig, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// Table renders a figure as an aligned text table: one row per X
// value, one column per series.
func Table(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "# x = %s, y = %s\n", f.XLabel, f.YLabel)

	// Collect the union of X values in first-series order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	fmt.Fprintf(&b, "%12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.3f", x)
		for _, s := range f.Series {
			y := math.NaN()
			for i, sx := range s.X {
				if sx == x {
					y = s.Y[i]
					break
				}
			}
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %18s", "-")
			} else {
				fmt.Fprintf(&b, " %18.4f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StageBreakdown reruns the Fig5 point at its highest mirror count (8)
// and returns the run with the lifecycle tracer's per-stage latency
// decomposition populated (Result.Stages/StageSum) — the data behind
// EXPERIMENTS.md's "Per-stage breakdown at 8 mirrors" table.
func StageBreakdown(s Scale) (cluster.Result, error) {
	opts := s.base(1000)
	opts.Mirrors = 8
	return s.runMedian(opts)
}

// StageTable formats a run's per-stage breakdown as a text table,
// headed by the end-to-end numbers the stages must account for.
func StageTable(res cluster.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STAGES — update-delay decomposition (total %v, mean delay %v, stage sum %v)\n",
		res.TotalTime.Round(time.Microsecond),
		res.MeanDelay.Round(time.Microsecond),
		res.StageSum.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-16s %8s %14s %14s %14s\n", "stage", "samples", "mean", "p95", "max")
	for _, st := range res.Stages {
		fmt.Fprintf(&b, "%-16s %8d %14v %14v %14v\n",
			st.Stage, st.Count,
			st.Mean.Round(time.Nanosecond),
			st.P95.Round(time.Nanosecond),
			st.Max.Round(time.Nanosecond))
	}
	return b.String()
}
