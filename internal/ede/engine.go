package ede

import (
	"math"
	"sync"
	"time"

	"adaptmirror/internal/costmodel"
	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
	"adaptmirror/internal/statedelta"
	"adaptmirror/internal/vclock"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Rule is one unit of business logic: it inspects an incoming event
// against the current state (already updated by earlier rules) and may
// derive new events. Rules run under the write lock of the shard
// owning the event's flight and must not block; they may only touch
// state keyed by the event's flight (all the OIS rules are per-flight,
// which is what makes the flight table lock-stripable).
type Rule interface {
	// Name identifies the rule in diagnostics.
	Name() string
	// Apply processes e and returns any derived events.
	Apply(st *State, e *event.Event) []*event.Event
}

// Config parameterizes an Engine.
type Config struct {
	// Model is the CPU cost model charged per event; zero disables
	// cost charging (useful in unit tests).
	Model costmodel.Model
	// CPU is the virtual processor of the node hosting this engine;
	// nil spins the real CPU for charges instead.
	CPU *costmodel.CPU
	// Rules is the business logic; nil installs DefaultRules.
	Rules []Rule
	// StatePadding inflates per-flight snapshot size.
	StatePadding int
	// Shards is the flight-table lock-stripe count, rounded up to a
	// power of two (0 uses ede.DefaultShards).
	Shards int
	// Obs, when non-nil, exports the engine's snapshot-cache counters,
	// labeled with Site.
	Obs  *obs.Registry
	Site string
}

// Engine applies business rules to incoming events, maintains
// operational state, and reports the highest event timestamp it has
// processed (which the checkpoint protocol's main-unit participant
// replies with).
type Engine struct {
	model costmodel.Model
	cpu   *costmodel.CPU
	rules []Rule
	state *State

	mu            sync.Mutex
	lastProcessed vclock.VC
}

// New returns an Engine with the given configuration.
func New(cfg Config) *Engine {
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	en := &Engine{
		model: cfg.Model,
		cpu:   cfg.CPU,
		rules: rules,
		state: NewStateSharded(cfg.StatePadding, cfg.Shards),
	}
	en.state.RegisterMetrics(cfg.Obs, cfg.Site)
	return en
}

// State exposes the engine's operational state.
func (en *Engine) State() *State { return en.state }

// Process runs e through every rule, charges the event's CPU cost, and
// returns the derived events (possibly none) plus the instant the
// processing completes in the node's timeline (the emission time used
// for update-delay measurement). Coalesced events are charged once but
// counted by weight.
func (en *Engine) Process(e *event.Event) ([]*event.Event, time.Time) {
	done := en.cpu.Charge(en.model.EventCost(len(e.Payload)))

	// Recovery snapshots replace the whole state rather than passing
	// through the rules: the payload is a serialized snapshot and the
	// VT is its consistency cut. Rules and the processed counter are
	// skipped — the snapshot's events were already counted where the
	// snapshot was built.
	if e.Type == event.TypeRecoveryState {
		if len(e.Payload) > 0 {
			if err := en.state.Install(e.Payload); err != nil {
				return nil, done
			}
		}
		if e.VT != nil {
			en.mu.Lock()
			en.lastProcessed = en.lastProcessed.MergeInto(e.VT)
			en.mu.Unlock()
		}
		// A warm-standby mirror journals its own mutations so it can
		// serve deltas after promotion; an installed snapshot replaces
		// history the journal never saw, so coverage restarts here.
		en.state.RebaseJournal(e.VT)
		return nil, done
	}

	// Recovery deltas are the incremental form: the payload holds
	// absolute statedelta records, at the event's VT, for exactly the
	// flights that mutated past the rejoiner's committed cut. Like a
	// full snapshot they bypass the rules and the processed counter;
	// unlike one they leave every uncarried flight alone.
	if e.Type == event.TypeRecoveryDelta {
		if len(e.Payload) > 0 {
			if err := en.state.ApplyDeltaAbsolute(e.Payload); err != nil {
				return nil, done
			}
		}
		if e.VT != nil {
			en.mu.Lock()
			en.lastProcessed = en.lastProcessed.MergeInto(e.VT)
			en.mu.Unlock()
		}
		// Same as the snapshot path: overwritten flights carry no
		// journal entries for the span the delta covered.
		en.state.RebaseJournal(e.VT)
		return nil, done
	}

	// Lock only the shard owning the event's flight: applies to other
	// flights, point reads, and snapshot rebuilds of other shards all
	// proceed concurrently.
	sh := en.state.shardOf(e.Flight)
	sh.mu.Lock()
	var derived []*event.Event
	for _, r := range en.rules {
		if out := r.Apply(en.state, e); len(out) > 0 {
			derived = append(derived, out...)
		}
	}
	if en.state.journal.on.Load() && e.VT != nil {
		en.state.journalNote(sh, e.Flight, e.VT.Sum())
	}
	sh.epoch.Add(1)
	sh.mu.Unlock()
	en.state.processed.Add(uint64(e.Weight()))

	if e.VT != nil {
		// In-place merge: the watermark owns its backing (LastProcessed
		// hands out clones), so steady-state processing allocates
		// nothing here.
		en.mu.Lock()
		en.lastProcessed = en.lastProcessed.MergeInto(e.VT)
		en.mu.Unlock()
	}
	return derived, done
}

// LastProcessed returns the highest event timestamp processed so far.
func (en *Engine) LastProcessed() vclock.VC {
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.lastProcessed.Clone()
}

// ServeInitState serves an initialization state for a thin client
// from the epoch-cached snapshot, charging the request's CPU cost.
// This is the expensive operation whose bursts the mirroring
// framework offloads; the cache turns a storm of such requests into
// one rebuild plus per-request copies, and the cost charge follows
// suit — copied bytes are booked as request work, freshly rebuilt
// segment bytes as serialization work (costmodel.Model.InitStateCost).
func (en *Engine) ServeInitState() []byte {
	snap, rebuilt := en.state.CachedSnapshot()
	en.cpu.Charge(en.model.InitStateCost(len(snap), rebuilt))
	return snap
}

// DefaultRules returns the standard OIS rule set: position tracking,
// status lifecycle, boarding completion, arrival derivation, and
// field-delta application (for sites mirrored under the field-delta
// regime).
func DefaultRules() []Rule {
	return []Rule{PositionRule{}, StatusRule{}, BoardingRule{}, ArrivalRule{}, DeltaRule{}}
}

// DeltaRule applies TypeStateDelta events: framed per-flight field
// deltas (internal/statedelta) the central sending task emits in
// place of raw data events when the field-delta mirroring regime is
// installed. Each masked field is applied with exactly the semantics
// the corresponding full-event rule would have used — positions
// overwrite and bump the weighted update counter, statuses advance
// monotonically and derive arrival at the gate, boardings accumulate
// by weight and derive all-boarded — so a replica fed deltas
// converges byte-for-byte with one fed the raw events. Records for
// flights other than the event's are skipped: the rule runs under the
// event's flight's shard lock only.
type DeltaRule struct{}

// Name implements Rule.
func (DeltaRule) Name() string { return "state-delta" }

// Apply implements Rule.
func (DeltaRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeStateDelta {
		return nil
	}
	var d statedelta.Decoder
	if d.Reset(e.Payload) != nil {
		return nil
	}
	var derived []*event.Event
	var r statedelta.Record
	for d.Next(&r) {
		if r.Flight != e.Flight {
			continue
		}
		fs := st.flight(r.Flight)
		if r.Mask&statedelta.MaskPosition != 0 {
			fs.Lat, fs.Lon, fs.Alt = r.Lat, r.Lon, r.Alt
		}
		if r.Mask&statedelta.MaskCounters != 0 {
			fs.PositionUpdates += uint64(r.Weight)
		}
		if r.Mask&statedelta.MaskStatus != 0 {
			// StatusRule then ArrivalRule, in rule order.
			status := event.Status(r.Status)
			if status > fs.Status {
				fs.Status = status
			}
			if status == event.StatusAtGate && !fs.Arrived {
				fs.Arrived = true
				fs.Status = event.StatusArrived
				derived = append(derived, &event.Event{
					Type:      event.TypeFlightArrived,
					Flight:    r.Flight,
					Stream:    e.Stream,
					Seq:       e.Seq,
					Status:    event.StatusArrived,
					Coalesced: 1,
					VT:        e.VT.Clone(),
					Ingress:   e.Ingress,
				})
			}
		}
		if r.Mask&statedelta.MaskPax != 0 {
			if r.PaxExpected > 0 && fs.PaxExpected == 0 {
				fs.PaxExpected = r.PaxExpected
			}
			fs.PaxBoarded += r.Weight
			if !fs.AllBoarded && fs.PaxExpected > 0 && fs.PaxBoarded >= fs.PaxExpected {
				fs.AllBoarded = true
				derived = append(derived, &event.Event{
					Type:      event.TypeAllBoarded,
					Flight:    r.Flight,
					Stream:    e.Stream,
					Seq:       e.Seq,
					Coalesced: 1,
					VT:        e.VT.Clone(),
					Ingress:   e.Ingress,
				})
			}
		}
	}
	return derived
}

// PositionRule applies FAA position reports to flight state.
type PositionRule struct{}

// Name implements Rule.
func (PositionRule) Name() string { return "position" }

// Apply implements Rule.
func (PositionRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeFAAPosition {
		return nil
	}
	fs := st.flight(e.Flight)
	if lat, lon, alt, ok := e.Position(); ok {
		fs.Lat, fs.Lon, fs.Alt = lat, lon, alt
	}
	fs.PositionUpdates += uint64(e.Weight())
	return nil
}

// StatusRule advances a flight's lifecycle from Delta status events.
// Stale (earlier-phase) transitions are ignored, so replaying a
// filtered event stream converges to the same state.
type StatusRule struct{}

// Name implements Rule.
func (StatusRule) Name() string { return "status" }

// Apply implements Rule.
func (StatusRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeDeltaStatus && e.Type != event.TypeFlightArrived {
		return nil
	}
	fs := st.flight(e.Flight)
	status := e.Status
	if e.Type == event.TypeFlightArrived {
		status = event.StatusArrived
	}
	if status > fs.Status {
		fs.Status = status
	}
	return nil
}

// BoardingRule counts gate-reader boardings and derives AllBoarded
// when the expected count is reached. The expected passenger count
// travels in the first 4 payload bytes of gate-reader events.
type BoardingRule struct{}

// Name implements Rule.
func (BoardingRule) Name() string { return "boarding" }

// Apply implements Rule.
func (BoardingRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeGateReader {
		return nil
	}
	fs := st.flight(e.Flight)
	if exp := gateExpected(e); exp > 0 && fs.PaxExpected == 0 {
		fs.PaxExpected = exp
	}
	fs.PaxBoarded += e.Weight()
	if !fs.AllBoarded && fs.PaxExpected > 0 && fs.PaxBoarded >= fs.PaxExpected {
		fs.AllBoarded = true
		return []*event.Event{{
			Type:      event.TypeAllBoarded,
			Flight:    e.Flight,
			Stream:    e.Stream,
			Seq:       e.Seq,
			Coalesced: 1,
			VT:        e.VT.Clone(),
			Ingress:   e.Ingress,
		}}
	}
	return nil
}

func gateExpected(e *event.Event) uint32 {
	if len(e.Payload) < 4 {
		return 0
	}
	return uint32(e.Payload[0]) | uint32(e.Payload[1])<<8 |
		uint32(e.Payload[2])<<16 | uint32(e.Payload[3])<<24
}

// ArrivalRule derives the 'flight arrived' complex event once a flight
// has reached the gate (the landed → at-runway → at-gate sequence the
// paper collapses).
type ArrivalRule struct{}

// Name implements Rule.
func (ArrivalRule) Name() string { return "arrival" }

// Apply implements Rule.
func (ArrivalRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeDeltaStatus || e.Status != event.StatusAtGate {
		return nil
	}
	fs := st.flight(e.Flight)
	if fs.Arrived {
		return nil
	}
	fs.Arrived = true
	fs.Status = event.StatusArrived
	return []*event.Event{{
		Type:      event.TypeFlightArrived,
		Flight:    e.Flight,
		Stream:    e.Stream,
		Seq:       e.Seq,
		Status:    event.StatusArrived,
		Coalesced: 1,
		VT:        e.VT.Clone(),
		Ingress:   e.Ingress,
	}}
}
