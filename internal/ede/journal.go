package ede

// The mutation journal is the central-site half of incremental mirror
// rejoin: per shard, it remembers for each flight the scalar position
// of the last event that mutated it, keyed against the checkpoint
// cuts the coordinator commits. A rejoiner that presents a committed
// cut within the retained horizon receives only the flights that
// mutated past it (as absolute statedelta records) instead of the
// full snapshot.
//
// The scalar key is the vector timestamp's component sum: the central
// receiving task stamps every event from one clock, so stamping order,
// vector order, and sum order all agree — "mutated after cut C" is
// exactly "mutation sum > C.Sum()". Commit cuts are event timestamps
// (or merges of them from the same totally ordered sequence), so the
// same projection orders them too.
//
// Horizon bookkeeping is a ring of sealed commit sums. When a seal
// falls off the ring, the journal floor rises to it and every entry
// at or below the floor is compacted away; a cut below the floor can
// no longer be served incrementally and falls back to the snapshot
// path. The journal therefore holds only flights that mutated within
// the last `horizon` committed cuts — bounded working state, not a
// second event log.

import (
	"sort"
	"sync"
	"sync/atomic"

	"adaptmirror/internal/event"
	"adaptmirror/internal/statedelta"
	"adaptmirror/internal/vclock"
)

// DefaultJournalHorizon is how many committed checkpoint cuts the
// mutation journal retains when EnableJournal is given no bound.
const DefaultJournalHorizon = 64

// journal is the State-level coordination half of the mutation
// journal; the per-flight maps live on the shards (guarded by the
// shard locks, written on the rule-application path).
type journal struct {
	// on is checked on the per-event rule-application path, so it is
	// atomic; everything else is recovery/commit-rate state under mu.
	on atomic.Bool

	mu      sync.Mutex
	horizon int
	floor   uint64   // sums at or below this are compacted away
	seals   []uint64 // sealed commit sums, ascending, len <= horizon
}

// EnableJournal turns on mutation journaling with the given horizon
// in committed cuts (<= 0 uses DefaultJournalHorizon). Coverage
// starts at the current processed position: the floor is set to the
// given watermark's sum so a cut from before enablement is never
// served incrementally.
func (s *State) EnableJournal(horizon int, since vclock.VC) {
	if horizon <= 0 {
		horizon = DefaultJournalHorizon
	}
	s.journal.mu.Lock()
	s.journal.horizon = horizon
	s.journal.floor = since.Sum()
	s.journal.seals = s.journal.seals[:0]
	s.journal.on.Store(true)
	s.journal.mu.Unlock()
}

// JournalEnabled reports whether mutation journaling is on.
func (s *State) JournalEnabled() bool { return s.journal.on.Load() }

// RebaseJournal re-anchors an enabled journal at cut. Recovery
// transfers (snapshot installs and absolute deltas) replace flight
// history without passing through the journaled rule path, so after
// one lands the journal can no longer prove what mutated between its
// old floor and the transfer's cut — serving such a span would ship an
// incomplete delta. The floor rises to the cut's sum, the sealed-cut
// ring resets, and stale per-flight entries at or below the new floor
// are compacted; older cuts fall back to the snapshot path. No-op
// while journaling is off.
func (s *State) RebaseJournal(cut vclock.VC) {
	j := &s.journal
	if !j.on.Load() {
		return
	}
	j.mu.Lock()
	sum := cut.Sum()
	if sum > j.floor {
		j.floor = sum
	}
	j.seals = j.seals[:0]
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for f, last := range sh.journal {
			if last <= j.floor {
				delete(sh.journal, f)
			}
		}
		sh.mu.Unlock()
	}
	j.mu.Unlock()
}

// journalNote records that flight f mutated at scalar position sum.
// Caller holds the write lock of f's shard.
func (s *State) journalNote(sh *shard, f event.FlightID, sum uint64) {
	if sh.journal == nil {
		sh.journal = make(map[event.FlightID]uint64)
	}
	if sum > sh.journal[f] {
		sh.journal[f] = sum
	}
}

// SealCut records one committed checkpoint cut with the journal. Cuts
// beyond the horizon raise the floor and compact entries the floor
// now covers. No-op while journaling is off.
func (s *State) SealCut(ts vclock.VC) {
	j := &s.journal
	if !j.on.Load() {
		return
	}
	j.mu.Lock()
	sum := ts.Sum()
	if n := len(j.seals); n > 0 && sum <= j.seals[n-1] {
		// Re-delivered or stale commit; the ring stays ascending.
		j.mu.Unlock()
		return
	}
	j.seals = append(j.seals, sum)
	var compactTo uint64
	if len(j.seals) > j.horizon {
		evict := len(j.seals) - j.horizon
		j.floor = j.seals[evict-1]
		j.seals = append(j.seals[:0], j.seals[evict:]...)
		compactTo = j.floor
	}
	if compactTo > 0 {
		// Compact under j.mu so a concurrent DeltaSince (which checked
		// its cut against the floor before walking the shards) cannot
		// lose entries it still needs.
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for f, last := range sh.journal {
				if last <= compactTo {
					delete(sh.journal, f)
				}
			}
			sh.mu.Unlock()
		}
	}
	j.mu.Unlock()
}

// JournalFlights returns the number of flights currently tracked by
// the mutation journal (the statedelta_journal_flights gauge).
func (s *State) JournalFlights() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.journal)
		sh.mu.RUnlock()
	}
	return n
}

// JournalSeals returns the retained sealed-cut count and the current
// floor sum (tests, diagnostics).
func (s *State) JournalSeals() (seals int, floor uint64) {
	s.journal.mu.Lock()
	defer s.journal.mu.Unlock()
	return len(s.journal.seals), s.journal.floor
}

// recordOf captures one flight's full absolute state as a statedelta
// record. Caller holds at least the read lock of fs's shard.
func recordOf(fs *FlightState) statedelta.Record {
	r := statedelta.Record{
		Flight:      fs.ID,
		Mask:        statedelta.MaskAll,
		Status:      uint8(fs.Status),
		Lat:         fs.Lat,
		Lon:         fs.Lon,
		Alt:         fs.Alt,
		PaxExpected: fs.PaxExpected,
		PaxBoarded:  fs.PaxBoarded,
		PosUpdates:  fs.PositionUpdates,
	}
	if fs.AllBoarded {
		r.Flags |= statedelta.FlagAllBoarded
	}
	if fs.Arrived {
		r.Flags |= statedelta.FlagArrived
	}
	return r
}

// DeltaSince returns absolute records for every flight that mutated
// after cut, in flight-ID order, or ok=false when the cut cannot be
// served incrementally (journaling off, nil cut, or cut older than
// the journal floor). Call it where the state is known quiescent for
// the intended consistency point — the recovery path captures it
// under the main unit's barrier, exactly like the full snapshot.
func (s *State) DeltaSince(cut vclock.VC) (recs []statedelta.Record, ok bool) {
	if cut == nil {
		return nil, false
	}
	j := &s.journal
	if !j.on.Load() {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sumC := cut.Sum()
	if sumC < j.floor {
		return nil, false
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for f, last := range sh.journal {
			if last <= sumC {
				continue
			}
			if fs := sh.flights[f]; fs != nil {
				recs = append(recs, recordOf(fs))
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Flight < recs[b].Flight })
	return recs, true
}

// ApplyDeltaAbsolute installs a framed absolute delta (the payload of
// a TypeRecoveryDelta event): each record overwrites its flight's
// masked fields with the carried values. Overwriting is idempotent,
// so re-delivered recovery deltas are harmless. The frame is fully
// validated before any flight is touched — a corrupted payload
// changes nothing.
func (s *State) ApplyDeltaAbsolute(buf []byte) error {
	var d statedelta.Decoder
	if err := d.Reset(buf); err != nil {
		return err
	}
	var r statedelta.Record
	for d.Next(&r) {
		sh := s.shardOf(r.Flight)
		sh.mu.Lock()
		fs := s.flight(r.Flight)
		if r.Mask&statedelta.MaskStatus != 0 {
			fs.Status = event.Status(r.Status)
		}
		if r.Mask&statedelta.MaskPosition != 0 {
			fs.Lat, fs.Lon, fs.Alt = r.Lat, r.Lon, r.Alt
		}
		if r.Mask&statedelta.MaskPax != 0 {
			fs.PaxExpected = r.PaxExpected
			fs.PaxBoarded = r.PaxBoarded
		}
		if r.Mask&statedelta.MaskCounters != 0 {
			fs.PositionUpdates = r.PosUpdates
		}
		if r.Mask&statedelta.MaskFlags != 0 {
			fs.AllBoarded = r.Flags&statedelta.FlagAllBoarded != 0
			fs.Arrived = r.Flags&statedelta.FlagArrived != 0
		}
		sh.epoch.Add(1)
		sh.mu.Unlock()
	}
	return nil
}
