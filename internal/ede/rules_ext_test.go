package ede

import (
	"testing"

	"adaptmirror/internal/event"
)

func extEngine() *Engine { return New(Config{Rules: ExtendedRules()}) }

func TestCrewRuleTracksCompleteness(t *testing.T) {
	en := extEngine()
	en.Process(NewCrewUpdate(5, 1, 6, 2, 16))
	cs, ok := en.State().Crew(5)
	if !ok || cs.Required != 6 || cs.Assigned != 2 || cs.Complete {
		t.Fatalf("crew state = %+v ok=%v", cs, ok)
	}
	en.Process(NewCrewUpdate(5, 2, 6, 3, 16))
	en.Process(NewCrewUpdate(5, 3, 6, 1, 16))
	cs, _ = en.State().Crew(5)
	if cs.Assigned != 6 || !cs.Complete {
		t.Fatalf("crew not complete: %+v", cs)
	}
	// Required is fixed by the first report.
	en.Process(NewCrewUpdate(5, 4, 99, 0, 16))
	cs, _ = en.State().Crew(5)
	if cs.Required != 6 {
		t.Fatalf("Required changed to %d", cs.Required)
	}
}

func TestCrewRuleShortPayload(t *testing.T) {
	en := extEngine()
	e := &event.Event{Type: event.TypeCrewUpdate, Flight: 1, Coalesced: 1, Payload: []byte{1, 2}}
	en.Process(e)
	cs, ok := en.State().Crew(1)
	if !ok || cs.Assigned != 0 {
		t.Fatalf("short payload mishandled: %+v ok=%v", cs, ok)
	}
}

func TestBaggageRuleWeighted(t *testing.T) {
	en := extEngine()
	en.Process(NewBaggage(3, 1, 32))
	coalesced := NewBaggage(3, 2, 32)
	coalesced.Coalesced = 7
	en.Process(coalesced)
	bs, ok := en.State().Baggage(3)
	if !ok || bs.Loaded != 8 {
		t.Fatalf("Loaded = %d ok=%v, want 8", bs.Loaded, ok)
	}
}

func TestWeatherRuleSeverity(t *testing.T) {
	en := extEngine()
	en.Process(NewWeather(9, 1, 40, 16))
	en.Process(NewWeather(9, 2, 220, 16))
	ws, ok := en.State().Weather(9)
	if !ok || ws.Severity != 220 || ws.Reports != 2 {
		t.Fatalf("weather = %+v ok=%v", ws, ok)
	}
	if ws.Severity < WeatherSevere {
		t.Fatal("severity 220 must count as severe")
	}
}

func TestExtendedStateAbsentForUnknownFlight(t *testing.T) {
	en := extEngine()
	if _, ok := en.State().Crew(42); ok {
		t.Fatal("crew state for unknown flight")
	}
	if _, ok := en.State().Baggage(42); ok {
		t.Fatal("baggage state for unknown flight")
	}
	if _, ok := en.State().Weather(42); ok {
		t.Fatal("weather state for unknown flight")
	}
}

func TestExtendedRulesIncludeDefaults(t *testing.T) {
	rules := ExtendedRules()
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name()] = true
	}
	for _, want := range []string{"position", "status", "boarding", "arrival", "crew", "baggage", "weather"} {
		if !names[want] {
			t.Fatalf("rule %q missing from ExtendedRules", want)
		}
	}
}

func TestExtendedRulesIgnoreOtherTypes(t *testing.T) {
	en := extEngine()
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))
	if _, ok := en.State().Crew(1); ok {
		t.Fatal("position event created crew state")
	}
}

func TestEventConstructorsPadding(t *testing.T) {
	if got := len(NewCrewUpdate(1, 1, 2, 3, 0).Payload); got != 8 {
		t.Fatalf("crew payload = %d, want padded 8", got)
	}
	if got := len(NewWeather(1, 1, 5, 0).Payload); got != 1 {
		t.Fatalf("weather payload = %d, want padded 1", got)
	}
	if got := len(NewBaggage(1, 1, 64).Payload); got != 64 {
		t.Fatalf("baggage payload = %d", got)
	}
}
