package ede

import (
	"encoding/binary"

	"adaptmirror/internal/event"
)

// Extended business rules covering the rest of the OIS domains the
// paper enumerates — crew dispositions, baggage, and weather tracking
// (Section 1's Case 2: inclement weather raises tracking precision and
// with it event rates and processing load). Install them alongside
// DefaultRules with ExtendedRules.

// ExtendedRules returns the default rule set plus crew, baggage, and
// weather handling.
func ExtendedRules() []Rule {
	return append(DefaultRules(), CrewRule{}, BaggageRule{}, WeatherRule{})
}

// CrewState tracks a flight's crew readiness.
type CrewState struct {
	Assigned uint32
	Required uint32
	Complete bool
}

// BaggageState tracks a flight's baggage handling.
type BaggageState struct {
	Loaded uint32
}

// WeatherState tracks the most recent weather severity observed per
// flight's route (0 = clear).
type WeatherState struct {
	Severity uint8
	Reports  uint64
}

// extended returns (creating if needed) the extended state attached to
// a flight. The map lives in the flight's shard; caller holds that
// shard's write lock.
func (s *State) extended(f event.FlightID) *extState {
	sh := s.shardOf(f)
	if sh.ext == nil {
		sh.ext = make(map[event.FlightID]*extState)
	}
	e := sh.ext[f]
	if e == nil {
		e = &extState{}
		sh.ext[f] = e
	}
	return e
}

type extState struct {
	crew    CrewState
	baggage BaggageState
	weather WeatherState
}

// Crew returns the crew state for a flight.
func (s *State) Crew(f event.FlightID) (CrewState, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.ext[f]; ok {
		return e.crew, true
	}
	return CrewState{}, false
}

// Baggage returns the baggage state for a flight.
func (s *State) Baggage(f event.FlightID) (BaggageState, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.ext[f]; ok {
		return e.baggage, true
	}
	return BaggageState{}, false
}

// Weather returns the weather state for a flight.
func (s *State) Weather(f event.FlightID) (WeatherState, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.ext[f]; ok {
		return e.weather, true
	}
	return WeatherState{}, false
}

// CrewRule applies crew-disposition updates. The payload carries the
// required crew size (uint32) followed by the newly assigned count
// (uint32); crew completeness is derived once assigned ≥ required.
type CrewRule struct{}

// Name implements Rule.
func (CrewRule) Name() string { return "crew" }

// Apply implements Rule.
func (CrewRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeCrewUpdate {
		return nil
	}
	ext := st.extended(e.Flight)
	if len(e.Payload) >= 8 {
		if req := binary.LittleEndian.Uint32(e.Payload); req > 0 && ext.crew.Required == 0 {
			ext.crew.Required = req
		}
		ext.crew.Assigned += binary.LittleEndian.Uint32(e.Payload[4:])
	}
	if !ext.crew.Complete && ext.crew.Required > 0 && ext.crew.Assigned >= ext.crew.Required {
		ext.crew.Complete = true
	}
	return nil
}

// BaggageRule counts baggage-loading updates (weighted, so coalesced
// mirror streams converge with the central count).
type BaggageRule struct{}

// Name implements Rule.
func (BaggageRule) Name() string { return "baggage" }

// Apply implements Rule.
func (BaggageRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeBaggage {
		return nil
	}
	st.extended(e.Flight).baggage.Loaded += e.Weight()
	return nil
}

// WeatherRule records per-route weather severity from the first
// payload byte. The operational response to severe weather — raising
// FAA tracking precision, i.e. a higher position-update rate — is a
// source-side behaviour (paper Section 1, Case 2) exercised by the
// experiment harness through higher UpdatesPerFlight.
type WeatherRule struct{}

// WeatherSevere is the severity at which operations would raise
// tracking precision (Case 2 of the paper's introduction).
const WeatherSevere = 200

// Name implements Rule.
func (WeatherRule) Name() string { return "weather" }

// Apply implements Rule.
func (WeatherRule) Apply(st *State, e *event.Event) []*event.Event {
	if e.Type != event.TypeWeather {
		return nil
	}
	ext := st.extended(e.Flight)
	if len(e.Payload) >= 1 {
		ext.weather.Severity = e.Payload[0]
	}
	ext.weather.Reports += uint64(e.Weight())
	return nil
}

// NewCrewUpdate builds a crew-disposition event: required is the crew
// complement, assigned how many this update adds.
func NewCrewUpdate(flight event.FlightID, seq uint64, required, assigned uint32, size int) *event.Event {
	if size < 8 {
		size = 8
	}
	p := make([]byte, size)
	binary.LittleEndian.PutUint32(p, required)
	binary.LittleEndian.PutUint32(p[4:], assigned)
	return &event.Event{Type: event.TypeCrewUpdate, Flight: flight, Seq: seq, Coalesced: 1, Payload: p}
}

// NewBaggage builds a baggage-loading event.
func NewBaggage(flight event.FlightID, seq uint64, size int) *event.Event {
	return &event.Event{Type: event.TypeBaggage, Flight: flight, Seq: seq, Coalesced: 1, Payload: make([]byte, size)}
}

// NewWeather builds a weather report with the given severity.
func NewWeather(flight event.FlightID, seq uint64, severity uint8, size int) *event.Event {
	if size < 1 {
		size = 1
	}
	p := make([]byte, size)
	p[0] = severity
	return &event.Event{Type: event.TypeWeather, Flight: flight, Seq: seq, Coalesced: 1, Payload: p}
}
