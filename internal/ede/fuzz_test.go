package ede

import (
	"testing"

	"adaptmirror/internal/event"
)

// FuzzDecodeSnapshot hardens the init-state decoder thin clients run
// on received snapshots: arbitrary bytes must produce clean errors.
func FuzzDecodeSnapshot(f *testing.F) {
	en := New(Config{})
	en.Process(event.NewPosition(3, 1, 10, 20, 30000, 64))
	f.Add(en.State().Snapshot(), 0)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, 4)

	f.Fuzz(func(t *testing.T, data []byte, padding int) {
		if padding < 0 || padding > 1024 {
			return
		}
		flights, err := DecodeSnapshot(data, padding)
		if err != nil {
			return
		}
		// Accepted snapshots must be internally consistent.
		for id, fs := range flights {
			if fs.ID != id {
				t.Fatalf("flight map key %d holds record for %d", id, fs.ID)
			}
		}
	})
}
