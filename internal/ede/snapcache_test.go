package ede

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"adaptmirror/internal/event"
)

func TestNewStateShardedRoundsToPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{16, 16},
		{17, 32},
	}
	for _, c := range cases {
		if got := NewStateSharded(0, c.in).Shards(); got != c.want {
			t.Errorf("NewStateSharded(0, %d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCachedSnapshotMatchesSnapshot(t *testing.T) {
	en := New(Config{StatePadding: 16})
	for f := 0; f < 100; f++ {
		en.Process(event.NewPosition(event.FlightID(f), 1, float64(f), float64(-f), 1000, 32))
	}
	direct := en.State().Snapshot()
	cached, rebuilt := en.State().CachedSnapshot()
	if !bytes.Equal(direct, cached) {
		t.Fatal("cached snapshot differs from direct serialization")
	}
	if rebuilt == 0 {
		t.Fatal("first cached snapshot reported 0 rebuilt bytes")
	}
	// Mutate one flight: the cache must fold it in.
	en.Process(event.NewStatus(7, 2, event.StatusLanded, 16))
	direct = en.State().Snapshot()
	cached, _ = en.State().CachedSnapshot()
	if !bytes.Equal(direct, cached) {
		t.Fatal("cached snapshot stale after mutation")
	}
}

func TestCachedSnapshotHitMissCounters(t *testing.T) {
	en := New(Config{})
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))

	if _, rebuilt := en.State().CachedSnapshot(); rebuilt == 0 {
		t.Fatal("cold request must rebuild")
	}
	if _, rebuilt := en.State().CachedSnapshot(); rebuilt != 0 {
		t.Fatalf("warm request rebuilt %d bytes, want 0", rebuilt)
	}
	hits, misses, rebuilds, _ := en.State().CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// A cold build encodes every shard, even empty ones.
	if rebuilds != uint64(en.State().Shards()) {
		t.Fatalf("rebuilds = %d, want %d", rebuilds, en.State().Shards())
	}

	// Dirtying one flight must rebuild only that flight's shard.
	en.Process(event.NewPosition(1, 2, 1, 1, 1, 32))
	if _, rebuilt := en.State().CachedSnapshot(); rebuilt == 0 {
		t.Fatal("mutation must dirty the cache")
	}
	_, _, rebuilds2, _ := en.State().CacheStats()
	if rebuilds2 != rebuilds+1 {
		t.Fatalf("rebuilds after one dirty flight = %d, want %d", rebuilds2, rebuilds+1)
	}
}

// TestSnapshotByteStable checks the wire-format guarantee the cache
// depends on: the same set of flights serializes to the same bytes
// regardless of insertion order (flights are sorted by ID within each
// shard), and repeated snapshots are identical.
func TestSnapshotByteStable(t *testing.T) {
	f := func(raw []uint16) bool {
		forward := New(Config{StatePadding: 8})
		backward := New(Config{StatePadding: 8})
		for _, id := range raw {
			forward.Process(event.NewPosition(event.FlightID(id), 1, float64(id), 2, 3, 32))
		}
		for i := len(raw) - 1; i >= 0; i-- {
			id := raw[i]
			backward.Process(event.NewPosition(event.FlightID(id), 1, float64(id), 2, 3, 32))
		}
		a := forward.State().Snapshot()
		if !bytes.Equal(a, forward.State().Snapshot()) {
			return false
		}
		// Duplicate IDs collapse to one flight with a higher update
		// count, and position updates overwrite Lat/Lon/Alt, so the two
		// insertion orders only agree when each ID appears once.
		seen := map[uint16]bool{}
		for _, id := range raw {
			if seen[id] {
				return true
			}
			seen[id] = true
		}
		return bytes.Equal(a, backward.State().Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotQuickRoundTrip(t *testing.T) {
	const padding = 8
	f := func(raw []uint16) bool {
		en := New(Config{StatePadding: padding})
		want := map[event.FlightID]bool{}
		for _, id := range raw {
			en.Process(event.NewPosition(event.FlightID(id), 1, 1, 2, 3, 32))
			want[event.FlightID(id)] = true
		}
		snap, _ := en.State().CachedSnapshot()
		got, err := DecodeSnapshot(snap, padding)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if _, ok := got[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStormDecodes races an init-state storm against the
// apply path: every snapshot served mid-mutation must decode cleanly
// and hold a plausible flight count. Run under -race this also checks
// the shard/cache locking.
func TestConcurrentStormDecodes(t *testing.T) {
	const (
		readers    = 8
		perReader  = 50
		maxFlights = 400
	)
	en := New(Config{StatePadding: 16})
	en.Process(event.NewPosition(0, 1, 0, 0, 0, 32))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := 1; f < maxFlights; f++ {
			en.Process(event.NewPosition(event.FlightID(f), uint64(f), float64(f), 2, 3, 32))
		}
	}()

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				snap := en.ServeInitState()
				got, err := DecodeSnapshot(snap, 16)
				if err != nil {
					errs <- err
					return
				}
				if len(got) < 1 || len(got) > maxFlights {
					errs <- errFlightCount(len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errFlightCount int

func (e errFlightCount) Error() string {
	return "snapshot flight count out of range"
}
