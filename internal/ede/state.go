// Package ede implements the Event Derivation Engine — the business
// logic the OIS runs over incoming update events (paper Section 2).
// The EDE performs "transactional and analytical processing of newly
// arrived data events, according to a set of business rules" — e.g.
// determining from gate-reader events that all passengers of a flight
// have boarded — maintains the operational state those rules update,
// and prepares initialization-state snapshots for thin clients. All
// mirror sites run the same EDE over the same events, which is what
// makes their states replicas.
package ede

import (
	"encoding/binary"
	"fmt"
	"sync"

	"adaptmirror/internal/event"
)

// FlightState is the operational state tracked for one flight.
type FlightState struct {
	ID     event.FlightID
	Status event.Status

	// Current position from FAA radar.
	Lat, Lon, Alt float64

	// Boarding progress from gate readers.
	PaxExpected uint32
	PaxBoarded  uint32

	// PositionUpdates counts raw position reports applied, weighted by
	// coalesce counts, so mirrors processing coalesced streams stay
	// comparable with the central site.
	PositionUpdates uint64

	// Derived markers.
	AllBoarded bool
	Arrived    bool
}

// flightRecordSize is the per-flight size of a state snapshot.
const flightRecordSize = 4 + 1 + 24 + 8 + 8 + 2

// State is the full operational state of one site.
type State struct {
	mu        sync.RWMutex
	flights   map[event.FlightID]*FlightState
	ext       map[event.FlightID]*extState // crew/baggage/weather
	processed uint64

	// padding is appended per flight in snapshots to model richer
	// per-flight state than this reproduction tracks explicitly.
	padding int
}

// NewState returns an empty state; paddingPerFlight inflates snapshot
// sizes to model the paper's multi-gigabyte operational state.
func NewState(paddingPerFlight int) *State {
	if paddingPerFlight < 0 {
		paddingPerFlight = 0
	}
	return &State{flights: make(map[event.FlightID]*FlightState), padding: paddingPerFlight}
}

// flight returns (creating if needed) the record for f. Caller must
// hold the write lock.
func (s *State) flight(f event.FlightID) *FlightState {
	fs := s.flights[f]
	if fs == nil {
		fs = &FlightState{ID: f}
		s.flights[f] = fs
	}
	return fs
}

// Get returns a copy of the flight's state and whether it exists.
func (s *State) Get(f event.FlightID) (FlightState, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fs, ok := s.flights[f]
	if !ok {
		return FlightState{}, false
	}
	return *fs, true
}

// Flights returns the number of tracked flights.
func (s *State) Flights() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.flights)
}

// Processed returns the weighted number of events applied.
func (s *State) Processed() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.processed
}

// SnapshotSize returns the size in bytes of a full snapshot.
func (s *State) SnapshotSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return 8 + len(s.flights)*(flightRecordSize+s.padding)
}

// Snapshot serializes the full state: the initialization view sent to
// thin clients so they can interpret subsequent update events.
func (s *State) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf := make([]byte, 0, 8+len(s.flights)*(flightRecordSize+s.padding))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.flights)))
	pad := make([]byte, s.padding)
	for _, fs := range s.flights {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(fs.ID))
		buf = append(buf, byte(fs.Status))
		for _, v := range []float64{fs.Lat, fs.Lon, fs.Alt} {
			buf = binary.LittleEndian.AppendUint64(buf, floatBits(v))
		}
		buf = binary.LittleEndian.AppendUint32(buf, fs.PaxExpected)
		buf = binary.LittleEndian.AppendUint32(buf, fs.PaxBoarded)
		buf = binary.LittleEndian.AppendUint64(buf, fs.PositionUpdates)
		flags := uint16(0)
		if fs.AllBoarded {
			flags |= 1
		}
		if fs.Arrived {
			flags |= 2
		}
		buf = binary.LittleEndian.AppendUint16(buf, flags)
		buf = append(buf, pad...)
	}
	return buf
}

// DecodeSnapshot parses a snapshot produced by Snapshot, returning the
// flight states keyed by ID. paddingPerFlight must match the encoder's.
func DecodeSnapshot(buf []byte, paddingPerFlight int) (map[event.FlightID]FlightState, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("ede: snapshot too short: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint64(buf)
	rec := flightRecordSize + paddingPerFlight
	// Compare in the int domain: multiplying the attacker-controlled
	// count would overflow uint64 and bypass the size check.
	body := len(buf) - 8
	if body%rec != 0 || n != uint64(body/rec) {
		return nil, fmt.Errorf("ede: snapshot size %d does not match %d flights", len(buf), n)
	}
	out := make(map[event.FlightID]FlightState, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		b := buf[off:]
		fs := FlightState{
			ID:     event.FlightID(binary.LittleEndian.Uint32(b)),
			Status: event.Status(b[4]),
			Lat:    bitsFloat(binary.LittleEndian.Uint64(b[5:])),
			Lon:    bitsFloat(binary.LittleEndian.Uint64(b[13:])),
			Alt:    bitsFloat(binary.LittleEndian.Uint64(b[21:])),
		}
		fs.PaxExpected = binary.LittleEndian.Uint32(b[29:])
		fs.PaxBoarded = binary.LittleEndian.Uint32(b[33:])
		fs.PositionUpdates = binary.LittleEndian.Uint64(b[37:])
		flags := binary.LittleEndian.Uint16(b[45:])
		fs.AllBoarded = flags&1 != 0
		fs.Arrived = flags&2 != 0
		out[fs.ID] = fs
		off += rec
	}
	return out, nil
}
