// Package ede implements the Event Derivation Engine — the business
// logic the OIS runs over incoming update events (paper Section 2).
// The EDE performs "transactional and analytical processing of newly
// arrived data events, according to a set of business rules" — e.g.
// determining from gate-reader events that all passengers of a flight
// have boarded — maintains the operational state those rules update,
// and prepares initialization-state snapshots for thin clients. All
// mirror sites run the same EDE over the same events, which is what
// makes their states replicas.
package ede

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"adaptmirror/internal/event"
)

// FlightState is the operational state tracked for one flight.
type FlightState struct {
	ID     event.FlightID
	Status event.Status

	// Current position from FAA radar.
	Lat, Lon, Alt float64

	// Boarding progress from gate readers.
	PaxExpected uint32
	PaxBoarded  uint32

	// PositionUpdates counts raw position reports applied, weighted by
	// coalesce counts, so mirrors processing coalesced streams stay
	// comparable with the central site.
	PositionUpdates uint64

	// Derived markers.
	AllBoarded bool
	Arrived    bool
}

// flightRecordSize is the per-flight size of a state snapshot.
const flightRecordSize = 4 + 1 + 24 + 8 + 8 + 2

// DefaultShards is the shard count of a State when Config.Shards is
// unset. Sixteen stripes keep rule application, point reads, and
// snapshot building from contending on one lock while staying small
// enough that per-shard snapshot segments amortize well.
const DefaultShards = 16

// shard is one lock stripe of the flight table. Rule application for
// an event locks only its flight's shard, so concurrent point reads,
// snapshot rebuilds of other shards, and applies to other flights
// proceed in parallel.
type shard struct {
	mu      sync.RWMutex
	flights map[event.FlightID]*FlightState
	ext     map[event.FlightID]*extState // crew/baggage/weather

	// journal maps flight -> scalar position (VT sum) of its last
	// mutation, maintained while the State's mutation journal is
	// enabled (see journal.go). Guarded by mu's write lock; nil until
	// the first note.
	journal map[event.FlightID]uint64

	// epoch counts mutations under mu's write lock; the snapshot cache
	// compares it against the epoch its cached segment was built at to
	// decide whether the shard is dirty. Atomic so the cache's warm
	// path can check cleanliness without touching the shard lock.
	epoch atomic.Uint64

	// Padding out to a cache line would be overkill here: shards are
	// accessed through pointer-chasing maps whose buckets dominate any
	// false sharing of the shard headers.
}

// State is the full operational state of one site, striped into
// hash-partitioned shards (hash on FlightID).
type State struct {
	shards    []shard
	mask      uint32
	processed atomic.Uint64

	// padding is appended per flight in snapshots to model richer
	// per-flight state than this reproduction tracks explicitly.
	padding int

	// journal coordinates the per-shard mutation maps (journal.go).
	journal journal

	cache snapCache
}

// NewState returns an empty state with DefaultShards lock stripes;
// paddingPerFlight inflates snapshot sizes to model the paper's
// multi-gigabyte operational state.
func NewState(paddingPerFlight int) *State {
	return NewStateSharded(paddingPerFlight, 0)
}

// NewStateSharded returns an empty state with the given shard count,
// rounded up to a power of two (0 uses DefaultShards).
func NewStateSharded(paddingPerFlight, shards int) *State {
	if paddingPerFlight < 0 {
		paddingPerFlight = 0
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &State{shards: make([]shard, n), mask: uint32(n - 1), padding: paddingPerFlight}
	for i := range s.shards {
		s.shards[i].flights = make(map[event.FlightID]*FlightState)
	}
	s.cache.init(n)
	return s
}

// Shards returns the number of lock stripes.
func (s *State) Shards() int { return len(s.shards) }

// shardOf returns the stripe owning flight f. Flight IDs are typically
// small and dense, so the low bits alone distribute them evenly.
func (s *State) shardOf(f event.FlightID) *shard {
	return &s.shards[uint32(f)&s.mask]
}

// flight returns (creating if needed) the record for f. Caller must
// hold the write lock of f's shard.
func (s *State) flight(f event.FlightID) *FlightState {
	sh := s.shardOf(f)
	fs := sh.flights[f]
	if fs == nil {
		fs = &FlightState{ID: f}
		sh.flights[f] = fs
	}
	return fs
}

// Get returns a copy of the flight's state and whether it exists.
func (s *State) Get(f event.FlightID) (FlightState, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fs, ok := sh.flights[f]
	if !ok {
		return FlightState{}, false
	}
	return *fs, true
}

// Flights returns the number of tracked flights.
func (s *State) Flights() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.flights)
		sh.mu.RUnlock()
	}
	return n
}

// Processed returns the weighted number of events applied.
func (s *State) Processed() uint64 { return s.processed.Load() }

// SnapshotSize returns the size in bytes of a full snapshot.
func (s *State) SnapshotSize() int {
	return 8 + s.Flights()*(flightRecordSize+s.padding)
}

// appendFlight encodes one flight record (plus padding) onto buf.
func appendFlight(buf []byte, fs *FlightState, pad []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(fs.ID))
	buf = append(buf, byte(fs.Status))
	for _, v := range []float64{fs.Lat, fs.Lon, fs.Alt} {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, fs.PaxExpected)
	buf = binary.LittleEndian.AppendUint32(buf, fs.PaxBoarded)
	buf = binary.LittleEndian.AppendUint64(buf, fs.PositionUpdates)
	flags := uint16(0)
	if fs.AllBoarded {
		flags |= 1
	}
	if fs.Arrived {
		flags |= 2
	}
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	return append(buf, pad...)
}

// encodeShard serializes one shard's flights, sorted by flight ID so
// the output is byte-stable for a given state (order-normalized wire
// bytes are what makes cached segments and fresh builds comparable).
// Caller must hold at least the shard's read lock. The segment carries
// no header; the full-snapshot header is prepended at assembly.
func (s *State) encodeShard(sh *shard) ([]byte, int) {
	ids := make([]event.FlightID, 0, len(sh.flights))
	for id := range sh.flights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, len(ids)*(flightRecordSize+s.padding))
	pad := make([]byte, s.padding)
	for _, id := range ids {
		buf = appendFlight(buf, sh.flights[id], pad)
	}
	return buf, len(ids)
}

// Snapshot serializes the full state: the initialization view sent to
// thin clients so they can interpret subsequent update events. The
// snapshot is assembled shard by shard (each under its read lock), so
// it is per-shard consistent; concurrent applies to other shards are
// not blocked. Within each shard flights are encoded in ID order, so
// the bytes are deterministic for a given state and shard count.
func (s *State) Snapshot() []byte {
	segs := make([][]byte, len(s.shards))
	total, flights := 0, 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		seg, n := s.encodeShard(sh)
		sh.mu.RUnlock()
		segs[i] = seg
		total += len(seg)
		flights += n
	}
	buf := make([]byte, 0, 8+total)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(flights))
	for _, seg := range segs {
		buf = append(buf, seg...)
	}
	return buf
}

// Install replaces the full operational state with the contents of a
// snapshot produced by Snapshot on a state with the same padding. It
// is the receiving half of mirror recovery: the rejoining site
// installs the central site's snapshot, then applies only events past
// the snapshot's consistency cut. Each shard is swapped under its
// write lock and has its epoch bumped, so concurrent point reads stay
// shard-consistent and cached snapshot segments are invalidated.
func (s *State) Install(buf []byte) error {
	flights, err := DecodeSnapshot(buf, s.padding)
	if err != nil {
		return err
	}
	fresh := make([]map[event.FlightID]*FlightState, len(s.shards))
	for i := range fresh {
		fresh[i] = make(map[event.FlightID]*FlightState)
	}
	for id, fs := range flights {
		rec := fs
		fresh[uint32(id)&s.mask][id] = &rec
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.flights = fresh[i]
		sh.ext = nil
		// The mutation journal describes the replaced state; whatever it
		// tracked no longer corresponds to the installed flights.
		sh.journal = nil
		sh.epoch.Add(1)
		sh.mu.Unlock()
	}
	return nil
}

// DecodeSnapshot parses a snapshot produced by Snapshot, returning the
// flight states keyed by ID. paddingPerFlight must match the encoder's.
func DecodeSnapshot(buf []byte, paddingPerFlight int) (map[event.FlightID]FlightState, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("ede: snapshot too short: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint64(buf)
	rec := flightRecordSize + paddingPerFlight
	// Compare in the int domain: multiplying the attacker-controlled
	// count would overflow uint64 and bypass the size check.
	body := len(buf) - 8
	if body%rec != 0 || n != uint64(body/rec) {
		return nil, fmt.Errorf("ede: snapshot size %d does not match %d flights", len(buf), n)
	}
	out := make(map[event.FlightID]FlightState, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		b := buf[off:]
		fs := FlightState{
			ID:     event.FlightID(binary.LittleEndian.Uint32(b)),
			Status: event.Status(b[4]),
			Lat:    bitsFloat(binary.LittleEndian.Uint64(b[5:])),
			Lon:    bitsFloat(binary.LittleEndian.Uint64(b[13:])),
			Alt:    bitsFloat(binary.LittleEndian.Uint64(b[21:])),
		}
		fs.PaxExpected = binary.LittleEndian.Uint32(b[29:])
		fs.PaxBoarded = binary.LittleEndian.Uint32(b[33:])
		fs.PositionUpdates = binary.LittleEndian.Uint64(b[37:])
		flags := binary.LittleEndian.Uint16(b[45:])
		fs.AllBoarded = flags&1 != 0
		fs.Arrived = flags&2 != 0
		out[fs.ID] = fs
		off += rec
	}
	return out, nil
}
