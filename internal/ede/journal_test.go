package ede

import (
	"bytes"
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/statedelta"
	"adaptmirror/internal/vclock"
)

// feedPosition processes one position event for flight f stamped at
// scalar position sum (single-component VT: sum order = stamp order).
func feedPosition(en *Engine, f event.FlightID, sum uint64) {
	e := event.NewPosition(f, sum, float64(f), float64(sum), 100, 64)
	e.VT = vclock.VC{sum}
	en.Process(e)
}

func TestDeltaSinceUnservable(t *testing.T) {
	en := engine()
	feedPosition(en, 1, 1)
	if _, ok := en.State().DeltaSince(vclock.VC{0}); ok {
		t.Fatal("journaling off: cut served incrementally")
	}
	en.State().EnableJournal(0, nil)
	if _, ok := en.State().DeltaSince(nil); ok {
		t.Fatal("nil cut served incrementally")
	}
	// Mutations from before enablement are not covered.
	en2 := engine()
	feedPosition(en2, 1, 5)
	en2.State().EnableJournal(0, en2.LastProcessed())
	if _, ok := en2.State().DeltaSince(vclock.VC{3}); ok {
		t.Fatal("cut below the enablement floor served incrementally")
	}
	if _, ok := en2.State().DeltaSince(vclock.VC{5}); !ok {
		t.Fatal("cut at the enablement floor not served")
	}
}

func TestDeltaSinceReturnsMutatedFlights(t *testing.T) {
	en := engine()
	en.State().EnableJournal(0, nil)
	for f := event.FlightID(1); f <= 5; f++ {
		feedPosition(en, f, uint64(f))
	}
	// Flight 2 mutates again late: it must be included even though its
	// first mutation predates the cut.
	feedPosition(en, 2, 6)

	recs, ok := en.State().DeltaSince(vclock.VC{3})
	if !ok {
		t.Fatal("covered cut not served")
	}
	want := []event.FlightID{2, 4, 5}
	if len(recs) != len(want) {
		t.Fatalf("delta carries %d flights, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Flight != want[i] {
			t.Fatalf("record %d is flight %d, want %d (sorted by ID)", i, r.Flight, want[i])
		}
		if r.Mask != statedelta.MaskAll {
			t.Fatalf("record %d mask %#x, want absolute MaskAll", i, r.Mask)
		}
	}
	// Absolute records carry current state, not the pre-cut value.
	if recs[0].Lon != 6 {
		t.Fatalf("flight 2 Lon = %v, want its latest value 6", recs[0].Lon)
	}
	if n := en.State().JournalFlights(); n != 5 {
		t.Fatalf("JournalFlights = %d, want 5", n)
	}
}

func TestSealCutHorizonCompaction(t *testing.T) {
	en := engine()
	en.State().EnableJournal(2, nil)
	for f := event.FlightID(1); f <= 6; f++ {
		feedPosition(en, f, uint64(f))
		en.State().SealCut(vclock.VC{uint64(f)})
	}
	// Horizon 2 retains seals [5 6]; the floor rose to 4 and entries at
	// or below it were compacted away.
	seals, floor := en.State().JournalSeals()
	if seals != 2 || floor != 4 {
		t.Fatalf("seals=%d floor=%d, want 2 and 4", seals, floor)
	}
	if n := en.State().JournalFlights(); n != 2 {
		t.Fatalf("JournalFlights = %d after compaction, want 2", n)
	}
	if _, ok := en.State().DeltaSince(vclock.VC{3}); ok {
		t.Fatal("cut below the floor served incrementally")
	}
	recs, ok := en.State().DeltaSince(vclock.VC{5})
	if !ok || len(recs) != 1 || recs[0].Flight != 6 {
		t.Fatalf("DeltaSince(5) = %v, %v; want exactly flight 6", recs, ok)
	}
}

func TestSealCutIgnoresStaleCommits(t *testing.T) {
	en := engine()
	en.State().EnableJournal(2, nil)
	en.State().SealCut(vclock.VC{5})
	en.State().SealCut(vclock.VC{5}) // re-delivered
	en.State().SealCut(vclock.VC{3}) // stale
	seals, floor := en.State().JournalSeals()
	if seals != 1 || floor != 0 {
		t.Fatalf("seals=%d floor=%d after stale commits, want 1 and 0", seals, floor)
	}
}

func TestApplyDeltaAbsoluteIdempotent(t *testing.T) {
	src := engine()
	src.State().EnableJournal(0, nil)
	feedPosition(src, 1, 1)
	feedPosition(src, 2, 2)
	en := src
	recs, ok := en.State().DeltaSince(vclock.VC{0})
	if !ok || len(recs) != 2 {
		t.Fatalf("DeltaSince = %v, %v", recs, ok)
	}
	frame, err := statedelta.EncodeFrame(recs)
	if err != nil {
		t.Fatal(err)
	}

	dst := engine()
	if err := dst.State().ApplyDeltaAbsolute(frame); err != nil {
		t.Fatal(err)
	}
	once := dst.State().Snapshot()
	if err := dst.State().ApplyDeltaAbsolute(frame); err != nil {
		t.Fatal(err)
	}
	twice := dst.State().Snapshot()
	if !bytes.Equal(once, twice) {
		t.Fatal("re-applying an absolute delta changed the state")
	}
	fs, ok := dst.State().Get(2)
	if !ok || fs.Lat != 2 || fs.Lon != 2 || fs.PositionUpdates != 1 {
		t.Fatalf("flight 2 after absolute apply = %+v", fs)
	}
	// A corrupted frame must change nothing.
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0x41
	if err := dst.State().ApplyDeltaAbsolute(bad); err == nil {
		t.Fatal("corrupt delta frame accepted")
	}
	if after := dst.State().Snapshot(); !bytes.Equal(twice, after) {
		t.Fatal("rejected delta frame mutated the state")
	}
}

func TestInstallResetsJournal(t *testing.T) {
	src := engine()
	feedPosition(src, 1, 1)

	dst := engine()
	dst.State().EnableJournal(0, nil)
	feedPosition(dst, 7, 3)
	if n := dst.State().JournalFlights(); n != 1 {
		t.Fatalf("JournalFlights = %d before install, want 1", n)
	}
	if err := dst.State().Install(src.State().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n := dst.State().JournalFlights(); n != 0 {
		t.Fatalf("JournalFlights = %d after install, want 0 (journal describes replaced state)", n)
	}
}

// TestDeltaRuleConvergence feeds one replica raw events and another
// the equivalent field-delta events; both must converge to the same
// state and derive the same events.
func TestDeltaRuleConvergence(t *testing.T) {
	raw := engine()
	viaDelta := engine()
	const pax = 2

	deltaEvent := func(f event.FlightID, seq uint64, r statedelta.Record) *event.Event {
		r.Flight = f
		frame, err := statedelta.EncodeFrame([]statedelta.Record{r})
		if err != nil {
			t.Fatal(err)
		}
		return &event.Event{
			Type: event.TypeStateDelta, Flight: f, Seq: seq, Coalesced: 1,
			Payload: frame, VT: vclock.VC{seq},
		}
	}

	var rawDerived, deltaDerived []*event.Event
	collect := func(dst *[]*event.Event, d []*event.Event) { *dst = append(*dst, d...) }

	// Position updates.
	e := event.NewPosition(1, 1, 10, 20, 30000, 64)
	e.VT = vclock.VC{1}
	d, _ := raw.Process(e)
	collect(&rawDerived, d)
	d, _ = viaDelta.Process(deltaEvent(1, 1, statedelta.Record{
		Mask: statedelta.MaskPosition | statedelta.MaskCounters,
		Lat:  10, Lon: 20, Alt: 30000, Weight: 1,
	}))
	collect(&deltaDerived, d)

	// Boarding to completion.
	for i := 0; i < pax; i++ {
		ge := &event.Event{
			Type: event.TypeGateReader, Flight: 2, Seq: uint64(2 + i), Coalesced: 1,
			Payload: []byte{pax, 0, 0, 0}, VT: vclock.VC{uint64(2 + i)},
		}
		d, _ = raw.Process(ge)
		collect(&rawDerived, d)
		d, _ = viaDelta.Process(deltaEvent(2, uint64(2+i), statedelta.Record{
			Mask: statedelta.MaskPax, PaxExpected: pax, Weight: 1,
		}))
		collect(&deltaDerived, d)
	}

	// Arrival at the gate.
	se := event.NewStatus(1, 5, event.StatusAtGate, 16)
	se.VT = vclock.VC{5}
	d, _ = raw.Process(se)
	collect(&rawDerived, d)
	d, _ = viaDelta.Process(deltaEvent(1, 5, statedelta.Record{
		Mask: statedelta.MaskStatus, Status: uint8(event.StatusAtGate), Weight: 1,
	}))
	collect(&deltaDerived, d)

	if !bytes.Equal(raw.State().Snapshot(), viaDelta.State().Snapshot()) {
		t.Fatal("delta-fed replica diverged from raw-fed replica")
	}
	if len(rawDerived) != len(deltaDerived) {
		t.Fatalf("derived %d events via deltas, want %d as via raw events", len(deltaDerived), len(rawDerived))
	}
	for i := range rawDerived {
		if rawDerived[i].Type != deltaDerived[i].Type || rawDerived[i].Flight != deltaDerived[i].Flight {
			t.Fatalf("derived event %d: %s vs %s", i, deltaDerived[i], rawDerived[i])
		}
	}
}
