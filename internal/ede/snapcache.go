package ede

import (
	"encoding/binary"
	"sync"
	"time"

	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
)

// snapCache is the epoch-versioned snapshot cache behind the serving
// path. Each shard's flights are kept as one encoded segment tagged
// with the shard epoch it was built at; serving a snapshot
// concatenates the segments, rebuilding only those whose shard has
// been mutated since. A storm of init-state requests against a quiet
// (or slowly changing) state therefore shares one assembled buffer
// instead of paying one full-table serialization per request — the
// paper's power-failure scenario is exactly such a storm.
//
// Rebuilds are single-flight: cold requesters serialize on the cache
// write lock, and whoever enters first rebuilds the dirty segments;
// the rest find the epochs current and only pay the concatenation.
type snapCache struct {
	mu     sync.RWMutex
	segs   [][]byte
	counts []int
	epochs []uint64
	// full is the assembled snapshot for the cached epochs. Rebuilds
	// replace it with a fresh allocation and nothing ever writes into
	// it afterwards, so warm hits hand the same buffer to every
	// requester — a storm costs one pointer copy per request, not one
	// 100KB+ allocation.
	full []byte
	// primed flips on the first build; until then every epoch slot
	// would spuriously match a never-mutated shard's epoch 0.
	primed bool

	hits      metrics.Counter
	misses    metrics.Counter
	rebuilds  metrics.Counter // segments rebuilt, not requests
	rebuildNs metrics.DurationCounter
}

func (c *snapCache) init(shards int) {
	c.segs = make([][]byte, shards)
	c.counts = make([]int, shards)
	c.epochs = make([]uint64, shards)
}

// cleanLocked reports whether every cached segment is current. Caller
// holds c.mu (read or write).
func (c *snapCache) cleanLocked(s *State) bool {
	if !c.primed {
		return false
	}
	for i := range s.shards {
		if s.shards[i].epoch.Load() != c.epochs[i] {
			return false
		}
	}
	return true
}

// assembleLocked concatenates the cached segments into a full
// snapshot. Caller holds c.mu (read or write).
func (c *snapCache) assembleLocked() []byte {
	total, flights := 0, 0
	for i, seg := range c.segs {
		total += len(seg)
		flights += c.counts[i]
	}
	buf := make([]byte, 0, 8+total)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(flights))
	for _, seg := range c.segs {
		buf = append(buf, seg...)
	}
	return buf
}

// CachedSnapshot serves a full snapshot from the epoch cache,
// rebuilding only the segments of shards mutated since their segment
// was cached. It returns the snapshot plus the number of segment bytes
// freshly rebuilt (0 on a warm hit) — the serving path's cost-model
// split: the response is charged as request work, the rebuilt bytes as
// serialization work.
//
// The returned buffer is shared between requesters and with the cache
// itself: callers must treat it as read-only. It stays valid forever —
// a later rebuild assembles into a fresh allocation rather than
// mutating it.
func (s *State) CachedSnapshot() (buf []byte, rebuiltBytes int) {
	c := &s.cache

	// Warm path: all segments current — hand out the shared assembled
	// buffer under the read lock, so a storm serves concurrently at
	// pointer-copy cost.
	c.mu.RLock()
	if c.cleanLocked(s) {
		buf = c.full
		c.mu.RUnlock()
		c.hits.Inc()
		return buf, 0
	}
	c.mu.RUnlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cleanLocked(s) {
		// Another requester rebuilt while we waited: the single-flight
		// property — N concurrent cold requests, one rebuild.
		c.hits.Inc()
		return c.full, 0
	}
	c.misses.Inc()
	start := time.Now()
	for i := range s.shards {
		sh := &s.shards[i]
		if c.primed && sh.epoch.Load() == c.epochs[i] {
			continue
		}
		sh.mu.RLock()
		// Read the epoch under the shard lock: a mutation between the
		// dirty check and this lock is folded into the segment, and
		// one arriving after merely re-dirties the shard for the next
		// request.
		epoch := sh.epoch.Load()
		seg, n := s.encodeShard(sh)
		sh.mu.RUnlock()
		c.segs[i] = seg
		c.counts[i] = n
		c.epochs[i] = epoch
		c.rebuilds.Inc()
		rebuiltBytes += len(seg)
	}
	c.primed = true
	c.full = c.assembleLocked()
	c.rebuildNs.Add(time.Since(start))
	return c.full, rebuiltBytes
}

// CacheStats reports the snapshot cache's counters: warm hits (served
// by concatenation alone), misses (at least one segment rebuilt),
// segments rebuilt, and cumulative rebuild time.
func (s *State) CacheStats() (hits, misses, rebuilds uint64, rebuildTime time.Duration) {
	c := &s.cache
	return c.hits.Value(), c.misses.Value(), c.rebuilds.Value(), c.rebuildNs.Value()
}

// RegisterMetrics exposes the snapshot cache's counters on r under the
// snapshot_cache_* families, labeled with site. A nil registry is a
// no-op — the counters keep working privately.
func (s *State) RegisterMetrics(r *obs.Registry, site string) {
	if r == nil {
		return
	}
	c := &s.cache
	l := obs.L("site", site)
	r.Describe("snapshot_cache_hits_total", "Init-state snapshots served from the warm cache.")
	r.RegisterCounter("snapshot_cache_hits_total", &c.hits, l)
	r.Describe("snapshot_cache_misses_total", "Init-state snapshots that rebuilt at least one segment.")
	r.RegisterCounter("snapshot_cache_misses_total", &c.misses, l)
	r.Describe("snapshot_cache_rebuilds_total", "Snapshot segments rebuilt.")
	r.RegisterCounter("snapshot_cache_rebuilds_total", &c.rebuilds, l)
	r.Describe("snapshot_cache_rebuild_seconds_total", "Cumulative snapshot segment rebuild time.")
	r.RegisterDurationCounter("snapshot_cache_rebuild_seconds_total", &c.rebuildNs, l)
}
